// Package workload generates the synthetic datasets used throughout the
// EARL reproduction. The paper's evaluation (§6) runs on synthetic data so
// that the true answer is known and the reported error can be validated;
// this package provides deterministic, seeded equivalents: numeric
// distributions (uniform, Gaussian, Zipf, Pareto), on-disk layouts
// (shuffled vs clustered, which matters for block-sampling baselines),
// AR(1) time series for the dependent-data block bootstrap (Appendix A),
// Bernoulli categorical data, and Gaussian-mixture points for K-Means.
//
// Datasets are rendered in Hadoop's default "one record per line" text
// format so the simulated HDFS LineRecordReader and the pre-map sampler
// operate exactly as the paper describes.
package workload

import (
	"bytes"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"repro/internal/colscan"
)

// Dist identifies a numeric value distribution.
type Dist string

// Supported numeric distributions.
const (
	Uniform  Dist = "uniform"  // U(0, 100)
	Gaussian Dist = "gaussian" // N(50, 15)
	Zipf     Dist = "zipf"     // Zipf(s=1.2) over [1, 1e6]
	Pareto   Dist = "pareto"   // heavy tail, alpha=1.5, xm=1
)

// NumericSpec describes a one-value-per-line numeric dataset.
type NumericSpec struct {
	Dist      Dist
	N         int    // number of records
	Seed      uint64 // PCG seed; same seed ⇒ identical dataset
	Clustered bool   // if true, records are sorted — the adversarial layout for block sampling
}

// Generate materialises the values of spec (not yet line-encoded).
func (spec NumericSpec) Generate() ([]float64, error) {
	if spec.N < 0 {
		return nil, fmt.Errorf("workload: negative N %d", spec.N)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, 0x9e3779b97f4a7c15))
	xs := make([]float64, spec.N)
	switch spec.Dist {
	case Uniform:
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
	case Gaussian:
		for i := range xs {
			xs[i] = rng.NormFloat64()*15 + 50
		}
	case Zipf:
		z := rand.NewZipf(rng, 1.2, 1, 1_000_000)
		for i := range xs {
			xs[i] = float64(z.Uint64() + 1)
		}
	case Pareto:
		const alpha, xm = 1.5, 1.0
		for i := range xs {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			xs[i] = xm / math.Pow(u, 1/alpha)
		}
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", spec.Dist)
	}
	if spec.Clustered {
		sort.Float64s(xs)
	}
	return xs, nil
}

// EncodeLines renders numeric values one-per-line, the Hadoop default text
// input format assumed throughout the paper (§3.3, footnote 1).
func EncodeLines(xs []float64) []byte {
	var buf bytes.Buffer
	buf.Grow(len(xs) * 8)
	for _, x := range xs {
		buf.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// EncodeLinesFixed renders numeric values one-per-line in a fixed-width
// format (18 bytes + newline). Because every record occupies the same
// number of bytes, byte-position sampling (the pre-map sampler) is
// *exactly* uniform over records — with variable-width encodings such
// as EncodeLines, a record's inclusion probability is proportional to
// its length, the slight inaccuracy §3.3 of the paper accepts.
func EncodeLinesFixed(xs []float64) []byte {
	var buf bytes.Buffer
	buf.Grow(len(xs) * 19)
	for _, x := range xs {
		fmt.Fprintf(&buf, "%018.9e\n", x)
	}
	return buf.Bytes()
}

// DecodeLine parses one text record back into a float. Non-finite
// values (NaN, ±Inf) and malformed lines are rejected wrapping
// colscan.ErrBadRecord — one poisoned record must surface through the
// §3.3 error path, not corrupt an order-statistic dictionary. Quoted
// error content is bounded (a truncated multi-MB line must not balloon
// error files).
func DecodeLine(line string) (float64, error) {
	v, err := colscan.ParseValueString(line)
	if err != nil {
		return 0, fmt.Errorf("workload: bad record: %w", err)
	}
	return v, nil
}

// AR1Spec describes a first-order autoregressive time series
// x_t = phi*x_{t-1} + eps_t, the canonical dependent-data workload used to
// exercise the block bootstrap of Appendix A.
type AR1Spec struct {
	Phi   float64 // autocorrelation, |phi| < 1 for stationarity
	Sigma float64 // innovation standard deviation
	Mu    float64 // process mean
	N     int
	Seed  uint64
}

// Generate materialises the series.
func (spec AR1Spec) Generate() ([]float64, error) {
	if math.Abs(spec.Phi) >= 1 {
		return nil, fmt.Errorf("workload: AR(1) needs |phi| < 1, got %v", spec.Phi)
	}
	if spec.N < 0 {
		return nil, fmt.Errorf("workload: negative N %d", spec.N)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, 0x853c49e6748fea9b))
	xs := make([]float64, spec.N)
	// Start from the stationary distribution so the whole series is i.d.
	if spec.N > 0 {
		sd0 := spec.Sigma / math.Sqrt(1-spec.Phi*spec.Phi)
		xs[0] = spec.Mu + rng.NormFloat64()*sd0
	}
	for i := 1; i < spec.N; i++ {
		xs[i] = spec.Mu + spec.Phi*(xs[i-1]-spec.Mu) + rng.NormFloat64()*spec.Sigma
	}
	return xs, nil
}

// CategoricalSpec describes Bernoulli categorical data: each record is
// "1" (success) with probability P, else "0" — the proportion-of-successes
// setting Appendix A analyses with z-tests.
type CategoricalSpec struct {
	P    float64
	N    int
	Seed uint64
}

// Generate materialises the 0/1 records as floats.
func (spec CategoricalSpec) Generate() ([]float64, error) {
	if spec.P < 0 || spec.P > 1 {
		return nil, fmt.Errorf("workload: P out of [0,1]: %v", spec.P)
	}
	if spec.N < 0 {
		return nil, fmt.Errorf("workload: negative N %d", spec.N)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, 0xda3e39cb94b95bdb))
	xs := make([]float64, spec.N)
	for i := range xs {
		if rng.Float64() < spec.P {
			xs[i] = 1
		}
	}
	return xs, nil
}

// Point is a d-dimensional point for the K-Means workload.
type Point []float64

// MixtureSpec describes a Gaussian-mixture point cloud: K spherical
// clusters in Dim dimensions, the synthetic workload of the paper's
// K-Means experiment (Fig. 7), which lets the reproduction verify that
// EARL's centroids land within 5% of the true ones.
type MixtureSpec struct {
	K      int     // number of clusters
	Dim    int     // dimensionality
	N      int     // total points
	Spread float64 // within-cluster standard deviation
	Sep    float64 // distance scale between cluster centers
	Seed   uint64
}

// Generate returns the points and the true cluster centers.
func (spec MixtureSpec) Generate() (pts []Point, centers []Point, err error) {
	if spec.K <= 0 || spec.Dim <= 0 {
		return nil, nil, fmt.Errorf("workload: mixture needs K>0 and Dim>0, got K=%d Dim=%d", spec.K, spec.Dim)
	}
	if spec.N < 0 {
		return nil, nil, fmt.Errorf("workload: negative N %d", spec.N)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, 0xc4ceb9fe1a85ec53))
	centers = make([]Point, spec.K)
	for k := range centers {
		c := make(Point, spec.Dim)
		for d := range c {
			c[d] = rng.Float64() * spec.Sep
		}
		centers[k] = c
	}
	pts = make([]Point, spec.N)
	for i := range pts {
		k := rng.IntN(spec.K)
		p := make(Point, spec.Dim)
		for d := range p {
			p[d] = centers[k][d] + rng.NormFloat64()*spec.Spread
		}
		pts[i] = p
	}
	return pts, centers, nil
}

// EncodePoints renders points as comma-separated coordinates, one per line.
func EncodePoints(pts []Point) []byte {
	var buf bytes.Buffer
	for _, p := range pts {
		for d, v := range p {
			if d > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// DecodePoint parses one comma-separated point record.
func DecodePoint(line string) (Point, error) {
	fields := strings.Split(strings.TrimSpace(line), ",")
	p := make(Point, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad point record %q: %w", line, err)
		}
		p = append(p, v)
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("workload: empty point record")
	}
	return p, nil
}

// KVSpec describes key,value text records ("key\tvalue" per line) with a
// configurable number of distinct keys; used to exercise post-map sampling
// where the sampler pools records per key (§3.3, Algorithm 1).
type KVSpec struct {
	Keys int // number of distinct keys
	N    int
	Seed uint64
}

// Generate materialises the records.
func (spec KVSpec) Generate() ([]string, error) {
	if spec.Keys <= 0 {
		return nil, fmt.Errorf("workload: KVSpec needs Keys > 0")
	}
	if spec.N < 0 {
		return nil, fmt.Errorf("workload: negative N %d", spec.N)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, 0x2545f4914f6cdd1d))
	recs := make([]string, spec.N)
	for i := range recs {
		k := rng.IntN(spec.Keys)
		v := rng.Float64() * 100
		recs[i] = fmt.Sprintf("k%04d\t%s", k, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return recs, nil
}

// EncodeStrings joins records with newlines (trailing newline included).
func EncodeStrings(recs []string) []byte {
	var buf bytes.Buffer
	for _, r := range recs {
		buf.WriteString(r)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
