package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNumericDeterminism(t *testing.T) {
	spec := NumericSpec{Dist: Uniform, N: 1000, Seed: 7}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	spec.Seed = 8
	c, _ := spec.Generate()
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical values", same, len(a))
	}
}

func TestNumericDistributions(t *testing.T) {
	for _, d := range []Dist{Uniform, Gaussian, Zipf, Pareto} {
		xs, err := NumericSpec{Dist: d, N: 5000, Seed: 1}.Generate()
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(xs) != 5000 {
			t.Fatalf("%s: got %d values", d, len(xs))
		}
		var sum float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s produced non-finite value", d)
			}
			sum += x
		}
		if sum == 0 {
			t.Fatalf("%s produced all zeros", d)
		}
	}
}

func TestNumericMoments(t *testing.T) {
	xs, _ := NumericSpec{Dist: Uniform, N: 200000, Seed: 3}.Generate()
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if math.Abs(mean-50) > 0.5 {
		t.Fatalf("uniform mean = %v, want ≈50", mean)
	}
	gs, _ := NumericSpec{Dist: Gaussian, N: 200000, Seed: 3}.Generate()
	sum = 0
	for _, x := range gs {
		sum += x
	}
	mean = sum / float64(len(gs))
	if math.Abs(mean-50) > 0.5 {
		t.Fatalf("gaussian mean = %v, want ≈50", mean)
	}
}

func TestNumericErrors(t *testing.T) {
	if _, err := (NumericSpec{Dist: "bogus", N: 1}).Generate(); err == nil {
		t.Fatal("unknown distribution should error")
	}
	if _, err := (NumericSpec{Dist: Uniform, N: -1}).Generate(); err == nil {
		t.Fatal("negative N should error")
	}
}

func TestClusteredLayoutIsSorted(t *testing.T) {
	xs, err := NumericSpec{Dist: Uniform, N: 2000, Seed: 5, Clustered: true}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("clustered layout not sorted at %d", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		xs, err := NumericSpec{Dist: Gaussian, N: 100, Seed: seed}.Generate()
		if err != nil {
			return false
		}
		lines := strings.Split(strings.TrimSuffix(string(EncodeLines(xs)), "\n"), "\n")
		if len(lines) != len(xs) {
			return false
		}
		for i, l := range lines {
			v, err := DecodeLine(l)
			if err != nil || v != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeLineErrors(t *testing.T) {
	if _, err := DecodeLine("not-a-number"); err == nil {
		t.Fatal("garbage should error")
	}
	v, err := DecodeLine("  3.5 \n")
	if err != nil || v != 3.5 {
		t.Fatalf("trimmed decode = %v, %v", v, err)
	}
}

func TestAR1Stationarity(t *testing.T) {
	spec := AR1Spec{Phi: 0.8, Sigma: 1, Mu: 10, N: 100000, Seed: 9}
	xs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("AR1 mean = %v, want ≈10", mean)
	}
	// Lag-1 autocorrelation should be ≈ phi.
	var num, den float64
	for i := 1; i < len(xs); i++ {
		num += (xs[i] - mean) * (xs[i-1] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	if rho := num / den; math.Abs(rho-0.8) > 0.05 {
		t.Fatalf("AR1 lag-1 autocorr = %v, want ≈0.8", rho)
	}
}

func TestAR1RejectsNonStationary(t *testing.T) {
	if _, err := (AR1Spec{Phi: 1.0, N: 10}).Generate(); err == nil {
		t.Fatal("phi=1 should error")
	}
}

func TestCategoricalProportion(t *testing.T) {
	xs, err := CategoricalSpec{P: 0.3, N: 100000, Seed: 4}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var ones float64
	for _, x := range xs {
		if x != 0 && x != 1 {
			t.Fatalf("categorical value %v not in {0,1}", x)
		}
		ones += x
	}
	if p := ones / float64(len(xs)); math.Abs(p-0.3) > 0.01 {
		t.Fatalf("proportion = %v, want ≈0.3", p)
	}
}

func TestCategoricalErrors(t *testing.T) {
	if _, err := (CategoricalSpec{P: 1.5, N: 10}).Generate(); err == nil {
		t.Fatal("P > 1 should error")
	}
}

func TestMixtureGeneration(t *testing.T) {
	pts, centers, err := MixtureSpec{K: 3, Dim: 2, N: 3000, Spread: 0.5, Sep: 100, Seed: 11}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3000 || len(centers) != 3 {
		t.Fatalf("got %d points %d centers", len(pts), len(centers))
	}
	// Every point should be near one of the true centers (well-separated).
	for _, p := range pts {
		best := math.Inf(1)
		for _, c := range centers {
			var d2 float64
			for dim := range p {
				d := p[dim] - c[dim]
				d2 += d * d
			}
			if d2 < best {
				best = d2
			}
		}
		if math.Sqrt(best) > 10*0.5 {
			t.Fatalf("point %v is %v away from all centers", p, math.Sqrt(best))
		}
	}
}

func TestMixtureErrors(t *testing.T) {
	if _, _, err := (MixtureSpec{K: 0, Dim: 2, N: 10}).Generate(); err == nil {
		t.Fatal("K=0 should error")
	}
}

func TestPointCodec(t *testing.T) {
	pts := []Point{{1, 2.5, -3}, {0.125, 7, 9}}
	enc := EncodePoints(pts)
	lines := strings.Split(strings.TrimSuffix(string(enc), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("encoded %d lines", len(lines))
	}
	for i, l := range lines {
		p, err := DecodePoint(l)
		if err != nil {
			t.Fatal(err)
		}
		for d := range p {
			if p[d] != pts[i][d] {
				t.Fatalf("roundtrip mismatch at %d,%d", i, d)
			}
		}
	}
	if _, err := DecodePoint("1,x,3"); err == nil {
		t.Fatal("bad coordinate should error")
	}
	if _, err := DecodePoint(""); err == nil {
		t.Fatal("empty record should error")
	}
}

func TestKVGeneration(t *testing.T) {
	recs, err := KVSpec{Keys: 10, N: 1000, Seed: 13}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, r := range recs {
		parts := strings.SplitN(r, "\t", 2)
		if len(parts) != 2 {
			t.Fatalf("record %q not key\\tvalue", r)
		}
		keys[parts[0]] = true
	}
	if len(keys) > 10 {
		t.Fatalf("got %d distinct keys, want ≤10", len(keys))
	}
	if len(keys) < 8 {
		t.Fatalf("got %d distinct keys, want close to 10", len(keys))
	}
	if _, err := (KVSpec{Keys: 0, N: 5}).Generate(); err == nil {
		t.Fatal("Keys=0 should error")
	}
}

func TestEncodeStrings(t *testing.T) {
	b := EncodeStrings([]string{"a", "b"})
	if string(b) != "a\nb\n" {
		t.Fatalf("EncodeStrings = %q", b)
	}
}

func TestEncodeLinesFixedWidth(t *testing.T) {
	xs, _ := NumericSpec{Dist: Pareto, N: 500, Seed: 2}.Generate()
	xs = append(xs, 0, -3.25, 1e-12, 9.9e20)
	enc := EncodeLinesFixed(xs)
	lines := strings.Split(strings.TrimSuffix(string(enc), "\n"), "\n")
	if len(lines) != len(xs) {
		t.Fatalf("got %d lines", len(lines))
	}
	for i, l := range lines {
		if len(l) != len(lines[0]) {
			t.Fatalf("line %d width %d != %d", i, len(l), len(lines[0]))
		}
		v, err := DecodeLine(l)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(v - xs[i])
		if xs[i] != 0 {
			rel /= math.Abs(xs[i])
		}
		if rel > 1e-9 {
			t.Fatalf("line %d decoded %v, want %v", i, v, xs[i])
		}
	}
}
