package delta

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/mr"
	"repro/internal/pool"
	"repro/internal/simcost"
	"repro/internal/stats"
)

// NaiveMaintainer is the §4.1 baseline: no delta maintenance. On every
// Grow it re-reads the accumulated sample (charged as the disk I/O the
// paper says makes this a bottleneck: "s and bi must be stored on the
// HDFS file system … the disk I/O cost can be a major performance
// bottleneck") and redraws all B resamples from scratch, recomputing
// every state. Fig. 10's "without optimization" series runs on this.
//
// The B redraws are independent, so — like the optimized Maintainer —
// Grow shards them across Config.Parallelism workers with a
// deterministic per-(generation, resample) rng stream; results are
// identical at any parallelism.
type NaiveMaintainer struct {
	red     mr.IncrementalReducer
	b       int
	par     int
	seed    uint64
	metrics *simcost.Metrics
	key     string

	sample     []float64
	values     []float64
	generation int
	updates    atomic.Int64
}

// naiveSeed2 is the second PCG seed word for the baseline's streams.
const naiveSeed2 = 0x5be0cd19137e2179

// NewNaive creates the baseline with the same Config surface as New.
func NewNaive(cfg Config) (*NaiveMaintainer, error) {
	if cfg.Reducer == nil {
		return nil, errors.New("delta: Config.Reducer is required")
	}
	if cfg.B < 2 {
		return nil, fmt.Errorf("delta: need B ≥ 2, got %d", cfg.B)
	}
	return &NaiveMaintainer{
		red:     cfg.Reducer,
		b:       cfg.B,
		par:     pool.Workers(cfg.Parallelism),
		seed:    cfg.Seed,
		metrics: cfg.Metrics,
		key:     cfg.Key,
	}, nil
}

// N returns the current sample size.
func (m *NaiveMaintainer) N() int { return len(m.sample) }

// Updates reports total state operations performed (B×n per iteration).
func (m *NaiveMaintainer) Updates() int64 { return m.updates.Load() }

// Grow appends the delta and recomputes everything.
func (m *NaiveMaintainer) Grow(deltaSample []float64) error {
	if len(deltaSample) == 0 {
		return errors.New("delta: empty delta sample")
	}
	m.sample = append(m.sample, deltaSample...)
	n := len(m.sample)
	if m.metrics != nil {
		// Re-read s from HDFS (the old part was spilled) and write the
		// refreshed resamples back — the round trip §4.1 eliminates.
		m.metrics.DiskSeeks.Add(int64(m.b) + 1)
		m.metrics.BytesRead.Add(int64(n) * bytesPerItem)
		m.metrics.BytesWritten.Add(int64(m.b) * int64(n) * bytesPerItem)
	}
	m.values = make([]float64, m.b)
	gen := m.generation
	m.generation++

	return pool.ForEachWorker(m.b, m.par, func() func(int) error {
		buf := make([]float64, n)
		return func(i int) error {
			rng := stats.SplitRNG(m.seed, naiveSeed2, gen*m.b+i)
			for j := range buf {
				buf[j] = m.sample[rng.IntN(n)]
			}
			st, err := m.red.Initialize(m.key, buf)
			if err != nil {
				return fmt.Errorf("delta: resample %d: %w", i, err)
			}
			m.charge(int64(n))
			v, err := m.red.Finalize(st)
			if err != nil {
				return fmt.Errorf("delta: resample %d: %w", i, err)
			}
			m.values[i] = v
			return nil
		}
	})
}

func (m *NaiveMaintainer) charge(n int64) {
	m.updates.Add(n)
	if m.metrics != nil {
		m.metrics.RecordsReduced.Add(n)
	}
}

// Results returns the current result distribution.
func (m *NaiveMaintainer) Results() ([]float64, error) {
	if len(m.values) == 0 {
		return nil, errors.New("delta: no sample yet")
	}
	return append([]float64(nil), m.values...), nil
}

// CV returns the coefficient of variation of the result distribution.
func (m *NaiveMaintainer) CV() (float64, error) {
	vals, err := m.Results()
	if err != nil {
		return 0, err
	}
	return stats.CV(vals)
}

// bytesPerItem mirrors the sketch package's record size for charging.
const bytesPerItem = 8
