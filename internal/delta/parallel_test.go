package delta

import (
	"runtime"
	"testing"
)

// growSchedule applies a fixed growth schedule and returns the final
// result distribution.
func growSchedule(t *testing.T, cfg Config) []float64 {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for gi, sz := range []int{300, 300, 600, 1200} {
		if err := m.Grow(sampleData(sz, uint64(gi+700))); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestMaintainerDeterministicAcrossParallelism: every resample owns its
// rng stream, so the full grow schedule must produce bit-identical
// result distributions at parallelism 1, 4 and GOMAXPROCS.
func TestMaintainerDeterministicAcrossParallelism(t *testing.T) {
	base := Config{Reducer: welfordReducer{}, B: 25, Seed: 42}
	var ref []float64
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := base
		cfg.Parallelism = par
		vals := growSchedule(t, cfg)
		if ref == nil {
			ref = vals
			continue
		}
		for i := range ref {
			if vals[i] != ref[i] {
				t.Fatalf("parallelism %d: Results()[%d] = %v, want %v (bit-identical)", par, i, vals[i], ref[i])
			}
		}
	}
}

func TestNaiveMaintainerDeterministicAcrossParallelism(t *testing.T) {
	var ref []float64
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		m, err := NewNaive(Config{Reducer: welfordReducer{}, B: 25, Seed: 42, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for gi, sz := range []int{400, 800} {
			if err := m.Grow(sampleData(sz, uint64(gi+800))); err != nil {
				t.Fatal(err)
			}
		}
		vals, err := m.Results()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = vals
			continue
		}
		for i := range ref {
			if vals[i] != ref[i] {
				t.Fatalf("parallelism %d: Results()[%d] = %v, want %v", par, i, vals[i], ref[i])
			}
		}
	}
}

// TestMaintainerParallelInvariants re-checks the core §4.1 invariants
// (sizes, state/item agreement) with the worker pool engaged, including
// the non-removable-state rebuild path.
func TestMaintainerParallelInvariants(t *testing.T) {
	m, err := New(Config{Reducer: welfordReducer{}, B: 12, Seed: 19, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for gi, sz := range []int{250, 250, 500} {
		if err := m.Grow(sampleData(sz, uint64(gi+900))); err != nil {
			t.Fatal(err)
		}
		total += sz
	}
	for ri, rs := range m.ResampleSizes() {
		if rs != total {
			t.Fatalf("resample %d size %d, want %d", ri, rs, total)
		}
	}
	vals, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 12 {
		t.Fatalf("got %d values", len(vals))
	}

	// Rebuild path under parallelism (no Remove support).
	nr, err := New(Config{Reducer: noRemoveReducer{}, B: 8, Seed: 20, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for gi, sz := range []int{300, 300} {
		if err := nr.Grow(sampleData(sz, uint64(gi+950))); err != nil {
			t.Fatal(err)
		}
	}
	for _, sz := range nr.ResampleSizes() {
		if sz != 600 {
			t.Fatalf("size %d, want 600", sz)
		}
	}
}
