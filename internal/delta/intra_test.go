package delta

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stats"
)

func TestProbIdenticalFractionPaperExample(t *testing.T) {
	// §4.2: "if n = 29 and y = 0.3 … 35% of the time, resamples will
	// contain 30% of identical data" — the formula gives ≈0.33–0.35
	// depending on rounding of y·n; accept the paper's ballpark.
	p, err := ProbIdenticalFraction(29, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.25 || p < 0.30 && p > 0.40 {
		// direct band check below
	}
	if p < 0.25 || p > 0.45 {
		t.Fatalf("P(29, 0.3) = %v, want ≈0.35", p)
	}
}

func TestProbIdenticalFractionEdges(t *testing.T) {
	p, err := ProbIdenticalFraction(10, 0)
	if err != nil || p != 1 {
		t.Fatalf("y=0 → P=%v, %v; want 1", p, err)
	}
	// y=1: probability all n draws distinct = n!/n^n, small but positive.
	p, err = ProbIdenticalFraction(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(logFact(10) - 10*math.Log(10))
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("y=1 → %v, want %v", p, want)
	}
	if _, err := ProbIdenticalFraction(0, 0.5); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := ProbIdenticalFraction(10, 1.5); err == nil {
		t.Fatal("y>1 should error")
	}
}

func logFact(n int) float64 {
	lf := 0.0
	for i := 2; i <= n; i++ {
		lf += math.Log(float64(i))
	}
	return lf
}

func TestProbMonotoneDecreasingInY(t *testing.T) {
	prev := 2.0
	for y := 0.0; y <= 1.0; y += 0.05 {
		p, err := ProbIdenticalFraction(50, y)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-12 {
			t.Fatalf("P not monotone at y=%v: %v > %v", y, p, prev)
		}
		prev = p
	}
}

func TestOptimalYMaximises(t *testing.T) {
	for _, n := range []int{5, 10, 29, 50, 100} {
		y, s, err := OptimalY(n)
		if err != nil {
			t.Fatal(err)
		}
		if y <= 0 || y >= 1 {
			t.Fatalf("n=%d: optimal y=%v outside (0,1)", n, y)
		}
		// No grid point should beat the optimum materially.
		for g := 0.01; g < 1; g += 0.01 {
			sg, err := ExpectedSavings(n, g)
			if err != nil {
				t.Fatal(err)
			}
			if sg > s+1e-3 {
				t.Fatalf("n=%d: grid y=%v saves %v > optimum %v@%v", n, g, sg, s, y)
			}
		}
	}
	if _, _, err := OptimalY(0); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestSavingsShrinkWithN(t *testing.T) {
	// Fig. 3's shape: expected savings fall as the sample size grows —
	// the optimization is "best suited for small sample sizes" (§4.2).
	_, s10, err := OptimalY(10)
	if err != nil {
		t.Fatal(err)
	}
	_, s100, err := OptimalY(100)
	if err != nil {
		t.Fatal(err)
	}
	_, s1000, err := OptimalY(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !(s10 > s100 && s100 > s1000) {
		t.Fatalf("savings not decreasing: %v, %v, %v", s10, s100, s1000)
	}
}

func TestSharedResamplerCorrectAndCheaper(t *testing.T) {
	s := sampleData(200, 42)
	rng := rand.New(rand.NewPCG(1, 2))
	draw := func(k int) []float64 {
		out := make([]float64, k)
		for i := range out {
			out[i] = s[rng.IntN(len(s))]
		}
		return out
	}
	sr, err := NewSharedResampler(welfordReducer{}, "k")
	if err != nil {
		t.Fatal(err)
	}
	const B = 50
	vals, work, err := sr.Draw(s, B, draw)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != B {
		t.Fatalf("got %d values", len(vals))
	}
	naive := NaiveWork(len(s), B)
	if work >= naive {
		t.Fatalf("shared work %d not below naive %d", work, naive)
	}
	// Estimate must still track the sample mean.
	est, _ := stats.Mean(vals)
	truth, _ := stats.Mean(s)
	sd, _ := stats.StdDev(s)
	if math.Abs(est-truth) > 5*sd/math.Sqrt(float64(len(s))) {
		t.Fatalf("shared-resample estimate %v vs %v", est, truth)
	}
}

func TestSharedResamplerValidation(t *testing.T) {
	if _, err := NewSharedResampler(nil, "k"); err == nil {
		t.Fatal("nil reducer should error")
	}
	sr, _ := NewSharedResampler(welfordReducer{}, "k")
	if _, _, err := sr.Draw(nil, 10, func(k int) []float64 { return nil }); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, _, err := sr.Draw([]float64{1}, 1, func(k int) []float64 { return nil }); err == nil {
		t.Fatal("B=1 should error")
	}
}
