// Package delta implements §4's resampling optimizations:
//
//   - inter-iteration maintenance (§4.1): when the sample s grows to
//     s′ = s ∪ Δs, each bootstrap resample is *updated* instead of
//     redrawn — the retained-part size follows Binomial(n′, n/n′)
//     (Eq. 2), approximated for large n′ by the Gaussian of Eq. 3 —
//     with random deletes/adds served from the two-layer sketches of
//     package sketch, and the user-job states updated incrementally;
//
//   - intra-iteration sharing (§4.2): Eq. 4 gives the probability that
//     a fraction y of a resample is identical to another's; the optimal
//     y maximising expected saved work P(X=y)·y lets EARL compute a
//     shared block of each resample once and reuse it.
//
// The B resamples are mutually independent, so each owns its own rng
// stream (derived deterministically from Config.Seed) and its own
// sketches; Grow shards the per-resample update work across a worker
// pool of Config.Parallelism goroutines and produces identical results
// at any parallelism level.
//
// The per-item hot path is allocation-free in steady state: a
// generation's deletes and adds are collected into per-worker scratch
// buffers (internal/pool) and applied to the user-job state in one
// batched interface call each (mr.RemoveValues / mr.UpdateAll), and the
// weighted part/generation picks run on Fenwick trees instead of linear
// cumulative scans — same rng-for-rng pick, O(log) instead of O(parts).
package delta

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/mr"
	"repro/internal/pool"
	"repro/internal/simcost"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// seed2Base is the second PCG seed word for per-resample streams.
const seed2Base = 0x1f83d9abfb41bd6b

// RetainedSize draws |b′_s| — how many of a resample's n′ items come
// from the old sample s of size n rather than from Δs — from
// Binomial(n′, n/n′) (Eq. 2). stats.Binomial switches to the Eq. 3
// Gaussian approximation exactly when the paper's argument applies
// (large n′).
func RetainedSize(rng *rand.Rand, n, nPrime int) (int, error) {
	if n < 0 || nPrime < n {
		return 0, fmt.Errorf("delta: need 0 ≤ n ≤ n′, got n=%d n′=%d", n, nPrime)
	}
	if nPrime == 0 {
		return 0, nil
	}
	return stats.Binomial(rng, nPrime, float64(n)/float64(nPrime)), nil
}

// Maintainer owns B bootstrap resamples of a growing sample and the
// per-resample user-job states, applying inter-iteration delta
// maintenance on each Grow call. It is the engine behind EARL's cheap
// sample-size expansion.
type Maintainer struct {
	red     mr.IncrementalReducer
	b       int
	c       float64
	par     int
	seed    uint64
	metrics *simcost.Metrics

	n int
	// genTree holds |Δs_k| per generation for O(log gens) weighted picks.
	// The Δs_k data itself lives on in the per-resample sketch caches,
	// which are the draw path's actual consumers.
	genTree   stats.Fenwick
	resamples []*resample
	key       string
	rebuilds  atomic.Int64 // states rebuilt because Remove was unsupported
	updates   atomic.Int64 // state add/remove operations performed (work measure)

	generation int
}

// resample is one of the B maintained resamples. Each owns its rng
// stream, its per-generation sketches and a Fenwick tree over its part
// sizes, so growing it touches no state shared with the other resamples
// (beyond read-only delta data and the atomic cost counters) — the
// property the parallel Grow relies on.
type resample struct {
	rng      *rand.Rand
	state    mr.State
	parts    []*sketch.Part  // parts[k] = b_Δs(k+1)
	partTree stats.Fenwick   // Fenwick over parts[k].Size(), kept in lockstep
	caches   []*sketch.Cache // caches[k] = this resample's sketch(Δs_(k+1))
}

// growScratch is the per-worker scratch state of a Grow pass: reusable
// buffers for a generation's collected deletes and adds, so the
// per-resample-per-generation `make` churn disappears.
type growScratch struct {
	dels pool.Floats
	adds pool.Floats
}

// Config configures a Maintainer.
type Config struct {
	Reducer mr.IncrementalReducer
	B       int              // number of bootstrap resamples
	C       float64          // sketch constant (sketch.DefaultC if 0)
	Seed    uint64           // PCG seed
	Metrics *simcost.Metrics // optional cost accounting
	Key     string           // reduce key passed to Initialize
	// Parallelism is the worker-pool size Grow shards the B resamples
	// across: 0 (or negative) means runtime.GOMAXPROCS, 1 forces the
	// sequential path — the same convention as core.Options.Parallelism.
	// Results are identical at any value because every resample owns a
	// deterministic rng stream.
	Parallelism int
}

// New creates an empty Maintainer; call Grow with the initial sample
// (the paper treats the first sample as Δs₁ added to an empty set).
func New(cfg Config) (*Maintainer, error) {
	if cfg.Reducer == nil {
		return nil, errors.New("delta: Config.Reducer is required")
	}
	if cfg.B < 2 {
		return nil, fmt.Errorf("delta: need B ≥ 2, got %d", cfg.B)
	}
	c := cfg.C
	if c <= 0 {
		c = sketch.DefaultC
	}
	return &Maintainer{
		red:     cfg.Reducer,
		b:       cfg.B,
		c:       c,
		par:     pool.Workers(cfg.Parallelism),
		seed:    cfg.Seed,
		metrics: cfg.Metrics,
		key:     cfg.Key,
	}, nil
}

// B returns the number of maintained resamples.
func (m *Maintainer) B() int { return m.b }

// N returns the current sample size.
func (m *Maintainer) N() int { return m.n }

// Generation returns how many Grow calls have been applied.
func (m *Maintainer) Generation() int { return m.generation }

// Rebuilds reports how many times a state had to be rebuilt from scratch
// because its reducer does not support Remove.
func (m *Maintainer) Rebuilds() int { return int(m.rebuilds.Load()) }

// Updates reports the total number of per-item state operations (adds,
// removes, rebuild re-adds) performed so far — the work that delta
// maintenance saves relative to recomputing every resample from scratch
// (§4, measured in Fig. 10). It is also charged to Metrics as
// RecordsReduced so modeled job times include resampling CPU.
func (m *Maintainer) Updates() int64 { return m.updates.Load() }

// charge records n state operations.
func (m *Maintainer) charge(n int64) {
	m.updates.Add(n)
	if m.metrics != nil {
		m.metrics.RecordsReduced.Add(n)
	}
}

// Grow applies one iteration: the sample becomes s ∪ deltaSample and all
// B resamples (and their states) are updated in place per §4.1, sharded
// across the configured worker pool.
func (m *Maintainer) Grow(deltaSample []float64) error {
	if len(deltaSample) == 0 {
		return errors.New("delta: empty delta sample")
	}
	ds := append([]float64(nil), deltaSample...)
	nPrime := m.n + len(ds)

	first := m.n == 0
	if first {
		m.resamples = make([]*resample, m.b)
		for i := range m.resamples {
			m.resamples[i] = &resample{rng: stats.SplitRNG(m.seed, seed2Base, i)}
		}
	}
	err := m.forEachResample(func(r *resample, scratch *growScratch) error {
		if first {
			// First iteration: the resample is n′ items drawn with
			// replacement from Δs₁, which is memory-resident right now —
			// no disk charge (sketches are kept for *future* iterations,
			// when Δs₁ has been spilled).
			if err := m.initResample(r, nPrime, ds, scratch); err != nil {
				return err
			}
		} else if err := m.growResample(r, nPrime, ds, scratch); err != nil {
			return err
		}
		// End-of-iteration sketch bookkeeping, and this resample's cache
		// over the new delta generation for future random adds. Note the
		// cost-model consequence of per-resample caches: each gets its
		// initial c·√|Δs| prefetch free (Δs is memory-resident this
		// iteration for every resample alike), so the charged refills of
		// the old one-shared-cache layout largely disappear — the modeled
		// disk cost of the optimized path drops accordingly.
		cache, err := sketch.NewCache(ds, m.c, r.rng, m.metrics)
		if err != nil {
			return err
		}
		r.caches = append(r.caches, cache)
		for _, p := range r.parts {
			p.EndIteration()
		}
		return nil
	})
	if err != nil {
		return err
	}
	m.genTree.Append(int64(len(ds)))
	m.n = nPrime
	m.generation++
	return nil
}

// forEachResample runs fn over every resample, sharded across the
// configured worker pool with per-worker scratch buffers. The first
// error in resample order is returned.
func (m *Maintainer) forEachResample(fn func(*resample, *growScratch) error) error {
	return pool.ForEachWorker(len(m.resamples), m.par, func() func(int) error {
		scratch := &growScratch{}
		return func(i int) error {
			if err := fn(m.resamples[i], scratch); err != nil {
				return fmt.Errorf("delta: resample %d: %w", i, err)
			}
			return nil
		}
	})
}

// initResample builds one resample for the first iteration.
//
//earl:hotpath
func (m *Maintainer) initResample(r *resample, nPrime int, ds []float64, scratch *growScratch) error {
	items := scratch.adds.Take(nPrime)
	for j := 0; j < nPrime; j++ {
		items = append(items, ds[r.rng.IntN(len(ds))])
	}
	st, err := m.red.Initialize(m.key, items)
	if err != nil {
		return fmt.Errorf("initialize: %w", err)
	}
	m.charge(int64(len(items)))
	r.state = st
	r.parts = []*sketch.Part{sketch.NewPart(items, m.c, r.rng, m.metrics)}
	r.partTree.Append(int64(len(items)))
	return nil
}

// growResample applies one §4.1 maintenance step to one resample. The
// rng draw sequence is identical item for item to the historical
// one-Update-per-item implementation — only the *state* application is
// batched (deletes and adds collected into scratch, one interface call
// per phase) — so fixed-seed results stay bit-identical.
//
//earl:hotpath
func (m *Maintainer) growResample(r *resample, nPrime int, ds []float64, scratch *growScratch) error {
	keep, err := RetainedSize(r.rng, m.n, nPrime)
	if err != nil {
		return err
	}
	switch {
	case keep < m.n:
		// Randomly delete (n − keep) items from the old parts, each part
		// chosen with probability proportional to its size (a uniform
		// deletion over the whole resample). Values are collected and
		// removed from the user state in one batch.
		dels := scratch.dels.Take(m.n - keep)
		for d := 0; d < m.n-keep; d++ {
			pi, p := pickPartWeighted(r)
			if p == nil {
				break
			}
			v, err := p.DeleteRandom()
			if err != nil {
				return err
			}
			r.partTree.Add(pi, -1)
			dels = append(dels, v)
		}
		if err := m.removeFromState(r, dels); err != nil {
			return err
		}
		m.charge(int64(len(dels)))
	case keep > m.n:
		// Add (keep − n) items drawn randomly from the old sample s:
		// pick a generation weighted by size, draw from this resample's
		// cache over it. Values are folded into the user state in one
		// batch.
		adds := scratch.adds.Take(keep - m.n)
		for a := 0; a < keep-m.n; a++ {
			k := m.pickGenWeighted(r.rng)
			v := r.caches[k].Next()
			r.parts[k].Add(v)
			r.partTree.Add(k, 1)
			adds = append(adds, v)
		}
		st, err := mr.UpdateAll(m.red, r.state, adds)
		if err != nil {
			return err
		}
		r.state = st
		m.charge(int64(len(adds)))
	}
	// Fill to n′ with draws from Δs (the new generation) — memory-
	// resident this iteration, so drawn directly and folded in one batch.
	items := scratch.adds.Take(nPrime - keep)
	for j := 0; j < nPrime-keep; j++ {
		items = append(items, ds[r.rng.IntN(len(ds))])
	}
	st, err := mr.UpdateAll(m.red, r.state, items)
	if err != nil {
		return err
	}
	r.state = st
	m.charge(int64(len(items)))
	r.parts = append(r.parts, sketch.NewPart(items, m.c, r.rng, m.metrics))
	r.partTree.Append(int64(len(items)))
	return nil
}

// pickPartWeighted picks one of r's non-empty parts with probability
// proportional to its size: one rng draw mapped through the part-size
// Fenwick tree — the same cumulative-width pick a linear scan computes
// (so fixed-seed draws are unchanged), in O(log parts), and empty parts
// (zero width) are genuinely never returned.
func pickPartWeighted(r *resample) (int, *sketch.Part) {
	total := r.partTree.Total()
	if total == 0 {
		return -1, nil
	}
	i := r.partTree.Pick(int64(r.rng.IntN(int(total))))
	return i, r.parts[i]
}

// pickGenWeighted picks a generation index with probability proportional
// to |Δs_k| — a uniform draw over the old sample s, via the generation
// Fenwick tree.
func (m *Maintainer) pickGenWeighted(rng *rand.Rand) int {
	return m.genTree.Pick(int64(rng.IntN(int(m.genTree.Total()))))
}

// removeFromState removes a batch of values from a resample's state —
// one mr.BatchRemovableState call when supported, a per-value Remove
// loop otherwise — rebuilding the state from the resample's surviving
// items when the state cannot remove at all. The rebuild is the slow
// path the paper's design avoids for moment-like statistics; batching
// means one rebuild per generation (not one per deleted item), charged
// as the full re-read it implies.
func (m *Maintainer) removeFromState(r *resample, vs []float64) error {
	if len(vs) == 0 {
		return nil
	}
	handled, err := mr.RemoveValues(r.state, vs)
	if err != nil {
		return err
	}
	if handled {
		return nil
	}
	m.rebuilds.Add(1)
	var all []float64
	for _, p := range r.parts {
		all = append(all, p.Items()...) // Items() charges the disk read
	}
	st, err := m.red.Initialize(m.key, all)
	if err != nil {
		return err
	}
	m.charge(int64(len(all)))
	r.state = st
	return nil
}

// Results finalizes every resample state and returns the B values of the
// statistic — the result distribution handed to the accuracy estimation
// stage.
func (m *Maintainer) Results() ([]float64, error) {
	if m.n == 0 {
		return nil, errors.New("delta: no sample yet")
	}
	out := make([]float64, len(m.resamples))
	for i, r := range m.resamples {
		v, err := m.red.Finalize(r.state)
		if err != nil {
			return nil, fmt.Errorf("delta: finalize resample %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// CV finalizes all resamples and returns the coefficient of variation of
// the result distribution — EARL's error measure.
func (m *Maintainer) CV() (float64, error) {
	vals, err := m.Results()
	if err != nil {
		return 0, err
	}
	return stats.CV(vals)
}

// ResampleSizes returns each resample's current item count (each should
// equal N); exposed for invariant tests.
func (m *Maintainer) ResampleSizes() []int {
	out := make([]int, len(m.resamples))
	for i, r := range m.resamples {
		n := 0
		for _, p := range r.parts {
			n += p.Size()
		}
		out[i] = n
	}
	return out
}
