// Package delta implements §4's resampling optimizations:
//
//   - inter-iteration maintenance (§4.1): when the sample s grows to
//     s′ = s ∪ Δs, each bootstrap resample is *updated* instead of
//     redrawn — the retained-part size follows Binomial(n′, n/n′)
//     (Eq. 2), approximated for large n′ by the Gaussian of Eq. 3 —
//     with random deletes/adds served from the two-layer sketches of
//     package sketch, and the user-job states updated incrementally;
//
//   - intra-iteration sharing (§4.2): Eq. 4 gives the probability that
//     a fraction y of a resample is identical to another's; the optimal
//     y maximising expected saved work P(X=y)·y lets EARL compute a
//     shared block of each resample once and reuse it.
//
// The B resamples are mutually independent, so each owns its own rng
// stream (derived deterministically from Config.Seed) and its own
// sketches; Grow shards the per-resample update work across a worker
// pool of Config.Parallelism goroutines and produces identical results
// at any parallelism level.
package delta

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/mr"
	"repro/internal/pool"
	"repro/internal/simcost"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// seed2Base is the second PCG seed word for per-resample streams.
const seed2Base = 0x1f83d9abfb41bd6b

// RetainedSize draws |b′_s| — how many of a resample's n′ items come
// from the old sample s of size n rather than from Δs — from
// Binomial(n′, n/n′) (Eq. 2). stats.Binomial switches to the Eq. 3
// Gaussian approximation exactly when the paper's argument applies
// (large n′).
func RetainedSize(rng *rand.Rand, n, nPrime int) (int, error) {
	if n < 0 || nPrime < n {
		return 0, fmt.Errorf("delta: need 0 ≤ n ≤ n′, got n=%d n′=%d", n, nPrime)
	}
	if nPrime == 0 {
		return 0, nil
	}
	return stats.Binomial(rng, nPrime, float64(n)/float64(nPrime)), nil
}

// Maintainer owns B bootstrap resamples of a growing sample and the
// per-resample user-job states, applying inter-iteration delta
// maintenance on each Grow call. It is the engine behind EARL's cheap
// sample-size expansion.
type Maintainer struct {
	red     mr.IncrementalReducer
	b       int
	c       float64
	par     int
	seed    uint64
	metrics *simcost.Metrics

	n          int
	gens       [][]float64 // Δs_1 .. Δs_i
	resamples  []*resample
	key        string
	rebuilds   atomic.Int64 // states rebuilt because Remove was unsupported
	updates    atomic.Int64 // state add/remove operations performed (work measure)
	generation int
}

// resample is one of the B maintained resamples. Each owns its rng
// stream and its per-generation sketches, so growing it touches no state
// shared with the other resamples (beyond read-only delta data and the
// atomic cost counters) — the property the parallel Grow relies on.
type resample struct {
	rng    *rand.Rand
	state  mr.State
	parts  []*sketch.Part  // parts[k] = b_Δs(k+1)
	caches []*sketch.Cache // caches[k] = this resample's sketch(Δs_(k+1))
}

// Config configures a Maintainer.
type Config struct {
	Reducer mr.IncrementalReducer
	B       int              // number of bootstrap resamples
	C       float64          // sketch constant (sketch.DefaultC if 0)
	Seed    uint64           // PCG seed
	Metrics *simcost.Metrics // optional cost accounting
	Key     string           // reduce key passed to Initialize
	// Parallelism is the worker-pool size Grow shards the B resamples
	// across: 0 (or negative) means runtime.GOMAXPROCS, 1 forces the
	// sequential path — the same convention as core.Options.Parallelism.
	// Results are identical at any value because every resample owns a
	// deterministic rng stream.
	Parallelism int
}

// New creates an empty Maintainer; call Grow with the initial sample
// (the paper treats the first sample as Δs₁ added to an empty set).
func New(cfg Config) (*Maintainer, error) {
	if cfg.Reducer == nil {
		return nil, errors.New("delta: Config.Reducer is required")
	}
	if cfg.B < 2 {
		return nil, fmt.Errorf("delta: need B ≥ 2, got %d", cfg.B)
	}
	c := cfg.C
	if c <= 0 {
		c = sketch.DefaultC
	}
	return &Maintainer{
		red:     cfg.Reducer,
		b:       cfg.B,
		c:       c,
		par:     pool.Workers(cfg.Parallelism),
		seed:    cfg.Seed,
		metrics: cfg.Metrics,
		key:     cfg.Key,
	}, nil
}

// B returns the number of maintained resamples.
func (m *Maintainer) B() int { return m.b }

// N returns the current sample size.
func (m *Maintainer) N() int { return m.n }

// Generation returns how many Grow calls have been applied.
func (m *Maintainer) Generation() int { return m.generation }

// Rebuilds reports how many times a state had to be rebuilt from scratch
// because its reducer does not support Remove.
func (m *Maintainer) Rebuilds() int { return int(m.rebuilds.Load()) }

// Updates reports the total number of per-item state operations (adds,
// removes, rebuild re-adds) performed so far — the work that delta
// maintenance saves relative to recomputing every resample from scratch
// (§4, measured in Fig. 10). It is also charged to Metrics as
// RecordsReduced so modeled job times include resampling CPU.
func (m *Maintainer) Updates() int64 { return m.updates.Load() }

// charge records n state operations.
func (m *Maintainer) charge(n int64) {
	m.updates.Add(n)
	if m.metrics != nil {
		m.metrics.RecordsReduced.Add(n)
	}
}

// Grow applies one iteration: the sample becomes s ∪ deltaSample and all
// B resamples (and their states) are updated in place per §4.1, sharded
// across the configured worker pool.
func (m *Maintainer) Grow(deltaSample []float64) error {
	if len(deltaSample) == 0 {
		return errors.New("delta: empty delta sample")
	}
	ds := append([]float64(nil), deltaSample...)
	nPrime := m.n + len(ds)

	first := m.n == 0
	if first {
		m.resamples = make([]*resample, m.b)
		for i := range m.resamples {
			m.resamples[i] = &resample{rng: stats.SplitRNG(m.seed, seed2Base, i)}
		}
	}
	err := m.forEachResample(func(r *resample) error {
		if first {
			// First iteration: the resample is n′ items drawn with
			// replacement from Δs₁, which is memory-resident right now —
			// no disk charge (sketches are kept for *future* iterations,
			// when Δs₁ has been spilled).
			if err := m.initResample(r, nPrime, ds); err != nil {
				return err
			}
		} else if err := m.growResample(r, nPrime, ds); err != nil {
			return err
		}
		// End-of-iteration sketch bookkeeping, and this resample's cache
		// over the new delta generation for future random adds. Note the
		// cost-model consequence of per-resample caches: each gets its
		// initial c·√|Δs| prefetch free (Δs is memory-resident this
		// iteration for every resample alike), so the charged refills of
		// the old one-shared-cache layout largely disappear — the modeled
		// disk cost of the optimized path drops accordingly.
		cache, err := sketch.NewCache(ds, m.c, r.rng, m.metrics)
		if err != nil {
			return err
		}
		r.caches = append(r.caches, cache)
		for _, p := range r.parts {
			p.EndIteration()
		}
		return nil
	})
	if err != nil {
		return err
	}
	m.gens = append(m.gens, ds)
	m.n = nPrime
	m.generation++
	return nil
}

// forEachResample runs fn over every resample, sharded across the
// configured worker pool. The first error in resample order is returned.
func (m *Maintainer) forEachResample(fn func(*resample) error) error {
	return pool.ForEach(len(m.resamples), m.par, func(i int) error {
		if err := fn(m.resamples[i]); err != nil {
			return fmt.Errorf("delta: resample %d: %w", i, err)
		}
		return nil
	})
}

// initResample builds one resample for the first iteration.
func (m *Maintainer) initResample(r *resample, nPrime int, ds []float64) error {
	items := make([]float64, nPrime)
	for j := range items {
		items[j] = ds[r.rng.IntN(len(ds))]
	}
	st, err := m.red.Initialize(m.key, items)
	if err != nil {
		return fmt.Errorf("initialize: %w", err)
	}
	m.charge(int64(len(items)))
	r.state = st
	r.parts = []*sketch.Part{sketch.NewPart(items, m.c, r.rng, m.metrics)}
	return nil
}

func (m *Maintainer) growResample(r *resample, nPrime int, ds []float64) error {
	keep, err := RetainedSize(r.rng, m.n, nPrime)
	if err != nil {
		return err
	}
	switch {
	case keep < m.n:
		// Randomly delete (n − keep) items from the old parts, each part
		// chosen with probability proportional to its size (a uniform
		// deletion over the whole resample).
		for d := 0; d < m.n-keep; d++ {
			p := pickPartWeighted(r)
			if p == nil {
				break
			}
			v, err := p.DeleteRandom()
			if err != nil {
				return err
			}
			if err := m.removeFromState(r, v); err != nil {
				return err
			}
			m.charge(1)
		}
	case keep > m.n:
		// Add (keep − n) items drawn randomly from the old sample s:
		// pick a generation weighted by size, draw from this resample's
		// cache over it.
		for a := 0; a < keep-m.n; a++ {
			k := m.pickGenWeighted(r.rng)
			v := r.caches[k].Next()
			r.parts[k].Add(v)
			st, err := m.red.Update(r.state, v)
			if err != nil {
				return err
			}
			r.state = st
			m.charge(1)
		}
	}
	// Fill to n′ with draws from Δs (the new generation) — memory-
	// resident this iteration, so drawn directly.
	add := nPrime - keep
	items := make([]float64, add)
	for j := range items {
		items[j] = ds[r.rng.IntN(len(ds))]
		st, err := m.red.Update(r.state, items[j])
		if err != nil {
			return err
		}
		r.state = st
		m.charge(1)
	}
	r.parts = append(r.parts, sketch.NewPart(items, m.c, r.rng, m.metrics))
	return nil
}

// pickPartWeighted picks one of r's non-empty parts with probability
// proportional to its size.
func pickPartWeighted(r *resample) *sketch.Part {
	total := 0
	for _, p := range r.parts {
		total += p.Size()
	}
	if total == 0 {
		return nil
	}
	x := r.rng.IntN(total)
	for _, p := range r.parts {
		if x < p.Size() {
			if p.Size() == 0 {
				continue
			}
			return p
		}
		x -= p.Size()
	}
	return r.parts[len(r.parts)-1]
}

// pickGenWeighted picks a generation index with probability proportional
// to |Δs_k| — a uniform draw over the old sample s.
func (m *Maintainer) pickGenWeighted(rng *rand.Rand) int {
	total := 0
	for _, g := range m.gens {
		total += len(g)
	}
	x := rng.IntN(total)
	for k, g := range m.gens {
		if x < len(g) {
			return k
		}
		x -= len(g)
	}
	return len(m.gens) - 1
}

// removeFromState removes v from a resample's state, rebuilding the
// state from the resample's surviving items when the state cannot
// remove. The rebuild is the slow path the paper's design avoids for
// moment-like statistics; it is charged as the full re-read it implies.
func (m *Maintainer) removeFromState(r *resample, v float64) error {
	if rem, ok := r.state.(mr.RemovableState); ok {
		return rem.Remove(v)
	}
	m.rebuilds.Add(1)
	var all []float64
	for _, p := range r.parts {
		all = append(all, p.Items()...) // Items() charges the disk read
	}
	st, err := m.red.Initialize(m.key, all)
	if err != nil {
		return err
	}
	m.charge(int64(len(all)))
	r.state = st
	return nil
}

// Results finalizes every resample state and returns the B values of the
// statistic — the result distribution handed to the accuracy estimation
// stage.
func (m *Maintainer) Results() ([]float64, error) {
	if m.n == 0 {
		return nil, errors.New("delta: no sample yet")
	}
	out := make([]float64, len(m.resamples))
	for i, r := range m.resamples {
		v, err := m.red.Finalize(r.state)
		if err != nil {
			return nil, fmt.Errorf("delta: finalize resample %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// CV finalizes all resamples and returns the coefficient of variation of
// the result distribution — EARL's error measure.
func (m *Maintainer) CV() (float64, error) {
	vals, err := m.Results()
	if err != nil {
		return 0, err
	}
	return stats.CV(vals)
}

// ResampleSizes returns each resample's current item count (each should
// equal N); exposed for invariant tests.
func (m *Maintainer) ResampleSizes() []int {
	out := make([]int, len(m.resamples))
	for i, r := range m.resamples {
		n := 0
		for _, p := range r.parts {
			n += p.Size()
		}
		out[i] = n
	}
	return out
}
