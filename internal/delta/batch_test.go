package delta

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"repro/internal/jobs"
	"repro/internal/mr"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// TestPickPartWeightedSkipsEmptyParts is the regression test for the
// historical pickPartWeighted bug: its inner `if p.Size() == 0` branch
// was unreachable, so the empty-part skip it promised was never
// exercised. The Fenwick-weighted pick gives empty parts zero width —
// this pins that they are genuinely never returned, and that picks stay
// proportional to part size.
func TestPickPartWeightedSkipsEmptyParts(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	r := &resample{rng: rng}
	sizes := []int{5, 0, 3, 0, 0, 2}
	for _, n := range sizes {
		items := make([]float64, n)
		for i := range items {
			items[i] = float64(i)
		}
		r.parts = append(r.parts, sketch.NewPart(items, 0, rng, nil))
		r.partTree.Append(int64(n))
	}
	counts := make([]int, len(sizes))
	const draws = 10_000
	for d := 0; d < draws; d++ {
		pi, p := pickPartWeighted(r)
		if p == nil {
			t.Fatal("pick returned nil with non-empty parts")
		}
		if p.Size() == 0 {
			t.Fatalf("picked empty part %d", pi)
		}
		if p != r.parts[pi] {
			t.Fatalf("index %d does not match returned part", pi)
		}
		counts[pi]++
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	for i, n := range sizes {
		if n == 0 {
			if counts[i] != 0 {
				t.Fatalf("empty part %d picked %d times", i, counts[i])
			}
			continue
		}
		want := float64(draws) * float64(n) / float64(total)
		if got := float64(counts[i]); got < 0.8*want || got > 1.2*want {
			t.Fatalf("part %d (size %d) picked %v times, want ≈%v", i, n, got, want)
		}
	}
}

// TestPickPartWeightedAllEmpty covers the degenerate every-part-empty
// case: the pick must report exhaustion, not loop or panic.
func TestPickPartWeightedAllEmpty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	r := &resample{rng: rng}
	r.parts = append(r.parts, sketch.NewPart(nil, 0, rng, nil))
	r.partTree.Append(0)
	if pi, p := pickPartWeighted(r); p != nil || pi != -1 {
		t.Fatalf("all-empty pick returned (%d, %v), want (-1, nil)", pi, p)
	}
}

// TestMaintainerPartSizesMatchTree pins the partTree-in-lockstep
// invariant across a growth schedule: the Fenwick totals must equal the
// actual part sizes after every generation, for a batch-capable state
// (the quantile multiset) and the per-value fallback alike.
func TestMaintainerPartSizesMatchTree(t *testing.T) {
	for name, red := range map[string]mr.IncrementalReducer{
		"quantile": jobs.Median().Reducer,
		"welford":  welfordReducer{},
	} {
		m, err := New(Config{Reducer: red, B: 8, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		for gi, sz := range []int{200, 300, 500} {
			if err := m.Grow(sampleData(sz, uint64(gi+30))); err != nil {
				t.Fatal(err)
			}
			for ri, r := range m.resamples {
				var n int64
				for pi, p := range r.parts {
					n += int64(p.Size())
					if got := r.partTree.Prefix(pi+1) - r.partTree.Prefix(pi); got != int64(p.Size()) {
						t.Fatalf("%s: resample %d part %d tree weight %d, size %d", name, ri, pi, got, p.Size())
					}
				}
				if r.partTree.Total() != n || n != int64(m.N()) {
					t.Fatalf("%s: resample %d tree total %d, items %d, N %d", name, ri, r.partTree.Total(), n, m.N())
				}
			}
		}
	}
}

// TestMaintainerQuantileBatchedGrowDeterministic runs the quantile
// (order-statistic multiset) reducer through the batched Grow path at
// several parallelism levels — bit-identical results, and agreement
// with the naive recompute's sample on every size invariant. Under
// `go test -race` this doubles as the race coverage of batched Grow.
func TestMaintainerQuantileBatchedGrowDeterministic(t *testing.T) {
	var ref []float64
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		m, err := New(Config{Reducer: jobs.Median().Reducer, B: 20, Seed: 77, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for gi, sz := range []int{400, 400, 800} {
			if err := m.Grow(sampleData(sz, uint64(gi+500))); err != nil {
				t.Fatal(err)
			}
		}
		for _, sz := range m.ResampleSizes() {
			if sz != m.N() {
				t.Fatalf("resample size %d, want %d", sz, m.N())
			}
		}
		vals, err := m.Results()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = vals
			continue
		}
		for i := range ref {
			if vals[i] != ref[i] {
				t.Fatalf("parallelism %d: Results()[%d] = %v, want %v (bit-identical)", par, i, vals[i], ref[i])
			}
		}
	}
	// The maintained medians must hug the true median of the accumulated
	// sample.
	var all []float64
	for gi, sz := range []int{400, 400, 800} {
		all = append(all, sampleData(sz, uint64(gi+500))...)
	}
	truth, err := stats.Median(all)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := stats.Mean(ref)
	if err != nil {
		t.Fatal(err)
	}
	if d := mean - truth; d > 0.2 || d < -0.2 {
		t.Fatalf("maintained median %v far from truth %v", mean, truth)
	}
}

// TestMaintainerGrowSteadyStateAllocs pins the tentpole's alloc budget
// at the unit level: growing B resamples by a generation must cost a
// small constant number of allocations per resample (sketch part +
// cache + batch boxing), not one per item as the per-value Update loop
// did.
func TestMaintainerGrowSteadyStateAllocs(t *testing.T) {
	m, err := New(Config{Reducer: jobs.Mean().Reducer, B: 10, Seed: 9, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Grow(sampleData(2000, 1)); err != nil {
		t.Fatal(err)
	}
	gen := uint64(2)
	allocs := testing.AllocsPerRun(5, func() {
		if err := m.Grow(sampleData(2000, gen)); err != nil {
			t.Fatal(err)
		}
		gen++
	})
	// ~10 resamples × (part copy + part struct + cache struct + cache buf
	// + batch header boxing …) plus the retained Δs copy; one alloc per
	// *item* would be ≥ 20k.
	if allocs > 300 {
		t.Fatalf("Grow allocated %.0f/op, want small constant per resample (≤300)", allocs)
	}
}
