package delta

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/mr"
	"repro/internal/simcost"
	"repro/internal/stats"
	"repro/internal/workload"
)

// welfordReducer is the mean statistic as an IncrementalReducer with
// Remove support — the happy path for delta maintenance.
type welfordReducer struct{}

type welfordState struct {
	w stats.Welford
}

func (s *welfordState) Remove(v float64) error {
	s.w.Remove(v)
	return nil
}

func (welfordReducer) Initialize(key string, values []float64) (mr.State, error) {
	st := &welfordState{}
	for _, v := range values {
		st.w.Add(v)
	}
	return st, nil
}

func (welfordReducer) Update(state mr.State, input any) (mr.State, error) {
	st, ok := state.(*welfordState)
	if !ok {
		return nil, mr.ErrBadState
	}
	switch x := input.(type) {
	case float64:
		st.w.Add(x)
	case *welfordState:
		st.w.Merge(x.w)
	default:
		return nil, mr.ErrBadInput
	}
	return st, nil
}

func (welfordReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*welfordState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return st.w.Mean(), nil
}

func (welfordReducer) Correct(result, p float64) float64 { return result }

// noRemoveReducer is the same statistic without Remove — exercises the
// rebuild slow path.
type noRemoveReducer struct{ welfordReducer }

type plainState struct{ w stats.Welford }

func (noRemoveReducer) Initialize(key string, values []float64) (mr.State, error) {
	st := &plainState{}
	for _, v := range values {
		st.w.Add(v)
	}
	return st, nil
}

func (noRemoveReducer) Update(state mr.State, input any) (mr.State, error) {
	st, ok := state.(*plainState)
	if !ok {
		return nil, mr.ErrBadState
	}
	switch x := input.(type) {
	case float64:
		st.w.Add(x)
	case *plainState:
		st.w.Merge(x.w)
	default:
		return nil, mr.ErrBadInput
	}
	return st, nil
}

func (noRemoveReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*plainState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return st.w.Mean(), nil
}

func sampleData(n int, seed uint64) []float64 {
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: n, Seed: seed}.Generate()
	if err != nil {
		panic(err)
	}
	return xs
}

func TestRetainedSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		k, err := RetainedSize(rng, 100, 150)
		if err != nil {
			t.Fatal(err)
		}
		if k < 0 || k > 150 {
			t.Fatalf("retained size %d out of [0,150]", k)
		}
	}
	if _, err := RetainedSize(rng, 10, 5); err == nil {
		t.Fatal("n > n' should error")
	}
	if k, err := RetainedSize(rng, 0, 0); err != nil || k != 0 {
		t.Fatalf("empty case = %d, %v", k, err)
	}
}

func TestRetainedSizeMean(t *testing.T) {
	// E[|b'_s|] = n'·(n/n') = n.
	rng := rand.New(rand.NewPCG(3, 4))
	const n, nPrime, trials = 1000, 2000, 2000
	var sum float64
	for i := 0; i < trials; i++ {
		k, err := RetainedSize(rng, n, nPrime)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(k)
	}
	mean := sum / trials
	if math.Abs(mean-n) > 3 {
		t.Fatalf("mean retained = %v, want ≈%d", mean, n)
	}
}

func TestMaintainerConfigValidation(t *testing.T) {
	if _, err := New(Config{B: 10}); err == nil {
		t.Fatal("missing reducer should error")
	}
	if _, err := New(Config{Reducer: welfordReducer{}, B: 1}); err == nil {
		t.Fatal("B=1 should error")
	}
}

func TestMaintainerFirstGrow(t *testing.T) {
	m, err := New(Config{Reducer: welfordReducer{}, B: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Grow(sampleData(500, 1)); err != nil {
		t.Fatal(err)
	}
	if m.N() != 500 || m.Generation() != 1 {
		t.Fatalf("n=%d gen=%d", m.N(), m.Generation())
	}
	for _, sz := range m.ResampleSizes() {
		if sz != 500 {
			t.Fatalf("resample size %d, want 500", sz)
		}
	}
	vals, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 20 {
		t.Fatalf("got %d values", len(vals))
	}
}

func TestMaintainerGrowKeepsSizesExact(t *testing.T) {
	m, err := New(Config{Reducer: welfordReducer{}, B: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{200, 200, 400, 800}
	total := 0
	for gi, sz := range sizes {
		if err := m.Grow(sampleData(sz, uint64(gi+10))); err != nil {
			t.Fatal(err)
		}
		total += sz
		if m.N() != total {
			t.Fatalf("after gen %d: N=%d want %d", gi+1, m.N(), total)
		}
		for ri, rs := range m.ResampleSizes() {
			if rs != total {
				t.Fatalf("gen %d resample %d size %d, want %d", gi+1, ri, rs, total)
			}
		}
	}
}

func TestMaintainerStateMatchesItems(t *testing.T) {
	// Invariant: after arbitrary grows, each state's mean equals the mean
	// of the items actually in its resample parts.
	m, err := New(Config{Reducer: welfordReducer{}, B: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for gi, sz := range []int{100, 150, 250} {
		if err := m.Grow(sampleData(sz, uint64(gi+50))); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range m.resamples {
		var all []float64
		for _, p := range r.parts {
			all = append(all, p.Items()...)
		}
		want, _ := stats.Mean(all)
		if math.Abs(vals[i]-want) > 1e-8 {
			t.Fatalf("resample %d state mean %v != item mean %v", i, vals[i], want)
		}
	}
}

func TestMaintainerCVDropsAsSampleGrows(t *testing.T) {
	m, err := New(Config{Reducer: welfordReducer{}, B: 40, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Grow(sampleData(100, 1)); err != nil {
		t.Fatal(err)
	}
	cvSmall, err := m.CV()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.Grow(sampleData(600, uint64(i+2))); err != nil {
			t.Fatal(err)
		}
	}
	cvBig, err := m.CV()
	if err != nil {
		t.Fatal(err)
	}
	if cvBig >= cvSmall {
		t.Fatalf("cv did not drop: %v → %v", cvSmall, cvBig)
	}
}

func TestMaintainerEstimateAccuracy(t *testing.T) {
	// The maintained bootstrap estimate must track the true mean of the
	// accumulated sample.
	m, err := New(Config{Reducer: welfordReducer{}, B: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for i := 0; i < 4; i++ {
		d := sampleData(500, uint64(i+100))
		all = append(all, d...)
		if err := m.Grow(d); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	est, _ := stats.Mean(vals)
	truth, _ := stats.Mean(all)
	sd, _ := stats.StdDev(all)
	se := sd / math.Sqrt(float64(len(all)))
	if math.Abs(est-truth) > 5*se {
		t.Fatalf("estimate %v vs sample mean %v (se %v)", est, truth, se)
	}
}

func TestMaintainerSketchAvoidsDiskIO(t *testing.T) {
	// With the default sketch constant, √n-scale deletions should cost no
	// disk seeks across a realistic growth schedule (the point of §4.1).
	var metrics simcost.Metrics
	m, err := New(Config{Reducer: welfordReducer{}, B: 10, Seed: 10, Metrics: &metrics})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Grow(sampleData(2000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Grow(sampleData(2000, 2)); err != nil {
		t.Fatal(err)
	}
	s := metrics.Snapshot()
	if s.DiskSeeks > 4 {
		t.Fatalf("delta maintenance hit disk %d times; sketches should absorb it (%v)", s.DiskSeeks, s)
	}
	if m.Rebuilds() != 0 {
		t.Fatalf("unexpected state rebuilds: %d", m.Rebuilds())
	}
}

func TestMaintainerRebuildPathForNonRemovableStates(t *testing.T) {
	m, err := New(Config{Reducer: noRemoveReducer{}, B: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Grow(sampleData(300, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Grow(sampleData(300, 2)); err != nil {
		t.Fatal(err)
	}
	// Deletions almost surely happened across 6 resamples; each must have
	// triggered a rebuild rather than failing.
	vals, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 6 {
		t.Fatalf("got %d values", len(vals))
	}
	for _, sz := range m.ResampleSizes() {
		if sz != 600 {
			t.Fatalf("size %d, want 600", sz)
		}
	}
	if m.Rebuilds() == 0 {
		t.Skip("no deletions drawn this seed (legal but rare)")
	}
}

func TestMaintainerGrowValidation(t *testing.T) {
	m, _ := New(Config{Reducer: welfordReducer{}, B: 4, Seed: 1})
	if err := m.Grow(nil); err == nil {
		t.Fatal("empty delta should error")
	}
	if _, err := m.Results(); err == nil {
		t.Fatal("Results before any Grow should error")
	}
	if _, err := m.CV(); err == nil {
		t.Fatal("CV before any Grow should error")
	}
}

func TestNaiveMaintainerMatchesSemantics(t *testing.T) {
	m, err := NewNaive(Config{Reducer: welfordReducer{}, B: 30, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for i := 0; i < 3; i++ {
		d := sampleData(400, uint64(i+200))
		all = append(all, d...)
		if err := m.Grow(d); err != nil {
			t.Fatal(err)
		}
	}
	if m.N() != 1200 {
		t.Fatalf("N = %d", m.N())
	}
	vals, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	est, _ := stats.Mean(vals)
	truth, _ := stats.Mean(all)
	sd, _ := stats.StdDev(all)
	if math.Abs(est-truth) > 5*sd/math.Sqrt(float64(len(all))) {
		t.Fatalf("naive estimate %v vs %v", est, truth)
	}
	if _, err := m.CV(); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveValidation(t *testing.T) {
	if _, err := NewNaive(Config{B: 5}); err == nil {
		t.Fatal("missing reducer should error")
	}
	if _, err := NewNaive(Config{Reducer: welfordReducer{}, B: 1}); err == nil {
		t.Fatal("B=1 should error")
	}
	m, _ := NewNaive(Config{Reducer: welfordReducer{}, B: 4, Seed: 1})
	if err := m.Grow(nil); err == nil {
		t.Fatal("empty delta should error")
	}
	if _, err := m.Results(); err == nil {
		t.Fatal("Results before Grow should error")
	}
}

func TestDeltaDoesFarLessWorkThanNaive(t *testing.T) {
	// The Fig. 10 contrast in work terms: growing a sample k times, the
	// optimized maintainer performs ~B·(n_total + k·O(√n)) updates while
	// the naive one performs ~B·Σ n_i = O(B·k·n) updates.
	const B = 20
	opt, err := New(Config{Reducer: welfordReducer{}, B: B, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewNaive(Config{Reducer: welfordReducer{}, B: B, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		d := sampleData(1000, uint64(i+300))
		if err := opt.Grow(d); err != nil {
			t.Fatal(err)
		}
		if err := naive.Grow(d); err != nil {
			t.Fatal(err)
		}
	}
	if opt.Updates() >= naive.Updates()/2 {
		t.Fatalf("optimized updates %d not far below naive %d", opt.Updates(), naive.Updates())
	}
}
