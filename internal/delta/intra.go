package delta

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mr"
)

// ProbIdenticalFraction evaluates Eq. 4 of the paper:
//
//	P(X = y) = n! / ((n − y·n)! · n^(y·n))
//
// the probability that a fraction y of one resample coincides with
// another resample's content (the birthday-problem probability that y·n
// with-replacement draws from n items are all distinct). Computed in log
// space so it stays finite for large n.
func ProbIdenticalFraction(n int, y float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("delta: n must be positive, got %d", n)
	}
	if y < 0 || y > 1 {
		return 0, fmt.Errorf("delta: y must be in [0,1], got %v", y)
	}
	k := int(math.Round(y * float64(n)))
	if k == 0 {
		return 1, nil
	}
	// log P = Σ_{i=0}^{k-1} log((n-i)/n)
	lp := 0.0
	for i := 0; i < k; i++ {
		lp += math.Log(float64(n-i) / float64(n))
	}
	return math.Exp(lp), nil
}

// ExpectedSavings is the objective §4.2 maximises: the overall work saved
// P(X = y) · y by sharing a y-fraction between resamples.
func ExpectedSavings(n int, y float64) (float64, error) {
	p, err := ProbIdenticalFraction(n, y)
	if err != nil {
		return 0, err
	}
	return p * y, nil
}

// OptimalY returns the y ∈ (0,1] maximising ExpectedSavings for sample
// size n, together with the savings value. The objective is unimodal in
// y (increasing linear term against a log-concave decreasing term), so a
// ternary search over [0,1] finds the optimum; the paper suggests
// binary search over the same structure.
func OptimalY(n int) (y, savings float64, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("delta: n must be positive, got %d", n)
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 100 && hi-lo > 1e-6; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		s1, err := ExpectedSavings(n, m1)
		if err != nil {
			return 0, 0, err
		}
		s2, err := ExpectedSavings(n, m2)
		if err != nil {
			return 0, 0, err
		}
		if s1 < s2 {
			lo = m1
		} else {
			hi = m2
		}
	}
	y = (lo + hi) / 2
	savings, err = ExpectedSavings(n, y)
	return y, savings, err
}

// SharedResampler generates B resamples of s with intra-iteration
// sharing: a shared block of y*·n items is drawn once, its partial state
// computed once, and every resample's state starts from a copy of that
// partial state before adding its own (1−y*)·n distinct draws. The
// reducer's Update(state, otherState) must not mutate its second
// argument — the contract mr.IncrementalReducer documents.
type SharedResampler struct {
	red mr.IncrementalReducer
	key string
}

// NewSharedResampler wraps an incremental reducer for shared resampling.
func NewSharedResampler(red mr.IncrementalReducer, key string) (*SharedResampler, error) {
	if red == nil {
		return nil, errors.New("delta: reducer is required")
	}
	return &SharedResampler{red: red, key: key}, nil
}

// Draw computes the statistic on B resamples of s, sharing a y-optimal
// common block. draw(k) must return k fresh with-replacement draws from
// s. It returns the B finalized values plus the number of item-updates
// actually performed (the work measure Fig. 3 reports savings on).
func (sr *SharedResampler) Draw(s []float64, b int, draw func(k int) []float64) (values []float64, workItems int, err error) {
	n := len(s)
	if n == 0 {
		return nil, 0, errors.New("delta: empty sample")
	}
	if b < 2 {
		return nil, 0, fmt.Errorf("delta: need B ≥ 2, got %d", b)
	}
	y, _, err := OptimalY(n)
	if err != nil {
		return nil, 0, err
	}
	shared := int(math.Round(y * float64(n)))
	if shared > n {
		shared = n
	}
	sharedItems := draw(shared)
	sharedState, err := sr.red.Initialize(sr.key, sharedItems)
	if err != nil {
		return nil, 0, err
	}
	workItems += shared

	values = make([]float64, b)
	for i := 0; i < b; i++ {
		st, err := sr.red.Initialize(sr.key, nil)
		if err != nil {
			return nil, 0, err
		}
		st, err = sr.red.Update(st, sharedState) // state-merge: O(1), no item work
		if err != nil {
			return nil, 0, err
		}
		rest := draw(n - shared)
		st, err = mr.UpdateAll(sr.red, st, rest)
		if err != nil {
			return nil, 0, err
		}
		workItems += n - shared
		values[i], err = sr.red.Finalize(st)
		if err != nil {
			return nil, 0, err
		}
	}
	return values, workItems, nil
}

// NaiveWork returns the item-updates the standard bootstrap performs for
// the same job: B·n.
func NaiveWork(n, b int) int { return n * b }
