package pool

import "testing"

func TestFloatsReusesBacking(t *testing.T) {
	var f Floats
	s := f.Take(100)
	if len(s) != 0 || cap(s) < 100 {
		t.Fatalf("len=%d cap=%d, want 0/≥100", len(s), cap(s))
	}
	s = append(s, 1, 2, 3)
	first := &s[0]
	s2 := f.Take(50)
	if len(s2) != 0 || cap(s2) < 50 {
		t.Fatalf("len=%d cap=%d, want 0/≥50", len(s2), cap(s2))
	}
	s2 = append(s2, 9)
	if &s2[0] != first {
		t.Fatal("smaller Take did not reuse the backing array")
	}
	// Growth allocates a fresh array and keeps it for the next round.
	s3 := f.Take(10_000)
	if cap(s3) < 10_000 {
		t.Fatalf("cap=%d, want ≥10000", cap(s3))
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = f.Take(10_000)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Take allocated %.1f/op, want 0", allocs)
	}
}
