package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	for _, p := range []int{0, -1} {
		if got := Workers(p); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS", p, got)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 4, 100} {
		var hits [37]atomic.Int32
		if err := ForEach(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachReturnsFirstErrorInIndexOrder(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("err-%d", i) }
	for _, workers := range []int{1, 8} {
		err := ForEach(50, workers, func(i int) error {
			if i == 7 || i == 31 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "err-7" {
			t.Fatalf("workers=%d: got %v, want err-7", workers, err)
		}
	}
}

func TestForEachWorkerPerWorkerState(t *testing.T) {
	var factories atomic.Int32
	const workers = 4
	if err := ForEachWorker(64, workers, func() func(int) error {
		factories.Add(1)
		buf := make([]int, 0, 8) // worker-owned scratch must not race
		return func(i int) error {
			buf = append(buf[:0], i)
			return nil
		}
	}); err != nil {
		t.Fatal(err)
	}
	if n := factories.Load(); n != workers {
		t.Fatalf("factory called %d times, want %d", n, workers)
	}
}

func TestForEachSequentialShortCircuits(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := ForEach(100, 1, func(i int) error {
		calls++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 4 {
		t.Fatalf("err=%v calls=%d, want boom after 4 calls", err, calls)
	}
}
