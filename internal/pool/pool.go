// Package pool is the tiny worker-pool primitive shared by the parallel
// resampling engines (internal/bootstrap, internal/delta). It only
// schedules: determinism is the caller's job, achieved by keying rng
// streams to the work index — never to the worker — so results are
// identical at any worker count.
package pool

import (
	"runtime"
	"sync"
)

// Workers resolves a parallelism request: p itself when positive,
// otherwise runtime.GOMAXPROCS(0). This is the one shared definition of
// the "0 means all cores" convention every Parallelism knob documents.
func Workers(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// Floats is a reusable float64 scratch buffer for per-worker hot loops:
// Take returns a zero-length slice with at least the requested capacity,
// reusing the previous backing array whenever it is large enough. One
// Floats per worker goroutine (via ForEachWorker's per-worker state)
// turns a make-per-item/per-task allocation pattern into amortised-zero
// steady-state allocation. Not safe for concurrent use; each worker owns
// its own.
type Floats struct{ buf []float64 }

// Take returns f's buffer with length 0 and capacity ≥ n. The returned
// slice is only valid until the next Take.
func (f *Floats) Take(n int) []float64 {
	if cap(f.buf) < n {
		f.buf = make([]float64, 0, n+n/4)
	}
	return f.buf[:0]
}

// ForEach runs fn(i) for every i in [0, n) across the given number of
// workers (sequentially when workers ≤ 1) and returns the first error
// in index order, so error identity does not depend on scheduling.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachWorker(n, workers, func() func(int) error { return fn })
}

// ForEachWorker is ForEach for work that needs per-worker scratch state
// (resample buffers): newFn is invoked once per worker goroutine and the
// returned closure handles that worker's share of indices.
func ForEachWorker(n, workers int, newFn func() func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn := newFn()
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := newFn()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
