// Package jobs is the library of user analytics jobs the EARL
// reproduction runs: the aggregates of the paper's experiments (mean in
// Fig. 5, median in Fig. 6, K-Means in Fig. 7) plus the wider set the
// design supports — sum/count with 1/p correction (§2.1's example),
// variance, arbitrary quantiles, categorical proportions (Appendix A)
// and Pearson correlation.
//
// Every numeric job is expressed once as an mr.IncrementalReducer (the
// initialize/update/finalize/correct API of §2.1) so it can run under
// EARL's resample maintenance, and once as a plain bootstrap.Statistic
// for pilot estimation. States implement mr.RemovableState wherever the
// statistic supports O(1)/O(log n) deletion, which is what makes
// inter-iteration delta maintenance cheap.
package jobs

import (
	"fmt"

	"repro/internal/bootstrap"
	"repro/internal/colscan"
	"repro/internal/mr"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Numeric bundles everything the EARL driver needs to run one scalar
// statistic over line-encoded numeric records.
type Numeric struct {
	Name      string
	Reducer   mr.IncrementalReducer
	Statistic bootstrap.Statistic
	// Parse decodes one input line into the job's value.
	Parse func(line string) (float64, error)
	// ScanFormat is the columnar format the vectorized scan path may
	// decode this job's records with; the zero value (FormatNone) keeps
	// a custom Parse on the per-record path. Every built-in job reads
	// one-float-per-line records and sets FormatNumeric.
	ScanFormat colscan.Format
}

// numericScan marks a one-float-per-line job for the columnar decoder.
const numericScan = colscan.FormatNumeric

// Mean returns the mean job (identity correction).
func Mean() Numeric {
	return Numeric{
		Name:       "mean",
		Reducer:    meanReducer{},
		Statistic:  bootstrap.Mean,
		Parse:      workload.DecodeLine,
		ScanFormat: numericScan,
	}
}

// Sum returns the sum job; Correct scales by 1/p (§2.1's SUM example).
func Sum() Numeric {
	return Numeric{
		Name:       "sum",
		Reducer:    sumReducer{},
		Statistic:  bootstrap.Sum,
		Parse:      workload.DecodeLine,
		ScanFormat: numericScan,
	}
}

// Count returns the record-count job (scales by 1/p).
func Count() Numeric {
	return Numeric{
		Name:    "count",
		Reducer: countReducer{},
		Statistic: func(xs []float64) (float64, error) {
			return float64(len(xs)), nil
		},
		Parse:      workload.DecodeLine,
		ScanFormat: numericScan,
	}
}

// Variance returns the sample-variance job.
func Variance() Numeric {
	return Numeric{
		Name:       "variance",
		Reducer:    varianceReducer{},
		Statistic:  stats.Variance,
		Parse:      workload.DecodeLine,
		ScanFormat: numericScan,
	}
}

// StdDev returns the standard-deviation job.
func StdDev() Numeric {
	return Numeric{
		Name:       "stddev",
		Reducer:    stddevReducer{},
		Statistic:  bootstrap.StdDev,
		Parse:      workload.DecodeLine,
		ScanFormat: numericScan,
	}
}

// Median returns the median job — the paper's showcase for statistics
// where the jackknife fails and closed-form error analysis is hopeless.
func Median() Numeric {
	return Numeric{
		Name:       "median",
		Reducer:    quantileReducer{q: 0.5},
		Statistic:  bootstrap.Median,
		Parse:      workload.DecodeLine,
		ScanFormat: numericScan,
	}
}

// Quantile returns the q-th quantile job (0 < q < 1).
func Quantile(q float64) (Numeric, error) {
	// The negated-range form rejects NaN too: NaN fails both q <= 0 and
	// q >= 1, and an admitted NaN panics downstream when the quantile
	// index is computed — remotely reachable via earld's "qnan" job name.
	if !(q > 0 && q < 1) {
		return Numeric{}, fmt.Errorf("jobs: quantile q=%v outside (0,1)", q)
	}
	return Numeric{
		Name:    fmt.Sprintf("quantile-%g", q),
		Reducer: quantileReducer{q: q},
		Statistic: func(xs []float64) (float64, error) {
			return stats.Quantile(xs, q)
		},
		Parse:      workload.DecodeLine,
		ScanFormat: numericScan,
	}, nil
}

// Proportion returns the categorical proportion-of-successes job of
// Appendix A over 0/1 records.
func Proportion() Numeric {
	return Numeric{
		Name:       "proportion",
		Reducer:    meanReducer{}, // the proportion is the mean of 0/1 data
		Statistic:  bootstrap.Mean,
		Parse:      workload.DecodeLine,
		ScanFormat: numericScan,
	}
}

// ---------------------------------------------------------------------
// Welford-backed moment reducers.

// welfordState is shared by mean/sum/count/variance/stddev reducers.
type welfordState struct{ w stats.Welford }

// Remove implements mr.RemovableState.
func (s *welfordState) Remove(v float64) error {
	s.w.Remove(v)
	return nil
}

// RemoveBatch implements mr.BatchRemovableState: one interface call per
// generation; removal order matches the per-value loop bit for bit.
//
//earl:hotpath
func (s *welfordState) RemoveBatch(vs []float64) error {
	for _, v := range vs {
		s.w.Remove(v)
	}
	return nil
}

func initWelford(values []float64) *welfordState {
	st := &welfordState{}
	for _, v := range values {
		st.w.Add(v)
	}
	return st
}

// updateWelford folds one update batch into the shared Welford state —
// the per-generation kernel behind every moment reducer.
//
//earl:hotpath
func updateWelford(state mr.State, input any) (*welfordState, error) {
	st, ok := state.(*welfordState)
	if !ok {
		return nil, mr.ErrBadState
	}
	switch x := input.(type) {
	case float64:
		st.w.Add(x)
	case []float64:
		// Batch fold in slice order — identical arithmetic to the
		// per-value loop (the mr.IncrementalReducer batch contract).
		for _, v := range x {
			st.w.Add(v)
		}
	case *welfordState:
		st.w.Merge(x.w)
	default:
		return nil, mr.ErrBadInput
	}
	return st, nil
}

type meanReducer struct{}

// Initialize implements mr.IncrementalReducer.
func (meanReducer) Initialize(key string, values []float64) (mr.State, error) {
	return initWelford(values), nil
}

// Update implements mr.IncrementalReducer.
func (meanReducer) Update(state mr.State, input any) (mr.State, error) {
	return updateWelford(state, input)
}

// Finalize implements mr.IncrementalReducer.
func (meanReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*welfordState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return st.w.Mean(), nil
}

// Correct implements mr.IncrementalReducer: the mean is p-invariant.
func (meanReducer) Correct(result, p float64) float64 { return mr.IdentityCorrect(result, p) }

type sumReducer struct{ meanReducer }

// Finalize implements mr.IncrementalReducer.
func (sumReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*welfordState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return st.w.Sum(), nil
}

// Correct implements mr.IncrementalReducer: SUM scales by 1/p.
func (sumReducer) Correct(result, p float64) float64 { return mr.ScaleCorrect(result, p) }

type countReducer struct{ meanReducer }

// Finalize implements mr.IncrementalReducer.
func (countReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*welfordState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return float64(st.w.N()), nil
}

// Correct implements mr.IncrementalReducer: COUNT scales by 1/p.
func (countReducer) Correct(result, p float64) float64 { return mr.ScaleCorrect(result, p) }

type varianceReducer struct{ meanReducer }

// Finalize implements mr.IncrementalReducer.
func (varianceReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*welfordState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return st.w.Variance(), nil
}

type stddevReducer struct{ meanReducer }

// Finalize implements mr.IncrementalReducer.
func (stddevReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*welfordState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return st.w.StdDev(), nil
}

// ---------------------------------------------------------------------
// Order-statistic reducer: a Fenwick-indexed counted multiset.

// multisetState wraps stats.OrderStat — a sorted value dictionary with a
// Fenwick tree over multiplicities — so quantile resample maintenance is
// O(log k) per add/remove and O(log k) per Finalize, with zero
// steady-state allocation. (The previous representation re-sorted the
// whole dictionary on every mutation and scanned it linearly per order
// statistic.)
type multisetState struct{ ms stats.OrderStat }

func newMultiset(values []float64) (*multisetState, error) {
	st := &multisetState{}
	if err := st.ms.AddBatch(values); err != nil {
		return nil, err
	}
	return st, nil
}

// Remove implements mr.RemovableState.
func (s *multisetState) Remove(v float64) error {
	return s.ms.Remove(v)
}

// RemoveBatch implements mr.BatchRemovableState.
//
//earl:hotpath
func (s *multisetState) RemoveBatch(vs []float64) error {
	return s.ms.RemoveBatch(vs)
}

type quantileReducer struct{ q float64 }

// Initialize implements mr.IncrementalReducer.
func (r quantileReducer) Initialize(key string, values []float64) (mr.State, error) {
	return newMultiset(values)
}

// Update implements mr.IncrementalReducer. NaN inputs are rejected (a
// NaN would corrupt the ordered dictionary for finite values too).
//
//earl:hotpath
func (r quantileReducer) Update(state mr.State, input any) (mr.State, error) {
	st, ok := state.(*multisetState)
	if !ok {
		return nil, mr.ErrBadState
	}
	switch x := input.(type) {
	case float64:
		if err := st.ms.Add(x); err != nil {
			return nil, err
		}
	case []float64:
		if err := st.ms.AddBatch(x); err != nil {
			return nil, err
		}
	case *multisetState:
		st.ms.Merge(&x.ms)
	default:
		return nil, mr.ErrBadInput
	}
	return st, nil
}

// Finalize implements mr.IncrementalReducer.
func (r quantileReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*multisetState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return st.ms.Quantile(r.q)
}

// Correct implements mr.IncrementalReducer: quantiles are p-invariant.
func (r quantileReducer) Correct(result, p float64) float64 { return mr.IdentityCorrect(result, p) }
