package jobs

import (
	"math"
	"math/rand/v2"
	"testing"
)

func corrPairs(n int, rho float64, seed uint64) []Pair {
	rng := rand.New(rand.NewPCG(seed, 0x1011))
	pairs := make([]Pair, n)
	for i := range pairs {
		x := rng.NormFloat64()
		e := rng.NormFloat64()
		y := rho*x + math.Sqrt(1-rho*rho)*e
		pairs[i] = Pair{X: x, Y: y}
	}
	return pairs
}

func TestPearsonRecoversRho(t *testing.T) {
	pairs := corrPairs(20000, 0.7, 1)
	r, err := PearsonOf(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.7) > 0.02 {
		t.Fatalf("r = %v, want ≈0.7", r)
	}
}

func TestPearsonPerfectAndDegenerate(t *testing.T) {
	var st CorrState
	for i := 0; i < 10; i++ {
		st.AddPair(float64(i), 2*float64(i)+1)
	}
	r, err := st.Pearson()
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect r = %v, %v", r, err)
	}
	var deg CorrState
	deg.AddPair(1, 1)
	deg.AddPair(1, 2)
	if _, err := deg.Pearson(); err == nil {
		t.Fatal("degenerate x should error")
	}
	var short CorrState
	short.AddPair(1, 1)
	if _, err := short.Pearson(); err == nil {
		t.Fatal("n=1 should error")
	}
}

func TestCorrStateRemoveInverts(t *testing.T) {
	pairs := corrPairs(100, 0.5, 2)
	var st CorrState
	for _, p := range pairs {
		st.AddPair(p.X, p.Y)
	}
	want, err := st.Pearson()
	if err != nil {
		t.Fatal(err)
	}
	st.AddPair(5, -5)
	st.AddPair(2, 2)
	if err := st.RemovePair(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.RemovePair(5, -5); err != nil {
		t.Fatal(err)
	}
	got, err := st.Pearson()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("after remove %v != %v", got, want)
	}
	var empty CorrState
	if err := empty.RemovePair(1, 1); err == nil {
		t.Fatal("remove from empty should error")
	}
}

func TestCorrStateMerge(t *testing.T) {
	pairs := corrPairs(200, 0.3, 3)
	var all, a, b CorrState
	for i, p := range pairs {
		all.AddPair(p.X, p.Y)
		if i%2 == 0 {
			a.AddPair(p.X, p.Y)
		} else {
			b.AddPair(p.X, p.Y)
		}
	}
	a.Merge(b)
	ra, _ := a.Pearson()
	rAll, _ := all.Pearson()
	if math.Abs(ra-rAll) > 1e-12 {
		t.Fatalf("merged %v != direct %v", ra, rAll)
	}
	if a.N() != all.N() {
		t.Fatalf("merged n = %d", a.N())
	}
}

func TestParsePair(t *testing.T) {
	p, err := ParsePair(" 1.5 , -2 ")
	if err != nil || p.X != 1.5 || p.Y != -2 {
		t.Fatalf("pair = %v, %v", p, err)
	}
	for _, bad := range []string{"1", "1,2,3", "a,1", "1,b"} {
		if _, err := ParsePair(bad); err == nil {
			t.Fatalf("%q should error", bad)
		}
	}
}

func TestBootstrapPearson(t *testing.T) {
	pairs := corrPairs(500, 0.6, 4)
	rng := rand.New(rand.NewPCG(9, 10))
	values, cv, err := BootstrapPearson(rng, pairs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 100 {
		t.Fatalf("got %d values", len(values))
	}
	if cv <= 0 || cv > 0.2 {
		t.Fatalf("cv = %v, want small positive", cv)
	}
	if _, _, err := BootstrapPearson(rng, pairs[:1], 10); err == nil {
		t.Fatal("short input should error")
	}
	if _, _, err := BootstrapPearson(rng, pairs, 1); err == nil {
		t.Fatal("B=1 should error")
	}
}
