package jobs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ByName resolves a statistic by its user-facing name — the single
// name→job table shared by every front end (earlctl, earld's query
// specs). Fixed names: mean, sum, count, median, variance, stddev,
// proportion. Quantiles parse generically: pNN is the NN-th percentile
// (p90, p99.9) and q0.NN the plain fraction form (q0.25).
func ByName(name string) (Numeric, error) {
	switch name {
	case "mean":
		return Mean(), nil
	case "sum":
		return Sum(), nil
	case "count":
		return Count(), nil
	case "median":
		return Median(), nil
	case "variance":
		return Variance(), nil
	case "stddev":
		return StdDev(), nil
	case "proportion":
		return Proportion(), nil
	}
	if pct, ok := strings.CutPrefix(name, "p"); ok {
		if v, err := strconv.ParseFloat(pct, 64); err == nil {
			// Round away the binary dust of the /100 so p99.9 and q0.999
			// name the same quantile (and the same cache/watch identity).
			return Quantile(math.Round(v/100*1e12) / 1e12)
		}
	}
	// The canonical Name of a quantile job ("quantile-0.5") resolves to
	// itself, so normalized specs (internal/plan) round-trip through the
	// same table every front-end spelling goes through.
	if frac, ok := strings.CutPrefix(name, "quantile-"); ok {
		if v, err := strconv.ParseFloat(frac, 64); err == nil {
			return Quantile(v)
		}
	}
	if frac, ok := strings.CutPrefix(name, "q"); ok {
		if v, err := strconv.ParseFloat(frac, 64); err == nil {
			return Quantile(v)
		}
	}
	return Numeric{}, fmt.Errorf("jobs: unknown job %q", name)
}
