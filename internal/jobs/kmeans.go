package jobs

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"

	"repro/internal/mr"
	"repro/internal/workload"
)

// KMeans configures the clustering job of the paper's Fig. 7 experiment.
// EARL speeds K-Means up two ways (§6.3): the algorithm runs over a small
// sample, and it converges in fewer iterations on smaller data — without
// changing the algorithm itself.
type KMeans struct {
	K       int
	MaxIter int     // Lloyd iteration cap; 50 if 0
	Tol     float64 // centroid-movement convergence threshold; 1e-6 if 0
	Seed    uint64
}

func (c KMeans) withDefaults() (KMeans, error) {
	if c.K <= 0 {
		return c, fmt.Errorf("jobs: KMeans needs K > 0, got %d", c.K)
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	return c, nil
}

// FitResult is a completed clustering.
type FitResult struct {
	Centers    []workload.Point
	WCSS       float64 // within-cluster sum of squares over the fitted data
	Iterations int
}

func sqDist(a, b workload.Point) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return d2
}

// nearest returns the index of the closest center and the squared
// distance to it.
func nearest(p workload.Point, centers []workload.Point) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for i, c := range centers {
		if d := sqDist(p, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// seedCenters picks initial centers with the k-means++ heuristic.
func (c KMeans) seedCenters(rng *rand.Rand, pts []workload.Point) []workload.Point {
	centers := make([]workload.Point, 0, c.K)
	centers = append(centers, pts[rng.IntN(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centers) < c.K {
		var total float64
		for i, p := range pts {
			_, d := nearest(p, centers)
			d2[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with existing centers; duplicate one.
			centers = append(centers, centers[0])
			continue
		}
		x := rng.Float64() * total
		pick := len(pts) - 1
		for i, d := range d2 {
			if x < d {
				pick = i
				break
			}
			x -= d
		}
		centers = append(centers, append(workload.Point(nil), pts[pick]...))
	}
	return centers
}

// Fit runs Lloyd's algorithm with k-means++ initialisation over the
// points in memory — the computation EARL executes on its sample.
func (c KMeans) Fit(pts []workload.Point) (FitResult, error) {
	c, err := c.withDefaults()
	if err != nil {
		return FitResult{}, err
	}
	if len(pts) == 0 {
		return FitResult{}, errors.New("jobs: KMeans on empty point set")
	}
	if len(pts) < c.K {
		return FitResult{}, fmt.Errorf("jobs: %d points < K=%d", len(pts), c.K)
	}
	rng := rand.New(rand.NewPCG(c.Seed, 0x59f111f1b605d019))
	dim := len(pts[0])
	centers := c.seedCenters(rng, pts)
	sums := make([]workload.Point, c.K)
	counts := make([]int, c.K)
	var iter int
	for iter = 1; iter <= c.MaxIter; iter++ {
		for k := range sums {
			sums[k] = make(workload.Point, dim)
			counts[k] = 0
		}
		for _, p := range pts {
			k, _ := nearest(p, centers)
			for d := range p {
				sums[k][d] += p[d]
			}
			counts[k]++
		}
		moved := 0.0
		for k := range centers {
			if counts[k] == 0 {
				continue // keep the old center for an empty cluster
			}
			next := make(workload.Point, dim)
			for d := range next {
				next[d] = sums[k][d] / float64(counts[k])
			}
			moved += math.Sqrt(sqDist(centers[k], next))
			centers[k] = next
		}
		if moved < c.Tol {
			break
		}
	}
	if iter > c.MaxIter {
		iter = c.MaxIter
	}
	var wcss float64
	for _, p := range pts {
		_, d := nearest(p, centers)
		wcss += d
	}
	return FitResult{Centers: centers, WCSS: wcss, Iterations: iter}, nil
}

// FitMR runs the same algorithm as iterated MapReduce jobs over a DFS
// file of comma-separated points — the stock-Hadoop flow of Fig. 7: one
// MR job per Lloyd iteration (map: assign to nearest centroid; combine:
// partial sums; reduce: recompute centroids), paying the per-job startup
// cost the paper's comparison highlights.
func (c KMeans) FitMR(eng *mr.Engine, path string, splitSize int64) (FitResult, error) {
	c, err := c.withDefaults()
	if err != nil {
		return FitResult{}, err
	}
	// Seed with k-means++ over a small prefix of the file — the usual
	// Hadoop practice of initialising from a tiny local sample instead of
	// a full pass.
	prefixN := 50 * c.K
	if prefixN < 200 {
		prefixN = 200
	}
	prefix, err := readFirstPoints(eng, path, prefixN)
	if err != nil {
		return FitResult{}, err
	}
	if len(prefix) < c.K {
		return FitResult{}, fmt.Errorf("jobs: file has %d points < K=%d", len(prefix), c.K)
	}
	rng := rand.New(rand.NewPCG(c.Seed, 0x923f82a4af194f9b))
	centers := c.seedCenters(rng, prefix)
	var iter int
	for iter = 1; iter <= c.MaxIter; iter++ {
		cur := centers
		job := &mr.Job{
			Name:        fmt.Sprintf("kmeans-iter%d", iter),
			InputPath:   path,
			SplitSize:   splitSize,
			Mapper:      &kmeansMapper{centers: cur},
			Combiner:    kmeansCombiner{},
			Reducer:     kmeansReducer{},
			NumReducers: c.K,
		}
		res, err := eng.Run(job)
		if err != nil {
			return FitResult{}, fmt.Errorf("jobs: kmeans iteration %d: %w", iter, err)
		}
		next := make([]workload.Point, len(centers))
		copy(next, centers)
		for _, kv := range res.Output {
			k, err := strconv.Atoi(kv.Key)
			if err != nil || k < 0 || k >= len(next) {
				return FitResult{}, fmt.Errorf("jobs: bad kmeans reduce key %q", kv.Key)
			}
			next[k] = kv.Value.(workload.Point)
		}
		moved := 0.0
		for k := range centers {
			moved += math.Sqrt(sqDist(centers[k], next[k]))
		}
		centers = next
		if moved < c.Tol {
			break
		}
	}
	if iter > c.MaxIter {
		iter = c.MaxIter
	}
	// Final WCSS pass as one more MR job.
	wcssJob := &mr.Job{
		Name:      "kmeans-wcss",
		InputPath: path,
		SplitSize: splitSize,
		Mapper:    &wcssMapper{centers: centers},
		Combiner:  sumCombiner{},
		Reducer:   sumAllReducer{},
	}
	res, err := eng.Run(wcssJob)
	if err != nil {
		return FitResult{}, err
	}
	var wcss float64
	if len(res.Output) > 0 {
		wcss = res.Output[0].Value.(float64)
	}
	return FitResult{Centers: centers, WCSS: wcss, Iterations: iter}, nil
}

func readFirstPoints(eng *mr.Engine, path string, k int) ([]workload.Point, error) {
	splits, err := eng.FS.Splits(path, 0)
	if err != nil {
		return nil, err
	}
	var pts []workload.Point
	for _, sp := range splits {
		rd, err := eng.FS.NewLineReader(sp, 0)
		if err != nil {
			return nil, err
		}
		for rd.Next() {
			p, err := workload.DecodePoint(rd.Text())
			if err != nil {
				return nil, err
			}
			pts = append(pts, p)
			if len(pts) == k {
				return pts, nil
			}
		}
		if rd.Err() != nil {
			return nil, rd.Err()
		}
	}
	return pts, nil
}

// kmeansMapper assigns each point to its nearest centroid.
type kmeansMapper struct {
	centers []workload.Point
}

// Map implements mr.Mapper.
func (m *kmeansMapper) Map(off int64, line string, emit mr.Emitter) error {
	p, err := workload.DecodePoint(line)
	if err != nil {
		return err
	}
	k, _ := nearest(p, m.centers)
	emit.Emit(strconv.Itoa(k), p)
	return nil
}

// pointSum is a partial centroid: coordinate sums plus a count.
type pointSum struct {
	sum workload.Point
	n   int64
}

func foldPoints(values []any) (*pointSum, error) {
	acc := &pointSum{}
	for _, v := range values {
		switch x := v.(type) {
		case workload.Point:
			if acc.sum == nil {
				acc.sum = make(workload.Point, len(x))
			}
			for d := range x {
				acc.sum[d] += x[d]
			}
			acc.n++
		case *pointSum:
			if acc.sum == nil {
				acc.sum = make(workload.Point, len(x.sum))
			}
			for d := range x.sum {
				acc.sum[d] += x.sum[d]
			}
			acc.n += x.n
		default:
			return nil, fmt.Errorf("jobs: unexpected kmeans value %T", v)
		}
	}
	return acc, nil
}

// kmeansCombiner pre-aggregates assignments into partial sums.
type kmeansCombiner struct{}

// Combine implements mr.Combiner.
func (kmeansCombiner) Combine(key string, values []any, emit mr.Emitter) error {
	acc, err := foldPoints(values)
	if err != nil {
		return err
	}
	emit.Emit(key, acc)
	return nil
}

// kmeansReducer emits the new centroid for its cluster.
type kmeansReducer struct{}

// Reduce implements mr.Reducer.
func (kmeansReducer) Reduce(key string, values []any, emit mr.Emitter) error {
	acc, err := foldPoints(values)
	if err != nil {
		return err
	}
	if acc.n == 0 {
		return nil
	}
	c := make(workload.Point, len(acc.sum))
	for d := range c {
		c[d] = acc.sum[d] / float64(acc.n)
	}
	emit.Emit(key, c)
	return nil
}

// wcssMapper emits each point's squared distance to its centroid.
type wcssMapper struct {
	centers []workload.Point
}

// Map implements mr.Mapper.
func (m *wcssMapper) Map(off int64, line string, emit mr.Emitter) error {
	p, err := workload.DecodePoint(line)
	if err != nil {
		return err
	}
	_, d := nearest(p, m.centers)
	emit.Emit("wcss", d)
	return nil
}

type sumCombiner struct{}

// Combine implements mr.Combiner.
func (sumCombiner) Combine(key string, values []any, emit mr.Emitter) error {
	var s float64
	for _, v := range values {
		s += v.(float64)
	}
	emit.Emit(key, s)
	return nil
}

type sumAllReducer struct{}

// Reduce implements mr.Reducer.
func (sumAllReducer) Reduce(key string, values []any, emit mr.Emitter) error {
	var s float64
	for _, v := range values {
		s += v.(float64)
	}
	emit.Emit(key, s)
	return nil
}

// CentroidError greedily matches fitted centers to true centers and
// returns the mean matched distance divided by the mean pairwise scale
// of the truth — the "within 5% of the optimal" check of §6.3.
func CentroidError(got, truth []workload.Point) (float64, error) {
	if len(got) == 0 || len(truth) == 0 {
		return 0, errors.New("jobs: empty center sets")
	}
	used := make([]bool, len(truth))
	var total float64
	for _, g := range got {
		best, bestD := -1, math.Inf(1)
		for i, tr := range truth {
			if used[i] {
				continue
			}
			if d := sqDist(g, tr); d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 { // more fitted centers than truth: match to nearest
			_, bestD = nearest(g, truth)
		} else {
			used[best] = true
		}
		total += math.Sqrt(bestD)
	}
	meanDist := total / float64(len(got))
	// Scale: mean distance between distinct true centers.
	var scale float64
	var pairs int
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			scale += math.Sqrt(sqDist(truth[i], truth[j]))
			pairs++
		}
	}
	if pairs == 0 || scale == 0 {
		return meanDist, nil
	}
	return meanDist / (scale / float64(pairs)), nil
}

// ParsePoints decodes a slice of point lines.
func ParsePoints(lines []string) ([]workload.Point, error) {
	pts := make([]workload.Point, 0, len(lines))
	for _, l := range lines {
		if strings.TrimSpace(l) == "" {
			continue
		}
		p, err := workload.DecodePoint(l)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// WCSSOf evaluates the within-cluster sum of squares of centers over pts
// — the scalar statistic EARL bootstraps to attach an error bound to an
// early K-Means result.
func WCSSOf(centers []workload.Point, pts []workload.Point) float64 {
	var wcss float64
	for _, p := range pts {
		_, d := nearest(p, centers)
		wcss += d
	}
	return wcss
}
