package jobs

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mr"
	"repro/internal/stats"
	"repro/internal/workload"
)

func runReducer(t *testing.T, n Numeric, values []float64) float64 {
	t.Helper()
	st, err := n.Reducer.Initialize("k", values)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Reducer.Finalize(st)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReducersMatchStatistics(t *testing.T) {
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 500, Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	q25, err := Quantile(0.25)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Numeric{Mean(), Sum(), Count(), Variance(), StdDev(), Median(), q25, Proportion()}
	for _, job := range cases {
		gotReducer := runReducer(t, job, xs)
		gotStat, err := job.Statistic(xs)
		if err != nil {
			t.Fatalf("%s statistic: %v", job.Name, err)
		}
		if math.Abs(gotReducer-gotStat) > 1e-8*(1+math.Abs(gotStat)) {
			t.Fatalf("%s: reducer %v != statistic %v", job.Name, gotReducer, gotStat)
		}
	}
}

func TestReducerIncrementalEqualsBatch(t *testing.T) {
	xs, _ := workload.NumericSpec{Dist: workload.Uniform, N: 200, Seed: 4}.Generate()
	for _, job := range []Numeric{Mean(), Sum(), Variance(), Median()} {
		batch := runReducer(t, job, xs)
		st, err := job.Reducer.Initialize("k", xs[:50])
		if err != nil {
			t.Fatal(err)
		}
		st, err = mr.UpdateAll(job.Reducer, st, xs[50:150])
		if err != nil {
			t.Fatal(err)
		}
		other, err := job.Reducer.Initialize("k", xs[150:])
		if err != nil {
			t.Fatal(err)
		}
		st, err = job.Reducer.Update(st, other)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := job.Reducer.Finalize(st)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(batch-inc) > 1e-8*(1+math.Abs(batch)) {
			t.Fatalf("%s: incremental %v != batch %v", job.Name, inc, batch)
		}
	}
}

func TestReducerRemoveInvertsAdd(t *testing.T) {
	xs, _ := workload.NumericSpec{Dist: workload.Uniform, N: 100, Seed: 5}.Generate()
	for _, job := range []Numeric{Mean(), Sum(), Variance(), Median()} {
		want := runReducer(t, job, xs)
		st, err := job.Reducer.Initialize("k", xs)
		if err != nil {
			t.Fatal(err)
		}
		extra := []float64{3.25, -17, 42}
		st, err = mr.UpdateAll(job.Reducer, st, extra)
		if err != nil {
			t.Fatal(err)
		}
		rem, ok := st.(mr.RemovableState)
		if !ok {
			t.Fatalf("%s state is not removable", job.Name)
		}
		for _, v := range extra {
			if err := rem.Remove(v); err != nil {
				t.Fatal(err)
			}
		}
		got, err := job.Reducer.Finalize(st)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("%s: after remove %v != %v", job.Name, got, want)
		}
	}
}

func TestCorrections(t *testing.T) {
	if got := Sum().Reducer.Correct(10, 0.1); got != 100 {
		t.Fatalf("sum correction = %v, want 100", got)
	}
	if got := Count().Reducer.Correct(50, 0.5); got != 100 {
		t.Fatalf("count correction = %v, want 100", got)
	}
	if got := Mean().Reducer.Correct(10, 0.1); got != 10 {
		t.Fatalf("mean correction = %v, want 10", got)
	}
	if got := Median().Reducer.Correct(7, 0.01); got != 7 {
		t.Fatalf("median correction = %v, want 7", got)
	}
}

func TestQuantileValidation(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		if _, err := Quantile(q); err == nil {
			t.Fatalf("q=%v should error", q)
		}
	}
}

func TestMultisetRemoveAbsent(t *testing.T) {
	st, err := newMultiset([]float64{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Remove(5); err == nil {
		t.Fatal("removing absent value should error")
	}
	if err := st.Remove(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove(2); err == nil {
		t.Fatal("third remove of 2 should error")
	}
}

func TestMultisetQuantileMatchesSorted(t *testing.T) {
	f := func(seed uint64) bool {
		xs, err := workload.NumericSpec{Dist: workload.Zipf, N: 60, Seed: seed}.Generate()
		if err != nil {
			return false
		}
		st, err := newMultiset(xs)
		if err != nil {
			return false
		}
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9} {
			got, err := st.ms.Quantile(q)
			if err != nil {
				return false
			}
			want, err := stats.Quantile(xs, q)
			if err != nil {
				return false
			}
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMultisetEmptyQuantile(t *testing.T) {
	st, err := newMultiset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ms.Quantile(0.5); err == nil {
		t.Fatal("empty quantile should error")
	}
}

func TestReducersRejectWrongStates(t *testing.T) {
	for _, job := range []Numeric{Mean(), Median()} {
		if _, err := job.Reducer.Update("bogus", 1.0); !errors.Is(err, mr.ErrBadState) {
			t.Fatalf("%s: err = %v", job.Name, err)
		}
		st, _ := job.Reducer.Initialize("k", nil)
		if _, err := job.Reducer.Update(st, "bogus"); !errors.Is(err, mr.ErrBadInput) {
			t.Fatalf("%s: err = %v", job.Name, err)
		}
		if _, err := job.Reducer.Finalize("bogus"); !errors.Is(err, mr.ErrBadState) {
			t.Fatalf("%s: err = %v", job.Name, err)
		}
	}
}
