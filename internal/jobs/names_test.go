package jobs

import (
	"strings"
	"testing"
)

// TestByNameFixedNames: every fixed statistic resolves to a job with
// its own name and working Parse/Reducer/Statistic hooks.
func TestByNameFixedNames(t *testing.T) {
	for _, name := range []string{"mean", "sum", "count", "median", "variance", "stddev", "proportion"} {
		j, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if j.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, j.Name)
		}
		if j.Reducer == nil || j.Statistic == nil || j.Parse == nil {
			t.Fatalf("ByName(%q) returned an incomplete job", name)
		}
	}
}

// TestByNameQuantileForms: the generic pNN / q0.NN vocabulary parses at
// its boundaries and nowhere beyond.
func TestByNameQuantileForms(t *testing.T) {
	valid := map[string]string{
		"p50":    "quantile-0.5",
		"p99":    "quantile-0.99",
		"p99.9":  "quantile-0.999",
		"p0.1":   "quantile-0.001",
		"q0.25":  "quantile-0.25",
		"q0.999": "quantile-0.999",
	}
	for name, want := range valid {
		j, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if j.Name != want {
			t.Errorf("ByName(%q).Name = %q, want %q", name, j.Name, want)
		}
	}
	// Out-of-range, degenerate, and malformed quantiles are rejected —
	// including NaN/Inf forms ParseFloat accepts (an admitted NaN used to
	// panic when the quantile index was computed, remotely reachable via
	// earld job names).
	for _, name := range []string{
		"p0", "p100", "p-5", "p200", "pnan", "pNaN", "pinf", "pInf", "p1e2", "p",
		"q0", "q1", "q-0.5", "q2", "qnan", "qNaN", "qinf", "q+Inf", "q",
	} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) accepted an invalid quantile", name)
		}
	}
}

// TestByNameUnknown: unrecognised names fail with the offending name in
// the error (names are case-sensitive; front ends normalize case).
func TestByNameUnknown(t *testing.T) {
	for _, name := range []string{"", "nope", "MEAN", "Mean", "avg", "percentile99", "kmeans"} {
		_, err := ByName(name)
		if err == nil {
			t.Errorf("ByName(%q) accepted an unknown job", name)
			continue
		}
		if name != "" && !strings.Contains(err.Error(), name) {
			t.Errorf("ByName(%q) error does not name the job: %v", name, err)
		}
	}
}

// TestQuantileDirect pins the constructor's own guards (ByName routes
// through it, but the API is public on its own).
func TestQuantileDirect(t *testing.T) {
	if _, err := Quantile(0.5); err != nil {
		t.Fatalf("Quantile(0.5): %v", err)
	}
	for _, q := range []float64{0, 1, -0.1, 1.1} {
		if _, err := Quantile(q); err == nil {
			t.Errorf("Quantile(%v) accepted", q)
		}
	}
}
