package jobs

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dfs"
	"repro/internal/mr"
	"repro/internal/simcost"
	"repro/internal/workload"
)

func mixture(t *testing.T, n int) ([]workload.Point, []workload.Point) {
	t.Helper()
	pts, centers, err := workload.MixtureSpec{
		K: 4, Dim: 2, N: n, Spread: 1.0, Sep: 100, Seed: 21,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return pts, centers
}

func TestKMeansFitRecoversCenters(t *testing.T) {
	pts, truth := mixture(t, 2000)
	res, err := KMeans{K: 4, Seed: 5}.Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 4 {
		t.Fatalf("got %d centers", len(res.Centers))
	}
	errRel, err := CentroidError(res.Centers, truth)
	if err != nil {
		t.Fatal(err)
	}
	if errRel > 0.05 {
		t.Fatalf("centroid error %v > 5%%", errRel)
	}
	if res.WCSS <= 0 {
		t.Fatalf("WCSS = %v", res.WCSS)
	}
	if res.Iterations < 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestKMeansFitOnSampleStaysAccurate(t *testing.T) {
	// §6.3's claim: EARL's sampled K-Means finds centroids within 5% of
	// optimal. Fit on a 5% uniform sample and compare to the truth.
	pts, truth := mixture(t, 20000)
	rng := rand.New(rand.NewPCG(7, 8))
	sample := make([]workload.Point, 1000)
	for i := range sample {
		sample[i] = pts[rng.IntN(len(pts))]
	}
	res, err := KMeans{K: 4, Seed: 9}.Fit(sample)
	if err != nil {
		t.Fatal(err)
	}
	errRel, err := CentroidError(res.Centers, truth)
	if err != nil {
		t.Fatal(err)
	}
	if errRel > 0.05 {
		t.Fatalf("sampled centroid error %v > 5%%", errRel)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := (KMeans{K: 0}).Fit([]workload.Point{{1}}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := (KMeans{K: 3}).Fit([]workload.Point{{1}, {2}}); err == nil {
		t.Fatal("fewer points than K should error")
	}
	if _, err := (KMeans{K: 1}).Fit(nil); err == nil {
		t.Fatal("empty should error")
	}
}

func TestKMeansDegenerateIdenticalPoints(t *testing.T) {
	pts := make([]workload.Point, 50)
	for i := range pts {
		pts[i] = workload.Point{1, 2}
	}
	res, err := KMeans{K: 3, Seed: 1}.Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.WCSS != 0 {
		t.Fatalf("WCSS = %v for identical points", res.WCSS)
	}
}

func TestKMeansFitMRMatchesInMemory(t *testing.T) {
	pts, truth := mixture(t, 3000)
	var m simcost.Metrics
	fsys := dfs.New(dfs.Config{BlockSize: 1 << 14, Replication: 2, DataNodes: 5, Metrics: &m, Seed: 2})
	if err := fsys.WriteFile("/pts", workload.EncodePoints(pts)); err != nil {
		t.Fatal(err)
	}
	eng, err := mr.NewEngine(fsys, &m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeans{K: 4, Seed: 3}.FitMR(eng, "/pts", 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	errRel, err := CentroidError(res.Centers, truth)
	if err != nil {
		t.Fatal(err)
	}
	if errRel > 0.05 {
		t.Fatalf("MR centroid error %v > 5%%", errRel)
	}
	// One MR job per iteration plus the WCSS pass.
	s := m.Snapshot()
	if s.JobStartups < int64(res.Iterations) {
		t.Fatalf("JobStartups = %d < iterations %d", s.JobStartups, res.Iterations)
	}
	if res.WCSS <= 0 {
		t.Fatalf("WCSS = %v", res.WCSS)
	}
}

func TestCentroidErrorIdentity(t *testing.T) {
	truth := []workload.Point{{0, 0}, {10, 0}, {0, 10}}
	e, err := CentroidError(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("self error = %v", e)
	}
	if _, err := CentroidError(nil, truth); err == nil {
		t.Fatal("empty got should error")
	}
}

func TestWCSSOfDecreasesWithBetterCenters(t *testing.T) {
	pts, truth := mixture(t, 1000)
	bad := []workload.Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	if WCSSOf(truth, pts) >= WCSSOf(bad, pts) {
		t.Fatal("true centers should have lower WCSS than arbitrary ones")
	}
}

func TestParsePoints(t *testing.T) {
	pts, err := ParsePoints([]string{"1,2", " 3 , 4 ", ""})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1][0] != 3 || pts[1][1] != 4 {
		t.Fatalf("pts = %v", pts)
	}
	if _, err := ParsePoints([]string{"x,y"}); err == nil {
		t.Fatal("bad points should error")
	}
}
