package jobs

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"repro/internal/colscan"
	"repro/internal/stats"
)

// CorrState accumulates the five sums needed for a Pearson correlation
// incrementally, with exact pair removal — the shape of state EARL keeps
// for structure-capturing analytics ("the independence assumption also
// makes sampling applicable to algorithms relying on capturing
// data-structure such as correlation analysis", §3.3).
type CorrState struct {
	n                     int64
	sx, sy, sxx, syy, sxy float64
}

// AddPair folds one (x, y) observation in.
func (s *CorrState) AddPair(x, y float64) {
	s.n++
	s.sx += x
	s.sy += y
	s.sxx += x * x
	s.syy += y * y
	s.sxy += x * y
}

// RemovePair removes a previously added observation.
func (s *CorrState) RemovePair(x, y float64) error {
	if s.n == 0 {
		return errors.New("jobs: remove from empty correlation state")
	}
	s.n--
	s.sx -= x
	s.sy -= y
	s.sxx -= x * x
	s.syy -= y * y
	s.sxy -= x * y
	return nil
}

// Merge combines another state.
func (s *CorrState) Merge(o CorrState) {
	s.n += o.n
	s.sx += o.sx
	s.sy += o.sy
	s.sxx += o.sxx
	s.syy += o.syy
	s.sxy += o.sxy
}

// N returns the number of pairs accumulated.
func (s *CorrState) N() int64 { return s.n }

// Pearson returns the correlation coefficient, erroring when either
// marginal is degenerate.
func (s *CorrState) Pearson() (float64, error) {
	if s.n < 2 {
		return 0, stats.ErrShortInput
	}
	n := float64(s.n)
	cov := s.sxy - s.sx*s.sy/n
	vx := s.sxx - s.sx*s.sx/n
	vy := s.syy - s.sy*s.sy/n
	if vx <= 0 || vy <= 0 {
		return 0, errors.New("jobs: degenerate variance in correlation")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Pair is one (x, y) observation.
type Pair struct{ X, Y float64 }

// ParsePair decodes an "x,y" line without the per-record allocations of
// strings.Split (one slice header plus two substrings per call on the
// hot scan path), and with the shared NaN/±Inf guard: non-finite
// coordinates wrap colscan.ErrBadRecord like every other decoder.
//
//earl:hotpath
func ParsePair(line string) (Pair, error) {
	i := strings.IndexByte(line, ',')
	if i < 0 || strings.IndexByte(line[i+1:], ',') >= 0 {
		return Pair{}, fmt.Errorf("jobs: pair record needs 2 fields, got %s: %w",
			colscan.Quote(line), colscan.ErrBadRecord)
	}
	x, err := colscan.ParseValueString(line[:i])
	if err != nil {
		return Pair{}, fmt.Errorf("jobs: bad x: %w", err)
	}
	y, err := colscan.ParseValueString(line[i+1:])
	if err != nil {
		return Pair{}, fmt.Errorf("jobs: bad y: %w", err)
	}
	return Pair{X: x, Y: y}, nil
}

// PearsonOf computes the correlation of a pair slice.
func PearsonOf(pairs []Pair) (float64, error) {
	var st CorrState
	for _, p := range pairs {
		st.AddPair(p.X, p.Y)
	}
	return st.Pearson()
}

// BootstrapPearson draws B pair-resamples (resampling whole pairs keeps
// the joint structure) and returns the B correlation values plus their
// cv — the error estimate EARL would attach to an early correlation.
func BootstrapPearson(rng *rand.Rand, pairs []Pair, b int) (values []float64, cv float64, err error) {
	if len(pairs) < 2 {
		return nil, 0, stats.ErrShortInput
	}
	if b < 2 {
		return nil, 0, fmt.Errorf("jobs: need B ≥ 2, got %d", b)
	}
	values = make([]float64, b)
	buf := make([]Pair, len(pairs))
	for i := 0; i < b; i++ {
		for j := range buf {
			buf[j] = pairs[rng.IntN(len(pairs))]
		}
		v, err := PearsonOf(buf)
		if err != nil {
			return nil, 0, err
		}
		values[i] = v
	}
	cv, err = stats.CV(values)
	return values, cv, err
}
