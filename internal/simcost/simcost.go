// Package simcost models the wall-clock cost of a MapReduce job from
// hardware-independent counters.
//
// The paper's evaluation ran on a 5-node Hadoop 0.20.2 cluster over
// datasets up to hundreds of gigabytes. This reproduction executes the
// same algorithms in-process over much smaller data; what carries over is
// the *cost structure* — bytes scanned from disk, bytes shuffled over the
// network, records processed, disk seeks, and per-task / per-job fixed
// overheads. Every component of the simulated stack (DFS, MapReduce
// engine, samplers) increments a Metrics value, and a CostModel converts
// those counters into a modeled duration using constants calibrated to
// commodity 2012 hardware (the paper's Intel Core Duo E8400 nodes).
//
// Figures 5–7, 9 and 10 of the paper compare processing times; the bench
// harness reports both measured in-process time and the modeled time from
// this package, and the shape claims (crossover points, speedup factors)
// are asserted on the modeled numbers, which are deterministic.
package simcost

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Metrics accumulates the cost-relevant counters of one job (or any
// sub-phase). All methods are safe for concurrent use: map and reduce
// tasks running on different goroutines update the same Metrics.
type Metrics struct {
	BytesRead      atomic.Int64 // bytes scanned from DFS block storage
	BytesWritten   atomic.Int64 // bytes written back to DFS
	BytesShuffled  atomic.Int64 // map→reduce network traffic
	RecordsRead    atomic.Int64 // input records delivered to mappers
	RecordsMapped  atomic.Int64 // records emitted by mappers
	RecordsReduced atomic.Int64 // records consumed by reducers
	DiskSeeks      atomic.Int64 // random repositionings within blocks
	MapTasks       atomic.Int64 // map task launches (incl. restarts)
	ReduceTasks    atomic.Int64 // reduce task launches (incl. restarts)
	JobStartups    atomic.Int64 // MR job submissions (JVM fleet spin-up)
	TaskRestarts   atomic.Int64 // tasks restarted after failure
	Refreshes      atomic.Int64 // maintained-query refresh operations (continuous ingest)
}

// Snapshot is an immutable copy of a Metrics at a point in time.
type Snapshot struct {
	BytesRead      int64
	BytesWritten   int64
	BytesShuffled  int64
	RecordsRead    int64
	RecordsMapped  int64
	RecordsReduced int64
	DiskSeeks      int64
	MapTasks       int64
	ReduceTasks    int64
	JobStartups    int64
	TaskRestarts   int64
	Refreshes      int64
}

// Snapshot returns a consistent-enough copy for reporting. (Individual
// counters are read atomically; cross-counter skew is irrelevant for cost
// accounting after a job completes.)
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		BytesRead:      m.BytesRead.Load(),
		BytesWritten:   m.BytesWritten.Load(),
		BytesShuffled:  m.BytesShuffled.Load(),
		RecordsRead:    m.RecordsRead.Load(),
		RecordsMapped:  m.RecordsMapped.Load(),
		RecordsReduced: m.RecordsReduced.Load(),
		DiskSeeks:      m.DiskSeeks.Load(),
		MapTasks:       m.MapTasks.Load(),
		ReduceTasks:    m.ReduceTasks.Load(),
		JobStartups:    m.JobStartups.Load(),
		TaskRestarts:   m.TaskRestarts.Load(),
		Refreshes:      m.Refreshes.Load(),
	}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.BytesRead.Store(0)
	m.BytesWritten.Store(0)
	m.BytesShuffled.Store(0)
	m.RecordsRead.Store(0)
	m.RecordsMapped.Store(0)
	m.RecordsReduced.Store(0)
	m.DiskSeeks.Store(0)
	m.MapTasks.Store(0)
	m.ReduceTasks.Store(0)
	m.JobStartups.Store(0)
	m.TaskRestarts.Store(0)
	m.Refreshes.Store(0)
}

// Add folds another snapshot into s.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		BytesRead:      s.BytesRead + o.BytesRead,
		BytesWritten:   s.BytesWritten + o.BytesWritten,
		BytesShuffled:  s.BytesShuffled + o.BytesShuffled,
		RecordsRead:    s.RecordsRead + o.RecordsRead,
		RecordsMapped:  s.RecordsMapped + o.RecordsMapped,
		RecordsReduced: s.RecordsReduced + o.RecordsReduced,
		DiskSeeks:      s.DiskSeeks + o.DiskSeeks,
		MapTasks:       s.MapTasks + o.MapTasks,
		ReduceTasks:    s.ReduceTasks + o.ReduceTasks,
		JobStartups:    s.JobStartups + o.JobStartups,
		TaskRestarts:   s.TaskRestarts + o.TaskRestarts,
		Refreshes:      s.Refreshes + o.Refreshes,
	}
}

// Sub returns s - o, the delta between two snapshots of the same Metrics.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		BytesRead:      s.BytesRead - o.BytesRead,
		BytesWritten:   s.BytesWritten - o.BytesWritten,
		BytesShuffled:  s.BytesShuffled - o.BytesShuffled,
		RecordsRead:    s.RecordsRead - o.RecordsRead,
		RecordsMapped:  s.RecordsMapped - o.RecordsMapped,
		RecordsReduced: s.RecordsReduced - o.RecordsReduced,
		DiskSeeks:      s.DiskSeeks - o.DiskSeeks,
		MapTasks:       s.MapTasks - o.MapTasks,
		ReduceTasks:    s.ReduceTasks - o.ReduceTasks,
		JobStartups:    s.JobStartups - o.JobStartups,
		TaskRestarts:   s.TaskRestarts - o.TaskRestarts,
		Refreshes:      s.Refreshes - o.Refreshes,
	}
}

// CostModel converts a Snapshot into modeled wall-clock time. Throughput
// constants are per cluster node; ClusterNodes divides the parallelisable
// terms, while fixed per-job terms are serial (Hadoop's job submission and
// scheduling critical path).
type CostModel struct {
	ClusterNodes     int           // parallel width; paper used 5
	DiskMBps         float64       // sequential scan rate per node
	NetMBps          float64       // shuffle bandwidth per node
	SeekLatency      time.Duration // one random disk seek
	RecordCPU        time.Duration // per-record map/reduce CPU cost
	TaskStartup      time.Duration // per task-launch overhead (JVM spawn)
	JobStartup       time.Duration // per job-submission overhead
	PipelineDiscount float64       // 0..1 fraction of shuffle overlapped with map when pipelining
}

// Hadoop2012 returns constants approximating the paper's testbed: 5 nodes,
// ~90 MB/s sequential disk, ~110 MB/s (GigE) network, 10 ms seeks, ~1.5 µs
// of CPU per text record, 1.5 s JVM task spawn, 6 s job submission. These
// are the knobs that give stock Hadoop its famous minimum-job-latency
// floor, which is exactly the overhead EARL amortises.
func Hadoop2012() CostModel {
	return CostModel{
		ClusterNodes:     5,
		DiskMBps:         90,
		NetMBps:          110,
		SeekLatency:      10 * time.Millisecond,
		RecordCPU:        1500 * time.Nanosecond,
		TaskStartup:      1500 * time.Millisecond,
		JobStartup:       6 * time.Second,
		PipelineDiscount: 0.8,
	}
}

// Validate reports whether the model's constants are usable.
func (c CostModel) Validate() error {
	if c.ClusterNodes <= 0 {
		return fmt.Errorf("simcost: ClusterNodes must be positive, got %d", c.ClusterNodes)
	}
	if c.DiskMBps <= 0 || c.NetMBps <= 0 {
		return fmt.Errorf("simcost: throughputs must be positive")
	}
	if c.PipelineDiscount < 0 || c.PipelineDiscount > 1 {
		return fmt.Errorf("simcost: PipelineDiscount must be in [0,1]")
	}
	return nil
}

// Duration returns the modeled wall-clock time for the counters in s,
// assuming batch (non-pipelined) execution.
func (c CostModel) Duration(s Snapshot) time.Duration {
	return c.duration(s, false)
}

// PipelinedDuration returns the modeled time when map output is streamed
// to reducers while mapping proceeds (the HOP-style pipelining EARL
// adopts): a PipelineDiscount fraction of shuffle time is hidden.
func (c CostModel) PipelinedDuration(s Snapshot) time.Duration {
	return c.duration(s, true)
}

func (c CostModel) duration(s Snapshot, pipelined bool) time.Duration {
	nodes := float64(c.ClusterNodes)
	const mb = 1 << 20
	scan := time.Duration(float64(s.BytesRead+s.BytesWritten) / mb / c.DiskMBps / nodes * float64(time.Second))
	shuffle := time.Duration(float64(s.BytesShuffled) / mb / c.NetMBps / nodes * float64(time.Second))
	if pipelined {
		shuffle = time.Duration(float64(shuffle) * (1 - c.PipelineDiscount))
	}
	seeks := time.Duration(s.DiskSeeks) * c.SeekLatency / time.Duration(c.ClusterNodes)
	cpuRecords := s.RecordsRead + s.RecordsMapped + s.RecordsReduced
	cpu := time.Duration(cpuRecords) * c.RecordCPU / time.Duration(c.ClusterNodes)
	// Task launches parallelise across nodes; job submissions do not.
	tasks := time.Duration(float64(s.MapTasks+s.ReduceTasks) * float64(c.TaskStartup) / nodes)
	jobs := time.Duration(s.JobStartups) * c.JobStartup
	return scan + shuffle + seeks + cpu + tasks + jobs
}

// ScaleBytes returns a copy of s with all byte/record/seek counters
// multiplied by factor, leaving task/job launch counts unchanged. This is
// how the bench harness extrapolates a measured small-scale run to the
// paper's data sizes: data-dependent work scales linearly with input size,
// fixed scheduling overheads do not.
func (s Snapshot) ScaleBytes(factor float64) Snapshot {
	scale := func(v int64) int64 { return int64(float64(v) * factor) }
	return Snapshot{
		BytesRead:      scale(s.BytesRead),
		BytesWritten:   scale(s.BytesWritten),
		BytesShuffled:  scale(s.BytesShuffled),
		RecordsRead:    scale(s.RecordsRead),
		RecordsMapped:  scale(s.RecordsMapped),
		RecordsReduced: scale(s.RecordsReduced),
		DiskSeeks:      scale(s.DiskSeeks),
		MapTasks:       s.MapTasks,
		ReduceTasks:    s.ReduceTasks,
		JobStartups:    s.JobStartups,
		TaskRestarts:   s.TaskRestarts,
		Refreshes:      s.Refreshes,
	}
}

// ScaleAll returns a copy of s with every counter except JobStartups
// multiplied by factor. This is the stock-job extrapolation: doubling
// the input doubles bytes, records, seeks AND task launches (more
// splits), while job submission stays one.
func (s Snapshot) ScaleAll(factor float64) Snapshot {
	scale := func(v int64) int64 { return int64(float64(v) * factor) }
	out := s.ScaleBytes(factor)
	out.MapTasks = scale(s.MapTasks)
	out.ReduceTasks = s.ReduceTasks // reducer count is a job setting, not data-driven
	out.TaskRestarts = scale(s.TaskRestarts)
	out.JobStartups = s.JobStartups
	return out
}

// String renders the snapshot compactly for logs and experiment output.
func (s Snapshot) String() string {
	return fmt.Sprintf("read=%dB written=%dB shuffled=%dB recs(in/map/red)=%d/%d/%d seeks=%d tasks(m/r)=%d/%d jobs=%d restarts=%d refreshes=%d",
		s.BytesRead, s.BytesWritten, s.BytesShuffled,
		s.RecordsRead, s.RecordsMapped, s.RecordsReduced,
		s.DiskSeeks, s.MapTasks, s.ReduceTasks, s.JobStartups, s.TaskRestarts, s.Refreshes)
}
