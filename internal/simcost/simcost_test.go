package simcost

import (
	"sync"
	"testing"
	"time"
)

func TestSnapshotAddSub(t *testing.T) {
	var m Metrics
	m.BytesRead.Add(100)
	m.MapTasks.Add(2)
	a := m.Snapshot()
	m.BytesRead.Add(50)
	b := m.Snapshot()
	d := b.Sub(a)
	if d.BytesRead != 50 || d.MapTasks != 0 {
		t.Fatalf("delta = %+v", d)
	}
	sum := a.Add(d)
	if sum != b {
		t.Fatalf("add(sub) not identity: %+v vs %+v", sum, b)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.RecordsRead.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := m.RecordsRead.Load(); got != 16000 {
		t.Fatalf("concurrent adds lost updates: %d", got)
	}
}

func TestReset(t *testing.T) {
	var m Metrics
	m.BytesRead.Add(5)
	m.JobStartups.Add(1)
	m.Refreshes.Add(2)
	m.Reset()
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("reset left %+v", s)
	}
}

func TestRefreshesCounter(t *testing.T) {
	var m Metrics
	m.Refreshes.Add(3)
	a := m.Snapshot()
	if a.Refreshes != 3 {
		t.Fatalf("snapshot refreshes = %d", a.Refreshes)
	}
	m.Refreshes.Add(2)
	d := m.Snapshot().Sub(a)
	if d.Refreshes != 2 {
		t.Fatalf("delta refreshes = %d", d.Refreshes)
	}
	if got := a.Add(d).Refreshes; got != 5 {
		t.Fatalf("add refreshes = %d", got)
	}
	// Refreshes are operation counts, like job submissions: extrapolating
	// data volume must not scale them.
	if got := d.ScaleBytes(10).Refreshes; got != 2 {
		t.Fatalf("ScaleBytes scaled refreshes: %d", got)
	}
}

func TestHadoop2012Valid(t *testing.T) {
	if err := Hadoop2012().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []CostModel{
		{ClusterNodes: 0, DiskMBps: 1, NetMBps: 1},
		{ClusterNodes: 1, DiskMBps: 0, NetMBps: 1},
		{ClusterNodes: 1, DiskMBps: 1, NetMBps: 1, PipelineDiscount: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestDurationComponents(t *testing.T) {
	c := CostModel{
		ClusterNodes: 1,
		DiskMBps:     100,
		NetMBps:      100,
		SeekLatency:  time.Millisecond,
		RecordCPU:    time.Microsecond,
		TaskStartup:  time.Second,
		JobStartup:   5 * time.Second,
	}
	// 100 MB read at 100 MB/s = 1 s; 1 job = 5 s; 2 tasks = 2 s.
	s := Snapshot{BytesRead: 100 << 20, JobStartups: 1, MapTasks: 2}
	got := c.Duration(s)
	want := 8 * time.Second
	if diff := got - want; diff < -50*time.Millisecond || diff > 50*time.Millisecond {
		t.Fatalf("Duration = %v, want ≈%v", got, want)
	}
}

func TestParallelismDividesDataTerms(t *testing.T) {
	c1 := Hadoop2012()
	c1.ClusterNodes = 1
	c5 := Hadoop2012() // 5 nodes
	s := Snapshot{BytesRead: 1 << 30, RecordsRead: 10_000_000}
	d1 := c1.Duration(s)
	d5 := c5.Duration(s)
	ratio := float64(d1) / float64(d5)
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("5-node speedup on data terms = %v, want ≈5", ratio)
	}
	// Job startup must NOT parallelise.
	sj := Snapshot{JobStartups: 3}
	if c1.Duration(sj) != c5.Duration(sj) {
		t.Fatal("job startup should be serial")
	}
}

func TestPipelinedDurationHidesShuffle(t *testing.T) {
	c := Hadoop2012()
	s := Snapshot{BytesShuffled: 1 << 30}
	batch := c.Duration(s)
	pipe := c.PipelinedDuration(s)
	if pipe >= batch {
		t.Fatalf("pipelined %v should be < batch %v", pipe, batch)
	}
	wantRatio := 1 - c.PipelineDiscount
	gotRatio := float64(pipe) / float64(batch)
	if gotRatio < wantRatio-0.01 || gotRatio > wantRatio+0.01 {
		t.Fatalf("pipeline ratio = %v, want %v", gotRatio, wantRatio)
	}
}

func TestScaleBytes(t *testing.T) {
	s := Snapshot{BytesRead: 100, RecordsRead: 10, MapTasks: 3, JobStartups: 1}
	sc := s.ScaleBytes(10)
	if sc.BytesRead != 1000 || sc.RecordsRead != 100 {
		t.Fatalf("scaled = %+v", sc)
	}
	if sc.MapTasks != 3 || sc.JobStartups != 1 {
		t.Fatal("fixed overheads must not scale")
	}
}

func TestStringNonEmpty(t *testing.T) {
	if (Snapshot{}).String() == "" {
		t.Fatal("String should render something")
	}
}
