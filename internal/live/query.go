package live

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/mr"
	"repro/internal/plan"
	"repro/internal/pool"
)

// Query is a maintained EARL query over one or more statistics that
// share a single maintained sample. All methods are safe for concurrent
// use; Refresh calls are serialised.
type Query struct {
	watchBase
	jobs    []jobs.Numeric
	stats   []core.StatState // one per statistic; Maint nil on the exact path
	scratch pool.Floats      // refresh-fold parse buffer (guarded by mu)
	selSE   float64          // subpopulation-size uncertainty carried into every report (plan watches)

	// exact-maintenance path (tiny data / SSABE said sampling won't pay)
	exactStates []mr.State // one incremental reduce state per statistic
	exactN      int64

	generations int
	last        []core.Report // aligned with jobs
}

// Watch runs job over path once (exactly like core.Run) and returns a
// handle that keeps the answer maintainable under appended data.
func Watch(env *core.Env, job jobs.Numeric, path string, opts core.Options) (*Query, error) {
	return WatchMulti(env, []jobs.Numeric{job}, path, opts)
}

// WatchMulti runs a multi-statistic shared-pass query once (exactly
// like core.RunMulti: one pilot, one sample, one pass) and keeps every
// statistic's resample set maintainable under appended data. The
// statistics share the maintained sample, so a refresh costs one delta
// scan regardless of how many statistics ride the watch.
func WatchMulti(env *core.Env, jset []jobs.Numeric, path string, opts core.Options) (*Query, error) {
	return watchMulti(env, jset, path, opts, nil)
}

// watchMulti is the shared scalar watch constructor; a non-nil prog is
// a compiled query plan pushed into the run and every later refresh
// (opts must then already carry the spec's knobs — see
// core.PreparePlan). prog nil is the legacy path, bit-identical to the
// historical WatchMulti.
func watchMulti(env *core.Env, jset []jobs.Numeric, path string, opts core.Options, prog *plan.Program) (*Query, error) {
	// The creation run reads through a pinned snapshot: a rewrite (or
	// append) landing mid-run cannot give the watch a blended view. The
	// recorded write generation is what later refreshes compare against
	// to detect rewrites.
	snap := env.FS.Snapshot()
	defer snap.Release()
	penv := env.WithData(snap)
	// RunPlanMultiLiveDeferExact skips the exact MR jobs on the fall-back
	// path: the incremental scan below produces the same answers in one
	// pass and leaves a maintainable state behind.
	reps, st, err := core.RunPlanMultiLiveDeferExact(penv, jset, path, opts, prog)
	if err != nil {
		return nil, err
	}
	ver, err := snap.Version(path)
	if err != nil {
		return nil, err
	}
	format := jset[0].ScanFormat
	if prog != nil {
		format = prog.InputFormat()
	}
	q := &Query{
		watchBase: watchBase{
			env:      env,
			path:     path,
			opts:     st.Opts,
			origOpts: opts,
			format:   format,
			prog:     prog,
			sources:  st.Sources,
			dry:      make([]bool, len(st.Sources)),
			estTotal: st.EstTotal,
			synced:   st.SyncedBytes,
			version:  ver,
		},
		jobs:        jset,
		stats:       st.Stats,
		selSE:       st.SelSE,
		generations: st.Generations,
		last:        reps,
	}
	if q.stats[0].Maint == nil {
		// Exact fallback: one scan builds every statistic's incremental
		// exact state; every refresh after reads only appended splits.
		splits, err := snap.Splits(path, q.opts.SplitSize)
		if err != nil {
			return nil, err
		}
		if err := q.foldExact(snap, splits); err != nil {
			return nil, err
		}
		q.estTotal = q.exactN
		q.last = q.exactReports()
	}
	// The snapshot dies with this constructor; later draws read live.
	core.RepinSources(q.sources, env.FS)
	return q, nil
}

// Report returns the most recent result (the first statistic's, for
// multi-statistic watches) without doing any work.
func (q *Query) Report() core.Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.last[0]
}

// Reports returns the most recent per-statistic results, in job order,
// without doing any work.
func (q *Query) Reports() []core.Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]core.Report(nil), q.last...)
}

// Refreshes returns how many Refresh calls have been applied.
func (q *Query) Refreshes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.refreshGen
}

// SampleSize returns the records currently held in the maintained sample
// (the exact record count on the exact-maintenance path).
func (q *Query) SampleSize() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.stats[0].Maint == nil {
		return int(q.exactN)
	}
	return q.stats[0].Maint.N()
}

// Close releases the handle. The final reports stay readable; Refresh
// returns ErrClosed.
func (q *Query) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closeBase()
	q.exactStates = nil
}

// Refresh brings the maintained answer up to date with the watched
// file, processing only data appended since the last sync (or Watch),
// and returns the first statistic's report. With nothing appended it
// just returns the current report.
//
// An infrastructure error mid-refresh (e.g. appended blocks with no
// live replica) is returned as-is; the handle's coverage of the file
// may then be incomplete, so after repairing the cluster either retry
// or open a fresh Watch.
func (q *Query) Refresh() (core.Report, error) {
	reps, err := q.RefreshAll()
	if err != nil {
		return core.Report{}, err
	}
	return reps[0], nil
}

// RefreshAll is Refresh returning every statistic's report, in job
// order. The whole refresh — classification, delta scan, expansion —
// reads through one pinned snapshot of the DFS, so concurrent ingest
// (or a rewrite) can never hand it a blended view: the reports reflect
// either the pre-commit or the post-commit file, exactly. A rewrite of
// the watched path triggers a full rebuild against the snapshot,
// bit-identical to a fresh watch opened over the rewritten contents.
func (q *Query) RefreshAll() ([]core.Report, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	snap := q.env.FS.Snapshot()
	defer snap.Release()
	size, appended, rewritten, err := q.beginRefresh(snap)
	if err != nil {
		return nil, err
	}
	if rewritten {
		if err := q.rebuild(snap); err != nil {
			return nil, err
		}
		return append([]core.Report(nil), q.last...), nil
	}
	if !appended {
		return append([]core.Report(nil), q.last...), nil
	}
	if q.stats[0].Maint == nil {
		return q.refreshExact(snap, size)
	}
	if err := q.refreshSampled(q.env.WithData(snap), size, (*statFold)(q)); err != nil {
		return nil, err
	}
	reps, err := q.buildReports()
	if err != nil {
		return nil, err
	}
	q.last = reps
	return append([]core.Report(nil), reps...), nil
}

// rebuild re-runs the watch's creation against the pinned snapshot —
// the rewrite path: the retained sample describes bytes that no longer
// exist, so the maintained state is replaced wholesale. Run inputs
// (jobs, path, original options, plan, seed) are identical to a fresh
// Watch over the rewritten file, so the rebuilt reports are too.
func (q *Query) rebuild(snap *dfs.Snapshot) error {
	penv := q.env.WithData(snap)
	reps, st, err := core.RunPlanMultiLiveDeferExact(penv, q.jobs, q.path, q.origOpts, q.prog)
	if err != nil {
		return err
	}
	ver, err := snap.Version(q.path)
	if err != nil {
		return err
	}
	q.opts = st.Opts
	q.sources = st.Sources
	q.dry = make([]bool, len(st.Sources))
	q.estTotal = st.EstTotal
	q.synced = st.SyncedBytes
	q.version = ver
	q.stats = st.Stats
	q.selSE = st.SelSE
	q.generations = st.Generations
	q.last = reps
	q.exactStates, q.exactN = nil, 0
	if q.stats[0].Maint == nil {
		splits, err := snap.Splits(q.path, q.opts.SplitSize)
		if err != nil {
			return err
		}
		if err := q.foldExact(snap, splits); err != nil {
			return err
		}
		q.estTotal = q.exactN
		q.last = q.exactReports()
	}
	core.RepinSources(q.sources, q.env.FS)
	return nil
}

// buildReports renders the current maintained state as per-statistic
// reports.
func (q *Query) buildReports() ([]core.Report, error) {
	reps := make([]core.Report, len(q.stats))
	for i, st := range q.stats {
		vals, err := st.Maint.Results()
		if err != nil {
			return nil, err
		}
		cv := measureOf(q.opts, st.Maint)
		p := float64(st.Maint.N()) / float64(q.estTotal)
		rep, err := core.FinishReport(q.jobs[i], q.opts, vals, cv, p, q.selSE)
		if err != nil {
			return nil, err
		}
		rep.B = st.Plan.B
		rep.SampleSize = st.Maint.N()
		rep.PlannedN = st.Plan.N
		rep.Iterations = q.generations
		rep.EstTotalN = q.estTotal
		reps[i] = rep
	}
	return reps, nil
}

// ---- Exact maintenance (tiny data / SSABE said sampling won't pay) ----

// foldExact streams every record of the given splits into each
// statistic's incremental reduce state (one scan, shared parse),
// reading through v — the caller's pinned snapshot.
func (q *Query) foldExact(v dfs.View, splits []dfs.Split) error {
	var vals []float64
	for _, sp := range splits {
		rd, err := v.NewLineReader(sp, 0)
		if err != nil {
			return err
		}
		for rd.Next() {
			if q.prog != nil {
				// Plan watches fold only σ's survivors, carrying the
				// derived value — the exact state IS the subpopulation
				// statistic. Every scanned record is charged as read.
				keep, _, v, perr := q.prog.EvalLine(rd.Text())
				if perr != nil {
					return fmt.Errorf("live: parse: %w", perr)
				}
				q.env.Metrics.RecordsRead.Add(1)
				if keep {
					vals = append(vals, v)
				}
				continue
			}
			v, perr := q.jobs[0].Parse(rd.Text())
			if perr != nil {
				return fmt.Errorf("live: parse: %w", perr)
			}
			vals = append(vals, v)
			q.env.Metrics.RecordsRead.Add(1)
		}
		if rd.Err() != nil {
			return rd.Err()
		}
	}
	if q.exactStates == nil {
		q.exactStates = make([]mr.State, len(q.jobs))
	}
	for i, job := range q.jobs {
		st, err := mr.InitializeOrUpdate(job.Reducer, job.Name, q.exactStates[i], vals)
		if err != nil {
			return err
		}
		q.exactStates[i] = st
	}
	q.exactN += int64(len(vals))
	return nil
}

// refreshExact folds only the appended splits into the exact states,
// reading through v — the refresh's pinned snapshot.
func (q *Query) refreshExact(v dfs.View, size int64) ([]core.Report, error) {
	if size > q.synced {
		splits, err := splitsSince(v, q.path, q.opts.SplitSize, q.synced)
		if err != nil {
			return nil, err
		}
		if err := q.foldExact(v, splits); err != nil {
			return nil, err
		}
		q.synced = size
		q.estTotal = q.exactN
	}
	q.last = q.exactReports()
	return append([]core.Report(nil), q.last...), nil
}

// exactReports renders the maintained exact states as Reports (CV 0,
// p = 1 — there is no sampling error to estimate).
func (q *Query) exactReports() []core.Report {
	reps := make([]core.Report, len(q.jobs))
	for i, job := range q.jobs {
		var est float64
		if q.exactStates != nil && q.exactStates[i] != nil {
			if v, err := job.Reducer.Finalize(q.exactStates[i]); err == nil {
				est = v
			}
		}
		reps[i] = core.Report{
			Job:         job.Name,
			Estimate:    est,
			Uncorrected: est,
			CILo:        est,
			CIHi:        est,
			B:           1,
			SampleSize:  int(q.exactN),
			Iterations:  1,
			UsedFull:    true,
			Converged:   true,
			FractionP:   1,
			EstTotalN:   q.exactN,
		}
	}
	return reps
}
