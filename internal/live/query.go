package live

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/mr"
	"repro/internal/plan"
	"repro/internal/pool"
)

// Query is a maintained EARL query over one or more statistics that
// share a single maintained sample. All methods are safe for concurrent
// use; Refresh calls are serialised.
type Query struct {
	watchBase
	jobs    []jobs.Numeric
	stats   []core.StatState // one per statistic; Maint nil on the exact path
	scratch pool.Floats      // refresh-fold parse buffer (guarded by mu)
	selSE   float64          // subpopulation-size uncertainty carried into every report (plan watches)

	// exact-maintenance path (tiny data / SSABE said sampling won't pay)
	exactStates []mr.State // one incremental reduce state per statistic
	exactN      int64

	generations int
	last        []core.Report // aligned with jobs
}

// Watch runs job over path once (exactly like core.Run) and returns a
// handle that keeps the answer maintainable under appended data.
func Watch(env *core.Env, job jobs.Numeric, path string, opts core.Options) (*Query, error) {
	return WatchMulti(env, []jobs.Numeric{job}, path, opts)
}

// WatchMulti runs a multi-statistic shared-pass query once (exactly
// like core.RunMulti: one pilot, one sample, one pass) and keeps every
// statistic's resample set maintainable under appended data. The
// statistics share the maintained sample, so a refresh costs one delta
// scan regardless of how many statistics ride the watch.
func WatchMulti(env *core.Env, jset []jobs.Numeric, path string, opts core.Options) (*Query, error) {
	return watchMulti(env, jset, path, opts, nil)
}

// watchMulti is the shared scalar watch constructor; a non-nil prog is
// a compiled query plan pushed into the run and every later refresh
// (opts must then already carry the spec's knobs — see
// core.PreparePlan). prog nil is the legacy path, bit-identical to the
// historical WatchMulti.
func watchMulti(env *core.Env, jset []jobs.Numeric, path string, opts core.Options, prog *plan.Program) (*Query, error) {
	// RunPlanMultiLiveDeferExact skips the exact MR jobs on the fall-back
	// path: the incremental scan below produces the same answers in one
	// pass and leaves a maintainable state behind.
	reps, st, err := core.RunPlanMultiLiveDeferExact(env, jset, path, opts, prog)
	if err != nil {
		return nil, err
	}
	format := jset[0].ScanFormat
	if prog != nil {
		format = prog.InputFormat()
	}
	q := &Query{
		watchBase: watchBase{
			env:      env,
			path:     path,
			opts:     st.Opts,
			format:   format,
			prog:     prog,
			sources:  st.Sources,
			dry:      make([]bool, len(st.Sources)),
			estTotal: st.EstTotal,
			synced:   st.SyncedBytes,
		},
		jobs:        jset,
		stats:       st.Stats,
		selSE:       st.SelSE,
		generations: st.Generations,
		last:        reps,
	}
	if q.stats[0].Maint == nil {
		// Exact fallback: one scan builds every statistic's incremental
		// exact state; every refresh after reads only appended splits.
		splits, err := env.FS.Splits(path, q.opts.SplitSize)
		if err != nil {
			return nil, err
		}
		if err := q.foldExact(splits); err != nil {
			return nil, err
		}
		q.estTotal = q.exactN
		q.last = q.exactReports()
	}
	return q, nil
}

// Report returns the most recent result (the first statistic's, for
// multi-statistic watches) without doing any work.
func (q *Query) Report() core.Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.last[0]
}

// Reports returns the most recent per-statistic results, in job order,
// without doing any work.
func (q *Query) Reports() []core.Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]core.Report(nil), q.last...)
}

// Refreshes returns how many Refresh calls have been applied.
func (q *Query) Refreshes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.refreshGen
}

// SampleSize returns the records currently held in the maintained sample
// (the exact record count on the exact-maintenance path).
func (q *Query) SampleSize() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.stats[0].Maint == nil {
		return int(q.exactN)
	}
	return q.stats[0].Maint.N()
}

// Close releases the handle. The final reports stay readable; Refresh
// returns ErrClosed.
func (q *Query) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closeBase()
	q.exactStates = nil
}

// Refresh brings the maintained answer up to date with the watched
// file, processing only data appended since the last sync (or Watch),
// and returns the first statistic's report. With nothing appended it
// just returns the current report.
//
// An infrastructure error mid-refresh (e.g. appended blocks with no
// live replica) is returned as-is; the handle's coverage of the file
// may then be incomplete, so after repairing the cluster either retry
// or open a fresh Watch.
func (q *Query) Refresh() (core.Report, error) {
	reps, err := q.RefreshAll()
	if err != nil {
		return core.Report{}, err
	}
	return reps[0], nil
}

// RefreshAll is Refresh returning every statistic's report, in job
// order.
func (q *Query) RefreshAll() ([]core.Report, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	size, appended, err := q.beginRefresh()
	if err != nil {
		return nil, err
	}
	if !appended {
		return append([]core.Report(nil), q.last...), nil
	}
	if q.stats[0].Maint == nil {
		return q.refreshExact(size)
	}
	if err := q.refreshSampled(size, (*statFold)(q)); err != nil {
		return nil, err
	}
	reps, err := q.buildReports()
	if err != nil {
		return nil, err
	}
	q.last = reps
	return append([]core.Report(nil), reps...), nil
}

// buildReports renders the current maintained state as per-statistic
// reports.
func (q *Query) buildReports() ([]core.Report, error) {
	reps := make([]core.Report, len(q.stats))
	for i, st := range q.stats {
		vals, err := st.Maint.Results()
		if err != nil {
			return nil, err
		}
		cv := measureOf(q.opts, st.Maint)
		p := float64(st.Maint.N()) / float64(q.estTotal)
		rep, err := core.FinishReport(q.jobs[i], q.opts, vals, cv, p, q.selSE)
		if err != nil {
			return nil, err
		}
		rep.B = st.Plan.B
		rep.SampleSize = st.Maint.N()
		rep.PlannedN = st.Plan.N
		rep.Iterations = q.generations
		rep.EstTotalN = q.estTotal
		reps[i] = rep
	}
	return reps, nil
}

// ---- Exact maintenance (tiny data / SSABE said sampling won't pay) ----

// foldExact streams every record of the given splits into each
// statistic's incremental reduce state (one scan, shared parse).
func (q *Query) foldExact(splits []dfs.Split) error {
	var vals []float64
	for _, sp := range splits {
		rd, err := q.env.FS.NewLineReader(sp, 0)
		if err != nil {
			return err
		}
		for rd.Next() {
			if q.prog != nil {
				// Plan watches fold only σ's survivors, carrying the
				// derived value — the exact state IS the subpopulation
				// statistic. Every scanned record is charged as read.
				keep, _, v, perr := q.prog.EvalLine(rd.Text())
				if perr != nil {
					return fmt.Errorf("live: parse: %w", perr)
				}
				q.env.Metrics.RecordsRead.Add(1)
				if keep {
					vals = append(vals, v)
				}
				continue
			}
			v, perr := q.jobs[0].Parse(rd.Text())
			if perr != nil {
				return fmt.Errorf("live: parse: %w", perr)
			}
			vals = append(vals, v)
			q.env.Metrics.RecordsRead.Add(1)
		}
		if rd.Err() != nil {
			return rd.Err()
		}
	}
	if q.exactStates == nil {
		q.exactStates = make([]mr.State, len(q.jobs))
	}
	for i, job := range q.jobs {
		st, err := mr.InitializeOrUpdate(job.Reducer, job.Name, q.exactStates[i], vals)
		if err != nil {
			return err
		}
		q.exactStates[i] = st
	}
	q.exactN += int64(len(vals))
	return nil
}

// refreshExact folds only the appended splits into the exact states.
func (q *Query) refreshExact(size int64) ([]core.Report, error) {
	if size > q.synced {
		splits, err := splitsSince(q.env, q.path, q.opts.SplitSize, q.synced)
		if err != nil {
			return nil, err
		}
		if err := q.foldExact(splits); err != nil {
			return nil, err
		}
		q.synced = size
		q.estTotal = q.exactN
	}
	q.last = q.exactReports()
	return append([]core.Report(nil), q.last...), nil
}

// exactReports renders the maintained exact states as Reports (CV 0,
// p = 1 — there is no sampling error to estimate).
func (q *Query) exactReports() []core.Report {
	reps := make([]core.Report, len(q.jobs))
	for i, job := range q.jobs {
		var est float64
		if q.exactStates != nil && q.exactStates[i] != nil {
			if v, err := job.Reducer.Finalize(q.exactStates[i]); err == nil {
				est = v
			}
		}
		reps[i] = core.Report{
			Job:         job.Name,
			Estimate:    est,
			Uncorrected: est,
			CILo:        est,
			CIHi:        est,
			B:           1,
			SampleSize:  int(q.exactN),
			Iterations:  1,
			UsedFull:    true,
			Converged:   true,
			FractionP:   1,
			EstTotalN:   q.exactN,
		}
	}
	return reps
}
