package live

import (
	"repro/internal/core"
	"repro/internal/plan"
)

// WatchPlan opens a maintained query from a plan.Spec: the spec is
// normalized and compiled once (core.PreparePlan), the σ/π/γ program is
// pushed into the initial run's sampling sources and every refresh's
// new streams, and exactly one of the two handles is returned — a
// *Query for scalar plans, a *GroupedQuery when the plan groups.
// Degenerate specs run the legacy paths bit-identically.
func WatchPlan(env *core.Env, spec plan.Spec, opts core.Options) (*Query, *GroupedQuery, error) {
	pq, err := core.PreparePlan(spec, opts)
	if err != nil {
		return nil, nil, err
	}
	if pq.Grouped() {
		gq, err := watchGrouped(env, pq.Jobs[0], core.TabRoute(), pq.Spec.Path, pq.Opts, pq.Prog)
		return nil, gq, err
	}
	q, err := watchMulti(env, pq.Jobs, pq.Spec.Path, pq.Opts, pq.Prog)
	return q, nil, err
}
