package live

import (
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/plan"
)

// GroupedQuery is a maintained per-key EARL query: every group's
// delta-maintained resample set stays alive after the first answer, and
// Refresh folds in only appended data — including groups that appear
// for the first time in the appended region, which are opened with the
// same key-derived seed the initial run would have used. It is the
// grouped face of the shared refresh core in watchBase: the same draw
// and expansion machinery as Query, with a sink that routes records by
// key into per-group resample sets.
type GroupedQuery struct {
	watchBase
	job    jobs.Numeric
	route  core.Route
	b      int
	maints map[string]*delta.Maintainer

	last      core.GroupedReport
	baseIters int // growth generations of the initial run

	// Refresh-fold scratch (guarded by mu): the per-key value buffers and
	// the sorted-key slice are reused across folds so a long-lived
	// grouped watch does not re-allocate its routing state every refresh.
	groupScratch map[string][]float64
	keyScratch   []string
}

// WatchGrouped runs the grouped early workflow once and returns a
// maintained handle over its per-group state.
func WatchGrouped(env *core.Env, job jobs.Numeric, route core.Route, path string, opts core.Options) (*GroupedQuery, error) {
	return watchGrouped(env, job, route, path, opts, nil)
}

// watchGrouped is the shared grouped watch constructor; a non-nil prog
// is a compiled query plan whose γ labels the groups (route may be zero
// then — records decode under the plan's input format). prog nil is the
// legacy path, bit-identical to the historical WatchGrouped.
func watchGrouped(env *core.Env, job jobs.Numeric, route core.Route, path string, opts core.Options, prog *plan.Program) (*GroupedQuery, error) {
	// Pin the creation run to one commit point, exactly like the scalar
	// watch constructor; the recorded write generation is the rewrite
	// detector for later refreshes.
	snap := env.FS.Snapshot()
	defer snap.Release()
	penv := env.WithData(snap)
	var rep core.GroupedReport
	var st *core.GroupedLiveState
	var err error
	format := route.Format
	if prog != nil {
		rep, st, err = core.RunPlanGroupedLive(penv, job, path, opts, prog)
		format = prog.InputFormat()
	} else {
		rep, st, err = core.RunGroupedLive(penv, job, route, path, opts)
	}
	if err != nil {
		return nil, err
	}
	ver, err := snap.Version(path)
	if err != nil {
		return nil, err
	}
	q := &GroupedQuery{
		watchBase: watchBase{
			env:      env,
			path:     path,
			opts:     st.Opts,
			origOpts: opts,
			format:   format,
			prog:     prog,
			sources:  st.Sources,
			dry:      make([]bool, len(st.Sources)),
			estTotal: st.EstTotal,
			synced:   st.SyncedBytes,
			version:  ver,
		},
		job:       job,
		route:     route,
		b:         st.B,
		maints:    st.Maints,
		last:      rep,
		baseIters: rep.Iterations,
	}
	core.RepinSources(q.sources, env.FS)
	return q, nil
}

// Report returns the most recent grouped result without doing any work.
func (q *GroupedQuery) Report() core.GroupedReport {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.last
}

// Refreshes returns how many Refresh calls have been applied.
func (q *GroupedQuery) Refreshes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.refreshGen
}

// SampleSize returns the records currently held across every group's
// maintained sample.
func (q *GroupedQuery) SampleSize() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int((*groupFold)(q).size())
}

// Close releases the handle; Refresh returns ErrClosed afterwards.
func (q *GroupedQuery) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closeBase()
}

// Refresh brings every group up to date with the watched file,
// processing only data appended since the last sync, then re-expands
// (over the whole file, without replacement) while the worst group's
// error violates σ.
func (q *GroupedQuery) Refresh() (core.GroupedReport, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	snap := q.env.FS.Snapshot()
	defer snap.Release()
	size, appended, rewritten, err := q.beginRefresh(snap)
	if err != nil {
		return core.GroupedReport{}, err
	}
	if rewritten {
		if err := q.rebuild(snap); err != nil {
			return core.GroupedReport{}, err
		}
		return q.last, nil
	}
	if !appended {
		return q.last, nil
	}
	if err := q.refreshSampled(q.env.WithData(snap), size, (*groupFold)(q)); err != nil {
		return core.GroupedReport{}, err
	}
	rep, err := core.GroupedReportFrom(q.job, q.opts, q.maints)
	if err != nil {
		return core.GroupedReport{}, err
	}
	rep.Iterations = q.baseIters + q.refreshGen
	q.last = rep
	return rep, nil
}

// rebuild re-runs the grouped watch's creation against the pinned
// snapshot after a rewrite of the watched path, replacing every group's
// maintained state — identical inputs to a fresh WatchGrouped over the
// rewritten file, so identical reports.
func (q *GroupedQuery) rebuild(snap *dfs.Snapshot) error {
	penv := q.env.WithData(snap)
	var rep core.GroupedReport
	var st *core.GroupedLiveState
	var err error
	if q.prog != nil {
		rep, st, err = core.RunPlanGroupedLive(penv, q.job, q.path, q.origOpts, q.prog)
	} else {
		rep, st, err = core.RunGroupedLive(penv, q.job, q.route, q.path, q.origOpts)
	}
	if err != nil {
		return err
	}
	ver, err := snap.Version(q.path)
	if err != nil {
		return err
	}
	q.opts = st.Opts
	q.sources = st.Sources
	q.dry = make([]bool, len(st.Sources))
	q.estTotal = st.EstTotal
	q.synced = st.SyncedBytes
	q.version = ver
	q.b = st.B
	q.maints = st.Maints
	q.last = rep
	q.baseIters = rep.Iterations
	q.groupScratch, q.keyScratch = nil, nil
	core.RepinSources(q.sources, q.env.FS)
	return nil
}
