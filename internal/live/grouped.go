package live

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/sampling"
)

// isExhausted reports whether err is the samplers' dry-region signal.
func isExhausted(err error) bool { return errors.Is(err, sampling.ErrExhausted) }

// GroupedQuery is a maintained per-key EARL query: every group's
// delta-maintained resample set stays alive after the first answer, and
// Refresh folds in only appended data — including groups that appear
// for the first time in the appended region, which are opened with the
// same key-derived seed the initial run would have used.
type GroupedQuery struct {
	mu    sync.Mutex
	env   *core.Env
	job   jobs.Numeric
	parse core.ParseKV
	path  string
	st    *core.GroupedLiveState
	dry   []bool

	last       core.GroupedReport
	baseIters  int // growth generations of the initial run
	refreshGen int
	closed     bool
}

// WatchGrouped runs the grouped early workflow once and returns a
// maintained handle over its per-group state.
func WatchGrouped(env *core.Env, job jobs.Numeric, parse core.ParseKV, path string, opts core.Options) (*GroupedQuery, error) {
	rep, st, err := core.RunGroupedLive(env, job, parse, path, opts)
	if err != nil {
		return nil, err
	}
	return &GroupedQuery{
		env:       env,
		job:       job,
		parse:     parse,
		path:      path,
		st:        st,
		dry:       make([]bool, len(st.Sources)),
		last:      rep,
		baseIters: rep.Iterations,
	}, nil
}

// Report returns the most recent grouped result without doing any work.
func (q *GroupedQuery) Report() core.GroupedReport {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.last
}

// Refreshes returns how many Refresh calls have been applied.
func (q *GroupedQuery) Refreshes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.refreshGen
}

// Close releases the handle; Refresh returns ErrClosed afterwards.
func (q *GroupedQuery) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.st.Sources = nil
}

// Refresh brings every group up to date with the watched file,
// processing only data appended since the last sync, then re-expands
// (over the whole file, without replacement) while the worst group's
// error violates σ.
func (q *GroupedQuery) Refresh() (core.GroupedReport, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return core.GroupedReport{}, ErrClosed
	}
	size, err := q.env.FS.Stat(q.path)
	if err != nil {
		return core.GroupedReport{}, err
	}
	if size < q.st.SyncedBytes {
		return core.GroupedReport{}, fmt.Errorf("%w: %s", ErrTruncated, q.path)
	}
	if size == q.st.SyncedBytes {
		return q.last, nil // nothing appended: no-op
	}
	q.env.Metrics.Refreshes.Add(1)
	q.refreshGen++
	st := q.st
	opts := st.Opts
	st.Sources, q.dry = compactSources(st.Sources, q.dry)

	if size > st.SyncedBytes {
		newSources, estNew, err := buildRefreshSources(
			q.env, q.path, opts, st.SyncedBytes, size, st.EstTotal, q.refreshGen)
		if err != nil {
			return core.GroupedReport{}, err
		}
		var sampled int64
		for _, mt := range st.Maints {
			sampled += int64(mt.N())
		}
		p := float64(sampled) / float64(st.EstTotal)
		if p > 1 {
			p = 1
		}
		nDelta := int64(p*float64(estNew) + 0.5)
		if nDelta > estNew {
			nDelta = estNew
		}
		from := len(st.Sources)
		st.Sources = append(st.Sources, newSources...)
		q.dry = append(q.dry, make([]bool, len(newSources))...)
		st.EstTotal += estNew
		st.SyncedBytes = size
		if nDelta > 0 {
			if err := q.growFrom(from, len(st.Sources), int(nDelta)); err != nil {
				return core.GroupedReport{}, err
			}
		}
	}

	// Re-expand while the worst group violates σ, with the same doubling
	// schedule as the in-run loop.
	worst := q.worstCV()
	maxSample := int64(opts.MaxSampleFraction * float64(st.EstTotal))
	for worst > opts.Sigma {
		var sampled int64
		for _, mt := range st.Maints {
			sampled += int64(mt.N())
		}
		if sampled >= maxSample {
			break
		}
		next := sampled * 2
		if next > maxSample {
			next = maxSample
		}
		k := next - sampled
		if k <= 0 {
			break
		}
		grew, err := q.growFromCounted(0, len(st.Sources), int(k))
		if err != nil {
			return core.GroupedReport{}, err
		}
		if grew == 0 {
			break // everything exhausted: finish with achieved accuracy
		}
		worst = q.worstCV()
	}

	rep, err := core.GroupedReportFrom(q.job, opts, st.Maints)
	if err != nil {
		return core.GroupedReport{}, err
	}
	rep.Iterations = q.baseIters + q.refreshGen
	q.last = rep
	return rep, nil
}

// growFrom draws total records from Sources[from:to] and folds them into
// the per-group maintainers.
func (q *GroupedQuery) growFrom(from, to, total int) error {
	_, err := q.growFromCounted(from, to, total)
	return err
}

// growFromCounted is growFrom, reporting how many records were actually
// drawn (sources may be dry).
func (q *GroupedQuery) growFromCounted(from, to, total int) (int, error) {
	lines, err := q.drawLines(from, to, total)
	if err != nil {
		return 0, err
	}
	if len(lines) == 0 {
		return 0, nil
	}
	groups := map[string][]float64{}
	for _, line := range lines {
		key, v, perr := q.parse(line)
		if perr != nil {
			return 0, fmt.Errorf("live: parse: %w", perr)
		}
		groups[key] = append(groups[key], v)
	}
	// Sorted keys and sorted deltas: the canonical order that keeps
	// fixed-seed refreshes reproducible (see core's grouped reducer).
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		mt, ok := q.st.Maints[key]
		if !ok {
			var err error
			mt, err = core.NewGroupMaintainer(q.env, q.job, key, q.st.B, q.st.Opts)
			if err != nil {
				return 0, err
			}
			q.st.Maints[key] = mt
		}
		vals := groups[key]
		sort.Float64s(vals)
		if err := mt.Grow(vals); err != nil {
			return 0, err
		}
	}
	return len(lines), nil
}

// drawLines draws total raw lines from Sources[from:to], apportioned by
// weight and drawn sequentially in source order — deterministic by
// construction (grouped deltas are small; the parallel scheme of
// Query.drawAcross is not worth the machinery here).
func (q *GroupedQuery) drawLines(from, to, total int) ([]string, error) {
	var flat []string
	for i := from; i < to && len(flat) < total; i++ {
		if q.dry[i] {
			continue
		}
		// Weight-proportional share of what is still needed, floored so
		// every live source contributes.
		var weightSum int64
		for j := i; j < to; j++ {
			if !q.dry[j] {
				weightSum += q.st.Sources[j].Weight()
			}
		}
		if weightSum <= 0 {
			break
		}
		need := total - len(flat)
		share := int(int64(need) * q.st.Sources[i].Weight() / weightSum)
		if share < 1 {
			share = 1
		}
		if share > need {
			share = need
		}
		lines, err := q.st.Sources[i].Draw(share)
		if err != nil {
			if !isExhausted(err) {
				return nil, err
			}
			q.dry[i] = true
		}
		flat = append(flat, lines...)
	}
	// Second pass: top up from any still-live source.
	for i := from; i < to && len(flat) < total; i++ {
		if q.dry[i] {
			continue
		}
		lines, err := q.st.Sources[i].Draw(total - len(flat))
		if err != nil {
			if !isExhausted(err) {
				return nil, err
			}
			q.dry[i] = true
		}
		flat = append(flat, lines...)
	}
	return flat, nil
}

// worstCV returns the largest error across groups, +Inf with no groups
// or while any group's sample is below core.MinGroupSample — the same
// floor the in-run reducer applies, so a brand-new key appearing in
// appended data with a deceptively tight tiny sample still forces
// expansion instead of being reported converged.
func (q *GroupedQuery) worstCV() float64 {
	if len(q.st.Maints) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, mt := range q.st.Maints {
		if mt.N() < core.MinGroupSample {
			return math.Inf(1)
		}
		cv, err := mt.CV()
		if err != nil {
			return math.Inf(1)
		}
		if cv > worst {
			worst = cv
		}
	}
	return worst
}
