package live

import (
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/plan"
)

// GroupedQuery is a maintained per-key EARL query: every group's
// delta-maintained resample set stays alive after the first answer, and
// Refresh folds in only appended data — including groups that appear
// for the first time in the appended region, which are opened with the
// same key-derived seed the initial run would have used. It is the
// grouped face of the shared refresh core in watchBase: the same draw
// and expansion machinery as Query, with a sink that routes records by
// key into per-group resample sets.
type GroupedQuery struct {
	watchBase
	job    jobs.Numeric
	route  core.Route
	b      int
	maints map[string]*delta.Maintainer

	last      core.GroupedReport
	baseIters int // growth generations of the initial run

	// Refresh-fold scratch (guarded by mu): the per-key value buffers and
	// the sorted-key slice are reused across folds so a long-lived
	// grouped watch does not re-allocate its routing state every refresh.
	groupScratch map[string][]float64
	keyScratch   []string
}

// WatchGrouped runs the grouped early workflow once and returns a
// maintained handle over its per-group state.
func WatchGrouped(env *core.Env, job jobs.Numeric, route core.Route, path string, opts core.Options) (*GroupedQuery, error) {
	return watchGrouped(env, job, route, path, opts, nil)
}

// watchGrouped is the shared grouped watch constructor; a non-nil prog
// is a compiled query plan whose γ labels the groups (route may be zero
// then — records decode under the plan's input format). prog nil is the
// legacy path, bit-identical to the historical WatchGrouped.
func watchGrouped(env *core.Env, job jobs.Numeric, route core.Route, path string, opts core.Options, prog *plan.Program) (*GroupedQuery, error) {
	var rep core.GroupedReport
	var st *core.GroupedLiveState
	var err error
	format := route.Format
	if prog != nil {
		rep, st, err = core.RunPlanGroupedLive(env, job, path, opts, prog)
		format = prog.InputFormat()
	} else {
		rep, st, err = core.RunGroupedLive(env, job, route, path, opts)
	}
	if err != nil {
		return nil, err
	}
	return &GroupedQuery{
		watchBase: watchBase{
			env:      env,
			path:     path,
			opts:     st.Opts,
			format:   format,
			prog:     prog,
			sources:  st.Sources,
			dry:      make([]bool, len(st.Sources)),
			estTotal: st.EstTotal,
			synced:   st.SyncedBytes,
		},
		job:       job,
		route:     route,
		b:         st.B,
		maints:    st.Maints,
		last:      rep,
		baseIters: rep.Iterations,
	}, nil
}

// Report returns the most recent grouped result without doing any work.
func (q *GroupedQuery) Report() core.GroupedReport {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.last
}

// Refreshes returns how many Refresh calls have been applied.
func (q *GroupedQuery) Refreshes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.refreshGen
}

// SampleSize returns the records currently held across every group's
// maintained sample.
func (q *GroupedQuery) SampleSize() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int((*groupFold)(q).size())
}

// Close releases the handle; Refresh returns ErrClosed afterwards.
func (q *GroupedQuery) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closeBase()
}

// Refresh brings every group up to date with the watched file,
// processing only data appended since the last sync, then re-expands
// (over the whole file, without replacement) while the worst group's
// error violates σ.
func (q *GroupedQuery) Refresh() (core.GroupedReport, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	size, appended, err := q.beginRefresh()
	if err != nil {
		return core.GroupedReport{}, err
	}
	if !appended {
		return q.last, nil
	}
	if err := q.refreshSampled(size, (*groupFold)(q)); err != nil {
		return core.GroupedReport{}, err
	}
	rep, err := core.GroupedReportFrom(q.job, q.opts, q.maints)
	if err != nil {
		return core.GroupedReport{}, err
	}
	rep.Iterations = q.baseIters + q.refreshGen
	q.last = rep
	return rep, nil
}
