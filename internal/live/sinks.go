package live

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/colscan"
	"repro/internal/core"
)

// The two maintSink implementations behind the shared refresh core:
// statFold (Query — every record feeds every statistic's resample set)
// and groupFold (GroupedQuery — records route by key into per-group
// resample sets), mirroring internal/core's statSink/groupSink.

// statFold is Query's maintSink: every drawn record feeds every
// statistic's resample set, in canonical (sorted) order, mirroring the
// in-run statSink.
type statFold Query

// fold parses one delta batch into pooled scratch and batch-grows every
// statistic's resample set.
//
//earl:hotpath
func (s *statFold) fold(lines []string) error {
	q := (*Query)(s)
	// Parse into the query's reusable scratch (mu is held): refreshes on
	// a long-lived watch fold many small deltas, and the maintainers
	// batch-apply the slice without retaining it.
	vals := q.scratch.Take(len(lines))
	for _, line := range lines {
		v, err := q.jobs[0].Parse(line)
		if err != nil {
			return fmt.Errorf("live: parse: %w", err)
		}
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	for _, st := range q.stats {
		if err := st.Maint.Grow(vals); err != nil {
			return err
		}
	}
	q.generations++
	return nil
}

// foldCols is fold for an already-decoded delta batch — the vectorized
// scan path skips the per-record parse entirely.
//
//earl:hotpath
func (s *statFold) foldCols(cols *colscan.Cols) error {
	q := (*Query)(s)
	vals := q.scratch.Take(cols.Len())
	vals = append(vals, cols.Vals...)
	sort.Float64s(vals)
	for _, st := range q.stats {
		if err := st.Maint.Grow(vals); err != nil {
			return err
		}
	}
	q.generations++
	return nil
}

func (s *statFold) size() int64 { return int64(s.stats[0].Maint.N()) }

func (s *statFold) errEstimate() float64 {
	q := (*Query)(s)
	worst := 0.0
	for _, st := range q.stats {
		cv := measureOf(q.opts, st.Maint)
		if cv > worst {
			worst = cv
		}
	}
	return worst
}

// measureOf applies the configured error measure to one resample set's
// result distribution (+Inf on degenerate distributions, like the
// in-run sink).
func measureOf(opts core.Options, maint core.Resampler) float64 {
	vals, err := maint.Results()
	if err != nil {
		return math.Inf(1)
	}
	cv, err := opts.Measure(vals)
	if err != nil {
		return math.Inf(1)
	}
	return cv
}

// groupFold is GroupedQuery's maintSink: drawn records are routed by
// key and folded into per-group resample sets in canonical order
// (sorted keys, sorted deltas — see the in-run engine's determinism
// contract), with brand-new keys opened under their key-derived seeds.
type groupFold GroupedQuery

func (g *groupFold) fold(lines []string) error {
	q := (*GroupedQuery)(g)
	// Route into the query's reusable scratch (mu is held): buffers of
	// keys seen in earlier folds are emptied and refilled, mirroring the
	// scalar path's scratch reuse.
	groups := q.takeGroupScratch()
	for _, line := range lines {
		key, v, perr := q.route.Parse(line)
		if perr != nil {
			return fmt.Errorf("live: parse: %w", perr)
		}
		groups[key] = append(groups[key], v)
	}
	return g.growGroups(groups)
}

// foldCols is fold for an already-decoded delta batch: the keys arrive
// interned from the columnar decoder, so routing is map inserts only.
//
//earl:hotpath
func (g *groupFold) foldCols(cols *colscan.Cols) error {
	q := (*GroupedQuery)(g)
	groups := q.takeGroupScratch()
	for i, key := range cols.Keys {
		groups[key] = append(groups[key], cols.Vals[i])
	}
	return g.growGroups(groups)
}

// takeGroupScratch returns the reusable per-key routing buffers, emptied.
func (q *GroupedQuery) takeGroupScratch() map[string][]float64 {
	if q.groupScratch == nil {
		q.groupScratch = map[string][]float64{}
	}
	groups := q.groupScratch
	for key, vals := range groups {
		groups[key] = vals[:0]
	}
	return groups
}

// growGroups folds the routed delta into per-group resample sets in
// canonical order (sorted keys, sorted deltas).
func (g *groupFold) growGroups(groups map[string][]float64) error {
	q := (*GroupedQuery)(g)
	keys := q.keyScratch[:0]
	for key, vals := range groups {
		if len(vals) > 0 {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	q.keyScratch = keys
	for _, key := range keys {
		mt, ok := q.maints[key]
		if !ok {
			var err error
			mt, err = core.NewGroupMaintainer(q.env, q.job, key, q.b, q.opts)
			if err != nil {
				return err
			}
			q.maints[key] = mt
		}
		vals := groups[key]
		sort.Float64s(vals)
		if err := mt.Grow(vals); err != nil {
			return err
		}
	}
	return nil
}

func (g *groupFold) size() int64 {
	var n int64
	for _, mt := range g.maints {
		n += int64(mt.N())
	}
	return n
}

// errEstimate returns the largest error across groups, +Inf with no
// groups or while any group's sample is below core.MinGroupSample — the
// same floor the in-run sink applies, so a brand-new key appearing in
// appended data with a deceptively tight tiny sample still forces
// expansion instead of being reported converged.
func (g *groupFold) errEstimate() float64 {
	if len(g.maints) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, mt := range g.maints {
		if mt.N() < core.MinGroupSample {
			return math.Inf(1)
		}
		cv, err := mt.CV()
		if err != nil {
			return math.Inf(1)
		}
		if cv > worst {
			worst = cv
		}
	}
	return worst
}
