package live_test

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/live"
	"repro/internal/stats"
	"repro/internal/workload"
)

func newEnv(t testing.TB, seed uint64) *core.Env {
	t.Helper()
	env, err := core.NewEnv(core.EnvConfig{
		DataNodes:    5,
		SlotsPerNode: 4,
		BlockSize:    1 << 14,
		Replication:  2,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func genValues(t testing.TB, n int, seed uint64) []float64 {
	t.Helper()
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: n, Seed: seed}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return xs
}

// TestWatchAppendRefreshCheaperThanRerun is the tentpole acceptance
// criterion: a Watch + Append + Refresh cycle reads only o(N) new
// records — far fewer than a from-scratch run over the concatenated
// data — while landing within the σ bound of that from-scratch answer.
func TestWatchAppendRefreshCheaperThanRerun(t *testing.T) {
	const sigma = 0.05
	env := newEnv(t, 1)
	base := genValues(t, 150_000, 2)
	delta := genValues(t, 50_000, 3)
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(base)); err != nil {
		t.Fatal(err)
	}
	q, err := live.Watch(env, jobs.Mean(), "/data", core.Options{Sigma: sigma, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	first := q.Report()
	if first.UsedFull {
		t.Fatalf("watch fell back to exact: %+v", first)
	}

	if err := env.FS.Append("/data", workload.EncodeLinesFixed(delta)); err != nil {
		t.Fatal(err)
	}
	before := env.Metrics.Snapshot()
	rep, err := q.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	cost := env.Metrics.Snapshot().Sub(before)
	if cost.Refreshes != 1 {
		t.Fatalf("Refreshes counter = %d", cost.Refreshes)
	}

	// From-scratch run over the concatenated data, on a fresh cluster.
	scratchEnv := newEnv(t, 1)
	all := append(append([]float64(nil), base...), delta...)
	if err := scratchEnv.FS.WriteFile("/data", workload.EncodeLinesFixed(all)); err != nil {
		t.Fatal(err)
	}
	scratchBefore := scratchEnv.Metrics.Snapshot()
	scratch, err := core.Run(scratchEnv, jobs.Mean(), "/data", core.Options{Sigma: sigma, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	scratchCost := scratchEnv.Metrics.Snapshot().Sub(scratchBefore)

	// o(N): the refresh touches a fraction of what even the (sampled!)
	// from-scratch run reads, and a sliver of the appended region.
	if cost.RecordsRead*4 > scratchCost.RecordsRead {
		t.Fatalf("refresh read %d records vs %d for a from-scratch run — not o(N)",
			cost.RecordsRead, scratchCost.RecordsRead)
	}
	if cost.RecordsRead > int64(len(delta))/10 {
		t.Fatalf("refresh read %d records of a %d-record delta", cost.RecordsRead, len(delta))
	}
	if cost.BytesRead > scratchCost.BytesRead {
		t.Fatalf("refresh bytes %d exceed from-scratch bytes %d", cost.BytesRead, scratchCost.BytesRead)
	}

	// Accuracy: both answers carry cv ≤ σ, so they must agree within the
	// bound (and with the exact truth).
	truth, _ := stats.Mean(all)
	if rel := math.Abs(rep.Estimate-scratch.Estimate) / scratch.Estimate; rel > 2*sigma {
		t.Fatalf("refresh %v vs from-scratch %v (rel %v)", rep.Estimate, scratch.Estimate, rel)
	}
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 2*sigma {
		t.Fatalf("refresh %v vs truth %v (rel %v)", rep.Estimate, truth, rel)
	}
	if rep.EstTotalN < int64(0.8*float64(len(all))) || rep.EstTotalN > int64(1.2*float64(len(all))) {
		t.Fatalf("EstTotalN %d far from true N %d", rep.EstTotalN, len(all))
	}
}

// TestRefreshDeterministicAcrossParallelism is the tentpole
// reproducibility criterion: the whole Watch → Append → Refresh cycle is
// bit-identical for a fixed seed at any Parallelism.
func TestRefreshDeterministicAcrossParallelism(t *testing.T) {
	base := genValues(t, 60_000, 7)
	delta := genValues(t, 20_000, 8)
	var reports []core.Report
	for _, par := range []int{1, 4, 0} {
		env := newEnv(t, 5)
		if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(base)); err != nil {
			t.Fatal(err)
		}
		q, err := live.Watch(env, jobs.Mean(), "/data", core.Options{
			Sigma: 0.05, Seed: 6, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := env.FS.Append("/data", workload.EncodeLinesFixed(delta)); err != nil {
			t.Fatal(err)
		}
		rep, err := q.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		q.Close()
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("refresh reports differ across parallelism:\n  p=1: %+v\n  other: %+v",
				reports[0], reports[i])
		}
	}
}

// TestRefreshNoAppendIsNoop: refreshing an unchanged file returns the
// same report and reads nothing.
func TestRefreshNoAppendIsNoop(t *testing.T) {
	env := newEnv(t, 11)
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(genValues(t, 80_000, 12))); err != nil {
		t.Fatal(err)
	}
	q, err := live.Watch(env, jobs.Mean(), "/data", core.Options{Sigma: 0.05, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	first := q.Report()
	before := env.Metrics.Snapshot()
	rep, err := q.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	cost := env.Metrics.Snapshot().Sub(before)
	if cost.RecordsRead != 0 || cost.BytesRead != 0 {
		t.Fatalf("no-op refresh still read data: %+v", cost)
	}
	if rep.Estimate != first.Estimate || rep.SampleSize != first.SampleSize {
		t.Fatalf("no-op refresh changed the answer: %+v vs %+v", rep, first)
	}
}

// TestRefreshReExpandsOnSigmaViolation: appending data from a much wider
// distribution raises the error estimate; the refresh must notice and
// expand the sample rather than report a stale σ claim.
func TestRefreshReExpandsOnSigmaViolation(t *testing.T) {
	env := newEnv(t, 21)
	base := genValues(t, 100_000, 22)
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(base)); err != nil {
		t.Fatal(err)
	}
	q, err := live.Watch(env, jobs.Mean(), "/data", core.Options{Sigma: 0.05, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	n0 := q.SampleSize()

	wide, err := workload.NumericSpec{Dist: workload.Pareto, N: 100_000, Seed: 24}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wide {
		wide[i] *= 1000 // heavy tail, three orders of magnitude out
	}
	if err := env.FS.Append("/data", workload.EncodeLinesFixed(wide)); err != nil {
		t.Fatal(err)
	}
	rep, err := q.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if q.SampleSize() <= n0 {
		t.Fatalf("sample did not grow under a distribution shift: %d -> %d", n0, q.SampleSize())
	}
	truth, _ := stats.Mean(append(append([]float64(nil), base...), wide...))
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.5 {
		t.Fatalf("estimate %v lost the shifted truth %v entirely", rep.Estimate, truth)
	}
}

// TestWatchExactFallbackMaintained: a tiny file takes the exact path;
// refreshes keep the answer exact by folding in only appended records.
func TestWatchExactFallbackMaintained(t *testing.T) {
	env := newEnv(t, 31)
	base := genValues(t, 300, 32)
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(base)); err != nil {
		t.Fatal(err)
	}
	q, err := live.Watch(env, jobs.Mean(), "/data", core.Options{Sigma: 0.05, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if !q.Report().UsedFull {
		t.Fatalf("tiny data should use the exact path: %+v", q.Report())
	}
	delta := genValues(t, 200, 34)
	if err := env.FS.Append("/data", workload.EncodeLinesFixed(delta)); err != nil {
		t.Fatal(err)
	}
	before := env.Metrics.Snapshot()
	rep, err := q.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	cost := env.Metrics.Snapshot().Sub(before)
	all := append(append([]float64(nil), base...), delta...)
	truth, _ := stats.Mean(all)
	if math.Abs(rep.Estimate-truth) > 1e-6*math.Abs(truth) {
		t.Fatalf("exact maintained estimate %v != truth %v", rep.Estimate, truth)
	}
	if rep.SampleSize != len(all) {
		t.Fatalf("exact maintained over %d records, want %d", rep.SampleSize, len(all))
	}
	// Only the appended records were read.
	if cost.RecordsRead != int64(len(delta)) {
		t.Fatalf("exact refresh read %d records, want %d", cost.RecordsRead, len(delta))
	}
}

// TestRefreshPostMapSampler: the maintained query works with the
// Algorithm 1 sampler too; a refresh scans only the appended region.
func TestRefreshPostMapSampler(t *testing.T) {
	env := newEnv(t, 41)
	base := genValues(t, 60_000, 42)
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(base)); err != nil {
		t.Fatal(err)
	}
	q, err := live.Watch(env, jobs.Mean(), "/data", core.Options{
		Sigma: 0.05, Seed: 43, Sampler: core.PostMapSampling,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	delta := genValues(t, 20_000, 44)
	if err := env.FS.Append("/data", workload.EncodeLinesFixed(delta)); err != nil {
		t.Fatal(err)
	}
	before := env.Metrics.Snapshot()
	rep, err := q.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	cost := env.Metrics.Snapshot().Sub(before)
	// Post-map pools every record it covers — but only of the delta.
	if cost.RecordsRead < int64(len(delta)) || cost.RecordsRead > int64(len(delta))+int64(len(delta))/4 {
		t.Fatalf("post-map refresh read %d records, want ≈%d (the delta only)", cost.RecordsRead, len(delta))
	}
	all := append(append([]float64(nil), base...), delta...)
	truth, _ := stats.Mean(all)
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.1 {
		t.Fatalf("post-map refresh %v vs truth %v", rep.Estimate, truth)
	}
}

// TestRefreshAfterRewriteAndClose: a rewrite of the watched path makes
// the next Refresh rebuild from scratch — the report is bit-identical
// to a fresh watch opened over the rewritten contents — and a closed
// query refuses further refreshes.
func TestRefreshAfterRewriteAndClose(t *testing.T) {
	opts := core.Options{Sigma: 0.05, Seed: 53}
	env := newEnv(t, 51)
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(genValues(t, 50_000, 52))); err != nil {
		t.Fatal(err)
	}
	q, err := live.Watch(env, jobs.Mean(), "/data", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the file behind the handle's back.
	rewritten := workload.EncodeLinesFixed(genValues(t, 30_000, 54))
	if err := env.FS.WriteFile("/data", rewritten); err != nil {
		t.Fatal(err)
	}
	rep, err := q.Refresh()
	if err != nil {
		t.Fatalf("refresh after rewrite: %v", err)
	}
	// A fresh watch over the same (rewritten) file with the same options
	// must report exactly the same answer.
	env2 := newEnv(t, 51)
	if err := env2.FS.WriteFile("/data", rewritten); err != nil {
		t.Fatal(err)
	}
	q2, err := live.Watch(env2, jobs.Mean(), "/data", opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh := q2.Report()
	if rep.Estimate != fresh.Estimate || rep.CILo != fresh.CILo || rep.CIHi != fresh.CIHi ||
		rep.SampleSize != fresh.SampleSize || rep.CV != fresh.CV {
		t.Fatalf("rebuilt report differs from a fresh watch:\n got %+v\nwant %+v", rep, fresh)
	}
	q2.Close()
	q.Close()
	if _, err := q.Refresh(); !errors.Is(err, live.ErrClosed) {
		t.Fatalf("closed query should refuse: %v", err)
	}
}

// TestWatchGroupedRefresh: per-key maintained queries, including a key
// that only exists in the appended data.
func TestWatchGroupedRefresh(t *testing.T) {
	env := newEnv(t, 61)
	enc := func(keys []string, per int, seed uint64, shift float64) []byte {
		var buf []byte
		xs := genValues(t, per*len(keys), seed)
		i := 0
		for _, k := range keys {
			for j := 0; j < per; j++ {
				buf = append(buf, []byte(fmt.Sprintf("%s\t%012.6f\n", k, xs[i]+shift))...)
				i++
			}
		}
		return buf
	}
	if err := env.FS.WriteFile("/kv", enc([]string{"a", "b"}, 30_000, 62, 0)); err != nil {
		t.Fatal(err)
	}
	q, err := live.WatchGrouped(env, jobs.Mean(), core.TabRoute(), "/kv", core.Options{Sigma: 0.08, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	first := q.Report()
	if len(first.Groups) != 2 {
		t.Fatalf("initial groups: %v", first.Groups)
	}
	// Append more of "b" plus a brand-new key "c".
	if err := env.FS.Append("/kv", enc([]string{"b", "c"}, 30_000, 64, 200)); err != nil {
		t.Fatal(err)
	}
	before := env.Metrics.Snapshot()
	rep, err := q.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	cost := env.Metrics.Snapshot().Sub(before)
	if len(rep.Groups) != 3 {
		t.Fatalf("appended key missing: %v", rep.Groups)
	}
	if rep.Groups["c"].SampleSize == 0 {
		t.Fatalf("new group never sampled: %+v", rep.Groups["c"])
	}
	// "c" values are uniform(0,100)+200 → mean ≈ 250.
	if got := rep.Groups["c"].Estimate; got < 200 || got > 300 {
		t.Fatalf("new group estimate %v implausible", got)
	}
	// Refresh cost stays delta-proportional.
	if cost.RecordsRead > 60_000/4 {
		t.Fatalf("grouped refresh read %d records of a 60000-record delta", cost.RecordsRead)
	}
}

// TestWatchGroupedConcurrentAppendRace hammers one grouped maintained
// query with concurrent Appends, Refreshes and Report/SampleSize reads
// (run under -race in CI): the handle's serialisation plus the DFS's
// ordering must keep every refresh consistent, and the final refresh
// must cover everything appended.
func TestWatchGroupedConcurrentAppendRace(t *testing.T) {
	env := newEnv(t, 71)
	enc := func(keys []string, per int, seed uint64, shift float64) []byte {
		var buf []byte
		xs := genValues(t, per*len(keys), seed)
		i := 0
		for _, k := range keys {
			for j := 0; j < per; j++ {
				buf = append(buf, []byte(fmt.Sprintf("%s\t%012.6f\n", k, xs[i]+shift))...)
				i++
			}
		}
		return buf
	}
	if err := env.FS.WriteFile("/kv", enc([]string{"a", "b"}, 20_000, 72, 0)); err != nil {
		t.Fatal(err)
	}
	q, err := live.WatchGrouped(env, jobs.Mean(), core.TabRoute(), "/kv", core.Options{Sigma: 0.1, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	const appends = 6
	var wg sync.WaitGroup
	errs := make(chan error, appends+8)
	// Appender: grows existing keys and introduces new ones mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			keys := []string{"b"}
			if i%2 == 1 {
				keys = []string{"c", "d"}
			}
			if err := env.FS.Append("/kv", enc(keys, 4_000, 74+uint64(i), float64(50*i))); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Concurrent refreshers and readers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := q.Refresh(); err != nil {
					errs <- err
					return
				}
				_ = q.Report()
				_ = q.SampleSize()
				_ = q.Refreshes()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// One final refresh observes every appended byte.
	rep, err := q.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 4 {
		t.Fatalf("groups after concurrent appends = %v", rep.SortedGroupKeys())
	}
	for _, k := range []string{"c", "d"} {
		if rep.Groups[k].SampleSize == 0 {
			t.Fatalf("mid-flight key %q never sampled: %+v", k, rep.Groups[k])
		}
	}
}

// TestWatchMultiRefreshSharedSample: a multi-statistic watch refreshes
// every statistic from one delta scan — the refresh cost does not scale
// with the number of statistics, and the per-statistic answers track
// their exact counterparts.
func TestWatchMultiRefreshSharedSample(t *testing.T) {
	env := newEnv(t, 81)
	base := genValues(t, 100_000, 82)
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(base)); err != nil {
		t.Fatal(err)
	}
	p95, err := jobs.Quantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	jset := []jobs.Numeric{jobs.Mean(), p95, jobs.Count()}
	q, err := live.WatchMulti(env, jset, "/data", core.Options{Sigma: 0.05, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if got := len(q.Reports()); got != 3 {
		t.Fatalf("initial reports = %d", got)
	}

	delta := genValues(t, 30_000, 84)
	if err := env.FS.Append("/data", workload.EncodeLinesFixed(delta)); err != nil {
		t.Fatal(err)
	}
	before := env.Metrics.Snapshot()
	reps, err := q.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	cost := env.Metrics.Snapshot().Sub(before)
	if cost.Refreshes != 1 {
		t.Fatalf("multi-stat refresh counted %d refreshes", cost.Refreshes)
	}
	// o(N), shared: one delta scan for all three statistics.
	if cost.RecordsRead > int64(len(delta))/4 {
		t.Fatalf("multi-stat refresh read %d records of a %d-record delta", cost.RecordsRead, len(delta))
	}
	all := append(append([]float64(nil), base...), delta...)
	truthMean, _ := stats.Mean(all)
	truthP95, _ := stats.Quantile(all, 0.95)
	if rel := math.Abs(reps[0].Estimate-truthMean) / truthMean; rel > 0.1 {
		t.Fatalf("mean %v vs truth %v", reps[0].Estimate, truthMean)
	}
	if rel := math.Abs(reps[1].Estimate-truthP95) / truthP95; rel > 0.1 {
		t.Fatalf("p95 %v vs truth %v", reps[1].Estimate, truthP95)
	}
	if rel := math.Abs(reps[2].Estimate-float64(len(all))) / float64(len(all)); rel > 0.2 {
		t.Fatalf("count %v vs truth %d", reps[2].Estimate, len(all))
	}
	for _, rep := range reps {
		if rep.SampleSize != reps[0].SampleSize {
			t.Fatalf("statistics diverged in maintained sample size")
		}
	}
}
