package live_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/live"
	"repro/internal/workload"
)

// TestRefreshRejectsNaNRecord pins the maintained side of the bugfix: a
// NaN record arriving in APPENDED data fails Refresh with a clean
// errors.Is-able ErrBadRecord instead of corrupting the maintained
// resample sets. ForceN pins the sample near the full file so the
// refresh delta draw is guaranteed to meet the poisoned batch.
func TestRefreshRejectsNaNRecord(t *testing.T) {
	env := newEnv(t, 51)
	base := genValues(t, 4000, 52)
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(base)); err != nil {
		t.Fatal(err)
	}
	q, err := live.Watch(env, jobs.Mean(), "/data", core.Options{
		Seed: 53, ForceB: 8, ForceN: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	// Every appended record is poisoned: any delta draw meets one.
	poison := []byte("NaN\nNaN\nNaN\nNaN\nNaN\nNaN\nNaN\nNaN\n")
	if err := env.FS.Append("/data", poison); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Refresh(); !errors.Is(err, core.ErrBadRecord) {
		t.Fatalf("refresh over NaN append: %v", err)
	}
}

// TestGroupedRefreshRejectsNaNRecord is the keyed counterpart.
func TestGroupedRefreshRejectsNaNRecord(t *testing.T) {
	env := newEnv(t, 61)
	var data []byte
	for i := 0; i < 4000; i++ {
		key := "a"
		if i%2 == 1 {
			key = "b"
		}
		data = append(data, key...)
		data = append(data, '\t')
		data = append(data, workload.EncodeLinesFixed([]float64{float64(i%89) + 0.25})...)
	}
	if err := env.FS.WriteFile("/kv", data); err != nil {
		t.Fatal(err)
	}
	q, err := live.WatchGrouped(env, jobs.Mean(), core.TabRoute(), "/kv", core.Options{
		Seed: 62, ForceB: 8, ForceN: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if err := env.FS.Append("/kv", []byte("a\tNaN\na\tNaN\na\tNaN\na\tNaN\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Refresh(); !errors.Is(err, core.ErrBadRecord) {
		t.Fatalf("grouped refresh over NaN append: %v", err)
	}
}
