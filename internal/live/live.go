// Package live implements maintained queries over continuously ingested
// data — EARL's delta-maintenance trick (§4.1) lifted from within one
// run to across the lifetime of a dataset.
//
// There is ONE maintained-query implementation here, mirroring the
// generic execution engine in internal/core: a shared refresh core
// (watchBase) owns the retained per-mapper without-replacement samplers,
// the ingest high-water mark, and the draw/expansion machinery, and is
// parameterized over a small maintSink abstraction that says how drawn
// records fold into maintained state and what the current error is.
// Query folds every record into one resample set per statistic (the
// scalar case is the one-statistic degenerate form; a multi-statistic
// watch shares the one sample across all of them); GroupedQuery routes
// records by key into one resample set per group — grouped is just many
// sinks' worth of state behind the same refresh loop.
//
// A Query is created by Watch (or WatchMulti): it runs the normal
// early-accurate workflow once, then keeps the run's working state
// alive — the SSABE plans, the delta-maintained bootstrap resample sets
// (with every per-resample sketch state), and the per-mapper samplers.
// When data is appended to the watched file (dfs.Append cuts new blocks
// without disturbing existing splits), Refresh:
//
//  1. samples only the appended splits at the query's current sampling
//     fraction p, so the combined sample stays (approximately) uniform
//     over the concatenated data;
//  2. feeds that delta through the retained resample sets — sharded
//     across Options.Parallelism workers under the engine-wide
//     fixed-seed determinism contract;
//  3. re-estimates the error, and re-expands the sample (drawing from
//     old and new regions alike, still without replacement) only if the
//     σ bound is violated.
//
// A refresh therefore reads o(N) records — proportional to the appended
// delta plus any expansion — never the whole file; the cost is visible
// in simcost counters (Refreshes, RecordsRead, BytesRead) so experiments
// can compare maintained refreshes against from-scratch re-runs.
//
// Queries whose initial run fell back to the exact path (tiny data, or
// SSABE's B×n ≥ N) are maintained exactly instead: the user jobs'
// incremental reduce states are grown with every appended record
// (mr.InitializeOrUpdate), which is still delta-proportional work.
package live

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/colscan"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/sampling"
)

// ErrClosed is returned by Refresh after Close.
var ErrClosed = errors.New("live: query is closed")

// ErrTruncated is returned when the watched file shrank — maintained
// state can only move forward over appends.
var ErrTruncated = errors.New("live: watched file shrank (appends only)")

// refreshSalt spaces the seed ranges of sampler streams created for
// successive ingest generations, so a refresh's new samplers never share
// a stream with the initial run's or an earlier refresh's.
const refreshSalt = 0x51_7cc1b7_2722_0a95

// maintSink is how a maintained query's state consumes freshly drawn
// records: Query folds them into every statistic's resample set,
// GroupedQuery routes them by key into per-group sets. The shared
// refresh loop in watchBase is written against this interface alone.
type maintSink interface {
	// fold parses the drawn lines and grows the maintained state in
	// canonical order (the determinism contract of the in-run engine).
	fold(lines []string) error
	// foldCols is fold for records drawn already decoded (the vectorized
	// scan path); the grown state is identical to fold's on the same
	// record sequence.
	foldCols(cols *colscan.Cols) error
	// size returns the records currently held in the maintained sample.
	size() int64
	// errEstimate returns the current worst error; +Inf when it cannot
	// be trusted (no data, degenerate distribution, undersampled group).
	errEstimate() float64
}

// watchBase is the shared core of every maintained query: the retained
// sampler streams, the ingest high-water mark, and the refresh loop.
// The embedding query type provides the lock discipline (all watchBase
// methods assume mu is held).
type watchBase struct {
	mu   sync.Mutex
	env  *core.Env
	path string
	opts core.Options
	// origOpts are the options the watch was opened with, before any
	// defaulting — a rewrite-triggered rebuild re-runs the creation with
	// exactly these, so the rebuilt watch is bit-identical to a fresh
	// watch opened over the rewritten file.
	origOpts core.Options
	// format is the columnar decode format of the watched records;
	// FormatNone keeps every refresh on the per-record path.
	format colscan.Format
	// prog is the compiled query plan pushed into every refresh's new
	// sampler streams; nil for legacy (plan-free) watches.
	prog *plan.Program

	sources  []core.RecordSource
	dry      []bool // aligned with sources
	estTotal int64
	synced   int64 // file bytes covered (ingest high-water mark)
	version  int64 // watched file's write generation at the last sync

	refreshGen int
	closed     bool
}

// beginRefresh classifies the watched file against the sync point, all
// through one pinned view so the verdict and the refresh that follows
// describe the same commit:
//
//   - rewritten=true: the file's write generation changed (WriteFile
//     replaced it under the watch) — the retained sample and sync point
//     describe bytes that no longer exist, so the caller must rebuild
//     from scratch against the same view;
//   - appended=false: nothing to do (the no-op contract: an unconverged
//     answer is only re-expanded when new data arrives; refreshing in
//     place must not silently re-read the file);
//   - otherwise data was appended: the refresh is counted and the
//     refresh generation advances.
func (b *watchBase) beginRefresh(v dfs.View) (size int64, appended, rewritten bool, err error) {
	if b.closed {
		return 0, false, false, ErrClosed
	}
	ver, err := v.Version(b.path)
	if err != nil {
		return 0, false, false, err
	}
	if ver != b.version {
		b.refreshGen++
		return 0, false, true, nil
	}
	size, err = v.Stat(b.path)
	if err != nil {
		return 0, false, false, err
	}
	if size < b.synced {
		// Unreachable while versions are per-WriteFile (a same-version
		// file only grows), kept as a tripwire.
		return 0, false, false, fmt.Errorf("%w: %s", ErrTruncated, b.path)
	}
	if size == b.synced {
		return size, false, false, nil
	}
	b.env.Metrics.Refreshes.Add(1)
	b.refreshGen++
	return size, true, false, nil
}

// refreshSampled is the maintained-sample refresh described in the
// package comment: extend coverage over the appended region at the
// current sampling fraction, then re-expand (over the whole file,
// without replacement, the in-run doubling schedule) while the sink's
// error violates σ. penv's data view is the refresh's pinned snapshot:
// every source — retained and new alike — is repinned onto it for the
// duration, so the whole refresh reads one commit point even while
// ingest lands concurrently, and repinned back onto the live filesystem
// before the caller releases the snapshot.
func (b *watchBase) refreshSampled(penv *core.Env, size int64, sk maintSink) error {
	b.sources, b.dry = compactSources(b.sources, b.dry)
	core.RepinSources(b.sources, penv.View())
	defer func() { core.RepinSources(b.sources, b.env.FS) }()
	if size > b.synced {
		newSources, estNew, err := buildRefreshSources(
			penv, b.path, b.opts, b.format, b.prog, b.synced, size, b.estTotal, b.refreshGen)
		if err != nil {
			return err
		}
		// Sample the appended region at the query's current fraction so
		// the maintained sample stays uniform over old ∪ new.
		p := float64(sk.size()) / float64(b.estTotal)
		if p > 1 {
			p = 1
		}
		nDelta := int64(p*float64(estNew) + 0.5)
		if nDelta > estNew {
			nDelta = estNew
		}
		from := len(b.sources)
		b.sources = append(b.sources, newSources...)
		b.dry = append(b.dry, make([]bool, len(newSources))...)
		b.estTotal += estNew
		b.synced = size
		if nDelta > 0 {
			if _, err := b.drawAndFold(from, len(b.sources), int(nDelta), sk, true); err != nil {
				return err
			}
		}
	}

	// Re-estimate, and re-expand only if σ is violated — the same
	// doubling schedule as the in-run expansion loop, drawing from every
	// region of the file without replacement.
	cv := sk.errEstimate()
	maxSample := int64(b.opts.MaxSampleFraction * float64(b.estTotal))
	for cv > b.opts.Sigma && sk.size() < maxSample {
		next := sk.size() * 2
		if next > maxSample {
			next = maxSample
		}
		k := next - sk.size()
		if k <= 0 {
			break
		}
		n, err := b.drawAndFold(0, len(b.sources), int(k), sk, false)
		if err != nil {
			return err
		}
		if n == 0 {
			break // every region exhausted: finish with achieved accuracy
		}
		cv = sk.errEstimate()
	}
	return nil
}

// drawAndFold draws up to total records across sources[from:to] on the
// query's active path (decoded columns when the watch has a columnar
// format, parsed lines otherwise) and folds them into the sink,
// returning how many records were drawn. foldEmpty preserves the delta
// branch's behaviour of folding even an empty draw (the fold counts a
// generation); the expansion loop instead checks the count first so an
// exhausted file terminates it.
func (b *watchBase) drawAndFold(from, to, total int, sk maintSink, foldEmpty bool) (int, error) {
	if b.format != colscan.FormatNone {
		cols, err := b.drawColsAcross(from, to, total)
		if err != nil {
			return 0, err
		}
		if cols.Len() == 0 && !foldEmpty {
			return 0, nil
		}
		return cols.Len(), sk.foldCols(cols)
	}
	lines, err := b.drawAcross(from, to, total)
	if err != nil {
		return 0, err
	}
	if len(lines) == 0 && !foldEmpty {
		return 0, nil
	}
	return len(lines), sk.fold(lines)
}

// closeBase releases the retained samplers; the last report stays
// readable on the embedding query.
func (b *watchBase) closeBase() {
	b.closed = true
	b.sources = nil
	b.dry = nil
}

// drawAcross draws total records from sources[from:to], apportioned by
// source weight and drawn concurrently across Options.Parallelism
// workers. Each source owns a deterministic rng stream and results are
// concatenated in source order, so the returned lines are identical at
// any parallelism. Sources that run dry contribute what they have; a
// second, sequential pass redistributes any shortfall to the remaining
// live sources.
func (b *watchBase) drawAcross(from, to, total int) ([]string, error) {
	type slot struct {
		idx   int
		share int
	}
	var slots []slot
	var weightSum int64
	for i := from; i < to; i++ {
		if b.dry[i] {
			continue
		}
		w := b.sources[i].Weight()
		if w <= 0 {
			continue
		}
		slots = append(slots, slot{idx: i})
		weightSum += w
	}
	if len(slots) == 0 || weightSum == 0 {
		return nil, nil
	}
	// Largest-remainder apportionment of total across the live sources.
	assigned := 0
	for si := range slots {
		w := b.sources[slots[si].idx].Weight()
		slots[si].share = int(int64(total) * w / weightSum)
		assigned += slots[si].share
	}
	for si := 0; assigned < total; si = (si + 1) % len(slots) {
		slots[si].share++
		assigned++
	}

	out := make([][]string, len(slots))
	workers := pool.Workers(b.opts.Parallelism)
	err := pool.ForEach(len(slots), workers, func(si int) error {
		s := slots[si]
		if s.share == 0 {
			return nil
		}
		lines, dry, err := b.drawOne(s.idx, s.share)
		if err != nil {
			return err
		}
		if dry {
			b.dry[s.idx] = true // distinct index per worker: no race
		}
		out[si] = lines
		return nil
	})
	if err != nil {
		return nil, err
	}
	var flat []string
	for _, ls := range out {
		flat = append(flat, ls...)
	}
	// Redistribute any dry-source shortfall sequentially (deterministic
	// source order) so expansions still reach their target when possible.
	for si := range slots {
		if len(flat) >= total {
			break
		}
		if b.dry[slots[si].idx] {
			continue
		}
		lines, dry, err := b.drawOne(slots[si].idx, total-len(flat))
		if err != nil {
			return nil, err
		}
		if dry {
			b.dry[slots[si].idx] = true
		}
		flat = append(flat, lines...)
	}
	return flat, nil
}

// drawOne draws up to k lines from source i.
func (b *watchBase) drawOne(i, k int) (lines []string, dry bool, err error) {
	lines, err = b.sources[i].Draw(k)
	if errors.Is(err, sampling.ErrExhausted) {
		return lines, true, nil
	}
	if err != nil {
		return nil, false, err
	}
	return lines, false, nil
}

// drawColsAcross is drawAcross on the vectorized scan path: the same
// largest-remainder apportionment over the same per-source rng streams
// (DrawCols consumes a source's stream exactly as Draw does), with the
// per-slot column batches concatenated in source order — the record
// sequence is identical to drawAcross's at any parallelism.
func (b *watchBase) drawColsAcross(from, to, total int) (*colscan.Cols, error) {
	type slot struct {
		idx   int
		share int
	}
	var slots []slot
	var weightSum int64
	for i := from; i < to; i++ {
		if b.dry[i] {
			continue
		}
		w := b.sources[i].Weight()
		if w <= 0 {
			continue
		}
		slots = append(slots, slot{idx: i})
		weightSum += w
	}
	flat := &colscan.Cols{}
	if len(slots) == 0 || weightSum == 0 {
		return flat, nil
	}
	assigned := 0
	for si := range slots {
		w := b.sources[slots[si].idx].Weight()
		slots[si].share = int(int64(total) * w / weightSum)
		assigned += slots[si].share
	}
	for si := 0; assigned < total; si = (si + 1) % len(slots) {
		slots[si].share++
		assigned++
	}

	out := make([]colscan.Cols, len(slots))
	workers := pool.Workers(b.opts.Parallelism)
	err := pool.ForEach(len(slots), workers, func(si int) error {
		s := slots[si]
		if s.share == 0 {
			return nil
		}
		dry, err := b.drawOneCols(s.idx, s.share, &out[si])
		if err != nil {
			return err
		}
		if dry {
			b.dry[s.idx] = true // distinct index per worker: no race
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	got := 0
	for i := range out {
		flat.Keys = append(flat.Keys, out[i].Keys...)
		flat.Vals = append(flat.Vals, out[i].Vals...)
		got += out[i].Len()
	}
	// Redistribute any dry-source shortfall sequentially (deterministic
	// source order), exactly like drawAcross.
	for si := range slots {
		if flat.Len() >= total {
			break
		}
		if b.dry[slots[si].idx] {
			continue
		}
		dry, err := b.drawOneCols(slots[si].idx, total-flat.Len(), flat)
		if err != nil {
			return nil, err
		}
		if dry {
			b.dry[slots[si].idx] = true
		}
	}
	return flat, nil
}

// drawOneCols draws up to k decoded records from source i into out.
func (b *watchBase) drawOneCols(i, k int, out *colscan.Cols) (dry bool, err error) {
	cs, ok := b.sources[i].(core.ColSource)
	if !ok {
		return false, fmt.Errorf("live: source %d has no columnar path", i)
	}
	_, err = cs.DrawCols(k, out)
	if errors.Is(err, sampling.ErrExhausted) {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return false, nil
}

// compactSources drops permanently-dry sources so a long-lived watch
// does not accumulate one dead shard set per refresh — post-map sources
// in particular pin their undrawn records in memory until released. Dry
// sources contribute nothing to draws, so pruning never changes results.
func compactSources(sources []core.RecordSource, dry []bool) ([]core.RecordSource, []bool) {
	outS := make([]core.RecordSource, 0, len(sources))
	outD := make([]bool, 0, len(dry))
	for i, s := range sources {
		if dry[i] {
			continue
		}
		outS = append(outS, s)
		outD = append(outD, false)
	}
	return outS, outD
}

// splitsSince returns the splits wholly beyond the sync point, read
// through v (the refresh's pinned snapshot). Splits are segment-aware,
// so the boundary is exact.
func splitsSince(v dfs.View, path string, splitSize, synced int64) ([]dfs.Split, error) {
	splits, err := v.Splits(path, splitSize)
	if err != nil {
		return nil, err
	}
	var out []dfs.Split
	for _, sp := range splits {
		if sp.Offset >= synced {
			out = append(out, sp)
		}
	}
	return out, nil
}

// buildRefreshSources constructs the retained sampler streams over the
// region appended since synced (one per mapper shard, refresh-salted
// seeds) and estimates how many records they cover: exact for post-map
// (the pool counted them while scanning), mean-record-length based for
// pre-map — the same §3.3 estimator the initial run uses, with the mean
// taken from the estTotal records known to span the synced bytes.
// Shared by the single/multi-statistic and grouped maintained queries.
//
// A non-nil prog pushes the plan into the new streams, so refresh draws
// deliver post-filter transformed records and every estimate stays
// denominated in the effective subpopulation: post-map weights count
// kept records, and the pre-map mean-record-length estimator divides
// raw bytes by bytes-per-EFFECTIVE-record (estTotal is effective under
// a plan), embedding the selectivity without an extra correction.
func buildRefreshSources(env *core.Env, path string, opts core.Options, format colscan.Format, prog *plan.Program, synced, size, estTotal int64, refreshGen int) ([]core.RecordSource, int64, error) {
	splits, err := splitsSince(env.View(), path, opts.SplitSize, synced)
	if err != nil {
		return nil, 0, err
	}
	m := opts.NumMappers
	if m > len(splits) {
		m = len(splits)
	}
	if m < 1 {
		m = 1
	}
	owned := make([][]dfs.Split, m)
	for i, sp := range splits {
		owned[i%m] = append(owned[i%m], sp)
	}
	sources, err := core.NewRecordSources(env, path, owned, opts, uint64(refreshGen)*refreshSalt, format, prog)
	if err != nil {
		return nil, 0, err
	}
	var estNew int64
	if opts.Sampler == core.PostMapSampling {
		for _, s := range sources {
			estNew += s.Weight() // post-map weight is the exact record count
		}
	} else if estTotal > 0 && synced > 0 {
		avg := float64(synced) / float64(estTotal)
		estNew = int64(float64(size-synced)/avg + 0.5)
	}
	return sources, estNew, nil
}
