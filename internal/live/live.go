// Package live implements maintained queries over continuously ingested
// data — EARL's delta-maintenance trick (§4.1) lifted from within one
// run to across the lifetime of a dataset.
//
// A Query is created by Watch: it runs the normal early-accurate
// workflow once, then keeps the run's working state alive — the SSABE
// plan, the delta-maintained bootstrap resample set (with every
// per-resample sketch state), and the per-mapper without-replacement
// samplers. When data is appended to the watched file (dfs.Append cuts
// new blocks without disturbing existing splits), Refresh:
//
//  1. samples only the appended splits at the query's current sampling
//     fraction p, so the combined sample stays (approximately) uniform
//     over the concatenated data;
//  2. feeds that delta through the retained delta.Maintainer — sharded
//     across Options.Parallelism workers under the engine-wide
//     fixed-seed determinism contract;
//  3. re-estimates the error, and re-expands the sample (drawing from
//     old and new regions alike, still without replacement) only if the
//     σ bound is violated.
//
// A refresh therefore reads o(N) records — proportional to the appended
// delta plus any expansion — never the whole file; the cost is visible
// in simcost counters (Refreshes, RecordsRead, BytesRead) so experiments
// can compare maintained refreshes against from-scratch re-runs.
//
// Queries whose initial run fell back to the exact path (tiny data, or
// SSABE's B×n ≥ N) are maintained exactly instead: the user job's
// incremental reduce state is grown with every appended record
// (mr.InitializeOrUpdate), which is still delta-proportional work.
package live

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/mr"
	"repro/internal/pool"
	"repro/internal/sampling"
)

// ErrClosed is returned by Refresh after Close.
var ErrClosed = errors.New("live: query is closed")

// ErrTruncated is returned when the watched file shrank — maintained
// state can only move forward over appends.
var ErrTruncated = errors.New("live: watched file shrank (appends only)")

// refreshSalt spaces the seed ranges of sampler streams created for
// successive ingest generations, so a refresh's new samplers never share
// a stream with the initial run's or an earlier refresh's.
const refreshSalt = 0x51_7cc1b7_2722_0a95

// Query is a maintained single-statistic EARL query. All methods are
// safe for concurrent use; Refresh calls are serialised.
type Query struct {
	mu   sync.Mutex
	env  *core.Env
	job  jobs.Numeric
	path string
	st   *core.LiveState
	dry  []bool // aligned with st.Sources

	// exact-maintenance path (st.Maint == nil)
	exactState mr.State
	exactN     int64

	last       core.Report
	refreshGen int
	closed     bool
}

// Watch runs job over path once (exactly like core.Run) and returns a
// handle that keeps the answer maintainable under appended data.
func Watch(env *core.Env, job jobs.Numeric, path string, opts core.Options) (*Query, error) {
	// RunLiveDeferExact skips the exact MR job on the fall-back path:
	// the incremental scan below produces the same answer in one pass
	// and leaves a maintainable state behind.
	rep, st, err := core.RunLiveDeferExact(env, job, path, opts)
	if err != nil {
		return nil, err
	}
	q := &Query{
		env:  env,
		job:  job,
		path: path,
		st:   st,
		dry:  make([]bool, len(st.Sources)),
		last: rep,
	}
	if st.Maint == nil {
		// Exact fallback: one scan builds the incremental exact state;
		// every refresh after reads only appended splits.
		splits, err := env.FS.Splits(path, st.Opts.SplitSize)
		if err != nil {
			return nil, err
		}
		if err := q.foldExact(splits); err != nil {
			return nil, err
		}
		q.st.EstTotal = q.exactN
		q.last = q.exactReport()
	}
	return q, nil
}

// Report returns the most recent result without doing any work.
func (q *Query) Report() core.Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.last
}

// Refreshes returns how many Refresh calls have been applied.
func (q *Query) Refreshes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.refreshGen
}

// SampleSize returns the records currently held in the maintained sample
// (the exact record count on the exact-maintenance path).
func (q *Query) SampleSize() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.st.Maint == nil {
		return int(q.exactN)
	}
	return q.st.Maint.N()
}

// Close releases the handle. The final report stays readable; Refresh
// returns ErrClosed.
func (q *Query) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.st.Sources = nil
	q.exactState = nil
}

// Refresh brings the maintained answer up to date with the watched
// file, processing only data appended since the last sync (or Watch).
// With nothing appended it just returns the current report.
//
// An infrastructure error mid-refresh (e.g. appended blocks with no
// live replica) is returned as-is; the handle's coverage of the file
// may then be incomplete, so after repairing the cluster either retry
// or open a fresh Watch.
func (q *Query) Refresh() (core.Report, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return core.Report{}, ErrClosed
	}
	size, err := q.env.FS.Stat(q.path)
	if err != nil {
		return core.Report{}, err
	}
	if size < q.st.SyncedBytes {
		return core.Report{}, fmt.Errorf("%w: %s", ErrTruncated, q.path)
	}
	if size == q.st.SyncedBytes {
		// Nothing appended: honour the no-op contract. (An unconverged
		// answer is only re-expanded when new data arrives; refreshing in
		// place must not silently re-read the file.)
		return q.last, nil
	}
	q.env.Metrics.Refreshes.Add(1)
	q.refreshGen++
	if q.st.Maint == nil {
		return q.refreshExact(size)
	}
	return q.refreshSampled(size)
}

// compactSources drops permanently-dry sources so a long-lived watch
// does not accumulate one dead shard set per refresh — post-map sources
// in particular pin their undrawn records in memory until released. Dry
// sources contribute nothing to draws, so pruning never changes results.
func compactSources(sources []core.RecordSource, dry []bool) ([]core.RecordSource, []bool) {
	outS := make([]core.RecordSource, 0, len(sources))
	outD := make([]bool, 0, len(dry))
	for i, s := range sources {
		if dry[i] {
			continue
		}
		outS = append(outS, s)
		outD = append(outD, false)
	}
	return outS, outD
}

// splitsSince returns the splits wholly beyond the sync point. Splits
// are segment-aware, so the boundary is exact.
func splitsSince(env *core.Env, path string, splitSize, synced int64) ([]dfs.Split, error) {
	splits, err := env.FS.Splits(path, splitSize)
	if err != nil {
		return nil, err
	}
	var out []dfs.Split
	for _, sp := range splits {
		if sp.Offset >= synced {
			out = append(out, sp)
		}
	}
	return out, nil
}

// buildRefreshSources constructs the retained sampler streams over the
// region appended since synced (one per mapper shard, refresh-salted
// seeds) and estimates how many records they cover: exact for post-map
// (the pool counted them while scanning), mean-record-length based for
// pre-map — the same §3.3 estimator the initial run uses, with the mean
// taken from the estTotal records known to span the synced bytes.
// Shared by the single-statistic and grouped maintained queries.
func buildRefreshSources(env *core.Env, path string, opts core.Options, synced, size, estTotal int64, refreshGen int) ([]core.RecordSource, int64, error) {
	splits, err := splitsSince(env, path, opts.SplitSize, synced)
	if err != nil {
		return nil, 0, err
	}
	m := opts.NumMappers
	if m > len(splits) {
		m = len(splits)
	}
	if m < 1 {
		m = 1
	}
	owned := make([][]dfs.Split, m)
	for i, sp := range splits {
		owned[i%m] = append(owned[i%m], sp)
	}
	sources, err := core.NewRecordSources(env, path, owned, opts, uint64(refreshGen)*refreshSalt)
	if err != nil {
		return nil, 0, err
	}
	var estNew int64
	if opts.Sampler == core.PostMapSampling {
		for _, s := range sources {
			estNew += s.Weight() // post-map weight is the exact record count
		}
	} else if estTotal > 0 && synced > 0 {
		avg := float64(synced) / float64(estTotal)
		estNew = int64(float64(size-synced)/avg + 0.5)
	}
	return sources, estNew, nil
}

// refreshSampled is the maintained-sample path described in the package
// comment.
func (q *Query) refreshSampled(size int64) (core.Report, error) {
	st := q.st
	opts := st.Opts
	st.Sources, q.dry = compactSources(st.Sources, q.dry)
	if size > st.SyncedBytes {
		newSources, estNew, err := buildRefreshSources(
			q.env, q.path, opts, st.SyncedBytes, size, st.EstTotal, q.refreshGen)
		if err != nil {
			return core.Report{}, err
		}

		// Sample the appended region at the query's current fraction so
		// the maintained sample stays uniform over old ∪ new.
		p := float64(st.Maint.N()) / float64(st.EstTotal)
		if p > 1 {
			p = 1
		}
		nDelta := int64(p*float64(estNew) + 0.5)
		if nDelta > estNew {
			nDelta = estNew
		}
		from := len(st.Sources)
		st.Sources = append(st.Sources, newSources...)
		q.dry = append(q.dry, make([]bool, len(newSources))...)
		st.EstTotal += estNew
		st.SyncedBytes = size
		if nDelta > 0 {
			delta, err := q.drawAcross(from, len(st.Sources), int(nDelta))
			if err != nil {
				return core.Report{}, err
			}
			if err := q.grow(delta); err != nil {
				return core.Report{}, err
			}
		}
	}

	// Re-estimate, and re-expand only if σ is violated — the same
	// doubling schedule as the in-run expansion loop, drawing from every
	// region of the file without replacement.
	cv := q.measure()
	maxSample := int64(opts.MaxSampleFraction * float64(st.EstTotal))
	for cv > opts.Sigma && int64(st.Maint.N()) < maxSample {
		next := int64(st.Maint.N()) * 2
		if next > maxSample {
			next = maxSample
		}
		k := next - int64(st.Maint.N())
		if k <= 0 {
			break
		}
		batch, err := q.drawAcross(0, len(st.Sources), int(k))
		if err != nil {
			return core.Report{}, err
		}
		if len(batch) == 0 {
			break // every region exhausted: finish with achieved accuracy
		}
		if err := q.grow(batch); err != nil {
			return core.Report{}, err
		}
		cv = q.measure()
	}

	vals, err := st.Maint.Results()
	if err != nil {
		return core.Report{}, err
	}
	p := float64(st.Maint.N()) / float64(st.EstTotal)
	rep, err := core.FinishReport(q.job, opts, vals, cv, p)
	if err != nil {
		return core.Report{}, err
	}
	rep.B = st.Plan.B
	rep.SampleSize = st.Maint.N()
	rep.PlannedN = st.Plan.N
	rep.Iterations = st.Generations
	rep.EstTotalN = st.EstTotal
	q.last = rep
	return rep, nil
}

// grow feeds one delta batch into the maintained resample set in
// canonical (sorted) order, mirroring the in-run reducer.
func (q *Query) grow(delta []float64) error {
	sort.Float64s(delta)
	if err := q.st.Maint.Grow(delta); err != nil {
		return err
	}
	q.st.Generations++
	return nil
}

// measure applies the configured error measure to the current result
// distribution (+Inf on degenerate distributions, like the reducer).
func (q *Query) measure() float64 {
	vals, err := q.st.Maint.Results()
	if err != nil {
		return math.Inf(1)
	}
	cv, err := q.st.Opts.Measure(vals)
	if err != nil {
		return math.Inf(1)
	}
	return cv
}

// drawAcross draws total records from Sources[from:to], apportioned by
// source weight and drawn concurrently across Options.Parallelism
// workers. Each source owns a deterministic rng stream and results are
// concatenated in source order, so the returned values are identical at
// any parallelism. Sources that run dry contribute what they have; a
// second, sequential pass redistributes any shortfall to the remaining
// live sources.
func (q *Query) drawAcross(from, to, total int) ([]float64, error) {
	type slot struct {
		idx   int
		share int
	}
	var slots []slot
	var weightSum int64
	for i := from; i < to; i++ {
		if q.dry[i] {
			continue
		}
		w := q.st.Sources[i].Weight()
		if w <= 0 {
			continue
		}
		slots = append(slots, slot{idx: i})
		weightSum += w
	}
	if len(slots) == 0 || weightSum == 0 {
		return nil, nil
	}
	// Largest-remainder apportionment of total across the live sources.
	assigned := 0
	for si := range slots {
		w := q.st.Sources[slots[si].idx].Weight()
		slots[si].share = int(int64(total) * w / weightSum)
		assigned += slots[si].share
	}
	for si := 0; assigned < total; si = (si + 1) % len(slots) {
		slots[si].share++
		assigned++
	}

	out := make([][]float64, len(slots))
	workers := pool.Workers(q.st.Opts.Parallelism)
	err := pool.ForEach(len(slots), workers, func(si int) error {
		s := slots[si]
		if s.share == 0 {
			return nil
		}
		vals, dry, err := q.drawOne(s.idx, s.share)
		if err != nil {
			return err
		}
		if dry {
			q.dry[s.idx] = true // distinct index per worker: no race
		}
		out[si] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	var flat []float64
	for _, vs := range out {
		flat = append(flat, vs...)
	}
	// Redistribute any dry-source shortfall sequentially (deterministic
	// source order) so expansions still reach their target when possible.
	for si := range slots {
		if len(flat) >= total {
			break
		}
		if q.dry[slots[si].idx] {
			continue
		}
		vals, dry, err := q.drawOne(slots[si].idx, total-len(flat))
		if err != nil {
			return nil, err
		}
		if dry {
			q.dry[slots[si].idx] = true
		}
		flat = append(flat, vals...)
	}
	return flat, nil
}

// drawOne draws up to k parsed values from source i.
func (q *Query) drawOne(i, k int) (vals []float64, dry bool, err error) {
	lines, err := q.st.Sources[i].Draw(k)
	if errors.Is(err, sampling.ErrExhausted) {
		dry = true
	} else if err != nil {
		return nil, false, err
	}
	vals = make([]float64, 0, len(lines))
	for _, line := range lines {
		v, perr := q.job.Parse(line)
		if perr != nil {
			return nil, dry, fmt.Errorf("live: parse: %w", perr)
		}
		vals = append(vals, v)
	}
	return vals, dry, nil
}

// ---- Exact maintenance (tiny data / SSABE said sampling won't pay) ----

// foldExact streams every record of the given splits into the user
// job's incremental state.
func (q *Query) foldExact(splits []dfs.Split) error {
	var vals []float64
	for _, sp := range splits {
		rd, err := q.env.FS.NewLineReader(sp, 0)
		if err != nil {
			return err
		}
		for rd.Next() {
			v, perr := q.job.Parse(rd.Text())
			if perr != nil {
				return fmt.Errorf("live: parse: %w", perr)
			}
			vals = append(vals, v)
			q.env.Metrics.RecordsRead.Add(1)
		}
		if rd.Err() != nil {
			return rd.Err()
		}
	}
	st, err := mr.InitializeOrUpdate(q.job.Reducer, q.job.Name, q.exactState, vals)
	if err != nil {
		return err
	}
	q.exactState = st
	q.exactN += int64(len(vals))
	return nil
}

// refreshExact folds only the appended splits into the exact state.
func (q *Query) refreshExact(size int64) (core.Report, error) {
	if size > q.st.SyncedBytes {
		splits, err := splitsSince(q.env, q.path, q.st.Opts.SplitSize, q.st.SyncedBytes)
		if err != nil {
			return core.Report{}, err
		}
		if err := q.foldExact(splits); err != nil {
			return core.Report{}, err
		}
		q.st.SyncedBytes = size
		q.st.EstTotal = q.exactN
	}
	rep := q.exactReport()
	q.last = rep
	return rep, nil
}

// exactReport renders the maintained exact state as a Report (CV 0,
// p = 1 — there is no sampling error to estimate).
func (q *Query) exactReport() core.Report {
	var est float64
	if q.exactState != nil {
		if v, err := q.job.Reducer.Finalize(q.exactState); err == nil {
			est = v
		}
	}
	return core.Report{
		Job:         q.job.Name,
		Estimate:    est,
		Uncorrected: est,
		CILo:        est,
		CIHi:        est,
		B:           1,
		SampleSize:  int(q.exactN),
		Iterations:  1,
		UsedFull:    true,
		Converged:   true,
		FractionP:   1,
		EstTotalN:   q.exactN,
	}
}
