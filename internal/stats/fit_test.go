package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Intercept, 3, 1e-10) || !almostEqual(f.Slope, 2, 1e-10) {
		t.Fatalf("fit = %+v, want a=3 b=2", f)
	}
	if !almostEqual(f.R2, 1, 1e-10) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); !errors.Is(err, ErrShortInput) {
		t.Fatalf("short input err = %v", err)
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x should error")
	}
}

func TestFitCVCurveRecoversParameters(t *testing.T) {
	// Generate points from cv(n) = 0.01 + 0.9/√n with mild noise and check
	// the fit recovers the parameters well enough to invert.
	rng := rand.New(rand.NewPCG(21, 22))
	ns := []int{16, 32, 64, 128, 256, 512, 1024}
	cvs := make([]float64, len(ns))
	for i, n := range ns {
		cvs[i] = 0.01 + 0.9/math.Sqrt(float64(n)) + rng.NormFloat64()*1e-4
	}
	c, err := FitCVCurve(ns, cvs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.A-0.01) > 0.005 || math.Abs(c.B-0.9) > 0.05 {
		t.Fatalf("fit = %+v, want A≈0.01 B≈0.9", c)
	}
	// SolveN must return an n at which the curve is below sigma.
	n, ok := c.SolveN(0.05)
	if !ok {
		t.Fatal("SolveN failed")
	}
	if got := c.Eval(n); got > 0.05+1e-9 {
		t.Fatalf("Eval(SolveN) = %v > sigma", got)
	}
	// And n-1 should be above sigma (minimality), allowing rounding slack.
	if n > 2 {
		if got := c.Eval(n - 2); got < 0.05-1e-6 {
			t.Fatalf("SolveN not minimal: Eval(%d) = %v", n-2, got)
		}
	}
}

func TestFitCVCurveRejectsBadSizes(t *testing.T) {
	if _, err := FitCVCurve([]int{0, 1}, []float64{1, 2}); err == nil {
		t.Fatal("non-positive n should error")
	}
	if _, err := FitCVCurve([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
}

func TestSolveNUnreachable(t *testing.T) {
	c := CVCurve{A: 0.2, B: 0.5}
	if _, ok := c.SolveN(0.1); ok {
		t.Fatal("floor above sigma must be unreachable")
	}
	flat := CVCurve{A: 0.01, B: -0.1}
	if n, ok := flat.SolveN(0.05); !ok || n != 1 {
		t.Fatalf("negative slope below sigma should give n=1, got %d,%v", n, ok)
	}
	flat2 := CVCurve{A: 0.5, B: 0}
	if _, ok := flat2.SolveN(0.05); ok {
		t.Fatal("flat curve above sigma must be unreachable")
	}
}

func TestTheoreticalSampleSize(t *testing.T) {
	n, err := TheoreticalSampleSize(1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Fatalf("n = %d, want 400", n)
	}
	if _, err := TheoreticalSampleSize(1, 0); err == nil {
		t.Fatal("sigma=0 should error")
	}
	if n, _ := TheoreticalSampleSize(0, 0.05); n != 1 {
		t.Fatalf("zero popCV should need n=1, got %d", n)
	}
}

func TestTheoreticalBootstraps(t *testing.T) {
	b, err := TheoreticalBootstraps(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if b != 200 {
		t.Fatalf("B = %d, want 200", b)
	}
	if _, err := TheoreticalBootstraps(0); err == nil {
		t.Fatal("eps0=0 should error")
	}
}
