package stats

import (
	"errors"
	"math"
)

// LinearFit holds the result of an ordinary least-squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// FitLinear performs ordinary least squares on the paired observations.
// It is the "standard method of least squares" the SSABE algorithm uses to
// fit the error curve over subsample sizes (§3.2 of the paper); SSABE
// calls it through FitCVCurve below with a transformed regressor.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched fit input lengths")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrShortInput
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate fit (constant x)")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2}, nil
}

// CVCurve is the model SSABE fits to the measured (sample size, cv)
// points: cv(n) = a + b/√n. The 1/√n shape is the standard-error decay of
// i.i.d. estimators, so the fit linearises with regressor x = 1/√n.
type CVCurve struct {
	A  float64 // asymptotic floor of the error as n → ∞
	B  float64 // scale of the 1/√n term
	R2 float64
}

// FitCVCurve fits cv(n) = A + B/√n to the observed points by least squares
// on the transformed regressor 1/√n.
func FitCVCurve(ns []int, cvs []float64) (CVCurve, error) {
	if len(ns) != len(cvs) {
		return CVCurve{}, errors.New("stats: mismatched fit input lengths")
	}
	xs := make([]float64, len(ns))
	for i, n := range ns {
		if n <= 0 {
			return CVCurve{}, errors.New("stats: sample sizes must be positive")
		}
		xs[i] = 1 / math.Sqrt(float64(n))
	}
	lf, err := FitLinear(xs, cvs)
	if err != nil {
		return CVCurve{}, err
	}
	return CVCurve{A: lf.Intercept, B: lf.Slope, R2: lf.R2}, nil
}

// Eval returns the modeled cv at sample size n.
func (c CVCurve) Eval(n int) float64 {
	return c.A + c.B/math.Sqrt(float64(n))
}

// SolveN returns the smallest sample size n whose modeled cv is at or
// below the target error sigma, i.e. it inverts the fitted curve — the step
// SSABE uses to choose the final sample size. ok is false when the fitted
// floor A already exceeds sigma (no finite n reaches the target) or the
// fitted slope is non-positive (error does not shrink with n).
func (c CVCurve) SolveN(sigma float64) (n int, ok bool) {
	if c.B <= 0 {
		// No measurable decay with n; only attainable if already below.
		if c.A <= sigma {
			return 1, true
		}
		return 0, false
	}
	if c.A >= sigma {
		return 0, false
	}
	root := c.B / (sigma - c.A) // √n at equality
	nf := math.Ceil(root * root)
	if nf < 1 {
		nf = 1
	}
	if nf > math.MaxInt32 {
		return 0, false
	}
	return int(nf), true
}

// TheoreticalSampleSize returns the normal-theory sample size needed to
// estimate a mean with coefficient-of-variation error sigma, given the
// population cv of the underlying data: n = (popCV/sigma)². Figure 8
// compares this textbook prediction against SSABE's empirical estimate.
func TheoreticalSampleSize(popCV, sigma float64) (int, error) {
	if sigma <= 0 {
		return 0, errors.New("stats: sigma must be positive")
	}
	if popCV <= 0 {
		return 1, nil
	}
	n := math.Ceil((popCV / sigma) * (popCV / sigma))
	return int(n), nil
}

// TheoreticalBootstraps returns the classical prescription B = 1/(2ε₀²)
// for the number of Monte-Carlo bootstrap resamples needed to approximate
// the ideal bootstrap to within ε₀ (§3 of the paper, citing Efron). EARL's
// point in Figure 8 is that this is usually far from the empirical need.
func TheoreticalBootstraps(eps0 float64) (int, error) {
	if eps0 <= 0 {
		return 0, errors.New("stats: eps0 must be positive")
	}
	return int(math.Ceil(1 / (2 * eps0 * eps0))), nil
}
