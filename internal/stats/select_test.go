package stats

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func randomSlices(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	switch rng.IntN(4) {
	case 0: // continuous
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
	case 1: // duplicate-heavy
		for i := range xs {
			xs[i] = float64(rng.IntN(5))
		}
	case 2: // sorted (quickselect's classic adversary)
		for i := range xs {
			xs[i] = float64(i)
		}
	default: // reverse sorted
		for i := range xs {
			xs[i] = float64(n - i)
		}
	}
	return xs
}

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(300)
		xs := randomSlices(rng, n)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		k := rng.IntN(n)
		Select(xs, k)
		if xs[k] != sorted[k] {
			t.Fatalf("select(%d) = %v, want %v", k, xs[k], sorted[k])
		}
		for _, v := range xs[:k] {
			if v > xs[k] {
				t.Fatalf("left partition holds %v > pivot %v", v, xs[k])
			}
		}
		for _, v := range xs[k+1:] {
			if v < xs[k] {
				t.Fatalf("right partition holds %v < pivot %v", v, xs[k])
			}
		}
	}
}

// TestQuantileSelectionMatchesSorted pins the selection-based Quantile
// (and the in-place SelectQuantile) bit for bit against the sort-based
// reference across distributions, sizes and q values — the equivalence
// that lets every quantile statistic switch to selection without moving
// any golden.
func TestQuantileSelectionMatchesSorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	qs := []float64{0, 0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.999, 1}
	for trial := 0; trial < 100; trial++ {
		xs := randomSlices(rng, 1+rng.IntN(400))
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range qs {
			want, err := QuantileSorted(sorted, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Quantile(xs, q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Quantile(q=%v) = %v, want %v", q, got, want)
			}
			scratch := append([]float64(nil), xs...)
			got, err = SelectQuantile(scratch, q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("SelectQuantile(q=%v) = %v, want %v", q, got, want)
			}
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3, 9, 0, 8}
	orig := append([]float64(nil), xs...)
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("Quantile reordered its input at %d: %v vs %v", i, xs, orig)
		}
	}
}

func TestSelectQuantileGuards(t *testing.T) {
	if _, err := SelectQuantile(nil, 0.5); err == nil {
		t.Fatal("empty input should error")
	}
	for _, q := range []float64{-0.1, 1.1, nan()} {
		if _, err := SelectQuantile([]float64{1, 2}, q); err == nil {
			t.Fatalf("q=%v should error", q)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }

func TestQuantileSteadyStateAllocFree(t *testing.T) {
	xs := make([]float64, 4096)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	// Warm the pool, then the hot loop must not allocate.
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Quantile(xs, 0.95); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Quantile allocated %.1f/op, want 0", allocs)
	}
}
