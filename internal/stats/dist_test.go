package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.8413447460685429, 1.0},
	}
	for _, c := range cases {
		got, err := NormalQuantile(c.p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-8) && math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%v) should error", p)
		}
	}
}

func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	for p := 0.001; p < 1; p += 0.0137 {
		z, err := NormalQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		back := NormalCDF(z)
		if math.Abs(back-p) > 1e-9 {
			t.Fatalf("roundtrip p=%v → z=%v → %v", p, z, back)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	const n, p, trials = 200, 0.3, 20000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		k := float64(Binomial(rng, n, p))
		sum += k
		sumsq += k * k
	}
	mean := sum / trials
	varr := sumsq/trials - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	if math.Abs(mean-wantMean) > 0.5 {
		t.Fatalf("binomial mean %v, want ≈%v", mean, wantMean)
	}
	if math.Abs(varr-wantVar)/wantVar > 0.1 {
		t.Fatalf("binomial var %v, want ≈%v", varr, wantVar)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if Binomial(rng, 0, 0.5) != 0 {
		t.Fatal("n=0 should give 0")
	}
	if Binomial(rng, 10, 0) != 0 {
		t.Fatal("p=0 should give 0")
	}
	if Binomial(rng, 10, 1) != 10 {
		t.Fatal("p=1 should give n")
	}
	for i := 0; i < 1000; i++ {
		k := Binomial(rng, 100, 0.99)
		if k < 0 || k > 100 {
			t.Fatalf("binomial out of range: %d", k)
		}
	}
}

func TestBinomialApproxMatchesExact(t *testing.T) {
	// Compare the Gaussian-approximated sampler against exact Bernoulli
	// summation at a size where the approximation is active (n > 64).
	rngA := rand.New(rand.NewPCG(5, 6))
	rngB := rand.New(rand.NewPCG(7, 8))
	const n, p, trials = 500, 0.8, 8000
	var meanA, meanB float64
	for i := 0; i < trials; i++ {
		meanA += float64(Binomial(rngA, n, p))
		meanB += float64(BinomialExact(rngB, n, p))
	}
	meanA /= trials
	meanB /= trials
	if math.Abs(meanA-meanB) > 1.0 {
		t.Fatalf("approx mean %v vs exact %v", meanA, meanB)
	}
}

func TestProportionInterval(t *testing.T) {
	p, hw, err := ProportionInterval(30, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.3 {
		t.Fatalf("p = %v, want 0.3", p)
	}
	want := 1.959963984540054 * math.Sqrt(0.3*0.7/100)
	if math.Abs(hw-want) > 1e-9 {
		t.Fatalf("halfWidth = %v, want %v", hw, want)
	}
}

func TestProportionIntervalErrors(t *testing.T) {
	if _, _, err := ProportionInterval(1, 0, 0.95); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, _, err := ProportionInterval(-1, 10, 0.95); err == nil {
		t.Fatal("negative successes should error")
	}
	if _, _, err := ProportionInterval(11, 10, 0.95); err == nil {
		t.Fatal("successes > n should error")
	}
	if _, _, err := ProportionInterval(5, 10, 1.0); err == nil {
		t.Fatal("confidence=1 should error")
	}
}

func TestZTestProportion(t *testing.T) {
	// 60/100 against p0 = 0.5: z = (0.6-0.5)/sqrt(0.25/100) = 2.0.
	z, pv, err := ZTestProportion(60, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-2.0) > 1e-12 {
		t.Fatalf("z = %v, want 2.0", z)
	}
	wantP := 2 * (1 - NormalCDF(2.0))
	if math.Abs(pv-wantP) > 1e-12 {
		t.Fatalf("pValue = %v, want %v", pv, wantP)
	}
}
