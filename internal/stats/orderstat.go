package stats

import (
	"errors"
	"fmt"
	"sort"
)

// OrderStat is a counted multiset of float64 values indexed for order
// statistics: a sorted dictionary of distinct values with a Fenwick tree
// over their multiplicities. Add/Remove of a value already in the
// dictionary and Kth/Quantile are O(log k) in the number of distinct
// values and allocation-free; new distinct values are admitted in
// batches (AddBatch) with one O(k + m log m) merge + rebuild per batch
// rather than one O(k) insertion per value.
//
// This is the state representation behind EARL's quantile/median
// resample maintenance (§4.1): a maintained resample performs ~√n
// removals and ~|Δs| additions per growth iteration, and the previous
// map[float64]int64 + re-sort-on-mutation representation made every
// Finalize an O(k log k) sort and every Kth an O(k) scan.
//
// Slots whose count drops to zero are kept as tombstones (they carry no
// weight, so order statistics ignore them) and compacted away on the
// next rebuild once they outnumber live slots.
//
// The zero value is an empty multiset. NaN values are rejected by Add
// and AddBatch before any mutation: a NaN admitted into the sorted
// dictionary would break the binary searches for *finite* values too
// (NaN compares false both ways), silently corrupting quantiles — and
// NaN records are remotely reachable (strconv.ParseFloat accepts
// "NaN"), so this is the guard, not the parsers.
type OrderStat struct {
	vals   []float64 // sorted distinct values; may retain zero-count slots
	counts []int64   // multiplicity per slot (kept for rebuilds/merges)
	tree   Fenwick   // Fenwick over counts
	n      int64     // total count
	zeros  int       // slots whose count has dropped to zero

	scratch []float64 // reused sort buffer for unsorted AddBatch input
}

// Len returns the total number of items (with multiplicity).
func (o *OrderStat) Len() int64 { return o.n }

// Distinct returns the number of live dictionary slots (excluding
// zero-count tombstones); exposed for tests.
func (o *OrderStat) Distinct() int { return len(o.vals) - o.zeros }

// find returns the slot of v and whether it is present in the dictionary.
func (o *OrderStat) find(v float64) (int, bool) {
	i := sort.SearchFloat64s(o.vals, v)
	return i, i < len(o.vals) && o.vals[i] == v
}

// bump adds d (> 0) copies to an existing slot.
func (o *OrderStat) bump(slot int, d int64) {
	if o.counts[slot] == 0 {
		o.zeros--
	}
	o.counts[slot] += d
	o.tree.Add(slot, d)
	o.n += d
}

// ErrNaN is returned when a NaN value is offered to the multiset.
var ErrNaN = errors.New("stats: NaN value in order-statistic multiset")

// Add inserts one copy of v. Inserting a value not yet in the dictionary
// costs O(k); batch insertion via AddBatch amortises that.
//
//earl:hotpath
func (o *OrderStat) Add(v float64) error {
	if v != v {
		return ErrNaN
	}
	if slot, ok := o.find(v); ok {
		o.bump(slot, 1)
		return nil
	}
	o.mergeRebuild([]float64{v}, 1)
	return nil
}

// AddBatch inserts every value of vs (with multiplicity). vs is not
// retained; when it is already ascending — the engine's canonical
// generation order — no copy is made, otherwise it is sorted into an
// internal scratch buffer. A batch containing NaN is rejected whole,
// before any mutation.
//
//earl:hotpath
func (o *OrderStat) AddBatch(vs []float64) error {
	if len(vs) == 0 {
		return nil
	}
	for _, v := range vs {
		if v != v {
			return ErrNaN
		}
	}
	if !sort.Float64sAreSorted(vs) {
		if cap(o.scratch) < len(vs) {
			o.scratch = make([]float64, len(vs))
		}
		o.scratch = o.scratch[:len(vs)]
		copy(o.scratch, vs)
		sort.Float64s(o.scratch)
		vs = o.scratch
	}
	// First pass over the runs of equal values: count the ones needing a
	// slot the merged dictionary must keep — brand-new values and revived
	// tombstones (which the merge then cannot compact).
	kept := 0
	for i := 0; i < len(vs); {
		j := i + 1
		for j < len(vs) && vs[j] == vs[i] {
			j++
		}
		if slot, ok := o.find(vs[i]); !ok || o.counts[slot] == 0 {
			kept++
		}
		i = j
	}
	if kept == 0 && o.zeros*2 <= len(o.vals) {
		// Pure count bumps: O(m log k), no rebuild.
		for i := 0; i < len(vs); {
			j := i + 1
			for j < len(vs) && vs[j] == vs[i] {
				j++
			}
			slot, _ := o.find(vs[i])
			o.bump(slot, int64(j-i))
			i = j
		}
		return nil
	}
	o.mergeRebuild(vs, kept)
	return nil
}

// compact drops zero-count tombstone slots in one forward pass.
func (o *OrderStat) compact() {
	if o.zeros == 0 {
		return
	}
	w := 0
	for i := range o.vals {
		if o.counts[i] == 0 {
			continue
		}
		o.vals[w] = o.vals[i]
		o.counts[w] = o.counts[i]
		w++
	}
	o.vals = o.vals[:w]
	o.counts = o.counts[:w]
	o.zeros = 0
}

// mergeRebuild compacts tombstones, merges the sorted batch vs into the
// dictionary in one backward in-place pass, and rebuilds the Fenwick
// index. kept is the number of distinct batch values absent from the
// compacted dictionary (new values + revived tombstones). O(k + m) plus
// the rebuild.
func (o *OrderStat) mergeRebuild(vs []float64, kept int) {
	o.compact()
	oldLen := len(o.vals)
	newLen := oldLen + kept
	if cap(o.vals) < newLen {
		nv := make([]float64, oldLen, newLen+newLen/2)
		copy(nv, o.vals)
		o.vals = nv
		nc := make([]int64, oldLen, cap(nv))
		copy(nc, o.counts)
		o.counts = nc
	}
	o.vals = o.vals[:newLen]
	o.counts = o.counts[:newLen]
	// Merge from the back: with tombstones gone every old slot survives,
	// so the write cursor never catches the unread region (w ≥ i).
	w := newLen - 1
	i, j := oldLen-1, len(vs)-1
	for j >= 0 || i >= 0 {
		if j < 0 || (i >= 0 && o.vals[i] > vs[j]) {
			o.vals[w] = o.vals[i]
			o.counts[w] = o.counts[i]
			i--
			w--
			continue
		}
		v := vs[j]
		var c int64
		for j >= 0 && vs[j] == v {
			c++
			j--
		}
		if i >= 0 && o.vals[i] == v {
			c += o.counts[i]
			i--
		}
		o.vals[w] = v
		o.counts[w] = c
		w--
	}
	o.n += int64(len(vs))
	o.tree.Rebuild(o.counts)
}

// Remove deletes one previously added copy of v.
//
//earl:hotpath
func (o *OrderStat) Remove(v float64) error {
	slot, ok := o.find(v)
	if !ok || o.counts[slot] <= 0 {
		return fmt.Errorf("stats: remove of absent value %v", v)
	}
	o.counts[slot]--
	o.tree.Add(slot, -1)
	o.n--
	if o.counts[slot] == 0 {
		o.zeros++
	}
	return nil
}

// RemoveBatch deletes one previously added copy of every value in vs —
// O(m log k), allocation-free.
//
//earl:hotpath
func (o *OrderStat) RemoveBatch(vs []float64) error {
	for _, v := range vs {
		if err := o.Remove(v); err != nil {
			return err
		}
	}
	return nil
}

// Merge folds another multiset in (the reduce-side state merge): one
// O(k₁ + k₂) two-way merge of the dictionaries plus a Fenwick rebuild.
// other is not modified.
func (o *OrderStat) Merge(other *OrderStat) {
	if other.n == 0 {
		return
	}
	mv := make([]float64, 0, len(o.vals)+len(other.vals))
	mc := make([]int64, 0, len(o.vals)+len(other.vals))
	i, j := 0, 0
	for i < len(o.vals) || j < len(other.vals) {
		// Skip tombstones on both sides (compaction rides along).
		if i < len(o.vals) && o.counts[i] == 0 {
			i++
			continue
		}
		if j < len(other.vals) && other.counts[j] == 0 {
			j++
			continue
		}
		switch {
		case j >= len(other.vals) || (i < len(o.vals) && o.vals[i] < other.vals[j]):
			mv = append(mv, o.vals[i])
			mc = append(mc, o.counts[i])
			i++
		case i >= len(o.vals) || other.vals[j] < o.vals[i]:
			mv = append(mv, other.vals[j])
			mc = append(mc, other.counts[j])
			j++
		default:
			mv = append(mv, o.vals[i])
			mc = append(mc, o.counts[i]+other.counts[j])
			i++
			j++
		}
	}
	o.vals = mv
	o.counts = mc
	o.zeros = 0
	o.n += other.n
	o.tree.Rebuild(o.counts)
}

// Kth returns the k-th (0-based) order statistic in O(log k).
//
//earl:hotpath
func (o *OrderStat) Kth(k int64) (float64, error) {
	if k < 0 || k >= o.n {
		return 0, fmt.Errorf("stats: order statistic %d out of range [0,%d)", k, o.n)
	}
	return o.vals[o.tree.Pick(k)], nil
}

// Quantile computes the type-7 quantile (the R/NumPy default, matching
// QuantileSorted) over the multiset.
func (o *OrderStat) Quantile(q float64) (float64, error) {
	// quantileType7 only asks for in-range order statistics, so the
	// Fenwick descent cannot fail here.
	return quantileType7(o.n, q, func(k int64) float64 { return o.vals[o.tree.Pick(k)] })
}
