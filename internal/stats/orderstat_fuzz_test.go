package stats

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"testing"
)

// fuzzRef is the obviously-correct reference the fuzzer checks
// OrderStat against: a sorted slice with linear-time mutation.
type fuzzRef struct{ vs []float64 }

func (r *fuzzRef) add(v float64) {
	i := sort.SearchFloat64s(r.vs, v)
	r.vs = append(r.vs, 0)
	copy(r.vs[i+1:], r.vs[i:])
	r.vs[i] = v
}

func (r *fuzzRef) remove(i int) {
	r.vs = append(r.vs[:i], r.vs[i+1:]...)
}

// FuzzOrderStat drives an op sequence decoded from the fuzz input
// against both OrderStat (Fenwick-indexed dictionary) and the sorted
// slice reference, and requires every order statistic and quantile to
// agree.
func FuzzOrderStat(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Add([]byte("\x00AAAAAAAA\x00BBBBBBBB\x01CCCCCCCC\x02DDDDDDDD"))
	f.Add([]byte("\x04\x00\x00\x00\x00\x00\x00\x00\x00\x04\x00\x00\x00\x00\x00\x00\xf0\x3f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var ms OrderStat
		var ref fuzzRef
		for len(data) >= 9 {
			op, bits := data[0], binary.LittleEndian.Uint64(data[1:9])
			data = data[9:]
			v := math.Float64frombits(bits)
			switch op % 5 {
			case 0, 1: // weight Add double
				if math.IsNaN(v) {
					if err := ms.Add(v); !errors.Is(err, ErrNaN) {
						t.Fatalf("Add(NaN) err = %v, want ErrNaN", err)
					}
					continue
				}
				if err := ms.Add(v); err != nil {
					t.Fatalf("Add(%v): %v", v, err)
				}
				ref.add(v)
			case 2: // remove an element currently in the multiset
				if len(ref.vs) == 0 {
					continue
				}
				i := int(bits % uint64(len(ref.vs)))
				if err := ms.Remove(ref.vs[i]); err != nil {
					t.Fatalf("Remove(%v): %v", ref.vs[i], err)
				}
				ref.remove(i)
			case 3: // batch add: up to 4 more values from the stream
				batch := []float64{v}
				for len(batch) < 4 && len(data) >= 8 {
					batch = append(batch, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
					data = data[8:]
				}
				hasNaN := false
				for _, b := range batch {
					if math.IsNaN(b) {
						hasNaN = true
					}
				}
				if hasNaN {
					if err := ms.AddBatch(batch); !errors.Is(err, ErrNaN) {
						t.Fatalf("AddBatch(NaN) err = %v, want ErrNaN", err)
					}
					continue
				}
				if err := ms.AddBatch(batch); err != nil {
					t.Fatalf("AddBatch: %v", err)
				}
				for _, b := range batch {
					ref.add(b)
				}
			case 4: // point query while mutating
				if len(ref.vs) == 0 {
					continue
				}
				k := int64(bits % uint64(len(ref.vs)))
				got, err := ms.Kth(k)
				if err != nil {
					t.Fatalf("Kth(%d): %v", k, err)
				}
				if got != ref.vs[k] {
					t.Fatalf("Kth(%d) = %v, reference %v", k, got, ref.vs[k])
				}
			}
			if ms.Len() != int64(len(ref.vs)) {
				t.Fatalf("Len = %d, reference %d", ms.Len(), len(ref.vs))
			}
		}
		// Full final cross-check: every order statistic and a quantile
		// sweep must agree with the sorted reference.
		for k := range ref.vs {
			got, err := ms.Kth(int64(k))
			if err != nil {
				t.Fatalf("final Kth(%d): %v", k, err)
			}
			if got != ref.vs[k] {
				t.Fatalf("final Kth(%d) = %v, reference %v", k, got, ref.vs[k])
			}
		}
		if len(ref.vs) > 0 {
			for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.95, 1} {
				want, err1 := QuantileSorted(ref.vs, q)
				got, err2 := ms.Quantile(q)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("Quantile(%v) errs: %v vs %v", q, err1, err2)
				}
				// IEEE equality, not bit equality: equal-comparing -0 and
				// +0 may be stored in either order by either structure.
				if err1 == nil && got != want {
					t.Fatalf("Quantile(%v) = %v, QuantileSorted = %v", q, got, want)
				}
			}
		}
	})
}
