package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestSumKahan(t *testing.T) {
	// A classic catastrophic-cancellation pattern: naive summation loses
	// the small terms; Kahan keeps them.
	xs := make([]float64, 0, 2002)
	xs = append(xs, 1e16)
	for i := 0; i < 2000; i++ {
		xs = append(xs, 1)
	}
	xs = append(xs, -1e16)
	if got := Sum(xs); got != 2000 {
		t.Fatalf("Sum = %v, want 2000", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMeanSimple(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %v, %v; want 2.5, nil", m, err)
	}
}

func TestVariance(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestVarianceShort(t *testing.T) {
	if _, err := Variance([]float64{1}); !errors.Is(err, ErrShortInput) {
		t.Fatalf("err = %v, want ErrShortInput", err)
	}
}

func TestPopVariance(t *testing.T) {
	v, err := PopVariance([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 1.25, 1e-12) {
		t.Fatalf("PopVariance = %v, want 1.25", v)
	}
	if v1, _ := PopVariance([]float64{42}); v1 != 0 {
		t.Fatalf("PopVariance singleton = %v, want 0", v1)
	}
}

func TestCV(t *testing.T) {
	cv, err := CV([]float64{10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if cv != 0 {
		t.Fatalf("cv of constant data = %v, want 0", cv)
	}
	if _, err := CV([]float64{-1, 1}); err == nil {
		t.Fatal("cv with zero mean should error")
	}
}

func TestMedianOddEven(t *testing.T) {
	m, _ := Median([]float64{5, 1, 3})
	if m != 3 {
		t.Fatalf("odd median = %v, want 3", m)
	}
	m, _ = Median([]float64{4, 1, 3, 2})
	if m != 2.5 {
		t.Fatalf("even median = %v, want 2.5", m)
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 5 {
		t.Fatalf("q0=%v q1=%v, want 1 and 5", q0, q1)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range quantile should error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty quantile should return ErrEmpty")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	q, _ := Quantile(xs, 0.25)
	if !almostEqual(q, 2.5, 1e-12) {
		t.Fatalf("q(0.25) = %v, want 2.5", q)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v,%v", min, max, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("MinMax(nil) should return ErrEmpty")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	m, _ := Mean(xs)
	v, _ := Variance(xs)
	if !almostEqual(w.Mean(), m, 1e-10) {
		t.Fatalf("welford mean %v vs batch %v", w.Mean(), m)
	}
	if !almostEqual(w.Variance(), v, 1e-10) {
		t.Fatalf("welford var %v vs batch %v", w.Variance(), v)
	}
	if w.N() != 500 {
		t.Fatalf("welford n = %d", w.N())
	}
	if !almostEqual(w.Sum(), Sum(xs), 1e-9) {
		t.Fatalf("welford sum %v vs batch %v", w.Sum(), Sum(xs))
	}
}

func TestWelfordMergeEquivalence(t *testing.T) {
	// Property: merging two accumulators equals accumulating the
	// concatenated stream. Exercised via testing/quick.
	f := func(as, bs []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		as, bs = clean(as), clean(bs)
		var wa, wb, wall Welford
		for _, x := range as {
			wa.Add(x)
			wall.Add(x)
		}
		for _, x := range bs {
			wb.Add(x)
			wall.Add(x)
		}
		wa.Merge(wb)
		return wa.N() == wall.N() &&
			almostEqual(wa.Mean(), wall.Mean(), 1e-8) &&
			almostEqual(wa.Variance(), wall.Variance(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordAddNMatchesRepeatedAdd(t *testing.T) {
	var a, b Welford
	for i := 0; i < 7; i++ {
		a.Add(3.25)
	}
	a.Add(1)
	b.AddN(3.25, 7)
	b.Add(1)
	if !almostEqual(a.Mean(), b.Mean(), 1e-12) || !almostEqual(a.Variance(), b.Variance(), 1e-12) {
		t.Fatalf("AddN mismatch: (%v,%v) vs (%v,%v)", a.Mean(), a.Variance(), b.Mean(), b.Variance())
	}
}

func TestWelfordRemoveInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var w Welford
	base := make([]float64, 50)
	for i := range base {
		base[i] = rng.Float64() * 100
		w.Add(base[i])
	}
	extra := []float64{math.Pi, -2.5, 1e3}
	for _, x := range extra {
		w.Add(x)
	}
	for i := len(extra) - 1; i >= 0; i-- {
		w.Remove(extra[i])
	}
	m, _ := Mean(base)
	v, _ := Variance(base)
	if !almostEqual(w.Mean(), m, 1e-8) || !almostEqual(w.Variance(), v, 1e-6) {
		t.Fatalf("remove did not invert add: mean %v vs %v, var %v vs %v",
			w.Mean(), m, w.Variance(), v)
	}
}

func TestWelfordRemoveToEmpty(t *testing.T) {
	var w Welford
	w.Add(5)
	w.Remove(5)
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatalf("remove-to-empty left state %+v", w)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Fatalf("merge with empty changed state")
	}
	b.Merge(a) // merging into empty copies
	if b != a {
		t.Fatalf("merge into empty did not copy")
	}
}
