package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// refMultiset is the representation OrderStat replaced — a counted map
// re-sorted per query — kept here as the behavioural reference for the
// randomized equivalence suite.
type refMultiset struct {
	counts map[float64]int64
	n      int64
}

func newRefMultiset() *refMultiset {
	return &refMultiset{counts: map[float64]int64{}}
}

func (r *refMultiset) add(v float64) { r.counts[v]++; r.n++ }
func (r *refMultiset) remove(v float64) bool {
	if r.counts[v] <= 0 {
		return false
	}
	r.counts[v]--
	if r.counts[v] == 0 {
		delete(r.counts, v)
	}
	r.n--
	return true
}

func (r *refMultiset) quantile(q float64) (float64, error) {
	vals := make([]float64, 0, int(r.n))
	for v, c := range r.counts {
		for i := int64(0); i < c; i++ {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	if len(vals) == 0 {
		return 0, ErrEmpty
	}
	return QuantileSorted(vals, q)
}

// randomValue draws from a small value set so removals and duplicates
// are frequent — the duplicate-heavy regime a counted multiset exists
// for — while still exercising dictionary growth.
func randomValue(rng *rand.Rand, spread int) float64 {
	return float64(rng.IntN(spread)) / 4
}

// TestOrderStatEquivalence is the randomized equivalence suite pinning
// the Fenwick multiset against the old sort-based representation:
// interleaved adds (single and batch), removes (single and batch),
// merges and quantile queries must agree at every step.
func TestOrderStatEquivalence(t *testing.T) {
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 99))
		spread := 4 + rng.IntN(200) // tiny spread → duplicate-heavy
		var os OrderStat
		ref := newRefMultiset()
		live := make([]float64, 0, 256) // values currently present
		check := func(step int) {
			t.Helper()
			if os.Len() != ref.n {
				t.Fatalf("trial %d step %d: len %d, want %d", trial, step, os.Len(), ref.n)
			}
			if ref.n == 0 {
				if _, err := os.Quantile(0.5); err == nil {
					t.Fatalf("trial %d step %d: empty quantile should error", trial, step)
				}
				return
			}
			for _, q := range quantiles {
				got, err := os.Quantile(q)
				if err != nil {
					t.Fatalf("trial %d step %d q=%v: %v", trial, step, q, err)
				}
				want, err := ref.quantile(q)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d step %d: quantile(%v) = %v, want %v", trial, step, q, got, want)
				}
			}
		}
		for step := 0; step < 120; step++ {
			switch op := rng.IntN(5); {
			case op == 0: // single add
				v := randomValue(rng, spread)
				if err := os.Add(v); err != nil {
					t.Fatal(err)
				}
				ref.add(v)
				live = append(live, v)
			case op == 1: // batch add (sometimes pre-sorted, like the engine)
				batch := make([]float64, 1+rng.IntN(30))
				for i := range batch {
					batch[i] = randomValue(rng, spread)
				}
				if rng.IntN(2) == 0 {
					sort.Float64s(batch)
				}
				if err := os.AddBatch(batch); err != nil {
					t.Fatal(err)
				}
				for _, v := range batch {
					ref.add(v)
				}
				live = append(live, batch...)
			case op == 2 && len(live) > 0: // single remove of a present value
				i := rng.IntN(len(live))
				v := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := os.Remove(v); err != nil {
					t.Fatalf("remove(%v): %v", v, err)
				}
				ref.remove(v)
			case op == 3 && len(live) > 0: // batch remove
				k := 1 + rng.IntN(min(len(live), 20))
				batch := make([]float64, 0, k)
				for j := 0; j < k; j++ {
					i := rng.IntN(len(live))
					batch = append(batch, live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				if err := os.RemoveBatch(batch); err != nil {
					t.Fatal(err)
				}
				for _, v := range batch {
					ref.remove(v)
				}
			case op == 4: // merge another multiset in
				var other OrderStat
				k := rng.IntN(20)
				for j := 0; j < k; j++ {
					v := randomValue(rng, spread)
					if err := other.Add(v); err != nil {
						t.Fatal(err)
					}
					ref.add(v)
					live = append(live, v)
				}
				os.Merge(&other)
			}
			check(step)
		}
	}
}

func TestOrderStatRemoveAbsent(t *testing.T) {
	var os OrderStat
	if err := os.AddBatch([]float64{1, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(5); err == nil {
		t.Fatal("removing absent value should error")
	}
	if err := os.RemoveBatch([]float64{2, 2, 2}); err == nil {
		t.Fatal("over-removing should error")
	}
	// Tombstoned slot: fully removed value must reject further removes.
	if err := os.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(1); err == nil {
		t.Fatal("removing tombstoned value should error")
	}
}

func TestOrderStatTombstoneReviveAndCompact(t *testing.T) {
	var os OrderStat
	if err := os.AddBatch([]float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	// Kill most slots, then revive one in a batch that also adds fresh
	// values — the merge path that must keep revived tombstones.
	if err := os.RemoveBatch([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := os.AddBatch([]float64{2, 2, 9}); err != nil {
		t.Fatal(err)
	}
	if os.Len() != 5 {
		t.Fatalf("len %d, want 5", os.Len())
	}
	if got := os.Distinct(); got != 4 { // {2, 7, 8, 9}
		t.Fatalf("distinct %d, want 4", got)
	}
	for k, want := range []float64{2, 2, 7, 8, 9} {
		got, err := os.Kth(int64(k))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("kth(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestOrderStatSteadyStateAllocFree(t *testing.T) {
	var os OrderStat
	seedVals := make([]float64, 512)
	for i := range seedVals {
		seedVals[i] = float64(i % 64)
	}
	if err := os.AddBatch(seedVals); err != nil {
		t.Fatal(err)
	}
	batch := []float64{3, 17, 42, 63, 5, 5}
	allocs := testing.AllocsPerRun(200, func() {
		if err := os.AddBatch(batch); err != nil { // existing values only: count bumps
			t.Fatal(err)
		}
		if err := os.RemoveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Quantile(0.5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state add/remove/quantile allocated %.1f/op, want 0", allocs)
	}
}

func TestOrderStatQuantileGuards(t *testing.T) {
	var os OrderStat
	if _, err := os.Quantile(0.5); err == nil {
		t.Fatal("empty quantile should error")
	}
	if err := os.Add(1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Kth(-1); err == nil {
		t.Fatal("negative k should error")
	}
	if _, err := os.Kth(1); err == nil {
		t.Fatal("k ≥ n should error")
	}
	if v, err := os.Quantile(math.NaN() * 0); err == nil && math.IsNaN(v) {
		t.Fatal("NaN quantile must not silently propagate")
	}
}

// TestOrderStatRejectsNaN: a NaN admitted into the sorted dictionary
// would break binary searches for finite values too, so Add/AddBatch
// refuse it atomically — the state is untouched on rejection. NaN
// records are remotely reachable (ParseFloat accepts "NaN" and earld
// feeds parsed records straight into maintained quantile states).
func TestOrderStatRejectsNaN(t *testing.T) {
	var os OrderStat
	if err := os.AddBatch([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := os.Add(math.NaN()); err == nil {
		t.Fatal("Add(NaN) should error")
	}
	if err := os.AddBatch([]float64{4, math.NaN(), 5}); err == nil {
		t.Fatal("AddBatch with NaN should error")
	}
	if os.Len() != 3 {
		t.Fatalf("rejected batch mutated the multiset: len %d, want 3", os.Len())
	}
	// Finite values must remain fully operational after the rejections.
	if err := os.Remove(2); err != nil {
		t.Fatal(err)
	}
	if v, err := os.Quantile(0.5); err != nil || v != 2 {
		t.Fatalf("quantile = %v, %v; want 2", v, err)
	}
}
