package stats

import (
	"math/rand/v2"
	"testing"
)

// refPick is the linear cumulative scan Pick replaces: the first slot
// whose cumulative weight exceeds x.
func refPick(weights []int64, x int64) int {
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return -1
}

func TestFenwickMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(40)
		weights := make([]int64, n)
		var f Fenwick
		for i := range weights {
			weights[i] = int64(rng.IntN(5)) // zeros included
			f.Append(weights[i])
		}
		// Interleave point updates with checks.
		for step := 0; step < 60; step++ {
			if rng.IntN(3) == 0 {
				i := rng.IntN(n)
				d := int64(rng.IntN(4))
				weights[i] += d
				f.Add(i, d)
			}
			var total int64
			for _, w := range weights {
				total += w
			}
			if f.Total() != total {
				t.Fatalf("total %d, want %d", f.Total(), total)
			}
			for i := 0; i <= n; i++ {
				var p int64
				for _, w := range weights[:i] {
					p += w
				}
				if got := f.Prefix(i); got != p {
					t.Fatalf("prefix(%d) = %d, want %d", i, got, p)
				}
			}
			if total == 0 {
				continue
			}
			for x := int64(0); x < total; x++ {
				if got, want := f.Pick(x), refPick(weights, x); got != want {
					t.Fatalf("pick(%d) = %d, want %d (weights %v)", x, got, want, weights)
				}
			}
		}
	}
}

func TestFenwickRebuild(t *testing.T) {
	var f Fenwick
	f.Append(7) // pre-existing state must be replaced wholesale
	weights := []int64{3, 0, 5, 1, 0, 2}
	f.Rebuild(weights)
	if f.Len() != len(weights) || f.Total() != 11 {
		t.Fatalf("len/total = %d/%d", f.Len(), f.Total())
	}
	for x := int64(0); x < 11; x++ {
		if got, want := f.Pick(x), refPick(weights, x); got != want {
			t.Fatalf("pick(%d) = %d, want %d", x, got, want)
		}
	}
	f.Reset()
	if f.Len() != 0 || f.Total() != 0 {
		t.Fatalf("reset left len=%d total=%d", f.Len(), f.Total())
	}
}

func TestFenwickPickSkipsZeroWeights(t *testing.T) {
	var f Fenwick
	weights := []int64{0, 4, 0, 0, 6, 0}
	f.Rebuild(weights)
	for x := int64(0); x < f.Total(); x++ {
		i := f.Pick(x)
		if weights[i] == 0 {
			t.Fatalf("pick(%d) landed on zero-weight slot %d", x, i)
		}
	}
}
