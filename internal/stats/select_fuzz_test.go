package stats

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// FuzzSelectQuantile checks the selection-based quantile against the
// sort-based one on arbitrary inputs: same result, and SelectQuantile
// must only permute its input, never change the multiset.
func FuzzSelectQuantile(f *testing.F) {
	f.Add(uint8(128), []byte("AAAAAAAABBBBBBBBCCCCCCCC"))
	f.Add(uint8(0), []byte{})
	f.Add(uint8(255), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, qb uint8, data []byte) {
		var xs []float64
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			if math.IsNaN(v) {
				continue // NaN has no defined order statistic
			}
			xs = append(xs, v)
		}
		q := float64(qb) / 255

		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		want, errWant := QuantileSorted(sorted, q)

		work := append([]float64(nil), xs...)
		got, errGot := SelectQuantile(work, q)

		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("q=%v n=%d: QuantileSorted err %v, SelectQuantile err %v", q, len(xs), errWant, errGot)
		}
		if errWant == nil && got != want {
			t.Fatalf("q=%v n=%d: SelectQuantile = %v, QuantileSorted = %v", q, len(xs), got, want)
		}
		// The in-place selection must be a permutation of the input.
		sort.Float64s(work)
		for i := range sorted {
			if work[i] != sorted[i] {
				t.Fatalf("SelectQuantile mutated the multiset at %d: %v vs %v", i, work[i], sorted[i])
			}
		}
	})
}
