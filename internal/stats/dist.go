package stats

import (
	"errors"
	"math"
	"math/rand/v2"
)

// NormalQuantile returns the p-th quantile of the standard normal
// distribution (the probit function), using the Acklam rational
// approximation, accurate to about 1.15e-9 over (0,1). It is used for
// z-test confidence intervals on categorical proportions (Appendix A of
// the paper) and for the BCa bootstrap interval.
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("stats: normal quantile requires 0 < p < 1")
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step using the normal CDF for full precision.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// NormalCDF returns P(Z ≤ x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Binomial draws one variate from Binomial(n, p) using rng. For the large
// n the delta-maintenance path sees, it switches to the Gaussian
// approximation N(np, np(1-p)) that Eq. 3 of the paper justifies via the
// 3-sigma rule; for small n it uses exact Bernoulli summation.
func Binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exact for small n: the loop is cheap and avoids approximation error
	// exactly where the Gaussian is weakest.
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mu := float64(n) * p
	sigma := math.Sqrt(mu * (1 - p))
	k := int(math.Round(rng.NormFloat64()*sigma + mu))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// BinomialExact draws one variate from Binomial(n, p) by Bernoulli
// summation regardless of n. It exists so tests can compare the
// approximation used by Binomial against ground truth.
func BinomialExact(rng *rand.Rand, n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			k++
		}
	}
	return k
}

// ProportionInterval returns the normal-approximation (Wald) confidence
// interval for a binomial proportion: the estimate successes/n and its
// half-width at the given confidence level. This is the z-test machinery
// Appendix A prescribes for categorical data.
func ProportionInterval(successes, n int, confidence float64) (p, halfWidth float64, err error) {
	if n <= 0 {
		return 0, 0, ErrEmpty
	}
	if successes < 0 || successes > n {
		return 0, 0, errors.New("stats: successes out of range")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("stats: confidence must be in (0,1)")
	}
	p = float64(successes) / float64(n)
	z, err := NormalQuantile(0.5 + confidence/2)
	if err != nil {
		return 0, 0, err
	}
	halfWidth = z * math.Sqrt(p*(1-p)/float64(n))
	return p, halfWidth, nil
}

// ZTestProportion tests H0: true proportion = p0 against the two-sided
// alternative and returns the z statistic and p-value.
func ZTestProportion(successes, n int, p0 float64) (z, pValue float64, err error) {
	if n <= 0 {
		return 0, 0, ErrEmpty
	}
	if p0 <= 0 || p0 >= 1 {
		return 0, 0, errors.New("stats: p0 must be in (0,1)")
	}
	phat := float64(successes) / float64(n)
	se := math.Sqrt(p0 * (1 - p0) / float64(n))
	z = (phat - p0) / se
	pValue = 2 * (1 - NormalCDF(math.Abs(z)))
	return z, pValue, nil
}
