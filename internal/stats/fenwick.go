package stats

// Fenwick is a binary indexed tree over int64 weights: O(log n) point
// update, prefix sum and weighted pick. It is the index structure behind
// the order-statistic multiset (orderstat.go) and the weighted
// part/generation picks of the delta-maintenance hot path — the places
// profiling showed linear scans dominating per-item constants.
//
// The zero value is an empty tree. Methods never allocate except when
// the tree itself grows (Append/Rebuild), so steady-state use is
// allocation-free. Weights must stay non-negative for Pick to be
// meaningful; callers maintain that invariant.
type Fenwick struct {
	tree  []int64 // 1-indexed partial sums
	total int64
}

// Len returns the number of slots.
func (f *Fenwick) Len() int { return len(f.tree) }

// Total returns the sum of all weights.
func (f *Fenwick) Total() int64 { return f.total }

// Reset empties the tree, keeping capacity.
func (f *Fenwick) Reset() {
	f.tree = f.tree[:0]
	f.total = 0
}

// Rebuild replaces the tree contents with the given weights in O(n),
// reusing the backing array when it is large enough.
func (f *Fenwick) Rebuild(weights []int64) {
	n := len(weights)
	if cap(f.tree) < n {
		f.tree = make([]int64, n)
	}
	f.tree = f.tree[:n]
	f.total = 0
	for i := range f.tree {
		f.tree[i] = 0
	}
	// Standard linear-time construction: place each weight, then push its
	// partial sum to the parent slot.
	for i, w := range weights {
		f.tree[i] += w
		f.total += w
		if p := i | (i + 1); p < n {
			f.tree[p] += f.tree[i]
		}
	}
}

// Append adds one slot with the given weight at index Len().
func (f *Fenwick) Append(w int64) {
	i := len(f.tree)
	// tree[i] covers the range (i - lowbit(i+1), i]; reconstruct that
	// partial sum from prefixes of the existing slots.
	lo := i + 1 - ((i + 1) & -(i + 1)) // 0-based start of covered range
	f.tree = append(f.tree, w+f.Prefix(i)-f.Prefix(lo))
	f.total += w
}

// Add adds d to the weight at slot i.
func (f *Fenwick) Add(i int, d int64) {
	f.total += d
	for ; i < len(f.tree); i |= i + 1 {
		f.tree[i] += d
	}
}

// Prefix returns the sum of weights in slots [0, i).
func (f *Fenwick) Prefix(i int) int64 {
	var s int64
	for ; i > 0; i &= i - 1 {
		s += f.tree[i-1]
	}
	return s
}

// Pick maps x ∈ [0, Total()) to the slot containing it in the
// concatenation of the weights: the smallest i with Prefix(i+1) > x.
// This is exactly the weighted pick a linear cumulative scan computes,
// in O(log n), so replacing a scan with Pick preserves rng-for-rng
// determinism. Slots with zero weight are never returned. Behaviour is
// undefined for x outside [0, Total()).
func (f *Fenwick) Pick(x int64) int {
	idx := 0 // 1-indexed position after the descent
	mask := 1
	for mask<<1 <= len(f.tree) {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := idx + mask
		if next <= len(f.tree) && f.tree[next-1] <= x {
			x -= f.tree[next-1]
			idx = next
		}
	}
	return idx
}
