package stats

import "sync"

// Selection-based quantiles: Quantile used to copy + fully sort its
// input per call — O(n log n) and one allocation per bootstrap resample,
// which dominated the quantile-statistic Monte-Carlo families. Select
// partially orders in place in O(n) expected time, and Quantile runs it
// over a pooled scratch copy, so the one-shot quantile statistics are
// allocation-free in steady state while keeping the documented
// "xs is not modified" contract.

// scratchPool recycles the copy buffers Quantile selects over. Pooling
// (rather than one package-level buffer) keeps Quantile safe for the
// concurrent per-shard statistic evaluations of the parallel bootstrap.
var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

// selectCutoff is the partition size below which Select finishes with
// insertion sort — sorting a handful of items beats further recursion.
const selectCutoff = 12

// Select partially sorts xs in place so that xs[k] holds the k-th
// (0-based) order statistic, everything before it is ≤ xs[k] and
// everything after is ≥ xs[k]. Median-of-three quickselect with an
// insertion-sort tail; O(n) expected, allocation-free. It panics if k is
// out of range, mirroring slice indexing.
//
//earl:hotpath
func Select(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	_ = xs[k] // bounds check up front
	for hi-lo > selectCutoff {
		// Median-of-three pivot (first/middle/last) guards the sorted and
		// reverse-sorted inputs that break naive quickselect.
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Hoare partition: ends with xs[lo..j] ≤ pivot ≤ xs[j+1..hi].
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if !(xs[i] < pivot) {
					break
				}
			}
			for {
				j--
				if !(xs[j] > pivot) {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	// Insertion sort the residual window.
	for i := lo + 1; i <= hi; i++ {
		v := xs[i]
		j := i - 1
		for j >= lo && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// SelectQuantile computes the type-7 quantile of xs in place (xs is
// partially reordered), allocation-free. The result is bit-identical to
// QuantileSorted on the fully sorted data: it selects the lower order
// statistic and — relying on quantileType7's lo-then-lo+1 call order —
// scans the ≥-partition the selection left behind for its successor.
func SelectQuantile(xs []float64, q float64) (float64, error) {
	selected := int64(-1)
	return quantileType7(int64(len(xs)), q, func(k int64) float64 {
		if selected < 0 {
			Select(xs, int(k))
			selected = k
			return xs[k]
		}
		// Second call (k = selected+1): the successor order statistic is
		// the minimum of the ≥-partition the selection left behind.
		vHi := xs[selected+1]
		for _, v := range xs[selected+2:] {
			if v < vHi {
				vHi = v
			}
		}
		return vHi
	})
}
