// Package stats provides the numerical routines EARL is built on:
// descriptive statistics, streaming (Welford) accumulators, quantiles,
// least-squares model fitting, and the probability distributions used by
// the resampling machinery (normal, binomial) together with z-tests for
// categorical data.
//
// All functions are pure and allocation-conscious; none of them seed or
// hold global random state. Randomized routines accept a *rand.Rand so
// callers control determinism.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by estimators that require at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// ErrShortInput is returned by estimators that require more observations
// than were supplied (for example sample variance on fewer than two points).
var ErrShortInput = errors.New("stats: not enough observations")

// Sum returns the sum of xs using Kahan compensated summation, which keeps
// the error bounded even over the long, skewed datasets EARL samples from.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrShortInput
	}
	m, _ := Mean(xs)
	var ss, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := ss + y
		comp = (t - ss) - y
		ss = t
	}
	return ss / float64(len(xs)-1), nil
}

// PopVariance returns the population (n denominator) variance of xs.
func PopVariance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	n := float64(len(xs))
	return v * (n - 1) / n, nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// CV returns the coefficient of variation stddev/|mean| of xs — the error
// measure EARL reports from its accuracy estimation stage. It returns an
// error when the mean is zero, since cv is undefined there.
func CV(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, errors.New("stats: cv undefined for zero mean")
	}
	return sd / math.Abs(m), nil
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// errQuantileRange is shared by the quantile variants so they reject
// out-of-range (and NaN) q identically.
var errQuantileRange = errors.New("stats: quantile out of range [0,1]")

// quantileType7 is the ONE type-7 (R/NumPy default) interpolation
// kernel behind every quantile variant — QuantileSorted, SelectQuantile
// and OrderStat.Quantile differ only in how they reach an order
// statistic, so they share the h/lo/frac arithmetic and its edge cases
// here. kth(k) must return the k-th (0-based) order statistic; it is
// called with lo first and, only when interpolation is needed, lo+1 —
// an ordering in-place selectors rely on.
func quantileType7(n int64, q float64, kth func(k int64) float64) (float64, error) {
	if n == 0 {
		return 0, ErrEmpty
	}
	if !(q >= 0 && q <= 1) { // negated form rejects NaN
		return 0, errQuantileRange
	}
	if n == 1 {
		return kth(0), nil
	}
	h := q * float64(n-1)
	lo := int64(h)
	frac := h - float64(lo)
	vLo := kth(lo)
	if frac == 0 || lo+1 >= n {
		return vLo, nil
	}
	return vLo*(1-frac) + kth(lo+1)*frac, nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// xs is not modified: the selection runs over a pooled scratch copy, so
// the call is O(n) expected time and allocation-free in steady state —
// this is the one-shot quantile path every bootstrap resample of a
// median/quantile statistic takes.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if !(q >= 0 && q <= 1) { // negated form rejects NaN
		return 0, errQuantileRange
	}
	bufp := scratchPool.Get().(*[]float64)
	if cap(*bufp) < len(xs) {
		*bufp = make([]float64, len(xs))
	}
	buf := (*bufp)[:len(xs)]
	copy(buf, xs)
	v, err := SelectQuantile(buf, q)
	scratchPool.Put(bufp)
	return v, err
}

// QuantileSorted is Quantile for data already in ascending order; it does
// not allocate. Behaviour is undefined if xs is unsorted.
func QuantileSorted(xs []float64, q float64) (float64, error) {
	return quantileType7(int64(len(xs)), q, func(k int64) float64 { return xs[k] })
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Welford is a streaming accumulator for count, mean and variance using
// Welford's online algorithm. It is the state representation used by the
// incremental reduce API for moment-based statistics: two Welford states
// can be merged exactly, which is what Update() does during EARL's delta
// maintenance.
type Welford struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddN folds n copies of x into the accumulator. Bootstrap resamples drawn
// with replacement contain repeated items; counting multiplicities lets the
// caller fold them in O(distinct) time.
func (w *Welford) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	var other Welford
	other.n = n
	other.mean = x
	other.m2 = 0
	w.Merge(other)
}

// Merge combines another accumulator into w (Chan et al. parallel update).
// The result is exactly the accumulator that would have been obtained by
// adding the two observation streams in sequence.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Remove subtracts one observation that was previously added. This is the
// primitive EARL's inter-iteration delta maintenance relies on when the
// binomial resize (Eq. 2 of the paper) deletes items from a resample.
// Removing a value that was never added leaves the accumulator in a
// statistically meaningless state; callers must pair Add/Remove correctly.
func (w *Welford) Remove(x float64) {
	if w.n <= 1 {
		*w = Welford{}
		return
	}
	n1 := float64(w.n - 1)
	oldMean := (float64(w.n)*w.mean - x) / n1
	w.m2 -= (x - w.mean) * (x - oldMean)
	if w.m2 < 0 {
		w.m2 = 0 // clamp accumulated floating-point error
	}
	w.mean = oldMean
	w.n--
}

// N returns the number of observations folded in so far.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Sum returns n*mean, the reconstructed total.
func (w *Welford) Sum() float64 { return float64(w.n) * w.mean }

// CV returns the coefficient of variation of the accumulated stream,
// or 0 when the mean is zero.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / math.Abs(w.mean)
}
