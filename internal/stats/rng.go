package stats

import "math/rand/v2"

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014). It
// bijectively scrambles a 64-bit word and is the standard way to expand
// one seed into many decorrelated seed words.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitRNG derives the i-th member of a family of independent PCG
// streams from two seed words. The stream depends only on (seed1, seed2,
// i) — never on which goroutine or worker happens to run it — which is
// what makes the parallel resampling engines reproducible at any
// parallelism level.
func SplitRNG(seed1, seed2 uint64, i int) *rand.Rand {
	u := uint64(i)
	return rand.New(rand.NewPCG(splitmix64(seed1^splitmix64(u)), splitmix64(seed2+u)))
}
