package colscan

import (
	"errors"
	"sync"
	"testing"
)

// gatedFile is a ReaderAt whose first ReadAt parks until released —
// the harness for racing a rewrite against an in-flight decode.
type gatedFile struct {
	data    []byte
	entered chan struct{} // closed when the first ReadAt begins
	release chan struct{} // ReadAt blocks until this closes
	once    sync.Once
}

func (g *gatedFile) ReadAt(path string, off int64, p []byte) (int, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return copy(p, g.data[off:]), nil
}

// TestInvalidateDropsInFlightLoad pins the rewrite/decode race fix: a
// decode that is already in flight when InvalidatePath lands must still
// serve its waiters, but may NOT re-populate the cache under the dead
// (path, version) key — a later Peek or Load of that key must miss.
func TestInvalidateDropsInFlightLoad(t *testing.T) {
	data := []byte("1\n2\n3\n")
	g := &gatedFile{data: data, entered: make(chan struct{}), release: make(chan struct{})}
	c := NewCache(0)
	key := BlockKey{Path: "/f", Version: 1, Offset: 0, Length: int64(len(data)), Format: FormatNumeric}

	type result struct {
		blk *Block
		err error
	}
	done := make(chan result)
	go func() {
		blk, err := c.Load(g, int64(len(data)), key)
		done <- result{blk, err}
	}()
	<-g.entered
	c.InvalidatePath("/f") // the rewrite lands mid-decode
	close(g.release)

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight load failed: %v", res.err)
	}
	if res.blk.NumRecords() != 3 {
		t.Fatalf("waiter got %d records, want 3", res.blk.NumRecords())
	}
	if _, ok := c.Peek(key); ok {
		t.Fatal("in-flight load re-populated the cache under an invalidated key")
	}
	st := c.Stats()
	if st.Blocks != 0 || st.Bytes != 0 {
		t.Fatalf("cache retains %d blocks / %d bytes after invalidation", st.Blocks, st.Bytes)
	}
	// A fresh load of the key (the rewritten file's new version would
	// normally change the key; same-key reload must also work).
	g2 := &memFile{data: data}
	blk, err := c.Load(g2, int64(len(data)), key)
	if err != nil || blk.NumRecords() != 3 {
		t.Fatalf("reload after invalidation: %v", err)
	}
	if got := c.Stats().Blocks; got != 1 {
		t.Fatalf("reload cached %d blocks, want 1", got)
	}
}

// fakeStore scripts the ColumnStore the cache consults on misses.
type fakeStore struct {
	blk *Block
	ok  bool
	err error
}

func (s *fakeStore) LoadColumns(key BlockKey) (*Block, bool, error) { return s.blk, s.ok, s.err }

func TestCacheServesFromColumnStore(t *testing.T) {
	data := []byte("1\n2\n3\n")
	blk, err := Decode(&memFile{data: data}, "/f", int64(len(data)), 0, int64(len(data)), FormatNumeric)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.SetStore(&fakeStore{blk: blk, ok: true})
	// A reader that always fails proves the text path was never touched.
	got, err := c.Load(&memFile{}, int64(len(data)), BlockKey{Path: "/f", Length: int64(len(data)), Format: FormatNumeric})
	if err != nil || got != blk {
		t.Fatalf("Load did not serve the store's block: %v", err)
	}
	st := c.Stats()
	if st.SidecarReads != 1 || st.SidecarErrors != 0 {
		t.Fatalf("counters = %d reads / %d errors, want 1 / 0", st.SidecarReads, st.SidecarErrors)
	}
}

func TestCacheFallsBackOnStoreError(t *testing.T) {
	boom := errors.New("checksum mismatch")
	data := []byte("4\n5\n")
	c := NewCache(0)
	c.SetStore(&fakeStore{err: boom})
	var hookKey BlockKey
	var hookErr error
	c.OnSidecarError(func(key BlockKey, err error) { hookKey, hookErr = key, err })
	key := BlockKey{Path: "/f", Length: int64(len(data)), Format: FormatNumeric}
	blk, err := c.Load(&memFile{data: data}, int64(len(data)), key)
	if err != nil || blk.NumRecords() != 2 {
		t.Fatalf("fallback text decode failed: %v", err)
	}
	if !errors.Is(hookErr, boom) || hookKey != key {
		t.Fatalf("error hook saw (%v, %v), want the failing key and error", hookKey, hookErr)
	}
	st := c.Stats()
	if st.SidecarErrors != 1 || st.SidecarReads != 0 {
		t.Fatalf("counters = %d reads / %d errors, want 0 / 1", st.SidecarReads, st.SidecarErrors)
	}
}

func TestCacheStoreMissDecodesText(t *testing.T) {
	data := []byte("6\n")
	c := NewCache(0)
	c.SetStore(&fakeStore{}) // clean miss: no sidecar coverage
	blk, err := c.Load(&memFile{data: data}, int64(len(data)), BlockKey{Path: "/f", Length: int64(len(data)), Format: FormatNumeric})
	if err != nil || blk.NumRecords() != 1 {
		t.Fatalf("text decode after store miss failed: %v", err)
	}
	st := c.Stats()
	if st.SidecarReads != 0 || st.SidecarErrors != 0 {
		t.Fatalf("clean miss moved sidecar counters: %+v", st)
	}
}
