package colscan

import "sync"

// BlockKey identifies one decoded split. Version is the dfs file's
// write generation (stable across Append, new on WriteFile), so a
// rewrite under the same path can never serve stale blocks, while
// appended files keep every already-decoded split hot: append adds new
// segments, it never changes the bytes behind an existing split.
type BlockKey struct {
	Path    string
	Version int64
	Offset  int64
	Length  int64
	Format  Format
}

// DefaultCacheBytes bounds the cache's retained decoded state.
const DefaultCacheBytes = 256 << 20

// ColumnStore is the persistent columnar sidecar surface the cache
// consults before paying a text decode (internal/colseg's Reader
// implements it). LoadColumns returns ok=false for a clean miss — no
// sidecar, stale generation, uncovered split — and an error when a
// sidecar exists but fails verification; the cache counts and reports
// the error (see OnSidecarError) and falls back to text decode, so a
// damaged sidecar can cost speed, never correctness.
type ColumnStore interface {
	LoadColumns(key BlockKey) (*Block, bool, error)
}

// Cache is the decoded-block cache: K concurrent watches over one file
// re-decode nothing. Loads of the same key are single-flighted (one
// decode, everyone waits on it), and ready blocks are evicted LRU by
// retained bytes. A Cache is safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int64
	cur     int64
	entries map[BlockKey]*cacheEntry
	// Intrusive LRU list: head is most recent.
	head, tail *cacheEntry

	hits, misses int64

	// store, when set, is consulted on every miss before text decode.
	store        ColumnStore
	onSidecarErr func(BlockKey, error)
	sidecarReads int64
	sidecarErrs  int64
}

type cacheEntry struct {
	key        BlockKey
	prev, next *cacheEntry
	once       sync.Once
	blk        *Block
	err        error
	size       int64
	ready      bool // guarded by Cache.mu
}

// NewCache builds a cache bounded at maxBytes of retained decoded state
// (DefaultCacheBytes if maxBytes <= 0).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{max: maxBytes, entries: map[BlockKey]*cacheEntry{}}
}

// SetStore attaches the persistent columnar sidecar store misses
// consult before text decode (nil detaches it).
func (c *Cache) SetStore(s ColumnStore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = s
}

// OnSidecarError registers fn to be called whenever a sidecar read
// fails verification (once per failed load, outside the cache lock).
// The load itself proceeds on the text-decode path; the hook is where
// the server logs the corruption sentinel.
func (c *Cache) OnSidecarError(fn func(BlockKey, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onSidecarErr = fn
}

// CacheStats is a point-in-time counters snapshot.
type CacheStats struct {
	Hits, Misses int64
	Bytes        int64
	MaxBytes     int64
	Blocks       int
	// SidecarReads counts misses served from the persistent columnar
	// sidecar instead of a text decode; SidecarErrors counts sidecar
	// loads that failed verification and fell back to text.
	SidecarReads  int64
	SidecarErrors int64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Bytes: c.cur, MaxBytes: c.max, Blocks: len(c.entries),
		SidecarReads: c.sidecarReads, SidecarErrors: c.sidecarErrs,
	}
}

// Peek returns the block for key if it is already decoded, without
// triggering a decode. Samplers use it to adopt blocks another watch
// paid for before their own decode threshold is reached.
func (c *Cache) Peek(key BlockKey) (*Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.ready || e.err != nil {
		return nil, false
	}
	c.touch(e)
	c.hits++
	return e.blk, true
}

// Load returns the decoded block for key, loading it exactly once per
// key no matter how many goroutines ask: from the sidecar store when
// one covers the split, by text decode via r (bounded by fileSize)
// otherwise. Failed loads are not cached: the error is returned to
// every waiter of that flight and the next Load retries.
func (c *Cache) Load(r ReaderAt, fileSize int64, key BlockKey) (*Block, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.touch(e)
		if e.ready {
			c.hits++
		}
	} else {
		e = &cacheEntry{key: key}
		c.entries[key] = e
		c.pushFront(e)
		c.misses++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		blk, err := c.loadBlock(r, fileSize, key)
		c.mu.Lock()
		defer c.mu.Unlock()
		e.blk, e.err = blk, err
		e.ready = true
		if c.entries[key] != e {
			// The key was invalidated while this load was in flight (a
			// rewrite under the same path): serve the waiters, but do
			// not re-populate the cache under the dead key — and do not
			// account bytes the map no longer references.
			return
		}
		if err == nil {
			e.size = blk.SizeBytes()
			c.cur += e.size
			c.evictLocked(e)
		} else {
			// Do not cache failures: drop the entry so a later Load
			// (e.g. after the bad data is rewritten) retries.
			delete(c.entries, key)
			c.unlink(e)
		}
	})
	return e.blk, e.err
}

// loadBlock resolves one miss: sidecar first, text decode second.
func (c *Cache) loadBlock(r ReaderAt, fileSize int64, key BlockKey) (*Block, error) {
	c.mu.Lock()
	store, hook := c.store, c.onSidecarErr
	c.mu.Unlock()
	if store != nil {
		blk, ok, err := store.LoadColumns(key)
		switch {
		case err != nil:
			c.mu.Lock()
			c.sidecarErrs++
			c.mu.Unlock()
			if hook != nil {
				hook(key, err)
			}
		case ok:
			c.mu.Lock()
			c.sidecarReads++
			c.mu.Unlock()
			return blk, nil
		}
	}
	return Decode(r, key.Path, fileSize, key.Offset, key.Length, key.Format)
}

// InvalidatePath drops every block of path — the WriteFile/Rewrite
// hook. Version keying already protects correctness for ready blocks;
// dropping in-flight entries as well keeps a decode racing the rewrite
// from re-populating the cache under the dead (path, version) key.
func (c *Cache) InvalidatePath(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if key.Path != path {
			continue
		}
		delete(c.entries, key)
		c.unlink(e)
		c.cur -= e.size // in-flight entries have size 0 until accounted
	}
}

// evictLocked drops least-recently-used ready blocks until the budget
// holds, never evicting keep (the entry just loaded — a block larger
// than the whole budget must still be served once).
func (c *Cache) evictLocked(keep *cacheEntry) {
	e := c.tail
	for c.cur > c.max && e != nil {
		prev := e.prev
		if e != keep && e.ready && e.err == nil {
			delete(c.entries, e.key)
			c.unlink(e)
			c.cur -= e.size
		}
		e = prev
	}
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// LoadSplit decodes the split [off,+length) of path, through cache c
// when non-nil (keyed by the file's write version), directly otherwise.
func LoadSplit(c *Cache, r ReaderAt, path string, version, fileSize, off, length int64, f Format) (*Block, error) {
	if c == nil {
		return Decode(r, path, fileSize, off, length, f)
	}
	return c.Load(r, fileSize, BlockKey{Path: path, Version: version, Offset: off, Length: length, Format: f})
}
