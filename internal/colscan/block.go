package colscan

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
)

// ReaderAt is the positioned-read surface the decoder needs; the dfs
// file system satisfies it structurally (no import edge).
type ReaderAt interface {
	ReadAt(path string, off int64, p []byte) (int, error)
}

// extendChunk is the forward-read granularity when a record continues
// past the split body (the Hadoop last-record rule) — one extra
// positioned read per 64 KiB, charged like any other read.
const extendChunk = 64 << 10

// Block is one split, decoded once: absolute record-start offsets, a
// parsed value column, and (for FormatKV) dictionary-interned keys. A
// Block is immutable after Decode and safe for concurrent readers —
// the cache hands the same Block to every watch on the file.
type Block struct {
	format Format
	starts []int64 // absolute file offset of each record's first byte
	// lastEnd is the offset one past the final record's last content
	// byte (its newline, if terminated, sits at lastEnd).
	lastEnd int64
	vals    []float64
	keys    []uint32 // dict indices, FormatKV only
	dict    []string // interned key strings, FormatKV only
}

// NumRecords returns the number of records decoded from the split.
func (b *Block) NumRecords() int { return len(b.starts) }

// Start returns the absolute file offset of record i.
func (b *Block) Start(i int) int64 { return b.starts[i] }

// Value returns record i's parsed value.
func (b *Block) Value(i int) float64 { return b.vals[i] }

// Key returns record i's group key ("" under FormatNumeric).
func (b *Block) Key(i int) string {
	if b.format != FormatKV {
		return ""
	}
	return b.dict[b.keys[i]]
}

// RecLen returns the content length (excluding the newline) of record i
// — what the sampler's bytes-per-record estimate charges.
func (b *Block) RecLen(i int) int {
	if i+1 < len(b.starts) {
		return int(b.starts[i+1] - b.starts[i] - 1)
	}
	return int(b.lastEnd - b.starts[i])
}

// SizeBytes estimates the block's retained memory for cache accounting.
func (b *Block) SizeBytes() int64 {
	n := int64(len(b.starts))*16 + int64(len(b.keys))*4
	for _, k := range b.dict {
		n += int64(len(k)) + 16
	}
	return n + 64
}

// Values returns the block's parsed value column. The slice is shared
// with the block and must be treated as read-only: blocks are handed to
// every concurrent watch on the file.
func (b *Block) Values() []float64 { return b.vals }

// AppendKeys appends every record's interned key string to dst in file
// order (nothing under FormatNumeric). The appended strings are shared
// with the block's dictionary — no per-record allocation.
func (b *Block) AppendKeys(dst []string) []string {
	if b.format != FormatKV {
		return dst
	}
	for _, ki := range b.keys {
		dst = append(dst, b.dict[ki])
	}
	return dst
}

// AppendCols appends record i to out (value, plus key under FormatKV).
// The key string is shared with the block's dictionary — no allocation.
func (b *Block) AppendCols(out *Cols, i int) {
	out.Vals = append(out.Vals, b.vals[i])
	if b.format == FormatKV {
		out.Keys = append(out.Keys, b.dict[b.keys[i]])
	}
}

// AppendAll appends every record in the block to out, in file order.
func (b *Block) AppendAll(out *Cols) {
	out.Vals = append(out.Vals, b.vals...)
	if b.format == FormatKV {
		for _, ki := range b.keys {
			out.Keys = append(out.Keys, b.dict[ki])
		}
	}
}

// NewBlock builds a Block from pre-decoded columns — the entry point of
// the persistent columnar sidecar path (internal/colseg), where the
// columns were parsed and validated once at encode time and a cold read
// is a bounds-checked copy. The constructor re-checks every structural
// invariant Decode guarantees (column lengths agree, starts strictly
// ascending, dictionary indices in range, values finite), so a corrupt
// or hand-rolled sidecar can never smuggle a NaN or a misshapen block
// past the decode boundary. The slices are retained, not copied.
func NewBlock(f Format, starts []int64, lastEnd int64, vals []float64, keys []uint32, dict []string) (*Block, error) {
	if f != FormatNumeric && f != FormatKV {
		return nil, fmt.Errorf("colscan: no block format %d", f)
	}
	if len(vals) != len(starts) {
		return nil, fmt.Errorf("colscan: %d values for %d record starts", len(vals), len(starts))
	}
	for i, s := range starts {
		if s < 0 || (i > 0 && s <= starts[i-1]) {
			return nil, fmt.Errorf("colscan: record starts not ascending at %d", i)
		}
	}
	if n := len(starts); n > 0 && lastEnd < starts[n-1] {
		return nil, fmt.Errorf("colscan: lastEnd %d before final record start %d", lastEnd, starts[n-1])
	}
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("colscan: non-finite value at record %d", i)
		}
	}
	if f == FormatKV {
		if len(keys) != len(vals) {
			return nil, fmt.Errorf("colscan: %d keys for %d values", len(keys), len(vals))
		}
		for i, ki := range keys {
			if int(ki) >= len(dict) {
				return nil, fmt.Errorf("colscan: key index %d out of dictionary (%d) at record %d", ki, len(dict), i)
			}
		}
	} else if len(keys) != 0 || len(dict) != 0 {
		return nil, fmt.Errorf("colscan: key columns on a numeric block")
	}
	return &Block{format: f, starts: starts, lastEnd: lastEnd, vals: vals, keys: keys, dict: dict}, nil
}

// FindRecord returns the index of the record containing absolute file
// offset pos — the largest i with Start(i) <= pos, mirroring the dfs
// ReadLineAt rule that a newline belongs to the record it terminates.
// It returns -1 when pos precedes the block's first record (the tail of
// a record owned by the previous split); the caller falls back to the
// seek path for that draw.
func (b *Block) FindRecord(pos int64) int {
	lo, hi := 0, len(b.starts) // invariant: starts[lo-1] <= pos < starts[hi]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.starts[mid] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Decode scans the split [off, off+length) of path and parses every
// record that STARTS inside it, with the exact split semantics of the
// dfs LineReader: a split not at offset 0 skips the partial first line
// (reading from off-1, so a record boundary exactly at off is kept),
// and the final record may extend past the split end — the decoder
// follows it to its newline (or EOF). fileSize bounds the scan; for
// appended files pass the size the split set was built against.
//
// The whole split body is fetched with ONE positioned read (one
// simulated disk seek), which is where the decoded-block path wins over
// per-record ReadLineAt seeks.
//
//earl:hotpath
func Decode(r ReaderAt, path string, fileSize, off, length int64, format Format) (*Block, error) {
	if format == FormatNone {
		return nil, fmt.Errorf("colscan: cannot decode format None")
	}
	if off < 0 || length < 0 || off > fileSize {
		return nil, fmt.Errorf("colscan: split [%d,+%d) outside file of %d bytes", off, length, fileSize)
	}
	end := off + length
	if end > fileSize {
		end = fileSize
	}
	blk := &Block{format: format}
	// Read the split body in one call, starting one byte early so a
	// newline exactly at off-1 marks a record starting at off.
	lo := off
	if off > 0 {
		lo--
	}
	buf := make([]byte, end-lo)
	if len(buf) > 0 {
		if _, err := r.ReadAt(path, lo, buf); err != nil {
			return nil, fmt.Errorf("colscan: read %s [%d,+%d): %w", path, lo, len(buf), err)
		}
	}
	filled := end // file offset up to which buf holds data
	extend := func() error {
		if filled >= fileSize {
			return io.EOF
		}
		n := int64(extendChunk)
		if filled+n > fileSize {
			n = fileSize - filled
		}
		chunk := make([]byte, n)
		if _, err := r.ReadAt(path, filled, chunk); err != nil {
			return fmt.Errorf("colscan: read %s [%d,+%d): %w", path, filled, n, err)
		}
		buf = append(buf, chunk...)
		filled += n
		return nil
	}
	// Skip the partial first line: the first record of a non-initial
	// split starts after the first newline at or beyond off-1.
	cur := 0
	if off > 0 {
		for {
			i := bytes.IndexByte(buf[cur:], '\n')
			if i >= 0 {
				cur += i + 1
				break
			}
			cur = len(buf)
			if err := extend(); err != nil {
				if errors.Is(err, io.EOF) {
					return blk, nil // one unterminated line spans the split: no records start here
				}
				return nil, err
			}
		}
	}
	var intern map[string]uint32
	if format == FormatKV {
		intern = make(map[string]uint32)
	}
	for {
		start := lo + int64(cur)
		if start >= end {
			break // records must START strictly before the split end
		}
		nl := bytes.IndexByte(buf[cur:], '\n')
		for nl < 0 {
			err := extend()
			if errors.Is(err, io.EOF) {
				break // unterminated final record at EOF
			}
			if err != nil {
				return nil, err
			}
			nl = bytes.IndexByte(buf[cur:], '\n')
		}
		var line []byte
		if nl >= 0 {
			line = buf[cur : cur+nl]
			cur += nl + 1
		} else {
			line = buf[cur:]
			cur = len(buf)
		}
		blk.starts = append(blk.starts, start)
		blk.lastEnd = start + int64(len(line))
		if format == FormatKV {
			tab := bytes.IndexByte(line, '\t')
			if tab < 0 {
				return nil, fmt.Errorf("colscan: %s@%d: no tab separator in record %s: %w",
					path, start, quoteBytes(line), ErrBadRecord)
			}
			ki, ok := intern[string(line[:tab])]
			if !ok {
				ki = uint32(len(blk.dict))
				blk.dict = append(blk.dict, string(line[:tab]))
				intern[string(line[:tab])] = ki
			}
			v, err := ParseValue(line[tab+1:])
			if err != nil {
				return nil, fmt.Errorf("colscan: %s@%d: %w", path, start, err)
			}
			blk.keys = append(blk.keys, ki)
			blk.vals = append(blk.vals, v)
		} else {
			v, err := ParseValue(line)
			if err != nil {
				return nil, fmt.Errorf("colscan: %s@%d: %w", path, start, err)
			}
			blk.vals = append(blk.vals, v)
		}
		if nl < 0 {
			break // consumed the unterminated tail
		}
	}
	return blk, nil
}
