package colscan

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// referenceDecode is the oracle: split data into newline-terminated
// records (an unterminated tail is still a record) and run each through
// the per-record parser — exactly what the seek path does line by line.
func referenceDecode(data []byte, f Format) (*Cols, error) {
	cols := &Cols{}
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		if err := AppendParsedLine(cols, f, string(line)); err != nil {
			return nil, err
		}
	}
	return cols, nil
}

// FuzzColumnarDecode drives the block decoder against the per-record
// reference: same keys, same values (bit for bit), same record count,
// same accept/reject verdict — and a block decoded before an append
// replays bit-identically from the cache afterwards.
func FuzzColumnarDecode(f *testing.F) {
	f.Add([]byte("1\n2.5\n-3e2\n"), false, uint16(4))
	f.Add([]byte("a\t1\nbb\t2\na\t3.5\n"), true, uint16(4))
	f.Add([]byte("k\tNaN\n"), true, uint16(0))
	f.Add([]byte(" 7 \n+Inf\n"), false, uint16(2))
	f.Add([]byte("1"), false, uint16(1))
	f.Add([]byte("\n\n"), false, uint16(1))
	f.Add([]byte("key only\n"), true, uint16(9))
	f.Add([]byte("0x1p2\n1_0\n9007199254740993\n"), false, uint16(6))
	f.Fuzz(func(t *testing.T, data []byte, kv bool, cut uint16) {
		format := FormatNumeric
		if kv {
			format = FormatKV
		}
		mf := &memFile{data: data}
		blk, err := Decode(mf, "/fz", int64(len(data)), 0, int64(len(data)), format)
		want, wantErr := referenceDecode(data, format)
		if wantErr != nil {
			if err == nil {
				t.Fatalf("decoder accepted %q, reference rejects: %v", data, wantErr)
			}
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("decode error %v does not wrap ErrBadRecord", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("decoder rejected %q, reference accepts: %v", data, err)
		}
		if blk.NumRecords() != want.Len() {
			t.Fatalf("%d records, reference %d", blk.NumRecords(), want.Len())
		}
		var cols Cols
		blk.AppendAll(&cols)
		for i := 0; i < want.Len(); i++ {
			if math.Float64bits(cols.Vals[i]) != math.Float64bits(want.Vals[i]) {
				t.Fatalf("record %d: value %x vs reference %x", i, math.Float64bits(cols.Vals[i]), math.Float64bits(want.Vals[i]))
			}
			if format == FormatKV && cols.Keys[i] != want.Keys[i] {
				t.Fatalf("record %d: key %q vs reference %q", i, cols.Keys[i], want.Keys[i])
			}
		}

		// Append replay: decode a record-aligned prefix, append the rest
		// plus one more record, and the cached block must replay bit for
		// bit (the dfs append contract: the old content ends in '\n', so
		// no record spans the old EOF).
		pre := int(cut) % (len(data) + 1)
		if pre == 0 || data[pre-1] != '\n' {
			return
		}
		prefix := append([]byte(nil), data[:pre]...)
		pf := &memFile{data: prefix}
		c := NewCache(0)
		key := BlockKey{Path: "/fz", Version: 1, Offset: 0, Length: int64(pre), Format: format}
		before, err := c.Load(pf, int64(pre), key)
		if err != nil {
			return // a bad record inside the prefix: nothing to replay
		}
		pf.data = append(pf.data, data[pre:]...)
		pf.data = append(pf.data, "42\n"...)
		if kv {
			pf.data = append(pf.data, "k\t42\n"...)
		}
		after, err := c.Load(pf, int64(pre), key)
		if err != nil || after != before {
			t.Fatalf("cached block did not replay after append: %v", err)
		}
		fresh, err := Decode(pf, "/fz", int64(pre), 0, int64(pre), format)
		if err != nil {
			t.Fatalf("re-decode of stable prefix failed: %v", err)
		}
		if fresh.NumRecords() != before.NumRecords() {
			t.Fatalf("prefix re-decode: %d records vs %d", fresh.NumRecords(), before.NumRecords())
		}
		for i := 0; i < fresh.NumRecords(); i++ {
			if fresh.Start(i) != before.Start(i) ||
				math.Float64bits(fresh.Value(i)) != math.Float64bits(before.Value(i)) ||
				fresh.Key(i) != before.Key(i) {
				t.Fatalf("record %d drifted across append", i)
			}
		}
	})
}
