// Package colscan is the vectorized scan layer: it decodes a dfs split
// ONCE into columnar batches — record starts, a []float64 value column
// and (for the grouped route) dictionary-interned keys — so the engine
// can route whole columns through the batched reducer entry points
// instead of boxing one float64 per record. It is also the single home
// of record validation: NaN/±Inf values and malformed lines are
// rejected here, wrapping ErrBadRecord, for every caller (the §3.3
// error path surfaces poisoned records instead of letting them corrupt
// an order-statistic dictionary).
//
// The package is dependency-free (stdlib only): dfs, core, live and
// sampling all sit above it, and the dfs file system satisfies its
// ReaderAt without an import edge.
package colscan

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Format selects the record shape the decoder parses.
type Format uint8

const (
	// FormatNone means "no columnar decode": the caller stays on the
	// per-record path (custom user parsers the decoder cannot mirror).
	FormatNone Format = iota
	// FormatNumeric is one float64 per line (workload.DecodeLine).
	FormatNumeric
	// FormatKV is "key\tvalue" per line (core.TabKV).
	FormatKV
)

// ErrBadRecord is the errors.Is-able sentinel wrapped by every decode
// failure: malformed lines and non-finite (NaN/±Inf) values. One
// poisoned record fails the run cleanly instead of corrupting the
// estimate.
var ErrBadRecord = errors.New("bad record")

// maxQuote bounds how much of a malformed record an error message
// quotes: a multi-MB line (a truncated append with no trailing newline)
// must not balloon error files or logs.
const maxQuote = 64

// Quote renders s for an error message, truncating the quoted content
// to a bounded prefix.
func Quote(s string) string {
	if len(s) <= maxQuote {
		return strconv.Quote(s)
	}
	return strconv.Quote(s[:maxQuote]) + fmt.Sprintf("… (%d bytes total)", len(s))
}

func quoteBytes(b []byte) string { return Quote(string(b)) }

// Cols is one decoded batch: parallel key/value columns. Keys is empty
// for FormatNumeric batches. The zero value is ready to use.
type Cols struct {
	Keys []string
	Vals []float64
}

// Len returns the number of records in the batch.
func (c *Cols) Len() int { return len(c.Vals) }

// Reset empties the batch, retaining capacity.
func (c *Cols) Reset() {
	c.Keys = c.Keys[:0]
	c.Vals = c.Vals[:0]
}

// AppendParsedLine parses one record line under f and appends it to c —
// the per-record fallback that shares the columnar decoder's validation
// (same values bit for bit, same ErrBadRecord class).
func AppendParsedLine(c *Cols, f Format, line string) error {
	switch f {
	case FormatNumeric:
		v, err := ParseValueString(line)
		if err != nil {
			return err
		}
		c.Vals = append(c.Vals, v)
		return nil
	case FormatKV:
		k, v, err := ParseKVString(line)
		if err != nil {
			return err
		}
		c.Keys = append(c.Keys, k)
		c.Vals = append(c.Vals, v)
		return nil
	default:
		return fmt.Errorf("colscan: no parser for format %d", f)
	}
}

// ParseKVString splits one "key\tvalue" record. The key is everything
// before the first tab, untrimmed (grouped keys are byte-exact); the
// value goes through the shared numeric validation.
func ParseKVString(line string) (string, float64, error) {
	i := strings.IndexByte(line, '\t')
	if i < 0 {
		return "", 0, fmt.Errorf("colscan: no tab separator in record %s: %w", Quote(line), ErrBadRecord)
	}
	v, err := ParseValueString(line[i+1:])
	if err != nil {
		return "", 0, err
	}
	return line[:i], v, nil
}

// ParseValueString is ParseValue over a string (no copy).
func ParseValueString(s string) (float64, error) {
	return parseValue(s)
}

// ParseValue parses one numeric field: surrounding whitespace is
// trimmed (strings.TrimSpace semantics), the number is parsed with
// strconv.ParseFloat semantics, and non-finite results (NaN, ±Inf) are
// rejected. All failures wrap ErrBadRecord.
func ParseValue(b []byte) (float64, error) {
	return parseValue(bstr(b))
}

// bstr views b as a string without copying. The view never escapes a
// parse call and the underlying bytes are immutable for its duration.
func bstr(b []byte) string { return string(b) }

func parseValue(s string) (float64, error) {
	t := trimSpace(s)
	if len(t) == 0 {
		return 0, fmt.Errorf("colscan: empty value in record %s: %w", Quote(s), ErrBadRecord)
	}
	v, ok := fastFloat(t)
	if !ok {
		var err error
		v, err = strconv.ParseFloat(t, 64)
		if err != nil {
			return 0, fmt.Errorf("colscan: bad value %s: %w", Quote(t), ErrBadRecord)
		}
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("colscan: non-finite value %s: %w", Quote(t), ErrBadRecord)
	}
	return v, nil
}

// asciiSpace marks the ASCII characters unicode.IsSpace accepts — the
// same table strings.TrimSpace fast-paths on.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// trimSpace trims leading/trailing whitespace with strings.TrimSpace
// semantics, without allocating for pure-ASCII input. If a non-ASCII
// byte survives at either boundary, the stdlib does the (rare) Unicode
// trim so the result is byte-identical.
func trimSpace(s string) string {
	lo, hi := 0, len(s)
	for lo < hi && asciiSpace[s[lo]] {
		lo++
	}
	for hi > lo && asciiSpace[s[hi-1]] {
		hi--
	}
	s = s[lo:hi]
	if len(s) > 0 && (s[0] >= 0x80 || s[len(s)-1] >= 0x80) {
		return strings.TrimSpace(s)
	}
	return s
}

// pow10 holds the exactly-representable powers of ten (10^0..10^22).
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// fastFloat parses t on the Clinger exact path: when the decimal
// mantissa fits in 53 bits and the decimal exponent is within ±22, both
// operands of a single float multiply/divide are exactly representable,
// so the IEEE-correctly-rounded result equals the correctly-rounded
// decimal — bit-identical to strconv.ParseFloat, which takes the same
// shortcut. Anything outside that envelope (long mantissas, hex floats,
// underscores, huge exponents) reports !ok and falls back to strconv.
func fastFloat(t string) (float64, bool) {
	i := 0
	neg := false
	switch t[0] {
	case '+':
		i = 1
	case '-':
		neg = true
		i = 1
	}
	var mant uint64
	digits := 0
	frac := 0
	sawDigit := false
	sawDot := false
	for ; i < len(t); i++ {
		c := t[i]
		if c >= '0' && c <= '9' {
			sawDigit = true
			if digits >= 19 {
				return 0, false // mantissa would overflow uint64
			}
			mant = mant*10 + uint64(c-'0')
			digits++
			if sawDot {
				frac++
			}
			continue
		}
		if c == '.' && !sawDot {
			sawDot = true
			continue
		}
		break
	}
	if !sawDigit {
		return 0, false
	}
	exp := 0
	if i < len(t) && (t[i] == 'e' || t[i] == 'E') {
		i++
		esign := 1
		if i < len(t) && (t[i] == '+' || t[i] == '-') {
			if t[i] == '-' {
				esign = -1
			}
			i++
		}
		if i >= len(t) {
			return 0, false
		}
		for ; i < len(t); i++ {
			c := t[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			if exp < 10000 {
				exp = exp*10 + int(c-'0')
			}
		}
		exp *= esign
	}
	if i != len(t) {
		return 0, false // trailing bytes: strconv decides (and errors)
	}
	e10 := exp - frac
	if mant >= 1<<53 || e10 < -22 || e10 > 22 {
		return 0, false
	}
	v := float64(mant)
	switch {
	case e10 > 0:
		v *= pow10[e10]
	case e10 < 0:
		v /= pow10[-e10]
	}
	if neg {
		v = -v
	}
	return v, true
}
