package colscan

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// memFile is the stdlib-only ReaderAt stub the decoder tests run
// against (the real dfs satisfies the same interface structurally).
type memFile struct{ data []byte }

func (m *memFile) ReadAt(path string, off int64, p []byte) (int, error) {
	if off < 0 || off > int64(len(m.data)) {
		return 0, fmt.Errorf("memFile: offset %d outside %d bytes", off, len(m.data))
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("memFile: short read at %d", off)
	}
	return n, nil
}

// TestParseValueMatchesStrconv pins the fast path to strconv.ParseFloat
// bit for bit: for every input, either both parse to the identical
// float64 or both reject (non-finite results reject on our side).
func TestParseValueMatchesStrconv(t *testing.T) {
	inputs := []string{
		"0", "1", "-1", "+1", "1.5", "-2.25", "0.1", "3.14159265358979",
		" 7 ", "\t8\r\n", "1e3", "1E-3", "-4.5e+2", "9e22", "1e23", "1e-22",
		"1e-23", "123456789.123456789", "9007199254740991", "9007199254740993",
		"12345678901234567890123", "0.000000000000000000001",
		"1e308", "1e309", "-1e309", "0x1p3", "0x1.8p1", "1_000", ".5", "5.",
		"", " ", "abc", "1.2.3", "1e", "1e+", "--1", "NaN", "nan", "+Inf",
		"-Inf", "Infinity", "1e10000", "00042", "000.125", "  -0  ",
		"184467440737095516160", "17976931348623157e292",
	}
	for _, in := range inputs {
		got, gotErr := ParseValueString(in)
		want, wantErr := strconv.ParseFloat(strings.TrimSpace(in), 64)
		reject := wantErr != nil || math.IsNaN(want) || math.IsInf(want, 0)
		if reject {
			if gotErr == nil {
				t.Errorf("ParseValue(%q) = %v, want rejection", in, got)
			} else if !errors.Is(gotErr, ErrBadRecord) {
				t.Errorf("ParseValue(%q) error %v does not wrap ErrBadRecord", in, gotErr)
			}
			continue
		}
		if gotErr != nil {
			t.Errorf("ParseValue(%q) unexpected error: %v", in, gotErr)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("ParseValue(%q) = %x, strconv = %x", in, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestQuoteBounded pins the error-message satellite: a multi-MB record
// is quoted as a bounded prefix, never verbatim.
func TestQuoteBounded(t *testing.T) {
	long := strings.Repeat("x", 1<<20)
	q := Quote(long)
	if len(q) > 200 {
		t.Fatalf("Quote of 1 MiB line is %d bytes", len(q))
	}
	if !strings.Contains(q, fmt.Sprintf("%d bytes total", 1<<20)) {
		t.Fatalf("Quote lost the total length: %s", q)
	}
	if got := Quote("short"); got != strconv.Quote("short") {
		t.Fatalf("short Quote = %s", got)
	}
	_, err := ParseValueString(long)
	if err == nil || len(err.Error()) > 300 {
		t.Fatalf("parse error not bounded: %v bytes", len(err.Error()))
	}
}

// TestParseKVString pins the grouped record contract: the key is the
// byte-exact prefix before the first tab, and a missing separator is an
// ErrBadRecord.
func TestParseKVString(t *testing.T) {
	k, v, err := ParseKVString(" host 1 \t2.5")
	if err != nil || k != " host 1 " || v != 2.5 {
		t.Fatalf("ParseKVString = %q %v %v", k, v, err)
	}
	if _, _, err := ParseKVString("no separator"); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("missing tab: %v", err)
	}
	if _, _, err := ParseKVString("k\tNaN"); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("NaN value: %v", err)
	}
	// Tabs are whitespace to the value trim: the value is everything
	// after the FIRST tab.
	k, v, err = ParseKVString("k\t\t3")
	if err != nil || k != "k" || v != 3 {
		t.Fatalf("double tab = %q %v %v", k, v, err)
	}
}

// decodeWhole decodes the full file as one split.
func decodeWhole(t *testing.T, data string, f Format) *Block {
	t.Helper()
	blk, err := Decode(&memFile{data: []byte(data)}, "/f", int64(len(data)), 0, int64(len(data)), f)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return blk
}

// TestDecodeSplitSemantics pins the decoder to the dfs LineReader split
// rules: records belong to the split they START in, a non-initial split
// skips its partial first line, and the final record follows its line
// past the split end.
func TestDecodeSplitSemantics(t *testing.T) {
	data := "1\n22\n333\n4444\n55555\n"
	lines := []string{"1", "22", "333", "4444", "55555"}
	starts := []int64{0, 2, 5, 9, 14}
	fsize := int64(len(data))
	mf := &memFile{data: []byte(data)}
	// Sweep every (off, length) split of the file: the union of records
	// across a partition must be exactly the file, with no duplicates.
	for _, split := range []int64{1, 2, 3, 5, 7, fsize} {
		var got []int64
		var vals []float64
		for off := int64(0); off < fsize; off += split {
			blk, err := Decode(mf, "/f", fsize, off, split, FormatNumeric)
			if err != nil {
				t.Fatalf("split=%d off=%d: %v", split, off, err)
			}
			for i := 0; i < blk.NumRecords(); i++ {
				got = append(got, blk.Start(i))
				vals = append(vals, blk.Value(i))
			}
		}
		if len(got) != len(lines) {
			t.Fatalf("split=%d: %d records, want %d (%v)", split, len(got), len(lines), got)
		}
		for i := range got {
			want, _ := strconv.ParseFloat(lines[i], 64)
			if got[i] != starts[i] || vals[i] != want {
				t.Fatalf("split=%d rec=%d: start=%d val=%v, want %d %v", split, i, got[i], vals[i], starts[i], want)
			}
		}
	}
	// Unterminated final record is still a record.
	blk := decodeWhole(t, "1\n2", FormatNumeric)
	if blk.NumRecords() != 2 || blk.Value(1) != 2 {
		t.Fatalf("unterminated tail: %+v", blk)
	}
	if blk.RecLen(1) != 1 {
		t.Fatalf("tail RecLen = %d", blk.RecLen(1))
	}
}

// TestDecodeKVInternsKeys pins the dictionary route: repeated keys share
// one interned string.
func TestDecodeKVInternsKeys(t *testing.T) {
	blk := decodeWhole(t, "a\t1\nb\t2\na\t3\n", FormatKV)
	if blk.NumRecords() != 3 {
		t.Fatalf("records = %d", blk.NumRecords())
	}
	if len(blk.dict) != 2 {
		t.Fatalf("dict = %v", blk.dict)
	}
	if blk.Key(0) != "a" || blk.Key(1) != "b" || blk.Key(2) != "a" {
		t.Fatalf("keys = %q %q %q", blk.Key(0), blk.Key(1), blk.Key(2))
	}
	var cols Cols
	blk.AppendAll(&cols)
	if cols.Len() != 3 || cols.Keys[2] != "a" || cols.Vals[2] != 3 {
		t.Fatalf("AppendAll = %+v", cols)
	}
}

// TestDecodeRejectsBadRecords: malformed and non-finite records fail
// the whole decode with an ErrBadRecord-wrapping error naming the
// record's offset.
func TestDecodeRejectsBadRecords(t *testing.T) {
	for _, tc := range []struct {
		data string
		f    Format
	}{
		{"1\nNaN\n3\n", FormatNumeric},
		{"1\n+Inf\n3\n", FormatNumeric},
		{"1\nx\n3\n", FormatNumeric},
		{"a\t1\nb2\n", FormatKV},
		{"a\t1\nb\tNaN\n", FormatKV},
	} {
		mf := &memFile{data: []byte(tc.data)}
		_, err := Decode(mf, "/f", int64(len(tc.data)), 0, int64(len(tc.data)), tc.f)
		if !errors.Is(err, ErrBadRecord) {
			t.Errorf("Decode(%q) = %v, want ErrBadRecord", tc.data, err)
		}
	}
}

// TestFindRecord pins the binary search to the ReadLineAt ownership
// rule: offset pos belongs to the last record starting at or before it.
func TestFindRecord(t *testing.T) {
	blk := decodeWhole(t, "1\n22\n333\n", FormatNumeric) // starts 0, 2, 5
	want := []int{0, 0, 1, 1, 1, 2, 2, 2, 2}
	for pos, w := range want {
		if got := blk.FindRecord(int64(pos)); got != w {
			t.Errorf("FindRecord(%d) = %d, want %d", pos, got, w)
		}
	}
	// A block whose first record starts after pos reports -1.
	sub, err := Decode(&memFile{data: []byte("1\n22\n333\n")}, "/f", 9, 3, 6, FormatNumeric)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRecords() != 1 || sub.Start(0) != 5 {
		t.Fatalf("sub block: %+v", sub)
	}
	if got := sub.FindRecord(3); got != -1 {
		t.Fatalf("FindRecord before first record = %d, want -1", got)
	}
}

// TestCacheSharesDecodes: one miss per key, hits after; eviction keeps
// the budget; a failed decode is not cached (a rewritten file retries).
func TestCacheSharesDecodes(t *testing.T) {
	data := "1\n2\n3\n"
	mf := &memFile{data: []byte(data)}
	c := NewCache(1 << 20)
	key := BlockKey{Path: "/f", Version: 1, Offset: 0, Length: int64(len(data)), Format: FormatNumeric}
	b1, err := c.Load(mf, int64(len(data)), key)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Load(mf, int64(len(data)), key)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("second Load decoded again")
	}
	if got, ok := c.Peek(key); !ok || got != b1 {
		t.Fatal("Peek missed a ready block")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits < 2 {
		t.Fatalf("stats = %+v", st)
	}
	// A different version is a different block.
	key2 := key
	key2.Version = 2
	b3, err := c.Load(mf, int64(len(data)), key2)
	if err != nil {
		t.Fatal(err)
	}
	if b3 == b1 {
		t.Fatal("version change did not re-decode")
	}
	// Failed decodes are not retained.
	bad := &memFile{data: []byte("x\n")}
	badKey := BlockKey{Path: "/bad", Version: 1, Offset: 0, Length: 2, Format: FormatNumeric}
	if _, err := c.Load(bad, 2, badKey); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad load: %v", err)
	}
	if _, ok := c.Peek(badKey); ok {
		t.Fatal("failed decode cached")
	}
	fixed := &memFile{data: []byte("7\n")}
	blk, err := c.Load(fixed, 2, badKey)
	if err != nil || blk.Value(0) != 7 {
		t.Fatalf("retry after failure: %v %v", blk, err)
	}
}

// TestCacheEvictsLRU: inserting past the budget drops the
// least-recently-used block but never the one being returned.
func TestCacheEvictsLRU(t *testing.T) {
	line := strings.Repeat("7", 128) + "e-100\n"
	data := strings.Repeat(line, 64)
	mf := &memFile{data: []byte(data)}
	one, err := Decode(mf, "/f", int64(len(data)), 0, int64(len(data)), FormatNumeric)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(3 * one.SizeBytes())
	for v := int64(1); v <= 8; v++ {
		key := BlockKey{Path: "/f", Version: v, Offset: 0, Length: int64(len(data)), Format: FormatNumeric}
		if _, err := c.Load(mf, int64(len(data)), key); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > 3*one.SizeBytes() {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, 3*one.SizeBytes())
	}
	if _, ok := c.Peek(BlockKey{Path: "/f", Version: 1, Offset: 0, Length: int64(len(data)), Format: FormatNumeric}); ok {
		t.Fatal("oldest block survived eviction")
	}
	if _, ok := c.Peek(BlockKey{Path: "/f", Version: 8, Offset: 0, Length: int64(len(data)), Format: FormatNumeric}); !ok {
		t.Fatal("newest block evicted")
	}
	c.InvalidatePath("/f")
	if got := c.Stats().Bytes; got != 0 {
		t.Fatalf("InvalidatePath left %d bytes", got)
	}
}

// TestCachedBlockReplaysAfterAppend pins the version-keying argument:
// appends add bytes past the old EOF without touching existing offsets,
// so a block decoded before the append replays bit-identically from the
// cache after it — and matches a fresh decode of the same split.
func TestCachedBlockReplaysAfterAppend(t *testing.T) {
	base := "1.5\n2.5\n3.5\n"
	mf := &memFile{data: []byte(base)}
	c := NewCache(0)
	key := BlockKey{Path: "/f", Version: 1, Offset: 0, Length: int64(len(base)), Format: FormatNumeric}
	before, err := c.Load(mf, int64(len(base)), key)
	if err != nil {
		t.Fatal(err)
	}
	// Append (dfs.Append requires the prior content to end in a newline,
	// so no record spans the old EOF; the version stays the same).
	mf.data = append(mf.data, "4.5\n5.5\n"...)
	after, err := c.Load(mf, int64(len(base)), key)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatal("append invalidated an immutable block")
	}
	fresh, err := Decode(mf, "/f", int64(len(base)), 0, int64(len(base)), FormatNumeric)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.NumRecords() != before.NumRecords() {
		t.Fatalf("fresh decode: %d records, cached %d", fresh.NumRecords(), before.NumRecords())
	}
	for i := 0; i < fresh.NumRecords(); i++ {
		if fresh.Start(i) != before.Start(i) ||
			math.Float64bits(fresh.Value(i)) != math.Float64bits(before.Value(i)) {
			t.Fatalf("record %d drifted after append", i)
		}
	}
}

// TestLoadSplitNilCache: LoadSplit without a cache decodes directly.
func TestLoadSplitNilCache(t *testing.T) {
	data := "1\n2\n"
	blk, err := LoadSplit(nil, &memFile{data: []byte(data)}, "/f", 1, int64(len(data)), 0, int64(len(data)), FormatNumeric)
	if err != nil || blk.NumRecords() != 2 {
		t.Fatalf("LoadSplit(nil cache) = %v %v", blk, err)
	}
}
