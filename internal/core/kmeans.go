package core

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/jobs"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/workload"
)

// KMeansOptions tunes RunKMeans.
type KMeansOptions struct {
	Sigma             float64 // target cv of the per-point clustering cost; 0.05 if 0
	B                 int     // bootstraps for the cost distribution; 30 if 0
	InitialSample     int     // starting sample size; max(1000, 100·K) if 0
	MaxSampleFraction float64 // expansion cap; 0.5 if 0
	SplitSize         int64
	Seed              uint64
}

func (o KMeansOptions) withDefaults(k int) KMeansOptions {
	if o.Sigma <= 0 {
		o.Sigma = 0.05
	}
	if o.B <= 0 {
		o.B = 30
	}
	if o.InitialSample <= 0 {
		o.InitialSample = 100 * k
		if o.InitialSample < 1000 {
			o.InitialSample = 1000
		}
	}
	if o.MaxSampleFraction <= 0 {
		o.MaxSampleFraction = 0.5
	}
	return o
}

// KMeansReport is the outcome of an early K-Means run.
type KMeansReport struct {
	Centers     []workload.Point
	CostPerPt   float64 // mean squared distance to nearest center, on the sample
	CV          float64 // bootstrap cv of CostPerPt at termination
	SampleSize  int
	Iterations  int // EARL expansion iterations (not Lloyd iterations)
	LloydIters  int // Lloyd iterations of the final fit
	Converged   bool
	EstTotalPts int64
}

// RunKMeans is EARL applied to the advanced-mining workload of §6.3: the
// unmodified K-Means algorithm runs over a uniform sample of the point
// file, and the bootstrap attaches an error estimate to the clustering
// cost. While cv > σ the sample doubles (with the smaller-data
// convergence bonus the paper highlights: fewer Lloyd iterations per
// try). The stock-Hadoop comparison for Fig. 7 is jobs.KMeans.FitMR.
func RunKMeans(env *Env, path string, kcfg jobs.KMeans, opts KMeansOptions) (KMeansReport, error) {
	if env == nil || env.FS == nil {
		return KMeansReport{}, errors.New("core: incomplete Env")
	}
	opts = opts.withDefaults(kcfg.K)
	sampler, err := sampling.NewPreMap(env.FS, path, opts.SplitSize, opts.Seed)
	if err != nil {
		return KMeansReport{}, err
	}
	env.Metrics.JobStartups.Add(1) // EARL's K-Means is one long-lived job
	env.Metrics.MapTasks.Add(1)
	env.Metrics.ReduceTasks.Add(1)

	rng := rand.New(rand.NewPCG(opts.Seed, 0xab1c5ed5da6d8118))
	var pts []workload.Point
	target := opts.InitialSample
	rep := KMeansReport{}
	for iter := 1; ; iter++ {
		rep.Iterations = iter
		need := target - len(pts)
		if need > 0 {
			recs, err := sampler.Sample(need)
			if err != nil && !errors.Is(err, sampling.ErrExhausted) {
				return rep, err
			}
			for _, r := range recs {
				p, perr := workload.DecodePoint(r.Line)
				if perr != nil {
					return rep, fmt.Errorf("core: kmeans parse: %w", perr)
				}
				pts = append(pts, p)
			}
		}
		if len(pts) < kcfg.K {
			return rep, fmt.Errorf("core: only %d points sampled for K=%d", len(pts), kcfg.K)
		}
		fit, err := kcfg.Fit(pts)
		if err != nil {
			return rep, err
		}
		// Lloyd passes over the sample are the job's CPU cost.
		env.Metrics.RecordsReduced.Add(int64(len(pts)) * int64(fit.Iterations))

		// Bootstrap the per-point cost of the fitted centers.
		values := make([]float64, opts.B)
		buf := make([]workload.Point, len(pts))
		for b := 0; b < opts.B; b++ {
			for j := range buf {
				buf[j] = pts[rng.IntN(len(pts))]
			}
			values[b] = jobs.WCSSOf(fit.Centers, buf) / float64(len(buf))
		}
		env.Metrics.RecordsReduced.Add(int64(len(pts)) * int64(opts.B))
		cv, err := stats.CV(values)
		if err != nil {
			return rep, err
		}
		cost, _ := stats.Mean(values)

		rep.Centers = fit.Centers
		rep.CostPerPt = cost
		rep.CV = cv
		rep.SampleSize = len(pts)
		rep.LloydIters = fit.Iterations
		rep.EstTotalPts = sampler.EstimatedTotalRecords()
		if cv <= opts.Sigma {
			rep.Converged = true
			return rep, nil
		}
		maxPts := int(opts.MaxSampleFraction * float64(rep.EstTotalPts))
		next := target * 2
		if next > maxPts {
			next = maxPts
		}
		if next <= target {
			return rep, nil // cap reached; report achieved accuracy
		}
		target = next
	}
}
