package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/delta"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/mr"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// seedForKey derives a group's resampling seed from the run seed and the
// key alone — never from the order keys were first observed in, which
// depends on goroutine scheduling. This is what makes grouped runs (and
// their maintained refreshes) reproducible for a fixed seed.
func seedForKey(seed uint64, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed + h.Sum64()
}

// NewGroupMaintainer creates the delta-maintained resample set for one
// group key under the run's seeding contract. Exported so a grouped
// maintained query (internal/live) can open groups that first appear in
// appended data with exactly the seed the initial run would have used.
func NewGroupMaintainer(env *Env, job jobs.Numeric, key string, b int, opts Options) (*delta.Maintainer, error) {
	return delta.New(delta.Config{
		Reducer: job.Reducer, B: b,
		Seed:    seedForKey(opts.Seed, key),
		Metrics: env.Metrics, Key: key,
		Parallelism: opts.Parallelism,
	})
}

// ParseKV decodes one input line into a (group key, value) pair — the
// native shape of MapReduce data ("key\tvalue" lines by default).
type ParseKV func(line string) (key string, value float64, err error)

// TabKV parses the "key\tvalue" records produced by workload.KVSpec.
func TabKV(line string) (string, float64, error) {
	i := strings.IndexByte(line, '\t')
	if i < 0 {
		return "", 0, fmt.Errorf("core: record %q has no tab", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
	if err != nil {
		return "", 0, fmt.Errorf("core: bad value in %q: %w", line, err)
	}
	return line[:i], v, nil
}

// MinGroupSample is the smallest per-group sample before a group's cv
// is trusted: below it the error is treated as +Inf so the expansion
// loop keeps sampling. Shared by the in-run grouped reducer and the
// maintained grouped query's refresh loop.
const MinGroupSample = 8

// GroupResult is one group's early estimate.
type GroupResult struct {
	Estimate   float64
	CV         float64
	SampleSize int
}

// GroupedReport is the outcome of a grouped early run.
type GroupedReport struct {
	Job        string
	Groups     map[string]GroupResult
	Iterations int
	Converged  bool // every (sufficiently sampled) group reached σ
	SampleSize int  // total records consumed
	FailedMaps int
}

// RunGrouped is EARL for per-key aggregates — the natural MapReduce
// workload the paper's driver treats as a single global statistic. Each
// reduce partition maintains one resample set per group key; the job
// terminates when every group's error is at or below σ. Expansion uses
// the same error-file feedback protocol as Run, with each reducer
// publishing the worst (largest) cv across its groups.
//
// Planning note: SSABE assumes one statistic, so grouped mode sizes its
// initial sample from the pilot's distinct-key count (≈64 records per
// group, floored at MinPilot) and relies on the expansion loop — a
// documented extension beyond the paper.
func RunGrouped(env *Env, job jobs.Numeric, parse ParseKV, path string, opts Options) (GroupedReport, error) {
	rep, _, err := RunGroupedLive(env, job, parse, path, opts)
	return rep, err
}

// GroupedLiveState is the retained working state of one grouped sampled
// run: every group's delta-maintained resample set (flattened across
// reduce partitions) plus the per-mapper sampling streams — what a
// grouped maintained query needs to stay fresh under appended data.
type GroupedLiveState struct {
	Maints      map[string]*delta.Maintainer
	Sources     []RecordSource
	EstTotal    int64
	SyncedBytes int64
	B           int
	Opts        Options // with defaults applied
}

// RunGroupedLive is RunGrouped, additionally returning the run's retained
// state for maintained (continuous-ingest) queries.
func RunGroupedLive(env *Env, job jobs.Numeric, parse ParseKV, path string, opts Options) (GroupedReport, *GroupedLiveState, error) {
	opts = opts.withDefaults()
	if env == nil || env.FS == nil || env.Engine == nil {
		return GroupedReport{}, nil, errors.New("core: incomplete Env")
	}
	if job.Reducer == nil {
		return GroupedReport{}, nil, errors.New("core: job needs a Reducer")
	}
	if parse == nil {
		return GroupedReport{}, nil, errors.New("core: RunGrouped needs a ParseKV")
	}
	size, err := env.FS.Stat(path)
	if err != nil {
		return GroupedReport{}, nil, err
	}

	// Pilot: estimate the distinct-key count to size the initial target.
	pilotSampler, err := sampling.NewPreMap(env.FS, path, opts.SplitSize, opts.Seed)
	if err != nil {
		return GroupedReport{}, nil, err
	}
	probe, err := pilotSampler.Sample(512)
	if err != nil && !errors.Is(err, sampling.ErrExhausted) {
		return GroupedReport{}, nil, err
	}
	keys := map[string]struct{}{}
	for _, r := range probe {
		k, _, perr := parse(r.Line)
		if perr != nil {
			return GroupedReport{}, nil, fmt.Errorf("core: pilot parse: %w", perr)
		}
		keys[k] = struct{}{}
	}
	if len(keys) == 0 {
		return GroupedReport{}, nil, errors.New("core: no records found")
	}
	estTotal := pilotSampler.EstimatedTotalRecords()

	b := opts.ForceB
	if b <= 1 {
		b = 30
	}
	initialN := opts.ForceN
	if initialN <= 0 {
		initialN = 64 * len(keys)
		if initialN < opts.MinPilot {
			initialN = opts.MinPilot
		}
	}
	maxSample := int64(opts.MaxSampleFraction * float64(estTotal))
	if maxSample < int64(initialN) {
		maxSample = int64(initialN)
	}

	splits, err := env.FS.Splits(path, opts.SplitSize)
	if err != nil {
		return GroupedReport{}, nil, err
	}
	m := opts.NumMappers
	if m > len(splits) {
		m = len(splits)
	}
	if m < 1 {
		m = 1
	}
	owned := make([][]dfs.Split, m)
	for i, sp := range splits {
		owned[i%m] = append(owned[i%m], sp)
	}
	sources, err := NewRecordSources(env, path, owned, opts, 0)
	if err != nil {
		return GroupedReport{}, nil, err
	}
	r := 2 // grouped mode exercises the partitioned path
	if r > len(keys) {
		r = 1
	}

	ctrl := &mr.Controller{}
	ctrl.RequestExpansion(int64(initialN))
	errPrefix := fmt.Sprintf("/earl/run-%d/%s-grouped/errors/", env.NextRunID(), job.Name)
	defer cleanupErrorFiles(env.FS, errPrefix)

	var emitted, received atomic.Int64
	var exhausted atomic.Int32
	sent := make([]atomic.Int64, m)
	dry := make([]atomic.Bool, m)
	var gen atomic.Int64

	type partState struct {
		mu     sync.Mutex
		maints map[string]*delta.Maintainer
	}
	parts := make([]*partState, r)
	for p := range parts {
		parts[p] = &partState{maints: map[string]*delta.Maintainer{}}
	}

	worstCV := func(ps *partState) float64 {
		worst := 0.0
		for _, mt := range ps.maints {
			if mt.N() < MinGroupSample {
				return math.Inf(1)
			}
			cv, err := mt.CV()
			if err != nil {
				return math.Inf(1)
			}
			if cv > worst {
				worst = cv
			}
		}
		if len(ps.maints) == 0 {
			return math.Inf(1)
		}
		return worst
	}

	groupedMapLoop := func(ctx *mr.MapStream, idx int) error {
		var lastGen int64
		const batch = 128
		for {
			if ctx.Terminated() {
				if !ctx.NodeAlive() {
					return fmt.Errorf("core: node died under mapper %d", idx)
				}
				return nil
			}
			target := ctrl.ExpansionTarget()
			share := shareOf(target, m, idx)
			if !dry[idx].Load() && sent[idx].Load() < share {
				k := share - sent[idx].Load()
				if k > batch {
					k = batch
				}
				lines, err := sources[idx].Draw(int(k))
				for _, line := range lines {
					key, v, perr := parse(line)
					if perr != nil {
						return fmt.Errorf("core: mapper %d parse: %w", idx, perr)
					}
					ctx.Emit(key, v)
					sent[idx].Add(1)
					emitted.Add(1)
				}
				if errors.Is(err, sampling.ErrExhausted) {
					dry[idx].Store(true)
					exhausted.Add(1)
				} else if err != nil {
					return err
				}
				continue
			}
			avg, g, ok := readErrors(env.FS, errPrefix)
			if ok && g > lastGen {
				lastGen = g
				if avg <= opts.Sigma {
					ctrl.Terminate()
					return nil
				}
				next := doubledTarget(int64(initialN), g)
				if next > maxSample {
					next = maxSample
				}
				if next > target {
					ctrl.RequestExpansion(next)
					continue
				}
				if target >= maxSample {
					ctrl.Terminate()
					return nil
				}
				continue
			}
			runtime.Gosched()
			time.Sleep(100 * time.Microsecond)
		}
	}

	sjob := &mr.StreamJob{
		Name:        "earl-grouped-" + job.Name,
		NumMappers:  m,
		NumReducers: r,
		Control:     ctrl,
		MapTask: func(ctx *mr.MapStream, idx int) error {
			err := groupedMapLoop(ctx, idx)
			if err != nil && !dry[idx].Swap(true) {
				// Like the global driver: a failed mapper delivers nothing
				// more, so account it as dry and let the survivors settle.
				exhausted.Add(1)
			}
			return err
		},
		ReduceTask: func(part int, in <-chan mr.KV) error {
			ps := parts[part]
			buf := map[string][]float64{}
			bufN := 0
			growAll := func() error {
				ps.mu.Lock()
				defer ps.mu.Unlock()
				// Iterate keys in sorted order and grow each group with a
				// sorted delta: the per-generation multiset is
				// deterministic, but map iteration and reducer arrival
				// order are not, and resample updates consume seeded rng
				// draws — canonical ordering keeps fixed-seed grouped runs
				// reproducible.
				keys := make([]string, 0, len(buf))
				for key := range buf {
					keys = append(keys, key)
				}
				sort.Strings(keys)
				for _, key := range keys {
					vals := buf[key]
					mt, ok := ps.maints[key]
					if !ok {
						var err error
						mt, err = NewGroupMaintainer(env, job, key, b, opts)
						if err != nil {
							return err
						}
						ps.maints[key] = mt
					}
					if len(vals) > 0 {
						sort.Float64s(vals)
						if err := mt.Grow(vals); err != nil {
							return err
						}
					}
				}
				buf = map[string][]float64{}
				bufN = 0
				g := gen.Add(1)
				cv := worstCV(ps)
				ctrl.PublishError(cv)
				return env.FS.WriteFile(
					fmt.Sprintf("%spart-%d", errPrefix, part),
					formatErrorFile(errorFile{CV: cv, Gen: g}))
			}
			for kv := range in {
				v, ok := kv.Value.(float64)
				if !ok {
					return fmt.Errorf("core: grouped reducer got %T", kv.Value)
				}
				buf[kv.Key] = append(buf[kv.Key], v)
				bufN++
				received.Add(1)
				target := ctrl.ExpansionTarget()
				if received.Load() >= target ||
					(received.Load() == emitted.Load() && allSettled(sent, dry, target, m)) {
					if err := growAll(); err != nil {
						return err
					}
				}
			}
			if bufN > 0 {
				if err := growAll(); err != nil {
					return err
				}
			}
			return nil
		},
	}

	stopWatch := make(chan struct{})
	go func() {
		watchdog(stopWatch, ctrl, &exhausted, &received, &emitted, &gen, m,
			func(target int64) bool { return allSettled(sent, dry, target, m) })
	}()
	sres, err := env.Engine.RunPipelined(sjob)
	close(stopWatch)
	if err != nil {
		return GroupedReport{}, nil, err
	}

	maints := map[string]*delta.Maintainer{}
	for _, ps := range parts {
		ps.mu.Lock()
		for key, mt := range ps.maints {
			maints[key] = mt
		}
		ps.mu.Unlock()
	}
	rep, err := GroupedReportFrom(job, opts, maints)
	if err != nil {
		return rep, nil, err
	}
	rep.Iterations = int(gen.Load())
	rep.FailedMaps = len(sres.FailedMappers)
	st := &GroupedLiveState{
		Maints:      maints,
		Sources:     sources,
		EstTotal:    estTotal,
		SyncedBytes: size,
		B:           b,
		Opts:        opts,
	}
	return rep, st, nil
}

// GroupedReportFrom assembles per-group results from the maintained resample
// sets (shared by the initial grouped run and every live refresh).
func GroupedReportFrom(job jobs.Numeric, opts Options, maints map[string]*delta.Maintainer) (GroupedReport, error) {
	rep := GroupedReport{
		Job:       job.Name,
		Groups:    map[string]GroupResult{},
		Converged: true,
	}
	for key, mt := range maints {
		vals, err := mt.Results()
		if err != nil {
			return rep, err
		}
		est, err := stats.Mean(vals)
		if err != nil {
			return rep, err
		}
		cv, cvErr := mt.CV()
		if cvErr != nil {
			cv = math.Inf(1)
		}
		rep.Groups[key] = GroupResult{Estimate: est, CV: cv, SampleSize: mt.N()}
		rep.SampleSize += mt.N()
		if cv > opts.Sigma {
			rep.Converged = false
		}
	}
	if len(rep.Groups) == 0 {
		return rep, errors.New("core: grouped run produced no groups")
	}
	return rep, nil
}

// SortedGroupKeys returns the report's keys in order, for stable output.
func (g GroupedReport) SortedGroupKeys() []string {
	keys := make([]string, 0, len(g.Groups))
	for k := range g.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
