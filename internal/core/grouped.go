package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/delta"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/mr"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// ParseKV decodes one input line into a (group key, value) pair — the
// native shape of MapReduce data ("key\tvalue" lines by default).
type ParseKV func(line string) (key string, value float64, err error)

// TabKV parses the "key\tvalue" records produced by workload.KVSpec.
func TabKV(line string) (string, float64, error) {
	i := strings.IndexByte(line, '\t')
	if i < 0 {
		return "", 0, fmt.Errorf("core: record %q has no tab", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
	if err != nil {
		return "", 0, fmt.Errorf("core: bad value in %q: %w", line, err)
	}
	return line[:i], v, nil
}

// GroupResult is one group's early estimate.
type GroupResult struct {
	Estimate   float64
	CV         float64
	SampleSize int
}

// GroupedReport is the outcome of a grouped early run.
type GroupedReport struct {
	Job        string
	Groups     map[string]GroupResult
	Iterations int
	Converged  bool // every (sufficiently sampled) group reached σ
	SampleSize int  // total records consumed
	FailedMaps int
}

// RunGrouped is EARL for per-key aggregates — the natural MapReduce
// workload the paper's driver treats as a single global statistic. Each
// reduce partition maintains one resample set per group key; the job
// terminates when every group's error is at or below σ. Expansion uses
// the same error-file feedback protocol as Run, with each reducer
// publishing the worst (largest) cv across its groups.
//
// Planning note: SSABE assumes one statistic, so grouped mode sizes its
// initial sample from the pilot's distinct-key count (≈64 records per
// group, floored at MinPilot) and relies on the expansion loop — a
// documented extension beyond the paper.
func RunGrouped(env *Env, job jobs.Numeric, parse ParseKV, path string, opts Options) (GroupedReport, error) {
	opts = opts.withDefaults()
	if env == nil || env.FS == nil || env.Engine == nil {
		return GroupedReport{}, errors.New("core: incomplete Env")
	}
	if job.Reducer == nil {
		return GroupedReport{}, errors.New("core: job needs a Reducer")
	}
	if parse == nil {
		return GroupedReport{}, errors.New("core: RunGrouped needs a ParseKV")
	}

	// Pilot: estimate the distinct-key count to size the initial target.
	pilotSampler, err := sampling.NewPreMap(env.FS, path, opts.SplitSize, opts.Seed)
	if err != nil {
		return GroupedReport{}, err
	}
	probe, err := pilotSampler.Sample(512)
	if err != nil && !errors.Is(err, sampling.ErrExhausted) {
		return GroupedReport{}, err
	}
	keys := map[string]struct{}{}
	for _, r := range probe {
		k, _, perr := parse(r.Line)
		if perr != nil {
			return GroupedReport{}, fmt.Errorf("core: pilot parse: %w", perr)
		}
		keys[k] = struct{}{}
	}
	if len(keys) == 0 {
		return GroupedReport{}, errors.New("core: no records found")
	}
	estTotal := pilotSampler.EstimatedTotalRecords()

	b := opts.ForceB
	if b <= 1 {
		b = 30
	}
	initialN := opts.ForceN
	if initialN <= 0 {
		initialN = 64 * len(keys)
		if initialN < opts.MinPilot {
			initialN = opts.MinPilot
		}
	}
	maxSample := int64(opts.MaxSampleFraction * float64(estTotal))
	if maxSample < int64(initialN) {
		maxSample = int64(initialN)
	}

	splits, err := env.FS.Splits(path, opts.SplitSize)
	if err != nil {
		return GroupedReport{}, err
	}
	m := opts.NumMappers
	if m > len(splits) {
		m = len(splits)
	}
	if m < 1 {
		m = 1
	}
	owned := make([][]dfs.Split, m)
	for i, sp := range splits {
		owned[i%m] = append(owned[i%m], sp)
	}
	r := 2 // grouped mode exercises the partitioned path
	if r > len(keys) {
		r = 1
	}

	ctrl := &mr.Controller{}
	ctrl.RequestExpansion(int64(initialN))
	errPrefix := "/earl/" + job.Name + "-grouped/errors/"
	for _, p := range env.FS.List(errPrefix) {
		if err := env.FS.Delete(p); err != nil {
			return GroupedReport{}, err
		}
	}

	var emitted, received, buffered atomic.Int64
	var exhausted atomic.Int32
	sent := make([]atomic.Int64, m)
	dry := make([]atomic.Bool, m)
	var gen atomic.Int64

	type partState struct {
		mu     sync.Mutex
		maints map[string]*delta.Maintainer
		seed   uint64
	}
	parts := make([]*partState, r)
	for p := range parts {
		parts[p] = &partState{maints: map[string]*delta.Maintainer{}, seed: opts.Seed + uint64(p)*31}
	}

	// minGroup is the smallest per-group sample before a cv is trusted.
	const minGroup = 8

	worstCV := func(ps *partState) float64 {
		worst := 0.0
		for _, mt := range ps.maints {
			if mt.N() < minGroup {
				return math.Inf(1)
			}
			cv, err := mt.CV()
			if err != nil {
				return math.Inf(1)
			}
			if cv > worst {
				worst = cv
			}
		}
		if len(ps.maints) == 0 {
			return math.Inf(1)
		}
		return worst
	}

	sjob := &mr.StreamJob{
		Name:        "earl-grouped-" + job.Name,
		NumMappers:  m,
		NumReducers: r,
		Control:     ctrl,
		MapTask: func(ctx *mr.MapStream, idx int) error {
			sampler, err := sampling.NewPreMapOwned(env.FS, path, owned[idx], opts.Seed+uint64(idx)*7907)
			if err != nil {
				return err
			}
			var lastGen int64
			const batch = 128
			for {
				if ctx.Terminated() {
					if !ctx.NodeAlive() {
						return fmt.Errorf("core: node died under mapper %d", idx)
					}
					return nil
				}
				target := ctrl.ExpansionTarget()
				share := shareOf(target, m, idx)
				if !dry[idx].Load() && sent[idx].Load() < share {
					k := share - sent[idx].Load()
					if k > batch {
						k = batch
					}
					recs, err := sampler.Sample(int(k))
					for _, rec := range recs {
						key, v, perr := parse(rec.Line)
						if perr != nil {
							return fmt.Errorf("core: mapper %d parse: %w", idx, perr)
						}
						ctx.Emit(key, v)
						sent[idx].Add(1)
						emitted.Add(1)
					}
					if errors.Is(err, sampling.ErrExhausted) {
						dry[idx].Store(true)
						exhausted.Add(1)
					} else if err != nil {
						return err
					}
					continue
				}
				avg, g, ok := readErrors(env.FS, errPrefix)
				if ok && g > lastGen {
					lastGen = g
					if avg <= opts.Sigma {
						ctrl.Terminate()
						return nil
					}
					next := doubledTarget(int64(initialN), g)
					if next > maxSample {
						next = maxSample
					}
					if next > target {
						ctrl.RequestExpansion(next)
						continue
					}
					if target >= maxSample {
						ctrl.Terminate()
						return nil
					}
					continue
				}
				runtime.Gosched()
				time.Sleep(100 * time.Microsecond)
			}
		},
		ReduceTask: func(part int, in <-chan mr.KV) error {
			ps := parts[part]
			buf := map[string][]float64{}
			bufN := 0
			growAll := func() error {
				ps.mu.Lock()
				defer ps.mu.Unlock()
				for key, vals := range buf {
					mt, ok := ps.maints[key]
					if !ok {
						var err error
						mt, err = delta.New(delta.Config{
							Reducer: job.Reducer, B: b,
							Seed:    ps.seed + uint64(len(ps.maints))*97,
							Metrics: env.Metrics, Key: key,
							Parallelism: opts.Parallelism,
						})
						if err != nil {
							return err
						}
						ps.maints[key] = mt
					}
					if len(vals) > 0 {
						if err := mt.Grow(vals); err != nil {
							return err
						}
					}
				}
				buf = map[string][]float64{}
				bufN = 0
				g := gen.Add(1)
				cv := worstCV(ps)
				ctrl.PublishError(cv)
				return env.FS.WriteFile(
					fmt.Sprintf("%spart-%d", errPrefix, part),
					formatErrorFile(errorFile{CV: cv, Gen: g}))
			}
			for kv := range in {
				v, ok := kv.Value.(float64)
				if !ok {
					return fmt.Errorf("core: grouped reducer got %T", kv.Value)
				}
				buf[kv.Key] = append(buf[kv.Key], v)
				bufN++
				received.Add(1)
				buffered.Add(1)
				target := ctrl.ExpansionTarget()
				if received.Load() >= target ||
					(received.Load() == emitted.Load() && allSettled(sent, dry, target, m)) {
					if err := growAll(); err != nil {
						return err
					}
					buffered.Store(0)
				}
			}
			if bufN > 0 {
				if err := growAll(); err != nil {
					return err
				}
				buffered.Store(0)
			}
			return nil
		},
	}

	stopWatch := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			if int(exhausted.Load()) == m &&
				received.Load() == emitted.Load() &&
				buffered.Load() == 0 {
				ctrl.Terminate()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	sres, err := env.Engine.RunPipelined(sjob)
	close(stopWatch)
	if err != nil {
		return GroupedReport{}, err
	}

	rep := GroupedReport{
		Job:        job.Name,
		Groups:     map[string]GroupResult{},
		Iterations: int(gen.Load()),
		Converged:  true,
		FailedMaps: len(sres.FailedMappers),
	}
	for _, ps := range parts {
		ps.mu.Lock()
		for key, mt := range ps.maints {
			vals, err := mt.Results()
			if err != nil {
				ps.mu.Unlock()
				return rep, err
			}
			est, err := stats.Mean(vals)
			if err != nil {
				ps.mu.Unlock()
				return rep, err
			}
			cv, cvErr := mt.CV()
			if cvErr != nil {
				cv = math.Inf(1)
			}
			rep.Groups[key] = GroupResult{Estimate: est, CV: cv, SampleSize: mt.N()}
			rep.SampleSize += mt.N()
			if cv > opts.Sigma {
				rep.Converged = false
			}
		}
		ps.mu.Unlock()
	}
	if len(rep.Groups) == 0 {
		return rep, errors.New("core: grouped run produced no groups")
	}
	return rep, nil
}

// SortedGroupKeys returns the report's keys in order, for stable output.
func (g GroupedReport) SortedGroupKeys() []string {
	keys := make([]string, 0, len(g.Groups))
	for k := range g.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
