package core

import (
	"errors"
	"fmt"

	"repro/internal/colscan"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/plan"
	"repro/internal/sampling"
)

// Grouped runs are a thin adapter over the generic engine: the records'
// own keys route them to per-partition groupSinks (one resample set per
// group), and only the planning step — sizing the initial sample from
// the pilot's distinct-key count — is grouped-specific.

// RunGrouped is EARL for per-key aggregates — the natural MapReduce
// workload the paper's driver treats as a single global statistic. Each
// reduce partition maintains one resample set per group key; the job
// terminates when every group's error is at or below σ. Expansion uses
// the same error-file feedback protocol as Run, with each reducer
// publishing the worst (largest) cv across its groups.
//
// Planning note: SSABE assumes one statistic, so grouped mode sizes its
// initial sample from the pilot's distinct-key count (≈64 records per
// group, floored at MinPilot) and relies on the expansion loop — a
// documented extension beyond the paper.
func RunGrouped(env *Env, job jobs.Numeric, route Route, path string, opts Options) (GroupedReport, error) {
	rep, _, err := RunGroupedLive(env, job, route, path, opts)
	return rep, err
}

// GroupedLiveState is the retained working state of one grouped sampled
// run: every group's delta-maintained resample set (flattened across
// reduce partitions) plus the per-mapper sampling streams — what a
// grouped maintained query needs to stay fresh under appended data.
type GroupedLiveState struct {
	Maints      map[string]*delta.Maintainer
	Sources     []RecordSource
	EstTotal    int64
	SyncedBytes int64
	B           int
	Opts        Options // with defaults applied
}

// RunGroupedLive is RunGrouped, additionally returning the run's retained
// state for maintained (continuous-ingest) queries.
func RunGroupedLive(env *Env, job jobs.Numeric, route Route, path string, opts Options) (GroupedReport, *GroupedLiveState, error) {
	return runGroupedLive(env, job, route, path, opts, nil)
}

// runGroupedLive is the grouped driver. A non-nil prog replaces the
// route entirely: records decode under the plan's input format, the
// pushed-down σ/π/γ kernels transform them, and the emitted group keys
// are the plan's labels — route may be zero in that case.
func runGroupedLive(env *Env, job jobs.Numeric, route Route, path string, opts Options, prog *plan.Program) (GroupedReport, *GroupedLiveState, error) {
	opts = opts.withDefaults()
	if env == nil || env.FS == nil || env.Engine == nil {
		return GroupedReport{}, nil, errors.New("core: incomplete Env")
	}
	if job.Reducer == nil {
		return GroupedReport{}, nil, errors.New("core: job needs a Reducer")
	}
	if route.Parse == nil && prog == nil {
		return GroupedReport{}, nil, errors.New("core: RunGrouped needs a Route")
	}
	format := route.Format
	routeParse := route.Parse
	if prog != nil {
		format = prog.InputFormat()
		routeParse = func(string) (string, float64, error) {
			return "", 0, errors.New("core: plan runs use the columnar path")
		}
	}
	size, err := env.View().Stat(path)
	if err != nil {
		return GroupedReport{}, nil, err
	}

	// Pilot: estimate the distinct-key count to size the initial target.
	pilotSampler, err := sampling.NewPreMap(env.View(), path, opts.SplitSize, opts.Seed)
	if err != nil {
		return GroupedReport{}, nil, err
	}
	if format != colscan.FormatNone {
		if err := pilotSampler.EnableColumnar(env.Scan, format); err != nil {
			return GroupedReport{}, nil, err
		}
	}
	keys := map[string]struct{}{}
	kept := 0
	switch {
	case prog != nil:
		// Draw raw records through the plan until 512 survive (or the
		// file is dry): the distinct labels — and the selectivity — both
		// come from the post-filter stream the run is actually about.
		sc := plan.NewScratch()
		var raw, out colscan.Cols
		for need := 512; need > 0; {
			raw.Reset()
			got, serr := pilotSampler.SampleCols(need, &raw)
			if got > 0 {
				k, aerr := prog.Apply(sc, &raw, &out, false)
				if aerr != nil {
					return GroupedReport{}, nil, aerr
				}
				need -= k
			}
			if errors.Is(serr, sampling.ErrExhausted) {
				break
			} else if serr != nil {
				return GroupedReport{}, nil, serr
			}
		}
		kept = out.Len()
		for _, k := range out.Keys {
			keys[k] = struct{}{}
		}
	case format != colscan.FormatNone:
		var cols colscan.Cols
		if _, err := pilotSampler.SampleCols(512, &cols); err != nil && !errors.Is(err, sampling.ErrExhausted) {
			return GroupedReport{}, nil, err
		}
		for _, k := range cols.Keys {
			keys[k] = struct{}{}
		}
	default:
		probe, err := pilotSampler.Sample(512)
		if err != nil && !errors.Is(err, sampling.ErrExhausted) {
			return GroupedReport{}, nil, err
		}
		for _, r := range probe {
			k, _, perr := route.Parse(r.Line)
			if perr != nil {
				return GroupedReport{}, nil, fmt.Errorf("core: pilot parse: %w", perr)
			}
			keys[k] = struct{}{}
		}
	}
	// Pilot reads are charged like any other mapper delivery (see the
	// scalar driver) so grouped runs account their planning cost too.
	env.Metrics.RecordsRead.Add(int64(pilotSampler.Taken()))
	if len(keys) == 0 {
		if prog != nil && prog.HasFilter() {
			return GroupedReport{}, nil, errors.New("core: no records matched filter")
		}
		return GroupedReport{}, nil, errors.New("core: no records found")
	}
	estTotal := pilotSampler.EstimatedTotalRecords()
	if prog != nil && prog.HasFilter() {
		// Effective (subpopulation) total, as in the scalar driver.
		if taken := pilotSampler.Taken(); taken > 0 {
			estTotal = int64(float64(estTotal) * float64(kept) / float64(taken))
			if estTotal < 1 {
				estTotal = 1
			}
		}
	}

	b := opts.ForceB
	if b <= 1 {
		b = 30
	}
	initialN := opts.ForceN
	if initialN <= 0 {
		initialN = 64 * len(keys)
		if initialN < opts.MinPilot {
			initialN = opts.MinPilot
		}
	}
	maxSample := int64(opts.MaxSampleFraction * float64(estTotal))
	if maxSample < int64(initialN) {
		maxSample = int64(initialN)
	}
	r := 2 // grouped mode exercises the partitioned path
	if r > len(keys) {
		r = 1
	}
	parts := make([]*groupSink, r)
	sinks := make([]ResultSink, r)
	for p := range parts {
		parts[p] = newGroupSink(env, job, b, opts)
		sinks[p] = parts[p]
	}

	res, err := runEngine(env, path, opts, engineSpec{
		Name:     "earl-grouped-" + job.Name,
		ErrTag:   job.Name + "-grouped",
		Route:    routeParse,
		Sinks:    sinks,
		InitialN: int64(initialN),
		MaxN:     maxSample,
		Format:   format,
		Keyed:    true,
		Prog:     prog,
	})
	if err != nil {
		return GroupedReport{}, nil, err
	}

	maints := map[string]*delta.Maintainer{}
	for _, ps := range parts {
		for key, mt := range ps.maints {
			maints[key] = mt
		}
	}
	rep, err := GroupedReportFrom(job, opts, maints)
	if err != nil {
		return rep, nil, err
	}
	rep.Iterations = res.Generations
	rep.FailedMaps = res.FailedMaps
	st := &GroupedLiveState{
		Maints:      maints,
		Sources:     res.Sources,
		EstTotal:    estTotal,
		SyncedBytes: size,
		B:           b,
		Opts:        opts,
	}
	return rep, st, nil
}
