package core

import (
	"fmt"

	"repro/internal/colscan"
	"repro/internal/dfs"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/sampling"
	"repro/internal/simcost"
)

// RecordSource is one mapper's retained sampling stream over its owned
// splits. Draw extends the without-replacement sample by up to k lines
// (returning the lines drawn plus sampling.ErrExhausted once the owned
// region is dry) and Weight is proportional to the number of records the
// source covers, so a uniform draw across several sources can be
// apportioned by weight. Sources outlive the job that created them: a
// maintained query (internal/live) keeps drawing from them across ingest
// batches, which is what preserves the without-replacement guarantee
// between the initial answer and later refreshes.
type RecordSource interface {
	Draw(k int) ([]string, error)
	Weight() int64
}

// ColSource is a RecordSource that can additionally deliver draws as
// parsed columns — the vectorized scan path. DrawCols appends up to k
// records to out and reports how many; the record sequence under a
// fixed seed is identical to Draw's (either entry point may consume the
// stream at any point).
type ColSource interface {
	RecordSource
	DrawCols(k int, out *colscan.Cols) (int, error)
}

// preMapSource wraps the Algorithm 2 sampler. Draws are charged as
// mapper input records (the records delivered to the sampling mapper).
type preMapSource struct {
	s       *sampling.PreMap
	metrics *simcost.Metrics
}

func (p preMapSource) Draw(k int) ([]string, error) {
	recs, err := p.s.Sample(k)
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = r.Line
	}
	if p.metrics != nil {
		p.metrics.RecordsRead.Add(int64(len(lines)))
	}
	return lines, err
}

func (p preMapSource) DrawCols(k int, out *colscan.Cols) (int, error) {
	n, err := p.s.SampleCols(k, out)
	if p.metrics != nil {
		p.metrics.RecordsRead.Add(int64(n))
	}
	return n, err
}

func (p preMapSource) Weight() int64 { return p.s.OwnedBytes() }

// errSource is a source whose region could not be scanned (e.g. a block
// with no live replica during post-map pool filling). Every Draw returns
// the scan error, so the owning mapper task fails and is tolerated as a
// lost mapper (§3.4) — exactly as if the scan had failed inside the map
// task — instead of the whole run aborting.
type errSource struct{ err error }

func (e errSource) Draw(int) ([]string, error)               { return nil, e.err }
func (e errSource) DrawCols(int, *colscan.Cols) (int, error) { return 0, e.err }
func (e errSource) Weight() int64                            { return 0 }

// postMapSource wraps the Algorithm 1 pooled sampler. The pool-filling
// scan already charged every record as mapper input; draws come from
// memory.
type postMapSource struct{ s *sampling.PostMap }

func (p postMapSource) Draw(k int) ([]string, error) {
	recs, err := p.s.Draw(k)
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = r.Value
	}
	return lines, err
}

func (p postMapSource) Weight() int64 { return int64(p.s.Total()) }

// postMapColsSource wraps the columnar post-map pool: decoded split
// blocks instead of per-record string pairs. Built only when the run's
// route has a columnar format; its Draw degrades to an error because
// the engine always takes DrawCols on such runs.
type postMapColsSource struct{ s *sampling.PostMapCols }

func (p postMapColsSource) Draw(int) ([]string, error) {
	return nil, fmt.Errorf("core: columnar post-map source has no line path")
}

func (p postMapColsSource) DrawCols(k int, out *colscan.Cols) (int, error) {
	return p.s.DrawCols(k, out)
}

func (p postMapColsSource) Weight() int64 { return int64(p.s.Total()) }

// xformColSource pushes a compiled plan into a sampling stream: draws
// from the inner source are raw records, the program's vectorized
// kernels filter/derive/label them, and only surviving transformed
// records reach the caller — so k means "k post-filter records" and
// every expansion target upstream is denominated in effective
// (subpopulation) records. prefiltered marks inner streams whose σ
// already ran at pool-fill time (AddBlockKept), where the rejection
// loop degenerates to a single transform pass.
//
// Plans are columnar by construction (a Program always has a concrete
// input format), so the per-record Draw path degrades to an error like
// postMapColsSource's.
type xformColSource struct {
	inner       ColSource
	prog        *plan.Program
	prefiltered bool
	sc          *plan.Scratch
	raw         colscan.Cols
}

func (x *xformColSource) Draw(int) ([]string, error) {
	return nil, fmt.Errorf("core: plan sources have no line path")
}

func (x *xformColSource) DrawCols(k int, out *colscan.Cols) (int, error) {
	got := 0
	for got < k {
		// Ask for the remaining shortfall in raw records. Under a
		// selective σ one raw batch yields fewer than asked, so loop;
		// chunking does not change the inner draw sequence (a stream
		// drawn 10+10 equals one drawn 20).
		x.raw.Reset()
		n, err := x.inner.DrawCols(k-got, &x.raw)
		if n > 0 {
			kept, aerr := x.prog.Apply(x.sc, &x.raw, out, x.prefiltered)
			if aerr != nil {
				return got, aerr
			}
			got += kept
		}
		if err != nil {
			return got, err // sampling.ErrExhausted passes through
		}
	}
	return got, nil
}

// Weight stays proportional to the records the source covers: a
// prefiltered pool counts exactly its kept records; a pre-map stream
// keeps its byte weight (selectivity is assumed uniform across owned
// regions, as record density already is).
func (x *xformColSource) Weight() int64 { return x.inner.Weight() }

// NewRecordSources builds one retained sampling stream per mapper over
// the given split ownership, per opts.Sampler. seedSalt decorrelates
// streams built for different ingest generations of the same maintained
// run (0 for the initial run); determinism follows the engine-wide
// contract — streams depend only on (Seed, seedSalt, mapper index).
//
// A non-None format puts the sources on the vectorized scan path:
// pre-map samplers resolve hot splits against decoded blocks (shared
// through env.Scan) and post-map pools hold block references instead of
// parsed string pairs. FormatNone (a custom parser the decoder cannot
// mirror) keeps the per-record path.
//
// For post-map sampling this performs the full scan of the owned splits
// (Algorithm 1 pools every record before drawing), with the per-mapper
// scans running concurrently as they would inside the map tasks. A scan
// failure (e.g. a block with no live replica) yields an errSource for
// that mapper rather than failing construction, preserving the §3.4
// behaviour: the mapper fails, the run finishes on surviving data.
//
// A non-nil prog pushes the compiled plan into every stream: post-map
// pools are filled through the vectorized σ kernel (only surviving
// records of each cached decoded block are pooled — the block itself is
// shared and never re-decoded or mutated), and every stream is wrapped
// so draws deliver transformed post-filter records.
func NewRecordSources(env *Env, path string, owned [][]dfs.Split, opts Options, seedSalt uint64, format colscan.Format, prog *plan.Program) ([]RecordSource, error) {
	view := env.View()
	var version, size int64
	if format != colscan.FormatNone && opts.Sampler == PostMapSampling {
		var err error
		if version, err = view.Version(path); err != nil {
			return nil, err
		}
		if size, err = view.Stat(path); err != nil {
			return nil, err
		}
	}
	sources := make([]RecordSource, len(owned))
	err := pool.ForEach(len(owned), len(owned), func(idx int) error {
		wrap := func(inner ColSource, prefiltered bool) RecordSource {
			if prog == nil {
				return inner
			}
			return &xformColSource{inner: inner, prog: prog, prefiltered: prefiltered, sc: plan.NewScratch()}
		}
		switch {
		case opts.Sampler == PostMapSampling && format != colscan.FormatNone:
			pmap := sampling.NewPostMapCols(opts.Seed + seedSalt + uint64(idx)*7919)
			var keepScratch []int32
			var keepSc *plan.Scratch
			if prog != nil && prog.HasFilter() {
				keepSc = plan.NewScratch()
			}
			for _, sp := range owned[idx] {
				blk, err := colscan.LoadSplit(env.Scan, view, path, version, size, sp.Offset, sp.Length, format)
				if err != nil {
					sources[idx] = errSource{err: err}
					return nil
				}
				// The pool conceptually delivered every decoded record
				// to this mapper, exactly like the line-pool scan.
				env.Metrics.RecordsRead.Add(int64(blk.NumRecords()))
				if keepSc != nil {
					keepScratch = prog.KeepBlock(keepSc, blk, keepScratch[:0])
					pmap.AddBlockKept(blk, keepScratch)
				} else {
					pmap.AddBlock(blk)
				}
			}
			sources[idx] = wrap(postMapColsSource{s: pmap}, keepSc != nil)
		case opts.Sampler == PostMapSampling:
			pmap := sampling.NewPostMap(opts.Seed + seedSalt + uint64(idx)*7919)
			for _, sp := range owned[idx] {
				rd, err := view.NewLineReader(sp, 0)
				if err != nil {
					sources[idx] = errSource{err: err}
					return nil
				}
				for rd.Next() {
					pmap.Add(fmt.Sprintf("%d", rd.RecordOffset()), rd.Text())
					env.Metrics.RecordsRead.Add(1)
				}
				if rd.Err() != nil {
					sources[idx] = errSource{err: rd.Err()}
					return nil
				}
			}
			sources[idx] = postMapSource{s: pmap}
		default: // pre-map
			sampler, err := sampling.NewPreMapOwned(view, path, owned[idx], opts.Seed+seedSalt+uint64(idx)*104729)
			if err != nil {
				return err
			}
			if format != colscan.FormatNone {
				if err := sampler.EnableColumnar(env.Scan, format); err != nil {
					return err
				}
			}
			sources[idx] = wrap(preMapSource{s: sampler, metrics: env.Metrics}, false)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sources, nil
}

// Repinner is implemented by sources whose draws read the DFS through a
// pinned view. Repin re-points them — after a snapshot-pinned build,
// back at the live filesystem, BEFORE the snapshot is released: a
// released snapshot's versions may be pruned, so keeping it would turn
// later draws into not-found errors.
type Repinner interface {
	Repin(v dfs.View)
}

func (p preMapSource) Repin(v dfs.View) { p.s.Repin(v) }

func (x *xformColSource) Repin(v dfs.View) {
	if r, ok := x.inner.(Repinner); ok {
		r.Repin(v)
	}
}

// RepinSources re-points every view-pinned source (post-map pools hold
// their records in memory and need none).
func RepinSources(sources []RecordSource, v dfs.View) {
	for _, s := range sources {
		if r, ok := s.(Repinner); ok {
			r.Repin(v)
		}
	}
}
