// Package core is EARL itself: the Early Accurate Result Library driver
// that ties the substrates together into the paper's architecture
// (Fig. 1) —
//
//	sampling stage  →  user's job on B resamples  →  accuracy estimation
//	        ↑  expand Δs and iterate while cv > σ  ↓
//
// A Run proceeds exactly as §2–§4 describe:
//
//  1. A pilot sample is drawn and SSABE (§3.2) estimates the number of
//     bootstraps B and the sample size n in cheap local mode, before any
//     cluster job starts. If B×n ≥ N the driver falls back to the exact
//     job over the full data set.
//  2. A pipelined MR job starts: long-lived mapper tasks sample records
//     from their owned splits (pre-map, Algorithm 2) or from pooled
//     parsed records (post-map, Algorithm 1) and push them to the
//     reducer while running.
//  3. The reducer maintains B bootstrap resamples and their incremental
//     states (delta maintenance, §4.1), and after each growth writes the
//     current error and a timestamp to an error file on the DFS.
//  4. Mappers poll the error files (the reducer→mapper feedback layer of
//     §2.1/§3.3), and either terminate the job — accuracy reached — or
//     actively expand the sample and keep feeding.
//  5. The final result is corrected for the sampling fraction p via the
//     user job's correct() and reported with its cv and a percentile
//     confidence interval.
//
// Node failures during the job do not abort it: surviving data yields a
// result with its achieved accuracy (§3.4).
//
// # One generic engine
//
// Every sampled run — scalar, multi-statistic and grouped — executes on
// ONE generic pipeline (engine.go): the long-lived sampling mappers,
// the error-file feedback loop, the doubling expansion schedule and the
// watchdog are written once, parameterized over two small abstractions.
// A ParseKV routes each input line to a (reduce key, value) pair, and a
// ResultSink per reduce partition folds canonically-ordered growth
// deltas and answers the current error estimate (sinks.go). The scalar
// driver is the one-key degenerate case (statSink: one resample set per
// statistic, all fed the shared sample); grouped runs route records by
// their own keys into per-group resample sets (groupSink). RunMulti
// rides the same engine to answer several statistics from one pilot,
// one sample and one pass over the records — per-statistic SSABE plans
// (the sample runs at the largest planned n, every statistic's B is its
// own) with per-statistic reports, at the IO cost of the single most
// demanding statistic.
package core

import (
	"fmt"
	"log"
	"math"
	"sync/atomic"

	"repro/internal/colscan"
	"repro/internal/colseg"
	"repro/internal/dfs"
	"repro/internal/mr"
	"repro/internal/simcost"
)

// Env bundles the simulated deployment a driver runs against.
//
// An Env is safe for concurrent use: the DFS, the MR engine and the
// metrics sink are internally synchronized, and every sampled run
// claims a unique id (NextRunID) that namespaces its reducer error
// files, so concurrent Run/RunGrouped/Watch/Append callers never read
// each other's feedback state.
type Env struct {
	FS      *dfs.FileSystem
	Engine  *mr.Engine
	Metrics *simcost.Metrics
	// Scan is the shared decoded-block cache of the vectorized scan
	// path: K concurrent watches (or repeated runs) over one file
	// re-decode nothing. Nil is tolerated everywhere — colscan then
	// decodes per caller without sharing.
	Scan *colscan.Cache
	// Data, when non-nil, is the view every DATA read of a run goes
	// through — typically a pinned dfs.Snapshot, so a run (or a watch
	// refresh) observes one commit point of the filesystem no matter
	// what lands concurrently. Mutations and the §3.3 error-file
	// protocol always use the live FS: feedback files are per-run
	// scratch that must be visible the moment the reducer writes them.
	Data dfs.View

	// runSeq is shared (by pointer) across WithData-derived Envs: two
	// views of one deployment must never hand out colliding run ids.
	runSeq *atomic.Int64
}

// View returns the data-read view: the pinned Data view when set, else
// the live filesystem.
func (e *Env) View() dfs.View {
	if e.Data != nil {
		return e.Data
	}
	return e.FS
}

// WithData derives an Env whose data reads go through v (usually a
// pinned snapshot), sharing everything else — including the run-id
// sequence — with the receiver.
func (e *Env) WithData(v dfs.View) *Env {
	return &Env{FS: e.FS, Engine: e.Engine, Metrics: e.Metrics, Scan: e.Scan, Data: v, runSeq: e.runSeq}
}

// NextRunID returns a process-unique id for one driver run. Every
// sampled run embeds it in its DFS error-file prefix: the §3.3
// reducer→mapper feedback files are per-run state, and two concurrent
// runs of the same job name sharing a prefix would read each other's
// cv/generation values (and delete each other's files).
func (e *Env) NextRunID() int64 { return e.runSeq.Add(1) }

// EnvConfig shapes a simulated deployment.
type EnvConfig struct {
	DataNodes    int   // cluster size; 5 (the paper's testbed) if 0
	SlotsPerNode int   // concurrent tasks per node; 2 if 0
	BlockSize    int64 // DFS block size; dfs.DefaultBlockSize if 0
	Replication  int   // block replicas; 3 if 0
	// CacheBytes bounds the decoded-block scan cache
	// (colscan.DefaultCacheBytes if 0) — earld exposes it as
	// -cache-bytes.
	CacheBytes int64
	// DisableSidecars turns off persistent columnar sidecars end to
	// end: dfs skips encoding at ingest and the scan cache gets no
	// sidecar store, so every cold read text-decodes. The equivalence
	// goldens pin that results are bit-identical either way.
	DisableSidecars bool
	Seed            uint64
}

// defaulted fills EnvConfig's zero values with the paper's testbed
// shape so NewEnv and RecoverEnv agree on what a default cluster is.
func (cfg EnvConfig) defaulted() EnvConfig {
	if cfg.DataNodes <= 0 {
		cfg.DataNodes = 5
	}
	if cfg.SlotsPerNode <= 0 {
		cfg.SlotsPerNode = 2
	}
	return cfg
}

// dfsConfig maps a defaulted EnvConfig onto the DFS's own config.
func (cfg EnvConfig) dfsConfig(metrics *simcost.Metrics) dfs.Config {
	return dfs.Config{
		BlockSize:       cfg.BlockSize,
		Replication:     cfg.Replication,
		DataNodes:       cfg.DataNodes,
		Metrics:         metrics,
		Seed:            cfg.Seed,
		DisableSidecars: cfg.DisableSidecars,
	}
}

// NewEnv builds a fresh simulated cluster: DFS, MR engine and a shared
// metrics sink.
func NewEnv(cfg EnvConfig) (*Env, error) {
	cfg = cfg.defaulted()
	metrics := &simcost.Metrics{}
	return envAround(cfg, dfs.New(cfg.dfsConfig(metrics)), metrics)
}

// RecoverEnv rebuilds a cluster from a commit-journal image (FS.
// JournalBytes of a previous — typically crashed — cluster), replaying
// every durable commit onto a fresh deployment shaped by cfg. A torn
// final record is truncated cleanly; interior corruption is refused
// (see dfs.Recover). The same cfg.Seed reproduces the same recovered
// state, so queries over the recovered cluster answer bit-identically
// to the original at the replayed commit point.
func RecoverEnv(cfg EnvConfig, image []byte) (*Env, dfs.RecoverStats, error) {
	cfg = cfg.defaulted()
	metrics := &simcost.Metrics{}
	fsys, rst, err := dfs.Recover(cfg.dfsConfig(metrics), image)
	if err != nil {
		return nil, rst, err
	}
	env, err := envAround(cfg, fsys, metrics)
	return env, rst, err
}

// envAround wires the MR engine and scan cache around an existing DFS —
// the shared tail of NewEnv and RecoverEnv.
func envAround(cfg EnvConfig, fsys *dfs.FileSystem, metrics *simcost.Metrics) (*Env, error) {
	cluster, err := mr.NewCluster(cfg.DataNodes, cfg.SlotsPerNode)
	if err != nil {
		return nil, err
	}
	eng := &mr.Engine{FS: fsys, Cluster: cluster, Metrics: metrics}
	scan := colscan.NewCache(cfg.CacheBytes)
	if !cfg.DisableSidecars {
		// Cold cache misses consult the persistent columnar sidecars
		// before paying a text decode. A sidecar that fails
		// verification is logged and the load falls back to text —
		// corruption costs speed, never a wrong answer.
		scan.SetStore(colseg.NewReader(fsys))
		scan.OnSidecarError(func(key colscan.BlockKey, err error) {
			log.Printf("colseg: sidecar read %s [%d,+%d): %v (falling back to text decode)",
				key.Path, key.Offset, key.Length, err)
		})
	}
	return &Env{FS: fsys, Engine: eng, Metrics: metrics, Scan: scan, runSeq: new(atomic.Int64)}, nil
}

// KillNode kills both the DataNode and the compute node with the given
// id — a whole-machine failure, the §3.4 scenario.
func (e *Env) KillNode(id int) error {
	if err := e.FS.KillDataNode(id); err != nil {
		return err
	}
	return e.Engine.Cluster.KillNode(id)
}

// ReviveNode brings a machine back.
func (e *Env) ReviveNode(id int) error {
	if err := e.FS.ReviveDataNode(id); err != nil {
		return err
	}
	return e.Engine.Cluster.ReviveNode(id)
}

// errorFile is the payload of one reducer error file: the current cv and
// a logical timestamp (the reducer's growth generation), §3.3.
type errorFile struct {
	CV  float64
	Gen int64
}

func formatErrorFile(e errorFile) []byte {
	return []byte(fmt.Sprintf("%g\t%d\n", e.CV, e.Gen))
}

func parseErrorFile(b []byte) (errorFile, error) {
	var e errorFile
	if _, err := fmt.Sscanf(string(b), "%g\t%d", &e.CV, &e.Gen); err != nil {
		return errorFile{}, fmt.Errorf("core: bad error file %q: %w", b, err)
	}
	return e, nil
}

// cleanupErrorFiles removes a finished run's error files so the /earl
// namespace does not grow without bound under a long-lived server
// issuing many runs. Best-effort: a file whose every replica died stays
// behind and is harmless (the prefix is never reused).
func cleanupErrorFiles(fsys *dfs.FileSystem, prefix string) {
	for _, p := range fsys.List(prefix) {
		_ = fsys.Delete(p)
	}
}

// readErrors lists and parses the error files under prefix, returning
// the average cv across reducers and the *minimum* round all parts of
// them have published. Mappers act once per new minimum: a round's
// feedback is only a consistent snapshot when every partition has
// folded and published that round — acting earlier would average fresh
// cvs with stale ones and make the expansion schedule (and hence the
// final sample) depend on error-file write timing. Every partition
// folds each round (the reducers poll for round completion instead of
// waiting on an arrival of their own), so the minimum advances whenever
// the run does; if a partition's file is lost to failures the mappers
// simply stop acting and the §3.4 watchdog ends the run with achieved
// accuracy. NaN cvs — partitions no group key routes to, which have no
// opinion — are excluded from the average, while +Inf ones (data
// present but not yet trustworthy) propagate and keep the expansion
// going.
func readErrors(fsys *dfs.FileSystem, prefix string, parts int) (avgCV float64, minRound int64, ok bool) {
	paths := fsys.List(prefix)
	if len(paths) < parts {
		return 0, 0, false
	}
	var sum float64
	n, read := 0, 0
	minRound = -1
	for _, p := range paths {
		b, err := fsys.ReadFile(p)
		if err != nil {
			continue // a replica-less file during failures: skip
		}
		e, err := parseErrorFile(b)
		if err != nil {
			continue
		}
		read++
		if minRound < 0 || e.Gen < minRound {
			minRound = e.Gen
		}
		if math.IsNaN(e.CV) {
			continue
		}
		sum += e.CV
		n++
	}
	if read < parts || minRound < 0 {
		return 0, 0, false
	}
	if n == 0 {
		return math.Inf(1), minRound, true
	}
	return sum / float64(n), minRound, true
}
