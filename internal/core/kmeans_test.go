package core

import (
	"testing"

	"repro/internal/jobs"
	"repro/internal/workload"
)

func kmeansEnv(t testing.TB, n int) (*Env, []workload.Point) {
	t.Helper()
	env, err := NewEnv(EnvConfig{BlockSize: 1 << 14, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	pts, truth, err := workload.MixtureSpec{
		K: 4, Dim: 2, N: n, Spread: 1.5, Sep: 120, Seed: 34,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile("/pts", workload.EncodePoints(pts)); err != nil {
		t.Fatal(err)
	}
	return env, truth
}

func TestRunKMeansEarlyConverges(t *testing.T) {
	env, truth := kmeansEnv(t, 60_000)
	rep, err := RunKMeans(env, "/pts", jobs.KMeans{K: 4, Seed: 35}, KMeansOptions{Sigma: 0.05, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("did not converge: %+v", rep)
	}
	if rep.CV > 0.05 {
		t.Fatalf("cv = %v", rep.CV)
	}
	// §6.3: centroids within 5% of the optimal.
	errRel, err := jobs.CentroidError(rep.Centers, truth)
	if err != nil {
		t.Fatal(err)
	}
	if errRel > 0.05 {
		t.Fatalf("centroid error %v > 5%%", errRel)
	}
	// EARL processed a small fraction of the points.
	if float64(rep.SampleSize) > 0.2*60_000 {
		t.Fatalf("sample %d not small", rep.SampleSize)
	}
}

func TestRunKMeansReadsLessThanMR(t *testing.T) {
	env, _ := kmeansEnv(t, 60_000)
	size, _ := env.FS.Stat("/pts")
	if _, err := RunKMeans(env, "/pts", jobs.KMeans{K: 4, Seed: 37}, KMeansOptions{Seed: 38}); err != nil {
		t.Fatal(err)
	}
	if read := env.Metrics.BytesRead.Load(); read > size/2 {
		t.Fatalf("early K-Means read %d of %d bytes", read, size)
	}
}

func TestRunKMeansValidation(t *testing.T) {
	if _, err := RunKMeans(nil, "/pts", jobs.KMeans{K: 2}, KMeansOptions{}); err == nil {
		t.Fatal("nil env should error")
	}
	env, _ := kmeansEnv(t, 100)
	if _, err := RunKMeans(env, "/missing", jobs.KMeans{K: 2}, KMeansOptions{}); err == nil {
		t.Fatal("missing path should error")
	}
}
