package core

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/jobs"
	"repro/internal/mr"
	"repro/internal/plan"
)

// runExact executes job over the whole file as a standard batch MR job —
// the "stock Hadoop" flow EARL switches back to when early approximation
// cannot pay off (§3.1), and the baseline every Fig. 5–7 comparison runs.
func runExact(env *Env, job jobs.Numeric, path string, opts Options) (Report, error) {
	res, n, err := RunExactJob(env, job, path, opts.SplitSize)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Job:         job.Name,
		Estimate:    res,
		Uncorrected: res,
		CV:          0,
		CILo:        res,
		CIHi:        res,
		B:           1,
		SampleSize:  n,
		UsedFull:    true,
		Converged:   true,
		FractionP:   1,
		Iterations:  1,
	}, nil
}

// exactMapper parses each line and emits it under a single key. A
// non-nil prog routes every line through the plan's per-record
// reference evaluator instead: filtered-out lines are dropped, derived
// values replace the parsed ones, and seen counts only survivors — the
// exact fall-back computes over exactly the subpopulation the sampled
// path estimates.
type exactMapper struct {
	job  jobs.Numeric
	prog *plan.Program
	seen *atomic.Int64
}

// Map implements mr.Mapper.
func (m exactMapper) Map(off int64, line string, emit mr.Emitter) error {
	var v float64
	var err error
	if m.prog != nil {
		var keep bool
		keep, _, v, err = m.prog.EvalLine(line)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
	} else if v, err = m.job.Parse(line); err != nil {
		return err
	}
	m.seen.Add(1)
	emit.Emit("f", v)
	return nil
}

// exactReducer computes the statistic over all values of the key.
type exactReducer struct {
	job jobs.Numeric
}

// Reduce implements mr.Reducer.
func (r exactReducer) Reduce(key string, values []any, emit mr.Emitter) error {
	xs := make([]float64, 0, len(values))
	for _, v := range values {
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("core: exact reducer got %T", v)
		}
		xs = append(xs, f)
	}
	out, err := r.job.Statistic(xs)
	if err != nil {
		return err
	}
	emit.Emit(key, out)
	return nil
}

// exactMultiReducer applies every statistic of the set to the one
// collected value stream, emitting each under its index — the
// shared-scan exact fall-back of a multi-statistic run.
type exactMultiReducer struct {
	jset []jobs.Numeric
}

// Reduce implements mr.Reducer.
func (r exactMultiReducer) Reduce(key string, values []any, emit mr.Emitter) error {
	xs := make([]float64, 0, len(values))
	for _, v := range values {
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("core: exact reducer got %T", v)
		}
		xs = append(xs, f)
	}
	for i, job := range r.jset {
		if job.Statistic == nil {
			return fmt.Errorf("core: job %q needs a Statistic for the exact path", job.Name)
		}
		out, err := job.Statistic(xs)
		if err != nil {
			return err
		}
		emit.Emit(strconv.Itoa(i), out)
	}
	return nil
}

// runExactMultiJob runs every statistic of the set exactly over ONE full
// scan: a single batch MR job parses each record once (the jobs share
// the input format, so the first job's Parse stands for all) and the
// reducer applies every statistic to the collected values — the exact
// fall-back keeps the multi-statistic read-once contract.
func runExactMultiJob(env *Env, jset []jobs.Numeric, path string, splitSize int64, prog *plan.Program) ([]float64, int, error) {
	if jset[0].Parse == nil {
		return nil, 0, fmt.Errorf("core: job %q needs Parse", jset[0].Name)
	}
	var seen atomic.Int64
	mjob := &mr.Job{
		Name:        "exact-" + jobsetTag(jset),
		InputPath:   path,
		SplitSize:   splitSize,
		Mapper:      exactMapper{job: jset[0], prog: prog, seen: &seen},
		Reducer:     exactMultiReducer{jset: jset},
		NumReducers: 1,
	}
	res, err := env.Engine.Run(mjob)
	if err != nil {
		return nil, 0, err
	}
	if len(res.Output) == 0 && prog != nil {
		return nil, 0, fmt.Errorf("core: no records matched filter")
	}
	if len(res.Output) != len(jset) {
		return nil, 0, fmt.Errorf("core: exact multi job emitted %d results for %d statistics", len(res.Output), len(jset))
	}
	outs := make([]float64, len(jset))
	for _, kv := range res.Output {
		i, err := strconv.Atoi(kv.Key)
		if err != nil || i < 0 || i >= len(jset) {
			return nil, 0, fmt.Errorf("core: exact multi job emitted key %q", kv.Key)
		}
		v, ok := kv.Value.(float64)
		if !ok {
			return nil, 0, fmt.Errorf("core: exact result has type %T", kv.Value)
		}
		outs[i] = v
	}
	return outs, int(seen.Load()), nil
}

// RunExactJob runs the user job exactly over every record of path on the
// batch engine and returns the result plus the record count processed.
// Exposed for the stock-Hadoop baselines of the benchmark harness.
func RunExactJob(env *Env, job jobs.Numeric, path string, splitSize int64) (float64, int, error) {
	if job.Statistic == nil || job.Parse == nil {
		return 0, 0, fmt.Errorf("core: job %q needs Statistic and Parse", job.Name)
	}
	var seen atomic.Int64
	mjob := &mr.Job{
		Name:        "exact-" + job.Name,
		InputPath:   path,
		SplitSize:   splitSize,
		Mapper:      exactMapper{job: job, seen: &seen},
		Reducer:     exactReducer{job: job},
		NumReducers: 1,
	}
	res, err := env.Engine.Run(mjob)
	if err != nil {
		return 0, 0, err
	}
	if len(res.Output) != 1 {
		return 0, 0, fmt.Errorf("core: exact job emitted %d results", len(res.Output))
	}
	out, ok := res.Output[0].Value.(float64)
	if !ok {
		return 0, 0, fmt.Errorf("core: exact result has type %T", res.Output[0].Value)
	}
	return out, int(seen.Load()), nil
}
