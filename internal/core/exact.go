package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/jobs"
	"repro/internal/mr"
)

// runExact executes job over the whole file as a standard batch MR job —
// the "stock Hadoop" flow EARL switches back to when early approximation
// cannot pay off (§3.1), and the baseline every Fig. 5–7 comparison runs.
func runExact(env *Env, job jobs.Numeric, path string, opts Options) (Report, error) {
	res, n, err := RunExactJob(env, job, path, opts.SplitSize)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Job:         job.Name,
		Estimate:    res,
		Uncorrected: res,
		CV:          0,
		CILo:        res,
		CIHi:        res,
		B:           1,
		SampleSize:  n,
		UsedFull:    true,
		Converged:   true,
		FractionP:   1,
		Iterations:  1,
	}, nil
}

// exactMapper parses each line and emits it under a single key.
type exactMapper struct {
	job  jobs.Numeric
	seen *atomic.Int64
}

// Map implements mr.Mapper.
func (m exactMapper) Map(off int64, line string, emit mr.Emitter) error {
	v, err := m.job.Parse(line)
	if err != nil {
		return err
	}
	m.seen.Add(1)
	emit.Emit("f", v)
	return nil
}

// exactReducer computes the statistic over all values of the key.
type exactReducer struct {
	job jobs.Numeric
}

// Reduce implements mr.Reducer.
func (r exactReducer) Reduce(key string, values []any, emit mr.Emitter) error {
	xs := make([]float64, 0, len(values))
	for _, v := range values {
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("core: exact reducer got %T", v)
		}
		xs = append(xs, f)
	}
	out, err := r.job.Statistic(xs)
	if err != nil {
		return err
	}
	emit.Emit(key, out)
	return nil
}

// RunExactJob runs the user job exactly over every record of path on the
// batch engine and returns the result plus the record count processed.
// Exposed for the stock-Hadoop baselines of the benchmark harness.
func RunExactJob(env *Env, job jobs.Numeric, path string, splitSize int64) (float64, int, error) {
	if job.Statistic == nil || job.Parse == nil {
		return 0, 0, fmt.Errorf("core: job %q needs Statistic and Parse", job.Name)
	}
	var seen atomic.Int64
	mjob := &mr.Job{
		Name:        "exact-" + job.Name,
		InputPath:   path,
		SplitSize:   splitSize,
		Mapper:      exactMapper{job: job, seen: &seen},
		Reducer:     exactReducer{job: job},
		NumReducers: 1,
	}
	res, err := env.Engine.Run(mjob)
	if err != nil {
		return 0, 0, err
	}
	if len(res.Output) != 1 {
		return 0, 0, fmt.Errorf("core: exact job emitted %d results", len(res.Output))
	}
	out, ok := res.Output[0].Value.(float64)
	if !ok {
		return 0, 0, fmt.Errorf("core: exact result has type %T", res.Output[0].Value)
	}
	return out, int(seen.Load()), nil
}
