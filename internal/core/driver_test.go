package core

import (
	"math"
	"testing"

	"repro/internal/aes"
	"repro/internal/jobs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// testEnv builds a small simulated cluster with a numeric dataset at
// /data and returns the env plus the true values.
func testEnv(t testing.TB, n int, dist workload.Dist, seed uint64) (*Env, []float64) {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		DataNodes:    5,
		SlotsPerNode: 4,
		BlockSize:    1 << 14,
		Replication:  2,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: dist, N: n, Seed: seed}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(xs)); err != nil {
		t.Fatal(err)
	}
	return env, xs
}

func TestRunMeanConverges(t *testing.T) {
	env, xs := testEnv(t, 200_000, workload.Uniform, 5)
	truth, _ := stats.Mean(xs)
	rep, err := Run(env, jobs.Mean(), "/data", Options{Sigma: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedFull {
		t.Fatalf("expected sampling path, got full run: %+v", rep)
	}
	if !rep.Converged {
		t.Fatalf("did not converge: %+v", rep)
	}
	if rep.CV > 0.05 {
		t.Fatalf("cv = %v > σ", rep.CV)
	}
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.1 {
		t.Fatalf("estimate %v vs truth %v (rel %v)", rep.Estimate, truth, rel)
	}
	// §6.1/6.4: the whole point — the sample is a small fraction of N.
	if float64(rep.SampleSize) > 0.2*float64(len(xs)) {
		t.Fatalf("sample %d is not small vs N=%d", rep.SampleSize, len(xs))
	}
	if rep.B < 2 {
		t.Fatalf("B = %d", rep.B)
	}
	if rep.Iterations < 1 {
		t.Fatalf("iterations = %d", rep.Iterations)
	}
	if !(rep.CILo <= rep.Uncorrected && rep.Uncorrected <= rep.CIHi) {
		t.Fatalf("CI [%v,%v] does not bracket %v", rep.CILo, rep.CIHi, rep.Uncorrected)
	}
}

func TestRunReadsFarLessThanStock(t *testing.T) {
	env, _ := testEnv(t, 300_000, workload.Uniform, 6)
	size, _ := env.FS.Stat("/data")
	rep, err := Run(env, jobs.Mean(), "/data", Options{Sigma: 0.05, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedFull {
		t.Fatalf("unexpected full run")
	}
	read := env.Metrics.BytesRead.Load()
	if read > size/2 {
		t.Fatalf("EARL read %d of %d bytes — no sampling advantage", read, size)
	}
}

func TestRunMedianConverges(t *testing.T) {
	env, xs := testEnv(t, 100_000, workload.Gaussian, 7)
	truth, _ := stats.Median(xs)
	rep, err := Run(env, jobs.Median(), "/data", Options{Sigma: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedFull || !rep.Converged {
		t.Fatalf("median run: %+v", rep)
	}
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.1 {
		t.Fatalf("median %v vs truth %v", rep.Estimate, truth)
	}
}

func TestRunSumCorrection(t *testing.T) {
	env, xs := testEnv(t, 150_000, workload.Uniform, 8)
	truth := stats.Sum(xs)
	rep, err := Run(env, jobs.Sum(), "/data", Options{Sigma: 0.05, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedFull {
		t.Fatalf("unexpected full run: %+v", rep)
	}
	if rep.FractionP <= 0 || rep.FractionP > 1 {
		t.Fatalf("fraction p = %v", rep.FractionP)
	}
	// The uncorrected sum is the sample sum — way below truth; the
	// corrected one must land near the real total.
	if rep.Uncorrected > truth/2 {
		t.Fatalf("uncorrected %v suspiciously close to truth %v", rep.Uncorrected, truth)
	}
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.15 {
		t.Fatalf("corrected sum %v vs truth %v (rel %v)", rep.Estimate, truth, rel)
	}
}

func TestRunFallsBackToExactOnTinyData(t *testing.T) {
	env, xs := testEnv(t, 300, workload.Uniform, 9)
	truth, _ := stats.Mean(xs)
	rep, err := Run(env, jobs.Mean(), "/data", Options{Sigma: 0.05, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedFull {
		t.Fatalf("tiny data should use the exact path: %+v", rep)
	}
	if math.Abs(rep.Estimate-truth) > 1e-9 {
		t.Fatalf("exact result %v != %v", rep.Estimate, truth)
	}
	if rep.CV != 0 || !rep.Converged {
		t.Fatalf("exact report: %+v", rep)
	}
}

func TestRunPostMapSampler(t *testing.T) {
	env, xs := testEnv(t, 60_000, workload.Uniform, 14)
	truth, _ := stats.Mean(xs)
	rep, err := Run(env, jobs.Mean(), "/data", Options{
		Sigma: 0.05, Seed: 15, Sampler: PostMapSampling,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedFull {
		t.Fatalf("unexpected full run: %+v", rep)
	}
	if !rep.Converged {
		t.Fatalf("post-map run did not converge: %+v", rep)
	}
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.1 {
		t.Fatalf("estimate %v vs truth %v", rep.Estimate, truth)
	}
	// Post-map pays the full load: every record is ingested into the
	// pool. The bytes behind that scan come from the compact columnar
	// sidecar (~12 bytes/record vs 19 of text), so assert full
	// ingestion by record count with a byte floor rather than
	// bytes ≥ file size.
	size, _ := env.FS.Stat("/data")
	if env.Metrics.RecordsRead.Load() < 60_000 {
		t.Fatalf("post-map should pool every record: read %d of 60000", env.Metrics.RecordsRead.Load())
	}
	if env.Metrics.BytesRead.Load() < size/2 {
		t.Fatalf("post-map should scan the input: read %d of %d", env.Metrics.BytesRead.Load(), size)
	}
}

func TestRunForcedPlan(t *testing.T) {
	env, _ := testEnv(t, 100_000, workload.Uniform, 16)
	rep, err := Run(env, jobs.Mean(), "/data", Options{
		Sigma: 0.05, Seed: 17, ForceB: 25, ForceN: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.B != 25 {
		t.Fatalf("B = %d, want forced 25", rep.B)
	}
	if rep.PlannedN != 2000 {
		t.Fatalf("PlannedN = %d, want 2000", rep.PlannedN)
	}
	if rep.SampleSize < 2000 {
		t.Fatalf("sample %d below forced initial", rep.SampleSize)
	}
}

func TestRunExpandsWhenInitialSampleTooSmall(t *testing.T) {
	// Force a tiny initial sample so the first cv misses σ and the
	// mapper-side expansion loop must kick in (≥2 iterations).
	env, _ := testEnv(t, 120_000, workload.Gaussian, 18)
	rep, err := Run(env, jobs.Mean(), "/data", Options{
		Sigma: 0.02, Seed: 19, ForceB: 30, ForceN: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations < 2 {
		t.Fatalf("expected sample expansion, iterations = %d (%+v)", rep.Iterations, rep)
	}
	if !rep.Converged {
		t.Fatalf("should converge after expansion: %+v", rep)
	}
	if rep.SampleSize <= 40 {
		t.Fatalf("sample did not grow: %d", rep.SampleSize)
	}
}

func TestRunNonConvergenceAtCap(t *testing.T) {
	// An unreachable σ with a low expansion cap: the job must finish
	// (with Converged=false) rather than hang — the "finish with achieved
	// accuracy" behaviour.
	env, _ := testEnv(t, 50_000, workload.Pareto, 20)
	rep, err := Run(env, jobs.Mean(), "/data", Options{
		Sigma: 1e-9, Seed: 21, ForceB: 20, ForceN: 100,
		MaxSampleFraction: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged {
		t.Fatalf("cannot have converged to σ=1e-9: %+v", rep)
	}
	if rep.CV <= 1e-9 {
		t.Fatalf("cv = %v", rep.CV)
	}
	if rep.SampleSize > 50_000/10 {
		t.Fatalf("expansion ignored the cap: %d", rep.SampleSize)
	}
}

func TestRunFaultToleranceNodeLoss(t *testing.T) {
	// Kill two of five machines mid-job; EARL must still deliver a
	// result with an error estimate (§3.4), not fail.
	env, xs := testEnv(t, 200_000, workload.Uniform, 22)
	truth, _ := stats.Mean(xs)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Kill nodes as soon as the job is plausibly running.
		for env.Metrics.RecordsMapped.Load() < 100 {
		}
		env.KillNode(3)
		env.KillNode(4)
	}()
	rep, err := Run(env, jobs.Mean(), "/data", Options{Sigma: 0.05, Seed: 23})
	<-done
	if err != nil {
		t.Fatalf("run with node loss should still answer: %v", err)
	}
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.15 {
		t.Fatalf("estimate after failures %v vs truth %v", rep.Estimate, truth)
	}
	if rep.CV <= 0 {
		t.Fatalf("no error estimate delivered: %+v", rep)
	}
}

func TestRunValidation(t *testing.T) {
	env, _ := testEnv(t, 100, workload.Uniform, 24)
	if _, err := Run(nil, jobs.Mean(), "/data", Options{}); err == nil {
		t.Fatal("nil env should error")
	}
	if _, err := Run(env, jobs.Numeric{}, "/data", Options{}); err == nil {
		t.Fatal("empty job should error")
	}
	if _, err := Run(env, jobs.Mean(), "/missing", Options{}); err == nil {
		t.Fatal("missing path should error")
	}
}

func TestRunExactJobDirect(t *testing.T) {
	env, xs := testEnv(t, 5_000, workload.Uniform, 25)
	truth, _ := stats.Median(xs)
	got, n, err := RunExactJob(env, jobs.Median(), "/data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(xs) {
		t.Fatalf("processed %d records, want %d", n, len(xs))
	}
	// The fixed-width file encoding rounds to 9 mantissa digits, so the
	// on-disk median differs from the in-memory one in the 1e-9 tail.
	if math.Abs(got-truth) > 1e-6*math.Abs(truth) {
		t.Fatalf("exact median %v != %v", got, truth)
	}
}

func TestEnvKillRevive(t *testing.T) {
	env, _ := testEnv(t, 100, workload.Uniform, 26)
	if err := env.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := env.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	if err := env.KillNode(99); err == nil {
		t.Fatal("bad node id should error")
	}
}

func TestErrorFileRoundTrip(t *testing.T) {
	e := errorFile{CV: 0.0425, Gen: 7}
	got, err := parseErrorFile(formatErrorFile(e))
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("roundtrip %+v != %+v", got, e)
	}
	if _, err := parseErrorFile([]byte("garbage")); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestRunVarianceJob(t *testing.T) {
	env, xs := testEnv(t, 120_000, workload.Gaussian, 27)
	truth, _ := stats.Variance(xs)
	rep, err := Run(env, jobs.Variance(), "/data", Options{Sigma: 0.08, Seed: 28})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedFull {
		t.Fatalf("unexpected full run: %+v", rep)
	}
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.25 {
		t.Fatalf("variance %v vs truth %v", rep.Estimate, truth)
	}
}

func TestRunQuantileJob(t *testing.T) {
	env, xs := testEnv(t, 120_000, workload.Gaussian, 29)
	q90, err := jobs.Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := stats.Quantile(xs, 0.9)
	rep, err := Run(env, q90, "/data", Options{Sigma: 0.05, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.1 {
		t.Fatalf("p90 %v vs truth %v", rep.Estimate, truth)
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	// Same seed + same data ⇒ identical plan and identical estimate, even
	// though the pipelined job is concurrent (all randomness is seeded and
	// record-order independence holds at the state level).
	var estimates []float64
	var bs []int
	for i := 0; i < 3; i++ {
		env, _ := testEnv(t, 80_000, workload.Uniform, 31)
		rep, err := Run(env, jobs.Mean(), "/data", Options{Sigma: 0.05, Seed: 32})
		if err != nil {
			t.Fatal(err)
		}
		estimates = append(estimates, rep.Estimate)
		bs = append(bs, rep.B)
	}
	if bs[0] != bs[1] || bs[1] != bs[2] {
		t.Fatalf("B varies across identical runs: %v", bs)
	}
	// Estimates may differ slightly when reducer batch boundaries shift
	// with goroutine interleaving; they must stay within the error bound
	// of one another.
	for i := 1; i < 3; i++ {
		if rel := math.Abs(estimates[i]-estimates[0]) / estimates[0]; rel > 0.1 {
			t.Fatalf("estimates diverge: %v", estimates)
		}
	}
}

func TestRunCustomMeasure(t *testing.T) {
	// A stricter, stddev-based measure still drives the loop to an answer.
	env, _ := testEnv(t, 80_000, workload.Uniform, 33)
	rep, err := Run(env, jobs.Mean(), "/data", Options{
		Sigma: 2.0, Seed: 34, Measure: aes.StdErr, ForceB: 25, ForceN: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("stderr-measure run did not converge: %+v", rep)
	}
}

func TestReadErrorsMultiFile(t *testing.T) {
	env, _ := testEnv(t, 100, workload.Uniform, 35)
	if _, _, ok := readErrors(env.FS, "/none/", 1); ok {
		t.Fatal("no files should give ok=false")
	}
	env.FS.WriteFile("/errs/part-0", formatErrorFile(errorFile{CV: 0.10, Gen: 3}))
	env.FS.WriteFile("/errs/part-1", formatErrorFile(errorFile{CV: 0.20, Gen: 5}))
	avg, gen, ok := readErrors(env.FS, "/errs/", 2)
	if !ok {
		t.Fatal("should read both part files")
	}
	if gen != 3 {
		t.Fatalf("gen = %d, want min 3", gen)
	}
	if math.Abs(avg-0.15) > 1e-12 {
		t.Fatalf("avg = %v, want 0.15 over the two files", avg)
	}

	// A partition still missing its round-3 file holds the barrier: a
	// garbage (unparseable) file is not a published round.
	env.FS.WriteFile("/errs/garbage", []byte("not parseable"))
	if _, _, ok := readErrors(env.FS, "/errs/", 3); ok {
		t.Fatal("unparseable file must not satisfy the per-partition barrier")
	}

	// NaN cvs (partitions with no routed groups) hold their place in the
	// round barrier but stay out of the average.
	env.FS.WriteFile("/errs/part-2", formatErrorFile(errorFile{CV: math.NaN(), Gen: 7}))
	avg, gen, ok = readErrors(env.FS, "/errs/", 2)
	if !ok || gen != 3 || math.Abs(avg-0.15) > 1e-12 {
		t.Fatalf("avg/gen with NaN part = %v/%d ok=%v, want 0.15/3 true", avg, gen, ok)
	}
}
