package core

import (
	"errors"
	"testing"

	"repro/internal/colscan"
	"repro/internal/dfs"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// TestNewRecordSourcesDraws covers both sampler kinds over a healthy
// cluster: construction succeeds and every source yields records.
func TestNewRecordSourcesDraws(t *testing.T) {
	env, _ := testEnv(t, 10_000, workload.Uniform, 101)
	splits, err := env.FS.Splits("/data", 0)
	if err != nil {
		t.Fatal(err)
	}
	owned := [][]dfs.Split{splits[:len(splits)/2], splits[len(splits)/2:]}
	for _, sampler := range []SamplerKind{PreMapSampling, PostMapSampling} {
		sources, err := NewRecordSources(env, "/data", owned, Options{Sampler: sampler, Seed: 7}, 0, colscan.FormatNone, nil)
		if err != nil {
			t.Fatalf("%s: %v", sampler, err)
		}
		for i, s := range sources {
			lines, err := s.Draw(5)
			if err != nil || len(lines) != 5 {
				t.Fatalf("%s source %d: %d lines, err %v", sampler, i, len(lines), err)
			}
			if s.Weight() <= 0 {
				t.Fatalf("%s source %d: weight %d", sampler, i, s.Weight())
			}
		}
	}
}

// TestNewRecordSourcesToleratesDeadScan pins the §3.4 contract at the
// source layer: when a post-map pool scan hits a block with no live
// replica, construction must NOT fail the run — the affected mapper gets
// a source whose draws fail (so it is accounted as a lost mapper), while
// the other mappers keep their data.
func TestNewRecordSourcesToleratesDeadScan(t *testing.T) {
	env, err := NewEnv(EnvConfig{DataNodes: 3, Replication: 1, BlockSize: 1 << 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 5_000, Seed: 6}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(xs)); err != nil {
		t.Fatal(err)
	}
	if err := env.FS.KillDataNode(1); err != nil {
		t.Fatal(err)
	}
	splits, err := env.FS.Splits("/data", 0)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([][]dfs.Split, len(splits))
	for i, sp := range splits {
		owned[i] = []dfs.Split{sp}
	}
	sources, err := NewRecordSources(env, "/data", owned, Options{Sampler: PostMapSampling, Seed: 8}, 0, colscan.FormatNone, nil)
	if err != nil {
		t.Fatalf("construction must tolerate dead blocks, got %v", err)
	}
	var failed, ok int
	for _, s := range sources {
		_, err := s.Draw(1)
		switch {
		case err == nil || errors.Is(err, sampling.ErrExhausted):
			ok++
		default:
			failed++
		}
	}
	// Replication 1 on 3 nodes with one node dead: some splits must be
	// unreadable, the rest must still serve.
	if failed == 0 {
		t.Fatal("expected at least one unreadable split (replication 1, node dead)")
	}
	if ok == 0 {
		t.Fatal("expected surviving splits to keep serving")
	}
}
