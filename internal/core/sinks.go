package core

import (
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/aes"
	"repro/internal/delta"
	"repro/internal/jobs"
)

// The two ResultSink implementations of the generic engine: statSink
// (scalar and multi-statistic runs — one resample set per statistic, all
// fed the one shared sample) and groupSink (grouped runs — one resample
// set per group key).

// statRun is one statistic's maintained state inside a statSink.
type statRun struct {
	job    jobs.Numeric
	plan   aes.Plan
	maint  Resampler
	lastCV float64 // error at the last published generation
}

// statSink maintains one delta-maintained resample set per statistic.
// Every statistic reads the same shared sample (the engine delivers each
// record exactly once), so a k-statistic run costs one sampling/IO pass;
// only the resampling CPU scales with k. The published error is the
// worst statistic's — expansion continues until every statistic meets σ.
//
// Planning is per statistic (its own SSABE B_i and n_i; the run's
// initial target is max(n_i)), but the maintained sample is deliberately
// shared rather than capped per statistic at n_i: statistics whose
// planned n is smaller simply converge early and ride along. Capping
// would save their resampling CPU, but it would leave the statistics
// holding samples at different fractions of the data — and a later
// maintained refresh (internal/live) draws each appended delta once, at
// one fraction, so unequal per-statistic fractions could not stay
// uniform over old ∪ new. Extra resampling CPU is the price of keeping
// every statistic's sample exchangeable with the shared stream.
type statSink struct {
	opts  Options
	stats []*statRun
}

// newStatSink builds the per-statistic maintainers under the engine-wide
// seeding contract: statistic 0 keeps the historical run seed (so
// single-statistic runs stay bit-identical), and further statistics get
// decorrelated streams derived from the statistic index.
func newStatSink(env *Env, jset []jobs.Numeric, plans []aes.Plan, opts Options) (*statSink, error) {
	s := &statSink{opts: opts}
	for i, job := range jset {
		cfg := delta.Config{
			Reducer: job.Reducer, B: plans[i].B,
			Seed:    opts.Seed + 31 + 1_000_003*uint64(i),
			Metrics: env.Metrics, Key: job.Name,
			Parallelism: opts.Parallelism,
		}
		var maint Resampler
		var err error
		if opts.DisableDeltaMaintenance {
			maint, err = delta.NewNaive(cfg)
		} else {
			maint, err = delta.New(cfg)
		}
		if err != nil {
			return nil, err
		}
		s.stats = append(s.stats, &statRun{job: job, plan: plans[i], maint: maint, lastCV: math.Inf(1)})
	}
	return s, nil
}

// Grow implements ResultSink: the shared delta feeds every statistic's
// resample set.
func (s *statSink) Grow(_ string, vals []float64) error {
	for _, st := range s.stats {
		if err := st.maint.Grow(vals); err != nil {
			return err
		}
	}
	return nil
}

// ErrorEstimate implements ResultSink: the worst error across the
// statistics (+Inf on any degenerate distribution, so the loop keeps
// growing rather than mis-terminating).
func (s *statSink) ErrorEstimate() float64 {
	worst := 0.0
	for _, st := range s.stats {
		cv := math.Inf(1)
		if vals, err := st.maint.Results(); err == nil {
			if m, err := s.opts.Measure(vals); err == nil {
				cv = m
			}
		}
		st.lastCV = cv
		if cv > worst {
			worst = cv
		}
	}
	return worst
}

// seedForKey derives a group's resampling seed from the run seed and the
// key alone — never from the order keys were first observed in, which
// depends on goroutine scheduling. This is what makes grouped runs (and
// their maintained refreshes) reproducible for a fixed seed.
func seedForKey(seed uint64, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed + h.Sum64()
}

// NewGroupMaintainer creates the delta-maintained resample set for one
// group key under the run's seeding contract. Exported so a grouped
// maintained query (internal/live) can open groups that first appear in
// appended data with exactly the seed the initial run would have used.
func NewGroupMaintainer(env *Env, job jobs.Numeric, key string, b int, opts Options) (*delta.Maintainer, error) {
	return delta.New(delta.Config{
		Reducer: job.Reducer, B: b,
		Seed:    seedForKey(opts.Seed, key),
		Metrics: env.Metrics, Key: key,
		Parallelism: opts.Parallelism,
	})
}

// MinGroupSample is the smallest per-group sample before a group's cv
// is trusted: below it the error is treated as +Inf so the expansion
// loop keeps sampling. Shared by the in-run grouped sink and the
// maintained grouped query's refresh loop.
const MinGroupSample = 8

// groupSink maintains one delta-maintained resample set per group key,
// opened lazily with key-derived seeds as keys arrive. The published
// error is the worst group's, floored at +Inf while any group's sample
// is below MinGroupSample.
type groupSink struct {
	env  *Env
	job  jobs.Numeric
	b    int
	opts Options

	mu     sync.Mutex
	maints map[string]*delta.Maintainer
}

func newGroupSink(env *Env, job jobs.Numeric, b int, opts Options) *groupSink {
	return &groupSink{env: env, job: job, b: b, opts: opts, maints: map[string]*delta.Maintainer{}}
}

// Grow implements ResultSink.
func (g *groupSink) Grow(key string, vals []float64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	mt, ok := g.maints[key]
	if !ok {
		var err error
		mt, err = NewGroupMaintainer(g.env, g.job, key, g.b, g.opts)
		if err != nil {
			return err
		}
		g.maints[key] = mt
	}
	return mt.Grow(vals)
}

// ErrorEstimate implements ResultSink.
func (g *groupSink) ErrorEstimate() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.maints) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, mt := range g.maints {
		if mt.N() < MinGroupSample {
			return math.Inf(1)
		}
		cv, err := mt.CV()
		if err != nil {
			return math.Inf(1)
		}
		if cv > worst {
			worst = cv
		}
	}
	return worst
}
