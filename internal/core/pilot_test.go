package core

import (
	"testing"

	"repro/internal/jobs"
	"repro/internal/workload"
)

// TestPilotReadsCharged pins the pilot cost attribution: the records the
// pilot phase draws through the sampler are input reads and must land in
// simcost.RecordsRead. COUNT's reducer consumes almost nothing, so
// before the attribution a converged count run reported ~1 record read —
// the pilot floor (Options.MinPilot = 512) dominates its true cost.
func TestPilotReadsCharged(t *testing.T) {
	env, _ := testEnv(t, 200_000, workload.Gaussian, 40)
	env.Metrics.Reset()
	rep, err := Run(env, jobs.Count(), "/data", Options{Sigma: 0.05, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedFull {
		t.Fatalf("expected sampling path: %+v", rep)
	}
	if read := env.Metrics.RecordsRead.Load(); read < 512 {
		t.Fatalf("RecordsRead = %d after a count run; the ≥512-record pilot was not charged", read)
	}
}

// TestSharedPilotSavingVisible: a 2-statistic shared-pass run draws ONE
// pilot, so its total reads must undercut the summed single-statistic
// runs (which pay the pilot once each) — the counter-visible saving the
// attribution exists to expose.
func TestSharedPilotSavingVisible(t *testing.T) {
	single := func(job jobs.Numeric) int64 {
		env, _ := testEnv(t, 200_000, workload.Gaussian, 40)
		env.Metrics.Reset()
		rep, err := Run(env, job, "/data", Options{Sigma: 0.05, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		if rep.UsedFull {
			t.Fatalf("%s fell back to exact", job.Name)
		}
		return env.Metrics.RecordsRead.Load()
	}
	sumSingles := single(jobs.Count()) + single(jobs.Mean())

	env, _ := testEnv(t, 200_000, workload.Gaussian, 40)
	env.Metrics.Reset()
	if _, err := RunMulti(env, []jobs.Numeric{jobs.Count(), jobs.Mean()}, "/data", Options{Sigma: 0.05, Seed: 41}); err != nil {
		t.Fatal(err)
	}
	multiRead := env.Metrics.RecordsRead.Load()
	if multiRead >= sumSingles {
		t.Fatalf("shared-pass run read %d records vs %d for the two singles — shared pilot saving invisible", multiRead, sumSingles)
	}
}
