package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/jobs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// multiJobSet is the dashboard shape: mean + p50 + p95 + count of one
// column.
func multiJobSet(t testing.TB) []jobs.Numeric {
	t.Helper()
	p50, err := jobs.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	p95, err := jobs.Quantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	return []jobs.Numeric{jobs.Mean(), p50, p95, jobs.Count()}
}

// TestRunMultiSharedPassReadsOnce is the tentpole acceptance criterion:
// a 4-statistic shared-pass run reads the input once — RecordsRead stays
// within 1.1× of the single-statistic run with the largest sample — and
// every statistic lands near its exact answer.
func TestRunMultiSharedPassReadsOnce(t *testing.T) {
	const n = 200_000
	jset := multiJobSet(t)

	// Baseline: each statistic alone, on a fresh cluster, recording the
	// records read by the most demanding one.
	var maxSingleRead int64
	for i := range jset {
		env, _ := testEnv(t, n, workload.Gaussian, 40)
		env.Metrics.Reset()
		rep, err := Run(env, jset[i], "/data", Options{Sigma: 0.05, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		if rep.UsedFull {
			t.Fatalf("%s fell back to exact: %+v", jset[i].Name, rep)
		}
		if read := env.Metrics.RecordsRead.Load(); read > maxSingleRead {
			maxSingleRead = read
		}
	}

	env, xs := testEnv(t, n, workload.Gaussian, 40)
	env.Metrics.Reset()
	reps, err := RunMulti(env, jset, "/data", Options{Sigma: 0.05, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	multiRead := env.Metrics.RecordsRead.Load()
	if float64(multiRead) > 1.1*float64(maxSingleRead) {
		t.Fatalf("4-statistic shared pass read %d records vs %d for the largest single-statistic run (>1.1×)",
			multiRead, maxSingleRead)
	}

	if len(reps) != len(jset) {
		t.Fatalf("got %d reports for %d jobs", len(reps), len(jset))
	}
	truthMean, _ := stats.Mean(xs)
	truthP50, _ := stats.Quantile(xs, 0.5)
	truthP95, _ := stats.Quantile(xs, 0.95)
	truths := []float64{truthMean, truthP50, truthP95, float64(len(xs))}
	for i, rep := range reps {
		if rep.Job != jset[i].Name {
			t.Fatalf("report %d is %q, want %q", i, rep.Job, jset[i].Name)
		}
		if !rep.Converged {
			t.Fatalf("%s did not converge: %+v", rep.Job, rep)
		}
		if rel := math.Abs(rep.Estimate-truths[i]) / math.Abs(truths[i]); rel > 0.15 {
			t.Fatalf("%s estimate %v vs truth %v (rel %v)", rep.Job, rep.Estimate, truths[i], rel)
		}
		// Shared sample: every statistic consumed the same records.
		if rep.SampleSize != reps[0].SampleSize {
			t.Fatalf("statistics diverged in sample size: %d vs %d", rep.SampleSize, reps[0].SampleSize)
		}
	}
	// Per-statistic planning: B is sized per statistic, not shared.
	distinct := map[int]bool{}
	for _, rep := range reps {
		distinct[rep.B] = true
	}
	if len(distinct) < 2 {
		t.Logf("note: all statistics happened to plan B=%d", reps[0].B)
	}
}

// TestRunMultiDeterministicAcrossParallelism extends the engine-wide
// seeding contract to multi-statistic runs: fixed seed ⇒ bit-identical
// per-statistic reports at any Parallelism.
func TestRunMultiDeterministicAcrossParallelism(t *testing.T) {
	jset := multiJobSet(t)
	runAt := func(par int) []Report {
		env, _ := testEnv(t, 80_000, workload.Uniform, 42)
		reps, err := RunMulti(env, jset, "/data", Options{Sigma: 0.05, Seed: 43, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return reps
	}
	golden := runAt(1)
	for _, par := range []int{4, 0} {
		if got := runAt(par); !reflect.DeepEqual(golden, got) {
			t.Fatalf("Parallelism=%d multi reports differ from sequential:\n%+v\n%+v", par, golden, got)
		}
	}
}

// TestRunMultiSingleDegenerates: RunMulti with one job is exactly Run —
// the one-key, one-statistic degenerate case of the generic engine.
func TestRunMultiSingleDegenerates(t *testing.T) {
	env1, _ := testEnv(t, 80_000, workload.Uniform, 44)
	single, err := Run(env1, jobs.Mean(), "/data", Options{Sigma: 0.05, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	env2, _ := testEnv(t, 80_000, workload.Uniform, 44)
	multi, err := RunMulti(env2, []jobs.Numeric{jobs.Mean()}, "/data", Options{Sigma: 0.05, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, multi[0]) {
		t.Fatalf("RunMulti([mean]) != Run(mean):\n%+v\n%+v", single, multi[0])
	}
}

// TestRunMultiValidation covers the error surface.
func TestRunMultiValidation(t *testing.T) {
	env, _ := testEnv(t, 1_000, workload.Uniform, 46)
	if _, err := RunMulti(env, nil, "/data", Options{}); err == nil {
		t.Fatal("empty job set should error")
	}
	if _, err := RunMulti(env, []jobs.Numeric{{}}, "/data", Options{}); err == nil {
		t.Fatal("incomplete job should error")
	}
}

// TestRunMultiExactFallback: tiny data sends the whole set down the
// exact path together — still as ONE full scan (one MR job), keeping
// the multi-statistic read-once contract on the fall-back path too.
func TestRunMultiExactFallback(t *testing.T) {
	env, xs := testEnv(t, 300, workload.Uniform, 47)
	env.Metrics.Reset()
	reps, err := RunMulti(env, multiJobSet(t), "/data", Options{Sigma: 0.05, Seed: 48})
	if err != nil {
		t.Fatal(err)
	}
	if got := env.Metrics.JobStartups.Load(); got != 1 {
		t.Fatalf("exact multi fall-back launched %d jobs, want 1 shared scan", got)
	}
	if read := env.Metrics.RecordsMapped.Load(); read > int64(len(xs)) {
		t.Fatalf("exact multi fall-back mapped %d records of %d — re-reading per statistic", read, len(xs))
	}
	truth, _ := stats.Mean(xs)
	for _, rep := range reps {
		if !rep.UsedFull {
			t.Fatalf("%s should have used the exact path: %+v", rep.Job, rep)
		}
	}
	if math.Abs(reps[0].Estimate-truth) > 1e-9 {
		t.Fatalf("exact mean %v != %v", reps[0].Estimate, truth)
	}
	if reps[3].Estimate != float64(len(xs)) {
		t.Fatalf("exact count %v != %d", reps[3].Estimate, len(xs))
	}
}
