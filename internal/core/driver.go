package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/aes"
	"repro/internal/bootstrap"
	"repro/internal/delta"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/mr"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// SamplerKind selects the sampling stage implementation (§3.3).
type SamplerKind string

// The two samplers of §3.3.
const (
	PreMapSampling  SamplerKind = "pre-map"  // Algorithm 2: sample split offsets before loading
	PostMapSampling SamplerKind = "post-map" // Algorithm 1: load, pool, draw without replacement
)

// Options tunes a Run. Zero values take the paper's defaults.
type Options struct {
	Sigma         float64     // target error bound σ; 0.05 (the paper's 5%) if 0
	Tau           float64     // SSABE relative stability threshold τ; aes default (0.03) if 0
	PilotFraction float64     // pilot sample fraction p; 0.01 (§3.2) if 0
	MinPilot      int         // pilot floor; 512 if 0
	MaxPilot      int         // pilot cap; 65536 if 0 (a pilot needs statistical resolution, not a fixed fraction of ever-larger data)
	Sampler       SamplerKind // PreMapSampling if empty
	NumMappers    int         // long-lived sampling mappers; 4 if 0
	SplitSize     int64       // input split size; DFS block size if 0
	Confidence    float64     // CI level for the report; 0.95 if 0
	Seed          uint64
	// ForceB / ForceN skip SSABE and use the given resample count /
	// initial sample size (experiment hooks; both must be set).
	ForceB int
	ForceN int
	// MaxSampleFraction caps sample expansion at this fraction of the
	// (estimated) data size before giving up on convergence; 0.5 if 0.
	MaxSampleFraction float64
	// Measure overrides the error measure (aes.CV if nil).
	Measure aes.Measure
	// DisableDeltaMaintenance switches the reducer to the naive
	// recompute-everything resampler (§4.1's baseline; Fig. 10 ablation).
	DisableDeltaMaintenance bool
	// Parallelism is the worker-pool size of the parallel resampling
	// engine (SSABE's pilot bootstraps and the reducer's delta-update
	// loop); runtime.GOMAXPROCS(0) if 0, 1 forces the sequential path.
	// Results are reproducible for a fixed Seed at any parallelism.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Sigma <= 0 {
		o.Sigma = 0.05
	}
	if o.PilotFraction <= 0 {
		o.PilotFraction = 0.01
	}
	if o.MinPilot <= 0 {
		o.MinPilot = 512
	}
	if o.MaxPilot <= 0 {
		o.MaxPilot = 65536
	}
	if o.MaxPilot < o.MinPilot {
		o.MaxPilot = o.MinPilot
	}
	if o.Sampler == "" {
		o.Sampler = PreMapSampling
	}
	if o.NumMappers <= 0 {
		o.NumMappers = 4
	}
	if o.Confidence <= 0 {
		o.Confidence = 0.95
	}
	if o.MaxSampleFraction <= 0 {
		o.MaxSampleFraction = 0.5
	}
	if o.Measure == nil {
		o.Measure = aes.CV
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Report is the outcome of one EARL run.
type Report struct {
	Job         string
	Estimate    float64 // corrected final result
	Uncorrected float64 // raw bootstrap estimate before correct()
	CV          float64 // achieved error at termination
	CILo, CIHi  float64 // percentile interval over the result distribution
	B           int     // bootstraps used
	SampleSize  int     // records actually consumed by the reducer
	PlannedN    int     // SSABE's initial sample size
	Iterations  int     // reducer growth generations (1 = SSABE got it right)
	UsedFull    bool    // fell back to the exact full-data job
	Converged   bool    // final error ≤ σ
	FractionP   float64 // sampling fraction handed to correct()
	FailedMaps  int     // mapper tasks lost to failures (§3.4 path)
	EstTotalN   int64   // estimated total records in the input
}

// Resampler abstracts the optimized and naive bootstrap reducers
// (Fig. 10): a growing sample whose B resample statistics can be read at
// any time. It is exported so maintained queries (internal/live) can keep
// growing the same resample set across ingest batches.
type Resampler interface {
	Grow([]float64) error
	Results() ([]float64, error)
	N() int
	// Updates reports cumulative per-item state operations — the work
	// measure delta maintenance minimises (§4, Fig. 10).
	Updates() int64
}

// LiveState is the retained working state of one sampled run: the SSABE
// plan, the delta-maintained resample set, and the per-mapper sampling
// streams. Run discards it; RunLive hands it to the caller so a
// maintained query can keep the early answer fresh as data is appended,
// paying only for the delta.
type LiveState struct {
	Plan        aes.Plan
	EstTotal    int64          // estimated records covered so far
	SyncedBytes int64          // file bytes covered (the ingest high-water mark)
	Maint       Resampler      // nil when the run fell back to the exact path
	Sources     []RecordSource // retained per-mapper samplers (without-replacement across refreshes)
	Opts        Options        // with defaults applied
	Generations int            // Grow generations applied so far
}

// Run executes job over the line-encoded numeric file at path with early
// approximate results per the paper's full workflow.
func Run(env *Env, job jobs.Numeric, path string, opts Options) (Report, error) {
	rep, _, err := RunLive(env, job, path, opts)
	return rep, err
}

// RunLive is Run, but it additionally returns the run's retained working
// state so the caller can maintain the result under appended data
// (internal/live builds on this). The state's Maint is nil when the run
// fell back to the exact full-data job.
func RunLive(env *Env, job jobs.Numeric, path string, opts Options) (Report, *LiveState, error) {
	return runLive(env, job, path, opts, false)
}

// RunLiveDeferExact is RunLive, except that a fall-back to the exact
// path does NOT execute the exact MR job: the returned Report carries
// only UsedFull/EstTotalN and the LiveState has Maint == nil. The caller
// is expected to produce the exact answer itself — internal/live builds
// an incremental exact state with a single scan instead of running a
// whole-file job whose output it would throw away.
func RunLiveDeferExact(env *Env, job jobs.Numeric, path string, opts Options) (Report, *LiveState, error) {
	return runLive(env, job, path, opts, true)
}

func runLive(env *Env, job jobs.Numeric, path string, opts Options, deferExact bool) (Report, *LiveState, error) {
	opts = opts.withDefaults()
	if env == nil || env.FS == nil || env.Engine == nil {
		return Report{}, nil, errors.New("core: incomplete Env")
	}
	if job.Reducer == nil || job.Parse == nil {
		return Report{}, nil, errors.New("core: job needs Reducer and Parse")
	}
	size, err := env.FS.Stat(path)
	if err != nil {
		return Report{}, nil, err
	}

	// ---- Local-mode pilot + SSABE (§3.2). -----------------------------
	pilotSampler, err := sampling.NewPreMap(env.FS, path, opts.SplitSize, opts.Seed)
	if err != nil {
		return Report{}, nil, err
	}
	probe, err := pilotSampler.Sample(256)
	if errors.Is(err, sampling.ErrExhausted) {
		// Tiny data set: just run it exactly.
		if deferExact {
			rep := Report{Job: job.Name, UsedFull: true}
			return rep, exactLiveState(opts, aes.Plan{UseFull: true}, 0, size), nil
		}
		rep, err := runExact(env, job, path, opts)
		return rep, exactLiveState(opts, aes.Plan{UseFull: true}, rep.EstTotalN, size), err
	}
	if err != nil {
		return Report{}, nil, err
	}
	estTotal := pilotSampler.EstimatedTotalRecords()
	pilotN := int(opts.PilotFraction * float64(estTotal))
	if pilotN < opts.MinPilot {
		pilotN = opts.MinPilot
	}
	if pilotN > opts.MaxPilot {
		pilotN = opts.MaxPilot
	}
	pilot := make([]float64, 0, pilotN)
	for _, r := range probe {
		v, err := job.Parse(r.Line)
		if err != nil {
			return Report{}, nil, fmt.Errorf("core: pilot parse: %w", err)
		}
		pilot = append(pilot, v)
	}
	forced := opts.ForceB > 1 && opts.ForceN > 0
	if forced {
		pilotN = len(pilot) // plan is forced: the probe alone suffices for estTotal
	}
	if pilotN > len(pilot) {
		more, err := pilotSampler.Sample(pilotN - len(pilot))
		if err != nil && !errors.Is(err, sampling.ErrExhausted) {
			return Report{}, nil, err
		}
		for _, r := range more {
			v, err := job.Parse(r.Line)
			if err != nil {
				return Report{}, nil, fmt.Errorf("core: pilot parse: %w", err)
			}
			pilot = append(pilot, v)
		}
	}
	estTotal = pilotSampler.EstimatedTotalRecords() // refined by the larger pilot

	var plan aes.Plan
	if forced {
		plan = aes.Plan{B: opts.ForceB, N: opts.ForceN}
	} else {
		plan, err = aes.SSABE(pilot, estTotal, aes.Config{
			Reducer:     job.Reducer,
			Sigma:       opts.Sigma,
			Tau:         opts.Tau,
			Seed:        opts.Seed + 17,
			Metrics:     env.Metrics,
			Measure:     opts.Measure,
			Key:         job.Name,
			Parallelism: opts.Parallelism,
		})
		if err != nil {
			return Report{}, nil, err
		}
	}
	if plan.UseFull {
		// "EARL informs the user that an early estimation with the
		// specified accuracy is not faster than computing f over N" —
		// §3.1: switch back to the standard workflow.
		if deferExact {
			rep := Report{Job: job.Name, UsedFull: true, EstTotalN: estTotal}
			return rep, exactLiveState(opts, plan, estTotal, size), nil
		}
		rep, err := runExact(env, job, path, opts)
		rep.EstTotalN = estTotal
		return rep, exactLiveState(opts, plan, estTotal, size), err
	}

	// ---- Pipelined sampling job (§2.1's modified Hadoop flow). --------
	rep, st, err := runSampledJob(env, job, path, opts, plan, estTotal, size)
	rep.EstTotalN = estTotal
	return rep, st, err
}

// exactLiveState is the retained state of a run that used the exact
// path: no resampler, no sources — a maintained query over it keeps an
// incremental exact state instead (internal/live).
func exactLiveState(opts Options, plan aes.Plan, estTotal, syncedBytes int64) *LiveState {
	return &LiveState{Plan: plan, EstTotal: estTotal, SyncedBytes: syncedBytes, Opts: opts}
}

// shareOf splits a total target across m mappers.
func shareOf(target int64, m, idx int) int64 {
	base := target / int64(m)
	if int64(idx) < target%int64(m) {
		base++
	}
	return base
}

func runSampledJob(env *Env, job jobs.Numeric, path string, opts Options, plan aes.Plan, estTotal, syncedBytes int64) (Report, *LiveState, error) {
	splits, err := env.FS.Splits(path, opts.SplitSize)
	if err != nil {
		return Report{}, nil, err
	}
	m := opts.NumMappers
	if m > len(splits) {
		m = len(splits)
	}
	if m < 1 {
		m = 1
	}
	// Round-robin split ownership, one retained sampler per mapper.
	owned := make([][]dfs.Split, m)
	for i, sp := range splits {
		owned[i%m] = append(owned[i%m], sp)
	}
	sources, err := NewRecordSources(env, path, owned, opts, 0)
	if err != nil {
		return Report{}, nil, err
	}

	maxSample := int64(opts.MaxSampleFraction * float64(estTotal))
	if maxSample < int64(plan.N) {
		maxSample = int64(plan.N)
	}

	ctrl := &mr.Controller{}
	ctrl.RequestExpansion(int64(plan.N))

	// The error-file prefix is namespaced by a per-run id: the feedback
	// files are this run's private mailbox, and concurrent runs of the
	// same job must not read (or delete) each other's cv/generation.
	errPrefix := fmt.Sprintf("/earl/run-%d/%s/errors/", env.NextRunID(), job.Name)
	defer cleanupErrorFiles(env.FS, errPrefix)

	// Shared progress counters (the coordination state that in Hadoop
	// lives in task heartbeats and the shared JobID file space).
	var emitted, received atomic.Int64
	var exhausted atomic.Int32 // count of dry mappers
	sent := make([]atomic.Int64, m)
	dry := make([]atomic.Bool, m)

	var maint Resampler
	var maintErr error
	if opts.DisableDeltaMaintenance {
		maint, maintErr = delta.NewNaive(delta.Config{
			Reducer: job.Reducer, B: plan.B, Seed: opts.Seed + 31,
			Metrics: env.Metrics, Key: job.Name,
			Parallelism: opts.Parallelism,
		})
	} else {
		maint, maintErr = delta.New(delta.Config{
			Reducer: job.Reducer, B: plan.B, Seed: opts.Seed + 31,
			Metrics: env.Metrics, Key: job.Name,
			Parallelism: opts.Parallelism,
		})
	}
	if maintErr != nil {
		return Report{}, nil, maintErr
	}

	var gen atomic.Int64
	var finalCV atomic.Uint64
	finalCV.Store(math.Float64bits(math.Inf(1)))

	grow := func(buf []float64) error {
		// The multiset delivered per growth generation is deterministic
		// (every mapper draws a seeded share), but its arrival order at
		// the reducer depends on goroutine scheduling — and resample
		// updates index rng draws into the delta, so order matters.
		// Sorting restores a canonical order, making a fixed-seed run
		// bit-identical across repeats and at any Parallelism.
		sort.Float64s(buf)
		if err := maint.Grow(buf); err != nil {
			return err
		}
		g := gen.Add(1)
		vals, err := maint.Results()
		if err != nil {
			return err
		}
		cv, err := opts.Measure(vals)
		if err != nil {
			// Degenerate distribution (e.g. zero mean): report +Inf so
			// the loop keeps growing rather than mis-terminating.
			cv = math.Inf(1)
		}
		finalCV.Store(math.Float64bits(cv))
		ctrl.PublishError(cv)
		return env.FS.WriteFile(errPrefix+"part-0", formatErrorFile(errorFile{CV: cv, Gen: g}))
	}

	sjob := &mr.StreamJob{
		Name:        "earl-" + job.Name,
		NumMappers:  m,
		NumReducers: 1,
		Control:     ctrl,
		MapTask: func(ctx *mr.MapStream, idx int) error {
			err := mapTask(env, job, ctx, idx, mapTaskDeps{
				src:       sources[idx],
				opts:      opts,
				errPrefix: errPrefix,
				maxSample: maxSample,
				m:         m,
				initialN:  int64(plan.N),
				emitted:   &emitted,
				sent:      &sent[idx],
				dry:       &dry[idx],
				exhausted: &exhausted,
			})
			if err != nil && !dry[idx].Swap(true) {
				// A failed mapper (node death, unreadable blocks) will
				// deliver nothing more: account it like a dry one so the
				// surviving pipeline can settle and finish with achieved
				// accuracy (§3.4) instead of waiting for its share forever.
				exhausted.Add(1)
			}
			return err
		},
		ReduceTask: func(part int, in <-chan mr.KV) error {
			var buf []float64
			for kv := range in {
				v, ok := kv.Value.(float64)
				if !ok {
					return fmt.Errorf("core: reducer got %T", kv.Value)
				}
				buf = append(buf, v)
				received.Add(1)
				// Grow (and publish an error file) once the mappers have
				// delivered everything they will deliver for the current
				// target: either the target itself is met, or every
				// mapper has settled (met its share or run dry) and the
				// channel has drained.
				target := ctrl.ExpansionTarget()
				if received.Load() >= target ||
					(received.Load() == emitted.Load() && allSettled(sent, dry, target, m)) {
					if err := grow(buf); err != nil {
						return err
					}
					buf = buf[:0]
				}
			}
			if len(buf) > 0 {
				if err := grow(buf); err != nil {
					return err
				}
			}
			return nil
		},
	}

	// Watchdog: terminate when no further progress is possible, so the
	// pipeline drains and the job finishes with achieved accuracy
	// (§3.4). Records still buffered at the reducer are folded in by its
	// post-drain flush.
	stopWatch := make(chan struct{})
	go func() {
		watchdog(stopWatch, ctrl, &exhausted, &received, &emitted, &gen, m,
			func(target int64) bool { return allSettled(sent, dry, target, m) })
	}()
	sres, err := env.Engine.RunPipelined(sjob)
	close(stopWatch)
	if err != nil {
		return Report{}, nil, err
	}

	vals, err := maint.Results()
	if err != nil {
		return Report{}, nil, fmt.Errorf("core: no results (sample never arrived): %w", err)
	}
	cv := math.Float64frombits(finalCV.Load())
	p := float64(maint.N()) / float64(estTotal)
	rep, err := FinishReport(job, opts, vals, cv, p)
	if err != nil {
		return Report{}, nil, err
	}
	rep.B = plan.B
	rep.SampleSize = maint.N()
	rep.PlannedN = plan.N
	rep.Iterations = int(gen.Load())
	rep.FailedMaps = len(sres.FailedMappers)
	st := &LiveState{
		Plan:        plan,
		EstTotal:    estTotal,
		SyncedBytes: syncedBytes,
		Maint:       maint,
		Sources:     sources,
		Opts:        opts,
		Generations: int(gen.Load()),
	}
	return rep, st, nil
}

// FinishReport turns a result distribution into the user-facing numbers:
// the mean estimate, the percentile confidence interval, and the
// p-corrected versions of all three. The CI bounds pass through the user
// job's correct() exactly like the estimate — an uncorrected interval
// around a corrected extensive statistic (SUM, COUNT) could never cover
// the true value.
func FinishReport(job jobs.Numeric, opts Options, vals []float64, cv, p float64) (Report, error) {
	est, err := stats.Mean(vals)
	if err != nil {
		return Report{}, err
	}
	res := bootstrap.Result{Values: vals}
	lo, hi, err := res.PercentileCI(opts.Confidence)
	if err != nil {
		return Report{}, err
	}
	if p > 1 {
		p = 1
	}
	cLo, cHi := job.Reducer.Correct(lo, p), job.Reducer.Correct(hi, p)
	if cLo > cHi {
		cLo, cHi = cHi, cLo
	}
	return Report{
		Job:         job.Name,
		Estimate:    job.Reducer.Correct(est, p),
		Uncorrected: est,
		CV:          cv,
		CILo:        cLo,
		CIHi:        cHi,
		Converged:   cv <= opts.Sigma,
		FractionP:   p,
	}, nil
}

// mapTaskDeps carries the per-mapper wiring.
type mapTaskDeps struct {
	src       RecordSource
	opts      Options
	errPrefix string
	maxSample int64
	m         int
	initialN  int64
	emitted   *atomic.Int64
	sent      *atomic.Int64
	dry       *atomic.Bool
	exhausted *atomic.Int32
}

// doubledTarget is the deterministic expansion schedule: after the
// reducer's g-th error report the total target is initialN·2^g.
func doubledTarget(initialN, g int64) int64 {
	if g > 40 {
		g = 40 // avoid overflow; the fraction cap clamps long before this
	}
	return initialN << uint(g)
}

// mapTask is one long-lived sampling mapper: feed records toward the
// current target, then poll the reducers' error files and either
// terminate the job or expand the sample (§2.1's active mapper).
func mapTask(env *Env, job jobs.Numeric, ctx *mr.MapStream, idx int, d mapTaskDeps) error {
	ctrl := ctx.Controller()
	var lastGen int64
	const batch = 128
	for {
		if ctx.Terminated() {
			if !ctx.NodeAlive() {
				return fmt.Errorf("core: node died under mapper %d", idx)
			}
			return nil
		}
		target := ctrl.ExpansionTarget()
		share := shareOf(target, d.m, idx)
		if !d.dry.Load() && d.sent.Load() < share {
			k := share - d.sent.Load()
			if k > batch {
				k = batch
			}
			lines, err := d.src.Draw(int(k))
			for _, line := range lines {
				v, perr := job.Parse(line)
				if perr != nil {
					return fmt.Errorf("core: mapper %d parse: %w", idx, perr)
				}
				ctx.Emit(job.Name, v)
				d.sent.Add(1)
				d.emitted.Add(1)
			}
			if errors.Is(err, sampling.ErrExhausted) {
				d.dry.Store(true)
				d.exhausted.Add(1)
			} else if err != nil {
				return err
			}
			continue
		}
		// Feedback poll: average the reducers' error files (§3.3).
		avg, g, ok := readErrors(env.FS, d.errPrefix)
		if ok && g > lastGen {
			lastGen = g
			if avg <= d.opts.Sigma {
				ctrl.Terminate()
				return nil
			}
			// Deterministic doubling schedule keyed on the reducer
			// generation, so every mapper reacting to the same error file
			// requests the same expansion regardless of timing.
			next := doubledTarget(d.initialN, g)
			if next > d.maxSample {
				next = d.maxSample
			}
			if next > target {
				ctrl.RequestExpansion(next)
				continue
			}
			if target >= d.maxSample {
				// Cap reached and still above σ: stop expanding; the job
				// finishes with the accuracy actually achieved.
				ctrl.Terminate()
				return nil
			}
			// Another mapper already requested this generation's
			// expansion; fall through and keep feeding.
			continue
		}
		runtime.Gosched()
		time.Sleep(100 * time.Microsecond)
	}
}

// allSettled reports whether every mapper has either met its share of
// the target or run dry.
func allSettled(sent []atomic.Int64, dry []atomic.Bool, target int64, m int) bool {
	for i := 0; i < m; i++ {
		if dry[i].Load() {
			continue
		}
		if sent[i].Load() < shareOf(target, m, i) {
			return false
		}
	}
	return true
}

// watchdog terminates a pipelined sampling job once no further progress
// is possible. Two conditions end a job:
//
//  1. Every mapper has run dry (or failed) and everything emitted has
//     been consumed — nothing further can change.
//  2. The current growth generation can never complete: all surviving
//     mappers have settled (met their share or gone dry/dead), every
//     emitted record has been consumed, and the target is still unmet —
//     the share of a dead or dry mapper is simply missing. The reducer's
//     growth triggers only fire on arriving records, so without this the
//     job would wait for that share forever.
//
// Condition 2 must not fire during the instant between a completed
// generation and the mappers reacting to its error file (they look
// momentarily settled), so it requires the state to hold stably — no new
// generation, no new target — for several polling rounds, ample time for
// a live mapper's ~100µs feedback poll to raise the target.
func watchdog(stop <-chan struct{}, ctrl *mr.Controller,
	exhausted *atomic.Int32, received, emitted, gen *atomic.Int64, m int,
	settled func(target int64) bool) {
	var stable int
	lastGen, lastTarget := int64(-1), int64(-1)
	for {
		select {
		case <-stop:
			return
		default:
		}
		if int(exhausted.Load()) == m && received.Load() == emitted.Load() {
			ctrl.Terminate()
			return
		}
		target := ctrl.ExpansionTarget()
		g := gen.Load()
		if received.Load() == emitted.Load() && received.Load() < target && settled(target) {
			if g == lastGen && target == lastTarget {
				stable++
				if stable >= 10 {
					ctrl.Terminate()
					return
				}
			} else {
				stable = 0
				lastGen, lastTarget = g, target
			}
		} else {
			stable = 0
			lastGen, lastTarget = -1, -1
		}
		time.Sleep(200 * time.Microsecond)
	}
}
