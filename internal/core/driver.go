package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"

	"repro/internal/aes"
	"repro/internal/colscan"
	"repro/internal/jobs"
	"repro/internal/plan"
	"repro/internal/sampling"
)

// SamplerKind selects the sampling stage implementation (§3.3).
type SamplerKind string

// The two samplers of §3.3.
const (
	PreMapSampling  SamplerKind = "pre-map"  // Algorithm 2: sample split offsets before loading
	PostMapSampling SamplerKind = "post-map" // Algorithm 1: load, pool, draw without replacement
)

// Options tunes a Run. Zero values take the paper's defaults.
type Options struct {
	Sigma         float64     // target error bound σ; 0.05 (the paper's 5%) if 0
	Tau           float64     // SSABE relative stability threshold τ; aes default (0.03) if 0
	PilotFraction float64     // pilot sample fraction p; 0.01 (§3.2) if 0
	MinPilot      int         // pilot floor; 512 if 0
	MaxPilot      int         // pilot cap; 65536 if 0 (a pilot needs statistical resolution, not a fixed fraction of ever-larger data)
	Sampler       SamplerKind // PreMapSampling if empty
	NumMappers    int         // long-lived sampling mappers; 4 if 0
	SplitSize     int64       // input split size; DFS block size if 0
	Confidence    float64     // CI level for the report; 0.95 if 0
	Seed          uint64
	// ForceB / ForceN skip SSABE and use the given resample count /
	// initial sample size (experiment hooks; both must be set).
	ForceB int
	ForceN int
	// MaxSampleFraction caps sample expansion at this fraction of the
	// (estimated) data size before giving up on convergence; 0.5 if 0.
	MaxSampleFraction float64
	// Measure overrides the error measure (aes.CV if nil).
	Measure aes.Measure
	// DisableDeltaMaintenance switches the reducer to the naive
	// recompute-everything resampler (§4.1's baseline; Fig. 10 ablation).
	DisableDeltaMaintenance bool
	// Parallelism is the worker-pool size of the parallel resampling
	// engine (SSABE's pilot bootstraps and the reducer's delta-update
	// loop); runtime.GOMAXPROCS(0) if 0, 1 forces the sequential path.
	// Results are reproducible for a fixed Seed at any parallelism.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Sigma <= 0 {
		o.Sigma = 0.05
	}
	if o.PilotFraction <= 0 {
		o.PilotFraction = 0.01
	}
	if o.MinPilot <= 0 {
		o.MinPilot = 512
	}
	if o.MaxPilot <= 0 {
		o.MaxPilot = 65536
	}
	if o.MaxPilot < o.MinPilot {
		o.MaxPilot = o.MinPilot
	}
	if o.Sampler == "" {
		o.Sampler = PreMapSampling
	}
	if o.NumMappers <= 0 {
		o.NumMappers = 4
	}
	if o.Confidence <= 0 {
		o.Confidence = 0.95
	}
	if o.MaxSampleFraction <= 0 {
		o.MaxSampleFraction = 0.5
	}
	if o.Measure == nil {
		o.Measure = aes.CV
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Report is the outcome of one EARL run.
type Report struct {
	Job         string
	Estimate    float64 // corrected final result
	Uncorrected float64 // raw bootstrap estimate before correct()
	CV          float64 // achieved error at termination
	CILo, CIHi  float64 // percentile interval over the result distribution
	B           int     // bootstraps used
	SampleSize  int     // records actually consumed by the reducer
	PlannedN    int     // SSABE's initial sample size
	Iterations  int     // reducer growth generations (1 = SSABE got it right)
	UsedFull    bool    // fell back to the exact full-data job
	Converged   bool    // final error ≤ σ
	FractionP   float64 // sampling fraction handed to correct()
	FailedMaps  int     // mapper tasks lost to failures (§3.4 path)
	EstTotalN   int64   // estimated total records in the input
}

// Resampler abstracts the optimized and naive bootstrap reducers
// (Fig. 10): a growing sample whose B resample statistics can be read at
// any time. It is exported so maintained queries (internal/live) can keep
// growing the same resample set across ingest batches.
type Resampler interface {
	Grow([]float64) error
	Results() ([]float64, error)
	N() int
	// Updates reports cumulative per-item state operations — the work
	// measure delta maintenance minimises (§4, Fig. 10).
	Updates() int64
}

// StatState is the retained working state of one statistic of a sampled
// run: its SSABE plan and its delta-maintained resample set.
type StatState struct {
	Plan  aes.Plan
	Maint Resampler // nil when the run fell back to the exact path
}

// LiveState is the retained working state of one sampled run: the
// per-statistic SSABE plans and delta-maintained resample sets (one
// entry per statistic; a single-statistic run has exactly one), plus the
// per-mapper sampling streams the statistics share. Run discards it;
// RunLive hands it to the caller so a maintained query can keep the
// early answer fresh as data is appended, paying only for the delta.
type LiveState struct {
	Stats       []StatState
	EstTotal    int64          // estimated records covered so far
	SyncedBytes int64          // file bytes covered (the ingest high-water mark)
	Sources     []RecordSource // retained per-mapper samplers (without-replacement across refreshes)
	Opts        Options        // with defaults applied
	Generations int            // Grow generations applied so far
	SelSE       float64        // relative std. error of the filtered-subpopulation size estimate (0 = exact)
}

// Run executes job over the line-encoded numeric file at path with early
// approximate results per the paper's full workflow.
func Run(env *Env, job jobs.Numeric, path string, opts Options) (Report, error) {
	rep, _, err := RunLive(env, job, path, opts)
	return rep, err
}

// RunLive is Run, but it additionally returns the run's retained working
// state so the caller can maintain the result under appended data
// (internal/live builds on this). The state's Stats[0].Maint is nil when
// the run fell back to the exact full-data job.
func RunLive(env *Env, job jobs.Numeric, path string, opts Options) (Report, *LiveState, error) {
	reps, st, err := runMultiLive(env, []jobs.Numeric{job}, path, opts, nil, false)
	if err != nil {
		return Report{}, nil, err
	}
	return reps[0], st, nil
}

// RunLiveDeferExact is RunLive, except that a fall-back to the exact
// path does NOT execute the exact MR job: the returned Report carries
// only UsedFull/EstTotalN and the LiveState has no maintainers. The
// caller is expected to produce the exact answer itself — internal/live
// builds an incremental exact state with a single scan instead of
// running a whole-file job whose output it would throw away.
func RunLiveDeferExact(env *Env, job jobs.Numeric, path string, opts Options) (Report, *LiveState, error) {
	reps, st, err := runMultiLive(env, []jobs.Numeric{job}, path, opts, nil, true)
	if err != nil {
		return Report{}, nil, err
	}
	return reps[0], st, nil
}

// RunMulti executes a set of statistics over the same records as ONE
// shared-pass run: one pilot, one SSABE plan per statistic, one sampled
// map phase sized at the largest planned n, and one pass over the drawn
// records feeding every statistic's resample set. The input is read once
// regardless of how many statistics ride the pass — a k-statistic run
// costs the IO of the most demanding single statistic plus only
// resampling CPU for the rest. One Report is returned per statistic, in
// job order; the run terminates when every statistic meets σ (or the
// expansion cap is hit).
//
// The statistics must share the input record format: records are parsed
// once with the first job's Parse and the value feeds every statistic
// (true of all built-in numeric jobs, which read one number per line).
//
// Every statistic's resample set is maintained over the full shared
// sample (not capped at its own planned n_i) — see statSink for why the
// maintained-query path requires the per-statistic samples to stay at
// one common sampling fraction.
func RunMulti(env *Env, jset []jobs.Numeric, path string, opts Options) ([]Report, error) {
	reps, _, err := RunMultiLive(env, jset, path, opts)
	return reps, err
}

// RunMultiLive is RunMulti, additionally returning the retained working
// state (one StatState per statistic) for maintained queries.
func RunMultiLive(env *Env, jset []jobs.Numeric, path string, opts Options) ([]Report, *LiveState, error) {
	return runMultiLive(env, jset, path, opts, nil, false)
}

// RunMultiLiveDeferExact is RunMultiLive with the deferred-exact
// fall-back contract of RunLiveDeferExact.
func RunMultiLiveDeferExact(env *Env, jset []jobs.Numeric, path string, opts Options) ([]Report, *LiveState, error) {
	return runMultiLive(env, jset, path, opts, nil, true)
}

// jobsetTag names a statistic set for error-file namespaces and MR job
// names ("mean", "mean+p95+count").
func jobsetTag(jset []jobs.Numeric) string {
	names := make([]string, len(jset))
	for i, j := range jset {
		names[i] = j.Name
	}
	return strings.Join(names, "+")
}

func runMultiLive(env *Env, jset []jobs.Numeric, path string, opts Options, prog *plan.Program, deferExact bool) ([]Report, *LiveState, error) {
	opts = opts.withDefaults()
	if env == nil || env.FS == nil || env.Engine == nil {
		return nil, nil, errors.New("core: incomplete Env")
	}
	if len(jset) == 0 {
		return nil, nil, errors.New("core: need at least one job")
	}
	for _, job := range jset {
		if job.Reducer == nil || job.Parse == nil {
			return nil, nil, errors.New("core: job needs Reducer and Parse")
		}
	}
	size, err := env.View().Stat(path)
	if err != nil {
		return nil, nil, err
	}

	// ---- Local-mode pilot + SSABE (§3.2), shared by every statistic. --
	pilotSampler, err := sampling.NewPreMap(env.View(), path, opts.SplitSize, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	// Built-in jobs carry a columnar format: the pilot rides the
	// vectorized scan path too (it shares env.Scan's decoded blocks with
	// the sampled job that follows, and with every other run over the
	// file). Custom parsers (FormatNone) stay on the per-record path.
	// A plan run scans under the plan's own input format: the filter may
	// read the key column even though the statistics only see numbers.
	format := jset[0].ScanFormat
	if prog != nil {
		format = prog.InputFormat()
	}
	if format != colscan.FormatNone {
		if err := pilotSampler.EnableColumnar(env.Scan, format); err != nil {
			return nil, nil, err
		}
	}
	parsePilot := func(recs []sampling.Record, into []float64) ([]float64, error) {
		for _, r := range recs {
			v, err := jset[0].Parse(r.Line)
			if err != nil {
				return nil, fmt.Errorf("core: pilot parse: %w", err)
			}
			into = append(into, v)
		}
		return into, nil
	}
	var pilotSc *plan.Scratch
	if prog != nil {
		pilotSc = plan.NewScratch()
	}
	// drawPilot extends the pilot by up to n values on whichever path is
	// active, passing sampling.ErrExhausted through to the caller. Under
	// a plan, n counts POST-FILTER records: the pilot keeps drawing raw
	// records through σ/π until n survivors arrive (or the file is dry),
	// so SSABE sizes the sample against the filtered subpopulation — the
	// population the statistics and their confidence intervals are about.
	drawPilot := func(n int, into []float64) ([]float64, error) {
		if prog != nil {
			var raw, kept colscan.Cols
			for n > 0 {
				raw.Reset()
				got, serr := pilotSampler.SampleCols(n, &raw)
				if got > 0 {
					kept.Reset()
					k, aerr := prog.Apply(pilotSc, &raw, &kept, false)
					if aerr != nil {
						return into, aerr
					}
					into = append(into, kept.Vals...)
					n -= k
				}
				if serr != nil {
					return into, serr
				}
			}
			return into, nil
		}
		if format != colscan.FormatNone {
			var cols colscan.Cols
			_, err := pilotSampler.SampleCols(n, &cols)
			return append(into, cols.Vals...), err
		}
		recs, err := pilotSampler.Sample(n)
		if err != nil && !errors.Is(err, sampling.ErrExhausted) {
			return into, err
		}
		out, perr := parsePilot(recs, into)
		if perr != nil {
			return into, perr
		}
		return out, err
	}
	// Pilot records are real input reads (the sampler backtracks lines out
	// of DFS blocks), so they are charged to RecordsRead like every other
	// mapper delivery. The pilot is drawn ONCE per run however many
	// statistics ride it — charging it is what makes the shared-pilot
	// saving of RunMulti visible in the counters.
	defer func() { env.Metrics.RecordsRead.Add(int64(pilotSampler.Taken())) }()
	pilot, err := drawPilot(256, make([]float64, 0, 256))
	if errors.Is(err, sampling.ErrExhausted) {
		// Tiny data set: just run it exactly.
		fullPlans := make([]aes.Plan, len(jset))
		for i := range fullPlans {
			fullPlans[i] = aes.Plan{UseFull: true}
		}
		if deferExact {
			return exactReports(jset, 0, false), exactLiveState(opts, fullPlans, 0, size), nil
		}
		reps, estN, err := runExactMulti(env, jset, path, opts, prog)
		return reps, exactLiveState(opts, fullPlans, estN, size), err
	}
	if err != nil {
		return nil, nil, err
	}
	// effTotal estimates the population the run is over: the whole file,
	// scaled by the pilot's observed selectivity when a filter is pushed
	// down. Filter-then-sample means every N below — SSABE's, the
	// expansion cap's, the correction fraction p's — is denominated in
	// effective (post-filter subpopulation) records.
	effTotal := func() int64 {
		raw := pilotSampler.EstimatedTotalRecords()
		if prog == nil || !prog.HasFilter() {
			return raw
		}
		taken := pilotSampler.Taken()
		if taken == 0 {
			return raw
		}
		est := int64(float64(raw) * float64(len(pilot)) / float64(taken))
		if est < 1 {
			est = 1
		}
		return est
	}
	estTotal := effTotal()
	pilotN := int(opts.PilotFraction * float64(estTotal))
	if pilotN < opts.MinPilot {
		pilotN = opts.MinPilot
	}
	if pilotN > opts.MaxPilot {
		pilotN = opts.MaxPilot
	}
	forced := opts.ForceB > 1 && opts.ForceN > 0
	if forced {
		pilotN = len(pilot) // plan is forced: the probe alone suffices for estTotal
		if prog != nil && prog.HasFilter() && pilotN < opts.MinPilot {
			// Under a filter the pilot doubles as the selectivity
			// estimator; the probe alone makes the effective-N denominator
			// (and every corrected statistic) too noisy.
			pilotN = opts.MinPilot
		}
	}
	if pilotN > len(pilot) {
		if pilot, err = drawPilot(pilotN-len(pilot), pilot); err != nil && !errors.Is(err, sampling.ErrExhausted) {
			return nil, nil, err
		}
	}
	estTotal = effTotal() // refined by the larger pilot

	// selSE is the relative standard error of the pilot's selectivity
	// estimate — the only noisy factor in the effective subpopulation
	// size. FinishReport widens extensive statistics' intervals by it;
	// it is 0 (no widening, bit-identical reports) without a filter.
	var selSE float64
	if prog != nil && prog.HasFilter() {
		if taken := pilotSampler.Taken(); taken > 0 && len(pilot) > 0 {
			sel := float64(len(pilot)) / float64(taken)
			if sel < 1 {
				selSE = math.Sqrt((1 - sel) / (sel * float64(taken)))
			}
		}
	}

	plans := make([]aes.Plan, len(jset))
	useFull := false
	for i, job := range jset {
		if forced {
			plans[i] = aes.Plan{B: opts.ForceB, N: opts.ForceN}
			continue
		}
		plans[i], err = aes.SSABE(pilot, estTotal, aes.Config{
			Reducer:     job.Reducer,
			Sigma:       opts.Sigma,
			Tau:         opts.Tau,
			Seed:        opts.Seed + 17,
			Metrics:     env.Metrics,
			Measure:     opts.Measure,
			Key:         job.Name,
			Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, nil, err
		}
		useFull = useFull || plans[i].UseFull
	}
	if useFull {
		// "EARL informs the user that an early estimation with the
		// specified accuracy is not faster than computing f over N" —
		// §3.1: switch back to the standard workflow. One statistic
		// needing the full pass means the shared pass reads everything,
		// so the whole set takes the exact path together.
		if deferExact {
			return exactReports(jset, estTotal, true), exactLiveState(opts, plans, estTotal, size), nil
		}
		reps, _, err := runExactMulti(env, jset, path, opts, prog)
		for i := range reps {
			reps[i].EstTotalN = estTotal
		}
		return reps, exactLiveState(opts, plans, estTotal, size), err
	}

	// ---- Pipelined sampling job (§2.1's modified Hadoop flow). --------
	reps, st, err := runSampledJob(env, jset, path, opts, plans, prog, estTotal, size, selSE)
	for i := range reps {
		reps[i].EstTotalN = estTotal
	}
	return reps, st, err
}

// exactReports renders the deferred-exact placeholder reports.
func exactReports(jset []jobs.Numeric, estTotal int64, setEst bool) []Report {
	reps := make([]Report, len(jset))
	for i, job := range jset {
		reps[i] = Report{Job: job.Name, UsedFull: true}
		if setEst {
			reps[i].EstTotalN = estTotal
		}
	}
	return reps
}

// runExactMulti executes every statistic exactly over ONE full scan of
// the file (the stock-Hadoop fall-back, preserving the multi-statistic
// read-once contract) and returns the record count observed. A single
// statistic without a plan keeps the historical runExact path
// bit-for-bit; a plan run filters/derives each scanned record through
// the per-record reference evaluator, so the exact answer is over
// exactly the subpopulation the sampled path estimates.
func runExactMulti(env *Env, jset []jobs.Numeric, path string, opts Options, prog *plan.Program) ([]Report, int64, error) {
	if len(jset) == 1 && prog == nil {
		rep, err := runExact(env, jset[0], path, opts)
		if err != nil {
			return nil, 0, err
		}
		return []Report{rep}, int64(rep.SampleSize), nil
	}
	outs, n, err := runExactMultiJob(env, jset, path, opts.SplitSize, prog)
	if err != nil {
		return nil, 0, err
	}
	reps := make([]Report, len(jset))
	for i, job := range jset {
		reps[i] = Report{
			Job:         job.Name,
			Estimate:    outs[i],
			Uncorrected: outs[i],
			CILo:        outs[i],
			CIHi:        outs[i],
			B:           1,
			SampleSize:  n,
			UsedFull:    true,
			Converged:   true,
			FractionP:   1,
			Iterations:  1,
		}
	}
	return reps, int64(n), nil
}

// exactLiveState is the retained state of a run that used the exact
// path: no resamplers, no sources — a maintained query over it keeps an
// incremental exact state instead (internal/live).
func exactLiveState(opts Options, plans []aes.Plan, estTotal, syncedBytes int64) *LiveState {
	st := &LiveState{EstTotal: estTotal, SyncedBytes: syncedBytes, Opts: opts}
	for _, p := range plans {
		st.Stats = append(st.Stats, StatState{Plan: p})
	}
	return st
}

// runSampledJob drives the generic engine with a statSink: one reduce
// partition whose sink feeds every statistic from the shared sample.
func runSampledJob(env *Env, jset []jobs.Numeric, path string, opts Options, plans []aes.Plan, prog *plan.Program, estTotal, syncedBytes int64, selSE float64) ([]Report, *LiveState, error) {
	var initialN int64
	for _, p := range plans {
		if int64(p.N) > initialN {
			initialN = int64(p.N)
		}
	}
	maxSample := int64(opts.MaxSampleFraction * float64(estTotal))
	if maxSample < initialN {
		maxSample = initialN
	}

	sink, err := newStatSink(env, jset, plans, opts)
	if err != nil {
		return nil, nil, err
	}
	tag := jobsetTag(jset)
	primary := jset[0]
	format := primary.ScanFormat
	route := func(line string) (string, float64, error) {
		// The one-key degenerate case: every record routes to the
		// single reduce partition under the job-set's own name.
		v, err := primary.Parse(line)
		return primary.Name, v, err
	}
	if prog != nil {
		// Plan runs draw transformed columns straight from the pushed-
		// down sources; the per-record route must never fire (a filter
		// cannot be expressed as ParseKV — it would have to drop lines).
		format = prog.InputFormat()
		route = func(string) (string, float64, error) {
			return "", 0, errors.New("core: plan runs use the columnar path")
		}
	}
	res, err := runEngine(env, path, opts, engineSpec{
		Name:     "earl-" + tag,
		ErrTag:   tag,
		Route:    route,
		Sinks:    []ResultSink{sink},
		InitialN: initialN,
		MaxN:     maxSample,
		Format:   format,
		Key:      primary.Name,
		// A scalar plan may scan keyed input (a filter over the key
		// column) while still routing every survivor to the one
		// synthetic reduce key.
		Keyed: prog == nil && format == colscan.FormatKV,
		Prog:  prog,
	})
	if err != nil {
		return nil, nil, err
	}

	st := &LiveState{
		EstTotal:    estTotal,
		SyncedBytes: syncedBytes,
		Sources:     res.Sources,
		Opts:        opts,
		Generations: res.Generations,
		SelSE:       selSE,
	}
	reps := make([]Report, len(jset))
	for i, sr := range sink.stats {
		vals, err := sr.maint.Results()
		if err != nil {
			return nil, nil, fmt.Errorf("core: no results (sample never arrived): %w", err)
		}
		p := float64(sr.maint.N()) / float64(estTotal)
		rep, err := FinishReport(sr.job, opts, vals, sr.lastCV, p, selSE)
		if err != nil {
			return nil, nil, err
		}
		rep.B = sr.plan.B
		rep.SampleSize = sr.maint.N()
		rep.PlannedN = sr.plan.N
		rep.Iterations = res.Generations
		rep.FailedMaps = res.FailedMaps
		reps[i] = rep
		st.Stats = append(st.Stats, StatState{Plan: sr.plan, Maint: sr.maint})
	}
	return reps, st, nil
}
