package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/colscan"
	"repro/internal/dfs"
	"repro/internal/mr"
	"repro/internal/plan"
	"repro/internal/sampling"
)

// This file is the generic execution engine every sampled EARL run goes
// through — scalar, multi-statistic and grouped alike. The paper's
// pipeline (long-lived sampling mappers, a growing reducer publishing
// §3.3 error files, the deterministic doubling expansion schedule, the
// §3.4 watchdog) is implemented exactly once here, parameterized over
// two small abstractions:
//
//   - ParseKV routes one input line to a (reduce key, value) pair. The
//     scalar driver routes every record to a single synthetic key — the
//     one-key degenerate case — while grouped runs route by the record's
//     own group key.
//   - ResultSink consumes one growth generation of routed, canonically
//     ordered values per reduce partition and reports the partition's
//     current error estimate. The scalar sink maintains one resample set
//     per statistic (all fed the same shared sample); the grouped sink
//     maintains one per group key.
//
// Everything upstream (pilot, SSABE planning) and downstream (reports,
// retained live state) stays in the thin per-mode drivers.

// ParseKV decodes one input line into a (group key, value) pair — the
// native shape of MapReduce data ("key\tvalue" lines by default). It is
// also the engine's routing abstraction: the key selects the reduce
// partition and the ResultSink entry the value is folded into.
type ParseKV func(line string) (key string, value float64, err error)

// ErrBadRecord re-exports the decode layer's errors.Is-able sentinel:
// malformed lines and non-finite (NaN/±Inf) values. A run that samples
// a poisoned record fails with it instead of corrupting the estimate.
var ErrBadRecord = colscan.ErrBadRecord

// TabKV parses the "key\tvalue" records produced by workload.KVSpec.
// NaN/±Inf values and tab-less lines are rejected wrapping ErrBadRecord
// (with bounded quoting — a malformed multi-MB line must not balloon
// the §3.3 error files).
func TabKV(line string) (string, float64, error) {
	k, v, err := colscan.ParseKVString(line)
	if err != nil {
		return "", 0, fmt.Errorf("core: %w", err)
	}
	return k, v, nil
}

// Route bundles the engine's record-decoding choices: the per-record
// parser (always required — the reference semantics) and the columnar
// format the vectorized scan path may decode the same records with.
// FormatNone keeps a custom parser on the per-record path.
type Route struct {
	Parse  ParseKV
	Format colscan.Format
}

// TabRoute is the grouped default: TabKV with the columnar "key\tvalue"
// decoder behind it.
func TabRoute() Route { return Route{Parse: TabKV, Format: colscan.FormatKV} }

// ResultSink is the engine's result-maintenance abstraction: one sink
// per reduce partition consumes routed growth deltas and answers the
// partition's current error. Grow is called once per (generation, key)
// in canonical order — keys sorted, values sorted ascending — which is
// what keeps fixed-seed runs bit-identical at any parallelism; after a
// generation's keys are folded the engine asks ErrorEstimate once and
// publishes it to the §3.3 error file. A sink is only ever called from
// its partition's reducer goroutine during the run; reads after the run
// are ordered by the engine's completion.
type ResultSink interface {
	// Grow folds vals (sorted ascending) for key into the maintained
	// state.
	Grow(key string, vals []float64) error
	// ErrorEstimate returns the error of the current state; +Inf when it
	// cannot be trusted yet (no data, degenerate distribution, a group
	// below its minimum sample).
	ErrorEstimate() float64
}

// engineSpec parameterizes one run of the generic engine.
type engineSpec struct {
	Name     string       // MR job name (cosmetic/metrics)
	ErrTag   string       // error-file namespace tag, unique per job shape
	Route    ParseKV      // line → (reduce key, value)
	Sinks    []ResultSink // one per reduce partition
	InitialN int64        // SSABE's initial sample target
	MaxN     int64        // expansion cap (records)
	// Format puts the mappers on the vectorized scan path: draws arrive
	// as parsed columns and whole batches are emitted as []float64.
	// FormatNone (custom parsers) keeps the per-record Route path.
	Format colscan.Format
	// Key is the reduce key every record routes to under FormatNumeric
	// (the scalar one-key degenerate case); keyed records carry their
	// own keys.
	Key string
	// Keyed marks runs whose emitted records carry per-record reduce
	// keys (grouped runs). Legacy runs derive it from Format, but a
	// scalar plan can scan FormatKV input (a key-filter over "k\tv"
	// lines) while still routing everything to the one synthetic Key.
	Keyed bool
	// Prog, when non-nil, is the compiled query plan pushed into the
	// sampling sources: σ runs at pool fill / draw time, so every record
	// reaching the mappers is already filtered, derived and labeled.
	Prog *plan.Program
}

// engineResult is what the engine hands back to the driver; the results
// themselves live in the sinks.
type engineResult struct {
	Generations int
	FailedMaps  int
	Sources     []RecordSource // retained per-mapper samplers for live maintenance
}

// mapperShards splits the file's splits round-robin across at most
// opts.NumMappers owners (at least one).
func mapperShards(env *Env, path string, opts Options) ([][]dfs.Split, error) {
	splits, err := env.View().Splits(path, opts.SplitSize)
	if err != nil {
		return nil, err
	}
	m := opts.NumMappers
	if m > len(splits) {
		m = len(splits)
	}
	if m < 1 {
		m = 1
	}
	owned := make([][]dfs.Split, m)
	for i, sp := range splits {
		owned[i%m] = append(owned[i%m], sp)
	}
	return owned, nil
}

// runEngine executes the pipelined sampling job of §2.1: long-lived
// mappers draw from their retained samplers toward the controller's
// expansion target, the per-partition reducers fold routed deltas into
// their sinks and publish error files, and the mappers react to those
// files by terminating the job or doubling the target (§3.3). The §3.4
// watchdog ends jobs that can no longer make progress, so the run
// finishes with achieved accuracy through node failures and dry regions.
func runEngine(env *Env, path string, opts Options, spec engineSpec) (engineResult, error) {
	owned, err := mapperShards(env, path, opts)
	if err != nil {
		return engineResult{}, err
	}
	m := len(owned)
	sources, err := NewRecordSources(env, path, owned, opts, 0, spec.Format, spec.Prog)
	if err != nil {
		return engineResult{}, err
	}

	ctrl := &mr.Controller{}
	ctrl.RequestExpansion(spec.InitialN)

	// The error-file prefix is namespaced by a per-run id: the feedback
	// files are this run's private mailbox, and concurrent runs of the
	// same job must not read (or delete) each other's cv/generation.
	errPrefix := fmt.Sprintf("/earl/run-%d/%s/errors/", env.NextRunID(), spec.ErrTag)
	defer cleanupErrorFiles(env.FS, errPrefix)

	// Shared progress counters (the coordination state that in Hadoop
	// lives in task heartbeats and the shared JobID file space).
	var emitted, received atomic.Int64
	var exhausted atomic.Int32 // count of dry mappers
	sent := make([]atomic.Int64, m)
	dry := make([]atomic.Bool, m)
	var gen atomic.Int64

	mapLoop := func(ctx *mr.MapStream, idx int) error {
		var lastGen int64
		const batch = 128
		// The vectorized scan path: a columnar-capable source under a
		// concrete format delivers parsed columns, and the mapper emits
		// whole batches ([]float64 per reduce key) instead of one boxed
		// float64 per record. Record sequences and generation contents
		// are bit-identical to the per-record path — emission stays
		// share-gated, and a batch never exceeds the remaining share.
		cs, _ := sources[idx].(ColSource)
		useCols := spec.Format != colscan.FormatNone && cs != nil
		var buckets map[string][]float64
		if useCols && spec.Keyed {
			buckets = map[string][]float64{}
		}
		for {
			if ctx.Terminated() {
				if !ctx.NodeAlive() {
					return fmt.Errorf("core: node died under mapper %d", idx)
				}
				return nil
			}
			target := ctrl.ExpansionTarget()
			share := shareOf(target, m, idx)
			if !dry[idx].Load() && sent[idx].Load() < share {
				k := share - sent[idx].Load()
				if k > batch {
					k = batch
				}
				if useCols {
					// Fresh columns per batch: the emitted slices cross
					// the shuffle channel and are retained by the
					// reducer until its next fold.
					cols := &colscan.Cols{}
					n, err := cs.DrawCols(int(k), cols)
					if n > 0 {
						if spec.Keyed {
							emitKeyed(ctx, cols, buckets)
						} else {
							ctx.Emit(spec.Key, cols.Vals)
						}
						sent[idx].Add(int64(n))
						emitted.Add(int64(n))
					}
					if errors.Is(err, sampling.ErrExhausted) {
						dry[idx].Store(true)
						exhausted.Add(1)
					} else if err != nil {
						return err
					}
					continue
				}
				lines, err := sources[idx].Draw(int(k))
				for _, line := range lines {
					key, v, perr := spec.Route(line)
					if perr != nil {
						return fmt.Errorf("core: mapper %d parse: %w", idx, perr)
					}
					ctx.Emit(key, v)
					sent[idx].Add(1)
					emitted.Add(1)
				}
				if errors.Is(err, sampling.ErrExhausted) {
					dry[idx].Store(true)
					exhausted.Add(1)
				} else if err != nil {
					return err
				}
				continue
			}
			// Feedback poll: average the reducers' error files (§3.3),
			// acting only on rounds every partition has published.
			avg, g, ok := readErrors(env.FS, errPrefix, len(spec.Sinks))
			if ok && g > lastGen {
				lastGen = g
				if avg <= opts.Sigma {
					ctrl.Terminate()
					return nil
				}
				// Deterministic doubling schedule keyed on the reducer
				// generation, so every mapper reacting to the same error
				// file requests the same expansion regardless of timing.
				next := doubledTarget(spec.InitialN, g)
				if next > spec.MaxN {
					next = spec.MaxN
				}
				if next > target {
					ctrl.RequestExpansion(next)
					continue
				}
				if target >= spec.MaxN {
					// Cap reached and still above σ: stop expanding; the
					// job finishes with the accuracy actually achieved.
					ctrl.Terminate()
					return nil
				}
				// Another mapper already requested this generation's
				// expansion; fall through and keep feeding.
				continue
			}
			runtime.Gosched()
			time.Sleep(100 * time.Microsecond)
		}
	}

	sjob := &mr.StreamJob{
		Name:        spec.Name,
		NumMappers:  m,
		NumReducers: len(spec.Sinks),
		Control:     ctrl,
		MapTask: func(ctx *mr.MapStream, idx int) error {
			err := mapLoop(ctx, idx)
			if err != nil && !dry[idx].Swap(true) {
				// A failed mapper (node death, unreadable blocks) will
				// deliver nothing more: account it like a dry one so the
				// surviving pipeline can settle and finish with achieved
				// accuracy (§3.4) instead of waiting for its share forever.
				exhausted.Add(1)
			}
			return err
		},
		ReduceTask: func(part int, in <-chan mr.KV) error {
			sink := spec.Sinks[part]
			buf := map[string][]float64{}
			bufN := 0
			foldedEver := false     // any record ever folded into this sink
			var round int64         // this partition's completed growth rounds
			lastFolded := int64(-1) // last expansion target folded for
			growAll := func() error {
				// Fold keys in sorted order with sorted deltas: the
				// per-generation multiset is deterministic, but map
				// iteration and reducer arrival order are not, and
				// resample updates consume seeded rng draws — canonical
				// ordering keeps fixed-seed runs bit-identical across
				// repeats and at any Parallelism.
				keys := make([]string, 0, len(buf))
				for key := range buf {
					keys = append(keys, key)
				}
				sort.Strings(keys)
				for _, key := range keys {
					vals := buf[key]
					if len(vals) == 0 {
						continue
					}
					sort.Float64s(vals)
					if err := sink.Grow(key, vals); err != nil {
						return err
					}
					foldedEver = true
				}
				buf = map[string][]float64{}
				bufN = 0
				round++
				// gen tracks the run's round count: the max over the
				// partitions' local rounds (they advance in lockstep —
				// the feedback barrier below holds every round open
				// until all partitions publish it).
				for {
					cur := gen.Load()
					if round <= cur || gen.CompareAndSwap(cur, round) {
						break
					}
				}
				cv := sink.ErrorEstimate()
				if !foldedEver {
					// A partition no group key routes to has no opinion:
					// NaN is skipped by the mappers' cv average (unlike
					// +Inf, which means "has data, needs more" and must
					// keep the expansion going).
					cv = math.NaN()
				}
				ctrl.PublishError(cv)
				return env.FS.WriteFile(
					fmt.Sprintf("%spart-%d", errPrefix, part),
					formatErrorFile(errorFile{CV: cv, Gen: round}))
			}
			// The receive loop polls as well as consumes: a round can
			// complete globally (received == target) without this
			// partition seeing another arrival, and the feedback barrier
			// needs every partition's error file for the round. Each
			// partition folds exactly once per expansion target — the
			// round's full routed multiset, whatever the arrival
			// interleaving — which is what keeps multi-partition runs
			// deterministic.
			tick := time.NewTicker(100 * time.Microsecond)
			defer tick.Stop()
			for open := true; open; {
				select {
				case kv, ok := <-in:
					if !ok {
						open = false
						break
					}
					switch v := kv.Value.(type) {
					case float64:
						buf[kv.Key] = append(buf[kv.Key], v)
						bufN++
						received.Add(1)
					case []float64:
						// One batch from the vectorized scan path: count
						// every record toward the growth trigger, exactly
						// like the per-record arrivals.
						buf[kv.Key] = append(buf[kv.Key], v...)
						bufN += len(v)
						received.Add(int64(len(v)))
					default:
						return fmt.Errorf("core: reducer got %T", kv.Value)
					}
				case <-tick.C:
				}
				// Grow (and publish the round's error file) once the
				// mappers have delivered everything they will deliver for
				// the current target: either the target itself is met
				// (every routed record of the round has been buffered by
				// its partition), or every mapper has settled (met its
				// share or run dry) and the channel has drained — the
				// latter only with deltas in hand, so a dry pipeline
				// cannot mint empty rounds.
				target := ctrl.ExpansionTarget()
				if target == lastFolded {
					continue
				}
				if received.Load() >= target ||
					(bufN > 0 && received.Load() == emitted.Load() && allSettled(sent, dry, target, m)) {
					lastFolded = target
					if err := growAll(); err != nil {
						return err
					}
				}
			}
			if bufN > 0 {
				if err := growAll(); err != nil {
					return err
				}
			}
			return nil
		},
	}

	// Watchdog: terminate when no further progress is possible, so the
	// pipeline drains and the job finishes with achieved accuracy (§3.4).
	// Records still buffered at the reducers are folded in by their
	// post-drain flush.
	stopWatch := make(chan struct{})
	go func() {
		watchdog(stopWatch, ctrl, &exhausted, &received, &emitted, &gen, m,
			func(target int64) bool { return allSettled(sent, dry, target, m) })
	}()
	sres, err := env.Engine.RunPipelined(sjob)
	close(stopWatch)
	if err != nil {
		return engineResult{}, err
	}
	// Data corruption is not a lost node: a mapper that died on a bad
	// record (NaN/±Inf or a malformed line) must fail the run so the
	// poisoned record surfaces through the §3.3 error path, instead of
	// being tolerated as §3.4 node loss and silently reporting an
	// estimate over partial data.
	for _, merr := range sres.MapperErrs {
		if errors.Is(merr, ErrBadRecord) {
			return engineResult{}, merr
		}
	}
	return engineResult{
		Generations: int(gen.Load()),
		FailedMaps:  len(sres.FailedMappers),
		Sources:     sources,
	}, nil
}

// emitKeyed buckets one decoded batch by group key and emits one fresh
// []float64 per key (the batched grouped route). scratch is the
// mapper's reusable bucket map; emitted slices are copies because they
// cross the shuffle channel and outlive the next batch. Emission order
// over keys is map order — safe here because the reducer buffers a full
// generation and folds it canonically (sorted keys, sorted values), so
// within-generation arrival order never reaches the resample streams.
func emitKeyed(ctx *mr.MapStream, cols *colscan.Cols, scratch map[string][]float64) {
	for i, key := range cols.Keys {
		scratch[key] = append(scratch[key], cols.Vals[i])
	}
	for key, vs := range scratch { //earl:nondet-ok reducer buffers the generation and folds it canonically (sorted keys, sorted values)
		if len(vs) == 0 {
			continue
		}
		ctx.Emit(key, append([]float64(nil), vs...))
		scratch[key] = vs[:0]
	}
}

// shareOf splits a total target across m mappers.
func shareOf(target int64, m, idx int) int64 {
	base := target / int64(m)
	if int64(idx) < target%int64(m) {
		base++
	}
	return base
}

// doubledTarget is the deterministic expansion schedule: after the
// reducer's g-th error report the total target is initialN·2^g.
func doubledTarget(initialN, g int64) int64 {
	if g > 40 {
		g = 40 // avoid overflow; the fraction cap clamps long before this
	}
	return initialN << uint(g)
}

// allSettled reports whether every mapper has either met its share of
// the target or run dry.
func allSettled(sent []atomic.Int64, dry []atomic.Bool, target int64, m int) bool {
	for i := 0; i < m; i++ {
		if dry[i].Load() {
			continue
		}
		if sent[i].Load() < shareOf(target, m, i) {
			return false
		}
	}
	return true
}

// watchdog terminates a pipelined sampling job once no further progress
// is possible. Two conditions end a job:
//
//  1. Every mapper has run dry (or failed) and everything emitted has
//     been consumed — nothing further can change.
//  2. The current growth generation can never complete: all surviving
//     mappers have settled (met their share or gone dry/dead), every
//     emitted record has been consumed, and the target is still unmet —
//     the share of a dead or dry mapper is simply missing. The reducers'
//     growth triggers only fire on arriving records, so without this the
//     job would wait for that share forever.
//
// Condition 2 must not fire during the instant between a completed
// generation and the mappers reacting to its error file (they look
// momentarily settled), so it requires the state to hold stably — no new
// generation, no new target — for several polling rounds, ample time for
// a live mapper's ~100µs feedback poll to raise the target.
func watchdog(stop <-chan struct{}, ctrl *mr.Controller,
	exhausted *atomic.Int32, received, emitted, gen *atomic.Int64, m int,
	settled func(target int64) bool) {
	var stable int
	lastGen, lastTarget := int64(-1), int64(-1)
	for {
		select {
		case <-stop:
			return
		default:
		}
		if int(exhausted.Load()) == m && received.Load() == emitted.Load() {
			ctrl.Terminate()
			return
		}
		target := ctrl.ExpansionTarget()
		g := gen.Load()
		if received.Load() == emitted.Load() && received.Load() < target && settled(target) {
			if g == lastGen && target == lastTarget {
				stable++
				if stable >= 10 {
					ctrl.Terminate()
					return
				}
			} else {
				stable = 0
				lastGen, lastTarget = g, target
			}
		} else {
			stable = 0
			lastGen, lastTarget = -1, -1
		}
		time.Sleep(200 * time.Microsecond)
	}
}
