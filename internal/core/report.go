package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/bootstrap"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/stats"
)

// Report assembly shared by the batch drivers and internal/live's
// maintained refreshes: FinishReport renders one statistic's result
// distribution, GroupedReportFrom renders a grouped run's per-key
// resample sets.

// GroupResult is one group's early estimate.
type GroupResult struct {
	Estimate   float64
	CV         float64
	SampleSize int
}

// GroupedReport is the outcome of a grouped early run.
type GroupedReport struct {
	Job        string
	Groups     map[string]GroupResult
	Iterations int
	Converged  bool // every (sufficiently sampled) group reached σ
	SampleSize int  // total records consumed
	FailedMaps int
}

// FinishReport turns a result distribution into the user-facing numbers:
// the mean estimate, the percentile confidence interval, and the
// p-corrected versions of all three. The CI bounds pass through the user
// job's correct() exactly like the estimate — an uncorrected interval
// around a corrected extensive statistic (SUM, COUNT) could never cover
// the true value.
func FinishReport(job jobs.Numeric, opts Options, vals []float64, cv, p float64) (Report, error) {
	est, err := stats.Mean(vals)
	if err != nil {
		return Report{}, err
	}
	res := bootstrap.Result{Values: vals}
	lo, hi, err := res.PercentileCI(opts.Confidence)
	if err != nil {
		return Report{}, err
	}
	if p > 1 {
		p = 1
	}
	cLo, cHi := job.Reducer.Correct(lo, p), job.Reducer.Correct(hi, p)
	if cLo > cHi {
		cLo, cHi = cHi, cLo
	}
	return Report{
		Job:         job.Name,
		Estimate:    job.Reducer.Correct(est, p),
		Uncorrected: est,
		CV:          cv,
		CILo:        cLo,
		CIHi:        cHi,
		Converged:   cv <= opts.Sigma,
		FractionP:   p,
	}, nil
}

// GroupedReportFrom assembles per-group results from the maintained resample
// sets (shared by the initial grouped run and every live refresh).
func GroupedReportFrom(job jobs.Numeric, opts Options, maints map[string]*delta.Maintainer) (GroupedReport, error) {
	rep := GroupedReport{
		Job:       job.Name,
		Groups:    map[string]GroupResult{},
		Converged: true,
	}
	for key, mt := range maints {
		vals, err := mt.Results()
		if err != nil {
			return rep, err
		}
		est, err := stats.Mean(vals)
		if err != nil {
			return rep, err
		}
		cv, cvErr := mt.CV()
		if cvErr != nil {
			cv = math.Inf(1)
		}
		rep.Groups[key] = GroupResult{Estimate: est, CV: cv, SampleSize: mt.N()}
		rep.SampleSize += mt.N()
		if cv > opts.Sigma {
			rep.Converged = false
		}
	}
	if len(rep.Groups) == 0 {
		return rep, errors.New("core: grouped run produced no groups")
	}
	return rep, nil
}

// SortedGroupKeys returns the report's keys in order, for stable output.
func (g GroupedReport) SortedGroupKeys() []string {
	keys := make([]string, 0, len(g.Groups))
	for k := range g.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
