package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/bootstrap"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/stats"
)

// Report assembly shared by the batch drivers and internal/live's
// maintained refreshes: FinishReport renders one statistic's result
// distribution, GroupedReportFrom renders a grouped run's per-key
// resample sets.

// GroupResult is one group's early estimate.
type GroupResult struct {
	Estimate   float64
	CV         float64
	SampleSize int
}

// GroupedReport is the outcome of a grouped early run.
type GroupedReport struct {
	Job        string
	Groups     map[string]GroupResult
	Iterations int
	Converged  bool // every (sufficiently sampled) group reached σ
	SampleSize int  // total records consumed
	FailedMaps int
}

// FinishReport turns a result distribution into the user-facing numbers:
// the mean estimate, the percentile confidence interval, and the
// p-corrected versions of all three. The CI bounds pass through the user
// job's correct() exactly like the estimate — an uncorrected interval
// around a corrected extensive statistic (SUM, COUNT) could never cover
// the true value.
//
// selSE is the relative standard error of the estimated (sub)population
// size; it is nonzero only when a pushed-down filter made the
// population an ESTIMATE (effective N = raw N × pilot selectivity)
// rather than a byte-derived count. Extensive statistics divide by that
// estimate, so their corrected values inherit its noise on top of the
// bootstrap's — the percentile interval alone would systematically
// under-cover the subpopulation truth. The interval is widened by the
// delta method: the selectivity term (z·selSE·estimate at the report's
// confidence level) combines with each percentile half-width in
// quadrature. p-invariant statistics (mean, quantiles) never touch the
// population estimate and are left exactly as before.
func FinishReport(job jobs.Numeric, opts Options, vals []float64, cv, p, selSE float64) (Report, error) {
	est, err := stats.Mean(vals)
	if err != nil {
		return Report{}, err
	}
	res := bootstrap.Result{Values: vals}
	lo, hi, err := res.PercentileCI(opts.Confidence)
	if err != nil {
		return Report{}, err
	}
	if p > 1 {
		p = 1
	}
	cEst := job.Reducer.Correct(est, p)
	cLo, cHi := job.Reducer.Correct(lo, p), job.Reducer.Correct(hi, p)
	if cLo > cHi {
		cLo, cHi = cHi, cLo
	}
	if selSE > 0 && pSensitive(job, p) {
		conf := opts.Confidence
		if conf <= 0 {
			conf = 0.95
		}
		z, zerr := stats.NormalQuantile(0.5 + conf/2)
		if zerr != nil {
			return Report{}, zerr
		}
		extra := z * selSE * math.Abs(cEst)
		cLo = cEst - math.Sqrt((cEst-cLo)*(cEst-cLo)+extra*extra)
		cHi = cEst + math.Sqrt((cHi-cEst)*(cHi-cEst)+extra*extra)
	}
	return Report{
		Job:         job.Name,
		Estimate:    cEst,
		Uncorrected: est,
		CV:          cv,
		CILo:        cLo,
		CIHi:        cHi,
		Converged:   cv <= opts.Sigma,
		FractionP:   p,
	}, nil
}

// pSensitive reports whether the job's correction actually uses the
// sampling fraction (probed numerically: extensive statistics like SUM
// and COUNT scale by 1/p, intensive ones return their input unchanged).
func pSensitive(job jobs.Numeric, p float64) bool {
	return job.Reducer.Correct(1, p) != 1 || job.Reducer.Correct(-3, p) != -3
}

// GroupedReportFrom assembles per-group results from the maintained resample
// sets (shared by the initial grouped run and every live refresh).
func GroupedReportFrom(job jobs.Numeric, opts Options, maints map[string]*delta.Maintainer) (GroupedReport, error) {
	rep := GroupedReport{
		Job:       job.Name,
		Groups:    map[string]GroupResult{},
		Converged: true,
	}
	for key, mt := range maints {
		vals, err := mt.Results()
		if err != nil {
			return rep, err
		}
		est, err := stats.Mean(vals)
		if err != nil {
			return rep, err
		}
		cv, cvErr := mt.CV()
		if cvErr != nil {
			cv = math.Inf(1)
		}
		rep.Groups[key] = GroupResult{Estimate: est, CV: cv, SampleSize: mt.N()}
		rep.SampleSize += mt.N()
		if cv > opts.Sigma {
			rep.Converged = false
		}
	}
	if len(rep.Groups) == 0 {
		return rep, errors.New("core: grouped run produced no groups")
	}
	return rep, nil
}

// SortedGroupKeys returns the report's keys in order, for stable output.
func (g GroupedReport) SortedGroupKeys() []string {
	keys := make([]string, 0, len(g.Groups))
	for k := range g.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
