package core

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/colscan"
	"repro/internal/colseg"
	"repro/internal/jobs"
	"repro/internal/plan"
	"repro/internal/workload"
)

// coldEnv builds a simulated cluster with /data (60k numeric records)
// and /kv (30k key\tvalue records), with persistent columnar sidecars
// either live or disabled end to end. Every run against a fresh env is
// a cold read: the scan cache is empty, so the sidecar path (or the
// text decoder, when disabled) serves every first load.
func coldEnv(t *testing.T, disableSidecars bool) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		DataNodes:       5,
		SlotsPerNode:    4,
		BlockSize:       1 << 14,
		Replication:     2,
		Seed:            21,
		DisableSidecars: disableSidecars,
	})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 60_000, Seed: 21}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(xs)); err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile("/kv", kvData()); err != nil {
		t.Fatal(err)
	}
	if !disableSidecars {
		for _, p := range []string{"/data", "/kv"} {
			if _, ok := env.FS.SidecarStat(p); !ok {
				t.Fatalf("ingest built no sidecar for %s", p)
			}
		}
	}
	return env
}

// TestColdReadEquivalenceGoldens pins the tentpole correctness bar: a
// sidecar-backed cold read produces bit-identical reports to the text
// decode path — scalar, grouped, multi-statistic and plan-filtered, at
// sequential, bounded and default parallelism — while actually serving
// from the sidecar (SidecarReads > 0 proves the fast path ran).
func TestColdReadEquivalenceGoldens(t *testing.T) {
	for _, par := range []int{1, 4, 0} {
		t.Run("scalar", func(t *testing.T) {
			run := func(disable bool) (Report, colscan.CacheStats) {
				env := coldEnv(t, disable)
				rep, err := Run(env, jobs.Median(), "/data", Options{
					Sigma: 0.05, Seed: 22, Sampler: PostMapSampling, Parallelism: par,
				})
				if err != nil {
					t.Fatal(err)
				}
				return rep, env.Scan.Stats()
			}
			side, st := run(false)
			text, _ := run(true)
			if !reflect.DeepEqual(side, text) {
				t.Fatalf("par=%d: sidecar report diverged from text:\n%+v\n%+v", par, side, text)
			}
			if st.SidecarReads == 0 {
				t.Fatalf("par=%d: no cold read came from the sidecar", par)
			}
			if st.SidecarErrors != 0 {
				t.Fatalf("par=%d: %d sidecar errors on clean data", par, st.SidecarErrors)
			}
		})
		t.Run("grouped", func(t *testing.T) {
			run := func(disable bool) GroupedReport {
				env := coldEnv(t, disable)
				rep, err := RunGrouped(env, jobs.Mean(), TabRoute(), "/kv", Options{
					Sigma: 0.05, Seed: 23, Parallelism: par,
				})
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			if side, text := run(false), run(true); !reflect.DeepEqual(side, text) {
				t.Fatalf("par=%d: grouped reports diverged:\n%+v\n%+v", par, side, text)
			}
		})
		t.Run("multi", func(t *testing.T) {
			run := func(disable bool) []Report {
				env := coldEnv(t, disable)
				reps, err := RunMulti(env, []jobs.Numeric{jobs.Mean(), jobs.Median()}, "/data", Options{
					Sigma: 0.05, Seed: 24, Sampler: PostMapSampling, Parallelism: par,
				})
				if err != nil {
					t.Fatal(err)
				}
				return reps
			}
			if side, text := run(false), run(true); !reflect.DeepEqual(side, text) {
				t.Fatalf("par=%d: multi reports diverged:\n%+v\n%+v", par, side, text)
			}
		})
		t.Run("plan-filtered", func(t *testing.T) {
			run := func(disable bool) *PlanResult {
				env := coldEnv(t, disable)
				res, err := RunPlan(env, plan.Spec{
					Path: "/data", Stats: []string{"mean"}, Filter: "v > 0.2",
					Sigma: 0.05, Seed: 25, Sampler: "post-map", Parallelism: par,
				}, Options{})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			if side, text := run(false), run(true); !reflect.DeepEqual(side, text) {
				t.Fatalf("par=%d: plan results diverged:\n%+v\n%+v", par, side, text)
			}
		})
	}
}

// TestColdReadCorruptSidecarFallsBack pins the failure contract: a
// damaged sidecar — payload bit flip or truncated footer — is detected
// (ErrCorrupt through the error hook, SidecarErrors counted), the load
// falls back to text decode, and the report stays bit-identical to the
// no-sidecar golden. Corruption costs speed, never a wrong answer.
func TestColdReadCorruptSidecarFallsBack(t *testing.T) {
	opts := Options{Sigma: 0.05, Seed: 26, Sampler: PostMapSampling, Parallelism: 4}
	goldenEnv := coldEnv(t, true)
	golden, err := Run(goldenEnv, jobs.Median(), "/data", opts)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func(env *Env) bool{
		"payload bit flip": func(env *Env) bool { return env.FS.CorruptSidecarByte("/data", 40) },
		"truncated footer": func(env *Env) bool {
			size, _ := env.FS.SidecarStat("/data")
			return env.FS.TruncateSidecar("/data", size-20)
		},
	}
	for name, hurt := range damage {
		t.Run(name, func(t *testing.T) {
			env := coldEnv(t, false)
			var mu sync.Mutex
			var hookErrs []error
			env.Scan.OnSidecarError(func(key colscan.BlockKey, err error) {
				mu.Lock()
				hookErrs = append(hookErrs, err)
				mu.Unlock()
			})
			if !hurt(env) {
				t.Fatal("fault injection found no sidecar")
			}
			rep, err := Run(env, jobs.Median(), "/data", opts)
			if err != nil {
				t.Fatalf("run over a corrupt sidecar failed instead of falling back: %v", err)
			}
			if !reflect.DeepEqual(rep, golden) {
				t.Fatalf("corrupt-sidecar report diverged from text golden:\n%+v\n%+v", rep, golden)
			}
			st := env.Scan.Stats()
			if st.SidecarErrors == 0 {
				t.Fatal("corruption went uncounted")
			}
			mu.Lock()
			defer mu.Unlock()
			if len(hookErrs) == 0 {
				t.Fatal("error hook never fired")
			}
			for _, e := range hookErrs {
				if !errors.Is(e, colseg.ErrCorrupt) {
					t.Fatalf("hook error %v does not wrap colseg.ErrCorrupt", e)
				}
			}
		})
	}
}
