package core

import (
	"repro/internal/jobs"
	"repro/internal/plan"
)

// This file is the driver's front door for the query-plan layer
// (internal/plan): it binds a plan.Spec to run Options, compiles the
// σ/π/γ program, and dispatches onto the scalar or grouped live driver
// with the program pushed into the sampling sources. Every front end —
// the public earl builder, earlctl, earld — funnels through PreparePlan,
// so normalization, defaulting and compilation cannot drift between
// them.

// PlannedQuery is a normalized, compiled plan bound to its run options.
type PlannedQuery struct {
	Spec plan.Spec     // normalized (canonical expressions, resolved stats)
	Prog *plan.Program // nil for degenerate plans (legacy path, bit-identical)
	Jobs []jobs.Numeric
	Opts Options // spec knobs folded in
}

// Grouped reports whether the plan routes per-group (γ present).
func (pq *PlannedQuery) Grouped() bool { return pq.Spec.GroupBy != "" }

// PreparePlan normalizes and compiles spec against opts. Spec fields
// left at their zero value inherit from opts (so a builder user can
// keep tuning knobs in Options); set spec fields win and are copied
// back into the returned Opts, keeping the two views consistent.
func PreparePlan(spec plan.Spec, opts Options) (*PlannedQuery, error) {
	if spec.Sigma == 0 {
		spec.Sigma = opts.Sigma
	}
	if spec.Sampler == "" {
		spec.Sampler = string(opts.Sampler)
	}
	if spec.Seed == 0 {
		spec.Seed = opts.Seed
	}
	if spec.Parallelism == 0 {
		spec.Parallelism = opts.Parallelism
	}
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	opts.Sigma = spec.Sigma
	opts.Sampler = SamplerKind(spec.Sampler)
	opts.Seed = spec.Seed
	opts.Parallelism = spec.Parallelism
	jset, err := spec.JobSet()
	if err != nil {
		return nil, err
	}
	prog, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	return &PlannedQuery{Spec: spec, Prog: prog, Jobs: jset, Opts: opts}, nil
}

// PlanResult is RunPlan's outcome: per-statistic reports for scalar
// plans, or the per-group report when the plan groups.
type PlanResult struct {
	Reports []Report       `json:"reports,omitempty"`
	Groups  *GroupedReport `json:"groups,omitempty"`
}

// RunPlan executes one plan end to end: normalize, compile, and run on
// the sampled driver with the program pushed into the sources.
// Degenerate plans (no σ/π, group-by "" or "key") take the historical
// code paths and are bit-identical to Run/RunMulti/RunGrouped.
func RunPlan(env *Env, spec plan.Spec, opts Options) (*PlanResult, error) {
	pq, err := PreparePlan(spec, opts)
	if err != nil {
		return nil, err
	}
	if pq.Grouped() {
		rep, _, err := RunPlanGroupedLive(env, pq.Jobs[0], pq.Spec.Path, pq.Opts, pq.Prog)
		if err != nil {
			return nil, err
		}
		return &PlanResult{Groups: &rep}, nil
	}
	reps, _, err := runMultiLive(env, pq.Jobs, pq.Spec.Path, pq.Opts, pq.Prog, false)
	if err != nil {
		return nil, err
	}
	return &PlanResult{Reports: reps}, nil
}

// RunPlanMultiLiveDeferExact is the scalar plan driver with retained
// live state and the exact fall-back deferred — what a maintained plan
// watch (internal/live) starts from. opts must already carry the spec's
// knobs (PreparePlan's Opts); prog nil is the legacy path, bit-identical
// to RunMultiLiveDeferExact.
func RunPlanMultiLiveDeferExact(env *Env, jset []jobs.Numeric, path string, opts Options, prog *plan.Program) ([]Report, *LiveState, error) {
	return runMultiLive(env, jset, path, opts, prog, true)
}

// RunPlanGroupedLive is the grouped plan driver with retained live
// state. A degenerate grouped plan (group-by "key", no σ/π — prog nil)
// runs the legacy tab route, bit-identical to RunGroupedLive.
func RunPlanGroupedLive(env *Env, job jobs.Numeric, path string, opts Options, prog *plan.Program) (GroupedReport, *GroupedLiveState, error) {
	route := Route{}
	if prog == nil {
		route = TabRoute()
	}
	return runGroupedLive(env, job, route, path, opts, prog)
}
