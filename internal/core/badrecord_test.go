package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/colscan"
	"repro/internal/jobs"
	"repro/internal/workload"
)

// poisonedData renders xs as records with one NaN record planted
// mid-file.
func poisonedData(xs []float64) []byte {
	body := workload.EncodeLinesFixed(xs)
	lines := bytes.SplitAfter(body, []byte("\n"))
	mid := len(lines) / 2
	var out bytes.Buffer
	for i, l := range lines {
		if i == mid {
			out.WriteString("NaN\n")
		}
		out.Write(l)
	}
	return out.Bytes()
}

// TestRunRejectsNaNRecord is the headline bugfix regression: a NaN
// record mid-file must fail the run with a clean errors.Is-able
// ErrBadRecord under BOTH samplers — never corrupt the estimate. ForceN
// covers the whole file so the pre-map sampler is guaranteed to meet
// the poisoned record.
func TestRunRejectsNaNRecord(t *testing.T) {
	for _, sampler := range []SamplerKind{PreMapSampling, PostMapSampling} {
		env, err := NewEnv(EnvConfig{BlockSize: 1 << 12, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 4000, Seed: 7}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if err := env.FS.WriteFile("/data", poisonedData(xs)); err != nil {
			t.Fatal(err)
		}
		_, err = Run(env, jobs.Mean(), "/data", Options{
			Sampler: sampler, Seed: 8, ForceB: 8, ForceN: 4001,
		})
		if err == nil {
			t.Fatalf("%s: NaN record did not fail the run", sampler)
		}
		if !errors.Is(err, ErrBadRecord) {
			t.Fatalf("%s: error %v is not errors.Is(ErrBadRecord)", sampler, err)
		}
	}
}

// TestRunGroupedRejectsNaNRecord covers the keyed route: the columnar
// KV decoder rejects the poisoned value the same way.
func TestRunGroupedRejectsNaNRecord(t *testing.T) {
	env, err := NewEnv(EnvConfig{BlockSize: 1 << 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < 3000; i++ {
		if i == 1500 {
			buf.WriteString("g1\tNaN\n")
		}
		key := "g0"
		if i%2 == 1 {
			key = "g1"
		}
		fmt.Fprintf(&buf, "%s\t%0.4f\n", key, float64(i%97)+0.5)
	}
	if err := env.FS.WriteFile("/kv", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	_, err = RunGrouped(env, jobs.Mean(), TabRoute(), "/kv", Options{
		Seed: 10, ForceB: 8, ForceN: 3001,
	})
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("grouped run over NaN record: %v", err)
	}
}

// TestColumnarMatchesPerRecord pins the tentpole equivalence: the same
// job run through the vectorized scan path and through the per-record
// path (ScanFormat stripped, same Parse) produces bit-identical
// reports, under both samplers.
func TestColumnarMatchesPerRecord(t *testing.T) {
	for _, sampler := range []SamplerKind{PreMapSampling, PostMapSampling} {
		run := func(format colscan.Format) Report {
			env, xs := testEnv(t, 60_000, workload.Uniform, 31)
			_ = xs
			job := jobs.Median()
			job.ScanFormat = format
			rep, err := Run(env, job, "/data", Options{Sigma: 0.05, Seed: 32, Sampler: sampler})
			if err != nil {
				t.Fatalf("%s format=%d: %v", sampler, format, err)
			}
			return rep
		}
		cols := run(colscan.FormatNumeric)
		rows := run(colscan.FormatNone)
		if math.Float64bits(cols.Estimate) != math.Float64bits(rows.Estimate) ||
			math.Float64bits(cols.CV) != math.Float64bits(rows.CV) ||
			cols.SampleSize != rows.SampleSize ||
			cols.CILo != rows.CILo || cols.CIHi != rows.CIHi {
			t.Fatalf("%s: columnar report diverged from per-record:\n%+v\n%+v", sampler, cols, rows)
		}
	}
}

// kvData renders 30k `key\tvalue` records over three keys — the shared
// fixture for the grouped columnar equivalence and determinism tests.
func kvData() []byte {
	var buf bytes.Buffer
	keys := []string{"api", "db", "web"}
	for i := 0; i < 30_000; i++ {
		buf.WriteString(keys[i%3])
		buf.WriteString("\t")
		buf.Write(workload.EncodeLinesFixed([]float64{float64((i*i)%997) / 7}))
	}
	return buf.Bytes()
}

// TestGroupedColumnarMatchesPerRecord is the keyed-route counterpart:
// TabRoute (columnar) vs a bare Route{Parse: TabKV} (per-record) on the
// same data and seed agree group for group, bit for bit.
func TestGroupedColumnarMatchesPerRecord(t *testing.T) {
	run := func(route Route) GroupedReport {
		env, err := NewEnv(EnvConfig{BlockSize: 1 << 14, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		if err := env.FS.WriteFile("/kv", kvData()); err != nil {
			t.Fatal(err)
		}
		rep, err := RunGrouped(env, jobs.Mean(), route, "/kv", Options{Sigma: 0.05, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cols := run(TabRoute())
	rows := run(Route{Parse: TabKV})
	if len(cols.Groups) != len(rows.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(cols.Groups), len(rows.Groups))
	}
	for key, g := range cols.Groups {
		r, ok := rows.Groups[key]
		if !ok {
			t.Fatalf("group %q missing on per-record path", key)
		}
		if math.Float64bits(g.Estimate) != math.Float64bits(r.Estimate) ||
			math.Float64bits(g.CV) != math.Float64bits(r.CV) ||
			g.SampleSize != r.SampleSize {
			t.Fatalf("group %q diverged:\n%+v\n%+v", key, g, r)
		}
	}
}

// TestGroupedColumnarDeterministicAcrossParallelism extends the
// fixed-seed golden contract to the vectorized grouped route: the same
// seed produces bit-identical grouped reports at any Parallelism, even
// though splits are decoded and folded by a worker pool.
func TestGroupedColumnarDeterministicAcrossParallelism(t *testing.T) {
	runAt := func(par int) GroupedReport {
		env, err := NewEnv(EnvConfig{BlockSize: 1 << 14, Seed: 71})
		if err != nil {
			t.Fatal(err)
		}
		if err := env.FS.WriteFile("/kv", kvData()); err != nil {
			t.Fatal(err)
		}
		rep, err := RunGrouped(env, jobs.Mean(), TabRoute(), "/kv", Options{
			Sigma: 0.05, Seed: 72, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	golden := runAt(1)
	for _, par := range []int{4, 0} {
		if got := runAt(par); !reflect.DeepEqual(golden, got) {
			t.Fatalf("Parallelism=%d grouped reports differ from sequential:\n%+v\n%+v", par, golden, got)
		}
	}
}
