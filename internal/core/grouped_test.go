package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/stats"
)

// groupedEnv writes key\tvalue records with known per-key means.
func groupedEnv(t testing.TB, keys, n int, seed uint64) (*Env, map[string]float64) {
	t.Helper()
	env, err := NewEnv(EnvConfig{BlockSize: 1 << 14, SlotsPerNode: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e99))
	sums := map[string]float64{}
	counts := map[string]int{}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("g%02d", rng.IntN(keys))
		base := float64(10 * (1 + int([]byte(k)[2]-'0') + 10*int([]byte(k)[1]-'0')))
		v := base + rng.NormFloat64()*3
		fmt.Fprintf(&sb, "%s\t%012.6f\n", k, v)
		sums[k] += v
		counts[k]++
	}
	truth := map[string]float64{}
	for k, s := range sums {
		truth[k] = s / float64(counts[k])
	}
	if err := env.FS.WriteFile("/kv", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	return env, truth
}

func TestRunGroupedMeanPerKey(t *testing.T) {
	env, truth := groupedEnv(t, 8, 120_000, 3)
	rep, err := RunGrouped(env, jobs.Mean(), TabRoute(), "/kv", Options{Sigma: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != len(truth) {
		t.Fatalf("got %d groups, want %d", len(rep.Groups), len(truth))
	}
	if !rep.Converged {
		t.Fatalf("grouped run did not converge: %+v", rep)
	}
	for k, want := range truth {
		got, ok := rep.Groups[k]
		if !ok {
			t.Fatalf("missing group %s", k)
		}
		if rel := math.Abs(got.Estimate-want) / want; rel > 0.15 {
			t.Fatalf("group %s: estimate %v vs truth %v (rel %v)", k, got.Estimate, want, rel)
		}
		if got.CV > 0.05 {
			t.Fatalf("group %s cv = %v > σ", k, got.CV)
		}
		if got.SampleSize < 8 {
			t.Fatalf("group %s sample %d too small", k, got.SampleSize)
		}
	}
	// Still a sampling win: far fewer records consumed than exist.
	if rep.SampleSize > 120_000/2 {
		t.Fatalf("grouped run consumed %d records", rep.SampleSize)
	}
	if got := rep.SortedGroupKeys(); len(got) != len(truth) || got[0] > got[len(got)-1] {
		t.Fatalf("sorted keys wrong: %v", got)
	}
}

func TestRunGroupedValidation(t *testing.T) {
	env, _ := groupedEnv(t, 2, 100, 5)
	if _, err := RunGrouped(nil, jobs.Mean(), TabRoute(), "/kv", Options{}); err == nil {
		t.Fatal("nil env should error")
	}
	if _, err := RunGrouped(env, jobs.Numeric{}, TabRoute(), "/kv", Options{}); err == nil {
		t.Fatal("empty job should error")
	}
	if _, err := RunGrouped(env, jobs.Mean(), Route{}, "/kv", Options{}); err == nil {
		t.Fatal("nil parser should error")
	}
	if _, err := RunGrouped(env, jobs.Mean(), TabRoute(), "/missing", Options{}); err == nil {
		t.Fatal("missing path should error")
	}
}

func TestTabKV(t *testing.T) {
	k, v, err := TabKV("host-1\t3.5")
	if err != nil || k != "host-1" || v != 3.5 {
		t.Fatalf("TabKV = %q %v %v", k, v, err)
	}
	if _, _, err := TabKV("no-tab-here"); err == nil {
		t.Fatal("missing tab should error")
	}
	if _, _, err := TabKV("k\tnot-a-number"); err == nil {
		t.Fatal("bad value should error")
	}
}

func TestRunGroupedSkewedKeys(t *testing.T) {
	// Zipf-ish key skew: the dominant key converges immediately while
	// rare keys force expansion; the run must still terminate with every
	// key estimated.
	env, err := NewEnv(EnvConfig{BlockSize: 1 << 14, SlotsPerNode: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	var sb strings.Builder
	var sums [3]float64
	var counts [3]int
	for i := 0; i < 60_000; i++ {
		k := 0
		switch {
		case rng.Float64() < 0.90:
			k = 0
		case rng.Float64() < 0.8:
			k = 1
		default:
			k = 2
		}
		v := float64(100*(k+1)) + rng.NormFloat64()*5
		fmt.Fprintf(&sb, "key%d\t%012.6f\n", k, v)
		sums[k] += v
		counts[k]++
	}
	if err := env.FS.WriteFile("/skew", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	rep, err := RunGrouped(env, jobs.Mean(), TabRoute(), "/skew", Options{Sigma: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 3 {
		t.Fatalf("groups = %v", rep.SortedGroupKeys())
	}
	for k := 0; k < 3; k++ {
		name := fmt.Sprintf("key%d", k)
		want := sums[k] / float64(counts[k])
		got := rep.Groups[name]
		if rel := math.Abs(got.Estimate-want) / want; rel > 0.15 {
			t.Fatalf("%s: %v vs %v", name, got.Estimate, want)
		}
	}
	_ = stats.Sum([]float64{0}) // reference keeps the import local to this test
}
