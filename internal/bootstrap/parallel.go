package bootstrap

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/pool"
	"repro/internal/stats"
)

// The parallel engine shards the B resamples of a Monte-Carlo bootstrap
// across a worker pool. Reproducibility contract: the work is cut into
// fixed-size shards (shardSize resamples each, independent of the worker
// count), each shard owns a deterministic rng stream derived from two
// seed words drawn once from the caller's rng, and each shard writes its
// values into its own segment of the result slice — so Result.Values is
// bit-identical at parallelism 1, 4, or GOMAXPROCS for the same caller
// rng state.

// shardSize is the number of resamples evaluated per rng shard. It is a
// fixed constant — never derived from the parallelism — because the
// shard decomposition defines the value stream.
const shardSize = 64

// Workers resolves a parallelism request: p itself when positive,
// otherwise runtime.GOMAXPROCS(0).
func Workers(p int) int { return pool.Workers(p) }

// runShards evaluates B statistic values across a pool of Workers(
// parallelism) goroutines. newEval is called once per worker so each can
// own scratch buffers; the returned eval computes the value of resample
// b using the shard's rng. The first error in shard order is returned.
func runShards(seed1, seed2 uint64, B, parallelism int, newEval func() func(rng *rand.Rand, b int) (float64, error)) ([]float64, error) {
	values := make([]float64, B)
	nShards := (B + shardSize - 1) / shardSize
	err := pool.ForEachWorker(nShards, Workers(parallelism), func() func(int) error {
		eval := newEval()
		return func(k int) error {
			rng := stats.SplitRNG(seed1, seed2, k)
			lo := k * shardSize
			hi := min(lo+shardSize, B)
			for b := lo; b < hi; b++ {
				v, err := eval(rng, b)
				if err != nil {
					return fmt.Errorf("bootstrap: f on resample %d: %w", b, err)
				}
				values[b] = v
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return values, nil
}

// ParallelMonteCarlo is MonteCarlo with the B resamples sharded across a
// worker pool of Workers(parallelism) goroutines. The two seed words for
// the per-shard streams are drawn from rng up front (exactly two
// Uint64s), so the caller's rng advances the same way at any
// parallelism and Result.Values is reproducible per the engine contract
// above.
func ParallelMonteCarlo(rng *rand.Rand, s []float64, f Statistic, B, parallelism int) (Result, error) {
	if len(s) == 0 {
		return Result{}, stats.ErrEmpty
	}
	if B < 2 {
		return Result{}, fmt.Errorf("%w, got %d", ErrTooFewResamples, B)
	}
	orig, err := f(s)
	if err != nil {
		return Result{}, fmt.Errorf("bootstrap: f on original sample: %w", err)
	}
	seed1, seed2 := rng.Uint64(), rng.Uint64()
	values, err := runShards(seed1, seed2, B, parallelism, func() func(*rand.Rand, int) (float64, error) {
		buf := make([]float64, len(s))
		return func(shardRNG *rand.Rand, _ int) (float64, error) {
			Resample(shardRNG, s, buf)
			return f(buf)
		}
	})
	if err != nil {
		return Result{}, err
	}
	return summarize(values, orig)
}

// ParallelMovingBlock is MovingBlock (Appendix A's dependent-data
// bootstrap) on the parallel engine, with the same reproducible-seeding
// contract as ParallelMonteCarlo.
func ParallelMovingBlock(rng *rand.Rand, s []float64, blockLen int, f Statistic, B, parallelism int) (Result, error) {
	n := len(s)
	if n == 0 {
		return Result{}, stats.ErrEmpty
	}
	if blockLen <= 0 || blockLen > n {
		return Result{}, fmt.Errorf("%w: %d outside [1,%d]", ErrBlockLength, blockLen, n)
	}
	if B < 2 {
		return Result{}, fmt.Errorf("%w, got %d", ErrTooFewResamples, B)
	}
	orig, err := f(s)
	if err != nil {
		return Result{}, fmt.Errorf("bootstrap: f on original sample: %w", err)
	}
	seed1, seed2 := rng.Uint64(), rng.Uint64()
	nStarts := n - blockLen + 1
	values, err := runShards(seed1, seed2, B, parallelism, func() func(*rand.Rand, int) (float64, error) {
		buf := make([]float64, 0, n+blockLen)
		return func(shardRNG *rand.Rand, _ int) (float64, error) {
			buf = buf[:0]
			for len(buf) < n {
				start := shardRNG.IntN(nStarts)
				buf = append(buf, s[start:start+blockLen]...)
			}
			return f(buf[:n])
		}
	})
	if err != nil {
		return Result{}, err
	}
	return summarize(values, orig)
}
