package bootstrap

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/workload"
)

func testSample(n int, seed uint64) []float64 {
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: n, Seed: seed}.Generate()
	if err != nil {
		panic(err)
	}
	return xs
}

func TestMonteCarloMeanStdErr(t *testing.T) {
	// For the mean, bootstrap stderr should approximate s/√n.
	rng := rand.New(rand.NewPCG(1, 2))
	s := testSample(400, 3)
	res, err := MonteCarlo(rng, s, Mean, 600)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := stats.StdDev(s)
	want := sd / math.Sqrt(float64(len(s)))
	if math.Abs(res.StdErr-want)/want > 0.15 {
		t.Fatalf("bootstrap stderr %v, theory %v", res.StdErr, want)
	}
	m, _ := stats.Mean(s)
	if math.Abs(res.Estimate-m) > 3*want {
		t.Fatalf("bootstrap estimate %v far from sample mean %v", res.Estimate, m)
	}
	if len(res.Values) != 600 {
		t.Fatalf("got %d values", len(res.Values))
	}
}

func TestMonteCarloValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := MonteCarlo(rng, nil, Mean, 10); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := MonteCarlo(rng, []float64{1, 2}, Mean, 1); err == nil {
		t.Fatal("B<2 should error")
	}
	bad := Statistic(func([]float64) (float64, error) { return 0, stats.ErrEmpty })
	if _, err := MonteCarlo(rng, []float64{1, 2}, bad, 5); err == nil {
		t.Fatal("failing statistic should propagate")
	}
}

func TestMonteCarloMatchesExactSmallN(t *testing.T) {
	// On a tiny sample the Monte-Carlo estimate must converge to the
	// exactly-enumerated bootstrap moments.
	s := []float64{1, 3, 7, 9, 12, 15}
	exMean, exVar, err := Exact(s, Mean)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	res, err := MonteCarlo(rng, s, Mean, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-exMean) > 0.05 {
		t.Fatalf("MC mean %v vs exact %v", res.Estimate, exMean)
	}
	if math.Abs(res.StdErr*res.StdErr-exVar)/exVar > 0.05 {
		t.Fatalf("MC var %v vs exact %v", res.StdErr*res.StdErr, exVar)
	}
}

func TestExactMeanKnownFormula(t *testing.T) {
	// For f = mean, the exact bootstrap mean is the sample mean and the
	// exact bootstrap variance is popVar/n.
	s := []float64{2, 4, 6, 8}
	m, v, err := Exact(s, Mean)
	if err != nil {
		t.Fatal(err)
	}
	sm, _ := stats.Mean(s)
	pv, _ := stats.PopVariance(s)
	if math.Abs(m-sm) > 1e-9 {
		t.Fatalf("exact mean %v, want %v", m, sm)
	}
	want := pv / float64(len(s))
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("exact var %v, want %v", v, want)
	}
}

func TestExactRejectsLargeN(t *testing.T) {
	if _, _, err := Exact(make([]float64, 13), Mean); err == nil {
		t.Fatal("large n should be rejected")
	}
	if _, _, err := Exact(nil, Mean); err == nil {
		t.Fatal("empty should error")
	}
}

func TestJackknifeMeanMatchesClassicStdErr(t *testing.T) {
	// Jackknife stderr of the mean equals the classic s/√n exactly.
	s := testSample(100, 7)
	res, err := Jackknife(s, Mean)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := stats.StdDev(s)
	want := sd / math.Sqrt(float64(len(s)))
	if math.Abs(res.StdErr-want)/want > 1e-9 {
		t.Fatalf("jackknife stderr %v, want %v", res.StdErr, want)
	}
}

func TestJackknifeFailsForMedian(t *testing.T) {
	// The delete-1 jackknife is inconsistent for the median (Efron 1979,
	// the paper's argument for preferring the bootstrap, §3): with an
	// even-sized sample the leave-one-out medians collapse onto ~2
	// distinct values, so the stderr estimate depends on one random
	// order-statistic gap and never converges. Demonstrate both symptoms:
	// (a) degenerate value support, and (b) the jackknife/bootstrap
	// stderr ratio is erratic across datasets for the median while tight
	// for the mean.
	ratios := func(f Statistic) (min, max float64) {
		min, max = math.Inf(1), math.Inf(-1)
		for trial := 0; trial < 15; trial++ {
			s := testSample(200, uint64(900+trial))
			jack, err := Jackknife(s, f)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(uint64(trial), 13))
			boot, err := MonteCarlo(rng, s, f, 400)
			if err != nil {
				t.Fatal(err)
			}
			r := jack.StdErr / boot.StdErr
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		return min, max
	}

	s := testSample(200, 9)
	jack, err := Jackknife(s, Median)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, v := range jack.Values {
		distinct[v] = true
	}
	if len(distinct) > 3 {
		t.Fatalf("expected degenerate jackknife median values, got %d distinct", len(distinct))
	}

	minMean, maxMean := ratios(Mean)
	minMed, maxMed := ratios(Median)
	if maxMean/minMean > 1.5 {
		t.Fatalf("jackknife/bootstrap ratio for the mean should be stable, got [%v,%v]", minMean, maxMean)
	}
	if maxMed/minMed < 2 {
		t.Fatalf("jackknife/bootstrap ratio for the median should be erratic, got [%v,%v]", minMed, maxMed)
	}
}

func TestJackknifeShortInput(t *testing.T) {
	if _, err := Jackknife([]float64{1}, Mean); err == nil {
		t.Fatal("n=1 should error")
	}
}

func TestPercentileCI(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	s := testSample(300, 23)
	res, err := MonteCarlo(rng, s, Mean, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := res.PercentileCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < res.Estimate && res.Estimate < hi) {
		t.Fatalf("CI [%v,%v] does not bracket estimate %v", lo, hi, res.Estimate)
	}
	// ≈95% of the distribution lies inside.
	in := 0
	for _, v := range res.Values {
		if v >= lo && v <= hi {
			in++
		}
	}
	frac := float64(in) / float64(len(res.Values))
	if frac < 0.93 || frac > 0.97 {
		t.Fatalf("CI covers %v of distribution, want ≈0.95", frac)
	}
	if _, _, err := res.PercentileCI(1.5); err == nil {
		t.Fatal("bad confidence should error")
	}
}

func TestBCaCoverageOnSkewedData(t *testing.T) {
	// BCa intervals should achieve close-to-nominal coverage for the mean
	// of a skewed (Pareto) distribution, where percentile intervals are
	// biased. Just check BCa covers the true mean at a reasonable rate.
	const trials = 60
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs, err := workload.NumericSpec{Dist: workload.Pareto, N: 150, Seed: uint64(trial)}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(trial), 99))
		lo, hi, err := BCa(rng, xs, Mean, 400, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		trueMean := 3.0 // Pareto(alpha=1.5, xm=1): mean = α/(α−1) = 3
		if lo <= trueMean && trueMean <= hi {
			covered++
		}
	}
	if covered < trials*6/10 {
		t.Fatalf("BCa covered %d/%d, implausibly low", covered, trials)
	}
}

func TestBCaValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, _, err := BCa(rng, []float64{1, 2, 3}, Mean, 100, 0); err == nil {
		t.Fatal("confidence 0 should error")
	}
}

func TestMovingBlockPreservesDependence(t *testing.T) {
	// For positively autocorrelated AR(1) data, the i.i.d. bootstrap
	// understates the stderr of the mean; the moving-block bootstrap
	// must give a distinctly larger (more honest) estimate.
	xs, err := workload.AR1Spec{Phi: 0.85, Sigma: 1, Mu: 0, N: 4000, Seed: 31}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rngA := rand.New(rand.NewPCG(1, 2))
	rngB := rand.New(rand.NewPCG(3, 4))
	iid, err := MonteCarlo(rngA, xs, Mean, 300)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := MovingBlock(rngB, xs, AutoBlockLength(len(xs))*4, Mean, 300)
	if err != nil {
		t.Fatal(err)
	}
	if blk.StdErr < 1.5*iid.StdErr {
		t.Fatalf("block stderr %v should exceed iid %v by a wide margin", blk.StdErr, iid.StdErr)
	}
}

func TestMovingBlockValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := MovingBlock(rng, nil, 1, Mean, 10); err == nil {
		t.Fatal("empty should error")
	}
	if _, err := MovingBlock(rng, []float64{1, 2}, 0, Mean, 10); err == nil {
		t.Fatal("blockLen 0 should error")
	}
	if _, err := MovingBlock(rng, []float64{1, 2}, 3, Mean, 10); err == nil {
		t.Fatal("blockLen > n should error")
	}
	if _, err := MovingBlock(rng, []float64{1, 2}, 1, Mean, 1); err == nil {
		t.Fatal("B < 2 should error")
	}
}

func TestAutoBlockLength(t *testing.T) {
	if AutoBlockLength(0) != 1 || AutoBlockLength(1) != 1 {
		t.Fatal("degenerate lengths")
	}
	if got := AutoBlockLength(1000); got != 10 {
		t.Fatalf("AutoBlockLength(1000) = %d, want 10", got)
	}
	if got := AutoBlockLength(2); got > 2 {
		t.Fatalf("block length %d exceeds n", got)
	}
}

func TestProportion(t *testing.T) {
	xs := []float64{1, 0, 1, 1, 0, 1, 0, 1, 1, 1}
	p, hw, err := Proportion(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.7 {
		t.Fatalf("p = %v", p)
	}
	if hw <= 0 || hw > 0.5 {
		t.Fatalf("halfWidth = %v", hw)
	}
	if _, _, err := Proportion([]float64{0.5}, 0.95); err == nil {
		t.Fatal("non-binary data should error")
	}
	if _, _, err := Proportion(nil, 0.95); err == nil {
		t.Fatal("empty should error")
	}
}

func TestResamplePropertyElementsFromSource(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		s := testSample(30, seed)
		out := make([]float64, 30)
		Resample(rng, s, out)
		valid := map[float64]bool{}
		for _, x := range s {
			valid[x] = true
		}
		for _, x := range out {
			if !valid[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCVDecreasesWithN(t *testing.T) {
	// The Fig. 2b behaviour: larger n ⇒ lower cv, here asserted
	// monotonically over a 4× range on averaged trials.
	avgCV := func(n int) float64 {
		var total float64
		const reps = 8
		for r := 0; r < reps; r++ {
			s := testSample(n, uint64(1000+r))
			rng := rand.New(rand.NewPCG(uint64(n), uint64(r)))
			res, err := MonteCarlo(rng, s, Mean, 60)
			if err != nil {
				t.Fatal(err)
			}
			total += res.CV
		}
		return total / reps
	}
	small := avgCV(100)
	large := avgCV(1600)
	if large >= small/2 {
		t.Fatalf("cv(1600)=%v should be well under cv(100)=%v", large, small)
	}
}
