// Package bootstrap implements the resampling machinery of §3: the
// Monte-Carlo bootstrap EARL uses for error estimation of arbitrary
// functions, the jackknife it compares against (and which fails for the
// median — the paper's reason to prefer the bootstrap), exact small-n
// bootstrap enumeration for validation, percentile and BCa confidence
// intervals, and the moving-block bootstrap of Appendix A for dependent
// data.
//
// Everything operates on a plain []float64 sample and a Statistic — "the
// function of interest f" in the paper's notation. Randomness is always
// an explicit *rand.Rand.
//
// The B resamples of a Monte-Carlo run are independent, so the hot path
// also exists in a sharded form: ParallelMonteCarlo and
// ParallelMovingBlock (parallel.go) split the B draws across a worker
// pool with deterministic per-shard rng streams, producing bit-identical
// Result.Values at any parallelism level.
//
// Statistics are handed a scratch resample buffer and must not retain or
// mutate it beyond the call. Order-statistic functions (Median, the
// quantile statistics of package jobs) evaluate via stats.Quantile's
// selection path — an O(n) Floyd–Rivest-style quickselect over a pooled
// scratch copy instead of a copy + full sort per resample — which is
// what keeps the quantile Monte-Carlo families allocation-free and
// sort-free in steady state.
package bootstrap

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/stats"
)

// Sentinel errors shared by every resampling variant, so callers can
// branch with errors.Is instead of matching message text.
var (
	// ErrTooFewResamples is returned when B < 2: with fewer than two
	// resamples the result distribution has no spread to measure.
	ErrTooFewResamples = errors.New("bootstrap: need B ≥ 2")
	// ErrBlockLength is returned by the moving-block variants when the
	// block length falls outside [1, n].
	ErrBlockLength = errors.New("bootstrap: block length out of range")
)

// Statistic is the function of interest computed on a (re)sample.
type Statistic func(xs []float64) (float64, error)

// Common statistics, exported for convenience and used throughout the
// experiments.
var (
	// Mean is the sample mean.
	Mean Statistic = stats.Mean
	// Median is the sample median.
	Median Statistic = stats.Median
	// Sum is the sample sum (needs 1/p correction when sampled).
	Sum Statistic = func(xs []float64) (float64, error) {
		if len(xs) == 0 {
			return 0, stats.ErrEmpty
		}
		return stats.Sum(xs), nil
	}
	// StdDev is the sample standard deviation.
	StdDev Statistic = stats.StdDev
)

// Result summarises the result distribution produced by resampling: the
// B per-resample values of f and the accuracy measures derived from them
// (§3.1). CV — stddev over |mean| of the distribution — is EARL's default
// error measure.
type Result struct {
	Values   []float64 // f on each resample, in draw order
	Estimate float64   // mean of Values (θ̂*)
	StdErr   float64   // standard deviation of Values (σ̂_B)
	CV       float64   // StdErr / |Estimate|
	Bias     float64   // Estimate − f(original sample)
}

func summarize(values []float64, original float64) (Result, error) {
	est, err := stats.Mean(values)
	if err != nil {
		return Result{}, err
	}
	var se float64
	if len(values) > 1 {
		se, err = stats.StdDev(values)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{
		Values:   values,
		Estimate: est,
		StdErr:   se,
		CV:       safeCV(est, se),
		Bias:     est - original,
	}, nil
}

// safeCV is stderr/|estimate| with the zero-mean case made explicit: a
// zero estimate with nonzero spread is maximally unconverged (+Inf), not
// perfectly converged (0) — returning 0 there would make the driver's
// cv ≤ σ accuracy check terminate a run that has learned nothing.
func safeCV(est, se float64) float64 {
	switch {
	case est != 0:
		return se / math.Abs(est)
	case se > 0:
		return math.Inf(1)
	default:
		return 0
	}
}

// Resample fills out with a uniform with-replacement draw from s (one
// bootstrap resample b). len(out) may differ from len(s) for the m-out-
// of-n variants.
func Resample(rng *rand.Rand, s []float64, out []float64) {
	for i := range out {
		out[i] = s[rng.IntN(len(s))]
	}
}

// MonteCarlo runs the standard Monte-Carlo approximation of the
// bootstrap (§3): B resamples of size len(s) drawn with replacement,
// f computed on each.
func MonteCarlo(rng *rand.Rand, s []float64, f Statistic, B int) (Result, error) {
	if len(s) == 0 {
		return Result{}, stats.ErrEmpty
	}
	if B < 2 {
		return Result{}, fmt.Errorf("%w, got %d", ErrTooFewResamples, B)
	}
	orig, err := f(s)
	if err != nil {
		return Result{}, fmt.Errorf("bootstrap: f on original sample: %w", err)
	}
	values := make([]float64, B)
	buf := make([]float64, len(s))
	for b := 0; b < B; b++ {
		Resample(rng, s, buf)
		v, err := f(buf)
		if err != nil {
			return Result{}, fmt.Errorf("bootstrap: f on resample %d: %w", b, err)
		}
		values[b] = v
	}
	return summarize(values, orig)
}

// Jackknife computes the delete-1 jackknife estimate of f's sampling
// distribution: n recomputations, each leaving one observation out. The
// returned StdErr uses the jackknife variance formula
// (n-1)/n · Σ(θ̂(i) − θ̂(·))². The jackknife has a fixed resample count
// and is cheaper than the bootstrap, but "does not work for many
// functions such as the median" (§3) — TestJackknifeFailsForMedian shows
// exactly that failure.
func Jackknife(s []float64, f Statistic) (Result, error) {
	n := len(s)
	if n < 2 {
		return Result{}, stats.ErrShortInput
	}
	orig, err := f(s)
	if err != nil {
		return Result{}, err
	}
	values := make([]float64, n)
	buf := make([]float64, n-1)
	for i := 0; i < n; i++ {
		copy(buf, s[:i])
		copy(buf[i:], s[i+1:])
		v, err := f(buf)
		if err != nil {
			return Result{}, fmt.Errorf("bootstrap: jackknife leave-%d: %w", i, err)
		}
		values[i] = v
	}
	mean, _ := stats.Mean(values)
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	se := math.Sqrt(float64(n-1) / float64(n) * ss)
	return Result{
		Values:   values,
		Estimate: mean,
		StdErr:   se,
		CV:       safeCV(mean, se),
		Bias:     float64(n-1) * (mean - orig),
	}, nil
}

// Exact enumerates every bootstrap resample of s as a multiset (the
// C(2n−1, n−1) resamples of §3) and returns the exactly-weighted result
// distribution moments. Only feasible for tiny n — it exists so tests can
// verify that MonteCarlo converges to the truth it approximates.
func Exact(s []float64, f Statistic) (mean, variance float64, err error) {
	n := len(s)
	if n == 0 {
		return 0, 0, stats.ErrEmpty
	}
	if n > 12 {
		return 0, 0, fmt.Errorf("bootstrap: exact enumeration infeasible for n=%d", n)
	}
	// Enumerate multiset counts (c_1..c_n), Σc=n, weight n!/(Πc_i!)/nⁿ.
	logNFact := logFactorial(n)
	logNn := float64(n) * math.Log(float64(n))
	buf := make([]float64, 0, n)
	counts := make([]int, n)
	var m1, m2, wsum float64
	var rec func(idx, left int, logW float64) error
	rec = func(idx, left int, logW float64) error {
		if idx == n-1 {
			counts[idx] = left
			w := math.Exp(logW - logFactorial(left) - logNn)
			buf = buf[:0]
			for i, c := range counts {
				for j := 0; j < c; j++ {
					buf = append(buf, s[i])
				}
			}
			v, err := f(buf)
			if err != nil {
				return err
			}
			m1 += w * v
			m2 += w * v * v
			wsum += w
			return nil
		}
		for c := 0; c <= left; c++ {
			counts[idx] = c
			if err := rec(idx+1, left-c, logW-logFactorial(c)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, n, logNFact); err != nil {
		return 0, 0, err
	}
	// wsum is 1 up to floating point; normalise anyway.
	m1 /= wsum
	m2 /= wsum
	return m1, m2 - m1*m1, nil
}

func logFactorial(n int) float64 {
	lf := 0.0
	for i := 2; i <= n; i++ {
		lf += math.Log(float64(i))
	}
	return lf
}

// PercentileCI returns the percentile bootstrap confidence interval at
// the given confidence level from the result distribution.
func (r Result) PercentileCI(confidence float64) (lo, hi float64, err error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("bootstrap: confidence must be in (0,1)")
	}
	if len(r.Values) == 0 {
		return 0, 0, stats.ErrEmpty
	}
	sorted := make([]float64, len(r.Values))
	copy(sorted, r.Values)
	sort.Float64s(sorted)
	alpha := (1 - confidence) / 2
	lo, err = stats.QuantileSorted(sorted, alpha)
	if err != nil {
		return 0, 0, err
	}
	hi, err = stats.QuantileSorted(sorted, 1-alpha)
	return lo, hi, err
}

// BCa computes the bias-corrected and accelerated bootstrap confidence
// interval (Efron 1987, the paper's [12]) — the "better bootstrap
// confidence interval" that corrects the percentile interval for bias
// and skewness using a jackknife acceleration estimate.
func BCa(rng *rand.Rand, s []float64, f Statistic, B int, confidence float64) (lo, hi float64, err error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("bootstrap: confidence must be in (0,1)")
	}
	res, err := MonteCarlo(rng, s, f, B)
	if err != nil {
		return 0, 0, err
	}
	orig, err := f(s)
	if err != nil {
		return 0, 0, err
	}
	// Bias correction z0: fraction of resample values below the original.
	below := 0
	for _, v := range res.Values {
		if v < orig {
			below++
		}
	}
	frac := float64(below) / float64(len(res.Values))
	if frac <= 0 {
		frac = 0.5 / float64(len(res.Values))
	}
	if frac >= 1 {
		frac = 1 - 0.5/float64(len(res.Values))
	}
	z0, err := stats.NormalQuantile(frac)
	if err != nil {
		return 0, 0, err
	}
	// Acceleration a from jackknife skewness.
	jack, err := Jackknife(s, f)
	if err != nil {
		return 0, 0, err
	}
	jmean, _ := stats.Mean(jack.Values)
	var num, den float64
	for _, v := range jack.Values {
		d := jmean - v
		num += d * d * d
		den += d * d
	}
	a := 0.0
	if den > 0 {
		a = num / (6 * math.Pow(den, 1.5))
	}
	zAlpha, err := stats.NormalQuantile((1 - confidence) / 2)
	if err != nil {
		return 0, 0, err
	}
	adj := func(z float64) float64 {
		w := z0 + z
		return stats.NormalCDF(z0 + w/(1-a*w))
	}
	sorted := make([]float64, len(res.Values))
	copy(sorted, res.Values)
	sort.Float64s(sorted)
	lo, err = stats.QuantileSorted(sorted, clamp01(adj(zAlpha)))
	if err != nil {
		return 0, 0, err
	}
	hi, err = stats.QuantileSorted(sorted, clamp01(adj(-zAlpha)))
	return lo, hi, err
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// MovingBlock runs the moving-block bootstrap for b-dependent data
// (Appendix A): resamples are built from random contiguous blocks of
// length blockLen so within-block dependence is preserved.
func MovingBlock(rng *rand.Rand, s []float64, blockLen int, f Statistic, B int) (Result, error) {
	n := len(s)
	if n == 0 {
		return Result{}, stats.ErrEmpty
	}
	if blockLen <= 0 || blockLen > n {
		return Result{}, fmt.Errorf("%w: %d outside [1,%d]", ErrBlockLength, blockLen, n)
	}
	if B < 2 {
		return Result{}, fmt.Errorf("%w, got %d", ErrTooFewResamples, B)
	}
	orig, err := f(s)
	if err != nil {
		return Result{}, err
	}
	values := make([]float64, B)
	buf := make([]float64, 0, n+blockLen)
	nStarts := n - blockLen + 1
	for b := 0; b < B; b++ {
		buf = buf[:0]
		for len(buf) < n {
			start := rng.IntN(nStarts)
			buf = append(buf, s[start:start+blockLen]...)
		}
		v, err := f(buf[:n])
		if err != nil {
			return Result{}, err
		}
		values[b] = v
	}
	return summarize(values, orig)
}

// AutoBlockLength picks a moving-block length for series of length n
// with the standard n^(1/3) growth rate (Politis & White's rule up to
// its constant), clamped to [1, n].
func AutoBlockLength(n int) int {
	if n <= 1 {
		return 1
	}
	b := int(math.Ceil(math.Pow(float64(n), 1.0/3.0)))
	if b < 1 {
		b = 1
	}
	if b > n {
		b = n
	}
	return b
}

// Proportion is the categorical-data path of Appendix A: successes are
// values equal to 1, and the z-based normal interval applies because the
// binomial proportion is asymptotically normal.
func Proportion(xs []float64, confidence float64) (p, halfWidth float64, err error) {
	if len(xs) == 0 {
		return 0, 0, stats.ErrEmpty
	}
	successes := 0
	for _, x := range xs {
		if x == 1 {
			successes++
		} else if x != 0 {
			return 0, 0, fmt.Errorf("bootstrap: categorical data must be 0/1, got %v", x)
		}
	}
	return stats.ProportionInterval(successes, len(xs), confidence)
}
