package bootstrap

import (
	"errors"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func gaussianSample(t testing.TB, n int) []float64 {
	t.Helper()
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: n, Seed: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return xs
}

// TestParallelMonteCarloDeterministicAcrossParallelism is the engine's
// core contract: for the same caller rng state, Result.Values is
// bit-identical at parallelism 1, 4 and GOMAXPROCS.
func TestParallelMonteCarloDeterministicAcrossParallelism(t *testing.T) {
	xs := gaussianSample(t, 5000)
	const B = 333 // not a multiple of shardSize: exercises the ragged tail shard
	var ref []float64
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rng := rand.New(rand.NewPCG(7, 11))
		res, err := ParallelMonteCarlo(rng, xs, Median, B, par)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Values) != B {
			t.Fatalf("parallelism %d: %d values, want %d", par, len(res.Values), B)
		}
		if ref == nil {
			ref = res.Values
			continue
		}
		for i := range ref {
			if res.Values[i] != ref[i] {
				t.Fatalf("parallelism %d: Values[%d] = %v, want %v (bit-identical)", par, i, res.Values[i], ref[i])
			}
		}
	}
}

func TestParallelMovingBlockDeterministicAcrossParallelism(t *testing.T) {
	xs := gaussianSample(t, 3000)
	const B = 100
	blockLen := AutoBlockLength(len(xs))
	var ref []float64
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rng := rand.New(rand.NewPCG(13, 17))
		res, err := ParallelMovingBlock(rng, xs, blockLen, Mean, B, par)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Values
			continue
		}
		for i := range ref {
			if res.Values[i] != ref[i] {
				t.Fatalf("parallelism %d: Values[%d] = %v, want %v", par, i, res.Values[i], ref[i])
			}
		}
	}
}

// TestParallelMonteCarloMatchesSequentialStatistics checks the parallel
// engine approximates the same sampling distribution as the sequential
// path (it uses different rng streams, so values differ but moments must
// agree).
func TestParallelMonteCarloMatchesSequentialStatistics(t *testing.T) {
	xs := gaussianSample(t, 2000)
	const B = 2000
	seqRes, err := MonteCarlo(rand.New(rand.NewPCG(1, 2)), xs, Mean, B)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := ParallelMonteCarlo(rand.New(rand.NewPCG(3, 4)), xs, Mean, B, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both estimate the same θ̂* with stderr σ̂/√B; allow 5 combined sigmas.
	tol := 5 * (seqRes.StdErr + parRes.StdErr) / math.Sqrt(B)
	if math.Abs(seqRes.Estimate-parRes.Estimate) > tol {
		t.Fatalf("estimates diverge: seq %v vs par %v (tol %v)", seqRes.Estimate, parRes.Estimate, tol)
	}
	if parRes.StdErr < seqRes.StdErr/1.5 || parRes.StdErr > seqRes.StdErr*1.5 {
		t.Fatalf("stderr diverges: seq %v vs par %v", seqRes.StdErr, parRes.StdErr)
	}
}

func TestParallelMonteCarloAdvancesCallerRNGIndependentOfParallelism(t *testing.T) {
	xs := gaussianSample(t, 100)
	after := make([]uint64, 0, 2)
	for _, par := range []int{1, 8} {
		rng := rand.New(rand.NewPCG(21, 22))
		if _, err := ParallelMonteCarlo(rng, xs, Mean, 50, par); err != nil {
			t.Fatal(err)
		}
		after = append(after, rng.Uint64())
	}
	if after[0] != after[1] {
		t.Fatalf("caller rng advanced differently: %d vs %d", after[0], after[1])
	}
}

func TestParallelVariantsShareSentinelErrors(t *testing.T) {
	xs := gaussianSample(t, 50)
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := ParallelMonteCarlo(rng, xs, Mean, 1, 2); !errors.Is(err, ErrTooFewResamples) {
		t.Fatalf("B=1: got %v, want ErrTooFewResamples", err)
	}
	if _, err := ParallelMovingBlock(rng, xs, 5, Mean, 0, 2); !errors.Is(err, ErrTooFewResamples) {
		t.Fatalf("B=0: got %v, want ErrTooFewResamples", err)
	}
	if _, err := ParallelMovingBlock(rng, xs, 0, Mean, 10, 2); !errors.Is(err, ErrBlockLength) {
		t.Fatalf("blockLen=0: got %v, want ErrBlockLength", err)
	}
	if _, err := ParallelMovingBlock(rng, xs, len(xs)+1, Mean, 10, 2); !errors.Is(err, ErrBlockLength) {
		t.Fatalf("blockLen>n: got %v, want ErrBlockLength", err)
	}
	if _, err := ParallelMonteCarlo(rng, nil, Mean, 10, 2); !errors.Is(err, stats.ErrEmpty) {
		t.Fatalf("empty sample: got %v, want ErrEmpty", err)
	}
}

func TestSequentialVariantsShareSentinelErrors(t *testing.T) {
	xs := gaussianSample(t, 50)
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := MonteCarlo(rng, xs, Mean, 1); !errors.Is(err, ErrTooFewResamples) {
		t.Fatalf("MonteCarlo B=1: got %v, want ErrTooFewResamples", err)
	}
	if _, err := MovingBlock(rng, xs, 5, Mean, 1); !errors.Is(err, ErrTooFewResamples) {
		t.Fatalf("MovingBlock B=1: got %v, want ErrTooFewResamples", err)
	}
	if _, err := MovingBlock(rng, xs, -1, Mean, 10); !errors.Is(err, ErrBlockLength) {
		t.Fatalf("MovingBlock blockLen=-1: got %v, want ErrBlockLength", err)
	}
}

// statistic errors surfaced from a worker must carry the resample index
// wrapping, same as the sequential path.
func TestParallelMonteCarloPropagatesStatisticError(t *testing.T) {
	xs := gaussianSample(t, 50)
	boom := errors.New("boom")
	calls := 0
	f := Statistic(func(s []float64) (float64, error) {
		calls++
		if calls > 1 { // let f(original) succeed, fail on resamples
			return 0, boom
		}
		return stats.Mean(s)
	})
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := ParallelMonteCarlo(rng, xs, f, 64, 1); !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

// TestZeroEstimateCVReportsInf is the regression test for the satellite
// bugfix: a zero-mean result distribution with spread must report
// CV = +Inf (unconverged), not 0 (perfectly converged) — otherwise the
// driver's cv ≤ σ check would terminate a run that has learned nothing.
func TestZeroEstimateCVReportsInf(t *testing.T) {
	res, err := summarize([]float64{-1, 1, -1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("estimate %v, want 0", res.Estimate)
	}
	if !math.IsInf(res.CV, 1) {
		t.Fatalf("CV = %v for zero estimate with spread, want +Inf", res.CV)
	}
	// Degenerate-but-converged: all values identical at zero → CV 0.
	res, err = summarize([]float64{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CV != 0 {
		t.Fatalf("CV = %v for constant-zero distribution, want 0", res.CV)
	}
}

// The same guard must hold end to end through the Monte-Carlo paths.
func TestMonteCarloZeroMeanStatisticNotConverged(t *testing.T) {
	// A sign statistic over a symmetric ±1 sample: resample means are
	// near zero, and some seeds land exactly on zero for small samples.
	sign := Statistic(func(s []float64) (float64, error) {
		m, err := stats.Mean(s)
		if err != nil {
			return 0, err
		}
		if m > 0 {
			return 1, nil
		}
		if m < 0 {
			return -1, nil
		}
		return 0, nil
	})
	xs := make([]float64, 100)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	for name, run := range map[string]func() (Result, error){
		"sequential": func() (Result, error) {
			return MonteCarlo(rand.New(rand.NewPCG(5, 6)), xs, sign, 200)
		},
		"parallel": func() (Result, error) {
			return ParallelMonteCarlo(rand.New(rand.NewPCG(5, 6)), xs, sign, 200, 4)
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.StdErr > 0 && res.Estimate == 0 && !math.IsInf(res.CV, 1) {
			t.Fatalf("%s: zero-mean spread distribution reported CV %v, want +Inf", name, res.CV)
		}
		if res.StdErr > 0 && res.CV == 0 {
			t.Fatalf("%s: CV 0 despite StdErr %v — would falsely terminate the driver", name, res.StdErr)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
