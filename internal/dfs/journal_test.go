package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/journal"
)

// fsState captures the logically observable namespace: every live file's
// bytes, segments, write generation, and sidecar bytes. Replica
// placement is deliberately excluded — it is physical state no read can
// observe.
func fsState(t *testing.T, v View) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, p := range v.List("") {
		data, err := v.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", p, err)
		}
		segs, err := v.Segments(p)
		if err != nil {
			t.Fatalf("Segments(%s): %v", p, err)
		}
		ver, err := v.Version(p)
		if err != nil {
			t.Fatalf("Version(%s): %v", p, err)
		}
		scLen, _ := v.SidecarStat(p)
		var sc []byte
		if scLen > 0 {
			sc = make([]byte, scLen)
			if _, err := v.ReadSidecarAt(p, 0, sc); err != nil {
				t.Fatalf("ReadSidecarAt(%s): %v", p, err)
			}
		}
		out[p] = fmt.Sprintf("v%d segs%v data%x sc%x", ver, segs, data, sc)
	}
	return out
}

func sameState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// journalOps is a representative mutation sequence: writes, appends
// (including a file-creating one), a rewrite, and a delete. Sizes
// straddle the sidecar gates so replay must reproduce both gated
// outcomes.
func journalOps(fs *FileSystem) []error {
	big := bytes.Repeat([]byte("3.25\n7.5\n"), 1024) // > sidecarMinBytes
	return []error{
		fs.WriteFile("/data/a", []byte("1\n2\n3\n")),
		fs.WriteFile("/data/big", big),
		fs.Append("/data/a", []byte("4\n5\n")),
		fs.Append("/data/fresh", []byte("9\n")),
		fs.WriteFile("/data/a", []byte("rewritten\n")),
		fs.Delete("/data/fresh"),
		fs.Append("/data/big", bytes.Repeat([]byte("1.5\n"), 20<<10)), // > sidecarAppendMinBytes
	}
}

func TestRecoverReplaysJournal(t *testing.T) {
	cfg := Config{BlockSize: 4 << 10, Replication: 2, DataNodes: 4, Seed: 11}
	fs := New(cfg)
	for i, err := range journalOps(fs) {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	want := fsState(t, fs)

	rec, st, err := Recover(cfg, fs.JournalBytes())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st.TornTail || st.Commits != 7 {
		t.Fatalf("stats = %+v, want 7 clean commits", st)
	}
	if got := fsState(t, rec); !sameState(got, want) {
		t.Fatalf("recovered state differs:\n got %v\nwant %v", got, want)
	}
	js := rec.JournalStats()
	if !js.Recovered || js.Commits != 7 {
		t.Fatalf("JournalStats = %+v, want recovered with 7 commits", js)
	}
	// The rebuilt journal byte-matches the clean image: recover of a
	// recovery is a fixed point.
	if !bytes.Equal(rec.JournalBytes(), fs.JournalBytes()) {
		t.Fatal("recovered journal image differs from the original")
	}
}

// Crash at every commit point: for each k, the image truncated to k
// commits (and the same image with a torn k+1-th record) must recover to
// exactly the state a fresh filesystem reaches after the first k ops —
// zero torn states, zero half-applied mutations.
func TestRecoverCrashAtEveryCommitPoint(t *testing.T) {
	cfg := Config{BlockSize: 4 << 10, Replication: 2, DataNodes: 4, Seed: 23}
	full := New(cfg)
	for i, err := range journalOps(full) {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	nops := 7
	image := full.JournalBytes()

	for k := 0; k <= nops; k++ {
		// Expected state: run the first k ops on a fresh filesystem.
		exp := New(cfg)
		for i, err := range journalOpsPrefix(exp, k) {
			if err != nil {
				t.Fatalf("k=%d op %d: %v", k, i, err)
			}
		}
		want := fsState(t, exp)

		clean := journal.PrefixRecords(image, int64(k))
		rec, st, err := Recover(cfg, clean)
		if err != nil {
			t.Fatalf("k=%d clean: %v", k, err)
		}
		if st.TornTail || st.Commits != int64(k) {
			t.Fatalf("k=%d clean: stats %+v", k, st)
		}
		if got := fsState(t, rec); !sameState(got, want) {
			t.Fatalf("k=%d clean: state differs\n got %v\nwant %v", k, got, want)
		}

		if k < nops {
			// Torn tail: the clean k-prefix plus half of record k+1.
			next := journal.PrefixRecords(image, int64(k+1))
			torn := append([]byte(nil), next[:len(clean)+(len(next)-len(clean))/2]...)
			rec, st, err := Recover(cfg, torn)
			if err != nil {
				t.Fatalf("k=%d torn: %v", k, err)
			}
			if !st.TornTail || st.Commits != int64(k) || st.DroppedBytes == 0 {
				t.Fatalf("k=%d torn: stats %+v", k, st)
			}
			if got := fsState(t, rec); !sameState(got, want) {
				t.Fatalf("k=%d torn: state differs", k)
			}
		}
	}
}

// journalOpsPrefix runs only the first k ops of the canonical sequence.
func journalOpsPrefix(fs *FileSystem, k int) []error {
	big := bytes.Repeat([]byte("3.25\n7.5\n"), 1024)
	ops := []func() error{
		func() error { return fs.WriteFile("/data/a", []byte("1\n2\n3\n")) },
		func() error { return fs.WriteFile("/data/big", big) },
		func() error { return fs.Append("/data/a", []byte("4\n5\n")) },
		func() error { return fs.Append("/data/fresh", []byte("9\n")) },
		func() error { return fs.WriteFile("/data/a", []byte("rewritten\n")) },
		func() error { return fs.Delete("/data/fresh") },
		func() error { return fs.Append("/data/big", bytes.Repeat([]byte("1.5\n"), 20<<10)) },
	}
	var errs []error
	for i := 0; i < k && i < len(ops); i++ {
		errs = append(errs, ops[i]())
	}
	return errs
}

func TestRecoverRefusesInteriorCorruption(t *testing.T) {
	cfg := Config{Seed: 3}
	fs := New(cfg)
	for i, err := range journalOps(fs) {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	img := fs.JournalBytes()
	img[40] ^= 0xFF // inside the first record
	if _, _, err := Recover(cfg, img); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("interior corruption: err = %v, want journal.ErrCorrupt", err)
	}
}

// An injected crash at commit k leaves a journal image with k-1 durable
// commits (plus a torn frame when TornTail), the filesystem refuses
// further mutations, and Recover lands on the k-1 state.
func TestFaultCrashAtCommit(t *testing.T) {
	for _, torn := range []bool{false, true} {
		cfg := Config{Seed: 5}
		fs := New(cfg)
		fs.SetFaultPlan(&FaultPlan{CrashAtCommit: 3, TornTail: torn})
		if err := fs.WriteFile("/a", []byte("1\n")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Append("/a", []byte("2\n")); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/b", []byte("x\n")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("torn=%v: commit 3 err = %v, want ErrCrashed", torn, err)
		}
		if err := fs.Delete("/a"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("torn=%v: post-crash mutation err = %v, want ErrCrashed", torn, err)
		}
		rec, st, err := Recover(cfg, fs.JournalBytes())
		if err != nil {
			t.Fatalf("torn=%v: Recover: %v", torn, err)
		}
		if st.Commits != 2 || st.TornTail != torn {
			t.Fatalf("torn=%v: stats %+v", torn, st)
		}
		data, err := rec.ReadFile("/a")
		if err != nil || string(data) != "1\n2\n" {
			t.Fatalf("torn=%v: /a = %q, %v", torn, data, err)
		}
		if rec.Exists("/b") {
			t.Fatalf("torn=%v: /b must not survive the crash", torn)
		}
	}
}

// Snapshot isolation: a pinned snapshot keeps reading the exact
// pre-mutation world — bytes, size, segments, version, splits, sidecar —
// through rewrites, appends and deletes, while the live view moves on.
func TestSnapshotIsolation(t *testing.T) {
	cfg := Config{BlockSize: 1 << 10, Replication: 2, DataNodes: 3, Seed: 9}
	fs := New(cfg)
	orig := bytes.Repeat([]byte("1.5\n2.5\n"), 1024)
	if err := fs.WriteFile("/d", orig); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/gone", []byte("bye\n")); err != nil {
		t.Fatal(err)
	}
	snap := fs.Snapshot()
	defer snap.Release()
	wantVer, _ := fs.Version("/d")
	wantSplits, _ := fs.Splits("/d", 0)
	wantState := fsState(t, snap)

	// Mutate everything under the snapshot.
	if err := fs.Append("/d", bytes.Repeat([]byte("9.0\n"), 512)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d", []byte("tiny\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/gone"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/new", []byte("fresh\n")); err != nil {
		t.Fatal(err)
	}

	// The snapshot still reads the old world.
	if got := fsState(t, snap); !sameState(got, wantState) {
		t.Fatalf("snapshot drifted:\n got %v\nwant %v", got, wantState)
	}
	if got, err := snap.ReadFile("/d"); err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("snap /d = %d bytes, %v", len(got), err)
	}
	if v, _ := snap.Version("/d"); v != wantVer {
		t.Fatalf("snap version = %d, want %d", v, wantVer)
	}
	if sp, _ := snap.Splits("/d", 0); len(sp) != len(wantSplits) {
		t.Fatalf("snap splits = %d, want %d", len(sp), len(wantSplits))
	}
	if snap.Exists("/new") {
		t.Fatal("snapshot sees a file created after the pin")
	}
	if !snap.Exists("/gone") {
		t.Fatal("snapshot lost a file deleted after the pin")
	}
	// Line readers through the snapshot see old bytes.
	sp, _ := snap.Splits("/d", 0)
	var n int64
	for _, s := range sp {
		rd, err := snap.NewLineReader(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		for rd.Next() {
			n++
		}
		if rd.Err() != nil {
			t.Fatal(rd.Err())
		}
	}
	if n != 2048 {
		t.Fatalf("snapshot line count = %d, want 2048", n)
	}

	// Live view sees the new world.
	if got, _ := fs.ReadFile("/d"); string(got) != "tiny\n" {
		t.Fatalf("live /d = %q", got)
	}
	if fs.Exists("/gone") {
		t.Fatal("live view resurrects a deleted file")
	}

	// Release prunes: the superseded chain states disappear.
	snap.Release()
	if js := fs.JournalStats(); js.Pins != 0 {
		t.Fatalf("pins after release = %d", js.Pins)
	}
}

// Released snapshots free the superseded blocks: after a rewrite lands
// and the pin drops, the old version's bytes leave the DataNodes.
func TestSnapshotReleaseFreesBlocks(t *testing.T) {
	fs := New(Config{BlockSize: 64, Replication: 1, DataNodes: 1, Seed: 1})
	if err := fs.WriteFile("/f", bytes.Repeat([]byte("x\n"), 512)); err != nil {
		t.Fatal(err)
	}
	baseline := blockTotal(fs)
	snap := fs.Snapshot()
	if err := fs.WriteFile("/f", []byte("small\n")); err != nil {
		t.Fatal(err)
	}
	withBoth := blockTotal(fs)
	if withBoth <= 1 {
		t.Fatalf("pinned rewrite should retain old blocks (have %d, baseline %d)", withBoth, baseline)
	}
	snap.Release()
	after := blockTotal(fs)
	if after != 1 {
		t.Fatalf("blocks after release = %d, want 1 (old version pruned)", after)
	}
}

func blockTotal(fs *FileSystem) int {
	total := 0
	for _, n := range fs.BlockCounts() {
		total += n
	}
	return total
}

// Transient injected read errors are absorbed by the retry path: with a
// moderate fault rate every read still succeeds, returns identical
// bytes, and the filesystem never surfaces the fault.
func TestInjectedReadErrorsRetried(t *testing.T) {
	fs := New(Config{BlockSize: 256, Replication: 2, DataNodes: 3, Seed: 17})
	data := bytes.Repeat([]byte("42\n"), 1024)
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	clean, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFaultPlan(&FaultPlan{Seed: 99, ReadErrorRate: 0.3})
	for i := 0; i < 8; i++ {
		got, err := fs.ReadFile("/f")
		if err != nil {
			t.Fatalf("read %d under faults: %v", i, err)
		}
		if !bytes.Equal(got, clean) {
			t.Fatalf("read %d under faults returned different bytes", i)
		}
	}
	fs.SetFaultPlan(nil)
	if _, err := fs.ReadFile("/f"); err != nil {
		t.Fatalf("read after clearing faults: %v", err)
	}
}

// A read whose block has no live replica exhausts the retry budget and
// fails with the errors.Is-able ErrNoReplica sentinel.
func TestErrNoReplicaSentinel(t *testing.T) {
	fs := New(Config{BlockSize: 8, Replication: 1, DataNodes: 1, Seed: 7})
	if err := fs.WriteFile("/f", []byte("0123456789\n")); err != nil {
		t.Fatal(err)
	}
	fs.KillDataNode(0)
	_, err := fs.ReadFile("/f")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
}
