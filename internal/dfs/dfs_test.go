package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/simcost"
)

func newTestFS(t *testing.T, blockSize int64) *FileSystem {
	t.Helper()
	return New(Config{BlockSize: blockSize, Replication: 2, DataNodes: 4, Seed: 42})
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newTestFS(t, 16)
	data := []byte("hello distributed world, this spans several 16-byte blocks")
	if err := fs.WriteFile("/a", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip mismatch: %q vs %q", got, data)
	}
	size, err := fs.Stat("/a")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Stat = %d, %v", size, err)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := newTestFS(t, 16)
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read = %q, %v", got, err)
	}
	splits, err := fs.Splits("/empty", 0)
	if err != nil || len(splits) != 1 || splits[0].Length != 0 {
		t.Fatalf("empty splits = %v, %v", splits, err)
	}
}

func TestOverwriteReplacesBlocks(t *testing.T) {
	fs := newTestFS(t, 8)
	if err := fs.WriteFile("/f", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || string(got) != "short" {
		t.Fatalf("overwrite read = %q, %v", got, err)
	}
	// All nodes together should hold exactly the new file's replicas:
	// 1 block × replication 2.
	total := 0
	for _, c := range fs.BlockCounts() {
		total += c
	}
	if total != 2 {
		t.Fatalf("stale blocks remain: %d replicas", total)
	}
}

func TestReadMissing(t *testing.T) {
	fs := newTestFS(t, 8)
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := fs.Delete("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete err = %v, want ErrNotFound", err)
	}
}

func TestDelete(t *testing.T) {
	fs := newTestFS(t, 8)
	if err := fs.WriteFile("/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Fatal("file still exists after delete")
	}
	for nid, c := range fs.BlockCounts() {
		if c != 0 {
			t.Fatalf("node %d still holds %d blocks", nid, c)
		}
	}
}

func TestList(t *testing.T) {
	fs := newTestFS(t, 8)
	for _, p := range []string{"/job1/err-0", "/job1/err-1", "/job2/err-0"} {
		if err := fs.WriteFile(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("/job1/")
	if len(got) != 2 || got[0] != "/job1/err-0" || got[1] != "/job1/err-1" {
		t.Fatalf("List = %v", got)
	}
}

func TestReadAtRanges(t *testing.T) {
	fs := newTestFS(t, 8)
	data := []byte("0123456789abcdefghij")
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	// Read across a block boundary.
	buf := make([]byte, 6)
	n, err := fs.ReadAt("/f", 5, buf)
	if err != nil || n != 6 || string(buf) != "56789a" {
		t.Fatalf("ReadAt = %q (%d), %v", buf[:n], n, err)
	}
	// Read past EOF truncates.
	n, err = fs.ReadAt("/f", 18, buf)
	if err != nil || n != 2 || string(buf[:n]) != "ij" {
		t.Fatalf("tail ReadAt = %q (%d), %v", buf[:n], n, err)
	}
	// Offset beyond EOF reads nothing.
	n, err = fs.ReadAt("/f", 100, buf)
	if err != nil || n != 0 {
		t.Fatalf("past-EOF ReadAt = %d, %v", n, err)
	}
	if _, err := fs.ReadAt("/f", -1, buf); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestReplicationSurvivesNodeFailure(t *testing.T) {
	fs := New(Config{BlockSize: 8, Replication: 3, DataNodes: 5, Seed: 7})
	data := []byte("the quick brown fox jumps over the lazy dog")
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	// With replication 3, any 2 failures leave every block readable.
	if err := fs.KillDataNode(0); err != nil {
		t.Fatal(err)
	}
	if err := fs.KillDataNode(3); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after failures = %v, %v", got, err)
	}
	if live := fs.LiveDataNodes(); len(live) != 3 {
		t.Fatalf("live = %v", live)
	}
}

func TestAllReplicasDead(t *testing.T) {
	fs := New(Config{BlockSize: 8, Replication: 1, DataNodes: 2, Seed: 7})
	if err := fs.WriteFile("/f", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	fs.KillDataNode(0)
	fs.KillDataNode(1)
	if _, err := fs.ReadFile("/f"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
	// Revival restores access.
	fs.ReviveDataNode(0)
	fs.ReviveDataNode(1)
	if _, err := fs.ReadFile("/f"); err != nil {
		t.Fatalf("read after revive: %v", err)
	}
}

func TestWriteWithNoLiveNodes(t *testing.T) {
	fs := New(Config{DataNodes: 1})
	fs.KillDataNode(0)
	if err := fs.WriteFile("/f", []byte("x")); !errors.Is(err, ErrNoDataNodes) {
		t.Fatalf("err = %v, want ErrNoDataNodes", err)
	}
}

func TestKillInvalidNode(t *testing.T) {
	fs := New(Config{DataNodes: 2})
	if err := fs.KillDataNode(9); err == nil {
		t.Fatal("invalid node id should error")
	}
	if err := fs.ReviveDataNode(-1); err == nil {
		t.Fatal("invalid node id should error")
	}
}

func TestMetricsAccounting(t *testing.T) {
	var m simcost.Metrics
	fs := New(Config{BlockSize: 8, Replication: 2, DataNodes: 3, Metrics: &m, Seed: 1})
	data := make([]byte, 100)
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.BytesWritten != 200 { // 100 bytes × 2 replicas
		t.Fatalf("BytesWritten = %d, want 200", s.BytesWritten)
	}
	if _, err := fs.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	s = m.Snapshot()
	if s.BytesRead != 100 {
		t.Fatalf("BytesRead = %d, want 100", s.BytesRead)
	}
	if s.DiskSeeks != 1 {
		t.Fatalf("DiskSeeks = %d, want 1 for sequential read", s.DiskSeeks)
	}
	buf := make([]byte, 4)
	fs.ReadAt("/f", 50, buf)
	if s2 := m.Snapshot(); s2.DiskSeeks != 2 {
		t.Fatalf("random read should add a seek, got %d", s2.DiskSeeks)
	}
}

func TestRebalance(t *testing.T) {
	fs := New(Config{BlockSize: 4, Replication: 1, DataNodes: 4, Seed: 3})
	// Write with only node 0 alive to concentrate blocks.
	for i := 1; i < 4; i++ {
		fs.KillDataNode(i)
	}
	data := make([]byte, 64) // 16 blocks on node 0
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		fs.ReviveDataNode(i)
	}
	moves, err := fs.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("expected some moves")
	}
	counts := fs.BlockCounts()
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced after rebalance: %v", counts)
	}
	// Data must remain readable after moves.
	got, err := fs.ReadFile("/f")
	if err != nil || len(got) != 64 {
		t.Fatalf("read after rebalance: %d bytes, %v", len(got), err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, sizeHint uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := int(sizeHint) % 2000
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.UintN(256))
		}
		fs := New(Config{BlockSize: 33, Replication: 2, DataNodes: 3, Seed: seed})
		if err := fs.WriteFile("/p", data); err != nil {
			return false
		}
		got, err := fs.ReadFile("/p")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPlacementDistinctNodes(t *testing.T) {
	fs := New(Config{BlockSize: 4, Replication: 3, DataNodes: 5, Seed: 11})
	if err := fs.WriteFile("/f", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	// Each block must have 3 replicas on 3 distinct nodes; total 10
	// blocks × 3 = 30 replica placements.
	total := 0
	for _, c := range fs.BlockCounts() {
		total += c
	}
	if total != 30 {
		t.Fatalf("replica placements = %d, want 30", total)
	}
}

func TestEmptyPathRejected(t *testing.T) {
	fs := newTestFS(t, 8)
	if err := fs.WriteFile("", []byte("x")); err == nil {
		t.Fatal("empty path should error")
	}
}

func ExampleFileSystem_Splits() {
	fs := New(Config{BlockSize: 10, Replication: 1, DataNodes: 1})
	_ = fs.WriteFile("/data", []byte("0123456789ABCDEFGHIJKLMNO"))
	splits, _ := fs.Splits("/data", 10)
	for _, s := range splits {
		fmt.Println(s)
	}
	// Output:
	// /data[0: 0+10]
	// /data[1: 10+10]
	// /data[2: 20+5]
}
