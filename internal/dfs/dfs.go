// Package dfs is an in-process simulation of HDFS, the storage substrate
// the paper's EARL prototype runs on. It reproduces the pieces of HDFS
// that EARL's design actually leans on (§1, §2.1, §3.3 of the paper):
//
//   - files are split into fixed-size blocks (64 MB default) with
//     metadata held by a NameNode and block bytes held by DataNodes;
//   - blocks are replicated; reads retry with backoff across surviving
//     replicas, which is what lets EARL keep answering through node
//     failures (§3.4);
//   - a rebalancer distributes blocks uniformly across DataNodes — the
//     property EARL's sampling exploits;
//   - files expose *logical splits* (the "InputSplit" of MapReduce) and a
//     LineRecordReader with Hadoop's exact split-boundary semantics: a
//     reader whose split starts mid-line skips that partial line (its
//     owner is the previous split) and reads past its split end to finish
//     its last line;
//   - random positioned reads, used by the pre-map sampler (Algorithm 2),
//     are charged a disk seek in the cost metrics.
//
// # Commit journal and snapshots
//
// Every namespace mutation — WriteFile, Append, Delete — is one commit:
// validated at the entry point, framed as a CRC-verified record in the
// filesystem's journal (internal/journal), and only then applied to the
// in-memory namespace. The journal is the durable truth: Recover replays
// one onto a fresh filesystem, truncating a torn final record (the shape
// a crash leaves) and rebuilding every file, sidecar and write generation
// deterministically.
//
// The namespace itself is multi-versioned: each path holds a chain of
// immutable file states, one per commit that touched it, and readers
// resolve through a commit sequence number. Snapshot pins the current
// commit and serves every read — ReadAt, Splits, Segments, Version,
// sidecar reads, line readers — from that one consistent world, even
// while rewrites land concurrently; Release unpins it and garbage-
// collects the superseded states no snapshot can see. All mutations to
// versioned state happen inside apply*-prefixed functions reachable only
// from the commit helper (machine-checked by earlvet's journalcommit
// analyzer), so no code path can mutate the namespace without a journal
// record.
//
// Block payloads live in memory; the simcost.Metrics hooks account for
// the I/O that a disk-backed deployment would perform.
package dfs

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/simcost"
)

// DefaultBlockSize mirrors HDFS's classic 64 MB block.
const DefaultBlockSize = 64 << 20

// Errors returned by the filesystem.
var (
	ErrNotFound = errors.New("dfs: file not found")
	ErrExists   = errors.New("dfs: file already exists")
	// ErrUnavailable is the transient per-attempt read failure: the
	// replica chosen for one attempt was dead, missing the block, or hit
	// an injected fault. The read path retries with backoff across
	// replicas before giving up with ErrNoReplica.
	ErrUnavailable = errors.New("dfs: no live replica for block")
	// ErrNoReplica is returned when a block read exhausts its retry
	// budget without finding a live replica — the §3.4 failure a run
	// tolerates by finishing on surviving data. errors.Is-able.
	ErrNoReplica   = errors.New("dfs: block unreadable after retries")
	ErrNoDataNodes = errors.New("dfs: no live datanodes")
	// ErrUnalignedAppend is returned by Append when the existing file does
	// not end with a newline: the boundary record would span the old and
	// new segments, so existing splits could no longer own stable record
	// sets — the invariant continuous ingest depends on.
	ErrUnalignedAppend = errors.New("dfs: append to file without trailing newline")
	// ErrCrashed is returned by mutations after an injected
	// crash-at-commit-point fault fired (FaultPlan.CrashAtCommit): the
	// filesystem refuses further commits, and JournalBytes returns the
	// crash image Recover replays.
	ErrCrashed = errors.New("dfs: filesystem crashed at injected commit point")
)

// Read retry policy: bounded attempts with exponential backoff, spread
// across replicas (each attempt advances the round-robin tick).
const (
	readAttempts    = 6
	readBackoffBase = 50 * time.Microsecond
)

// Config configures a FileSystem.
type Config struct {
	BlockSize   int64            // bytes per block; DefaultBlockSize if zero
	Replication int              // replicas per block; 3 if zero
	DataNodes   int              // cluster size; 5 (the paper's testbed) if zero
	Metrics     *simcost.Metrics // optional I/O accounting sink
	Seed        uint64           // seed for replica placement decisions
	// DisableSidecars turns off the automatic columnar sidecar encoding
	// at WriteFile/Append (see sidecar.go). The explicit Compact entry
	// point still builds one — the knob gates ingest-time work only.
	DisableSidecars bool
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.DataNodes <= 0 {
		c.DataNodes = 5
	}
	return c
}

// FileSystem is the simulated distributed filesystem: NameNode metadata
// plus the DataNode block stores. All methods are safe for concurrent use.
type FileSystem struct {
	mu       sync.RWMutex
	cfg      Config
	rng      *rand.Rand // guarded by mu (write lock); used for placement only
	readTick atomic.Int64
	nextID   int64
	nodes    []*dataNode
	// files maps each path to its version chain: one immutable fileMeta
	// per commit that touched the path, resolved by commit sequence.
	files map[string]*fileChain
	// jlog is the commit journal — the durable truth every mutation is
	// framed into before it is applied.
	jlog      *journal.Log
	commitSeq int64
	// pins refcounts the commit sequences active Snapshots hold open;
	// superseded chain versions survive until no pin can see them.
	pins      map[int64]int
	crashed   bool // an injected crash fired; mutations refuse
	faults    *FaultPlan
	recovered *RecoverStats // set when this filesystem came from Recover
	metrics   *simcost.Metrics
}

type dataNode struct {
	id     int
	alive  bool
	blocks map[int64][]byte
}

// fileChain is one path's version history: states ascending by commit
// sequence. The last entry is the live state; earlier entries survive
// only while a pinned Snapshot can still see them.
type fileChain struct {
	versions []chainVersion
}

// chainVersion is one committed state of a path. A nil meta records a
// deletion (the path does not exist at and after seq, until recreated).
type chainVersion struct {
	seq  int64
	meta *fileMeta
}

// fileMeta is one immutable committed state of a file. Appends clone it
// (sharing the unchanged *blockMeta prefix — payloads never mutate);
// rewrites start a fresh one. The sidecar field is derived columnar
// state (rebuildable from the file bytes, never journaled) and is the
// one field mutable outside the commit path.
type fileMeta struct {
	size     int64
	blocks   []*blockMeta
	segments []int64 // start offset of every write/append segment, ascending
	// version is the file's write generation: a fresh id per WriteFile,
	// stable across Append (appends add segments, they never change the
	// bytes behind an existing offset). Decoded-block caches key on it,
	// and maintained queries detect rewrites by it changing.
	version int64
	// sidecar holds the file's persistent columnar segment encoding
	// (internal/colseg). Derived state — rebuildable at any time, never
	// replicated or journaled: losing one costs a text decode, not data.
	sidecar []byte
}

type blockMeta struct {
	id       int64
	offset   int64 // offset of this block within the file
	size     int64
	replicas []int // datanode ids holding a copy
}

// New creates a filesystem with cfg.
func New(cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	fs := &FileSystem{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x6a09e667f3bcc908)),
		files:   make(map[string]*fileChain),
		jlog:    journal.New(),
		pins:    make(map[int64]int),
		metrics: cfg.Metrics,
	}
	for i := 0; i < cfg.DataNodes; i++ {
		fs.nodes = append(fs.nodes, &dataNode{id: i, alive: true, blocks: make(map[int64][]byte)})
	}
	return fs
}

// BlockSize returns the configured block size.
func (fs *FileSystem) BlockSize() int64 { return fs.cfg.BlockSize }

// NumDataNodes returns the cluster size (live or not).
func (fs *FileSystem) NumDataNodes() int { return len(fs.nodes) }

// LiveDataNodes returns the ids of DataNodes currently alive.
func (fs *FileSystem) LiveDataNodes() []int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var ids []int
	for _, n := range fs.nodes {
		if n.alive {
			ids = append(ids, n.id)
		}
	}
	return ids
}

// metaLocked resolves path's committed state as of commit sequence at
// (at < 0 means the live state). Missing paths, states deleted at or
// before at, and paths created after at all report !ok.
func (fs *FileSystem) metaLocked(path string, at int64) (*fileMeta, bool) {
	ch, ok := fs.files[path]
	if !ok || len(ch.versions) == 0 {
		return nil, false
	}
	if at < 0 {
		v := ch.versions[len(ch.versions)-1]
		return v.meta, v.meta != nil
	}
	for i := len(ch.versions) - 1; i >= 0; i-- {
		if ch.versions[i].seq <= at {
			v := ch.versions[i]
			return v.meta, v.meta != nil
		}
	}
	return nil, false
}

// WriteFile stores data at path, replacing any existing file, as one
// journaled commit. Data is partitioned into blocks and each block is
// replicated across distinct live DataNodes (fewer if the cluster is
// smaller than the replication factor). Write I/O is charged once per
// replica. The superseded file state stays readable through Snapshots
// pinned before the commit.
func (fs *FileSystem) WriteFile(path string, data []byte) error {
	if path == "" {
		return errors.New("dfs: empty path")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.liveLocked()) == 0 {
		return ErrNoDataNodes
	}
	return fs.commitLocked(journal.OpWrite, path, data)
}

// Append adds data to the end of path as a fresh *segment* commit: new
// blocks are cut from the old end-of-file (never extending the last
// block) and replicated across live DataNodes like any other write.
// Existing blocks, their replicas, and the logical splits over them are
// untouched — the stability continuous ingest relies on, letting a
// maintained query process only the appended region.
//
// The existing file must end with a newline (record-aligned appends);
// otherwise ErrUnalignedAppend is returned. Appending to a missing path
// creates the file.
func (fs *FileSystem) Append(path string, data []byte) error {
	if path == "" {
		return errors.New("dfs: empty path")
	}
	if len(data) == 0 {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.liveLocked()) == 0 {
		return ErrNoDataNodes
	}
	if meta, ok := fs.metaLocked(path, -1); ok && meta.size > 0 {
		last := meta.blocks[len(meta.blocks)-1]
		payload, err := fs.replicaPayloadLocked(last)
		if err != nil {
			return err
		}
		if len(payload) == 0 || payload[len(payload)-1] != '\n' {
			return fmt.Errorf("%w: %s", ErrUnalignedAppend, path)
		}
	}
	return fs.commitLocked(journal.OpAppend, path, data)
}

// Delete removes path as one journaled commit. Snapshots pinned before
// the commit keep reading the file.
func (fs *FileSystem) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.metaLocked(path, -1); !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return fs.commitLocked(journal.OpDelete, path, nil)
}

// commitLocked is THE mutation choke point: it frames one validated
// mutation as a journal record, advances the commit sequence, and
// dispatches to the apply function that performs the state change. Every
// namespace mutation — live traffic and Recover replay alike — funnels
// through here; nothing else may touch versioned state (enforced by the
// journalcommit analyzer).
func (fs *FileSystem) commitLocked(op journal.Op, path string, data []byte) error {
	if fs.crashed {
		return ErrCrashed
	}
	seq := fs.jlog.Records() + 1
	if fp := fs.faults; fp != nil && fp.CrashAtCommit > 0 && seq >= fp.CrashAtCommit {
		// The injected crash strikes while this commit's record is being
		// written: with TornTail the journal keeps a half-written frame
		// (Recover must detect and truncate it), without it the record
		// never reached the disk at all. Either way the mutation is not
		// applied and the filesystem refuses further commits.
		fs.crashed = true
		if fp.TornTail {
			before := fs.jlog.Size()
			fs.jlog.Append(op, path, data)
			fs.jlog.Tear((fs.jlog.Size() - before + 1) / 2)
		}
		return ErrCrashed
	}
	fs.jlog.Append(op, path, data)
	fs.commitSeq = seq
	switch op {
	case journal.OpWrite:
		fs.applyWrite(seq, path, data)
	case journal.OpAppend:
		fs.applyAppend(seq, path, data)
	case journal.OpDelete:
		fs.applyDelete(seq, path)
	}
	return nil
}

// applyWrite installs a fresh file state for path: new write generation,
// new blocks, new sidecar.
func (fs *FileSystem) applyWrite(seq int64, path string, data []byte) {
	live := fs.liveLocked()
	fs.nextID++
	meta := &fileMeta{size: int64(len(data)), segments: []int64{0}, version: fs.nextID}
	fs.applyBlocks(meta, data, 0, live)
	meta.sidecar = fs.buildSidecar(path, meta, data)
	fs.applyChainPush(path, seq, meta)
}

// applyAppend installs a cloned file state extended by one segment. The
// clone shares the unchanged block prefix with its predecessor —
// payloads are immutable, so pinned snapshots and the live state read
// the same bytes through the shared *blockMeta entries.
func (fs *FileSystem) applyAppend(seq int64, path string, data []byte) {
	cur, ok := fs.metaLocked(path, -1)
	if !ok {
		// Creating via Append is a write generation like WriteFile: a
		// deleted-and-recreated path must never alias its predecessor's
		// decoded blocks.
		fs.applyWrite(seq, path, data)
		return
	}
	live := fs.liveLocked()
	base := cur.size
	meta := &fileMeta{
		size:     base + int64(len(data)),
		blocks:   append([]*blockMeta(nil), cur.blocks...),
		segments: append(append([]int64(nil), cur.segments...), base),
		version:  cur.version,
	}
	fs.applyBlocks(meta, data, base, live)
	meta.sidecar = fs.extendSidecar(cur.sidecar, meta, data, base)
	fs.applyChainPush(path, seq, meta)
}

// applyDelete installs a deletion marker for path.
func (fs *FileSystem) applyDelete(seq int64, path string) {
	fs.applyChainPush(path, seq, nil)
}

// applyBlocks partitions data into blocks starting at file offset base,
// replicates each across distinct live DataNodes (random placement, like
// HDFS's rack-unaware policy on a flat topology) and attaches them to
// meta. Write I/O is charged once per replica.
func (fs *FileSystem) applyBlocks(meta *fileMeta, data []byte, base int64, live []int) {
	for off := int64(0); off < int64(len(data)) || (off == 0 && len(data) == 0 && base == 0); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		blk := &blockMeta{id: fs.nextID, offset: base + off, size: end - off}
		fs.nextID++
		payload := make([]byte, end-off)
		copy(payload, data[off:end])
		perm := fs.rng.Perm(len(live))
		nrep := fs.cfg.Replication
		if nrep > len(live) {
			nrep = len(live)
		}
		for _, pi := range perm[:nrep] {
			node := fs.nodes[live[pi]]
			node.blocks[blk.id] = payload
			blk.replicas = append(blk.replicas, node.id)
			if fs.metrics != nil {
				fs.metrics.BytesWritten.Add(blk.size)
			}
		}
		meta.blocks = append(meta.blocks, blk)
		if len(data) == 0 {
			break
		}
	}
}

// applyChainPush appends one committed state to path's version chain
// (creating the chain) and prunes states no pinned snapshot can see.
func (fs *FileSystem) applyChainPush(path string, seq int64, meta *fileMeta) {
	ch, ok := fs.files[path]
	if !ok {
		ch = &fileChain{}
		fs.files[path] = ch
	}
	ch.versions = append(ch.versions, chainVersion{seq: seq, meta: meta})
	fs.applyChainPrune(path, ch)
}

// applyChainPrune garbage-collects path's version chain: a non-live
// state is dropped once its successor's commit precedes every pinned
// snapshot (no pin can resolve to it anymore), and blocks referenced by
// no surviving state are removed from the DataNodes. A chain reduced to
// a single deletion marker disappears entirely.
func (fs *FileSystem) applyChainPrune(path string, ch *fileChain) {
	minPin := fs.minPinLocked()
	var pruned []*fileMeta
	kept := ch.versions[:0]
	for i, v := range ch.versions {
		if i < len(ch.versions)-1 && ch.versions[i+1].seq <= minPin {
			if v.meta != nil {
				pruned = append(pruned, v.meta)
			}
			continue
		}
		kept = append(kept, v)
	}
	ch.versions = kept
	if len(pruned) > 0 {
		surviving := make(map[int64]struct{})
		for _, v := range ch.versions {
			if v.meta == nil {
				continue
			}
			for _, blk := range v.meta.blocks {
				surviving[blk.id] = struct{}{}
			}
		}
		dropped := make(map[int64]struct{})
		for _, meta := range pruned {
			for _, blk := range meta.blocks {
				if _, keep := surviving[blk.id]; keep {
					continue
				}
				if _, done := dropped[blk.id]; done {
					continue
				}
				dropped[blk.id] = struct{}{}
				for _, nid := range blk.replicas {
					delete(fs.nodes[nid].blocks, blk.id)
				}
			}
		}
	}
	if len(ch.versions) == 1 && ch.versions[0].meta == nil {
		delete(fs.files, path)
	}
}

// minPinLocked returns the smallest pinned commit sequence, or MaxInt64
// when no snapshot is active (everything but the live state prunable).
func (fs *FileSystem) minPinLocked() int64 {
	min := int64(math.MaxInt64)
	for seq := range fs.pins {
		if seq < min {
			min = seq
		}
	}
	return min
}

// Version returns the file's write generation: fresh per WriteFile,
// stable across Append. (path, Version, offset) uniquely identifies
// immutable content, which is what the colscan block cache keys on and
// how maintained queries detect a rewrite under their path.
func (fs *FileSystem) Version(path string) (int64, error) {
	return fs.versionAt(path, -1)
}

func (fs *FileSystem) versionAt(path string, at int64) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.metaLocked(path, at)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return meta.version, nil
}

// Segments returns the start offset of every segment of path — offset 0
// for the initial write plus one offset per Append since. Splits never
// straddle a segment boundary, so a caller that remembers the file size
// it has processed can identify the splits covering appended data exactly.
func (fs *FileSystem) Segments(path string) ([]int64, error) {
	return fs.segmentsAt(path, -1)
}

func (fs *FileSystem) segmentsAt(path string, at int64) ([]int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.metaLocked(path, at)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return append([]int64(nil), meta.segments...), nil
}

func (fs *FileSystem) liveLocked() []int {
	var ids []int
	for _, n := range fs.nodes {
		if n.alive {
			ids = append(ids, n.id)
		}
	}
	return ids
}

// Stat returns the size of the file at path.
func (fs *FileSystem) Stat(path string) (size int64, err error) {
	return fs.statAt(path, -1)
}

func (fs *FileSystem) statAt(path string, at int64) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.metaLocked(path, at)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return meta.size, nil
}

// Exists reports whether path exists.
func (fs *FileSystem) Exists(path string) bool {
	return fs.existsAt(path, -1)
}

func (fs *FileSystem) existsAt(path string, at int64) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.metaLocked(path, at)
	return ok
}

// List returns all paths with the given prefix, sorted. EARL's feedback
// protocol (§3.3) lists the per-reducer error files sharing a job prefix.
func (fs *FileSystem) List(prefix string) []string {
	return fs.listAt(prefix, -1)
}

func (fs *FileSystem) listAt(prefix string, at int64) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		if _, ok := fs.metaLocked(p, at); ok {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ReadFile returns the whole contents of path, retrying across replicas
// per block. A sequential whole-file read is charged one seek.
func (fs *FileSystem) ReadFile(path string) ([]byte, error) {
	return fs.readFileAt(path, -1)
}

func (fs *FileSystem) readFileAt(path string, at int64) ([]byte, error) {
	size, err := fs.statAt(path, at)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	if _, err := fs.readAt(path, at, 0, buf, 1); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadAt fills p with file bytes starting at off, charging one disk seek
// (this is the random-access path the pre-map sampler uses). It returns
// the number of bytes read; n < len(p) with a nil error means EOF was
// reached.
func (fs *FileSystem) ReadAt(path string, off int64, p []byte) (int, error) {
	return fs.readAt(path, -1, off, p, 1)
}

func (fs *FileSystem) readAt(path string, at, off int64, p []byte, seeks int64) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.metaLocked(path, at)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if off < 0 {
		return 0, errors.New("dfs: negative offset")
	}
	if off >= meta.size {
		return 0, nil
	}
	if fs.metrics != nil && seeks > 0 {
		fs.metrics.DiskSeeks.Add(seeks)
	}
	want := int64(len(p))
	if off+want > meta.size {
		want = meta.size - off
	}
	var n int64
	for n < want {
		pos := off + n
		// Blocks are contiguous and sorted by offset but not uniformly
		// sized (appends cut a fresh block at the old end-of-file), so the
		// owning block is found by search, not division.
		bi := sort.Search(len(meta.blocks), func(i int) bool {
			return meta.blocks[i].offset+meta.blocks[i].size > pos
		})
		if bi >= len(meta.blocks) {
			break
		}
		blk := meta.blocks[bi]
		payload, err := fs.replicaPayloadLocked(blk)
		if err != nil {
			return int(n), err
		}
		inBlk := pos - blk.offset
		c := int64(copy(p[n:want], payload[inBlk:]))
		n += c
		if fs.metrics != nil {
			fs.metrics.BytesRead.Add(c)
		}
	}
	return int(n), nil
}

// replicaPayloadLocked returns a replica's bytes for blk, retrying with
// exponential backoff across live replicas: each attempt advances the
// round-robin tick to the next live replica, so a dead node, a missing
// copy, or an injected transient fault costs one backoff step, not the
// read. A read that exhausts its budget fails wrapping ErrNoReplica.
// (fs.rng cannot be used here: the read path holds only the read lock,
// so it must not mutate shared random state.)
func (fs *FileSystem) replicaPayloadLocked(blk *blockMeta) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < readAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(readBackoffBase << uint(attempt-1))
		}
		payload, err := fs.replicaAttemptLocked(blk, attempt)
		if err == nil {
			return payload, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: block %d after %d attempts: %v", ErrNoReplica, blk.id, readAttempts, lastErr)
}

// replicaAttemptLocked performs one replica read attempt for blk.
func (fs *FileSystem) replicaAttemptLocked(blk *blockMeta, attempt int) ([]byte, error) {
	if fp := fs.faults; fp != nil && fp.readErrorFires(blk.id, attempt) {
		return nil, fmt.Errorf("%w: injected read fault on block %d", ErrUnavailable, blk.id)
	}
	liveIdx := make([]int, 0, len(blk.replicas))
	for _, nid := range blk.replicas {
		if fs.nodes[nid].alive {
			liveIdx = append(liveIdx, nid)
		}
	}
	if len(liveIdx) == 0 {
		return nil, fmt.Errorf("%w: block %d", ErrUnavailable, blk.id)
	}
	nid := liveIdx[int(fs.readTick.Add(1))%len(liveIdx)]
	if fp := fs.faults; fp != nil && fp.slowNode(nid) {
		time.Sleep(fp.SlowDelay)
	}
	payload, ok := fs.nodes[nid].blocks[blk.id]
	if !ok {
		return nil, fmt.Errorf("%w: block %d missing on node %d", ErrUnavailable, blk.id, nid)
	}
	return payload, nil
}

// KillDataNode marks a node dead. Blocks whose every replica is dead
// become unreadable (ErrNoReplica after retries) — exactly the failure
// mode §3.4 tolerates by finishing with an accuracy estimate instead of
// restarting.
func (fs *FileSystem) KillDataNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("dfs: no datanode %d", id)
	}
	fs.nodes[id].alive = false
	return nil
}

// ReviveDataNode brings a dead node (and its blocks) back.
func (fs *FileSystem) ReviveDataNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("dfs: no datanode %d", id)
	}
	fs.nodes[id].alive = true
	return nil
}

// Rebalance redistributes replicas so block counts are as even as
// possible across live DataNodes — the HDFS balancer the paper notes
// makes uniform sampling from blocks sound (§1). Returns the number of
// replica moves performed. Placement is physical state, not namespace
// state: moves are not journaled, and pinned snapshots observe them
// (the bytes they read are identical from any replica).
func (fs *FileSystem) Rebalance() (moves int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	live := fs.liveLocked()
	if len(live) == 0 {
		return 0, ErrNoDataNodes
	}
	count := make(map[int]int, len(live))
	for _, nid := range live {
		count[nid] = len(fs.nodes[nid].blocks)
	}
	for {
		// Find the most and least loaded live nodes.
		maxN, minN := live[0], live[0]
		for _, nid := range live {
			if count[nid] > count[maxN] {
				maxN = nid
			}
			if count[nid] < count[minN] {
				minN = nid
			}
		}
		if count[maxN]-count[minN] <= 1 {
			return moves, nil
		}
		// Move one block from maxN to minN (any block minN lacks).
		moved := false
		for bid, payload := range fs.nodes[maxN].blocks {
			if _, has := fs.nodes[minN].blocks[bid]; has {
				continue
			}
			fs.nodes[minN].blocks[bid] = payload
			delete(fs.nodes[maxN].blocks, bid)
			fs.retargetReplicaLocked(bid, maxN, minN)
			count[maxN]--
			count[minN]++
			moves++
			moved = true
			break
		}
		if !moved {
			return moves, nil // nothing movable without violating distinctness
		}
	}
}

// retargetReplicaLocked updates the replica list of the block with
// blockID after a move. Chain versions share *blockMeta entries, so one
// update is visible to every state referencing the block.
func (fs *FileSystem) retargetReplicaLocked(blockID int64, from, to int) {
	for _, ch := range fs.files {
		for _, v := range ch.versions {
			if v.meta == nil {
				continue
			}
			for _, blk := range v.meta.blocks {
				if blk.id != blockID {
					continue
				}
				for i, nid := range blk.replicas {
					if nid == from {
						blk.replicas[i] = to
						return
					}
				}
			}
		}
	}
}

// BlockCounts returns, per DataNode id, how many block replicas it holds.
// Used by tests and by the rebalancer experiment.
func (fs *FileSystem) BlockCounts() map[int]int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[int]int, len(fs.nodes))
	for _, n := range fs.nodes {
		out[n.id] = len(n.blocks)
	}
	return out
}
