// Package dfs is an in-process simulation of HDFS, the storage substrate
// the paper's EARL prototype runs on. It reproduces the pieces of HDFS
// that EARL's design actually leans on (§1, §2.1, §3.3 of the paper):
//
//   - files are split into fixed-size blocks (64 MB default) with
//     metadata held by a NameNode and block bytes held by DataNodes;
//   - blocks are replicated; reads fail over to surviving replicas, which
//     is what lets EARL keep answering through node failures (§3.4);
//   - a rebalancer distributes blocks uniformly across DataNodes — the
//     property EARL's sampling exploits;
//   - files expose *logical splits* (the "InputSplit" of MapReduce) and a
//     LineRecordReader with Hadoop's exact split-boundary semantics: a
//     reader whose split starts mid-line skips that partial line (its
//     owner is the previous split) and reads past its split end to finish
//     its last line;
//   - random positioned reads, used by the pre-map sampler (Algorithm 2),
//     are charged a disk seek in the cost metrics.
//
// Block payloads live in memory; the simcost.Metrics hooks account for
// the I/O that a disk-backed deployment would perform.
package dfs

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/simcost"
)

// DefaultBlockSize mirrors HDFS's classic 64 MB block.
const DefaultBlockSize = 64 << 20

// Errors returned by the filesystem.
var (
	ErrNotFound    = errors.New("dfs: file not found")
	ErrExists      = errors.New("dfs: file already exists")
	ErrUnavailable = errors.New("dfs: no live replica for block")
	ErrNoDataNodes = errors.New("dfs: no live datanodes")
	// ErrUnalignedAppend is returned by Append when the existing file does
	// not end with a newline: the boundary record would span the old and
	// new segments, so existing splits could no longer own stable record
	// sets — the invariant continuous ingest depends on.
	ErrUnalignedAppend = errors.New("dfs: append to file without trailing newline")
)

// Config configures a FileSystem.
type Config struct {
	BlockSize   int64            // bytes per block; DefaultBlockSize if zero
	Replication int              // replicas per block; 3 if zero
	DataNodes   int              // cluster size; 5 (the paper's testbed) if zero
	Metrics     *simcost.Metrics // optional I/O accounting sink
	Seed        uint64           // seed for replica placement decisions
	// DisableSidecars turns off the automatic columnar sidecar encoding
	// at WriteFile/Append (see sidecar.go). The explicit Compact entry
	// point still builds one — the knob gates ingest-time work only.
	DisableSidecars bool
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.DataNodes <= 0 {
		c.DataNodes = 5
	}
	return c
}

// FileSystem is the simulated distributed filesystem: NameNode metadata
// plus the DataNode block stores. All methods are safe for concurrent use.
type FileSystem struct {
	mu       sync.RWMutex
	cfg      Config
	rng      *rand.Rand // guarded by mu (write lock); used for placement only
	readTick atomic.Int64
	nextID   int64
	nodes    []*dataNode
	files    map[string]*fileMeta
	// sidecars holds each file's persistent columnar segment encoding
	// (internal/colseg), keyed by data path. A sidecar is derived state
	// — rebuildable from the file at any time, dropped with it, never
	// replicated: losing one costs a text decode, not data.
	sidecars map[string][]byte
	metrics  *simcost.Metrics
}

type dataNode struct {
	id     int
	alive  bool
	blocks map[int64][]byte
}

type fileMeta struct {
	size     int64
	blocks   []*blockMeta
	segments []int64 // start offset of every write/append segment, ascending
	// version is the file's write generation: a fresh id per WriteFile,
	// stable across Append (appends add segments, they never change the
	// bytes behind an existing offset). Decoded-block caches key on it.
	version int64
}

type blockMeta struct {
	id       int64
	offset   int64 // offset of this block within the file
	size     int64
	replicas []int // datanode ids holding a copy
}

// New creates a filesystem with cfg.
func New(cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	fs := &FileSystem{
		cfg:      cfg,
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0x6a09e667f3bcc908)),
		files:    make(map[string]*fileMeta),
		sidecars: make(map[string][]byte),
		metrics:  cfg.Metrics,
	}
	for i := 0; i < cfg.DataNodes; i++ {
		fs.nodes = append(fs.nodes, &dataNode{id: i, alive: true, blocks: make(map[int64][]byte)})
	}
	return fs
}

// BlockSize returns the configured block size.
func (fs *FileSystem) BlockSize() int64 { return fs.cfg.BlockSize }

// NumDataNodes returns the cluster size (live or not).
func (fs *FileSystem) NumDataNodes() int { return len(fs.nodes) }

// LiveDataNodes returns the ids of DataNodes currently alive.
func (fs *FileSystem) LiveDataNodes() []int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var ids []int
	for _, n := range fs.nodes {
		if n.alive {
			ids = append(ids, n.id)
		}
	}
	return ids
}

// WriteFile stores data at path, replacing any existing file. Data is
// partitioned into blocks and each block is replicated across distinct
// live DataNodes (fewer if the cluster is smaller than the replication
// factor). Write I/O is charged once per replica.
func (fs *FileSystem) WriteFile(path string, data []byte) error {
	if path == "" {
		return errors.New("dfs: empty path")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	live := fs.liveLocked()
	if len(live) == 0 {
		return ErrNoDataNodes
	}
	if old, ok := fs.files[path]; ok {
		fs.dropBlocksLocked(old)
	}
	fs.nextID++
	meta := &fileMeta{size: int64(len(data)), segments: []int64{0}, version: fs.nextID}
	fs.appendBlocksLocked(meta, data, 0, live)
	fs.files[path] = meta
	fs.buildSidecarLocked(path, meta, data)
	return nil
}

// Version returns the file's write generation: fresh per WriteFile,
// stable across Append. (path, Version, offset) uniquely identifies
// immutable content, which is what the colscan block cache keys on.
func (fs *FileSystem) Version(path string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return meta.version, nil
}

// appendBlocksLocked partitions data into blocks starting at file offset
// base, replicates each across distinct live DataNodes (random placement,
// like HDFS's rack-unaware policy on a flat topology) and attaches them
// to meta. Write I/O is charged once per replica.
func (fs *FileSystem) appendBlocksLocked(meta *fileMeta, data []byte, base int64, live []int) {
	for off := int64(0); off < int64(len(data)) || (off == 0 && len(data) == 0 && base == 0); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		blk := &blockMeta{id: fs.nextID, offset: base + off, size: end - off}
		fs.nextID++
		payload := make([]byte, end-off)
		copy(payload, data[off:end])
		perm := fs.rng.Perm(len(live))
		nrep := fs.cfg.Replication
		if nrep > len(live) {
			nrep = len(live)
		}
		for _, pi := range perm[:nrep] {
			node := fs.nodes[live[pi]]
			node.blocks[blk.id] = payload
			blk.replicas = append(blk.replicas, node.id)
			if fs.metrics != nil {
				fs.metrics.BytesWritten.Add(blk.size)
			}
		}
		meta.blocks = append(meta.blocks, blk)
		if len(data) == 0 {
			break
		}
	}
}

// Append adds data to the end of path as a fresh *segment*: new blocks
// are cut from the old end-of-file (never extending the last block) and
// replicated across live DataNodes like any other write. Existing blocks,
// their replicas, and the logical splits over them are untouched — the
// stability continuous ingest relies on, letting a maintained query
// process only the appended region.
//
// The existing file must end with a newline (record-aligned appends);
// otherwise ErrUnalignedAppend is returned. Appending to a missing path
// creates the file.
func (fs *FileSystem) Append(path string, data []byte) error {
	if path == "" {
		return errors.New("dfs: empty path")
	}
	if len(data) == 0 {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	live := fs.liveLocked()
	if len(live) == 0 {
		return ErrNoDataNodes
	}
	meta, ok := fs.files[path]
	if !ok {
		// Creating via Append is a write generation like WriteFile: a
		// deleted-and-recreated path must never alias its predecessor's
		// decoded blocks.
		fs.nextID++
		meta = &fileMeta{segments: []int64{0}, version: fs.nextID}
		fs.appendBlocksLocked(meta, data, 0, live)
		meta.size = int64(len(data))
		fs.files[path] = meta
		fs.buildSidecarLocked(path, meta, data)
		return nil
	}
	if meta.size > 0 {
		last := meta.blocks[len(meta.blocks)-1]
		payload, err := fs.replicaPayloadLocked(last)
		if err != nil {
			return err
		}
		if len(payload) == 0 || payload[len(payload)-1] != '\n' {
			return fmt.Errorf("%w: %s", ErrUnalignedAppend, path)
		}
	}
	base := meta.size
	fs.appendBlocksLocked(meta, data, base, live)
	meta.segments = append(meta.segments, base)
	meta.size += int64(len(data))
	fs.extendSidecarLocked(path, meta, data, base)
	return nil
}

// Segments returns the start offset of every segment of path — offset 0
// for the initial write plus one offset per Append since. Splits never
// straddle a segment boundary, so a caller that remembers the file size
// it has processed can identify the splits covering appended data exactly.
func (fs *FileSystem) Segments(path string) ([]int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return append([]int64(nil), meta.segments...), nil
}

func (fs *FileSystem) liveLocked() []int {
	var ids []int
	for _, n := range fs.nodes {
		if n.alive {
			ids = append(ids, n.id)
		}
	}
	return ids
}

func (fs *FileSystem) dropBlocksLocked(meta *fileMeta) {
	for _, blk := range meta.blocks {
		for _, nid := range blk.replicas {
			delete(fs.nodes[nid].blocks, blk.id)
		}
	}
}

// Delete removes path.
func (fs *FileSystem) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	fs.dropBlocksLocked(meta)
	delete(fs.files, path)
	delete(fs.sidecars, path)
	return nil
}

// Stat returns the size of the file at path.
func (fs *FileSystem) Stat(path string) (size int64, err error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return meta.size, nil
}

// Exists reports whether path exists.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// List returns all paths with the given prefix, sorted. EARL's feedback
// protocol (§3.3) lists the per-reducer error files sharing a job prefix.
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ReadFile returns the whole contents of path, failing over across
// replicas per block. A sequential whole-file read is charged one seek.
func (fs *FileSystem) ReadFile(path string) ([]byte, error) {
	size, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	if _, err := fs.readAt(path, 0, buf, 1); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadAt fills p with file bytes starting at off, charging one disk seek
// (this is the random-access path the pre-map sampler uses). It returns
// the number of bytes read; n < len(p) with a nil error means EOF was
// reached.
func (fs *FileSystem) ReadAt(path string, off int64, p []byte) (int, error) {
	return fs.readAt(path, off, p, 1)
}

func (fs *FileSystem) readAt(path string, off int64, p []byte, seeks int64) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if off < 0 {
		return 0, errors.New("dfs: negative offset")
	}
	if off >= meta.size {
		return 0, nil
	}
	if fs.metrics != nil && seeks > 0 {
		fs.metrics.DiskSeeks.Add(seeks)
	}
	want := int64(len(p))
	if off+want > meta.size {
		want = meta.size - off
	}
	var n int64
	for n < want {
		pos := off + n
		// Blocks are contiguous and sorted by offset but not uniformly
		// sized (appends cut a fresh block at the old end-of-file), so the
		// owning block is found by search, not division.
		bi := sort.Search(len(meta.blocks), func(i int) bool {
			return meta.blocks[i].offset+meta.blocks[i].size > pos
		})
		if bi >= len(meta.blocks) {
			break
		}
		blk := meta.blocks[bi]
		payload, err := fs.replicaPayloadLocked(blk)
		if err != nil {
			return int(n), err
		}
		inBlk := pos - blk.offset
		c := int64(copy(p[n:want], payload[inBlk:]))
		n += c
		if fs.metrics != nil {
			fs.metrics.BytesRead.Add(c)
		}
	}
	return int(n), nil
}

// replicaPayloadLocked returns a live replica's bytes for blk, spreading
// load across live replicas round-robin (fs.rng cannot be used here: the
// read path holds only the read lock, so it must not mutate shared
// random state).
func (fs *FileSystem) replicaPayloadLocked(blk *blockMeta) ([]byte, error) {
	liveIdx := make([]int, 0, len(blk.replicas))
	for _, nid := range blk.replicas {
		if fs.nodes[nid].alive {
			liveIdx = append(liveIdx, nid)
		}
	}
	if len(liveIdx) == 0 {
		return nil, fmt.Errorf("%w: block %d", ErrUnavailable, blk.id)
	}
	nid := liveIdx[int(fs.readTick.Add(1))%len(liveIdx)]
	payload, ok := fs.nodes[nid].blocks[blk.id]
	if !ok {
		return nil, fmt.Errorf("%w: block %d missing on node %d", ErrUnavailable, blk.id, nid)
	}
	return payload, nil
}

// KillDataNode marks a node dead. Blocks whose every replica is dead
// become unavailable — exactly the failure mode §3.4 tolerates by
// finishing with an accuracy estimate instead of restarting.
func (fs *FileSystem) KillDataNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("dfs: no datanode %d", id)
	}
	fs.nodes[id].alive = false
	return nil
}

// ReviveDataNode brings a dead node (and its blocks) back.
func (fs *FileSystem) ReviveDataNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("dfs: no datanode %d", id)
	}
	fs.nodes[id].alive = true
	return nil
}

// Rebalance redistributes replicas so block counts are as even as
// possible across live DataNodes — the HDFS balancer the paper notes
// makes uniform sampling from blocks sound (§1). Returns the number of
// replica moves performed.
func (fs *FileSystem) Rebalance() (moves int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	live := fs.liveLocked()
	if len(live) == 0 {
		return 0, ErrNoDataNodes
	}
	count := make(map[int]int, len(live))
	for _, nid := range live {
		count[nid] = len(fs.nodes[nid].blocks)
	}
	for {
		// Find the most and least loaded live nodes.
		maxN, minN := live[0], live[0]
		for _, nid := range live {
			if count[nid] > count[maxN] {
				maxN = nid
			}
			if count[nid] < count[minN] {
				minN = nid
			}
		}
		if count[maxN]-count[minN] <= 1 {
			return moves, nil
		}
		// Move one block from maxN to minN (any block minN lacks).
		moved := false
		for bid, payload := range fs.nodes[maxN].blocks {
			if _, has := fs.nodes[minN].blocks[bid]; has {
				continue
			}
			fs.nodes[minN].blocks[bid] = payload
			delete(fs.nodes[maxN].blocks, bid)
			fs.retargetReplicaLocked(bid, maxN, minN)
			count[maxN]--
			count[minN]++
			moves++
			moved = true
			break
		}
		if !moved {
			return moves, nil // nothing movable without violating distinctness
		}
	}
}

func (fs *FileSystem) retargetReplicaLocked(blockID int64, from, to int) {
	for _, meta := range fs.files {
		for _, blk := range meta.blocks {
			if blk.id != blockID {
				continue
			}
			for i, nid := range blk.replicas {
				if nid == from {
					blk.replicas[i] = to
					return
				}
			}
		}
	}
}

// BlockCounts returns, per DataNode id, how many block replicas it holds.
// Used by tests and by the rebalancer experiment.
func (fs *FileSystem) BlockCounts() map[int]int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[int]int, len(fs.nodes))
	for _, n := range fs.nodes {
		out[n.id] = len(n.blocks)
	}
	return out
}
