package dfs

import "time"

// FaultPlan is the seeded, deterministic fault-injection layer the
// chaos acceptance suite drives, extending the KillDataNode /
// CorruptSidecarByte / TruncateSidecar hooks with in-band faults:
//
//   - transient read errors: an attempt-indexed hash of (Seed, block id,
//     attempt) decides which replica read attempts fail, so the outcome
//     per block is identical run-to-run regardless of goroutine
//     interleaving — either a read deterministically succeeds at some
//     retry, or deterministically exhausts its budget. Fixed-seed
//     reports therefore stay bit-identical with the fault on or off
//     whenever every block clears within the retry budget.
//   - slow replicas: reads landing on SlowNodes sleep SlowDelay — a
//     pure timing fault that must never change an answer.
//   - crash at commit point k (+ optionally a torn final write): the
//     k-th commit "loses power" mid-write. The filesystem refuses
//     further mutations with ErrCrashed and JournalBytes returns the
//     crash image — k-1 durable commits, plus a half-written frame of
//     commit k when TornTail is set — for Recover to replay.
type FaultPlan struct {
	Seed uint64
	// ReadErrorRate is the per-(block, attempt) probability in [0, 1)
	// that a replica read attempt fails with ErrUnavailable.
	ReadErrorRate float64
	// SlowNodes lists DataNode ids whose reads sleep SlowDelay.
	SlowNodes []int
	SlowDelay time.Duration
	// CrashAtCommit, when > 0, crashes the filesystem while writing the
	// commit with that sequence number. TornTail leaves the half-written
	// record in the journal image.
	CrashAtCommit int64
	TornTail      bool
}

// SetFaultPlan installs plan (nil clears injection). The plan is copied;
// later mutation of the caller's struct has no effect.
func (fs *FileSystem) SetFaultPlan(plan *FaultPlan) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if plan == nil {
		fs.faults = nil
		return
	}
	dup := *plan
	dup.SlowNodes = append([]int(nil), plan.SlowNodes...)
	fs.faults = &dup
}

// readErrorFires reports whether the injected transient read fault
// strikes this (block, attempt) pair. Pure function of the plan seed —
// no shared state, so concurrent readers agree and outcomes do not
// depend on scheduling.
func (fp *FaultPlan) readErrorFires(blockID int64, attempt int) bool {
	if fp.ReadErrorRate <= 0 {
		return false
	}
	h := fp.Seed
	h ^= uint64(blockID) * 0x9e3779b97f4a7c15
	h ^= uint64(attempt+1) * 0xbf58476d1ce4e5b9
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11)/(1<<53) < fp.ReadErrorRate
}

// slowNode reports whether node id is on the slow list.
func (fp *FaultPlan) slowNode(id int) bool {
	for _, n := range fp.SlowNodes {
		if n == id {
			return true
		}
	}
	return false
}
