package dfs

import (
	"fmt"
	"sync/atomic"
)

// View is the read surface of the filesystem: everything a scan, a
// sampler or a maintained query needs, with no mutation entry points.
// Both *FileSystem (always the live state) and *Snapshot (one pinned
// commit) implement it, so any reader can be pointed at "now" or at a
// consistent frozen world with the same code.
type View interface {
	ReadAt(path string, off int64, p []byte) (int, error)
	ReadFile(path string) ([]byte, error)
	Stat(path string) (int64, error)
	Exists(path string) bool
	List(prefix string) []string
	Version(path string) (int64, error)
	Segments(path string) ([]int64, error)
	Splits(path string, splitSize int64) ([]Split, error)
	NewLineReader(split Split, chunkSize int) (*LineReader, error)
	ReadLineAt(path string, pos int64, chunkSize int) (line string, lineStart int64, err error)
	CountLines(path string) (int64, error)
	SidecarStat(path string) (int64, bool)
	ReadSidecarAt(path string, off int64, p []byte) (int, error)
}

// Compile-time checks: both implementations satisfy the full surface.
var (
	_ View = (*FileSystem)(nil)
	_ View = (*Snapshot)(nil)
)

// Snapshot is one pinned commit of the filesystem: every read resolves
// against the namespace exactly as it was when the snapshot was taken,
// no matter what WriteFile/Append/Delete commits land afterwards. The
// superseded state a snapshot still needs survives garbage collection
// until Release. Snapshots are cheap (a refcounted sequence number, no
// copying) and safe for concurrent use; Release is idempotent.
type Snapshot struct {
	fs       *FileSystem
	seq      int64
	released atomic.Bool
}

// Snapshot pins the current commit and returns a View of it.
func (fs *FileSystem) Snapshot() *Snapshot {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.pins[fs.commitSeq]++
	return &Snapshot{fs: fs, seq: fs.commitSeq}
}

// Seq returns the commit sequence this snapshot pins.
func (s *Snapshot) Seq() int64 { return s.seq }

// Release unpins the snapshot. States visible only to it become
// garbage-collectable; reading through a released snapshot is a bug
// (reads may then see pruned state errors). Idempotent.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	fs := s.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.pins[s.seq]--; fs.pins[s.seq] <= 0 {
		delete(fs.pins, s.seq)
	}
	// The pin floor moved: sweep every chain for states nothing can see.
	for path, ch := range fs.files {
		fs.applyChainPrune(path, ch)
	}
}

// The View methods: each delegates to the sequence-resolved read path.

func (s *Snapshot) ReadAt(path string, off int64, p []byte) (int, error) {
	return s.fs.readAt(path, s.seq, off, p, 1)
}

func (s *Snapshot) ReadFile(path string) ([]byte, error) {
	return s.fs.readFileAt(path, s.seq)
}

func (s *Snapshot) Stat(path string) (int64, error) {
	return s.fs.statAt(path, s.seq)
}

func (s *Snapshot) Exists(path string) bool {
	return s.fs.existsAt(path, s.seq)
}

func (s *Snapshot) List(prefix string) []string {
	return s.fs.listAt(prefix, s.seq)
}

func (s *Snapshot) Version(path string) (int64, error) {
	return s.fs.versionAt(path, s.seq)
}

func (s *Snapshot) Segments(path string) ([]int64, error) {
	return s.fs.segmentsAt(path, s.seq)
}

func (s *Snapshot) Splits(path string, splitSize int64) ([]Split, error) {
	return s.fs.splitsAt(path, s.seq, splitSize)
}

func (s *Snapshot) NewLineReader(split Split, chunkSize int) (*LineReader, error) {
	return s.fs.newLineReaderAt(split, s.seq, chunkSize)
}

func (s *Snapshot) ReadLineAt(path string, pos int64, chunkSize int) (string, int64, error) {
	return s.fs.readLineAt(path, s.seq, pos, chunkSize)
}

func (s *Snapshot) CountLines(path string) (int64, error) {
	return s.fs.countLinesAt(path, s.seq)
}

func (s *Snapshot) SidecarStat(path string) (int64, bool) {
	return s.fs.sidecarStatAt(path, s.seq)
}

func (s *Snapshot) ReadSidecarAt(path string, off int64, p []byte) (int, error) {
	return s.fs.readSidecarAt(path, s.seq, off, p)
}

// String implements fmt.Stringer for log lines.
func (s *Snapshot) String() string { return fmt.Sprintf("snapshot@%d", s.seq) }
