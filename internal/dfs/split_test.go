package dfs

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

// readAllSplits reads every record of every split and returns them in
// order, verifying the single-owner property along the way.
func readAllSplits(t *testing.T, fs *FileSystem, path string, splitSize int64, chunk int) []string {
	t.Helper()
	splits, err := fs.Splits(path, splitSize)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, sp := range splits {
		r, err := fs.NewLineReader(sp, chunk)
		if err != nil {
			t.Fatal(err)
		}
		for r.Next() {
			out = append(out, r.Text())
		}
		if r.Err() != nil {
			t.Fatalf("split %v: %v", sp, r.Err())
		}
	}
	return out
}

func linesFixture(n int) ([]string, []byte) {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", i%7))
	}
	return lines, []byte(strings.Join(lines, "\n") + "\n")
}

func TestLineReaderSingleSplit(t *testing.T) {
	fs := newTestFS(t, 1<<20)
	lines, data := linesFixture(100)
	if err := fs.WriteFile("/t", data); err != nil {
		t.Fatal(err)
	}
	got := readAllSplits(t, fs, "/t", 1<<20, 16)
	if len(got) != len(lines) {
		t.Fatalf("got %d lines, want %d", len(got), len(lines))
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], lines[i])
		}
	}
}

func TestLineReaderEveryRecordExactlyOnce(t *testing.T) {
	// The core single-owner property across many split sizes, including
	// sizes that land boundaries mid-line, exactly on '\n', and exactly
	// on line starts.
	fs := newTestFS(t, 1<<20)
	lines, data := linesFixture(57)
	if err := fs.WriteFile("/t", data); err != nil {
		t.Fatal(err)
	}
	for splitSize := int64(1); splitSize < int64(len(data))+5; splitSize += 3 {
		got := readAllSplits(t, fs, "/t", splitSize, 8)
		if len(got) != len(lines) {
			t.Fatalf("splitSize %d: got %d lines, want %d", splitSize, len(got), len(lines))
		}
		for i := range lines {
			if got[i] != lines[i] {
				t.Fatalf("splitSize %d line %d = %q want %q", splitSize, i, got[i], lines[i])
			}
		}
	}
}

func TestLineReaderNoTrailingNewline(t *testing.T) {
	fs := newTestFS(t, 1<<20)
	data := []byte("alpha\nbeta\ngamma") // no trailing newline
	if err := fs.WriteFile("/t", data); err != nil {
		t.Fatal(err)
	}
	for splitSize := int64(1); splitSize <= int64(len(data)); splitSize++ {
		got := readAllSplits(t, fs, "/t", splitSize, 4)
		want := []string{"alpha", "beta", "gamma"}
		if len(got) != 3 {
			t.Fatalf("splitSize %d: got %v", splitSize, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("splitSize %d: got %v", splitSize, got)
			}
		}
	}
}

func TestLineReaderEmptyLines(t *testing.T) {
	fs := newTestFS(t, 1<<20)
	data := []byte("\n\na\n\nb\n")
	if err := fs.WriteFile("/t", data); err != nil {
		t.Fatal(err)
	}
	got := readAllSplits(t, fs, "/t", 3, 2)
	want := []string{"", "", "a", "", "b"}
	if len(got) != len(want) {
		t.Fatalf("got %q want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %q want %q", got, want)
		}
	}
}

func TestLineReaderPropertyRandomDocuments(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		nLines := 1 + int(rng.UintN(80))
		lines := make([]string, nLines)
		for i := range lines {
			lines[i] = strings.Repeat("ab", int(rng.UintN(20)))
		}
		// A trailing "\n" is the record terminator, not a separator: "a\n"
		// encodes ["a"], and omitting the final newline is only a distinct
		// encoding when the last record is non-empty.
		doc := strings.Join(lines, "\n") + "\n"
		if rng.UintN(2) == 0 && lines[len(lines)-1] != "" {
			doc = strings.TrimSuffix(doc, "\n")
		}
		fs := New(Config{BlockSize: 1 + int64(rng.UintN(64)), Replication: 1, DataNodes: 2, Seed: seed})
		if err := fs.WriteFile("/p", []byte(doc)); err != nil {
			return false
		}
		splitSize := 1 + int64(rng.Uint64N(uint64(len(doc)+4)))
		splits, err := fs.Splits("/p", splitSize)
		if err != nil {
			return false
		}
		var got []string
		for _, sp := range splits {
			r, err := fs.NewLineReader(sp, 1+int(rng.UintN(32)))
			if err != nil {
				return false
			}
			for r.Next() {
				got = append(got, r.Text())
			}
			if r.Err() != nil {
				return false
			}
		}
		if len(got) != len(lines) {
			return false
		}
		for i := range lines {
			if got[i] != lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLineReaderRecordOffset(t *testing.T) {
	fs := newTestFS(t, 1<<20)
	data := []byte("aa\nbbb\ncccc\n")
	if err := fs.WriteFile("/t", data); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("/t", int64(len(data)))
	r, err := fs.NewLineReader(splits[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	wantOffsets := []int64{0, 3, 7}
	for i := 0; r.Next(); i++ {
		if r.RecordOffset() != wantOffsets[i] {
			t.Fatalf("record %d offset = %d, want %d", i, r.RecordOffset(), wantOffsets[i])
		}
	}
}

func TestLineReaderBadSplit(t *testing.T) {
	fs := newTestFS(t, 1<<20)
	fs.WriteFile("/t", []byte("x\n"))
	if _, err := fs.NewLineReader(Split{Path: "/t", Offset: 100, Length: 5}, 4); err == nil {
		t.Fatal("out-of-bounds split should error")
	}
	if _, err := fs.NewLineReader(Split{Path: "/missing"}, 4); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestReadLineAtBacktracking(t *testing.T) {
	fs := newTestFS(t, 16)
	data := []byte("first line\nsecond line\nthird\n")
	if err := fs.WriteFile("/t", data); err != nil {
		t.Fatal(err)
	}
	// Offset in the middle of "second line" backtracks to its start.
	line, start, err := fs.ReadLineAt("/t", 15, 4)
	if err != nil || line != "second line" || start != 11 {
		t.Fatalf("ReadLineAt = %q @%d, %v", line, start, err)
	}
	// Offset exactly at a line start returns that line.
	line, start, err = fs.ReadLineAt("/t", 11, 4)
	if err != nil || line != "second line" || start != 11 {
		t.Fatalf("ReadLineAt@start = %q @%d, %v", line, start, err)
	}
	// Offset 0 returns the first line.
	line, start, err = fs.ReadLineAt("/t", 0, 4)
	if err != nil || line != "first line" || start != 0 {
		t.Fatalf("ReadLineAt@0 = %q @%d, %v", line, start, err)
	}
	// Offset at/after EOF clamps to the last line.
	line, start, err = fs.ReadLineAt("/t", 1000, 4)
	if err != nil || line != "third" || start != 23 {
		t.Fatalf("ReadLineAt@EOF = %q @%d, %v", line, start, err)
	}
}

func TestReadLineAtEveryPositionOwnsOneLine(t *testing.T) {
	fs := newTestFS(t, 8)
	lines := []string{"aaa", "bb", "cccc", "d"}
	data := []byte(strings.Join(lines, "\n") + "\n")
	if err := fs.WriteFile("/t", data); err != nil {
		t.Fatal(err)
	}
	// Every byte position maps to the line containing it.
	wantAt := make([]string, len(data))
	pos := 0
	for _, l := range lines {
		for i := 0; i <= len(l); i++ { // include the newline position
			wantAt[pos] = l
			pos++
		}
	}
	for p := 0; p < len(data); p++ {
		line, _, err := fs.ReadLineAt("/t", int64(p), 3)
		if err != nil {
			t.Fatalf("pos %d: %v", p, err)
		}
		if line != wantAt[p] {
			t.Fatalf("pos %d: got %q want %q", p, line, wantAt[p])
		}
	}
}

func TestCountLines(t *testing.T) {
	fs := newTestFS(t, 8)
	fs.WriteFile("/a", []byte("x\ny\nz\n"))
	fs.WriteFile("/b", []byte("x\ny\nz")) // no trailing newline
	fs.WriteFile("/c", nil)
	for path, want := range map[string]int64{"/a": 3, "/b": 3, "/c": 0} {
		n, err := fs.CountLines(path)
		if err != nil || n != want {
			t.Fatalf("CountLines(%s) = %d, %v; want %d", path, n, err, want)
		}
	}
}
