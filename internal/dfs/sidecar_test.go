package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/colscan"
	"repro/internal/colseg"
)

func sidecarTestFS() *FileSystem {
	return New(Config{BlockSize: 1 << 12, Replication: 2, DataNodes: 3, Seed: 1})
}

// numericLines renders n fixed-width records (9 bytes each).
func numericLines(n, base int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "%08d\n", base+i)
	}
	return buf.Bytes()
}

// readSidecar fetches path's whole sidecar through the Store surface.
func readSidecar(t *testing.T, fs *FileSystem, path string) []byte {
	t.Helper()
	size, ok := fs.SidecarStat(path)
	if !ok {
		t.Fatalf("no sidecar for %s", path)
	}
	buf := make([]byte, size)
	if n, err := fs.ReadSidecarAt(path, 0, buf); err != nil || int64(n) != size {
		t.Fatalf("read sidecar %s: %d bytes, %v", path, n, err)
	}
	return buf
}

func TestWriteFileBuildsSidecar(t *testing.T) {
	fs := sidecarTestFS()
	data := numericLines(1000, 0) // 9 KB: above the ingest threshold
	if err := fs.WriteFile("/data", data); err != nil {
		t.Fatal(err)
	}
	info, err := colseg.Inspect(readSidecar(t, fs, "/data"))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := fs.Version("/data")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != ver || info.Cover != int64(len(data)) || info.Format != colscan.FormatNumeric {
		t.Fatalf("sidecar info %+v, want version %d cover %d numeric", info, ver, len(data))
	}
	// The chunk geometry matches Splits(path, 0) exactly.
	splits, err := fs.Splits("/data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks != len(splits) {
		t.Fatalf("%d chunks for %d splits", info.Chunks, len(splits))
	}
}

func TestSidecarIngestGates(t *testing.T) {
	fs := sidecarTestFS()
	// Too small to repay the encode.
	if err := fs.WriteFile("/small", numericLines(10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.SidecarStat("/small"); ok {
		t.Fatal("sub-threshold file got a sidecar")
	}
	// The engine's churn-heavy internal namespace.
	if err := fs.WriteFile("/earl/run-1/err-0", numericLines(1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.SidecarStat("/earl/run-1/err-0"); ok {
		t.Fatal("/earl/ file got a sidecar")
	}
	// A record the columnar validators reject: file stays text-only.
	bad := append(numericLines(1000, 0), []byte("NaN\n")...)
	bad = append(bad, numericLines(1000, 1000)...)
	if err := fs.WriteFile("/poisoned", bad); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.SidecarStat("/poisoned"); ok {
		t.Fatal("unparseable file got a sidecar")
	}
	// DisableSidecars turns ingest encoding off entirely.
	off := New(Config{BlockSize: 1 << 12, Replication: 2, DataNodes: 3, Seed: 1, DisableSidecars: true})
	if err := off.WriteFile("/data", numericLines(1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := off.SidecarStat("/data"); ok {
		t.Fatal("DisableSidecars ingest built a sidecar")
	}
}

func TestSidecarRewriteAndDelete(t *testing.T) {
	fs := sidecarTestFS()
	if err := fs.WriteFile("/data", numericLines(1000, 0)); err != nil {
		t.Fatal(err)
	}
	v1, _ := fs.Version("/data")
	// Rewrite: the sidecar must track the new generation, not linger.
	if err := fs.WriteFile("/data", numericLines(2000, 5)); err != nil {
		t.Fatal(err)
	}
	info, err := colseg.Inspect(readSidecar(t, fs, "/data"))
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := fs.Version("/data")
	if info.Version != v2 || info.Version == v1 {
		t.Fatalf("rewritten sidecar at generation %d (v1=%d v2=%d)", info.Version, v1, v2)
	}
	// A rewrite to sub-threshold contents must drop the old sidecar.
	if err := fs.WriteFile("/data", numericLines(10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.SidecarStat("/data"); ok {
		t.Fatal("rewrite to a small file left a stale sidecar")
	}
	if err := fs.WriteFile("/data", numericLines(1000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/data"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.SidecarStat("/data"); ok {
		t.Fatal("Delete left the sidecar behind")
	}
}

func TestSidecarAppendExtends(t *testing.T) {
	fs := sidecarTestFS()
	if err := fs.WriteFile("/data", numericLines(1000, 0)); err != nil {
		t.Fatal(err)
	}
	before := readSidecar(t, fs, "/data")
	// A batch above the append threshold (8000 × 9 B = 72 KB) extends in
	// place: coverage reaches the new size, generation is unchanged, and
	// the pre-append chunk bytes are byte-stable inside the new sidecar.
	if err := fs.Append("/data", numericLines(8000, 1000)); err != nil {
		t.Fatal(err)
	}
	after := readSidecar(t, fs, "/data")
	info, err := colseg.Inspect(after)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := fs.Stat("/data")
	ver, _ := fs.Version("/data")
	if info.Cover != size || info.Version != ver {
		t.Fatalf("extended sidecar covers %d of %d at generation %d (want %d)", info.Cover, size, info.Version, ver)
	}
	binfo, err := colseg.Inspect(before)
	if err != nil {
		t.Fatal(err)
	}
	chunkRegion := before[25 : len(before)-12-36*binfo.Chunks]
	if !bytes.Contains(after, chunkRegion) {
		t.Fatal("append rewrote pre-append chunk bytes")
	}
}

func TestSidecarSmallAppendWaitsForCompact(t *testing.T) {
	fs := sidecarTestFS()
	if err := fs.WriteFile("/data", numericLines(1000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/data", numericLines(20, 1000)); err != nil {
		t.Fatal(err)
	}
	info, err := colseg.Inspect(readSidecar(t, fs, "/data"))
	if err != nil {
		t.Fatal(err)
	}
	size, _ := fs.Stat("/data")
	if info.Cover >= size {
		t.Fatalf("sub-threshold append extended coverage to %d of %d", info.Cover, size)
	}
	st, err := fs.Compact("/data")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Rebuilt || st.CoveredBytes != size {
		t.Fatalf("Compact = %+v, want a rebuild covering %d bytes", st, size)
	}
	// A second Compact finds full coverage and does nothing.
	st, err = fs.Compact("/data")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt {
		t.Fatalf("Compact rebuilt an already-covered sidecar: %+v", st)
	}
}

func TestCompactBackfillsAndRejects(t *testing.T) {
	fs := sidecarTestFS()
	// Backfill: a file ingested below the sidecar threshold.
	if err := fs.WriteFile("/small", numericLines(10, 0)); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Compact("/small")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := fs.Stat("/small")
	if !st.Rebuilt || st.CoveredBytes != size || st.SidecarBytes <= 0 {
		t.Fatalf("Compact backfill = %+v", st)
	}
	if _, ok := fs.SidecarStat("/small"); !ok {
		t.Fatal("Compact did not store the backfilled sidecar")
	}
	// A poisoned file keeps no sidecar and surfaces the decode error.
	if err := fs.WriteFile("/poisoned", []byte("1\nNaN\n2\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Compact("/poisoned"); !errors.Is(err, colscan.ErrBadRecord) {
		t.Fatalf("Compact over a NaN record: %v, want ErrBadRecord", err)
	}
	if _, ok := fs.SidecarStat("/poisoned"); ok {
		t.Fatal("Compact stored a sidecar for an unparseable file")
	}
	if _, err := fs.Compact("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Compact of a missing path: %v, want ErrNotFound", err)
	}
}

func TestSidecarFaultInjection(t *testing.T) {
	fs := sidecarTestFS()
	if fs.CorruptSidecarByte("/none", 0) {
		t.Fatal("CorruptSidecarByte invented a sidecar")
	}
	if fs.TruncateSidecar("/none", 0) {
		t.Fatal("TruncateSidecar invented a sidecar")
	}
	if err := fs.WriteFile("/data", numericLines(1000, 0)); err != nil {
		t.Fatal(err)
	}
	clean := readSidecar(t, fs, "/data")
	if !fs.CorruptSidecarByte("/data", 30) {
		t.Fatal("CorruptSidecarByte found no sidecar")
	}
	if bytes.Equal(clean, readSidecar(t, fs, "/data")) {
		t.Fatal("CorruptSidecarByte changed nothing")
	}
	// The pre-flip slice held by a concurrent reader is untouched
	// (copy-on-write), and Compact detects the damage and rebuilds.
	if _, err := colseg.Inspect(clean); err != nil {
		t.Fatalf("copy-on-write violated: the old slice was mutated: %v", err)
	}
	st, err := fs.Compact("/data")
	if err != nil || !st.Rebuilt {
		t.Fatalf("Compact over a corrupt sidecar = %+v, %v", st, err)
	}
	if !fs.TruncateSidecar("/data", 40) {
		t.Fatal("TruncateSidecar found no sidecar")
	}
	if size, _ := fs.SidecarStat("/data"); size != 40 {
		t.Fatalf("truncated sidecar is %d bytes, want 40", size)
	}
}
