package dfs

import (
	"strings"
	"testing"
)

// FuzzAppendSplits checks the two split invariants the incremental
// pipeline builds on, under arbitrary append sequences:
//
//  1. stability — the splits covering already-ingested data are
//     byte-for-byte identical after any number of Appends (a split
//     never straddles a segment boundary), so delta processing can
//     identify "new" splits as exactly the suffix;
//  2. single ownership — reading every split with LineReader yields
//     each record of the file exactly once, in file order.
func FuzzAppendSplits(f *testing.F) {
	f.Add(uint8(4), []byte("a\nbb\nccc\n\x03x\ny\n"))
	f.Add(uint8(1), []byte("\x05hello\x06world\n"))
	f.Add(uint8(16), []byte("no newline at all"))
	f.Fuzz(func(t *testing.T, sizeSel uint8, data []byte) {
		fs := New(Config{BlockSize: 1 << 20, Seed: 1})
		splitSize := int64(sizeSel%32) + 1
		const path = "/fuzz/app.log"

		var prev []Split
		var content []byte
		for len(data) > 0 {
			// One chunk per leading length byte; every chunk but the
			// final one is newline-terminated to satisfy the DFS's
			// record-aligned append contract.
			n := int(data[0]%32) + 1
			data = data[1:]
			if n > len(data) {
				n = len(data)
			}
			chunk := append([]byte(nil), data[:n]...)
			data = data[n:]
			if len(chunk) == 0 {
				continue
			}
			if len(data) > 0 && chunk[len(chunk)-1] != '\n' {
				chunk = append(chunk, '\n')
			}
			if err := fs.Append(path, chunk); err != nil {
				t.Fatalf("Append: %v", err)
			}
			content = append(content, chunk...)

			splits, err := fs.Splits(path, splitSize)
			if err != nil {
				t.Fatalf("Splits: %v", err)
			}
			// Invariant 1: previous splits are a byte-identical prefix.
			if len(splits) < len(prev) {
				t.Fatalf("splits shrank: %d -> %d", len(prev), len(splits))
			}
			for i, s := range prev {
				if splits[i] != s {
					t.Fatalf("split %d changed after append: %v -> %v", i, s, splits[i])
				}
			}
			// Splits must tile the file exactly.
			var covered int64
			for i, s := range splits {
				if s.Index != i || s.Offset != covered || s.Length < 0 {
					t.Fatalf("split %d does not tile: %v (covered %d)", i, s, covered)
				}
				covered += s.Length
			}
			if covered != int64(len(content)) {
				t.Fatalf("splits cover %d bytes, file has %d", covered, len(content))
			}
			prev = splits
		}
		if len(content) == 0 {
			return
		}

		// Invariant 2: each record has exactly one owning split.
		var wantLines []string
		for _, l := range strings.SplitAfter(string(content), "\n") {
			if l != "" {
				wantLines = append(wantLines, strings.TrimSuffix(l, "\n"))
			}
		}
		var gotLines []string
		for _, s := range prev {
			r, err := fs.NewLineReader(s, 7) // tiny chunk: exercise refills
			if err != nil {
				t.Fatalf("NewLineReader(%v): %v", s, err)
			}
			for r.Next() {
				gotLines = append(gotLines, r.Text())
			}
			if err := r.Err(); err != nil {
				t.Fatalf("LineReader(%v): %v", s, err)
			}
		}
		if len(gotLines) != len(wantLines) {
			t.Fatalf("read %d records across splits, file has %d\ngot:  %q\nwant: %q",
				len(gotLines), len(wantLines), gotLines, wantLines)
		}
		for i := range wantLines {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("record %d = %q, want %q", i, gotLines[i], wantLines[i])
			}
		}
		n, err := fs.CountLines(path)
		if err != nil || n != int64(len(wantLines)) {
			t.Fatalf("CountLines = %d, %v; want %d", n, err, len(wantLines))
		}
	})
}
