package dfs

import (
	"fmt"

	"repro/internal/journal"
)

// RecoverStats reports what Recover found and rebuilt.
type RecoverStats struct {
	Commits      int64 // fully committed records replayed
	Bytes        int64 // clean journal bytes retained
	TornTail     bool  // a torn final record was detected and truncated
	DroppedBytes int64 // journal bytes dropped past the truncation point
	Files        int   // files live after replay
	Sidecars     int   // columnar sidecars rebuilt by the replayed ingest
}

// Recover replays a journal image (JournalBytes of a previous
// filesystem — typically a crash image) onto a fresh filesystem built
// with cfg. Replay funnels every record through the same validate +
// commit path live mutations take, so the reconstructed namespace —
// file bytes, segments, write generations, sidecars — is deterministic:
// the same cfg.Seed and the same commit sequence reproduce the same
// state, bit for bit where it matters (a replay under a different live
// node set can place replicas differently, which no read can observe).
//
// A torn final record — the shape a crash during the last commit's
// write leaves — is truncated cleanly and reported in the stats: the
// recovered state is the last fully committed prefix, never a
// half-applied mutation. Interior journal corruption is refused with an
// error wrapping journal.ErrCorrupt.
func Recover(cfg Config, image []byte) (*FileSystem, RecoverStats, error) {
	recs, rst, err := journal.Replay(image)
	if err != nil {
		return nil, RecoverStats{}, fmt.Errorf("dfs: recover: %w", err)
	}
	st := RecoverStats{
		Commits:      rst.Records,
		Bytes:        rst.Bytes,
		TornTail:     rst.TornTail,
		DroppedBytes: rst.DroppedTail,
	}
	fs := New(cfg)
	for _, rec := range recs {
		switch rec.Op {
		case journal.OpWrite:
			err = fs.WriteFile(rec.Path, rec.Data)
		case journal.OpAppend:
			err = fs.Append(rec.Path, rec.Data)
		case journal.OpDelete:
			err = fs.Delete(rec.Path)
		default:
			err = fmt.Errorf("unknown op %v", rec.Op)
		}
		if err != nil {
			return nil, st, fmt.Errorf("dfs: recover: replay commit %d (%v %s): %w",
				rec.Seq, rec.Op, rec.Path, err)
		}
	}
	fs.mu.Lock()
	for _, ch := range fs.files {
		v := ch.versions[len(ch.versions)-1]
		if v.meta == nil {
			continue
		}
		st.Files++
		if len(v.meta.sidecar) > 0 {
			st.Sidecars++
		}
	}
	fs.recovered = &st
	fs.mu.Unlock()
	return fs, st, nil
}

// JournalBytes returns a copy of the commit journal image — what a
// durable deployment would have on disk, including any torn final
// record an injected crash left. Recover replays it.
func (fs *FileSystem) JournalBytes() []byte {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.jlog.Bytes()
}

// JournalStats is the point-in-time journal health snapshot earld
// surfaces in /metrics.
type JournalStats struct {
	Commits int64 `json:"commits"` // committed records in the journal
	Bytes   int64 `json:"bytes"`   // journal size in bytes
	Pins    int   `json:"pins"`    // active snapshot pins
	// Recovered is true when this filesystem was built by Recover;
	// Recovery then carries what the replay found.
	Recovered bool         `json:"recovered"`
	Recovery  RecoverStats `json:"recovery,omitzero"`
}

// JournalStats snapshots the journal counters.
func (fs *FileSystem) JournalStats() JournalStats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	st := JournalStats{
		Commits: fs.jlog.Records(),
		Bytes:   fs.jlog.Size(),
	}
	for _, n := range fs.pins {
		st.Pins += n
	}
	if fs.recovered != nil {
		st.Recovered = true
		st.Recovery = *fs.recovered
	}
	return st
}

// CommitSeq returns the sequence number of the last applied commit.
func (fs *FileSystem) CommitSeq() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.commitSeq
}
