package dfs

import (
	"bytes"
	"fmt"
	"io"
)

// Split is a logical input split: a byte range of a file handed to one
// map task. Splits usually coincide with blocks but, as in Hadoop, a
// block "can be further subdivided into input splits" (§3.3), so the
// split size is independent of the block size.
type Split struct {
	Path   string
	Index  int
	Offset int64
	Length int64
}

// End returns the first byte offset past the split.
func (s Split) End() int64 { return s.Offset + s.Length }

// String implements fmt.Stringer for log lines.
func (s Split) String() string {
	return fmt.Sprintf("%s[%d: %d+%d]", s.Path, s.Index, s.Offset, s.Length)
}

// Splits partitions the file at path into logical splits of at most
// splitSize bytes (the file's block size when splitSize <= 0). Each
// append segment is partitioned independently — a split never straddles
// a segment boundary — so the splits covering already-ingested data are
// byte-for-byte identical after any number of Appends, and the appended
// region is covered entirely by new splits.
func (fs *FileSystem) Splits(path string, splitSize int64) ([]Split, error) {
	return fs.splitsAt(path, -1, splitSize)
}

func (fs *FileSystem) splitsAt(path string, at, splitSize int64) ([]Split, error) {
	fs.mu.RLock()
	meta, ok := fs.metaLocked(path, at)
	if !ok {
		fs.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	size := meta.size
	segments := append([]int64(nil), meta.segments...)
	fs.mu.RUnlock()
	if splitSize <= 0 {
		splitSize = fs.cfg.BlockSize
	}
	if size == 0 {
		return []Split{{Path: path, Index: 0, Offset: 0, Length: 0}}, nil
	}
	var out []Split
	for si, segStart := range segments {
		segEnd := size
		if si+1 < len(segments) {
			segEnd = segments[si+1]
		}
		for off := segStart; off < segEnd; off += splitSize {
			l := splitSize
			if off+l > segEnd {
				l = segEnd - off
			}
			out = append(out, Split{Path: path, Index: len(out), Offset: off, Length: l})
		}
	}
	return out, nil
}

// LineReader iterates the records of one split with Hadoop's
// LineRecordReader semantics:
//
//   - if the split starts at offset > 0, the (possibly partial) line in
//     progress at the start position is skipped — it belongs to the
//     previous split;
//   - lines that *begin* inside the split are fully consumed even when
//     they end beyond the split boundary.
//
// Together these rules give every line exactly one owner, which is what
// makes per-split sampling uniform over records. The reader pulls data
// through FileSystem.ReadAt in buffered chunks; the initial positioning
// costs one seek (charged by ReadAt) and subsequent reads are sequential.
type LineReader struct {
	fs      *FileSystem
	at      int64 // commit sequence the reader is pinned to (-1: live)
	split   Split
	fileLen int64
	pos     int64 // next byte offset to fetch from the file
	bufOff  int64 // file offset of window[0]
	window  []byte
	started bool
	err     error
	line    []byte
	lineOff int64 // file offset where the current line starts
	chunk   int
}

// NewLineReader opens a reader over split. chunkSize controls the I/O
// granularity (64 KiB when <= 0).
func (fs *FileSystem) NewLineReader(split Split, chunkSize int) (*LineReader, error) {
	return fs.newLineReaderAt(split, -1, chunkSize)
}

func (fs *FileSystem) newLineReaderAt(split Split, at int64, chunkSize int) (*LineReader, error) {
	size, err := fs.statAt(split.Path, at)
	if err != nil {
		return nil, err
	}
	if split.Offset < 0 || split.Length < 0 || split.Offset > size {
		return nil, fmt.Errorf("dfs: split %v out of file bounds (size %d)", split, size)
	}
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	return &LineReader{
		fs:      fs,
		at:      at,
		split:   split,
		fileLen: size,
		pos:     split.Offset,
		chunk:   chunkSize,
	}, nil
}

// fill appends the next chunk of the file to the window.
func (r *LineReader) fill() error {
	if r.pos >= r.fileLen {
		return io.EOF
	}
	want := int64(r.chunk)
	if r.pos+want > r.fileLen {
		want = r.fileLen - r.pos
	}
	buf := make([]byte, want)
	n, err := r.fs.readAt(r.split.Path, r.at, r.pos, buf, 1)
	if err != nil {
		return err
	}
	if n == 0 {
		return io.EOF
	}
	if len(r.window) == 0 {
		r.bufOff = r.pos
	}
	r.window = append(r.window, buf[:n]...)
	r.pos += int64(n)
	return nil
}

// Next advances to the next record. It returns false at the end of the
// split or on error; check Err afterwards.
func (r *LineReader) Next() bool {
	if r.err != nil {
		return false
	}
	if !r.started {
		r.started = true
		if r.split.Offset > 0 {
			// Skip the partial line owned by the previous split: discard
			// bytes through the first newline at or after Offset-1. We
			// back up one byte so that a split starting exactly at a line
			// start still skips correctly only when the previous byte is
			// not a newline (Hadoop reads from Offset and always skips
			// the first "line", having started the scan at Offset; the
			// equivalent single-owner rule is: the first record of this
			// split is the one starting after the first newline found at
			// position >= Offset-1).
			r.pos = r.split.Offset - 1
			r.window = nil
			if err := r.skipToNewline(); err != nil {
				if err != io.EOF {
					r.err = err
				}
				return false
			}
		}
	}
	// The current record must *start* strictly before split end.
	start := r.bufOff
	if start >= r.split.End() || start >= r.fileLen {
		return false
	}
	// Scan for the newline terminating this record, filling as needed.
	for {
		if i := bytes.IndexByte(r.window, '\n'); i >= 0 {
			r.line = r.window[:i]
			r.lineOff = r.bufOff
			r.window = r.window[i+1:]
			r.bufOff += int64(i + 1)
			return true
		}
		if err := r.fill(); err != nil {
			if err == io.EOF {
				// Final, newline-less record at EOF.
				if len(r.window) > 0 {
					r.line = r.window
					r.lineOff = r.bufOff
					r.bufOff += int64(len(r.window))
					r.window = nil
					return true
				}
				return false
			}
			r.err = err
			return false
		}
	}
}

// skipToNewline discards bytes until just past the next '\n'.
func (r *LineReader) skipToNewline() error {
	for {
		if len(r.window) == 0 {
			if err := r.fill(); err != nil {
				return err
			}
		}
		if i := bytes.IndexByte(r.window, '\n'); i >= 0 {
			r.window = r.window[i+1:]
			r.bufOff = r.bufOff + int64(i+1)
			return nil
		}
		r.bufOff += int64(len(r.window))
		r.window = nil
	}
}

// Text returns the current record without its trailing newline.
func (r *LineReader) Text() string { return string(r.line) }

// Bytes returns the current record's bytes; valid until the next call to
// Next.
func (r *LineReader) Bytes() []byte { return r.line }

// RecordOffset returns the file offset at which the current record starts.
// The pre-map sampler's bit-vector of already-sampled line starts is keyed
// on this.
func (r *LineReader) RecordOffset() int64 { return r.lineOff }

// Err returns the first error encountered (nil on clean end-of-split).
func (r *LineReader) Err() error { return r.err }

// ReadLineAt returns the full line containing file offset pos, applying
// the paper's backtracking rule (Algorithm 2): if pos is not the start of
// a line, back up to the previous newline. It returns the line, the
// offset at which it starts, and charges the underlying seek. Used by the
// pre-map sampler to turn a random byte offset into a whole record.
func (fs *FileSystem) ReadLineAt(path string, pos int64, chunkSize int) (line string, lineStart int64, err error) {
	return fs.readLineAt(path, -1, pos, chunkSize)
}

func (fs *FileSystem) readLineAt(path string, at, pos int64, chunkSize int) (line string, lineStart int64, err error) {
	size, err := fs.statAt(path, at)
	if err != nil {
		return "", 0, err
	}
	if size == 0 {
		return "", 0, io.EOF
	}
	if pos < 0 {
		pos = 0
	}
	if pos >= size {
		pos = size - 1
	}
	if chunkSize <= 0 {
		chunkSize = 256
	}
	// Read one window around pos, growing it geometrically until it
	// contains both the preceding newline (or file start) and the
	// terminating newline (or EOF). Short records resolve in a single
	// positioned read — one seek, a few hundred bytes — which is what
	// makes pre-map sampling a sub-scan operation.
	back, fwd := int64(chunkSize), int64(chunkSize)
	for {
		lo := pos - back
		if lo < 0 {
			lo = 0
		}
		hi := pos + fwd
		if hi > size {
			hi = size
		}
		buf := make([]byte, hi-lo)
		if _, err := fs.readAt(path, at, lo, buf, 1); err != nil {
			return "", 0, err
		}
		// The record containing pos starts after the last '\n' strictly
		// before pos (a '\n' at pos belongs to the record it terminates).
		rel := pos - lo
		start := int64(0)
		if i := bytes.LastIndexByte(buf[:rel], '\n'); i >= 0 {
			start = int64(i) + 1
		} else if lo > 0 {
			back *= 4
			continue
		}
		end := int64(len(buf))
		terminated := false
		if i := bytes.IndexByte(buf[rel:], '\n'); i >= 0 {
			end = rel + int64(i)
			terminated = true
		}
		if !terminated && hi < size {
			fwd *= 4
			continue
		}
		return string(buf[start:end]), lo + start, nil
	}
}

// CountLines returns the number of records in the file (used by tests and
// by exact baselines that need the true N).
func (fs *FileSystem) CountLines(path string) (int64, error) {
	return fs.countLinesAt(path, -1)
}

func (fs *FileSystem) countLinesAt(path string, at int64) (int64, error) {
	data, err := fs.readFileAt(path, at)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, nil
	}
	var n int64
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	if data[len(data)-1] != '\n' {
		n++
	}
	return n, nil
}
