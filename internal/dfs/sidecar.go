package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"repro/internal/colscan"
	"repro/internal/colseg"
)

// Sidecar policy: the filesystem builds a persistent columnar segment
// sidecar (internal/colseg) for every ingested file whose records the
// columnar validators accept, so cold reads skip the text decode. A
// sidecar is derived state — never the source of truth — which sets the
// gating rules:
//
//   - files under the engine's internal namespace (error files, scratch)
//     and files below sidecarMinBytes are skipped: churn-heavy or too
//     small to ever repay the encode;
//   - appends extend the sidecar only for batches of at least
//     sidecarAppendMinBytes; smaller batches leave coverage behind
//     (reads of the uncovered tail fall back to text decode) until an
//     explicit Compact re-encodes to full coverage;
//   - a file with any record the colscan validators reject gets no
//     sidecar at all, keeping the text decoder the single authority on
//     decode errors (a NaN-poisoned file must fail a run the same way
//     whether or not a sidecar scheme exists).
const (
	sidecarMinBytes       = 4 << 10
	sidecarAppendMinBytes = 64 << 10
	sidecarSkipPrefix     = "/earl/"
)

// sniffFormat guesses a file's record shape from its first line; the
// full Build pass then validates every record against the guess.
func sniffFormat(data []byte) colscan.Format {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	if bytes.IndexByte(line, '\t') >= 0 {
		return colscan.FormatKV
	}
	return colscan.FormatNumeric
}

// buildSidecarLocked replaces path's sidecar after a WriteFile (or a
// file-creating Append). Any pre-existing sidecar is dropped first so a
// rewrite can never leave a stale encoding behind, whatever the gates
// decide about the new contents. Encode failures are silent: the file
// simply stays text-only.
func (fs *FileSystem) buildSidecarLocked(path string, meta *fileMeta, data []byte) {
	delete(fs.sidecars, path)
	if fs.cfg.DisableSidecars || int64(len(data)) < sidecarMinBytes ||
		strings.HasPrefix(path, sidecarSkipPrefix) {
		return
	}
	sc, err := colseg.Build(sniffFormat(data), meta.version, data, meta.segments, fs.cfg.BlockSize)
	if err != nil {
		return
	}
	fs.sidecars[path] = sc
	if fs.metrics != nil {
		fs.metrics.BytesWritten.Add(int64(len(sc)))
	}
}

// extendSidecarLocked grows path's sidecar with one appended segment.
// Extension requires an existing sidecar whose coverage reaches exactly
// the append point; anything else (small initial write, earlier
// sub-threshold appends) is left for Compact. Only the footer and the
// new segment's chunks are written — pre-append chunks stay byte-stable.
func (fs *FileSystem) extendSidecarLocked(path string, meta *fileMeta, segData []byte, segStart int64) {
	if fs.cfg.DisableSidecars || int64(len(segData)) < sidecarAppendMinBytes {
		return
	}
	sc, ok := fs.sidecars[path]
	if !ok {
		return
	}
	ext, err := colseg.Extend(sc, meta.version, segData, segStart, fs.cfg.BlockSize)
	if err != nil {
		return
	}
	fs.sidecars[path] = ext
	if fs.metrics != nil {
		fs.metrics.BytesWritten.Add(int64(len(ext) - len(sc)))
	}
}

// SidecarStat reports the size of path's columnar sidecar, false when
// the path has none. It implements half of colseg.Store.
func (fs *FileSystem) SidecarStat(path string) (int64, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	sc, ok := fs.sidecars[path]
	return int64(len(sc)), ok
}

// ReadSidecarAt fills p from path's sidecar starting at off, charging
// one disk seek and the bytes read like any positioned read. n < len(p)
// with a nil error means the sidecar ended. It implements the other
// half of colseg.Store.
func (fs *FileSystem) ReadSidecarAt(path string, off int64, p []byte) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	sc, ok := fs.sidecars[path]
	if !ok {
		return 0, fmt.Errorf("%w: sidecar for %s", ErrNotFound, path)
	}
	if off < 0 {
		return 0, errors.New("dfs: negative offset")
	}
	if off >= int64(len(sc)) {
		return 0, nil
	}
	n := copy(p, sc[off:])
	if fs.metrics != nil {
		fs.metrics.DiskSeeks.Add(1)
		fs.metrics.BytesRead.Add(int64(n))
	}
	return n, nil
}

// CompactStats reports what Compact found and did.
type CompactStats struct {
	Path         string
	Rebuilt      bool  // false: existing sidecar already had full coverage
	Chunks       int   // chunks in the (resulting) sidecar
	SidecarBytes int64 // sidecar size
	CoveredBytes int64 // data bytes the sidecar covers
}

// Compact rebuilds path's columnar sidecar to full coverage: it
// backfills files ingested without one (pre-sidecar files, small
// writes, DisableSidecars ingest) and re-encodes the uncovered tail
// left behind by sub-threshold appends. The data file itself is not
// touched — splits, versions and cached blocks all stay valid. Reading
// the file back for the rebuild is charged as one sequential scan.
//
// A file whose records the columnar validators reject returns the
// validation error (wrapping colscan.ErrBadRecord) and keeps no
// sidecar; an empty file is a no-op.
func (fs *FileSystem) Compact(path string) (CompactStats, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[path]
	if !ok {
		return CompactStats{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	st := CompactStats{Path: path}
	if meta.size == 0 {
		return st, nil
	}
	if sc, ok := fs.sidecars[path]; ok {
		if info, err := colseg.Inspect(sc); err == nil &&
			info.Version == meta.version && info.Cover == meta.size {
			st.Chunks = info.Chunks
			st.SidecarBytes = int64(len(sc))
			st.CoveredBytes = info.Cover
			return st, nil
		}
	}
	data := make([]byte, 0, meta.size)
	for _, blk := range meta.blocks {
		payload, err := fs.replicaPayloadLocked(blk)
		if err != nil {
			return st, err
		}
		data = append(data, payload...)
	}
	if fs.metrics != nil {
		fs.metrics.DiskSeeks.Add(1)
		fs.metrics.BytesRead.Add(int64(len(data)))
	}
	sc, err := colseg.Build(sniffFormat(data), meta.version, data, meta.segments, fs.cfg.BlockSize)
	if err != nil {
		return st, fmt.Errorf("dfs: compact %s: %w", path, err)
	}
	fs.sidecars[path] = sc
	if fs.metrics != nil {
		fs.metrics.BytesWritten.Add(int64(len(sc)))
	}
	info, err := colseg.Inspect(sc)
	if err != nil {
		return st, err
	}
	st.Rebuilt = true
	st.Chunks = info.Chunks
	st.SidecarBytes = int64(len(sc))
	st.CoveredBytes = info.Cover
	return st, nil
}

// CorruptSidecarByte flips one byte of path's sidecar and reports
// whether a sidecar existed — fault injection for the corrupted-sidecar
// fallback path, next to KillDataNode in spirit: verification must
// catch the damage and reads must fall back to text decode.
func (fs *FileSystem) CorruptSidecarByte(path string, off int64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sc, ok := fs.sidecars[path]
	if !ok || off < 0 || off >= int64(len(sc)) {
		return false
	}
	// Copy-on-write: concurrent readers may hold the old slice.
	dup := append([]byte(nil), sc...)
	dup[off] ^= 0xFF
	fs.sidecars[path] = dup
	return true
}

// TruncateSidecar cuts path's sidecar to n bytes (fault injection for
// the truncated-footer fallback path). Reports whether a sidecar
// existed and was at least n bytes long.
func (fs *FileSystem) TruncateSidecar(path string, n int64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sc, ok := fs.sidecars[path]
	if !ok || n < 0 || n > int64(len(sc)) {
		return false
	}
	fs.sidecars[path] = sc[:n:n]
	return true
}
