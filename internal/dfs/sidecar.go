package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"repro/internal/colscan"
	"repro/internal/colseg"
)

// Sidecar policy: the filesystem builds a persistent columnar segment
// sidecar (internal/colseg) for every ingested file whose records the
// columnar validators accept, so cold reads skip the text decode. A
// sidecar is derived state — never the source of truth — which sets the
// gating rules:
//
//   - files under the engine's internal namespace (error files, scratch)
//     and files below sidecarMinBytes are skipped: churn-heavy or too
//     small to ever repay the encode;
//   - appends extend the sidecar only for batches of at least
//     sidecarAppendMinBytes; smaller batches leave coverage behind
//     (reads of the uncovered tail fall back to text decode) until an
//     explicit Compact re-encodes to full coverage;
//   - a file with any record the colscan validators reject gets no
//     sidecar at all, keeping the text decoder the single authority on
//     decode errors (a NaN-poisoned file must fail a run the same way
//     whether or not a sidecar scheme exists).
//
// Because a sidecar is derived, it is NOT journaled: Recover rebuilds
// sidecars as a side effect of replaying the ingest commits, at exactly
// the ingest-policy coverage. (Coverage added later by Compact is the
// one thing a crash loses — a speed cost repaid by re-running Compact.)
// The sidecar field is likewise exempt from the commit-path-only
// mutation rule: Compact and the corruption fault hooks may swap it in
// place, under the write lock, without a commit.
const (
	sidecarMinBytes       = 4 << 10
	sidecarAppendMinBytes = 64 << 10
	sidecarSkipPrefix     = "/earl/"
)

// sniffFormat guesses a file's record shape from its first line; the
// full Build pass then validates every record against the guess.
func sniffFormat(data []byte) colscan.Format {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	if bytes.IndexByte(line, '\t') >= 0 {
		return colscan.FormatKV
	}
	return colscan.FormatNumeric
}

// buildSidecar encodes a fresh file state's sidecar, or returns nil
// when the gates say no. Encode failures are silent: the file simply
// stays text-only.
func (fs *FileSystem) buildSidecar(path string, meta *fileMeta, data []byte) []byte {
	if fs.cfg.DisableSidecars || int64(len(data)) < sidecarMinBytes ||
		strings.HasPrefix(path, sidecarSkipPrefix) {
		return nil
	}
	sc, err := colseg.Build(sniffFormat(data), meta.version, data, meta.segments, fs.cfg.BlockSize)
	if err != nil {
		return nil
	}
	if fs.metrics != nil {
		fs.metrics.BytesWritten.Add(int64(len(sc)))
	}
	return sc
}

// extendSidecar grows a predecessor state's sidecar with one appended
// segment, returning the bytes for the successor state. Extension
// requires an existing sidecar whose coverage reaches exactly the
// append point; anything else (small initial write, earlier
// sub-threshold appends) keeps the old bytes and leaves full coverage
// for Compact. Only the footer and the new segment's chunks are
// written — pre-append chunks stay byte-stable, so pinned snapshots
// sharing the predecessor's bytes are unaffected.
func (fs *FileSystem) extendSidecar(prev []byte, meta *fileMeta, segData []byte, segStart int64) []byte {
	if fs.cfg.DisableSidecars || int64(len(segData)) < sidecarAppendMinBytes || prev == nil {
		return prev
	}
	ext, err := colseg.Extend(prev, meta.version, segData, segStart, fs.cfg.BlockSize)
	if err != nil {
		return prev
	}
	if fs.metrics != nil {
		fs.metrics.BytesWritten.Add(int64(len(ext) - len(prev)))
	}
	return ext
}

// SidecarStat reports the size of path's columnar sidecar, false when
// the path has none. It implements half of colseg.Store.
func (fs *FileSystem) SidecarStat(path string) (int64, bool) {
	return fs.sidecarStatAt(path, -1)
}

func (fs *FileSystem) sidecarStatAt(path string, at int64) (int64, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.metaLocked(path, at)
	if !ok || meta.sidecar == nil {
		return 0, false
	}
	return int64(len(meta.sidecar)), true
}

// ReadSidecarAt fills p from path's sidecar starting at off, charging
// one disk seek and the bytes read like any positioned read. n < len(p)
// with a nil error means the sidecar ended. It implements the other
// half of colseg.Store.
func (fs *FileSystem) ReadSidecarAt(path string, off int64, p []byte) (int, error) {
	return fs.readSidecarAt(path, -1, off, p)
}

func (fs *FileSystem) readSidecarAt(path string, at, off int64, p []byte) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.metaLocked(path, at)
	if !ok || meta.sidecar == nil {
		return 0, fmt.Errorf("%w: sidecar for %s", ErrNotFound, path)
	}
	sc := meta.sidecar
	if off < 0 {
		return 0, errors.New("dfs: negative offset")
	}
	if off >= int64(len(sc)) {
		return 0, nil
	}
	n := copy(p, sc[off:])
	if fs.metrics != nil {
		fs.metrics.DiskSeeks.Add(1)
		fs.metrics.BytesRead.Add(int64(n))
	}
	return n, nil
}

// CompactStats reports what Compact found and did.
type CompactStats struct {
	Path         string
	Rebuilt      bool  // false: existing sidecar already had full coverage
	Chunks       int   // chunks in the (resulting) sidecar
	SidecarBytes int64 // sidecar size
	CoveredBytes int64 // data bytes the sidecar covers
}

// Compact rebuilds path's columnar sidecar to full coverage: it
// backfills files ingested without one (pre-sidecar files, small
// writes, DisableSidecars ingest) and re-encodes the uncovered tail
// left behind by sub-threshold appends. The data file itself is not
// touched — splits, versions and cached blocks all stay valid, and no
// commit is journaled (the sidecar is derived state; see the package
// policy above). Reading the file back for the rebuild is charged as
// one sequential scan.
//
// A file whose records the columnar validators reject returns the
// validation error (wrapping colscan.ErrBadRecord) and keeps no
// sidecar; an empty file is a no-op.
func (fs *FileSystem) Compact(path string) (CompactStats, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.metaLocked(path, -1)
	if !ok {
		return CompactStats{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	st := CompactStats{Path: path}
	if meta.size == 0 {
		return st, nil
	}
	if sc := meta.sidecar; sc != nil {
		if info, err := colseg.Inspect(sc); err == nil &&
			info.Version == meta.version && info.Cover == meta.size {
			st.Chunks = info.Chunks
			st.SidecarBytes = int64(len(sc))
			st.CoveredBytes = info.Cover
			return st, nil
		}
	}
	data := make([]byte, 0, meta.size)
	for _, blk := range meta.blocks {
		payload, err := fs.replicaPayloadLocked(blk)
		if err != nil {
			return st, err
		}
		data = append(data, payload...)
	}
	if fs.metrics != nil {
		fs.metrics.DiskSeeks.Add(1)
		fs.metrics.BytesRead.Add(int64(len(data)))
	}
	sc, err := colseg.Build(sniffFormat(data), meta.version, data, meta.segments, fs.cfg.BlockSize)
	if err != nil {
		return st, fmt.Errorf("dfs: compact %s: %w", path, err)
	}
	meta.sidecar = sc
	if fs.metrics != nil {
		fs.metrics.BytesWritten.Add(int64(len(sc)))
	}
	info, err := colseg.Inspect(sc)
	if err != nil {
		return st, err
	}
	st.Rebuilt = true
	st.Chunks = info.Chunks
	st.SidecarBytes = int64(len(sc))
	st.CoveredBytes = info.Cover
	return st, nil
}

// CorruptSidecarByte flips one byte of path's live sidecar and reports
// whether a sidecar existed — fault injection for the corrupted-sidecar
// fallback path, next to KillDataNode in spirit: verification must
// catch the damage and reads must fall back to text decode.
func (fs *FileSystem) CorruptSidecarByte(path string, off int64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.metaLocked(path, -1)
	if !ok || meta.sidecar == nil || off < 0 || off >= int64(len(meta.sidecar)) {
		return false
	}
	// Copy-on-write: concurrent readers may hold the old slice.
	dup := append([]byte(nil), meta.sidecar...)
	dup[off] ^= 0xFF
	meta.sidecar = dup
	return true
}

// TruncateSidecar cuts path's live sidecar to n bytes (fault injection
// for the truncated-footer fallback path). Reports whether a sidecar
// existed and was at least n bytes long.
func (fs *FileSystem) TruncateSidecar(path string, n int64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.metaLocked(path, -1)
	if !ok || meta.sidecar == nil || n < 0 || n > int64(len(meta.sidecar)) {
		return false
	}
	meta.sidecar = meta.sidecar[:n:n]
	return true
}
