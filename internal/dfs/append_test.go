package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// lineDoc builds a document of n fixed-width numbered lines.
func lineDoc(prefix string, n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "%s%06d\n", prefix, i)
	}
	return buf.Bytes()
}

func TestAppendRoundTrip(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 4, Replication: 2, Seed: 1})
	base := lineDoc("a", 20)
	delta := lineDoc("b", 15)
	if err := fs.WriteFile("/f", base); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/f", delta); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), base...), delta...)
	if !bytes.Equal(got, want) {
		t.Fatalf("append round trip: got %d bytes, want %d", len(got), len(want))
	}
	if size, _ := fs.Stat("/f"); size != int64(len(want)) {
		t.Fatalf("size %d after append, want %d", size, len(want))
	}
}

func TestAppendCreatesMissingFile(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 3, Seed: 2})
	data := lineDoc("x", 5)
	if err := fs.Append("/new", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/new")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("append-created file does not round trip")
	}
	segs, err := fs.Segments("/new")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 0 {
		t.Fatalf("segments = %v, want [0]", segs)
	}
}

func TestAppendRejectsUnalignedTail(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 3, Seed: 3})
	if err := fs.WriteFile("/f", []byte("no trailing newline")); err != nil {
		t.Fatal(err)
	}
	err := fs.Append("/f", []byte("more\n"))
	if !errors.Is(err, ErrUnalignedAppend) {
		t.Fatalf("unaligned append: got %v, want ErrUnalignedAppend", err)
	}
}

func TestAppendKeepsExistingSplitsStable(t *testing.T) {
	// Split size chosen so the base file's last split is short: without
	// segment-aware splitting, appending would lengthen it and shift
	// record ownership.
	fs := New(Config{BlockSize: 128, DataNodes: 4, Replication: 2, Seed: 4})
	base := lineDoc("a", 30) // 8 bytes per line, 240 bytes: splits of 128 → [0,128) [128,240)
	if err := fs.WriteFile("/f", base); err != nil {
		t.Fatal(err)
	}
	before, err := fs.Splits("/f", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/f", lineDoc("b", 30)); err != nil {
		t.Fatal(err)
	}
	after, err := fs.Splits("/f", 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("append added no splits: %d -> %d", len(before), len(after))
	}
	for i, sp := range before {
		if after[i].Offset != sp.Offset || after[i].Length != sp.Length {
			t.Fatalf("existing split %d changed: %v -> %v", i, sp, after[i])
		}
	}
	// New splits cover exactly the appended region.
	segs, err := fs.Segments("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[1] != int64(len(base)) {
		t.Fatalf("segments = %v, want [0 %d]", segs, len(base))
	}
	var newBytes int64
	for _, sp := range after[len(before):] {
		if sp.Offset < int64(len(base)) {
			t.Fatalf("new split %v overlaps the old region", sp)
		}
		newBytes += sp.Length
	}
	if newBytes != 240 {
		t.Fatalf("new splits cover %d bytes, want 240", newBytes)
	}
}

func TestAppendRecordOwnershipStable(t *testing.T) {
	// Records read per split from the base file must be identical after
	// an append — the invariant maintained queries rely on.
	fs := New(Config{BlockSize: 100, DataNodes: 4, Replication: 2, Seed: 5})
	base := lineDoc("rec", 40)
	if err := fs.WriteFile("/f", base); err != nil {
		t.Fatal(err)
	}
	readAll := func(splits []Split) map[int][]string {
		out := map[int][]string{}
		for _, sp := range splits {
			rd, err := fs.NewLineReader(sp, 0)
			if err != nil {
				t.Fatal(err)
			}
			for rd.Next() {
				out[sp.Index] = append(out[sp.Index], rd.Text())
			}
			if rd.Err() != nil {
				t.Fatal(rd.Err())
			}
		}
		return out
	}
	before, err := fs.Splits("/f", 100)
	if err != nil {
		t.Fatal(err)
	}
	baseRecords := readAll(before)
	if err := fs.Append("/f", lineDoc("new", 40)); err != nil {
		t.Fatal(err)
	}
	after, err := fs.Splits("/f", 100)
	if err != nil {
		t.Fatal(err)
	}
	afterRecords := readAll(after[:len(before)])
	for idx, recs := range baseRecords {
		got := afterRecords[idx]
		if len(got) != len(recs) {
			t.Fatalf("split %d: %d records before, %d after", idx, len(recs), len(got))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("split %d record %d changed: %q -> %q", idx, i, recs[i], got[i])
			}
		}
	}
	// Every record appears exactly once across all splits.
	seen := map[string]int{}
	for _, recs := range readAll(after) {
		for _, r := range recs {
			seen[r]++
		}
	}
	if len(seen) != 80 {
		t.Fatalf("%d distinct records, want 80", len(seen))
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("record %q owned by %d splits", r, n)
		}
	}
}

func TestAppendReplicatesNewBlocks(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 5, Replication: 3, Seed: 6})
	if err := fs.WriteFile("/f", lineDoc("a", 10)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/f", lineDoc("b", 20)); err != nil {
		t.Fatal(err)
	}
	// Appended data must survive two node failures (3 replicas).
	if err := fs.KillDataNode(0); err != nil {
		t.Fatal(err)
	}
	if err := fs.KillDataNode(1); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), lineDoc("a", 10)...), lineDoc("b", 20)...)
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("appended blocks not fully replicated")
	}
}

func TestAppendEmptyDataIsNoop(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 3, Seed: 7})
	if err := fs.WriteFile("/f", lineDoc("a", 3)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/f", nil); err != nil {
		t.Fatal(err)
	}
	segs, _ := fs.Segments("/f")
	if len(segs) != 1 {
		t.Fatalf("empty append created a segment: %v", segs)
	}
}

func TestSegmentsMissingFile(t *testing.T) {
	fs := New(Config{DataNodes: 3})
	if _, err := fs.Segments("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}
