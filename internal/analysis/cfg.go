package analysis

import (
	"go/ast"
	"go/types"
)

// A tiny intra-function control-flow graph over statements, built for
// poolleak's "release on every return path" check. It models the
// structured control flow Go functions actually use (if/for/range/
// switch/select, break/continue, return, panic and friends); the rare
// constructs it approximates are handled conservatively in the
// direction that avoids false positives: goto and labeled branches end
// path exploration without reporting, so code using them is under- not
// over-checked.
//
// This is the stdlib-only stand-in for golang.org/x/tools/go/cfg, which
// the offline build cannot vendor.

type cfgNode struct {
	stmt  ast.Stmt
	succs []*cfgNode
	// terminal marks nodes that end execution without reaching the
	// function's return path (panic, os.Exit, t.Fatal, goto): paths
	// through them are not reported as leaks.
	terminal bool
}

// funcCFG is the graph for one function body. exit is the single
// virtual node every return (and the body's fall-off end) reaches.
type funcCFG struct {
	nodes []*cfgNode
	exit  *cfgNode
}

type cfgBuilder struct {
	g    *funcCFG
	info *types.Info
	// break/continue targets, innermost last.
	breaks    []*cfgNode
	continues []*cfgNode
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	g := &funcCFG{exit: &cfgNode{}}
	b := &cfgBuilder{g: g, info: info}
	outs := b.stmts(body.List, []*cfgNode{})
	// Fall-off end of the body reaches exit.
	link(outs, g.exit)
	return g
}

func link(from []*cfgNode, to *cfgNode) {
	for _, f := range from {
		f.succs = append(f.succs, to)
	}
}

func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// stmts threads the statement list: cur is the set of dangling
// predecessor nodes; the returned set is the dangling outs after the
// list.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur []*cfgNode) []*cfgNode {
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur []*cfgNode) []*cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.ReturnStmt:
		n := b.node(s)
		link(cur, n)
		n.succs = append(n.succs, b.g.exit)
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cond := b.node(s)
		link(cur, cond)
		thenOuts := b.stmts(s.Body.List, []*cfgNode{cond})
		var elseOuts []*cfgNode
		if s.Else != nil {
			elseOuts = b.stmt(s.Else, []*cfgNode{cond})
		} else {
			elseOuts = []*cfgNode{cond}
		}
		return append(thenOuts, elseOuts...)

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.node(s)
		link(cur, head)
		b.breaks = append(b.breaks, &cfgNode{})
		b.continues = append(b.continues, head)
		bodyOuts := b.stmts(s.Body.List, []*cfgNode{head})
		if s.Post != nil {
			bodyOuts = b.stmt(s.Post, bodyOuts)
		}
		link(bodyOuts, head)
		brk := b.breaks[len(b.breaks)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		outs := []*cfgNode{brk}
		if s.Cond != nil {
			outs = append(outs, head) // cond may be false on entry
		}
		// `for {}` without cond only exits via break.
		return outs

	case *ast.RangeStmt:
		head := b.node(s)
		link(cur, head)
		b.breaks = append(b.breaks, &cfgNode{})
		b.continues = append(b.continues, head)
		bodyOuts := b.stmts(s.Body.List, []*cfgNode{head})
		link(bodyOuts, head)
		brk := b.breaks[len(b.breaks)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		return []*cfgNode{brk, head}

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		head := b.node(s)
		link(cur, head)
		var body *ast.BlockStmt
		hasDefault := false
		switch s := s.(type) {
		case *ast.SwitchStmt:
			if s.Init != nil {
				// Init already runs before head in program order; model
				// it as part of the head node (it cannot branch).
			}
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		b.breaks = append(b.breaks, &cfgNode{})
		var outs []*cfgNode
		for _, cl := range body.List {
			var stmts []ast.Stmt
			switch cl := cl.(type) {
			case *ast.CaseClause:
				stmts = cl.Body
				if cl.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				stmts = cl.Body
				if cl.Comm == nil {
					hasDefault = true
				}
			}
			outs = append(outs, b.stmts(stmts, []*cfgNode{head})...)
		}
		brk := b.breaks[len(b.breaks)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		outs = append(outs, brk)
		if !hasDefault {
			outs = append(outs, head) // no case taken
		}
		return outs

	case *ast.BranchStmt:
		n := b.node(s)
		link(cur, n)
		switch {
		case s.Tok.String() == "break" && s.Label == nil && len(b.breaks) > 0:
			n.succs = append(n.succs, b.breaks[len(b.breaks)-1])
		case s.Tok.String() == "continue" && s.Label == nil && len(b.continues) > 0:
			n.succs = append(n.succs, b.continues[len(b.continues)-1])
		default:
			// goto / labeled branch: end exploration conservatively.
			n.terminal = true
		}
		return nil

	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, cur)

	case *ast.ExprStmt:
		n := b.node(s)
		link(cur, n)
		if isTerminalCall(b.info, s.X) {
			n.terminal = true
			return nil
		}
		return []*cfgNode{n}

	default:
		// Assignments, declarations, defer, go, send, inc/dec, empty:
		// straight-line nodes.
		n := b.node(s)
		link(cur, n)
		return []*cfgNode{n}
	}
}

// isTerminalCall reports whether expr is a call that never returns:
// panic, os.Exit, runtime.Goexit, log.Fatal*, or a testing Fatal/Skip
// method.
func isTerminalCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln" ||
			fn.Name() == "Panic" || fn.Name() == "Panicf" || fn.Name() == "Panicln"
	case "testing":
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
