package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analyzed package unit: either a package's library
// files, the library+test-file variant, or an external _test package.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	Info      *types.Info
	IsTest    bool
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath    string
	Name          string
	Dir           string
	Standard      bool
	DepOnly       bool
	GoFiles       []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Imports       []string
	TestImports   []string
	XTestImports  []string
	InvalidReason string `json:"Error,omitempty"` // unused; presence tolerated
}

// Loader loads and type-checks the module's packages without any
// dependency beyond the go command and the standard library: module
// packages are parsed and checked from source in dependency order, and
// standard-library imports are delegated to go/importer's source
// importer (which works offline).
type Loader struct {
	Dir  string // module root (where go list runs); "" = current dir
	Fset *token.FileSet

	std     types.Importer
	listed  map[string]*listPkg
	base    map[string]*Package // import path -> library unit
	loading map[string]bool
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Dir:     dir,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		listed:  map[string]*listPkg{},
		base:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Load lists patterns (e.g. "./..."), type-checks every matched module
// package and returns the units to analyze in deterministic order. With
// tests set, each package with test files additionally yields its
// test-augmented variant and any external _test package.
func (l *Loader) Load(patterns []string, tests bool) ([]*Package, error) {
	roots, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range roots {
		lp := l.listed[path]
		if len(lp.GoFiles) > 0 {
			pkg, err := l.pkg(path)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
		if !tests {
			continue
		}
		if len(lp.TestGoFiles) > 0 {
			tp, err := l.check(path, lp.Name, lp.Dir,
				append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...), nil)
			if err != nil {
				return nil, err
			}
			tp.IsTest = true
			out = append(out, tp)
		}
		if len(lp.XTestGoFiles) > 0 {
			xp, err := l.check(path+"_test", lp.Name+"_test", lp.Dir, lp.XTestGoFiles, nil)
			if err != nil {
				return nil, err
			}
			xp.IsTest = true
			out = append(out, xp)
		}
	}
	return out, nil
}

// list runs `go list -json -deps` and records every listed package,
// returning the root (non-DepOnly) module package paths in sorted
// order.
func (l *Loader) list(patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var roots []string
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		p := lp
		l.listed[lp.ImportPath] = &p
		if !lp.Standard && !lp.DepOnly {
			roots = append(roots, lp.ImportPath)
		}
	}
	sort.Strings(roots)
	return roots, nil
}

// pkg returns the type-checked library unit for a module import path,
// building it (and its module dependencies) on first use.
func (l *Loader) pkg(path string) (*Package, error) {
	if p, ok := l.base[path]; ok {
		return p, nil
	}
	lp, ok := l.listed[path]
	if !ok || lp.Standard {
		return nil, fmt.Errorf("analysis: %s is not a listed module package", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	p, err := l.check(path, lp.Name, lp.Dir, lp.GoFiles, nil)
	if err != nil {
		return nil, err
	}
	l.base[path] = p
	return p, nil
}

// check parses and type-checks one package unit. overrides, when
// non-nil, redirects specific import paths to already-built packages
// (used by the fixture harness).
func (l *Loader) check(path, name, dir string, files []string, overrides map[string]*types.Package) (*Package, error) {
	pkg := &Package{Path: path, Fset: l.Fset}
	for _, f := range files {
		fn := filepath.Join(dir, f)
		af, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", fn, err)
		}
		pkg.Files = append(pkg.Files, af)
		pkg.Filenames = append(pkg.Filenames, fn)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg.Info = info
	var firstErr error
	_ = name
	conf := types.Config{
		Importer: &unitImporter{l: l, overrides: overrides},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tp, err := conf.Check(path, l.Fset, pkg.Files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg.Types = tp
	return pkg, nil
}

// CheckFiles type-checks an ad-hoc set of files as one package unit
// under the given import path — the fixture harness's entry point.
// Imports of module packages resolve against the loader's module;
// everything else goes to the standard-library importer.
func (l *Loader) CheckFiles(path, dir string, files []string) (*Package, error) {
	return l.check(path, "", dir, files, nil)
}

// unitImporter resolves one unit's imports: overrides first, then
// module packages from source, then the standard library.
type unitImporter struct {
	l         *Loader
	overrides map[string]*types.Package
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if p, ok := u.overrides[path]; ok {
		return p, nil
	}
	if lp, ok := u.l.listed[path]; ok && !lp.Standard {
		p, err := u.l.pkg(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if !strings.Contains(path, ".") {
		return u.l.std.Import(path)
	}
	// A module path not known to go list (fixture importing something
	// unlisted) — try the source importer as a last resort.
	return u.l.std.Import(path)
}
