package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// All returns earlvet's analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{HotAlloc, JournalCommit, MapOrder, PoolLeak, RngSource, SentinelErr}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to each package unit and returns all
// diagnostics in (file, position) order.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, *token.FileSet, error) {
	var all []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Filenames: pkg.Filenames,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				IsTest:    pkg.IsTest,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fset, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
			all = append(all, pass.Diagnostics()...)
		}
	}
	if fset != nil {
		sort.SliceStable(all, func(i, j int) bool {
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			return pi.Offset < pj.Offset
		})
	}
	// A test-augmented unit re-analyzes the package's library files, so
	// the same finding can surface twice; dedupe by (position, message).
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range all {
		key := fset.Position(d.Pos).String() + "\x00" + d.Category + "\x00" + d.Message
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out, fset, nil
}

// ApplyFixes applies every diagnostic's first suggested fix to the
// source files on disk, skipping edits that overlap an already-applied
// edit. It returns the files rewritten.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) ([]string, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range d.SuggestedFixes[0].TextEdits {
			pos := fset.Position(te.Pos)
			end := fset.Position(te.End)
			if pos.Filename == "" || pos.Filename != end.Filename {
				continue
			}
			perFile[pos.Filename] = append(perFile[pos.Filename],
				edit{start: pos.Offset, end: end.Offset, text: te.NewText})
		}
	}
	var changed []string
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var out []byte
		last := 0
		applied := false
		var prev *edit
		for i := range edits {
			e := edits[i]
			if e.start < last || e.end > len(src) {
				continue // overlapping or out-of-range edit
			}
			// Identical edits arise when several fixes in one file each
			// carry the same import insertion; apply it once.
			if prev != nil && e.start == prev.start && e.end == prev.end && string(e.text) == string(prev.text) {
				continue
			}
			prev = &edits[i]
			out = append(out, src[last:e.start]...)
			out = append(out, e.text...)
			last = e.end
			applied = true
		}
		out = append(out, src[last:]...)
		if !applied {
			continue
		}
		if err := os.WriteFile(file, out, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, nil
}
