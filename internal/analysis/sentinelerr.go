package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// nodeText renders a node back to source (go/printer normalizes
// whitespace, which is fine for suggested-fix text).
func nodeText(pass *Pass, n ast.Node) ([]byte, bool) {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, n); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// SentinelErr enforces errors.Is for sentinel-error matching. The
// repo's public errors (bootstrap.ErrTooFewResamples, mr.ErrBadInput,
// serve.ErrOverloaded, dfs.ErrNotFound, ...) are routinely wrapped with
// %w as they cross package boundaries — the driver wraps resample
// errors, the HTTP layer wraps engine errors — so an identity
// comparison silently stops matching the moment a wrapping layer is
// added. The analyzer reports ==/!= where either operand is a
// package-level error variable named Err* (nil comparisons stay fine)
// and suggests the mechanical errors.Is rewrite. It checks test files
// too: assertions are where identity comparisons actually accumulate.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc:  "sentinel errors must be matched with errors.Is, never == or !=",
	Run:  runSentinelErr,
}

func runSentinelErr(pass *Pass) (any, error) {
	for _, file := range pass.Files {
		errPkgName := importName(file, "errors")
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op.String() != "==" && bin.Op.String() != "!=") {
				return true
			}
			var sentinel ast.Expr
			var other ast.Expr
			if isSentinelErrVar(pass.TypesInfo, bin.X) {
				sentinel, other = bin.X, bin.Y
			} else if isSentinelErrVar(pass.TypesInfo, bin.Y) {
				sentinel, other = bin.Y, bin.X
			} else {
				return true
			}
			if isNilIdent(pass.TypesInfo, other) {
				return true
			}
			d := Diagnostic{
				Pos: bin.Pos(),
				End: bin.End(),
				Message: "sentinel error compared with " + bin.Op.String() +
					": wrapped errors will not match; use errors.Is",
			}
			if fix, ok := errorsIsFix(pass, file, errPkgName, bin, other, sentinel); ok {
				d.SuggestedFixes = []SuggestedFix{fix}
			}
			pass.Report(d)
			return true
		})
	}
	return nil, nil
}

// isSentinelErrVar reports whether expr resolves to a package-level
// variable of an error type whose name starts with "Err".
func isSentinelErrVar(info *types.Info, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	// Package-level: declared directly in the package scope.
	if v.Pkg().Scope().Lookup(v.Name()) != v {
		return false
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	return implementsError(v.Type())
}

func implementsError(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if ok {
		// `error` itself or an interface embedding it.
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Error" {
				return true
			}
		}
		return false
	}
	// Concrete type with an Error() string method.
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Error" {
			return true
		}
	}
	return false
}

func isNilIdent(info *types.Info, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// importName returns the local name under which file imports path
// ("" when it does not).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if imp.Path.Value != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

// errorsIsFix builds the errors.Is rewrite for `other OP sentinel`,
// adding an "errors" import when the file lacks one.
func errorsIsFix(pass *Pass, file *ast.File, errPkgName string, bin *ast.BinaryExpr, other, sentinel ast.Expr) (SuggestedFix, bool) {
	src := func(e ast.Expr) ([]byte, bool) {
		return nodeText(pass, e)
	}
	otherSrc, ok1 := src(other)
	sentinelSrc, ok2 := src(sentinel)
	if !ok1 || !ok2 {
		return SuggestedFix{}, false
	}
	name := errPkgName
	var edits []TextEdit
	if name == "" {
		name = "errors"
		imp, ok := importInsertion(file)
		if !ok {
			return SuggestedFix{}, false
		}
		edits = append(edits, imp)
	} else if name == "." || name == "_" {
		return SuggestedFix{}, false
	}
	var buf bytes.Buffer
	if bin.Op.String() == "!=" {
		buf.WriteString("!")
	}
	buf.WriteString(name)
	buf.WriteString(".Is(")
	buf.Write(otherSrc)
	buf.WriteString(", ")
	buf.Write(sentinelSrc)
	buf.WriteString(")")
	edits = append(edits, TextEdit{Pos: bin.Pos(), End: bin.End(), NewText: buf.Bytes()})
	return SuggestedFix{Message: "use errors.Is", TextEdits: edits}, true
}

// importInsertion returns an edit adding `"errors"` to the file's first
// import declaration (or a new one after the package clause).
func importInsertion(file *ast.File) (TextEdit, bool) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok.String() != "import" {
			continue
		}
		if gd.Lparen.IsValid() {
			// Insert right after the opening paren; gofmt settles order.
			return TextEdit{Pos: gd.Lparen + 1, End: gd.Lparen + 1, NewText: []byte("\n\t\"errors\"")}, true
		}
		// Single-spec import: rewrite `import "x"` into a block is more
		// edit than we want; add a separate import decl after it.
		return TextEdit{Pos: gd.End(), End: gd.End(), NewText: []byte("\nimport \"errors\"")}, true
	}
	// No imports at all: add one after the package clause.
	return TextEdit{Pos: file.Name.End(), End: file.Name.End(), NewText: []byte("\n\nimport \"errors\"")}, true
}
