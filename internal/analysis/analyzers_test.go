package analysis

// Fixture-driven analyzer tests in the style of
// golang.org/x/tools/go/analysis/analysistest: each testdata/<analyzer>
// directory is type-checked as one package and the analyzer's
// diagnostics are matched line by line against `// want` comments
// (backquoted regexps). *_fix directories additionally verify the
// suggested fixes: the fixture is copied to a temp dir, fixes are
// applied and gofmt-ed, and the result must equal the .golden file
// (set EARLVET_UPDATE=1 to regenerate goldens).

import (
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	wantRe    = regexp.MustCompile("// want((?: `[^`]*`)+)")
	wantArgRe = regexp.MustCompile("`([^`]*)`")
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// fixtureLoader builds a loader rooted at the module, optionally
// pre-listing module packages the fixture imports (e.g. ./internal/pool).
func fixtureLoader(t *testing.T, preload ...string) *Loader {
	t.Helper()
	l := NewLoader(moduleRoot(t))
	if len(preload) > 0 {
		if _, err := l.Load(preload, false); err != nil {
			t.Fatalf("preloading %v: %v", preload, err)
		}
	}
	return l
}

func fixtureFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	return files
}

func checkFixture(t *testing.T, l *Loader, dir string) *Package {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckFiles("fixture/"+filepath.Base(dir), abs, fixtureFiles(t, dir))
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return pkg
}

// runFixture analyzes testdata/<name> and matches diagnostics against
// `// want` comments.
func runFixture(t *testing.T, a *Analyzer, dir string, preload ...string) {
	t.Helper()
	pkg := checkFixture(t, fixtureLoader(t, preload...), dir)
	diags, fset, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}

	type lineKey struct {
		file string
		line int
	}
	type wantSpec struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := map[lineKey][]*wantSpec{}
	for _, fn := range pkg.Filenames {
		src, err := os.ReadFile(fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, am := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(am[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", fn, i+1, am[1], err)
				}
				k := lineKey{fn, i + 1}
				wants[k] = append(wants[k], &wantSpec{re: re})
			}
		}
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants[lineKey{p.Filename, p.Line}] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

// runFixFixture copies testdata/<name> to a temp dir, applies the
// analyzer's suggested fixes, formats the result and compares it to the
// fixture's .golden files.
func runFixFixture(t *testing.T, a *Analyzer, dir string, preload ...string) {
	t.Helper()
	files := fixtureFiles(t, dir)
	tmp := t.TempDir()
	for _, f := range files {
		src, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, f), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l := fixtureLoader(t, preload...)
	pkg, err := l.CheckFiles("fixture/"+filepath.Base(dir), tmp, files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	diags, fset, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("no fixes applied")
	}
	for _, f := range files {
		raw, err := os.ReadFile(filepath.Join(tmp, f))
		if err != nil {
			t.Fatal(err)
		}
		got, err := format.Source(raw)
		if err != nil {
			t.Fatalf("%s: fixed source does not format: %v\n%s", f, err, raw)
		}
		goldenPath := filepath.Join(dir, f+".golden")
		if os.Getenv("EARLVET_UPDATE") == "1" {
			if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden (run with EARLVET_UPDATE=1 to create): %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: fixed output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", f, got, want)
		}
	}
}

func TestRngSource(t *testing.T)   { runFixture(t, RngSource, "testdata/rngsource") }
func TestMapOrder(t *testing.T)    { runFixture(t, MapOrder, "testdata/maporder") }
func TestHotAlloc(t *testing.T)    { runFixture(t, HotAlloc, "testdata/hotalloc") }
func TestSentinelErr(t *testing.T) { runFixture(t, SentinelErr, "testdata/sentinelerr") }
func TestPoolLeak(t *testing.T) {
	runFixture(t, PoolLeak, "testdata/poolleak", "./internal/pool")
}

func TestMapOrderFix(t *testing.T)    { runFixFixture(t, MapOrder, "testdata/maporder_fix") }
func TestSentinelErrFix(t *testing.T) { runFixFixture(t, SentinelErr, "testdata/sentinelerr_fix") }

// TestByName covers the driver's analyzer selection.
func TestByName(t *testing.T) {
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	as, err := ByName([]string{"maporder", "poolleak"})
	if err != nil || len(as) != 2 || as[0] != MapOrder || as[1] != PoolLeak {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if got := len(All()); got != 6 {
		t.Fatalf("All() = %d analyzers, want 6", got)
	}
}

// TestRepoInvariants is the dogfood gate: the whole module must be
// clean under every analyzer (modulo justified //earl: directives).
func TestRepoInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := NewLoader(moduleRoot(t))
	pkgs, err := l.Load([]string{"./..."}, true)
	if err != nil {
		t.Fatal(err)
	}
	diags, fset, err := Run(All(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", fset.Position(d.Pos), d.Category, d.Message)
	}
}

func TestJournalCommit(t *testing.T) { runFixture(t, JournalCommit, "testdata/journalcommit") }
