package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc is the allocation analyzer for the resampling hot path (the
// PR 5 bug class: delta maintenance boxed one float64 per item into the
// reducer's `any` Update parameter — 371k allocations per Grow). It is
// the static complement of the earlbench -compare allocs/op gate: the
// benchmark catches a regression after the fact, this catches the
// introducing diff.
//
// Functions annotated //earl:hotpath (in the doc comment) must keep
// their loops free of per-iteration allocation:
//
//   - implicit interface conversions of non-pointer-shaped values
//     (boxing) in call arguments, assignments, appends, composite
//     literals and map index values;
//   - fmt.* calls — except inside a return statement or a panic
//     argument, which execute at most once per call;
//   - map composite literals and make(map[...]);
//   - function literals (a closure allocated every iteration).
//
// //earl:alloc-ok <reason> on the offending line suppresses a finding
// (e.g. a conversion proven amortised by a pooling layer).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "//earl:hotpath functions must not allocate per loop iteration " +
		"(boxing, fmt, map literals, closures)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) (any, error) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncDirective(fn, "hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil, nil
}

// checkHotFunc walks fn's body tracking loop nesting; violations are
// only reported inside loops (per-iteration cost).
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			if n.Init != nil {
				walk(n.Init, inLoop)
			}
			if n.Cond != nil {
				walk(n.Cond, inLoop)
			}
			if n.Post != nil {
				walk(n.Post, true)
			}
			walk(n.Body, true)
			return
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
			return
		case *ast.FuncLit:
			if inLoop {
				if !pass.Suppressed(n.Pos(), "alloc-ok") {
					pass.Reportf(n.Pos(), "closure allocated per loop iteration in hotpath function %s", fn.Name.Name)
				}
			}
			// A nested closure body starts its own loop context.
			walk(n.Body, false)
			return
		case *ast.ReturnStmt:
			// Executes at most once per call: allocation here is not
			// per-iteration (the `return fmt.Errorf(...)` error path).
			return
		case *ast.CallExpr:
			if inLoop {
				checkHotCall(pass, fn, n)
			}
			if isPanicCall(pass.TypesInfo, n) {
				return // at most once per call, like return
			}
		case *ast.CompositeLit:
			if inLoop {
				if tv, ok := pass.TypesInfo.Types[n]; ok && isMapType(tv.Type) {
					if !pass.Suppressed(n.Pos(), "alloc-ok") {
						pass.Reportf(n.Pos(), "map literal allocated per loop iteration in hotpath function %s", fn.Name.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if inLoop {
				checkHotAssign(pass, fn, n)
			}
		}
		// Generic recursion.
		cur := n
		ast.Inspect(cur, func(child ast.Node) bool {
			if child == cur {
				return true
			}
			walk(child, inLoop)
			return false
		})
	}
	walk(fn.Body, false)
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// checkHotCall reports fmt calls, make(map), and boxing call arguments.
func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if CalleePkgPath(pass.TypesInfo, call) == "fmt" {
		if !pass.Suppressed(call.Pos(), "alloc-ok") {
			pass.Reportf(call.Pos(), "fmt call per loop iteration in hotpath function %s", fn.Name.Name)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && isMapType(tv.Type) {
				if !pass.Suppressed(call.Pos(), "alloc-ok") {
					pass.Reportf(call.Pos(), "make(map) per loop iteration in hotpath function %s", fn.Name.Name)
				}
			}
		}
		return
	}
	// Boxing: a concrete, non-pointer-shaped argument passed to an
	// interface parameter.
	fnType := calleeSignature(pass.TypesInfo, call)
	if fnType == nil {
		return
	}
	params := fnType.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case fnType.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1)
			if slice, ok := last.Type().(*types.Slice); ok {
				paramType = slice.Elem()
			}
			if call.Ellipsis.IsValid() {
				paramType = last.Type() // xs... passes the slice itself
			}
		case i < params.Len():
			paramType = params.At(i).Type()
		}
		reportBoxing(pass, fn, arg, paramType, "argument")
	}
}

// checkHotAssign reports boxing assignments into interface-typed
// variables (including append into []any and map[_]any index writes).
func checkHotAssign(pass *Pass, fn *ast.FuncDecl, assign *ast.AssignStmt) {
	n := len(assign.Lhs)
	if len(assign.Rhs) != n {
		return // multi-value RHS: conversions happen in the callee's returns
	}
	for i := 0; i < n; i++ {
		var lhsType types.Type
		if tv, ok := pass.TypesInfo.Types[assign.Lhs[i]]; ok {
			lhsType = tv.Type
		} else if id, ok := assign.Lhs[i].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				lhsType = obj.Type()
			}
			// Defs (`:=` declarations) take their type from the RHS:
			// no conversion happens.
		}
		if lhsType == nil {
			continue
		}
		reportBoxing(pass, fn, assign.Rhs[i], lhsType, "assignment")
	}
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	if tv.IsType() {
		return nil // conversion, handled by reportBoxing at use sites
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// reportBoxing reports when expr (of concrete, non-pointer-shaped type)
// is converted to the interface type target.
func reportBoxing(pass *Pass, fn *ast.FuncDecl, expr ast.Expr, target types.Type, what string) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	if _, alreadyIface := tv.Type.Underlying().(*types.Interface); alreadyIface {
		return
	}
	if IsPointerShaped(tv.Type) {
		return
	}
	if pass.Suppressed(expr.Pos(), "alloc-ok") {
		return
	}
	pass.Reportf(expr.Pos(),
		"%s boxes %s into %s per loop iteration in hotpath function %s (the PR 5 allocs/op bug class); batch into a slice and apply once per generation",
		what, tv.Type.String(), target.String(), fn.Name.Name)
}
