// Package analysis is earlvet's static-analysis substrate: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API
// (Analyzer / Pass / Diagnostic / SuggestedFix) plus a module-aware
// package loader built on `go list` and the standard library's
// go/parser + go/types. The container this repo builds in has no module
// proxy access, so the x/tools framework itself cannot be vendored; the
// subset implemented here is shaped so the analyzers would port to the
// real framework by changing imports only.
//
// The analyzers in this package encode EARL's three machine-checkable
// invariants — the ones that have each already produced a shipped bug:
//
//   - determinism: fixed-seed results are bit-identical at any
//     Parallelism (rngsource, maporder);
//   - zero steady-state allocation on the resampling hot path
//     (hotalloc);
//   - balanced scratch/pool usage (poolleak);
//   - durability: dfs committed file state only changes through the
//     journaled commit path (journalcommit);
//
// plus the API hygiene rule that sentinel errors are matched with
// errors.Is (sentinelerr).
//
// Directives. Analyzers read `//earl:` comment directives:
//
//   - //earl:hotpath — marks a function whose loops hotalloc must keep
//     allocation-free (put it in the function's doc comment);
//   - //earl:nondet-ok <reason> — suppresses a maporder finding for the
//     annotated range statement;
//   - //earl:alloc-ok <reason> — suppresses a hotalloc finding on the
//     annotated line;
//   - //earl:pool-ok <reason> — suppresses a poolleak finding;
//   - //earl:rand-ok <reason> — suppresses an rngsource finding;
//   - //earl:commit-ok <reason> — suppresses a journalcommit finding.
//
// Every suppressing directive requires a reason; a bare directive is
// itself reported. A directive covers its own source line and the line
// directly below it, so both trailing and preceding comments work.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one earlvet check.
type Analyzer struct {
	// Name is the analyzer's command-line name (lower case, no spaces).
	Name string
	// Doc is the one-paragraph description `earlvet -list` prints.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Report. The returned value is unused today (the real
	// framework threads it to dependent analyzers) but kept for API
	// compatibility.
	Run func(pass *Pass) (any, error)
}

// A Pass holds one analyzed package and collects the diagnostics an
// analyzer reports against it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string // parallel to Files
	Pkg       *types.Package
	TypesInfo *types.Info
	// IsTest marks package units that include _test.go files.
	IsTest bool

	diagnostics []Diagnostic
	directives  map[*ast.File]fileDirectives
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos // optional
	Category       string    // analyzer name, filled by the driver
	Message        string
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one mechanical rewrite that resolves a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	if d.Category == "" && p.Analyzer != nil {
		d.Category = p.Analyzer.Name
	}
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, in file/position
// order.
func (p *Pass) Diagnostics() []Diagnostic {
	ds := append([]Diagnostic(nil), p.diagnostics...)
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	return ds
}

// FileFor returns the *ast.File containing pos (nil when pos is not in
// this package unit).
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// FilenameFor returns the file name of the unit file containing pos.
func (p *Pass) FilenameFor(pos token.Pos) string {
	for i, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return p.Filenames[i]
		}
	}
	return ""
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers
// whose invariants only bind library code (rngsource, maporder,
// hotalloc) skip such positions; sentinelerr deliberately does not.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.FilenameFor(pos), "_test.go")
}

// ---------------------------------------------------------------------
// //earl: directives.

// DirectivePrefix is the comment marker all earlvet directives share.
const DirectivePrefix = "//earl:"

// A Directive is one parsed //earl:<name> <args> comment.
type Directive struct {
	Name string // e.g. "nondet-ok"
	Args string // rest of the line, trimmed
	Pos  token.Pos
}

type fileDirectives struct {
	// byLine maps a source line to the directives covering it: a
	// directive on line L covers L (trailing comment) and L+1
	// (preceding comment).
	byLine map[int][]Directive
}

func (p *Pass) fileDirs(f *ast.File) fileDirectives {
	if d, ok := p.directives[f]; ok {
		return d
	}
	fd := fileDirectives{byLine: map[int][]Directive{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, DirectivePrefix)
			name, args, _ := strings.Cut(rest, " ")
			d := Directive{Name: strings.TrimSpace(name), Args: strings.TrimSpace(args), Pos: c.Pos()}
			line := p.Fset.Position(c.Pos()).Line
			fd.byLine[line] = append(fd.byLine[line], d)
			fd.byLine[line+1] = append(fd.byLine[line+1], d)
		}
	}
	if p.directives == nil {
		p.directives = map[*ast.File]fileDirectives{}
	}
	p.directives[f] = fd
	return fd
}

// DirectiveAt returns the //earl:<name> directive covering pos's line
// (the directive's own line or the line above), if any.
func (p *Pass) DirectiveAt(pos token.Pos, name string) (Directive, bool) {
	f := p.FileFor(pos)
	if f == nil {
		return Directive{}, false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range p.fileDirs(f).byLine[line] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Suppressed reports whether a finding at pos is suppressed by the
// given directive. A directive with an empty reason does not suppress:
// it is reported instead, so every suppression in the tree documents
// why the invariant does not apply.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	d, ok := p.DirectiveAt(pos, directive)
	if !ok {
		return false
	}
	if d.Args == "" {
		p.Reportf(d.Pos, "//earl:%s directive needs a reason", directive)
		// Report the bare directive once, but still suppress the
		// underlying finding so the fix is "write the reason", not two
		// interleaved complaints.
	}
	return true
}

// FuncDirective reports whether decl's doc comment carries the given
// //earl: directive (e.g. hotpath).
func FuncDirective(decl *ast.FuncDecl, name string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, DirectivePrefix) {
			rest := strings.TrimPrefix(c.Text, DirectivePrefix)
			n, _, _ := strings.Cut(rest, " ")
			if strings.TrimSpace(n) == name {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Shared type/AST helpers.

// IsPkgFunc reports whether the called function of call is the
// package-level function pkgPath.name, resolved through the type
// checker (so aliased imports and shadowed identifiers are handled).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && !isMethod(fn)
}

// CalleeFunc resolves the *types.Func a call invokes (nil for calls of
// function-typed values, conversions and builtins).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// CalleePkgPath returns the defining package path of the called
// function or method ("" when unresolved).
func CalleePkgPath(info *types.Info, call *ast.CallExpr) string {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// NamedTypePath returns "pkgpath.Name" for t's core named type,
// dereferencing one pointer ("" for unnamed types).
func NamedTypePath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// IsPointerShaped reports whether converting a value of type t to an
// interface stores the value directly in the interface word — i.e. the
// conversion cannot allocate. Everything else (numbers, strings,
// slices, structs, ...) is boxed on the heap.
func IsPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
