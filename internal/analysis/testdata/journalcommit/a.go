package dfs

// Fixture for the journalcommit analyzer: a miniature of the real dfs
// package's committed-state types. Mutations of fileMeta/fileChain/
// chainVersion fields and of the FileSystem.files map are only legal
// inside apply*-prefixed functions; the sidecar field is derived state
// and exempt everywhere.

type blockMeta struct{ id int64 }

type fileMeta struct {
	size     int64
	blocks   []*blockMeta
	segments []int64
	version  int64
	sidecar  []byte
}

type chainVersion struct {
	seq  int64
	meta *fileMeta
}

type fileChain struct {
	versions []chainVersion
}

type FileSystem struct {
	files map[string]*fileChain
	seq   int64
}

// applyWrite is the blessed shape: mutation inside an apply* helper.
func (fs *FileSystem) applyWrite(path string, meta *fileMeta) {
	ch, ok := fs.files[path]
	if !ok {
		ch = &fileChain{}
		fs.files[path] = ch
	}
	ch.versions = append(ch.versions, chainVersion{seq: fs.seq, meta: meta})
	meta.version = fs.seq
}

// applyPrune may also drop chains.
func (fs *FileSystem) applyPrune(path string) {
	delete(fs.files, path)
}

// truncate is the bug shape: it edits installed state directly, so the
// journal never hears about the mutation and recovery replays the old
// size.
func (fs *FileSystem) truncate(path string, n int64) {
	ch := fs.files[path]
	v := &ch.versions[len(ch.versions)-1]
	v.meta.size = n                       // want `truncate mutates fileMeta.size outside the commit path`
	v.meta.blocks = v.meta.blocks[:1]     // want `truncate mutates fileMeta.blocks outside the commit path`
	v.meta.segments = v.meta.segments[:1] // want `truncate mutates fileMeta.segments outside the commit path`
}

// rebless bumps a write generation in place: same hazard.
func (fs *FileSystem) rebless(meta *fileMeta) {
	meta.version++ // want `rebless mutates fileMeta.version outside the commit path`
}

// graft swaps chain internals around without a commit.
func (fs *FileSystem) graft(dst, src *fileChain, path string) {
	dst.versions = src.versions // want `graft mutates fileChain.versions outside the commit path`
	dst.versions[0].meta = nil  // want `graft mutates chainVersion.meta outside the commit path`
	dst.versions[0].seq = 0     // want `graft mutates chainVersion.seq outside the commit path`
	fs.files[path] = dst        // want `graft mutates the FileSystem.files chain map outside the commit path`
	delete(fs.files, path)      // want `graft mutates the FileSystem.files chain map outside the commit path`
}

// compact rebuilds derived columnar state: sidecar is exempt by design.
func (fs *FileSystem) compact(meta *fileMeta, sc []byte) {
	meta.sidecar = sc
}

// build constructs a FRESH meta — composite literals and locals are not
// mutations of installed state.
func build(n int64) *fileMeta {
	m := &fileMeta{size: n, segments: []int64{0}}
	local := chainVersion{seq: 1, meta: m}
	_ = local
	return m
}

// blessed documents why a carve-out is legal.
func (fs *FileSystem) blessed(meta *fileMeta) {
	meta.version = 0 //earl:commit-ok fixture carve-out exercising suppression
}
