package core

import "fmt"

type reducer interface {
	Update(state any, v any) any
}

// growPerItem is the PR 5 historical bug shape: one boxed interface
// conversion per item (371k allocs per Grow before batching).
//
//earl:hotpath
func growPerItem(r reducer, state any, vs []float64) any {
	for _, v := range vs {
		state = r.Update(state, v) // want `boxes float64`
	}
	return state
}

//earl:hotpath
func logPerItem(vs []float64) {
	for _, v := range vs {
		fmt.Println(v) // want `fmt call per loop iteration`
	}
}

//earl:hotpath
func mapPerItem(vs []float64) int {
	total := 0
	for range vs {
		seen := map[int]bool{} // want `map literal allocated per loop iteration`
		total += len(seen)
	}
	return total
}

//earl:hotpath
func makeMapPerItem(vs []float64) int {
	total := 0
	for range vs {
		seen := make(map[int]bool) // want `make\(map\) per loop iteration`
		total += len(seen)
	}
	return total
}

//earl:hotpath
func closurePerItem(vs []float64) float64 {
	var total float64
	for _, v := range vs {
		f := func() float64 { return v } // want `closure allocated per loop iteration`
		total += f()
	}
	return total
}

// errPath: fmt inside a return executes at most once per call — the
// sanctioned error-path shape.
//
//earl:hotpath
func errPath(vs []float64) error {
	for i, v := range vs {
		if v != v {
			return fmt.Errorf("NaN at %d", i)
		}
	}
	return nil
}

// boxedAssign: the conversion hides in an assignment, not a call.
//
//earl:hotpath
func boxedAssign(vs []float64) any {
	var last any
	for _, v := range vs {
		last = v // want `boxes float64`
	}
	return last
}

// justified carries the directive with a reason.
//
//earl:hotpath
func justified(r reducer, state any, vs []float64) any {
	for _, v := range vs {
		//earl:alloc-ok cold fallback; the batch path above handles steady state
		state = r.Update(state, v)
	}
	return state
}

// growPerItemCold has the same body as growPerItem but no annotation:
// only //earl:hotpath functions are checked.
func growPerItemCold(r reducer, state any, vs []float64) any {
	for _, v := range vs {
		state = r.Update(state, v)
	}
	return state
}
