package core

import (
	"errors"
	"sync"

	"repro/internal/pool"
)

var errBoom = errors.New("boom")

var bufPool = sync.Pool{New: func() any { b := make([]float64, 0, 64); return &b }}

// leak is the historical bug shape: the early error return drops the
// buffer, silently degrading the pool back to allocate-per-call on
// that path.
func leak(fail bool) error {
	buf := bufPool.Get().(*[]float64) // want `return path without a matching Put`
	if fail {
		return errBoom
	}
	bufPool.Put(buf)
	return nil
}

// deferred is balanced on every path via defer.
func deferred(fail bool) error {
	buf := bufPool.Get().(*[]float64)
	defer bufPool.Put(buf)
	if fail {
		return errBoom
	}
	*buf = (*buf)[:0]
	return nil
}

// explicit is balanced on every path without defer.
func explicit(fail bool) error {
	buf := bufPool.Get().(*[]float64)
	if fail {
		bufPool.Put(buf)
		return errBoom
	}
	bufPool.Put(buf)
	return nil
}

// panicPath: a panic is not a return path.
func panicPath(fail bool) {
	buf := bufPool.Get().(*[]float64)
	if fail {
		panic("bad state")
	}
	bufPool.Put(buf)
}

// handoff transfers ownership and says so.
func handoff(sink func(*[]float64)) {
	//earl:pool-ok the sink goroutine Puts after draining
	buf := bufPool.Get().(*[]float64)
	sink(buf)
}

// clobber uses an earlier Take's scratch after a later Take on the same
// receiver: pool.Floats recycles the buffer, so a is invalid.
func clobber(fl *pool.Floats, n int) float64 {
	a := fl.Take(n)
	a = append(a, 1)
	b := fl.Take(n)
	b = append(b, 2)
	return a[0] + b[0] // want `only valid until the next Take`
}

// sequential re-Takes are fine when the earlier result is not touched
// again.
func sequential(fl *pool.Floats, n int) float64 {
	a := fl.Take(n)
	a = append(a, 1)
	total := a[0]
	b := fl.Take(n)
	b = append(b, 2)
	return total + b[0]
}

// escape returns the scratch to the caller, which the next Take will
// clobber.
func escape(fl *pool.Floats, n int) []float64 {
	vals := fl.Take(n)
	vals = append(vals, 1, 2, 3)
	return vals // want `copy it out instead`
}
