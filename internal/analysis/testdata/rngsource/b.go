package core

import "math/rand" // want `import of math/rand`

// legacy draws from math/rand v1: the global source is seeded at
// process start even without an explicit Seed call.
func legacy() int {
	return rand.Intn(3) // want `process-global source`
}
