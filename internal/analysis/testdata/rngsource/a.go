package core

import (
	"math/rand/v2"
	"time"
)

// globalDraw is the PR 1 historical bug shape: resample growth drawing
// from the process-global source, so fixed-seed runs were only
// reproducible at one parallelism level.
func globalDraw(n int) int {
	return rand.IntN(n) // want `process-global source`
}

func globalShuffle(xs []float64) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-global source`
}

// wallClockSeed defeats the explicit-seed constructors by seeding them
// from the clock.
func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 0)) // want `wall-clock value seeds NewPCG` `wall-clock value seeds New`
}

type config struct {
	Seed int64
}

func defaultConfig() config {
	return config{Seed: time.Now().UnixNano()} // want `wall-clock value seeds field Seed`
}

// seeded is the sanctioned idiom: determinism is visibly the caller's
// seed argument.
func seeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 1))
}

// jitter is genuinely nondeterministic on purpose and says so.
func jitter() int {
	//earl:rand-ok retry jitter is deliberately nondeterministic
	return rand.IntN(10)
}
