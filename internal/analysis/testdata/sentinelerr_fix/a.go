package core

import "fmt"

var ErrBadInput = fmt.Errorf("earl: bad input")

func isBad(err error) bool {
	return err == ErrBadInput
}

func isNotBad(err error) bool {
	return err != ErrBadInput
}
