package mr

import (
	"hash/fnv"
	"sort"
)

type reducer struct{}

func (reducer) Update(s []float64, v float64) []float64 { return append(s, v) }

// appendUnsorted accumulates in map-iteration order: the slice's final
// order is run-dependent.
func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to a slice built across iterations`
	}
	return keys
}

// appendSorted is the sanctioned collect-keys-then-sort idiom.
func appendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perIterationBuffer appends into a slice declared inside the loop:
// ordering cannot leak out through it.
func perIterationBuffer(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var buf []int
		buf = append(buf, vs...)
		total += len(buf)
	}
	return total
}

func sendEach(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want `channel send`
	}
}

// seedDerivation is the PR 2 historical bug shape: per-key seeds
// derived from a digest fed in map-iteration order, so grouped runs
// were not bit-identical under a fixed seed.
func seedDerivation(groups map[string][]float64) uint64 {
	h := fnv.New64a()
	for k := range groups {
		h.Write([]byte(k)) // want `hash Write`
	}
	return h.Sum64()
}

// foldUpdate feeds reducer state in map-iteration order.
func foldUpdate(m map[string][]float64, r reducer) []float64 {
	var s []float64
	for _, vs := range m {
		for _, v := range vs {
			s = r.Update(s, v) // want `order-sensitive state fold`
		}
	}
	return s
}

// commutative folds (summing into a scalar, writing back into the same
// map) pass without annotation.
func commutative(m map[string]int) int {
	total := 0
	for k, v := range m {
		total += v
		m[k] = 0
	}
	return total
}

// justified carries the directive with a reason.
func justified(m map[string]int, ch chan<- int) {
	//earl:nondet-ok consumer is a counter; arrival order immaterial
	for _, v := range m {
		ch <- v
	}
}
