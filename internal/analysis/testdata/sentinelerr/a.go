package core

import "errors"

var ErrTooFewResamples = errors.New("bootstrap: too few resamples")

// errInternal is package-level but unexported (no Err prefix): not a
// sentinel by the repo's naming convention.
var errInternal = errors.New("internal")

// identity is the historical bug shape: the comparison silently stops
// matching once a wrapping layer (fmt.Errorf %w) is added.
func identity(err error) bool {
	return err == ErrTooFewResamples // want `use errors.Is`
}

func identityNe(err error) bool {
	if ErrTooFewResamples != err { // want `use errors.Is`
		return false
	}
	return true
}

// nilCheck stays fine: nil comparisons are not sentinel matching.
func nilCheck(err error) bool {
	return err == nil
}

// already correct.
func wrapped(err error) bool {
	return errors.Is(err, ErrTooFewResamples)
}

// locals are not sentinels.
func localCompare(err error) bool {
	return err == errInternal
}
