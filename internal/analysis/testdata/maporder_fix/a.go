package mr

import "sort"

// collect accumulates values in map-iteration order — the shape whose
// mechanical fix iterates sorted keys.
func collect(m map[string]int) []int {
	var out []int
	for k, v := range m {
		out = append(out, len(k)+v)
	}
	return out
}

// sortedKeys is already the sanctioned idiom and must not be rewritten.
func sortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
