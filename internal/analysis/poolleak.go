package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolLeak checks balanced scratch/pool usage:
//
//   - every sync.Pool Get must be matched by a Put (or a defer that
//     Puts) on every path to a return — checked over the function's
//     control-flow graph. A Get whose buffer is dropped on an early
//     error return silently degrades the pool back to
//     allocate-per-call, which the allocs/op benchmarks only catch
//     under workloads that take that path;
//
//   - internal/pool.Floats is release-free by design (Take recycles the
//     buffer), so its obligation is aliasing, not release: the slice
//     from one Take is only valid until the next Take on the same
//     Floats. Using an earlier Take's result after a later Take on the
//     same receiver, or returning a Take-derived slice, is reported.
//
// //earl:pool-ok <reason> on the acquisition line suppresses a finding
// (e.g. a Put delegated to a helper the analyzer cannot see through).
var PoolLeak = &Analyzer{
	Name: "poolleak",
	Doc: "sync.Pool Get needs a Put on every return path; a pool.Floats " +
		"Take result must not outlive the next Take on the same receiver",
	Run: runPoolLeak,
}

// floatsTypePath identifies the repo's per-worker scratch buffer type.
const floatsTypePath = "repro/internal/pool.Floats"

func runPoolLeak(pass *Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkSyncPoolBalance(pass, body)
			checkFloatsAliasing(pass, body)
			return true // descend: nested FuncLits get their own pass
		})
	}
	return nil, nil
}

// ---------------------------------------------------------------------
// sync.Pool Get/Put balance.

// poolMethodCall matches a call to (sync.Pool).Get/Put — possibly
// through a type-assertion wrapper like pool.Get().(*T) — and returns
// the receiver's object (nil for non-ident receivers) plus a rendering
// key for matching Get to Put sites.
func poolMethodCall(info *types.Info, n ast.Node, method string) (types.Object, string, *ast.CallExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, "", nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || NamedTypePath(sig.Recv().Type()) != "sync.Pool" {
		return nil, "", nil
	}
	obj, key := receiverKey(info, sel.X)
	return obj, key, call
}

// receiverKey resolves a method receiver expression to an object (for
// ident / pkg.Var / x.field chains ending in an ident) and a stable
// string key.
func receiverKey(info *types.Info, expr ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e], e.Name
	case *ast.SelectorExpr:
		base, key := receiverKey(info, e.X)
		if obj := info.Uses[e.Sel]; obj != nil && base == nil {
			return obj, key + "." + e.Sel.Name
		}
		return base, key + "." + e.Sel.Name
	case *ast.UnaryExpr:
		return receiverKey(info, e.X)
	}
	return nil, ""
}

// nodeScanRoots returns the sub-nodes actually evaluated when a CFG
// node for s executes. Compound statements (if/for/switch) become
// *head* nodes in the CFG whose bodies are separate nodes, so scanning
// the whole subtree would mis-attribute calls inside branches to the
// head.
func nodeScanRoots(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Node{s.Cond}
		}
		return nil
	case *ast.RangeStmt:
		return []ast.Node{s.X}
	case *ast.SwitchStmt:
		var r []ast.Node
		if s.Init != nil {
			r = append(r, s.Init)
		}
		if s.Tag != nil {
			r = append(r, s.Tag)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					r = append(r, e)
				}
			}
		}
		return r
	case *ast.TypeSwitchStmt:
		var r []ast.Node
		if s.Init != nil {
			r = append(r, s.Init)
		}
		return append(r, s.Assign)
	case *ast.SelectStmt:
		var r []ast.Node
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				r = append(r, cc.Comm)
			}
		}
		return r
	default:
		return []ast.Node{s}
	}
}

// nodePoolCalls returns every pool call of the given method evaluated
// at this CFG node. Put scanning includes function literals on purpose:
// a deferred closure that Puts releases the buffer (conservatively, any
// closure defining the Put counts — the directive escape covers exotic
// cases). Get scanning excludes them: a closure's Get belongs to the
// closure's own check.
func nodePoolCalls(info *types.Info, stmt ast.Stmt, method string, intoFuncLits bool) []string {
	var keys []string
	for _, root := range nodeScanRoots(stmt) {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && !intoFuncLits {
				return false
			}
			if _, key, call := poolMethodCall(info, n, method); call != nil {
				keys = append(keys, key)
			}
			return true
		})
	}
	return keys
}

func checkSyncPoolBalance(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Collect Get sites (statement granularity).
	type getSite struct {
		key  string
		pos  token.Pos
		node *cfgNode
	}
	g := buildCFG(body, info)
	var gets []getSite
	for _, n := range g.nodes {
		if n.stmt == nil {
			continue
		}
		// Gets inside nested function literals belong to that literal's
		// own check.
		for _, root := range nodeScanRoots(n.stmt) {
			ast.Inspect(root, func(child ast.Node) bool {
				if _, ok := child.(*ast.FuncLit); ok {
					return false
				}
				if _, key, call := poolMethodCall(info, child, "Get"); call != nil {
					gets = append(gets, getSite{key: key, pos: call.Pos(), node: n})
				}
				return true
			})
		}
	}
	if len(gets) == 0 {
		return
	}
	releases := func(n *cfgNode, key string) bool {
		if n.stmt == nil {
			return false
		}
		for _, k := range nodePoolCalls(info, n.stmt, "Put", true) {
			if k == key {
				return true
			}
		}
		return false
	}
	for _, get := range gets {
		if pass.Suppressed(get.pos, "pool-ok") {
			continue
		}
		// The Get statement itself may also Put (single-expression
		// pipelines); then it is trivially balanced.
		if releases(get.node, get.key) {
			continue
		}
		if leakyPathExists(g, get.node, func(n *cfgNode) bool { return releases(n, get.key) }) {
			pass.Reportf(get.pos,
				"sync.Pool Get from %q has a return path without a matching Put; release the buffer on every path (defer or explicit)", get.key)
		}
	}
}

// leakyPathExists reports whether some path from start's successors
// reaches the function exit without passing a node for which released
// returns true.
func leakyPathExists(g *funcCFG, start *cfgNode, released func(*cfgNode) bool) bool {
	seen := map[*cfgNode]bool{}
	var dfs func(n *cfgNode) bool
	dfs = func(n *cfgNode) bool {
		if n == g.exit {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		if released(n) || n.terminal {
			return false
		}
		for _, s := range n.succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range start.succs {
		if dfs(s) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// pool.Floats Take aliasing.

// takeSite records one pool.Floats Take call and the variable its
// result is bound to.
type takeSite struct {
	recvKey string
	pos     token.Pos
	end     token.Pos
	result  types.Object // nil if the result is not bound to an ident
}

func checkFloatsAliasing(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var takes []takeSite
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Take" {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || NamedTypePath(sig.Recv().Type()) != floatsTypePath {
			return true
		}
		_, key := receiverKey(info, sel.X)
		var result types.Object
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				result = obj
			} else if obj := info.Uses[id]; obj != nil {
				result = obj
			}
		}
		takes = append(takes, takeSite{recvKey: key, pos: call.Pos(), end: assign.End(), result: result})
		return true
	})
	if len(takes) < 2 {
		checkFloatsEscape(pass, body, takes)
		return
	}
	// For each pair of Takes on the same receiver, a use of the earlier
	// result after the later Take means the buffer was clobbered.
	for i, early := range takes {
		if early.result == nil {
			continue
		}
		for j, late := range takes {
			if i == j || late.recvKey != early.recvKey || late.pos <= early.pos {
				continue
			}
			if usePos, used := objUsedAfter(info, body, early.result, late.end); used {
				if !pass.Suppressed(usePos, "pool-ok") {
					pass.Reportf(usePos,
						"use of %s after a later Take on %q: pool.Floats scratch is only valid until the next Take on the same receiver",
						early.result.Name(), late.recvKey)
				}
			}
		}
	}
	checkFloatsEscape(pass, body, takes)
}

// checkFloatsEscape reports returning a Take-derived slice: the scratch
// belongs to the worker, not the caller.
func checkFloatsEscape(pass *Pass, body *ast.BlockStmt, takes []takeSite) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := ast.Unparen(res).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			for _, t := range takes {
				if t.result == obj && t.pos < ret.Pos() {
					if !pass.Suppressed(ret.Pos(), "pool-ok") {
						pass.Reportf(ret.Pos(),
							"returning %s, a pool.Floats Take result: the scratch is reused by the next Take; copy it out instead", obj.Name())
					}
				}
			}
		}
		return true
	})
}

// objUsedAfter reports the first use of obj at a position after the
// given point.
func objUsedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, after token.Pos) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= after {
			return true
		}
		if info.Uses[id] == obj {
			pos, found = id.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
