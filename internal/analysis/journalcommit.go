package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// JournalCommit is the durability analyzer for the dfs commit path
// (the PR 10 invariant): every mutation of committed file state must
// flow through commitLocked, which journals the operation before
// dispatching to an apply* helper. State mutated anywhere else would
// exist in memory but not in the commit journal — a crash-recovery
// replay (dfs.Recover) would silently reconstruct a different
// filesystem, and pinned snapshots could observe half-applied
// mutations.
//
// Concretely, in packages named "dfs" (non-test files), it reports
// assignments — including compound assignment, ++/-- and delete() —
// that target
//
//   - a field of fileMeta, chainVersion or fileChain, or
//   - the FileSystem.files version-chain map,
//
// outside a function whose name starts with "apply". The fileMeta
// sidecar field is exempt: it is derived columnar state, rebuildable
// from the file bytes and deliberately never journaled (Compact
// rewrites it in place). Constructing a fresh fileMeta literal is
// likewise fine anywhere — only mutation of installed state is the
// hazard.
//
// //earl:commit-ok <reason> on the offending line suppresses a finding.
var JournalCommit = &Analyzer{
	Name: "journalcommit",
	Doc: "dfs committed file state (fileMeta/fileChain/files) may only be " +
		"mutated inside the commit path's apply* helpers, so the journal " +
		"stays the single source of truth for crash recovery",
	Run: runJournalCommit,
}

// committedFields lists, per committed-state struct, the fields whose
// mutation must be journaled. fileMeta.sidecar is absent by design.
var committedFields = map[string]map[string]bool{
	"fileMeta":     {"size": true, "blocks": true, "segments": true, "version": true},
	"chainVersion": {"seq": true, "meta": true},
	"fileChain":    {"versions": true},
}

func runJournalCommit(pass *Pass) (any, error) {
	if pass.Pkg.Name() != "dfs" {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasPrefix(fd.Name.Name, "apply") {
				continue
			}
			checkCommitMutations(pass, fd)
		}
	}
	return nil, nil
}

// checkCommitMutations walks one non-apply function body and reports
// every mutation of committed state it finds.
func checkCommitMutations(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				reportCommittedTarget(pass, fd, lhs)
			}
		case *ast.IncDecStmt:
			reportCommittedTarget(pass, fd, stmt.X)
		case *ast.CallExpr:
			// delete(fs.files, path) removes a version chain.
			if id, ok := ast.Unparen(stmt.Fun).(*ast.Ident); ok && id.Name == "delete" && len(stmt.Args) > 0 {
				if isFilesMap(pass.TypesInfo, stmt.Args[0]) {
					reportCommitFinding(pass, fd, stmt.Pos(), "the FileSystem.files chain map")
				}
			}
		}
		return true
	})
}

// reportCommittedTarget reports lhs if it mutates committed state: a
// journaled field of a committed-state struct, or an entry of the
// FileSystem.files map.
func reportCommittedTarget(pass *Pass, fd *ast.FuncDecl, lhs ast.Expr) {
	switch target := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		owner, field := selectorField(pass.TypesInfo, target)
		if fields, ok := committedFields[owner]; ok && fields[field.Name()] {
			reportCommitFinding(pass, fd, target.Pos(), owner+"."+field.Name())
		}
	case *ast.IndexExpr:
		if isFilesMap(pass.TypesInfo, target.X) {
			reportCommitFinding(pass, fd, target.Pos(), "the FileSystem.files chain map")
		}
	}
}

func reportCommitFinding(pass *Pass, fd *ast.FuncDecl, pos token.Pos, what string) {
	if pass.Suppressed(pos, "commit-ok") {
		return
	}
	pass.Reportf(pos,
		"%s mutates %s outside the commit path; journal the mutation through commitLocked and apply it in an apply* helper, or recovery replay diverges",
		fd.Name.Name, what)
}

// selectorField resolves sel to (owning struct type name, field object),
// dereferencing one pointer. Returns ("", nil) for non-field selectors.
func selectorField(info *types.Info, sel *ast.SelectorExpr) (string, *types.Var) {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", nil
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return "", nil
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", nil
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", nil
	}
	return named.Obj().Name(), field
}

// isFilesMap reports whether expr is the files field of a FileSystem —
// the committed version-chain namespace.
func isFilesMap(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	owner, field := selectorField(info, sel)
	return owner == "FileSystem" && field != nil && field.Name() == "files"
}
