package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RngSource is the determinism analyzer for randomness sources (the
// PR 1 bug class: the parallel bootstrap once seeded from the process-
// global rng, so fixed-seed runs were only reproducible at one
// parallelism level). In non-test library code it reports:
//
//   - any import of math/rand (v1): its package-level functions draw
//     from a process-global, start-time-seeded source;
//   - calls to math/rand/v2 package-level draw functions (IntN,
//     Float64, Perm, Shuffle, N, ...): same global source. The
//     explicit-seed constructors (New, NewPCG, NewChaCha8, NewZipf)
//     stay allowed — determinism is then visibly the caller's seed
//     argument, which is exactly the contract internal/stats.SplitRNG
//     and internal/aes's newRNG build on;
//   - wall-clock seeding: time.Now flowing into an rng constructor
//     argument, a parameter whose name contains "seed", or a composite-
//     literal field named Seed (the Config{Seed: ...} shape every EARL
//     entry point uses).
//
// //earl:rand-ok <reason> on the offending line suppresses a finding.
var RngSource = &Analyzer{
	Name: "rngsource",
	Doc: "library randomness must flow through explicitly seeded streams, " +
		"never the global math/rand source or wall-clock seeds",
	Run: runRngSource,
}

// rngConstructors are the math/rand/v2 package-level functions that
// take an explicit source/seed and are therefore deterministic in the
// caller's hands.
var rngConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runRngSource(pass *Pass) (any, error) {
	if pass.Pkg.Name() == "main" || pass.IsTest {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			if imp.Path.Value == `"math/rand"` {
				if !pass.Suppressed(imp.Pos(), "rand-ok") {
					pass.Reportf(imp.Pos(),
						"import of math/rand: its global source is seeded at process start; use math/rand/v2 streams seeded via internal/stats.SplitRNG or an explicit Config seed")
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkGlobalRandCall(pass, call)
			checkWallClockSeed(pass, call)
			return true
		})
		checkSeedFields(pass, file)
	}
	return nil, nil
}

// checkGlobalRandCall flags math/rand(/v2) package-level draw functions.
func checkGlobalRandCall(pass *Pass, call *ast.CallExpr) {
	fn := CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || isMethod(fn) {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand/v2" && path != "math/rand" {
		return
	}
	if rngConstructors[fn.Name()] {
		return
	}
	if pass.Suppressed(call.Pos(), "rand-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"call to rand.%s draws from the process-global source; derive a stream from the run's seed (stats.SplitRNG / rand.New(rand.NewPCG(seed, ...)))",
		fn.Name())
}

// checkWallClockSeed flags time.Now feeding an rng constructor or a
// seed-named parameter.
func checkWallClockSeed(pass *Pass, call *ast.CallExpr) {
	fn := CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	seedish := false
	if fn.Pkg() != nil && (fn.Pkg().Path() == "math/rand/v2" || fn.Pkg().Path() == "math/rand") && rngConstructors[fn.Name()] {
		seedish = true
	}
	sig, _ := fn.Type().(*types.Signature)
	if !seedish && sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if containsFold(sig.Params().At(i).Name(), "seed") {
				seedish = true
				break
			}
		}
	}
	if !seedish && containsFold(fn.Name(), "seed") {
		seedish = true
	}
	if !seedish {
		return
	}
	for _, arg := range call.Args {
		if pos, found := findTimeNow(pass.TypesInfo, arg); found {
			if !pass.Suppressed(pos, "rand-ok") {
				pass.Reportf(pos,
					"wall-clock value seeds %s: fixed-seed runs become irreproducible; thread a Config seed instead", fn.Name())
			}
			return
		}
	}
}

// checkSeedFields flags composite-literal fields named Seed whose value
// derives from time.Now (the Config{Seed: time.Now().UnixNano()} shape).
func checkSeedFields(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !containsFold(key.Name, "seed") {
			return true
		}
		if pos, found := findTimeNow(pass.TypesInfo, kv.Value); found {
			if !pass.Suppressed(pos, "rand-ok") {
				pass.Reportf(pos,
					"wall-clock value seeds field %s: fixed-seed runs become irreproducible; thread a Config seed instead", key.Name)
			}
		}
		return true
	})
}

// findTimeNow reports the position of a time.Now() call anywhere in the
// expression tree.
func findTimeNow(info *types.Info, expr ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if ok && IsPkgFunc(info, call, "time", "Now") {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}

// containsFold is a case-insensitive strings.Contains for ASCII names.
func containsFold(s, sub string) bool {
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	if len(sub) > len(s) {
		return false
	}
outer:
	for i := 0; i+len(sub) <= len(s); i++ {
		for j := 0; j < len(sub); j++ {
			if lower(s[i+j]) != lower(sub[j]) {
				continue outer
			}
		}
		return true
	}
	return false
}
