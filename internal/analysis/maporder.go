package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder is the determinism analyzer for map iteration (the PR 2 bug
// class: grouped runs once derived per-key seeds and reducer arrival
// order from map-iteration creation order, so fixed-seed goldens were
// not bit-identical). In the non-test code of the result-producing
// packages (core, delta, live, mr, jobs, serve) it reports a `range`
// over a map whose body does order-sensitive work:
//
//   - appends to a slice declared outside the loop — unless that slice
//     is later passed to a sort call in the same function (the
//     collect-keys-then-sort idiom is the sanctioned fix);
//   - sends on a channel;
//   - feeds reducer state (Update / UpdateAll / InitializeOrUpdate /
//     Initialize / Grow) or derives seeds (hash writes, SplitRNG,
//     seed-named callees).
//
// Commutative folds (summing into a scalar, writing back into the same
// map, taking a max) pass without annotation. A genuinely
// order-insensitive loop that still trips a trigger carries
// //earl:nondet-ok <reason>.
//
// For string-keyed maps in files that already import "sort", the
// analyzer offers the mechanical sort-before-range rewrite.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "range over a map must not feed order-sensitive sinks in " +
		"result-producing packages (sort keys first or justify with //earl:nondet-ok)",
	Run: runMapOrder,
}

// mapOrderPackages are the package names whose outputs reach reported
// results; map-iteration order anywhere on those paths breaks the
// bit-identical-goldens contract.
var mapOrderPackages = map[string]bool{
	"core": true, "delta": true, "live": true, "mr": true, "jobs": true, "serve": true,
}

// orderSensitiveCalls feed per-item state whose final value depends on
// arrival order (reducer folds, resample growth).
var orderSensitiveCalls = map[string]bool{
	"Update": true, "UpdateAll": true, "InitializeOrUpdate": true,
	"Initialize": true, "Grow": true,
}

func runMapOrder(pass *Pass) (any, error) {
	if !mapOrderPackages[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncMapRanges(pass, file, fn)
			return true
		})
	}
	return nil, nil
}

func checkFuncMapRanges(pass *Pass, file *ast.File, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || !isMapType(tv.Type) {
			return true
		}
		if pass.Suppressed(rng.Pos(), "nondet-ok") {
			return true
		}
		if reason, pos := mapRangeViolation(pass, fn, rng); reason != "" {
			d := Diagnostic{
				Pos: pos,
				Message: "map iteration order feeds " + reason +
					": results become run-dependent; sort the keys first or annotate //earl:nondet-ok <reason>",
			}
			if fix, ok := sortKeysFix(pass, file, rng); ok {
				d.SuggestedFixes = []SuggestedFix{fix}
			}
			pass.Report(d)
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapRangeViolation scans the loop body for the first order-sensitive
// operation, returning a description and its position ("" when clean).
func mapRangeViolation(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) (string, token.Pos) {
	var reason string
	var pos token.Pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason, pos = "a channel send", n.Pos()
			return false
		case *ast.AssignStmt:
			if target, ok := appendToOuterSlice(pass, rng, n); ok {
				if !sliceSortedLater(pass, fn, rng, target) {
					reason, pos = "an append to a slice built across iterations", n.Pos()
					return false
				}
			}
		case *ast.CallExpr:
			if name, sensitive := sensitiveCall(pass, n); sensitive {
				reason, pos = "a call to "+name, n.Pos()
				return false
			}
		}
		return true
	})
	if reason != "" && pass.Suppressed(pos, "nondet-ok") {
		return "", pos
	}
	return reason, pos
}

// appendToOuterSlice matches `x = append(x, ...)` where x is declared
// outside the range statement, returning x's object.
func appendToOuterSlice(pass *Pass, rng *ast.RangeStmt, assign *ast.AssignStmt) (*types.Var, bool) {
	if len(assign.Rhs) != 1 {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := pass.TypesInfo.Uses[base].(*types.Var)
	if !ok {
		return nil, false
	}
	// Declared inside the loop (e.g. a per-iteration buffer): ordering
	// cannot leak out through it.
	if rng.Pos() <= v.Pos() && v.Pos() < rng.End() {
		return nil, false
	}
	// Appends into a map entry's slice (groups[key] = append(...)) are
	// keyed per iteration — not an ordered accumulation. The ident base
	// restriction above already excludes index expressions.
	return v, true
}

// sliceSortedLater reports whether v is passed to a sort function after
// the range statement in the same function body — the
// collect-then-sort idiom.
func sliceSortedLater(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass.TypesInfo, call) || len(call.Args) == 0 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == v {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// sensitiveCall reports calls that fold per-item state order-
// sensitively or derive seeds.
func sensitiveCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if orderSensitiveCalls[name] {
		return name + " (order-sensitive state fold)", true
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "hash/fnv", "hash/maphash":
			return fn.Pkg().Name() + "." + name + " (seed derivation)", true
		}
	}
	if name == "SplitRNG" || containsFold(name, "seed") {
		return name + " (seed derivation)", true
	}
	// hash.Hash.Write inside a map range is the PR 2 seed-derivation
	// shape: the digest depends on iteration order.
	if name == "Write" && isHashWrite(pass.TypesInfo, call) {
		return "a hash Write (seed derivation)", true
	}
	return "", false
}

func isHashWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	path := NamedTypePath(tv.Type)
	return path != "" && (hasPrefix(path, "hash/") || hasPrefix(path, "hash."))
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// sortKeysFix offers the mechanical sort-before-range rewrite for the
// simple shape `for k := range m` / `for k, v := range m` with a
// string-keyed map ident, in files already importing "sort".
func sortKeysFix(pass *Pass, file *ast.File, rng *ast.RangeStmt) (SuggestedFix, bool) {
	if importName(file, "sort") != "sort" {
		return SuggestedFix{}, false
	}
	mapIdent, ok := ast.Unparen(rng.X).(*ast.Ident)
	if !ok {
		return SuggestedFix{}, false
	}
	keyIdent, ok := rng.Key.(*ast.Ident)
	if !ok || keyIdent.Name == "_" || rng.Tok.String() != ":=" {
		return SuggestedFix{}, false
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return SuggestedFix{}, false
	}
	mt, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return SuggestedFix{}, false
	}
	basic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.String {
		return SuggestedFix{}, false
	}
	keysName := keyIdent.Name + "s"
	valueBind := ""
	if rng.Value != nil {
		if vid, ok := rng.Value.(*ast.Ident); ok && vid.Name != "_" {
			valueBind = "\n" + vid.Name + " := " + mapIdent.Name + "[" + keyIdent.Name + "]"
		}
	}
	// One edit spanning the whole range header keeps the fix trivially
	// non-overlapping: preamble + rewritten header (+ value binding).
	// gofmt settles the indentation after application.
	text := keysName + " := make([]string, 0, len(" + mapIdent.Name + "))\n" +
		"for " + keyIdent.Name + " := range " + mapIdent.Name + " {\n" +
		keysName + " = append(" + keysName + ", " + keyIdent.Name + ")\n}\n" +
		"sort.Strings(" + keysName + ")\n" +
		"for _, " + keyIdent.Name + " := range " + keysName + " {" + valueBind
	edits := []TextEdit{
		{Pos: rng.Pos(), End: rng.Body.Lbrace + 1, NewText: []byte(text)},
	}
	return SuggestedFix{Message: "iterate sorted keys", TextEdits: edits}, true
}
