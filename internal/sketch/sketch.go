// Package sketch implements the two-layer memory/disk structure of §4.1:
// for each resample partition b_Δsk and each delta sample Δs_k, a small
// random "sketch" of c·√n items is held in memory while the full data
// set conceptually lives on HDFS. Random deletions and additions during
// delta maintenance are served sequentially from the sketches; only when
// a sketch is used up does the structure touch "disk" — committing the
// changes and resampling a fresh sketch, charged to the cost metrics.
//
// The paper's sizing argument: when a sample of size n grows to n′, the
// number of items a resample must shed or gain concentrates (Eq. 3)
// within a few σ₀ = √(n(1−n/n′)) < √n of zero, so a sketch of c·√n
// items absorbs almost every iteration's updates without disk I/O (the
// 3-sigma rule — c=3 covers 99.7% of iterations).
package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/simcost"
)

// DefaultC is the default sketch-size constant; 3 matches the paper's
// 3-sigma sizing argument.
const DefaultC = 3.0

// ErrEmpty is returned when an operation needs items and none remain.
var ErrEmpty = errors.New("sketch: no items remain")

// bytesPerItem is the charged size of one float64 record on disk.
const bytesPerItem = 8

// Part is one resample partition b_Δsk: the multiset of items a resample
// drew from delta-generation k. It supports uniform random deletion
// without replacement (served from the in-memory sketch region) and
// random-position insertion. The full multiset is conceptually HDFS-
// resident; only sketch refreshes are charged I/O.
type Part struct {
	items     []float64 // live multiset, randomly shuffled up to sketchEnd
	sketchEnd int       // items[:sketchEnd] is the in-memory sketch region
	c         float64
	rng       *rand.Rand
	metrics   *simcost.Metrics
	refreshes int
}

// NewPart builds a partition over the given items (the slice is copied,
// with c·√n capacity slack so the ±σ₀ < √n adds of a maintenance
// iteration land in place instead of reallocating the backing array).
// c is the sketch constant (DefaultC if <= 0); metrics may be nil.
func NewPart(items []float64, c float64, rng *rand.Rand, metrics *simcost.Metrics) *Part {
	if c <= 0 {
		c = DefaultC
	}
	slack := int(math.Ceil(c*math.Sqrt(float64(len(items))))) + 4
	buf := make([]float64, len(items), len(items)+slack)
	copy(buf, items)
	p := &Part{
		items:   buf,
		c:       c,
		rng:     rng,
		metrics: metrics,
	}
	// The initial sketch rides along with the data that produced the
	// partition (it is in memory already when the resample is built), so
	// no I/O charge here.
	p.shuffleSketch()
	return p
}

func (p *Part) sketchSize() int {
	n := len(p.items)
	if n == 0 {
		return 0
	}
	s := int(math.Ceil(p.c * math.Sqrt(float64(n))))
	if s > n {
		s = n
	}
	return s
}

// shuffleSketch makes items[:sketchSize] a uniform random subset in
// random order by a partial Fisher–Yates pass.
func (p *Part) shuffleSketch() {
	k := p.sketchSize()
	for i := 0; i < k; i++ {
		j := i + p.rng.IntN(len(p.items)-i)
		p.items[i], p.items[j] = p.items[j], p.items[i]
	}
	p.sketchEnd = k
}

// Size returns the number of items currently in the partition.
func (p *Part) Size() int { return len(p.items) }

// Refreshes returns how many disk-layer refreshes have occurred — the
// quantity the sketch exists to minimise.
func (p *Part) Refreshes() int { return p.refreshes }

// DeleteRandom removes and returns one uniformly random item. The draw
// is served from the sketch region; when the sketch is exhausted the
// change set is committed and a new sketch is resampled from "disk",
// charging a seek plus the sketch read.
func (p *Part) DeleteRandom() (float64, error) {
	if len(p.items) == 0 {
		return 0, ErrEmpty
	}
	if p.sketchEnd == 0 {
		p.refresh()
	}
	// Take the first sketch item; keep the remaining sketch contiguous.
	v := p.items[0]
	p.items[0] = p.items[p.sketchEnd-1]
	p.items[p.sketchEnd-1] = p.items[len(p.items)-1]
	p.items = p.items[:len(p.items)-1]
	p.sketchEnd--
	return v, nil
}

// Add inserts an item at a uniformly random live position, keeping
// subsequent DeleteRandom draws uniform even before the next refresh.
func (p *Part) Add(v float64) {
	p.items = append(p.items, v)
	// Swap into a random position; if it lands inside the sketch region
	// it becomes deletable this iteration, matching a true re-shuffle.
	j := p.rng.IntN(len(p.items))
	p.items[len(p.items)-1], p.items[j] = p.items[j], p.items[len(p.items)-1]
}

// refresh commits outstanding changes and draws a fresh sketch from the
// disk layer (§4.1's "commit the changes … resample a new sketch").
func (p *Part) refresh() {
	p.refreshes++
	p.shuffleSketch()
	if p.metrics != nil {
		p.metrics.DiskSeeks.Add(1)
		p.metrics.BytesRead.Add(int64(p.sketchEnd) * bytesPerItem)
		p.metrics.BytesWritten.Add(int64(p.sketchEnd) * bytesPerItem)
	}
}

// EndIteration performs the paper's end-of-iteration bookkeeping: used
// sketch entries are replaced by substituting unused data items reservoir-
// style so the sketch remains a uniform random subset. In this
// representation a partial Fisher–Yates reshuffle of the sketch region
// achieves exactly that distribution; it is memory-only, hence free.
func (p *Part) EndIteration() {
	p.shuffleSketch()
}

// Items returns a copy of the current multiset (test hook; conceptually
// a full disk read, so it charges accordingly).
func (p *Part) Items() []float64 {
	if p.metrics != nil {
		p.metrics.DiskSeeks.Add(1)
		p.metrics.BytesRead.Add(int64(len(p.items)) * bytesPerItem)
	}
	return append([]float64(nil), p.items...)
}

// String describes the part.
func (p *Part) String() string {
	return fmt.Sprintf("part(n=%d, sketch=%d, refreshes=%d)", len(p.items), p.sketchEnd, p.refreshes)
}

// Cache serves with-replacement random draws from a backing data set
// (a delta sample Δs_k) through a prefetched sketch: sketch(Δs_k) in the
// paper. Draw cost is memory-only until the prefetched batch is used up;
// each refill charges one seek plus the batch read.
type Cache struct {
	backing []float64
	buf     []float64
	pos     int
	c       float64
	rng     *rand.Rand
	metrics *simcost.Metrics
	refills int
}

// NewCache builds a cache over backing (not copied; treated as
// immutable). The first sketch is free — the data just arrived in memory
// when the delta sample was drawn.
func NewCache(backing []float64, c float64, rng *rand.Rand, metrics *simcost.Metrics) (*Cache, error) {
	if len(backing) == 0 {
		return nil, ErrEmpty
	}
	if c <= 0 {
		c = DefaultC
	}
	cc := &Cache{backing: backing, c: c, rng: rng, metrics: metrics}
	cc.fill(false)
	return cc, nil
}

func (c *Cache) fill(charge bool) {
	k := int(math.Ceil(c.c * math.Sqrt(float64(len(c.backing)))))
	if k < 1 {
		k = 1
	}
	if cap(c.buf) < k {
		c.buf = make([]float64, k)
	}
	c.buf = c.buf[:k]
	for i := range c.buf {
		c.buf[i] = c.backing[c.rng.IntN(len(c.backing))]
	}
	c.pos = 0
	if charge && c.metrics != nil {
		c.metrics.DiskSeeks.Add(1)
		c.metrics.BytesRead.Add(int64(k) * bytesPerItem)
	}
}

// Next returns one with-replacement random draw from the backing set.
func (c *Cache) Next() float64 {
	if c.pos >= len(c.buf) {
		c.refills++
		c.fill(true)
	}
	v := c.buf[c.pos]
	c.pos++
	return v
}

// Refills returns how many disk-layer refills have occurred.
func (c *Cache) Refills() int { return c.refills }
