package sketch

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/simcost"
)

func seq(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	return xs
}

func TestPartDeleteAllReturnsExactMultiset(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	in := []float64{5, 5, 7, 9, 9, 9, 11}
	p := NewPart(in, 2, rng, nil)
	var out []float64
	for p.Size() > 0 {
		v, err := p.DeleteRandom()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	if _, err := p.DeleteRandom(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	sort.Float64s(out)
	want := append([]float64(nil), in...)
	sort.Float64s(want)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("multiset mismatch: %v vs %v", out, want)
		}
	}
}

func TestPartDeleteIsUniform(t *testing.T) {
	// Deleting one item from {0..9} many times: each item should be the
	// first deletion ≈10% of the time.
	const trials = 5000
	counts := make([]int, 10)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 3))
		p := NewPart(seq(10), DefaultC, rng, nil)
		v, err := p.DeleteRandom()
		if err != nil {
			t.Fatal(err)
		}
		counts[int(v)]++
	}
	want := float64(trials) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("item %d deleted first %d times, want ≈%v", i, c, want)
		}
	}
}

func TestPartSketchAbsorbsSmallUpdates(t *testing.T) {
	// √n-scale deletions must not touch the disk layer when c covers
	// them: n=10000, sketch ≈ 3·100 = 300 ≥ the 150 deletes.
	var m simcost.Metrics
	rng := rand.New(rand.NewPCG(5, 6))
	p := NewPart(seq(10000), DefaultC, rng, &m)
	for i := 0; i < 150; i++ {
		if _, err := p.DeleteRandom(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Refreshes() != 0 {
		t.Fatalf("sketch refreshed %d times for √n-scale updates", p.Refreshes())
	}
	if m.Snapshot().DiskSeeks != 0 {
		t.Fatalf("disk touched: %v", m.Snapshot())
	}
}

func TestPartRefreshChargesIO(t *testing.T) {
	var m simcost.Metrics
	rng := rand.New(rand.NewPCG(7, 8))
	p := NewPart(seq(100), 0.5, rng, &m) // tiny sketch: 5 items
	for i := 0; i < 50; i++ {
		if _, err := p.DeleteRandom(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Refreshes() == 0 {
		t.Fatal("expected refreshes with a tiny sketch")
	}
	s := m.Snapshot()
	if s.DiskSeeks == 0 || s.BytesRead == 0 {
		t.Fatalf("refresh did not charge I/O: %v", s)
	}
}

func TestPartAddThenDeleteConserves(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	p := NewPart(seq(20), DefaultC, rng, nil)
	p.Add(100)
	p.Add(101)
	if p.Size() != 22 {
		t.Fatalf("size = %d", p.Size())
	}
	seen := map[float64]int{}
	for p.Size() > 0 {
		v, _ := p.DeleteRandom()
		seen[v]++
	}
	if seen[100] != 1 || seen[101] != 1 {
		t.Fatalf("added items lost: %v", seen)
	}
	if len(seen) != 22 {
		t.Fatalf("distinct = %d", len(seen))
	}
}

func TestPartEndIterationKeepsMultiset(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	p := NewPart(seq(50), DefaultC, rng, nil)
	for i := 0; i < 10; i++ {
		p.DeleteRandom()
	}
	p.EndIteration()
	if p.Size() != 40 {
		t.Fatalf("size after EndIteration = %d", p.Size())
	}
	items := NewPart(nil, DefaultC, rng, nil) // silence unused warning pattern
	_ = items
	var out []float64
	for p.Size() > 0 {
		v, _ := p.DeleteRandom()
		out = append(out, v)
	}
	if len(out) != 40 {
		t.Fatalf("drained %d", len(out))
	}
}

func TestPartPropertyConservation(t *testing.T) {
	f := func(seed uint64, delsRaw, addsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		n := 30
		p := NewPart(seq(n), 1.5, rng, nil)
		dels := int(delsRaw) % n
		adds := int(addsRaw) % 20
		for i := 0; i < dels; i++ {
			if _, err := p.DeleteRandom(); err != nil {
				return false
			}
		}
		for i := 0; i < adds; i++ {
			p.Add(1000 + float64(i))
		}
		return p.Size() == n-dels+adds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	p := NewPart(nil, DefaultC, rng, nil)
	if p.Size() != 0 {
		t.Fatal("empty part size")
	}
	if _, err := p.DeleteRandom(); !errors.Is(err, ErrEmpty) {
		t.Fatal("delete from empty should error")
	}
	p.Add(1)
	v, err := p.DeleteRandom()
	if err != nil || v != 1 {
		t.Fatalf("delete after add = %v, %v", v, err)
	}
}

func TestCacheDrawsFromBacking(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	backing := seq(100)
	c, err := NewCache(backing, DefaultC, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		v := c.Next()
		if v < 0 || v > 99 || v != math.Trunc(v) {
			t.Fatalf("draw %v not from backing", v)
		}
	}
}

func TestCacheRefillChargesIO(t *testing.T) {
	var m simcost.Metrics
	rng := rand.New(rand.NewPCG(5, 5))
	c, err := NewCache(seq(100), DefaultC, rng, &m)
	if err != nil {
		t.Fatal(err)
	}
	// First sketch is free; drawing beyond it forces charged refills.
	for i := 0; i < 100; i++ {
		c.Next()
	}
	if c.Refills() == 0 {
		t.Fatal("expected refills")
	}
	if m.Snapshot().DiskSeeks == 0 {
		t.Fatal("refill did not charge a seek")
	}
}

func TestCacheUniformity(t *testing.T) {
	counts := make([]int, 10)
	const draws = 20000
	rng := rand.New(rand.NewPCG(6, 7))
	c, err := NewCache(seq(10), DefaultC, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < draws; i++ {
		counts[int(c.Next())]++
	}
	want := float64(draws) / 10
	for i, cnt := range counts {
		if math.Abs(float64(cnt)-want) > 6*math.Sqrt(want) {
			t.Fatalf("value %d drawn %d times, want ≈%v", i, cnt, want)
		}
	}
}

func TestCacheEmptyBacking(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := NewCache(nil, DefaultC, rng, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}
