package plan

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the expression language shared by σ (filter), π/derive
// and γ (group-by) operators: a lexer, a precedence-climbing parser
// producing a small AST, a type checker, and a canonical printer. Every
// failure is a *PosError carrying the zero-based byte offset of the
// offending token, so earld can answer malformed expressions with a 400
// that points at the problem instead of a bare 500.

// PosError is a positioned expression error. Pos is the zero-based byte
// offset into Src of the token the message is about.
type PosError struct {
	Src string
	Pos int
	Msg string
}

func (e *PosError) Error() string {
	return fmt.Sprintf("%s at column %d in %q", e.Msg, e.Pos+1, e.Src)
}

func posErrf(src string, pos int, format string, args ...any) error {
	return &PosError{Src: src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// kind is an expression's static type. Booleans are materialized as
// 0/1 float64 vectors at execution time, but the checker keeps the
// three kinds apart so "v + (key == \"a\")" is rejected up front.
type kind uint8

const (
	kNum kind = iota
	kBool
	kStr
)

func (k kind) String() string {
	switch k {
	case kNum:
		return "number"
	case kBool:
		return "boolean"
	default:
		return "string"
	}
}

// tokKind enumerates the lexer's token types; binary-operator tokens
// double as the AST's operator tags.
type tokKind uint8

const (
	tEOF tokKind = iota
	tNum
	tStr
	tIdent
	tLParen
	tRParen
	tComma
	tPlus
	tMinus
	tStar
	tSlash
	tLt
	tLe
	tGt
	tGe
	tEq
	tNe
	tAndAnd
	tOrOr
	tBang
)

// opText renders an operator token for canonical printing and error
// messages.
func opText(k tokKind) string {
	switch k {
	case tPlus:
		return "+"
	case tMinus:
		return "-"
	case tStar:
		return "*"
	case tSlash:
		return "/"
	case tLt:
		return "<"
	case tLe:
		return "<="
	case tGt:
		return ">"
	case tGe:
		return ">="
	case tEq:
		return "=="
	case tNe:
		return "!="
	case tAndAnd:
		return "&&"
	case tOrOr:
		return "||"
	case tBang:
		return "!"
	default:
		return "?"
	}
}

type token struct {
	kind tokKind
	pos  int
	num  float64 // tNum
	str  string  // tStr literal value / tIdent name
}

func (t token) desc() string {
	switch t.kind {
	case tEOF:
		return "end of expression"
	case tNum:
		return "number " + strconv.FormatFloat(t.num, 'g', -1, 64)
	case tStr:
		return "string " + strconv.Quote(t.str)
	case tIdent:
		return fmt.Sprintf("identifier %q", t.str)
	case tLParen:
		return `"("`
	case tRParen:
		return `")"`
	case tComma:
		return `","`
	default:
		return strconv.Quote(opText(t.kind))
	}
}

// lex tokenizes src. Numbers use strconv.ParseFloat syntax (no sign —
// unary minus is an operator); strings are double-quoted with \" and
// \\ escapes.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || c == '.':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < len(src) && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < len(src) && src[j] >= '0' && src[j] <= '9' {
					for j < len(src) && src[j] >= '0' && src[j] <= '9' {
						j++
					}
					i = j
				}
			}
			v, err := strconv.ParseFloat(src[start:i], 64)
			if err != nil {
				return nil, posErrf(src, start, "bad number %q", src[start:i])
			}
			toks = append(toks, token{kind: tNum, pos: start, num: v})
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			start := i
			for i < len(src) && (src[i] >= 'a' && src[i] <= 'z' || src[i] >= 'A' && src[i] <= 'Z' ||
				src[i] >= '0' && src[i] <= '9' || src[i] == '_') {
				i++
			}
			toks = append(toks, token{kind: tIdent, pos: start, str: src[start:i]})
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) && (src[i+1] == '"' || src[i+1] == '\\') {
					sb.WriteByte(src[i+1])
					i += 2
					continue
				}
				if src[i] == '"' {
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, posErrf(src, start, "unterminated string")
			}
			toks = append(toks, token{kind: tStr, pos: start, str: sb.String()})
		default:
			two := byte(0)
			if i+1 < len(src) {
				two = src[i+1]
			}
			kind := tEOF
			width := 1
			switch {
			case c == '&' && two == '&':
				kind, width = tAndAnd, 2
			case c == '|' && two == '|':
				kind, width = tOrOr, 2
			case c == '<' && two == '=':
				kind, width = tLe, 2
			case c == '>' && two == '=':
				kind, width = tGe, 2
			case c == '=' && two == '=':
				kind, width = tEq, 2
			case c == '!' && two == '=':
				kind, width = tNe, 2
			case c == '<':
				kind = tLt
			case c == '>':
				kind = tGt
			case c == '!':
				kind = tBang
			case c == '+':
				kind = tPlus
			case c == '-':
				kind = tMinus
			case c == '*':
				kind = tStar
			case c == '/':
				kind = tSlash
			case c == '(':
				kind = tLParen
			case c == ')':
				kind = tRParen
			case c == ',':
				kind = tComma
			default:
				return nil, posErrf(src, i, "unexpected character %q", string(c))
			}
			toks = append(toks, token{kind: kind, pos: i})
			i += width
		}
	}
	toks = append(toks, token{kind: tEOF, pos: len(src)})
	return toks, nil
}

// The AST. Nodes remember the source position of their defining token
// for checker errors.
type node interface{ pos() int }

type numLit struct {
	p int
	v float64
}

type strLit struct {
	p int
	s string
}

// varRef is a column reference with the canonical name already applied:
// "v" (the record's numeric value; "value" is an accepted spelling) or
// "key" (the record's group key, FormatKV input only).
type varRef struct {
	p    int
	name string
}

type unaryOp struct {
	p  int
	op tokKind // tMinus or tBang
	x  node
}

type binOp struct {
	p    int
	op   tokKind
	x, y node
}

type callOp struct {
	p    int
	fn   string
	args []node
}

func (n *numLit) pos() int  { return n.p }
func (n *strLit) pos() int  { return n.p }
func (n *varRef) pos() int  { return n.p }
func (n *unaryOp) pos() int { return n.p }
func (n *binOp) pos() int   { return n.p }
func (n *callOp) pos() int  { return n.p }

// fnSpec is one builtin numeric function. All builtins take and return
// numbers; f1/f2 select by arity.
type fnSpec struct {
	arity int
	f1    func(float64) float64
	f2    func(float64, float64) float64
}

var funcs = map[string]fnSpec{
	"abs":   {arity: 1, f1: math.Abs},
	"sqrt":  {arity: 1, f1: math.Sqrt},
	"log":   {arity: 1, f1: math.Log},
	"exp":   {arity: 1, f1: math.Exp},
	"floor": {arity: 1, f1: math.Floor},
	"ceil":  {arity: 1, f1: math.Ceil},
	"min":   {arity: 2, f2: math.Min},
	"max":   {arity: 2, f2: math.Max},
}

// prec returns a binary operator's precedence (0 = not binary). All
// binary operators are left-associative; comparisons do not chain (the
// checker rejects "a < b < c" as a boolean comparand).
func prec(k tokKind) int {
	switch k {
	case tOrOr:
		return 1
	case tAndAnd:
		return 2
	case tLt, tLe, tGt, tGe, tEq, tNe:
		return 3
	case tPlus, tMinus:
		return 4
	case tStar, tSlash:
		return 5
	}
	return 0
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// parseExpr parses one complete expression.
func parseExpr(src string) (node, error) {
	if strings.TrimSpace(src) == "" {
		return nil, posErrf(src, 0, "empty expression")
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	n, err := p.parseBin(1)
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, posErrf(src, t.pos, "unexpected %s", t.desc())
	}
	return n, nil
}

func (p *parser) parseBin(minPrec int) (node, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		pr := prec(t.kind)
		if pr == 0 || pr < minPrec {
			return x, nil
		}
		p.i++
		y, err := p.parseBin(pr + 1)
		if err != nil {
			return nil, err
		}
		x = &binOp{p: t.pos, op: t.kind, x: x, y: y}
	}
}

func (p *parser) parseUnary() (node, error) {
	t := p.peek()
	if t.kind == tMinus || t.kind == tBang {
		p.i++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryOp{p: t.pos, op: t.kind, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	t := p.next()
	switch t.kind {
	case tNum:
		return &numLit{p: t.pos, v: t.num}, nil
	case tStr:
		return &strLit{p: t.pos, s: t.str}, nil
	case tIdent:
		if p.peek().kind == tLParen {
			p.i++ // consume "("
			spec, ok := funcs[t.str]
			if !ok {
				return nil, posErrf(p.src, t.pos, "unknown function %q (have abs, sqrt, log, exp, floor, ceil, min, max)", t.str)
			}
			var args []node
			if p.peek().kind != tRParen {
				for {
					a, err := p.parseBin(1)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind != tComma {
						break
					}
					p.i++
				}
			}
			if c := p.peek(); c.kind != tRParen {
				return nil, posErrf(p.src, c.pos, "expected \")\" after arguments of %q, got %s", t.str, c.desc())
			}
			p.i++
			if len(args) != spec.arity {
				return nil, posErrf(p.src, t.pos, "%s takes %d argument(s), got %d", t.str, spec.arity, len(args))
			}
			return &callOp{p: t.pos, fn: t.str, args: args}, nil
		}
		switch t.str {
		case "v", "value":
			return &varRef{p: t.pos, name: "v"}, nil
		case "key":
			return &varRef{p: t.pos, name: "key"}, nil
		}
		return nil, posErrf(p.src, t.pos, "unknown identifier %q (columns are v, value, key)", t.str)
	case tLParen:
		n, err := p.parseBin(1)
		if err != nil {
			return nil, err
		}
		if c := p.peek(); c.kind != tRParen {
			return nil, posErrf(p.src, c.pos, "expected \")\", got %s", c.desc())
		}
		p.i++
		return n, nil
	default:
		return nil, posErrf(p.src, t.pos, "unexpected %s", t.desc())
	}
}

// checkKind type-checks n and returns its kind.
func checkKind(src string, n node) (kind, error) {
	switch n := n.(type) {
	case *numLit:
		return kNum, nil
	case *strLit:
		return kStr, nil
	case *varRef:
		if n.name == "key" {
			return kStr, nil
		}
		return kNum, nil
	case *unaryOp:
		k, err := checkKind(src, n.x)
		if err != nil {
			return 0, err
		}
		if n.op == tMinus {
			if k != kNum {
				return 0, posErrf(src, n.p, "operator \"-\" needs a number, got %s", k)
			}
			return kNum, nil
		}
		if k != kBool {
			return 0, posErrf(src, n.p, "operator \"!\" needs a boolean, got %s", k)
		}
		return kBool, nil
	case *binOp:
		kx, err := checkKind(src, n.x)
		if err != nil {
			return 0, err
		}
		ky, err := checkKind(src, n.y)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case tPlus, tMinus, tStar, tSlash:
			if kx != kNum || ky != kNum {
				return 0, posErrf(src, n.p, "operator %q needs numbers, got %s and %s", opText(n.op), kx, ky)
			}
			return kNum, nil
		case tLt, tLe, tGt, tGe:
			if kx != kNum || ky != kNum {
				return 0, posErrf(src, n.p, "operator %q compares numbers, got %s and %s (comparisons do not chain)", opText(n.op), kx, ky)
			}
			return kBool, nil
		case tEq, tNe:
			if kx == kNum && ky == kNum {
				return kBool, nil
			}
			if kx == kStr && ky == kStr {
				return kBool, nil
			}
			return 0, posErrf(src, n.p, "operator %q needs two numbers or two strings, got %s and %s", opText(n.op), kx, ky)
		default: // tAndAnd, tOrOr
			if kx != kBool || ky != kBool {
				return 0, posErrf(src, n.p, "operator %q needs booleans, got %s and %s", opText(n.op), kx, ky)
			}
			return kBool, nil
		}
	case *callOp:
		for _, a := range n.args {
			k, err := checkKind(src, a)
			if err != nil {
				return 0, err
			}
			if k != kNum {
				return 0, posErrf(src, a.pos(), "%s takes number arguments, got %s", n.fn, k)
			}
		}
		return kNum, nil
	default:
		return 0, posErrf(src, 0, "internal: unknown node %T", n)
	}
}

// usesKey reports whether any subexpression references the key column.
func usesKey(n node) bool {
	switch n := n.(type) {
	case *varRef:
		return n.name == "key"
	case *unaryOp:
		return usesKey(n.x)
	case *binOp:
		return usesKey(n.x) || usesKey(n.y)
	case *callOp:
		for _, a := range n.args {
			if usesKey(a) {
				return true
			}
		}
	}
	return false
}

// printNode renders n canonically: single spaces around binary
// operators, minimal literal forms, parentheses only where precedence
// requires them (right operands of equal precedence keep parentheses,
// so the printed text re-parses to the identical tree). Two
// expressions that parse to the same tree print to the same text —
// the property serve's dedup/cache keys rely on.
func printNode(sb *strings.Builder, n node, parentPrec int, rightChild bool) {
	switch n := n.(type) {
	case *numLit:
		sb.WriteString(strconv.FormatFloat(n.v, 'g', -1, 64))
	case *strLit:
		quoteStr(sb, n.s)
	case *varRef:
		sb.WriteString(n.name)
	case *unaryOp:
		sb.WriteString(opText(n.op))
		switch n.x.(type) {
		case *numLit, *strLit, *varRef, *callOp:
			printNode(sb, n.x, 0, false)
		default:
			sb.WriteByte('(')
			printNode(sb, n.x, 0, false)
			sb.WriteByte(')')
		}
	case *binOp:
		pr := prec(n.op)
		paren := pr < parentPrec || (pr == parentPrec && rightChild)
		if paren {
			sb.WriteByte('(')
		}
		printNode(sb, n.x, pr, false)
		sb.WriteByte(' ')
		sb.WriteString(opText(n.op))
		sb.WriteByte(' ')
		printNode(sb, n.y, pr, true)
		if paren {
			sb.WriteByte(')')
		}
	case *callOp:
		sb.WriteString(n.fn)
		sb.WriteByte('(')
		for i, a := range n.args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printNode(sb, a, 0, false)
		}
		sb.WriteByte(')')
	}
}

// quoteStr writes s in the lexer's own string syntax — only `\` and
// `"` are escaped, every other byte is raw — so canonical printing
// round-trips arbitrary key bytes exactly (strconv.Quote's \xNN forms
// would not re-lex).
func quoteStr(sb *strings.Builder, s string) {
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' || s[i] == '"' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
}

func printExpr(n node) string {
	var sb strings.Builder
	printNode(&sb, n, 0, false)
	return sb.String()
}
