package plan

// This file is the reference evaluator: a per-record tree walk with
// semantics the vectorized VM (vm.go) must match bit for bit (the fuzz
// target compares the two). Booleans are 0/1; && and || evaluate BOTH
// operands (no short circuit — the vector path evaluates whole columns,
// so the scalar path must agree on NaN propagation and evaluation
// order); NaN behaves per IEEE 754 (comparisons involving NaN are
// false, arithmetic propagates it).

// evalNode evaluates a type-checked non-string subexpression for one
// record. String subexpressions only occur under ==/!= and are handled
// inline there.
func evalNode(n node, key string, v float64) float64 {
	switch n := n.(type) {
	case *numLit:
		return n.v
	case *varRef:
		return v // only "v" type-checks at a numeric position
	case *unaryOp:
		x := evalNode(n.x, key, v)
		if n.op == tMinus {
			return -x
		}
		return b2f(x == 0) // !
	case *binOp:
		if n.op == tEq || n.op == tNe {
			if _, ok := kindOfEq(n); ok {
				sx := evalStr(n.x, key)
				sy := evalStr(n.y, key)
				return b2f((sx == sy) == (n.op == tEq))
			}
		}
		x := evalNode(n.x, key, v)
		y := evalNode(n.y, key, v)
		switch n.op {
		case tPlus:
			return x + y
		case tMinus:
			return x - y
		case tStar:
			return x * y
		case tSlash:
			return x / y
		case tLt:
			return b2f(x < y)
		case tLe:
			return b2f(x <= y)
		case tGt:
			return b2f(x > y)
		case tGe:
			return b2f(x >= y)
		case tEq:
			return b2f(x == y)
		case tNe:
			return b2f(x != y)
		case tAndAnd:
			return b2f(x != 0 && y != 0)
		default: // tOrOr
			return b2f(x != 0 || y != 0)
		}
	case *callOp:
		spec := funcs[n.fn]
		if spec.arity == 1 {
			return spec.f1(evalNode(n.args[0], key, v))
		}
		return spec.f2(evalNode(n.args[0], key, v), evalNode(n.args[1], key, v))
	default:
		return 0 // unreachable on a checked AST
	}
}

// kindOfEq reports whether an ==/!= node compares strings (checked ASTs
// guarantee both operands agree).
func kindOfEq(n *binOp) (node, bool) {
	if isStrNode(n.x) || isStrNode(n.y) {
		return n.x, true
	}
	return nil, false
}

func isStrNode(n node) bool {
	switch n := n.(type) {
	case *strLit:
		return true
	case *varRef:
		return n.name == "key"
	}
	return false
}

// evalStr evaluates a string subexpression (a literal or the key
// column).
func evalStr(n node, key string) string {
	if s, ok := n.(*strLit); ok {
		return s.s
	}
	return key // *varRef "key" — the only other string node
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
