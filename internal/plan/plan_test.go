package plan

import (
	"encoding/json"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/colscan"
)

func mustNormalize(t *testing.T, s Spec) Spec {
	t.Helper()
	n, err := s.Normalize()
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", s, err)
	}
	return n
}

func TestNormalizeCanonicalizesEquivalentSpecs(t *testing.T) {
	a := mustNormalize(t, Spec{Path: " /data ", Stats: []string{"P50"}, Filter: "v>1&&key==\"a\""})
	b := mustNormalize(t, Spec{Path: "/data", Stats: []string{"quantile-0.5"}, Filter: "(v) > 1.00 && (key == \"a\")"})
	if a.Key() != b.Key() {
		t.Fatalf("equivalent specs key differently:\n  %s\n  %s", a.Key(), b.Key())
	}
	if a.Filter != `v > 1 && key == "a"` {
		t.Fatalf("canonical filter = %q", a.Filter)
	}
	if a.Stats[0] != "quantile-0.5" {
		t.Fatalf("canonical stat = %q", a.Stats[0])
	}
	if a.Sigma != 0.05 {
		t.Fatalf("default sigma = %g", a.Sigma)
	}
}

func TestNormalizeDefaultsAndErrors(t *testing.T) {
	if s := mustNormalize(t, Spec{Path: "/d"}); len(s.Stats) != 1 || s.Stats[0] != "mean" {
		t.Fatalf("default stats = %v", s.Stats)
	}
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{}, "path is required"},
		{Spec{Path: "/d", Stats: []string{"bogus"}}, "bogus"},
		{Spec{Path: "/d", Stats: []string{"p50", "q0.5"}}, "duplicate statistic"},
		{Spec{Path: "/d", Filter: "v +"}, "unexpected end of expression"},
		{Spec{Path: "/d", Filter: "v + 1"}, "filter must be a boolean"},
		{Spec{Path: "/d", Derive: "v > 1"}, "derive must be a number"},
		{Spec{Path: "/d", GroupBy: "v > 1"}, "group-by must be a number"},
		{Spec{Path: "/d", GroupBy: "key", Stats: []string{"mean", "p95"}}, "single statistic"},
		{Spec{Path: "/d", Sampler: "mid-map"}, "unknown sampler"},
		{Spec{Path: "/d", Sigma: -1}, "sigma must be positive"},
		{Spec{Path: "/d", Filter: "w > 1"}, "unknown identifier"},
		{Spec{Path: "/d", Filter: "frob(v) > 1"}, "unknown function"},
		{Spec{Path: "/d", Filter: "min(v) > 1"}, "takes 2 argument"},
		{Spec{Path: "/d", Filter: `key > "a"`}, "compares numbers"},
		{Spec{Path: "/d", Filter: "1 < 2 < 3"}, "comparisons do not chain"},
	}
	for _, c := range cases {
		_, err := c.spec.Normalize()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Normalize(%+v) err = %v, want containing %q", c.spec, err, c.want)
		}
	}
}

func TestPositionedErrors(t *testing.T) {
	_, err := Spec{Path: "/d", Filter: "v > )"}.Normalize()
	var pe *PosError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PosError", err)
	}
	if pe.Pos != 4 {
		t.Fatalf("Pos = %d, want 4 (%v)", pe.Pos, err)
	}
	if !strings.Contains(err.Error(), "column 5") {
		t.Fatalf("message lacks column: %v", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := mustNormalize(t, Spec{
		Path: "/d", Stats: []string{"mean", "p95"}, Filter: "v > 0", Derive: "v * 2",
		Sigma: 0.1, Sampler: "post-map", Seed: 7, Parallelism: 2,
	})
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != s.Key() {
		t.Fatalf("JSON round trip changed key:\n  %s\n  %s", s.Key(), back.Key())
	}
}

func TestCompileDegenerate(t *testing.T) {
	for _, s := range []Spec{
		{Path: "/d"},
		{Path: "/d", GroupBy: "key"},
	} {
		p, err := mustNormalize(t, s).Compile()
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			t.Fatalf("degenerate spec %+v compiled to non-nil program", s)
		}
	}
}

func TestProgramFormatsAndKeyed(t *testing.T) {
	cases := []struct {
		spec   Spec
		format colscan.Format
		keyed  bool
	}{
		{Spec{Path: "/d", Filter: "v > 1"}, colscan.FormatNumeric, false},
		{Spec{Path: "/d", Filter: `key == "a"`}, colscan.FormatKV, false},
		{Spec{Path: "/d", Filter: "v > 1", GroupBy: "key"}, colscan.FormatKV, true},
		{Spec{Path: "/d", GroupBy: "floor(v / 10)"}, colscan.FormatNumeric, true},
	}
	for _, c := range cases {
		p, err := mustNormalize(t, c.spec).Compile()
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			t.Fatalf("spec %+v compiled to nil", c.spec)
		}
		if p.InputFormat() != c.format || p.Keyed() != c.keyed {
			t.Errorf("spec %+v: format=%v keyed=%v, want %v/%v",
				c.spec, p.InputFormat(), p.Keyed(), c.format, c.keyed)
		}
	}
}

func TestApplyFilterDeriveGroup(t *testing.T) {
	spec := mustNormalize(t, Spec{Path: "/d", Stats: []string{"mean"},
		Filter: "v >= 10 && v < 30", Derive: "v * 2 + 1", GroupBy: "floor(v / 10)"})
	p, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	in := &colscan.Cols{Vals: []float64{5, 10, 15, 25, 30, 12}}
	var out colscan.Cols
	kept, err := p.Apply(sc, in, &out, false)
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []float64{21, 31, 51, 25}
	wantKeys := []string{"1", "1", "2", "1"}
	if kept != 4 || len(out.Vals) != 4 || len(out.Keys) != 4 {
		t.Fatalf("kept=%d out=%v keys=%v", kept, out.Vals, out.Keys)
	}
	for i := range wantVals {
		if out.Vals[i] != wantVals[i] || out.Keys[i] != wantKeys[i] {
			t.Fatalf("record %d = (%q, %g), want (%q, %g)", i, out.Keys[i], out.Vals[i], wantKeys[i], wantVals[i])
		}
	}
	// The reference path must agree record for record.
	j := 0
	for _, v := range in.Vals {
		keep, key, val, err := p.EvalRecord("", v)
		if err != nil {
			t.Fatal(err)
		}
		if wantKeep := v >= 10 && v < 30; keep != wantKeep {
			t.Fatalf("EvalRecord(%g) keep = %v, want %v", v, keep, wantKeep)
		}
		if keep {
			if val != out.Vals[j] || key != out.Keys[j] {
				t.Fatalf("EvalRecord(%g) = (%q, %g), Apply gave (%q, %g)", v, key, val, out.Keys[j], out.Vals[j])
			}
			j++
		}
	}
}

func TestApplyPrefilteredSkipsSigma(t *testing.T) {
	p, err := mustNormalize(t, Spec{Path: "/d", Filter: "v > 100"}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	in := &colscan.Cols{Vals: []float64{1, 2, 3}}
	var out colscan.Cols
	kept, err := p.Apply(NewScratch(), in, &out, true)
	if err != nil || kept != 3 {
		t.Fatalf("prefiltered Apply kept %d (%v), want all 3", kept, err)
	}
}

// stringReaderAt adapts a string to the colscan.ReaderAt surface.
type stringReaderAt string

func (s stringReaderAt) ReadAt(path string, off int64, p []byte) (int, error) {
	n := copy(p, string(s)[off:])
	return n, nil
}

func TestKeepBlockMatchesEvalRecord(t *testing.T) {
	p, err := mustNormalize(t, Spec{Path: "/d", Filter: `key == "a" && v > 2`}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	recs := []struct {
		k string
		v float64
	}{{"a", 1}, {"a", 3}, {"b", 4}, {"a", 5}, {"b", 1}}
	var buf strings.Builder
	for _, r := range recs {
		buf.WriteString(r.k + "\t" + strconv.FormatFloat(r.v, 'g', -1, 64) + "\n")
	}
	blk, err := colscan.Decode(stringReaderAt(buf.String()), "/d",
		int64(buf.Len()), 0, int64(buf.Len()), colscan.FormatKV)
	if err != nil {
		t.Fatal(err)
	}
	got := p.KeepBlock(NewScratch(), blk, nil)
	var want []int32
	for i, r := range recs {
		keep, _, _, err := p.EvalRecord(r.k, r.v)
		if err != nil {
			t.Fatal(err)
		}
		if keep {
			want = append(want, int32(i))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("KeepBlock = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("KeepBlock = %v, want %v", got, want)
		}
	}
}

func TestNonFiniteDeriveFailsAsBadRecord(t *testing.T) {
	p, err := mustNormalize(t, Spec{Path: "/d", Derive: "1 / v"}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	in := &colscan.Cols{Vals: []float64{2, 0}}
	var out colscan.Cols
	if _, err := p.Apply(NewScratch(), in, &out, false); !errors.Is(err, colscan.ErrBadRecord) {
		t.Fatalf("Apply err = %v, want ErrBadRecord", err)
	}
	if _, _, _, err := p.EvalRecord("", 0); !errors.Is(err, colscan.ErrBadRecord) {
		t.Fatalf("EvalRecord err = %v, want ErrBadRecord", err)
	}
}

func TestNaNFilterSemantics(t *testing.T) {
	// Comparisons involving NaN are false: "v/v > -1" must drop the
	// v=0 record on both paths.
	p, err := mustNormalize(t, Spec{Path: "/d", Filter: "v / v > -1"}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	in := &colscan.Cols{Vals: []float64{0, 2}}
	var out colscan.Cols
	kept, err := p.Apply(NewScratch(), in, &out, false)
	if err != nil || kept != 1 || out.Vals[0] != 2 {
		t.Fatalf("Apply kept=%d vals=%v err=%v", kept, out.Vals, err)
	}
	keep, _, _, err := p.EvalRecord("", 0)
	if err != nil || keep {
		t.Fatalf("EvalRecord(0) keep=%v err=%v", keep, err)
	}
}

func TestCanonicalPrintRoundTrip(t *testing.T) {
	cases := []string{
		"v*2+1",
		"-(v+1)*2",
		"v - (1 - 2) - 3",
		"min(v, max(1, v-2))",
		"!(v > 1) || v == 2 && v != 3",
		"abs(-v) / (v + 1e-9)",
	}
	for _, src := range cases {
		n1, err := parseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		p1 := printExpr(n1)
		n2, err := parseExpr(p1)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", p1, src, err)
		}
		if p2 := printExpr(n2); p2 != p1 {
			t.Fatalf("print not canonical: %q -> %q -> %q", src, p1, p2)
		}
		// Semantics preserved across the round trip.
		for _, v := range []float64{-2, 0, 1, 2.5, 7} {
			a, b := evalNode(n1, "", v), evalNode(n2, "", v)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%q: eval diverged after print (%g vs %g at v=%g)", src, a, b, v)
			}
		}
	}
}
