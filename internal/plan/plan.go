// Package plan is EARL's query-plan layer: a small relational algebra —
// σ (filter predicates over the parsed columns), π/derive (an
// arithmetic expression producing the analyzed value), γ (a group-by
// key expression) and aggregate (the jobs.Numeric statistic set) —
// compiled down onto the unified sampling engine.
//
// Spec is the one canonical, JSON-serializable query description shared
// verbatim by the public earl builder, earlctl's flags and earld's HTTP
// API; Normalize is the one shared validation/canonicalization path, so
// the front ends cannot drift. Compile turns a normalized Spec into a
// Program: vectorized kernels (vm.go) that filter, derive and label
// whole decoded column batches, plus a per-record reference evaluator
// (eval.go) for the exact fall-back paths — the two are fuzz-checked
// bit-identical.
//
// Execution semantics, chosen once here for every front end:
//
//   - Pushdown: the filter is applied before sampling (filter-then-
//     sample), not after. SSABE's pilot therefore sees the effective
//     post-filter N, sample-size planning and the MaxSampleFraction cap
//     are relative to the filtered subpopulation, and the reported
//     confidence intervals are for statistics OF THAT SUBPOPULATION
//     (sum/count estimate the subpopulation's total/cardinality).
//   - Columns: v (alias value) is the record's numeric value; key is
//     the record's group key. Referencing key anywhere — or grouping by
//     it — puts the plan on "key\tvalue" (FormatKV) input; otherwise
//     input is one number per line.
//   - derive and the group-by expression are evaluated over the RAW
//     record (SQL's "SELECT agg(derive) ... WHERE f GROUP BY g"); a
//     numeric group-by expression labels each group with the canonical
//     decimal rendering of its value.
//   - Booleans are 0/1; && and || evaluate both operands (no short
//     circuit); comparisons involving NaN are false and arithmetic
//     propagates NaN per IEEE 754. A non-finite derive or group-by
//     RESULT fails the record as a bad record (wrap the operand in a
//     filter — "v != 0" before "1/v" — to avoid it); non-finite
//     intermediate values are fine.
package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/colscan"
	"repro/internal/jobs"
)

// Spec is the canonical plan description. Stats, Filter, Derive and
// GroupBy define the algebra; the remaining fields are the execution
// knobs front ends exchange over the wire. The zero value of every
// field means "default"; Normalize canonicalizes a spec so that two
// specs describing the same query serialize — and cache/dedup-key —
// identically.
type Spec struct {
	Path    string   `json:"path"`
	Stats   []string `json:"stats,omitempty"`  // statistic names (jobs.ByName); ["mean"] if empty
	Filter  string   `json:"filter,omitempty"` // σ: boolean expression over v/key
	Derive  string   `json:"derive,omitempty"` // π: numeric expression replacing v
	GroupBy string   `json:"by,omitempty"`     // γ: "key" or a numeric expression

	Sigma       float64 `json:"sigma,omitempty"`
	Sampler     string  `json:"sampler,omitempty"` // "", "pre-map", "post-map"
	Seed        uint64  `json:"seed,omitempty"`
	Parallelism int     `json:"parallelism,omitempty"`
}

// Normalize validates s and returns its canonical form: statistic names
// lower-cased, resolved and deduplicated; expressions re-printed from
// their parse trees (so "v>1" and "(v) > 1.0" normalize to the same
// text); defaults applied. Expression errors are *PosError with the
// offending column.
func (s Spec) Normalize() (Spec, error) {
	if strings.TrimSpace(s.Path) == "" {
		return s, fmt.Errorf("plan: path is required")
	}
	s.Path = strings.TrimSpace(s.Path)
	if len(s.Stats) == 0 {
		s.Stats = []string{"mean"}
	} else {
		s.Stats = append([]string(nil), s.Stats...)
	}
	seen := make(map[string]bool, len(s.Stats))
	for i, name := range s.Stats {
		job, err := jobs.ByName(strings.ToLower(strings.TrimSpace(name)))
		if err != nil {
			return s, fmt.Errorf("plan: %w", err)
		}
		s.Stats[i] = job.Name
		if seen[job.Name] {
			return s, fmt.Errorf("plan: duplicate statistic %q", job.Name)
		}
		seen[job.Name] = true
	}
	var err error
	if s.Filter = strings.TrimSpace(s.Filter); s.Filter != "" {
		if s.Filter, err = canonicalize(s.Filter, kBool, "filter"); err != nil {
			return s, fmt.Errorf("plan: filter: %w", err)
		}
	}
	if s.Derive = strings.TrimSpace(s.Derive); s.Derive != "" {
		if s.Derive, err = canonicalize(s.Derive, kNum, "derive"); err != nil {
			return s, fmt.Errorf("plan: derive: %w", err)
		}
	}
	if s.GroupBy = strings.TrimSpace(s.GroupBy); s.GroupBy != "" && s.GroupBy != "key" {
		if s.GroupBy, err = canonicalize(s.GroupBy, kNum, "group-by"); err != nil {
			return s, fmt.Errorf("plan: group-by: %w", err)
		}
	}
	if s.GroupBy != "" && len(s.Stats) != 1 {
		return s, fmt.Errorf("plan: grouped queries take a single statistic, got %d", len(s.Stats))
	}
	switch s.Sampler {
	case "":
		s.Sampler = "pre-map" // the engine default, made explicit so keys match
	case "pre-map", "post-map":
	default:
		return s, fmt.Errorf("plan: unknown sampler %q (want pre-map or post-map)", s.Sampler)
	}
	if s.Sigma < 0 {
		return s, fmt.Errorf("plan: sigma must be positive, got %g", s.Sigma)
	}
	if s.Sigma == 0 {
		s.Sigma = 0.05
	}
	if s.Parallelism < 0 {
		s.Parallelism = 0
	}
	return s, nil
}

// canonicalize parses src, checks it against want and re-prints the
// tree canonically.
func canonicalize(src string, want kind, what string) (string, error) {
	c, err := compileExpr(src, want, what)
	if err != nil {
		return "", err
	}
	return printExpr(c.root), nil
}

// Key is the canonical identity of a normalized spec — what serve's
// dedup registry and result cache key on. Two specs that Normalize to
// the same value answer the same query.
func (s Spec) Key() string {
	return fmt.Sprintf("%s|%s|f=%s|d=%s|by=%s|σ=%g|%s|seed=%d|par=%d",
		strings.Join(s.Stats, "+"), s.Path, s.Filter, s.Derive, s.GroupBy,
		s.Sigma, s.Sampler, s.Seed, s.Parallelism)
}

// JobSet resolves the spec's statistics (call on a normalized spec).
func (s Spec) JobSet() ([]jobs.Numeric, error) {
	set := make([]jobs.Numeric, len(s.Stats))
	for i, name := range s.Stats {
		job, err := jobs.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		set[i] = job
	}
	return set, nil
}

// Program is a compiled plan: the vectorized filter/derive/group
// kernels a run pushes into its sampling sources. A Program is
// immutable and shared across the run's mappers; all mutable evaluation
// state lives in a per-source Scratch.
type Program struct {
	filter   *compiled // nil: keep every record
	derive   *compiled // nil: analyze v itself
	group    *compiled // nil unless grouping by an expression
	groupKey bool      // γ is the record key verbatim
	format   colscan.Format
}

// Compile builds the Program of a normalized spec. A degenerate plan —
// no filter, no derive, and a group-by the legacy grouped route already
// implements ("" or "key") — compiles to a nil Program: callers take
// the untransformed legacy path, which pins degenerate plans
// bit-identical to the historical entry points.
func (s Spec) Compile() (*Program, error) {
	if s.Filter == "" && s.Derive == "" && (s.GroupBy == "" || s.GroupBy == "key") {
		return nil, nil
	}
	p := &Program{}
	var err error
	if s.Filter != "" {
		if p.filter, err = compileExpr(s.Filter, kBool, "filter"); err != nil {
			return nil, fmt.Errorf("plan: filter: %w", err)
		}
	}
	if s.Derive != "" {
		if p.derive, err = compileExpr(s.Derive, kNum, "derive"); err != nil {
			return nil, fmt.Errorf("plan: derive: %w", err)
		}
	}
	switch {
	case s.GroupBy == "key":
		p.groupKey = true
	case s.GroupBy != "":
		if p.group, err = compileExpr(s.GroupBy, kNum, "group-by"); err != nil {
			return nil, fmt.Errorf("plan: group-by: %w", err)
		}
	}
	p.format = colscan.FormatNumeric
	if p.groupKey ||
		(p.filter != nil && p.filter.usesKey) ||
		(p.derive != nil && p.derive.usesKey) ||
		(p.group != nil && p.group.usesKey) {
		p.format = colscan.FormatKV
	}
	return p, nil
}

// InputFormat is the columnar format the plan's input records decode
// under (FormatKV as soon as any expression or the group-by reads the
// key column).
func (p *Program) InputFormat() colscan.Format { return p.format }

// Keyed reports whether transformed batches carry group keys (the run
// routes on the grouped path).
func (p *Program) Keyed() bool { return p.groupKey || p.group != nil }

// HasFilter reports whether the plan filters records (σ present).
func (p *Program) HasFilter() bool { return p.filter != nil }

// Scratch is the per-source mutable evaluation state of a Program:
// vector registers, the kept-index list, and the group-label intern
// table. One Scratch serves one drawing goroutine at a time.
type Scratch struct {
	regs   [][]float64
	keep   []int32
	keyCol []string
	labels map[float64]string
}

// NewScratch builds evaluation state for one source.
func NewScratch() *Scratch {
	return &Scratch{labels: make(map[float64]string)}
}

// grab returns nregs registers of length n, reusing capacity.
func (sc *Scratch) grab(nregs, n int) [][]float64 {
	for len(sc.regs) < nregs {
		sc.regs = append(sc.regs, nil)
	}
	for i := 0; i < nregs; i++ {
		if cap(sc.regs[i]) < n {
			sc.regs[i] = make([]float64, n)
		} else {
			sc.regs[i] = sc.regs[i][:n]
		}
	}
	return sc.regs[:nregs]
}

// Apply evaluates the plan over one raw batch, appending the surviving
// records — derived value, plus group label when the plan is keyed —
// to out, and reports how many survived. prefiltered marks batches
// whose σ was already applied upstream (a pool filled through
// KeepBlock), so only π/γ run. Non-finite derive or group results fail
// with colscan.ErrBadRecord wrapped.
//
//earl:hotpath
func (p *Program) Apply(sc *Scratch, in *colscan.Cols, out *colscan.Cols, prefiltered bool) (int, error) {
	n := in.Len()
	if n == 0 {
		return 0, nil
	}
	keep := sc.keep[:0]
	if p.filter != nil && !prefiltered {
		fv := p.filter.exec(sc, in.Vals, in.Keys)
		for i, x := range fv {
			if x != 0 {
				keep = append(keep, int32(i))
			}
		}
	} else {
		for i := 0; i < n; i++ {
			keep = append(keep, int32(i))
		}
	}
	sc.keep = keep
	if len(keep) == 0 {
		return 0, nil
	}
	if p.derive != nil {
		dv := p.derive.exec(sc, in.Vals, in.Keys)
		for _, i := range keep {
			x := dv[i]
			if !finite(x) {
				return 0, badResultErr("derive", p.derive.src, in, int(i), x)
			}
			out.Vals = append(out.Vals, x)
		}
	} else {
		for _, i := range keep {
			out.Vals = append(out.Vals, in.Vals[i])
		}
	}
	switch {
	case p.groupKey:
		for _, i := range keep {
			out.Keys = append(out.Keys, in.Keys[i])
		}
	case p.group != nil:
		gv := p.group.exec(sc, in.Vals, in.Keys)
		for _, i := range keep {
			x := gv[i]
			if !finite(x) {
				return 0, badResultErr("group-by", p.group.src, in, int(i), x)
			}
			lbl, ok := sc.labels[x]
			if !ok {
				lbl = strconv.FormatFloat(x, 'g', -1, 64)
				sc.labels[x] = lbl
			}
			out.Keys = append(out.Keys, lbl)
		}
	}
	return len(keep), nil
}

// KeepBlock evaluates σ over one decoded block's raw columns and
// appends the indices of surviving records to dst — the pushdown hook
// the post-map pool fill uses so a cached decoded block is filtered
// without re-decode (and without ever mutating the shared block).
//
//earl:hotpath
func (p *Program) KeepBlock(sc *Scratch, b *colscan.Block, dst []int32) []int32 {
	vals := b.Values()
	var keys []string
	if p.filter.usesKey {
		sc.keyCol = b.AppendKeys(sc.keyCol[:0])
		keys = sc.keyCol
	}
	fv := p.filter.exec(sc, vals, keys)
	for i, x := range fv {
		if x != 0 {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// EvalRecord applies the plan to one raw record — the per-record
// reference path (exact fall-backs, pilots on the per-record route).
// Semantics match Apply bit for bit.
func (p *Program) EvalRecord(key string, v float64) (keep bool, outKey string, outVal float64, err error) {
	if p.filter != nil && p.filter.evalOne(key, v) == 0 {
		return false, "", 0, nil
	}
	outVal = v
	if p.derive != nil {
		outVal = p.derive.evalOne(key, v)
		if !finite(outVal) {
			return false, "", 0, fmt.Errorf("plan: derive %q produced non-finite %g (v=%g): %w",
				p.derive.src, outVal, v, colscan.ErrBadRecord)
		}
	}
	switch {
	case p.groupKey:
		outKey = key
	case p.group != nil:
		g := p.group.evalOne(key, v)
		if !finite(g) {
			return false, "", 0, fmt.Errorf("plan: group-by %q produced non-finite %g (v=%g): %w",
				p.group.src, g, v, colscan.ErrBadRecord)
		}
		outKey = strconv.FormatFloat(g, 'g', -1, 64)
	}
	return true, outKey, outVal, nil
}

// EvalLine parses one raw record line under the plan's input format and
// applies the plan — the line-at-a-time reference path.
func (p *Program) EvalLine(line string) (keep bool, outKey string, outVal float64, err error) {
	var k string
	var v float64
	if p.format == colscan.FormatKV {
		k, v, err = colscan.ParseKVString(line)
	} else {
		v, err = colscan.ParseValueString(line)
	}
	if err != nil {
		return false, "", 0, err
	}
	return p.EvalRecord(k, v)
}

func finite(x float64) bool {
	// x-x is 0 for finite x and NaN for ±Inf/NaN.
	return x-x == 0
}

// badResultErr renders the non-finite-result failure for the batch
// path, quoting the offending raw record.
func badResultErr(what, src string, in *colscan.Cols, i int, x float64) error {
	rec := strconv.FormatFloat(in.Vals[i], 'g', -1, 64)
	if i < len(in.Keys) {
		rec = in.Keys[i] + "\t" + rec
	}
	return fmt.Errorf("plan: %s %q produced non-finite %g (record %s): %w",
		what, src, x, colscan.Quote(rec), colscan.ErrBadRecord)
}
