package plan

// This file compiles a checked AST into a linear register program
// executed over whole columns — the vectorized half of the expression
// language. Registers are []float64 vectors of the batch length, the
// register index of every instruction is fixed at compile time (stack
// depth), and each opcode is one tight loop over the column, so a
// cached decoded block is filtered with a handful of sequential passes
// instead of a tree walk per record. Semantics are bit-identical to
// eval.go's reference walk (same float64 operations in the same order);
// the FuzzExprEval target holds the two to that contract.

type op uint8

const (
	opConst op = iota // dst[i] = c
	opLoadV           // dst[i] = vals[i]
	opStrEq           // dst[i] = keys[i] == s
	opStrNe           // dst[i] = keys[i] != s
	opTrue            // dst[i] = c (a compile-time-known string comparison)
	opNeg             // dst[i] = -a[i]
	opNot             // dst[i] = a[i] == 0
	opAdd
	opSub
	opMul
	opDiv
	opLt
	opLe
	opGt
	opGe
	opEqNum
	opNeNum
	opAnd
	opOr
	opCall1 // dst[i] = f1(a[i])
	opCall2 // dst[i] = f2(a[i], b[i])
)

type instr struct {
	op        op
	c         float64 // opConst / opTrue
	s         string  // opStrEq / opStrNe literal
	f1        func(float64) float64
	f2        func(float64, float64) float64
	dst, a, b int
}

// compiled is one executable expression: the register program, the
// register count it needs, the checked AST (for the reference walk and
// canonical printing) and whether it reads the key column.
type compiled struct {
	src     string
	code    []instr
	nregs   int
	root    node
	usesKey bool
}

// compileExpr parses, checks and compiles src, requiring the given
// result kind.
func compileExpr(src string, want kind, what string) (*compiled, error) {
	root, err := parseExpr(src)
	if err != nil {
		return nil, err
	}
	k, err := checkKind(src, root)
	if err != nil {
		return nil, err
	}
	if k != want {
		return nil, posErrf(src, root.pos(), "%s must be a %s expression, got %s", what, want, k)
	}
	c := &compiled{src: src, root: root, usesKey: usesKey(root)}
	depth := c.emit(root, 0)
	if depth > c.nregs {
		c.nregs = depth
	}
	return c, nil
}

// emit appends the instructions computing n into register `depth`,
// returning the stack depth after the push. Register pressure equals
// expression depth, so nregs stays tiny.
func (c *compiled) emit(n node, depth int) int {
	grow := func(d int) {
		if d > c.nregs {
			c.nregs = d
		}
	}
	switch n := n.(type) {
	case *numLit:
		c.code = append(c.code, instr{op: opConst, c: n.v, dst: depth})
	case *varRef: // "v"; "key" never reaches a vector slot directly
		c.code = append(c.code, instr{op: opLoadV, dst: depth})
	case *unaryOp:
		c.emit(n.x, depth)
		o := opNeg
		if n.op == tBang {
			o = opNot
		}
		c.code = append(c.code, instr{op: o, dst: depth, a: depth})
	case *binOp:
		if n.op == tEq || n.op == tNe {
			if _, ok := kindOfEq(n); ok {
				c.emitStrCmp(n, depth)
				break
			}
		}
		c.emit(n.x, depth)
		c.emit(n.y, depth+1)
		grow(depth + 2)
		var o op
		switch n.op {
		case tPlus:
			o = opAdd
		case tMinus:
			o = opSub
		case tStar:
			o = opMul
		case tSlash:
			o = opDiv
		case tLt:
			o = opLt
		case tLe:
			o = opLe
		case tGt:
			o = opGt
		case tGe:
			o = opGe
		case tEq:
			o = opEqNum
		case tNe:
			o = opNeNum
		case tAndAnd:
			o = opAnd
		default:
			o = opOr
		}
		c.code = append(c.code, instr{op: o, dst: depth, a: depth, b: depth + 1})
	case *callOp:
		spec := funcs[n.fn]
		if spec.arity == 1 {
			c.emit(n.args[0], depth)
			c.code = append(c.code, instr{op: opCall1, f1: spec.f1, dst: depth, a: depth})
		} else {
			c.emit(n.args[0], depth)
			c.emit(n.args[1], depth+1)
			grow(depth + 2)
			c.code = append(c.code, instr{op: opCall2, f2: spec.f2, dst: depth, a: depth, b: depth + 1})
		}
	}
	grow(depth + 1)
	return depth + 1
}

// emitStrCmp compiles a string ==/!=. Literal-vs-literal and
// key-vs-key comparisons are compile-time constants; the mixed forms
// become one key-column scan.
func (c *compiled) emitStrCmp(n *binOp, depth int) {
	xs, xlit := n.x.(*strLit)
	ys, ylit := n.y.(*strLit)
	eq := n.op == tEq
	switch {
	case xlit && ylit:
		c.code = append(c.code, instr{op: opTrue, c: b2f((xs.s == ys.s) == eq), dst: depth})
	case !xlit && !ylit: // key == key
		c.code = append(c.code, instr{op: opTrue, c: b2f(eq), dst: depth})
	default:
		lit := ""
		if xlit {
			lit = xs.s
		} else {
			lit = ys.s
		}
		o := opStrEq
		if !eq {
			o = opStrNe
		}
		c.code = append(c.code, instr{op: o, s: lit, dst: depth})
	}
}

// exec runs the program over one batch and returns the result vector
// (register 0, valid until the scratch's next exec). keys may be nil
// when the program does not read the key column.
//
//earl:hotpath
func (c *compiled) exec(sc *Scratch, vals []float64, keys []string) []float64 {
	regs := sc.grab(c.nregs, len(vals))
	for _, in := range c.code {
		d := regs[in.dst]
		switch in.op {
		case opConst, opTrue:
			for i := range d {
				d[i] = in.c
			}
		case opLoadV:
			copy(d, vals)
		case opStrEq:
			for i := range d {
				d[i] = b2f(keys[i] == in.s)
			}
		case opStrNe:
			for i := range d {
				d[i] = b2f(keys[i] != in.s)
			}
		case opNeg:
			a := regs[in.a]
			for i := range d {
				d[i] = -a[i]
			}
		case opNot:
			a := regs[in.a]
			for i := range d {
				d[i] = b2f(a[i] == 0)
			}
		case opAdd:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = a[i] + b[i]
			}
		case opSub:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = a[i] - b[i]
			}
		case opMul:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = a[i] * b[i]
			}
		case opDiv:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = a[i] / b[i]
			}
		case opLt:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = b2f(a[i] < b[i])
			}
		case opLe:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = b2f(a[i] <= b[i])
			}
		case opGt:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = b2f(a[i] > b[i])
			}
		case opGe:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = b2f(a[i] >= b[i])
			}
		case opEqNum:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = b2f(a[i] == b[i])
			}
		case opNeNum:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = b2f(a[i] != b[i])
			}
		case opAnd:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = b2f(a[i] != 0 && b[i] != 0)
			}
		case opOr:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = b2f(a[i] != 0 || b[i] != 0)
			}
		case opCall1:
			a := regs[in.a]
			for i := range d {
				d[i] = in.f1(a[i])
			}
		case opCall2:
			a, b := regs[in.a], regs[in.b]
			for i := range d {
				d[i] = in.f2(a[i], b[i])
			}
		}
	}
	return regs[0]
}

// evalOne runs the reference tree walk for one record — the exact-path
// and fuzz-oracle entry point.
func (c *compiled) evalOne(key string, v float64) float64 {
	return evalNode(c.root, key, v)
}
