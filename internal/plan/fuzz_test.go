package plan

import (
	"math"
	"testing"
)

// FuzzExprEval is the expression-language oracle check: any expression
// the parser accepts must evaluate bit-identically on the vectorized
// register VM (vm.go) and the per-record reference tree walk (eval.go),
// and the canonical printer must be a fixed point (print(parse(print))
// == print). Wired into the CI fuzz smoke next to the order-statistic
// and decoder targets.
func FuzzExprEval(f *testing.F) {
	f.Add("v > 1 && key == \"a\"", 1.5, "a")
	f.Add("v * 2 + 1", -3.25, "")
	f.Add("abs(v - 10) / max(v, 1e-9)", 0.0, "")
	f.Add("!(v/v > 0) || key != \"g\"", 0.0, "g")
	f.Add("min(v, 2) - floor(v) * ceil(v + 0.5)", 7.125, "x")
	f.Add("log(v) <= exp(1) == (sqrt(v) != 2)", 16.0, "")
	f.Add("-(-v) - -1e300 * 1e300", 2.0, "")
	f.Add("\"a\" == \"b\" || key == key", 1.0, "b")
	f.Fuzz(func(t *testing.T, src string, v float64, key string) {
		if len(src) > 256 {
			return // depth/latency bound; real expressions are short
		}
		root, err := parseExpr(src)
		if err != nil {
			return
		}
		k, err := checkKind(src, root)
		if err != nil {
			return
		}
		// Canonical printing is a fixed point and preserves the tree.
		p1 := printExpr(root)
		n2, err := parseExpr(p1)
		if err != nil {
			t.Fatalf("canonical print %q of %q does not reparse: %v", p1, src, err)
		}
		if p2 := printExpr(n2); p2 != p1 {
			t.Fatalf("print not canonical: %q -> %q -> %q", src, p1, p2)
		}

		what := "derive"
		if k == kBool {
			what = "filter"
		}
		if k == kStr {
			return // a bare string expression compiles under no operator
		}
		c, err := compileExpr(src, k, what)
		if err != nil {
			t.Fatalf("checked expression %q failed to compile: %v", src, err)
		}

		// One batch mixing the fuzzed record with fixed probes (NaN/Inf
		// producers, negatives, zero) and varying keys.
		vals := []float64{v, 0, -1, 1, 2.5, math.MaxFloat64, -v}
		keys := []string{key, "", "a", key + "x", "g", key, "b"}
		sc := NewScratch()
		got := c.exec(sc, vals, keys)
		for i := range vals {
			want := evalNode(n2, keys[i], vals[i]) // reference walk on the reparsed tree
			if math.Float64bits(got[i]) != math.Float64bits(want) &&
				!(math.IsNaN(got[i]) && math.IsNaN(want)) {
				t.Fatalf("%q: VM=%x reference=%x at (v=%g, key=%q)",
					src, math.Float64bits(got[i]), math.Float64bits(want), vals[i], keys[i])
			}
		}
	})
}
