package mr

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Controller is the mapper⇄reducer communication layer of §2.1: EARL's
// mappers stay alive until explicitly terminated, actively monitor the
// current approximation error, and expand the sample when it is too
// high. Reducer-side code (or the driving client) publishes the current
// error; mapper-side code polls Terminated and the expansion target.
// All methods are safe for concurrent use.
type Controller struct {
	terminated atomic.Bool
	target     atomic.Int64 // requested total sample size
	errBits    atomic.Uint64
	errSet     atomic.Bool
}

// Terminate tells all long-lived mappers to stop after their current
// batch — the required accuracy has been reached.
func (c *Controller) Terminate() { c.terminated.Store(true) }

// Terminated reports whether termination has been requested.
func (c *Controller) Terminated() bool { return c.terminated.Load() }

// RequestExpansion raises the target total sample size mappers should
// produce. Values lower than the current target are ignored.
func (c *Controller) RequestExpansion(total int64) {
	for {
		cur := c.target.Load()
		if total <= cur {
			return
		}
		if c.target.CompareAndSwap(cur, total) {
			return
		}
	}
}

// ExpansionTarget returns the current requested total sample size.
func (c *Controller) ExpansionTarget() int64 { return c.target.Load() }

// PublishError records the most recent error estimate from the accuracy
// estimation stage (mirrors the reducers' error files on HDFS).
func (c *Controller) PublishError(cv float64) {
	c.errBits.Store(math.Float64bits(cv))
	c.errSet.Store(true)
}

// LastError returns the most recently published error estimate, with
// ok=false if none has been published yet.
func (c *Controller) LastError() (cv float64, ok bool) {
	if !c.errSet.Load() {
		return 0, false
	}
	return math.Float64frombits(c.errBits.Load()), true
}

// StreamJob describes a pipelined job: NumMappers long-lived map tasks
// push pairs directly to NumReducers reduce tasks while both run — the
// Hadoop-Online-style pipelining EARL adopts, with the addition that the
// transfer is *active*: the map side decides when to send more and when
// to stop, guided by the Controller.
type StreamJob struct {
	Name        string
	NumMappers  int
	NumReducers int
	Partition   Partitioner

	// MapTask runs once per mapper index. It should emit pairs via ctx
	// and poll ctx.Terminated() between batches, returning nil when done.
	MapTask func(ctx *MapStream, index int) error

	// ReduceTask consumes one partition's stream until it is closed.
	ReduceTask func(part int, in <-chan KV) error

	// Control connects the two sides; a fresh Controller is used if nil.
	Control *Controller
}

// MapStream is the context handed to a pipelined map task.
type MapStream struct {
	eng   *Engine
	job   *StreamJob
	node  int
	chans []chan KV
	ctrl  *Controller
	part  Partitioner
}

// Emit routes one pair to its reduce partition, blocking if the reducer
// is behind (backpressure stands in for the TCP transfer windows of the
// real pipelined Hadoop). A []float64 value is a batch of records
// sharing one key (the vectorized scan path) and is charged per record,
// so the counters read the same whichever path emitted.
func (m *MapStream) Emit(key string, value any) {
	p := m.part(key, len(m.chans))
	if p < 0 || p >= len(m.chans) {
		p = 0
	}
	if batch, ok := value.([]float64); ok {
		m.eng.Metrics.RecordsMapped.Add(int64(len(batch)))
	} else {
		m.eng.Metrics.RecordsMapped.Add(1)
	}
	m.eng.Metrics.BytesShuffled.Add(int64(len(key)) + ValueSize(value))
	m.chans[p] <- KV{Key: key, Value: value}
}

// Terminated reports whether the controller has requested termination or
// this task's node has died.
func (m *MapStream) Terminated() bool {
	if m.ctrl.Terminated() {
		return true
	}
	return !m.eng.Cluster.NodeAlive(m.node)
}

// NodeAlive reports whether this task's node is still up; EARL's fault
// tolerance path uses it to distinguish "done" from "dead".
func (m *MapStream) NodeAlive() bool { return m.eng.Cluster.NodeAlive(m.node) }

// Controller exposes the shared control bus (for publishing map-side
// progress or reading the expansion target).
func (m *MapStream) Controller() *Controller { return m.ctrl }

// StreamResult reports how a pipelined job ended.
type StreamResult struct {
	// FailedMappers lists map task indices that returned an error or died
	// with their node. In EARL these are NOT restarted — the job finishes
	// on surviving data and reports achieved accuracy (§3.4).
	FailedMappers []int
	// MapperErrs holds the corresponding errors, parallel to FailedMappers.
	MapperErrs []error
}

// RunPipelined executes a StreamJob. Unlike Run, map failures do not fail
// the job: the failed task's remaining input is simply absent, which is
// the failure model EARL's approximation tolerates. Reduce failures fail
// the job, as reducers hold the states.
func (e *Engine) RunPipelined(job *StreamJob) (*StreamResult, error) {
	if err := e.init(); err != nil {
		return nil, err
	}
	if job.MapTask == nil || job.ReduceTask == nil {
		return nil, fmt.Errorf("mr: stream job needs MapTask and ReduceTask")
	}
	nm := job.NumMappers
	if nm <= 0 {
		nm = 1
	}
	nr := job.NumReducers
	if nr <= 0 {
		nr = 1
	}
	part := job.Partition
	if part == nil {
		part = HashPartition
	}
	ctrl := job.Control
	if ctrl == nil {
		ctrl = &Controller{}
	}
	e.Metrics.JobStartups.Add(1)

	chans := make([]chan KV, nr)
	for i := range chans {
		chans[i] = make(chan KV, 1024)
	}

	// Reducers are placed first — they must be consuming before mappers
	// push, so their slots are acquired synchronously here.
	var rwg sync.WaitGroup
	rerrs := make([]error, nr)
	type placement struct {
		nid     int
		release func()
	}
	placements := make([]placement, nr)
	for p := 0; p < nr; p++ {
		nid, release, err := e.Cluster.acquireSlot(ReduceTask)
		if err != nil {
			for q := 0; q < p; q++ {
				placements[q].release()
			}
			return nil, fmt.Errorf("mr: placing reduce[%d] of %q: %w", p, job.Name, err)
		}
		placements[p] = placement{nid: nid, release: release}
	}
	for p := 0; p < nr; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			nid := placements[p].nid
			defer placements[p].release()
			e.Metrics.ReduceTasks.Add(1)
			info := TaskInfo{Job: job.Name, Kind: ReduceTask, Index: p, Attempt: 0, Node: nid}
			if e.Fault != nil && e.Fault.ShouldFail(info) {
				rerrs[p] = fmt.Errorf("mr: injected failure at %s", info)
				for range chans[p] {
				}
				return
			}
			counted := make(chan KV, 64)
			done := make(chan struct{})
			go func() {
				defer close(done)
				rerrs[p] = job.ReduceTask(p, counted)
			}()
			for kv := range chans[p] {
				e.Metrics.RecordsReduced.Add(1)
				counted <- kv
			}
			close(counted)
			<-done
		}(p)
	}

	// Mappers.
	var mwg sync.WaitGroup
	merrs := make([]error, nm)
	for i := 0; i < nm; i++ {
		mwg.Add(1)
		go func(i int) {
			defer mwg.Done()
			nid, release, err := e.Cluster.acquireSlot(MapTask)
			if err != nil {
				merrs[i] = err
				return
			}
			defer release()
			e.Metrics.MapTasks.Add(1)
			info := TaskInfo{Job: job.Name, Kind: MapTask, Index: i, Attempt: 0, Node: nid}
			if e.Fault != nil && e.Fault.ShouldFail(info) {
				merrs[i] = fmt.Errorf("mr: injected failure at %s", info)
				return
			}
			ctx := &MapStream{eng: e, job: job, node: nid, chans: chans, ctrl: ctrl, part: part}
			merrs[i] = job.MapTask(ctx, i)
		}(i)
	}
	mwg.Wait()
	for _, ch := range chans {
		close(ch)
	}
	rwg.Wait()

	res := &StreamResult{}
	for i, err := range merrs {
		if err != nil {
			res.FailedMappers = append(res.FailedMappers, i)
			res.MapperErrs = append(res.MapperErrs, err)
		}
	}
	for p, err := range rerrs {
		if err != nil {
			return res, fmt.Errorf("mr: reduce[%d] of %q: %w", p, job.Name, err)
		}
	}
	return res, nil
}
