package mr

import (
	"errors"
	"testing"
)

// sumState is a minimal state with configurable batch support, to pin
// UpdateAll/RemoveValues routing.
type sumState struct {
	sum          float64
	batchAdds    int
	batchRemoves int
	itemOps      int
}

func (s *sumState) Remove(v float64) error {
	s.sum -= v
	s.itemOps++
	return nil
}

type batchSumState struct{ sumState }

func (s *batchSumState) RemoveBatch(vs []float64) error {
	for _, v := range vs {
		s.sum -= v
	}
	s.batchRemoves++
	return nil
}

// sumReducer folds floats; batched handles []float64 in one call,
// loopOnly rejects batches so UpdateAll must fall back.
type sumReducer struct{ batched bool }

func (sumReducer) Initialize(key string, values []float64) (State, error) {
	st := &sumState{}
	for _, v := range values {
		st.sum += v
	}
	return st, nil
}

func (r sumReducer) Update(state State, input any) (State, error) {
	st, ok := state.(*sumState)
	if !ok {
		return nil, ErrBadState
	}
	switch x := input.(type) {
	case float64:
		st.sum += x
		st.itemOps++
	case []float64:
		if !r.batched {
			return nil, ErrBadInput
		}
		for _, v := range x {
			st.sum += v
		}
		st.batchAdds++
	default:
		return nil, ErrBadInput
	}
	return st, nil
}

func (sumReducer) Finalize(state State) (float64, error) {
	return state.(*sumState).sum, nil
}

func (sumReducer) Correct(result, p float64) float64 { return result }

func TestUpdateAllUsesBatchWhenSupported(t *testing.T) {
	st := &sumState{}
	out, err := UpdateAll(sumReducer{batched: true}, st, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st != out || st.sum != 6 {
		t.Fatalf("sum %v (state %p vs %p)", st.sum, st, out)
	}
	if st.batchAdds != 1 || st.itemOps != 0 {
		t.Fatalf("batch path not taken: %d batches, %d item ops", st.batchAdds, st.itemOps)
	}
}

func TestUpdateAllFallsBackPerValue(t *testing.T) {
	st := &sumState{}
	if _, err := UpdateAll(sumReducer{batched: false}, st, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if st.sum != 6 || st.itemOps != 3 || st.batchAdds != 0 {
		t.Fatalf("fallback loop not taken: sum %v, %d item ops, %d batches", st.sum, st.itemOps, st.batchAdds)
	}
	// Empty batch is a no-op, never an ErrBadInput probe.
	if _, err := UpdateAll(sumReducer{batched: false}, st, nil); err != nil {
		t.Fatal(err)
	}
}

// failingReducer returns a non-ErrBadInput error on batches; UpdateAll
// must surface it rather than silently retrying per value.
type failingReducer struct{ sumReducer }

var errBoom = errors.New("boom")

func (failingReducer) Update(state State, input any) (State, error) {
	if _, ok := input.([]float64); ok {
		return nil, errBoom
	}
	return failingReducer{}.sumReducer.Update(state, input)
}

func TestUpdateAllSurfacesBatchErrors(t *testing.T) {
	if _, err := UpdateAll(failingReducer{}, &sumState{}, []float64{1}); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
}

func TestRemoveValuesPrefersBatch(t *testing.T) {
	st := &batchSumState{sumState{sum: 10}}
	handled, err := RemoveValues(st, []float64{1, 2})
	if err != nil || !handled {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	if st.sum != 7 || st.batchRemoves != 1 || st.itemOps != 0 {
		t.Fatalf("batch remove not taken: %+v", st)
	}

	plain := &sumState{sum: 10}
	handled, err = RemoveValues(plain, []float64{1, 2})
	if err != nil || !handled {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	if plain.sum != 7 || plain.itemOps != 2 {
		t.Fatalf("per-value remove not taken: %+v", plain)
	}

	handled, err = RemoveValues(struct{}{}, []float64{1})
	if err != nil || handled {
		t.Fatalf("unsupported state: handled=%v err=%v, want false/nil (caller rebuilds)", handled, err)
	}
}
