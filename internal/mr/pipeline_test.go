package mr

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPipelinedSumWithTermination(t *testing.T) {
	e, _, m := newTestEngine(t, 3, 2)
	ctrl := &Controller{}
	var sum atomic.Int64
	job := &StreamJob{
		Name:        "pipe-sum",
		NumMappers:  3,
		NumReducers: 2,
		Control:     ctrl,
		MapTask: func(ctx *MapStream, idx int) error {
			// Long-lived mapper: emit batches until terminated.
			for batch := 0; ; batch++ {
				if ctx.Terminated() {
					return nil
				}
				for i := 0; i < 10; i++ {
					ctx.Emit(fmt.Sprintf("k%d", i%4), 1)
				}
				if batch > 1000 {
					return fmt.Errorf("termination never arrived")
				}
			}
		},
		ReduceTask: func(part int, in <-chan KV) error {
			for kv := range in {
				sum.Add(int64(kv.Value.(int)))
				if sum.Load() >= 300 {
					ctrl.Terminate() // reducer-side feedback, as in EARL
				}
			}
			return nil
		},
	}
	res, err := e.RunPipelined(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedMappers) != 0 {
		t.Fatalf("unexpected failures: %v", res.MapperErrs)
	}
	if sum.Load() < 300 {
		t.Fatalf("sum = %d, want ≥ 300", sum.Load())
	}
	if m.Snapshot().MapTasks != 3 || m.Snapshot().ReduceTasks != 2 {
		t.Fatalf("task counts = %d/%d", m.Snapshot().MapTasks, m.Snapshot().ReduceTasks)
	}
}

func TestPipelinedMapFailureDoesNotFailJob(t *testing.T) {
	e, _, _ := newTestEngine(t, 3, 2)
	e.Fault = FaultFunc(func(ti TaskInfo) bool {
		return ti.Kind == MapTask && ti.Index == 1
	})
	var got atomic.Int64
	job := &StreamJob{
		Name:        "lossy",
		NumMappers:  3,
		NumReducers: 1,
		MapTask: func(ctx *MapStream, idx int) error {
			for i := 0; i < 5; i++ {
				ctx.Emit("k", 1)
			}
			return nil
		},
		ReduceTask: func(part int, in <-chan KV) error {
			for range in {
				got.Add(1)
			}
			return nil
		},
	}
	res, err := e.RunPipelined(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedMappers) != 1 || res.FailedMappers[0] != 1 {
		t.Fatalf("FailedMappers = %v", res.FailedMappers)
	}
	// Two surviving mappers delivered their data — EARL finishes on it.
	if got.Load() != 10 {
		t.Fatalf("records = %d, want 10", got.Load())
	}
}

func TestPipelinedReduceFailureFailsJob(t *testing.T) {
	e, _, _ := newTestEngine(t, 2, 2)
	e.Fault = FaultFunc(func(ti TaskInfo) bool { return ti.Kind == ReduceTask })
	job := &StreamJob{
		Name:       "red-dead",
		NumMappers: 1,
		MapTask: func(ctx *MapStream, idx int) error {
			ctx.Emit("k", 1)
			return nil
		},
		ReduceTask: func(part int, in <-chan KV) error {
			for range in {
			}
			return nil
		},
	}
	if _, err := e.RunPipelined(job); err == nil {
		t.Fatal("reduce failure should fail the job")
	}
}

func TestPipelinedValidation(t *testing.T) {
	e, _, _ := newTestEngine(t, 2, 1)
	if _, err := e.RunPipelined(&StreamJob{Name: "nil-tasks"}); err == nil {
		t.Fatal("missing tasks should error")
	}
}

func TestControllerExpansionMonotonic(t *testing.T) {
	var c Controller
	c.RequestExpansion(100)
	c.RequestExpansion(50) // ignored: lower than current
	if got := c.ExpansionTarget(); got != 100 {
		t.Fatalf("target = %d, want 100", got)
	}
	c.RequestExpansion(200)
	if got := c.ExpansionTarget(); got != 200 {
		t.Fatalf("target = %d, want 200", got)
	}
}

func TestControllerErrorPublishing(t *testing.T) {
	var c Controller
	if _, ok := c.LastError(); ok {
		t.Fatal("no error published yet")
	}
	c.PublishError(0.042)
	cv, ok := c.LastError()
	if !ok || cv != 0.042 {
		t.Fatalf("LastError = %v, %v", cv, ok)
	}
}

func TestControllerConcurrentUse(t *testing.T) {
	var c Controller
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.RequestExpansion(int64(i*100 + j))
				c.PublishError(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := c.ExpansionTarget(); got != 799 {
		t.Fatalf("target = %d, want 799 (max requested)", got)
	}
}

func TestPipelinedMapperSeesNodeDeath(t *testing.T) {
	e, _, _ := newTestEngine(t, 1, 2)
	started := make(chan struct{})
	job := &StreamJob{
		Name:       "node-death",
		NumMappers: 1,
		MapTask: func(ctx *MapStream, idx int) error {
			close(started)
			deadline := time.After(5 * time.Second)
			for {
				select {
				case <-deadline:
					return fmt.Errorf("node death never observed")
				default:
				}
				if ctx.Terminated() {
					if !ctx.NodeAlive() {
						return fmt.Errorf("node died") // EARL records the loss
					}
					return nil
				}
			}
		},
		ReduceTask: func(part int, in <-chan KV) error {
			for range in {
			}
			return nil
		},
	}
	go func() {
		<-started
		e.Cluster.KillNode(0)
	}()
	res, err := e.RunPipelined(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedMappers) != 1 {
		t.Fatalf("expected the mapper to report node death, got %v", res.FailedMappers)
	}
}
