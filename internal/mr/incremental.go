package mr

import (
	"errors"
	"fmt"
)

// State is an opaque summary of a user function f after processing some
// data — "a representation of a user's function f after processing s on
// f" (§2.1). Saving states instead of raw data is what makes EARL's
// resample maintenance memory-resident.
type State any

// IncrementalReducer is the paper's finer-grained reduce interface. It
// decomposes a reduce into four methods so that EARL can (a) keep one
// state per bootstrap resample, (b) grow states when the sample expands
// (delta maintenance), and (c) rescale results computed from a fraction
// p of the data:
//
//	initialize: <k,v1>,...,<k,vk> → state
//	update:     state × (state | value) → state
//	finalize:   state → (result, error estimate input)
//	correct:    result × p → corrected result
type IncrementalReducer interface {
	// Initialize reduces a batch of raw values into a fresh state. The
	// values slice must not be retained: callers (the delta-maintenance
	// hot path in particular) hand in reused scratch buffers.
	Initialize(key string, values []float64) (State, error)
	// Update folds input — another State produced by this reducer, a
	// single raw value, or a []float64 batch of raw values — into state,
	// returning the new state. The returned state may alias the argument.
	// A batch must be folded exactly as the per-value loop would fold it
	// (same order, same arithmetic); reducers that do not recognise
	// batches return ErrBadInput and UpdateAll falls back to the loop.
	// Batch slices are not retained.
	Update(state State, input any) (State, error)
	// Finalize extracts the current result from a state.
	Finalize(state State) (float64, error)
	// Correct rescales a result computed from fraction p (0 < p ≤ 1) of
	// the data. Mean-like statistics return the result unchanged; SUM and
	// COUNT scale by 1/p (§2.1's example). The system cannot know the
	// user function's semantics, so correction is user logic.
	Correct(result float64, p float64) float64
}

// RemovableState is implemented by states that additionally support
// removing a previously-added value — the primitive needed by the
// inter-iteration delta maintenance when the binomial resize shrinks a
// resample (§4.1). States that cannot remove force a rebuild.
type RemovableState interface {
	Remove(value float64) error
}

// BatchRemovableState is implemented by states that can remove a whole
// batch of previously-added values in one call — one interface dispatch
// per growth generation instead of one per item, the removal-side twin
// of Update's []float64 batches. RemoveValues prefers it over
// per-value RemovableState.Remove.
type BatchRemovableState interface {
	RemoveBatch(values []float64) error
}

// RemoveValues removes every value of vs from state, using the batch
// entry point when available and falling back to per-value Remove.
// handled is false (with a nil error) when the state supports neither —
// the caller must rebuild, as delta maintenance does.
func RemoveValues(state State, vs []float64) (handled bool, err error) {
	if br, ok := state.(BatchRemovableState); ok {
		return true, br.RemoveBatch(vs)
	}
	if rem, ok := state.(RemovableState); ok {
		for _, v := range vs {
			if err := rem.Remove(v); err != nil {
				return true, err
			}
		}
		return true, nil
	}
	return false, nil
}

// ErrBadState is returned when an IncrementalReducer is handed a state of
// the wrong concrete type.
var ErrBadState = errors.New("mr: state has wrong type for this reducer")

// ErrBadInput is returned when Update receives an input that is neither a
// compatible State nor a raw value.
var ErrBadInput = errors.New("mr: update input is neither state nor value")

// UpdateAll folds a slice of raw values into state. It offers the whole
// slice to r.Update first — one interface call (and one boxing
// allocation) per batch for reducers that accept []float64, which is
// what makes the delta-maintenance hot path allocation-free — and falls
// back to the per-value loop for reducers that return ErrBadInput on
// batches. The two paths are equivalent by Update's batch contract.
func UpdateAll(r IncrementalReducer, state State, values []float64) (State, error) {
	if len(values) == 0 {
		return state, nil
	}
	next, err := r.Update(state, values)
	if err == nil {
		return next, nil
	}
	if !errors.Is(err, ErrBadInput) {
		return nil, err
	}
	for _, v := range values {
		state, err = r.Update(state, v)
		if err != nil {
			return nil, err
		}
	}
	return state, nil
}

// InitializeOrUpdate folds values into state, creating a fresh state via
// Initialize when state is nil. This is the reuse pattern of maintained
// queries over continuously ingested data: the same incremental state is
// grown batch after batch instead of being recomputed, so each refresh
// costs only the delta. A nil state with no values stays nil (there is
// nothing to summarise yet).
func InitializeOrUpdate(r IncrementalReducer, key string, state State, values []float64) (State, error) {
	if state == nil {
		if len(values) == 0 {
			return nil, nil
		}
		return r.Initialize(key, values)
	}
	return UpdateAll(r, state, values)
}

// Correctable wraps a user correction function.
type Correctable func(result, p float64) float64

// IdentityCorrect is the correction for statistics that are invariant to
// sampling fraction (mean, median, quantiles, variance).
func IdentityCorrect(result, p float64) float64 { return result }

// ScaleCorrect is the correction for extensive statistics (SUM, COUNT):
// scale by 1/p.
func ScaleCorrect(result, p float64) float64 {
	if p <= 0 {
		return result
	}
	return result / p
}

// ValidateCorrection sanity-checks a sampling fraction before Correct is
// applied.
func ValidateCorrection(p float64) error {
	if p <= 0 || p > 1 {
		return fmt.Errorf("mr: sampling fraction p=%v outside (0,1]", p)
	}
	return nil
}
