package mr

import (
	"errors"
	"fmt"
)

// State is an opaque summary of a user function f after processing some
// data — "a representation of a user's function f after processing s on
// f" (§2.1). Saving states instead of raw data is what makes EARL's
// resample maintenance memory-resident.
type State any

// IncrementalReducer is the paper's finer-grained reduce interface. It
// decomposes a reduce into four methods so that EARL can (a) keep one
// state per bootstrap resample, (b) grow states when the sample expands
// (delta maintenance), and (c) rescale results computed from a fraction
// p of the data:
//
//	initialize: <k,v1>,...,<k,vk> → state
//	update:     state × (state | value) → state
//	finalize:   state → (result, error estimate input)
//	correct:    result × p → corrected result
type IncrementalReducer interface {
	// Initialize reduces a batch of raw values into a fresh state.
	Initialize(key string, values []float64) (State, error)
	// Update folds input — either another State produced by this reducer
	// or a single raw value — into state, returning the new state. The
	// returned state may alias the argument.
	Update(state State, input any) (State, error)
	// Finalize extracts the current result from a state.
	Finalize(state State) (float64, error)
	// Correct rescales a result computed from fraction p (0 < p ≤ 1) of
	// the data. Mean-like statistics return the result unchanged; SUM and
	// COUNT scale by 1/p (§2.1's example). The system cannot know the
	// user function's semantics, so correction is user logic.
	Correct(result float64, p float64) float64
}

// RemovableState is implemented by states that additionally support
// removing a previously-added value — the primitive needed by the
// inter-iteration delta maintenance when the binomial resize shrinks a
// resample (§4.1). States that cannot remove force a rebuild.
type RemovableState interface {
	Remove(value float64) error
}

// ErrBadState is returned when an IncrementalReducer is handed a state of
// the wrong concrete type.
var ErrBadState = errors.New("mr: state has wrong type for this reducer")

// ErrBadInput is returned when Update receives an input that is neither a
// compatible State nor a raw value.
var ErrBadInput = errors.New("mr: update input is neither state nor value")

// UpdateAll folds a slice of raw values into state via r.Update.
func UpdateAll(r IncrementalReducer, state State, values []float64) (State, error) {
	var err error
	for _, v := range values {
		state, err = r.Update(state, v)
		if err != nil {
			return nil, err
		}
	}
	return state, nil
}

// InitializeOrUpdate folds values into state, creating a fresh state via
// Initialize when state is nil. This is the reuse pattern of maintained
// queries over continuously ingested data: the same incremental state is
// grown batch after batch instead of being recomputed, so each refresh
// costs only the delta. A nil state with no values stays nil (there is
// nothing to summarise yet).
func InitializeOrUpdate(r IncrementalReducer, key string, state State, values []float64) (State, error) {
	if state == nil {
		if len(values) == 0 {
			return nil, nil
		}
		return r.Initialize(key, values)
	}
	return UpdateAll(r, state, values)
}

// Correctable wraps a user correction function.
type Correctable func(result, p float64) float64

// IdentityCorrect is the correction for statistics that are invariant to
// sampling fraction (mean, median, quantiles, variance).
func IdentityCorrect(result, p float64) float64 { return result }

// ScaleCorrect is the correction for extensive statistics (SUM, COUNT):
// scale by 1/p.
func ScaleCorrect(result, p float64) float64 {
	if p <= 0 {
		return result
	}
	return result / p
}

// ValidateCorrection sanity-checks a sampling fraction before Correct is
// applied.
func ValidateCorrection(p float64) error {
	if p <= 0 || p > 1 {
		return fmt.Errorf("mr: sampling fraction p=%v outside (0,1]", p)
	}
	return nil
}
