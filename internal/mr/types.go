// Package mr is an in-process MapReduce engine modeled on Hadoop 0.20 —
// the execution substrate the paper extends. It provides:
//
//   - the classic two-stage programming model (Mapper, Reducer, optional
//     Combiner, hash Partitioner) over line-oriented input splits from the
//     simulated DFS (package dfs);
//   - a cluster abstraction with per-node task slots, task scheduling,
//     task restart on failure, and deterministic fault injection — the
//     machinery whose overheads (job submission, task JVM spawn) EARL
//     amortises and whose failures EARL tolerates (§3.4);
//   - a pipelined execution mode in which reducers consume map output
//     while mappers run, plus a mapper⇄reducer control bus. These are the
//     paper's three Hadoop modifications (§2.1): reducers process input
//     before mappers finish, mappers stay alive until explicitly
//     terminated, and a communication layer lets the job check its
//     termination condition;
//   - the finer-grained incremental reduce API of §2.1 —
//     initialize/update/finalize/correct — used by EARL to keep per-
//     resample states instead of raw data.
//
// Every data movement is charged to a simcost.Metrics so experiments can
// model paper-scale wall-clock time.
package mr

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// KV is one key/value pair flowing between stages.
type KV struct {
	Key   string
	Value any
}

// Emitter receives pairs produced by map and reduce functions.
type Emitter interface {
	Emit(key string, value any)
}

// Mapper transforms one input record into intermediate pairs. For text
// input (the Hadoop default this engine implements), key is the byte
// offset of the line and value is the line without its newline.
type Mapper interface {
	Map(offset int64, line string, emit Emitter) error
}

// Reducer folds all values sharing a key into output pairs.
type Reducer interface {
	Reduce(key string, values []any, emit Emitter) error
}

// Combiner optionally pre-aggregates map output per task before shuffle,
// cutting shuffle bytes — same contract as Reducer.
type Combiner interface {
	Combine(key string, values []any, emit Emitter) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(offset int64, line string, emit Emitter) error

// Map implements Mapper.
func (f MapperFunc) Map(offset int64, line string, emit Emitter) error {
	return f(offset, line, emit)
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key string, values []any, emit Emitter) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values []any, emit Emitter) error {
	return f(key, values, emit)
}

// Partitioner maps a key to one of r reduce partitions.
type Partitioner func(key string, r int) int

// HashPartition is the default partitioner: FNV-1a hash modulo r. Random
// hashing over keys is what makes "choosing a subset of the keys at
// random" a uniform sample (§1 of the paper).
func HashPartition(key string, r int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(r))
}

// ValueSize estimates the serialized size of a value for shuffle-byte
// accounting. Strings and []byte count their length; everything else is
// charged a fixed 8 bytes (one word), which matches the numeric payloads
// EARL's jobs emit.
func ValueSize(v any) int64 {
	switch x := v.(type) {
	case string:
		return int64(len(x))
	case []byte:
		return int64(len(x))
	case []float64:
		return int64(8 * len(x))
	default:
		return 8
	}
}

// Job describes one MapReduce job.
type Job struct {
	Name string

	// Input: either a DFS path (read as text lines, split by SplitSize)
	// or an in-memory record slice (tests and local mode). Exactly one
	// must be set.
	InputPath    string
	SplitSize    int64 // bytes per input split; DFS block size if 0
	MemoryInput  []string
	MemorySplits int // splits to divide MemoryInput into; 1 if 0

	Mapper      Mapper
	Combiner    Combiner
	Reducer     Reducer
	NumReducers int // 1 if 0
	Partition   Partitioner

	// MaxAttempts bounds per-task retries after failures (Hadoop's
	// mapred.map.max.attempts); default 4.
	MaxAttempts int

	// OutputPath, when set, also writes "key\tvalue" lines to the DFS.
	OutputPath string
}

func (j *Job) validate() error {
	if j.Mapper == nil {
		return errors.New("mr: job needs a Mapper")
	}
	if j.Reducer == nil {
		return errors.New("mr: job needs a Reducer")
	}
	hasPath := j.InputPath != ""
	hasMem := j.MemoryInput != nil
	if hasPath == hasMem {
		return errors.New("mr: job needs exactly one of InputPath or MemoryInput")
	}
	return nil
}

func (j *Job) numReducers() int {
	if j.NumReducers <= 0 {
		return 1
	}
	return j.NumReducers
}

func (j *Job) maxAttempts() int {
	if j.MaxAttempts <= 0 {
		return 4
	}
	return j.MaxAttempts
}

func (j *Job) partitioner() Partitioner {
	if j.Partition == nil {
		return HashPartition
	}
	return j.Partition
}

// Result is a completed job's output.
type Result struct {
	Output []KV // reduce output, ordered by (partition, key)
}

// TaskKind distinguishes map from reduce tasks in failure injection.
type TaskKind int

// Task kinds.
const (
	MapTask TaskKind = iota
	ReduceTask
)

func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// TaskInfo identifies one task attempt for fault injection.
type TaskInfo struct {
	Job     string
	Kind    TaskKind
	Index   int // split index for maps, partition for reduces
	Attempt int // 0-based
	Node    int
}

func (t TaskInfo) String() string {
	return fmt.Sprintf("%s/%s[%d]#%d@node%d", t.Job, t.Kind, t.Index, t.Attempt, t.Node)
}

// FaultInjector decides whether a given task attempt fails. Injectors
// must be deterministic functions of TaskInfo for reproducible tests.
type FaultInjector interface {
	ShouldFail(t TaskInfo) bool
}

// FaultFunc adapts a function to FaultInjector.
type FaultFunc func(t TaskInfo) bool

// ShouldFail implements FaultInjector.
func (f FaultFunc) ShouldFail(t TaskInfo) bool { return f(t) }

// ErrTooManyFailures is returned when a task exhausts its attempts.
var ErrTooManyFailures = errors.New("mr: task failed on every attempt")

// ErrJobAborted is returned when the engine is asked to abort a job.
var ErrJobAborted = errors.New("mr: job aborted")
