package mr

import (
	"errors"
	"testing"
)

// meanState is a minimal IncrementalReducer for tests: tracks sum/count.
type meanState struct {
	sum float64
	n   int64
}

type meanReducer struct{}

func (meanReducer) Initialize(key string, values []float64) (State, error) {
	st := &meanState{}
	for _, v := range values {
		st.sum += v
		st.n++
	}
	return st, nil
}

func (meanReducer) Update(state State, input any) (State, error) {
	st, ok := state.(*meanState)
	if !ok {
		return nil, ErrBadState
	}
	switch x := input.(type) {
	case *meanState:
		st.sum += x.sum
		st.n += x.n
	case float64:
		st.sum += x
		st.n++
	default:
		return nil, ErrBadInput
	}
	return st, nil
}

func (meanReducer) Finalize(state State) (float64, error) {
	st, ok := state.(*meanState)
	if !ok {
		return 0, ErrBadState
	}
	if st.n == 0 {
		return 0, nil
	}
	return st.sum / float64(st.n), nil
}

func (meanReducer) Correct(result, p float64) float64 { return IdentityCorrect(result, p) }

func TestIncrementalReducerContract(t *testing.T) {
	r := meanReducer{}
	st, err := r.Initialize("k", []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Update with a raw value.
	st, err = r.Update(st, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	// Update with another state (the delta-maintenance merge path).
	other, _ := r.Initialize("k", []float64{8, 10})
	st, err = r.Update(st, other)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Finalize(st)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 { // (1+2+3+6+8+10)/6
		t.Fatalf("mean = %v, want 5", got)
	}
}

func TestUpdateAll(t *testing.T) {
	r := meanReducer{}
	st, _ := r.Initialize("k", nil)
	st, err := UpdateAll(r, st, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.Finalize(st)
	if got != 4 {
		t.Fatalf("mean = %v, want 4", got)
	}
}

func TestInitializeOrUpdate(t *testing.T) {
	r := meanReducer{}
	// nil state + no values: still nothing to summarise.
	st, err := InitializeOrUpdate(r, "k", nil, nil)
	if err != nil || st != nil {
		t.Fatalf("empty init: state %v, err %v", st, err)
	}
	// First batch initialises.
	st, err = InitializeOrUpdate(r, "k", st, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Later batches update the SAME state — the maintained-query reuse
	// pattern: cost proportional to the delta, not the history.
	st, err = InitializeOrUpdate(r, "k", st, []float64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Finalize(st)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("maintained mean = %v, want 3", got)
	}
	// Updating with an empty delta is a no-op, not an error.
	st2, err := InitializeOrUpdate(r, "k", st, nil)
	if err != nil || st2 != st {
		t.Fatalf("empty delta: state %v, err %v", st2, err)
	}
}

func TestUpdateRejectsWrongTypes(t *testing.T) {
	r := meanReducer{}
	if _, err := r.Update("not-a-state", 1.0); !errors.Is(err, ErrBadState) {
		t.Fatalf("err = %v, want ErrBadState", err)
	}
	st, _ := r.Initialize("k", nil)
	if _, err := r.Update(st, "weird"); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}

func TestCorrections(t *testing.T) {
	if IdentityCorrect(42, 0.01) != 42 {
		t.Fatal("identity correction changed result")
	}
	if ScaleCorrect(42, 0.5) != 84 {
		t.Fatal("scale correction wrong")
	}
	if ScaleCorrect(42, 0) != 42 {
		t.Fatal("scale correction must ignore p=0")
	}
	if err := ValidateCorrection(0.5); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, -0.1, 1.5} {
		if err := ValidateCorrection(p); err == nil {
			t.Fatalf("p=%v should be invalid", p)
		}
	}
}
