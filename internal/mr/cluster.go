package mr

import (
	"fmt"
	"sync"
)

// Cluster models the compute side of the testbed: a set of nodes, each
// with a bounded number of concurrently-running map slots and reduce
// slots (Hadoop's separate mapred.tasktracker.map/reduce.tasks.maximum
// pools — keeping the pools separate is also what lets pipelined jobs
// hold reducers open while mappers run without self-deadlock). The
// paper's cluster had 5 nodes; tasks scheduled onto a dead node fail and
// are rescheduled elsewhere.
type Cluster struct {
	mu    sync.Mutex
	nodes []*node
	next  int // round-robin scheduling cursor
}

type node struct {
	id          int
	alive       bool
	mapSlots    chan struct{} // buffered; one token per concurrent map task
	reduceSlots chan struct{} // buffered; one token per concurrent reduce task
}

func (n *node) pool(kind TaskKind) chan struct{} {
	if kind == MapTask {
		return n.mapSlots
	}
	return n.reduceSlots
}

// NewCluster creates a cluster of n nodes with slotsPerNode concurrent
// map slots and slotsPerNode reduce slots each.
func NewCluster(n, slotsPerNode int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mr: cluster needs at least one node, got %d", n)
	}
	if slotsPerNode <= 0 {
		return nil, fmt.Errorf("mr: need at least one slot per node, got %d", slotsPerNode)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &node{
			id:          i,
			alive:       true,
			mapSlots:    make(chan struct{}, slotsPerNode),
			reduceSlots: make(chan struct{}, slotsPerNode),
		})
	}
	return c, nil
}

// Size returns the number of nodes, dead or alive.
func (c *Cluster) Size() int { return len(c.nodes) }

// LiveNodes returns the ids of nodes currently alive.
func (c *Cluster) LiveNodes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for _, n := range c.nodes {
		if n.alive {
			out = append(out, n.id)
		}
	}
	return out
}

// KillNode marks a node dead. Tasks already running there observe the
// death at their next liveness check and fail; new tasks avoid it.
func (c *Cluster) KillNode(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("mr: no node %d", id)
	}
	c.nodes[id].alive = false
	return nil
}

// ReviveNode brings a node back into scheduling.
func (c *Cluster) ReviveNode(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("mr: no node %d", id)
	}
	c.nodes[id].alive = true
	return nil
}

// NodeAlive reports whether node id is alive (false for unknown ids).
func (c *Cluster) NodeAlive(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return false
	}
	return c.nodes[id].alive
}

// acquireSlot picks a live node round-robin and claims one of its slots
// from the pool for the given task kind, blocking until a slot frees up.
// It returns the node id and a release function, or an error when no
// nodes are alive.
func (c *Cluster) acquireSlot(kind TaskKind) (int, func(), error) {
	c.mu.Lock()
	// Find the next live node round-robin.
	var chosen *node
	for i := 0; i < len(c.nodes); i++ {
		cand := c.nodes[(c.next+i)%len(c.nodes)]
		if cand.alive {
			// Prefer a node with a free slot right now.
			if len(cand.pool(kind)) < cap(cand.pool(kind)) {
				chosen = cand
				c.next = (cand.id + 1) % len(c.nodes)
				break
			}
			if chosen == nil {
				chosen = cand
			}
		}
	}
	if chosen == nil {
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("mr: no live nodes")
	}
	c.mu.Unlock()
	// Block on the chosen node's slot. (If it dies while we wait, the
	// task will fail its liveness check immediately and be retried.)
	pool := chosen.pool(kind)
	pool <- struct{}{}
	return chosen.id, func() { <-pool }, nil
}
