package mr

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dfs"
	"repro/internal/simcost"
)

// Engine executes jobs against a DFS and a cluster. Zero-value fields are
// filled with defaults at Run time: a 5-node cluster with 2 slots per
// node (the paper's testbed shape) and a discard Metrics.
type Engine struct {
	FS      *dfs.FileSystem
	Cluster *Cluster
	Metrics *simcost.Metrics
	Fault   FaultInjector

	initOnce sync.Once
	initErr  error
}

// NewEngine builds an engine over fs with the paper's 5-node topology.
func NewEngine(fs *dfs.FileSystem, metrics *simcost.Metrics) (*Engine, error) {
	cl, err := NewCluster(5, 2)
	if err != nil {
		return nil, err
	}
	return &Engine{FS: fs, Cluster: cl, Metrics: metrics}, nil
}

func (e *Engine) init() error {
	e.initOnce.Do(func() {
		if e.Cluster == nil {
			e.Cluster, e.initErr = NewCluster(5, 2)
			if e.initErr != nil {
				return
			}
		}
		if e.Metrics == nil {
			e.Metrics = &simcost.Metrics{}
		}
	})
	return e.initErr
}

// Run executes job in batch mode — the stock-Hadoop flow the paper
// compares against: all map tasks run to completion, their output is
// shuffled, then reduce tasks run. Returns reduce output ordered by
// (partition, key).
func (e *Engine) Run(job *Job) (*Result, error) {
	if err := e.init(); err != nil {
		return nil, err
	}
	if err := job.validate(); err != nil {
		return nil, err
	}
	e.Metrics.JobStartups.Add(1)

	mapOut, err := e.runMapPhase(job)
	if err != nil {
		return nil, err
	}
	return e.runReducePhase(job, mapOut)
}

// inputSplit is one unit of map work: either a DFS split or a slice of
// in-memory records with their starting offset index.
type inputSplit struct {
	dfsSplit *dfs.Split
	records  []string
	base     int64
}

func (e *Engine) splitsFor(job *Job) ([]inputSplit, error) {
	if job.InputPath != "" {
		if e.FS == nil {
			return nil, fmt.Errorf("mr: job %q has InputPath but engine has no FS", job.Name)
		}
		ss, err := e.FS.Splits(job.InputPath, job.SplitSize)
		if err != nil {
			return nil, err
		}
		out := make([]inputSplit, len(ss))
		for i := range ss {
			sp := ss[i]
			out[i] = inputSplit{dfsSplit: &sp}
		}
		return out, nil
	}
	nsplits := job.MemorySplits
	if nsplits <= 0 {
		nsplits = 1
	}
	if nsplits > len(job.MemoryInput) {
		nsplits = len(job.MemoryInput)
	}
	if nsplits == 0 {
		return []inputSplit{{records: nil, base: 0}}, nil
	}
	var out []inputSplit
	per := (len(job.MemoryInput) + nsplits - 1) / nsplits
	for i := 0; i < len(job.MemoryInput); i += per {
		end := i + per
		if end > len(job.MemoryInput) {
			end = len(job.MemoryInput)
		}
		out = append(out, inputSplit{records: job.MemoryInput[i:end], base: int64(i)})
	}
	return out, nil
}

// mapEmitter partitions map output into per-reducer buffers.
type mapEmitter struct {
	partition Partitioner
	r         int
	parts     [][]KV
}

func newMapEmitter(p Partitioner, r int) *mapEmitter {
	return &mapEmitter{partition: p, r: r, parts: make([][]KV, r)}
}

// Emit implements Emitter.
func (m *mapEmitter) Emit(key string, value any) {
	p := m.partition(key, m.r)
	if p < 0 || p >= m.r {
		p = 0
	}
	m.parts[p] = append(m.parts[p], KV{Key: key, Value: value})
}

func (e *Engine) runMapPhase(job *Job) ([][][]KV, error) {
	splits, err := e.splitsFor(job)
	if err != nil {
		return nil, err
	}
	r := job.numReducers()
	outputs := make([][][]KV, len(splits)) // [task][partition][]KV
	errs := make([]error, len(splits))
	var wg sync.WaitGroup
	for i := range splits {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			outputs[idx], errs[idx] = e.runMapTask(job, splits[idx], idx, r)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outputs, nil
}

func (e *Engine) runMapTask(job *Job, sp inputSplit, idx, r int) ([][]KV, error) {
	var lastErr error
	for attempt := 0; attempt < job.maxAttempts(); attempt++ {
		nid, release, err := e.Cluster.acquireSlot(MapTask)
		if err != nil {
			return nil, err
		}
		e.Metrics.MapTasks.Add(1)
		info := TaskInfo{Job: job.Name, Kind: MapTask, Index: idx, Attempt: attempt, Node: nid}
		out, err := e.mapAttempt(job, sp, info, r)
		release()
		if err == nil {
			// Charge shuffle traffic for the surviving attempt's output.
			var bytes int64
			for _, part := range out {
				for _, kv := range part {
					bytes += int64(len(kv.Key)) + ValueSize(kv.Value)
				}
			}
			e.Metrics.BytesShuffled.Add(bytes)
			return out, nil
		}
		lastErr = err
		e.Metrics.TaskRestarts.Add(1)
	}
	return nil, fmt.Errorf("%w: map[%d] of %q: %v", ErrTooManyFailures, idx, job.Name, lastErr)
}

func (e *Engine) mapAttempt(job *Job, sp inputSplit, info TaskInfo, r int) ([][]KV, error) {
	if e.Fault != nil && e.Fault.ShouldFail(info) {
		return nil, fmt.Errorf("mr: injected failure at %s", info)
	}
	em := newMapEmitter(job.partitioner(), r)
	consume := func(offset int64, line string) error {
		e.Metrics.RecordsRead.Add(1)
		before := recordCount(em)
		if err := job.Mapper.Map(offset, line, em); err != nil {
			return fmt.Errorf("mr: mapper at %s offset %d: %w", info, offset, err)
		}
		e.Metrics.RecordsMapped.Add(recordCount(em) - before)
		return nil
	}
	const livenessEvery = 256
	seen := 0
	checkAlive := func() error {
		seen++
		if seen%livenessEvery == 0 && !e.Cluster.NodeAlive(info.Node) {
			return fmt.Errorf("mr: node %d died during %s", info.Node, info)
		}
		return nil
	}
	if sp.dfsSplit != nil {
		rd, err := e.FS.NewLineReader(*sp.dfsSplit, 0)
		if err != nil {
			return nil, err
		}
		for rd.Next() {
			if err := checkAlive(); err != nil {
				return nil, err
			}
			if err := consume(rd.RecordOffset(), rd.Text()); err != nil {
				return nil, err
			}
		}
		if rd.Err() != nil {
			return nil, rd.Err()
		}
	} else {
		for i, rec := range sp.records {
			if err := checkAlive(); err != nil {
				return nil, err
			}
			if err := consume(sp.base+int64(i), rec); err != nil {
				return nil, err
			}
		}
	}
	if job.Combiner != nil {
		return e.combine(job, em.parts)
	}
	return em.parts, nil
}

func recordCount(em *mapEmitter) int64 {
	var n int64
	for _, p := range em.parts {
		n += int64(len(p))
	}
	return n
}

// combine runs the job's combiner over each partition of one map task's
// output, grouping by key first (Hadoop combines spills the same way).
func (e *Engine) combine(job *Job, parts [][]KV) ([][]KV, error) {
	out := make([][]KV, len(parts))
	for pi, part := range parts {
		grouped := groupByKey(part)
		em := &sliceEmitter{}
		for _, g := range grouped {
			if err := job.Combiner.Combine(g.key, g.values, em); err != nil {
				return nil, fmt.Errorf("mr: combiner: %w", err)
			}
		}
		out[pi] = em.kvs
	}
	return out, nil
}

type sliceEmitter struct {
	kvs []KV
}

// Emit implements Emitter.
func (s *sliceEmitter) Emit(key string, value any) {
	s.kvs = append(s.kvs, KV{Key: key, Value: value})
}

type keyGroup struct {
	key    string
	values []any
}

// groupByKey groups kvs by key, with groups ordered by key and values in
// arrival order (Hadoop's sort-merge guarantees key order, not value
// order).
func groupByKey(kvs []KV) []keyGroup {
	idx := make(map[string]int)
	var groups []keyGroup
	for _, kv := range kvs {
		gi, ok := idx[kv.Key]
		if !ok {
			gi = len(groups)
			idx[kv.Key] = gi
			groups = append(groups, keyGroup{key: kv.Key})
		}
		groups[gi].values = append(groups[gi].values, kv.Value)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	return groups
}

func (e *Engine) runReducePhase(job *Job, mapOut [][][]KV) (*Result, error) {
	r := job.numReducers()
	partOutputs := make([][]KV, r)
	errs := make([]error, r)
	var wg sync.WaitGroup
	for p := 0; p < r; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			// Gather this partition's pairs from every map task, in task
			// order for determinism.
			var in []KV
			for _, taskOut := range mapOut {
				in = append(in, taskOut[part]...)
			}
			partOutputs[part], errs[part] = e.runReduceTask(job, part, in)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{}
	for _, po := range partOutputs {
		res.Output = append(res.Output, po...)
	}
	if job.OutputPath != "" {
		if err := e.writeOutput(job.OutputPath, res.Output); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (e *Engine) runReduceTask(job *Job, part int, in []KV) ([]KV, error) {
	var lastErr error
	for attempt := 0; attempt < job.maxAttempts(); attempt++ {
		nid, release, err := e.Cluster.acquireSlot(ReduceTask)
		if err != nil {
			return nil, err
		}
		e.Metrics.ReduceTasks.Add(1)
		info := TaskInfo{Job: job.Name, Kind: ReduceTask, Index: part, Attempt: attempt, Node: nid}
		out, err := e.reduceAttempt(job, info, in)
		release()
		if err == nil {
			return out, nil
		}
		lastErr = err
		e.Metrics.TaskRestarts.Add(1)
	}
	return nil, fmt.Errorf("%w: reduce[%d] of %q: %v", ErrTooManyFailures, part, job.Name, lastErr)
}

func (e *Engine) reduceAttempt(job *Job, info TaskInfo, in []KV) ([]KV, error) {
	if e.Fault != nil && e.Fault.ShouldFail(info) {
		return nil, fmt.Errorf("mr: injected failure at %s", info)
	}
	groups := groupByKey(in)
	em := &sliceEmitter{}
	seen := 0
	for _, g := range groups {
		seen += len(g.values)
		if seen >= 256 {
			seen = 0
			if !e.Cluster.NodeAlive(info.Node) {
				return nil, fmt.Errorf("mr: node %d died during %s", info.Node, info)
			}
		}
		e.Metrics.RecordsReduced.Add(int64(len(g.values)))
		if err := job.Reducer.Reduce(g.key, g.values, em); err != nil {
			return nil, fmt.Errorf("mr: reducer for key %q: %w", g.key, err)
		}
	}
	return em.kvs, nil
}

func (e *Engine) writeOutput(path string, kvs []KV) error {
	if e.FS == nil {
		return fmt.Errorf("mr: OutputPath set but engine has no FS")
	}
	var buf bytes.Buffer
	for _, kv := range kvs {
		fmt.Fprintf(&buf, "%s\t%v\n", kv.Key, kv.Value)
	}
	return e.FS.WriteFile(path, buf.Bytes())
}
