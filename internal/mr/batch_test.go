package mr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/simcost"
)

// wordCount pieces — the canonical MR job, used across engine tests.
type wcMapper struct{}

func (wcMapper) Map(off int64, line string, emit Emitter) error {
	for _, w := range strings.Fields(line) {
		emit.Emit(w, 1)
	}
	return nil
}

type wcReducer struct{}

func (wcReducer) Reduce(key string, values []any, emit Emitter) error {
	n := 0
	for _, v := range values {
		n += v.(int)
	}
	emit.Emit(key, n)
	return nil
}

type wcCombiner struct{}

func (wcCombiner) Combine(key string, values []any, emit Emitter) error {
	return wcReducer{}.Reduce(key, values, emit)
}

func newTestEngine(t *testing.T, nodes, slots int) (*Engine, *dfs.FileSystem, *simcost.Metrics) {
	t.Helper()
	var m simcost.Metrics
	fsys := dfs.New(dfs.Config{BlockSize: 64, Replication: 2, DataNodes: nodes, Metrics: &m, Seed: 1})
	cl, err := NewCluster(nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	return &Engine{FS: fsys, Cluster: cl, Metrics: &m}, fsys, &m
}

func outputMap(res *Result) map[string]any {
	out := make(map[string]any, len(res.Output))
	for _, kv := range res.Output {
		out[kv.Key] = kv.Value
	}
	return out
}

func TestWordCountMemoryInput(t *testing.T) {
	e, _, _ := newTestEngine(t, 3, 2)
	job := &Job{
		Name:        "wc",
		MemoryInput: []string{"a b a", "b c", "a"},
		Mapper:      wcMapper{},
		Reducer:     wcReducer{},
		NumReducers: 3,
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(res)
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("count[%s] = %v, want %d (all: %v)", k, got[k], w, got)
		}
	}
}

func TestWordCountDFSInputManySplits(t *testing.T) {
	e, fsys, _ := newTestEngine(t, 5, 2)
	var sb strings.Builder
	want := map[string]int{}
	for i := 0; i < 500; i++ {
		w := fmt.Sprintf("w%d", i%17)
		sb.WriteString(w + "\n")
		want[w]++
	}
	if err := fsys.WriteFile("/in", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name:        "wc-dfs",
		InputPath:   "/in",
		SplitSize:   97, // deliberately unaligned with lines and blocks
		Mapper:      wcMapper{},
		Reducer:     wcReducer{},
		NumReducers: 4,
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(res)
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("count[%s] = %v, want %d", k, got[k], w)
		}
	}
}

func TestCombinerReducesShuffleBytes(t *testing.T) {
	input := make([]string, 200)
	for i := range input {
		input[i] = "x y z"
	}
	run := func(withCombiner bool) int64 {
		e, _, m := newTestEngine(t, 3, 2)
		job := &Job{
			Name:         "wc",
			MemoryInput:  input,
			MemorySplits: 4,
			Mapper:       wcMapper{},
			Reducer:      wcReducer{},
		}
		if withCombiner {
			job.Combiner = wcCombiner{}
		}
		res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if got := outputMap(res); got["x"] != 200 {
			t.Fatalf("combiner changed semantics: %v", got)
		}
		return m.Snapshot().BytesShuffled
	}
	plain := run(false)
	combined := run(true)
	if combined >= plain {
		t.Fatalf("combiner did not cut shuffle: %d vs %d", combined, plain)
	}
}

func TestJobValidation(t *testing.T) {
	e, _, _ := newTestEngine(t, 2, 1)
	cases := []*Job{
		{Name: "no-mapper", MemoryInput: []string{"x"}, Reducer: wcReducer{}},
		{Name: "no-reducer", MemoryInput: []string{"x"}, Mapper: wcMapper{}},
		{Name: "no-input", Mapper: wcMapper{}, Reducer: wcReducer{}},
		{Name: "two-inputs", InputPath: "/a", MemoryInput: []string{"x"}, Mapper: wcMapper{}, Reducer: wcReducer{}},
	}
	for _, job := range cases {
		if _, err := e.Run(job); err == nil {
			t.Errorf("job %q should fail validation", job.Name)
		}
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	e, _, _ := newTestEngine(t, 2, 1)
	boom := errors.New("boom")
	job := &Job{
		Name:        "bad-map",
		MemoryInput: []string{"x"},
		Mapper: MapperFunc(func(off int64, line string, emit Emitter) error {
			return boom
		}),
		Reducer: wcReducer{},
	}
	_, err := e.Run(job)
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err should carry cause: %v", err)
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	e, _, _ := newTestEngine(t, 2, 1)
	job := &Job{
		Name:        "bad-reduce",
		MemoryInput: []string{"x"},
		Mapper:      wcMapper{},
		Reducer: ReducerFunc(func(key string, values []any, emit Emitter) error {
			return errors.New("reduce-boom")
		}),
	}
	if _, err := e.Run(job); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

func TestTransientTaskFailureIsRetried(t *testing.T) {
	e, _, m := newTestEngine(t, 3, 2)
	// Fail the first two attempts of map task 0 only.
	e.Fault = FaultFunc(func(ti TaskInfo) bool {
		return ti.Kind == MapTask && ti.Index == 0 && ti.Attempt < 2
	})
	job := &Job{
		Name:         "flaky",
		MemoryInput:  []string{"a", "b", "c", "d"},
		MemorySplits: 2,
		Mapper:       wcMapper{},
		Reducer:      wcReducer{},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputMap(res); got["a"] != 1 || got["d"] != 1 {
		t.Fatalf("output wrong after retries: %v", got)
	}
	if m.Snapshot().TaskRestarts != 2 {
		t.Fatalf("TaskRestarts = %d, want 2", m.Snapshot().TaskRestarts)
	}
}

func TestPermanentFailureExhaustsAttempts(t *testing.T) {
	e, _, _ := newTestEngine(t, 2, 1)
	e.Fault = FaultFunc(func(ti TaskInfo) bool { return ti.Kind == ReduceTask })
	job := &Job{
		Name:        "doomed",
		MemoryInput: []string{"x"},
		Mapper:      wcMapper{},
		Reducer:     wcReducer{},
		MaxAttempts: 3,
	}
	if _, err := e.Run(job); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

func TestOutputPathWritesToDFS(t *testing.T) {
	e, fsys, _ := newTestEngine(t, 3, 2)
	job := &Job{
		Name:        "wc-out",
		MemoryInput: []string{"b a", "a"},
		Mapper:      wcMapper{},
		Reducer:     wcReducer{},
		OutputPath:  "/out/part-0",
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile("/out/part-0")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\t2\nb\t1\n" {
		t.Fatalf("output file = %q", data)
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	// Key order within partitions must be deterministic across runs.
	var prev []KV
	for i := 0; i < 5; i++ {
		e, _, _ := newTestEngine(t, 4, 2)
		job := &Job{
			Name:         "det",
			MemoryInput:  []string{"q w e r t y u i o p", "a s d f g h j k l"},
			MemorySplits: 2,
			Mapper:       wcMapper{},
			Reducer:      wcReducer{},
			NumReducers:  3,
		}
		res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if len(prev) != len(res.Output) {
				t.Fatal("output length varies across runs")
			}
			for j := range prev {
				if prev[j] != res.Output[j] {
					t.Fatalf("run %d output[%d] = %v, was %v", i, j, res.Output[j], prev[j])
				}
			}
		}
		prev = res.Output
	}
}

func TestMetricsCharged(t *testing.T) {
	e, _, m := newTestEngine(t, 3, 2)
	job := &Job{
		Name:         "metrics",
		MemoryInput:  []string{"a b", "c"},
		MemorySplits: 2,
		Mapper:       wcMapper{},
		Reducer:      wcReducer{},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.JobStartups != 1 {
		t.Fatalf("JobStartups = %d", s.JobStartups)
	}
	if s.MapTasks != 2 || s.ReduceTasks != 1 {
		t.Fatalf("tasks = %d/%d, want 2/1", s.MapTasks, s.ReduceTasks)
	}
	if s.RecordsRead != 2 {
		t.Fatalf("RecordsRead = %d, want 2", s.RecordsRead)
	}
	if s.RecordsMapped != 3 {
		t.Fatalf("RecordsMapped = %d, want 3", s.RecordsMapped)
	}
	if s.RecordsReduced != 3 {
		t.Fatalf("RecordsReduced = %d, want 3", s.RecordsReduced)
	}
	if s.BytesShuffled == 0 {
		t.Fatal("BytesShuffled = 0")
	}
}

func TestEmptyInput(t *testing.T) {
	e, _, _ := newTestEngine(t, 2, 1)
	job := &Job{
		Name:        "empty",
		MemoryInput: []string{},
		Mapper:      wcMapper{},
		Reducer:     wcReducer{},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Fatalf("output = %v, want empty", res.Output)
	}
}

func TestHashPartitionStableAndInRange(t *testing.T) {
	for r := 1; r <= 7; r++ {
		for i := 0; i < 100; i++ {
			k := strconv.Itoa(i)
			p := HashPartition(k, r)
			if p < 0 || p >= r {
				t.Fatalf("partition %d out of range [0,%d)", p, r)
			}
			if p != HashPartition(k, r) {
				t.Fatal("partition not stable")
			}
		}
	}
}

func TestValueSize(t *testing.T) {
	if ValueSize("hello") != 5 {
		t.Fatal("string size")
	}
	if ValueSize([]byte{1, 2, 3}) != 3 {
		t.Fatal("bytes size")
	}
	if ValueSize([]float64{1, 2}) != 16 {
		t.Fatal("float slice size")
	}
	if ValueSize(3.14) != 8 {
		t.Fatal("scalar size")
	}
}

func TestGroupByKeyPreservesValueOrder(t *testing.T) {
	kvs := []KV{{"b", 1}, {"a", 2}, {"b", 3}, {"a", 4}}
	groups := groupByKey(kvs)
	if len(groups) != 2 || groups[0].key != "a" || groups[1].key != "b" {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].values[0] != 2 || groups[0].values[1] != 4 {
		t.Fatalf("value order not preserved: %+v", groups[0])
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 1); err == nil {
		t.Fatal("0 nodes should error")
	}
	if _, err := NewCluster(1, 0); err == nil {
		t.Fatal("0 slots should error")
	}
}

func TestClusterKillRevive(t *testing.T) {
	c, err := NewCluster(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if c.NodeAlive(1) {
		t.Fatal("node 1 should be dead")
	}
	if live := c.LiveNodes(); len(live) != 2 {
		t.Fatalf("live = %v", live)
	}
	if err := c.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	if !c.NodeAlive(1) {
		t.Fatal("node 1 should be alive")
	}
	if err := c.KillNode(99); err == nil {
		t.Fatal("bad id should error")
	}
	if c.NodeAlive(99) {
		t.Fatal("unknown node must read dead")
	}
}

func TestRunWithAllNodesDead(t *testing.T) {
	e, _, _ := newTestEngine(t, 2, 1)
	e.Cluster.KillNode(0)
	e.Cluster.KillNode(1)
	job := &Job{Name: "dead", MemoryInput: []string{"x"}, Mapper: wcMapper{}, Reducer: wcReducer{}}
	if _, err := e.Run(job); err == nil {
		t.Fatal("job on dead cluster should fail")
	}
}

func TestEngineDefaults(t *testing.T) {
	e := &Engine{}
	job := &Job{Name: "defaults", MemoryInput: []string{"a"}, Mapper: wcMapper{}, Reducer: wcReducer{}}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 {
		t.Fatalf("output = %v", res.Output)
	}
}
