package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/delta"
	"repro/internal/jobs"
)

// Fig3 reproduces Figure 3: the work saved by the intra-iteration
// optimization (§4.2) versus sample size — the model P(X=y)·y from
// Eq. 4 for several fixed y, the optimal y* found by search, and the
// savings actually measured by running the shared resampler.
func Fig3(seed uint64) (*Table, error) {
	t := &Table{
		Title: "Figure 3 — work saved by intra-iteration optimization vs sample size n",
		Columns: []string{
			"n", "save(y=0.1)", "save(y=0.2)", "save(y=0.3)", "save(y=0.5)",
			"y*", "save(y*)", "measured",
		},
	}
	rng := rand.New(rand.NewPCG(seed, 0xf3))
	sr, err := delta.NewSharedResampler(jobs.Mean().Reducer, "fig3")
	if err != nil {
		return nil, err
	}
	var sumOpt float64
	var rows int
	for _, n := range []int{5, 10, 20, 29, 50, 100, 200} {
		cells := []string{fmt.Sprintf("%d", n)}
		for _, y := range []float64{0.1, 0.2, 0.3, 0.5} {
			s, err := delta.ExpectedSavings(n, y)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f3(s))
		}
		yOpt, sOpt, err := delta.OptimalY(n)
		if err != nil {
			return nil, err
		}
		sumOpt += sOpt
		rows++

		// Measured: fraction of per-item state updates avoided by the
		// shared resampler versus the standard B×n bootstrap.
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.Float64() * 100
		}
		const B = 40
		draw := func(k int) []float64 {
			out := make([]float64, k)
			for i := range out {
				out[i] = sample[rng.IntN(n)]
			}
			return out
		}
		_, work, err := sr.Draw(sample, B, draw)
		if err != nil {
			return nil, err
		}
		measured := 1 - float64(work)/float64(delta.NaiveWork(n, B))
		cells = append(cells, f3(yOpt), f3(sOpt), f3(measured))
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean modeled savings at y* over the sweep: %.1f%% (paper: \"over 20%% on average\", §4.2)", 100*sumOpt/float64(rows)),
		"savings shrink with n — the optimization targets small samples, as the paper states",
		"'measured' is the reduction in per-item state updates from sharing the y* block across resamples")
	return t, nil
}
