package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/bootstrap"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig2a reproduces Figure 2(a): the effect of the number of bootstraps B
// on the estimated error cv, for a fixed sample. The paper's reading:
// the estimate is noisy at tiny B and stabilises by roughly B = 30.
func Fig2a(seed uint64) (*Table, error) {
	const n = 1000
	sample, err := workload.NumericSpec{Dist: workload.Gaussian, N: n, Seed: seed}.Generate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0xf2a))
	// Draw the resample values once; cv at B is the cv of the prefix —
	// exactly the incremental procedure EARL's phase 1 runs.
	const maxB = 60
	values := make([]float64, 0, maxB)
	buf := make([]float64, n)
	for b := 0; b < maxB; b++ {
		bootstrap.Resample(rng, sample, buf)
		v, err := stats.Mean(buf)
		if err != nil {
			return nil, err
		}
		values = append(values, v)
	}
	t := &Table{
		Title:   "Figure 2a — effect of the number of bootstraps B on cv (mean, n=1000)",
		Columns: []string{"B", "cv", "|Δcv|/cv"},
	}
	prev := 0.0
	for b := 2; b <= maxB; b += 2 {
		cv, err := stats.CV(values[:b])
		if err != nil {
			return nil, err
		}
		rel := ""
		if prev > 0 {
			rel = f3(abs(cv-prev) / cv)
		}
		t.AddRow(fmt.Sprintf("%d", b), f4(cv), rel)
		prev = cv
	}
	t.Notes = append(t.Notes,
		"paper: ≈30 bootstraps suffice for a confident error estimate (§3.1)",
		"the relative step |Δcv|/cv is SSABE's phase-1 stopping signal")
	return t, nil
}

// Fig2b reproduces Figure 2(b): the effect of the sample size n on cv
// for a fixed B — the error falls as 1/√n, the curve SSABE's phase 2
// fits and inverts.
func Fig2b(seed uint64) (*Table, error) {
	const B = 30
	data, err := workload.NumericSpec{Dist: workload.Gaussian, N: 1 << 17, Seed: seed}.Generate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0xf2b))
	t := &Table{
		Title:   "Figure 2b — effect of sample size n on cv (mean, B=30)",
		Columns: []string{"n", "cv", "theory popCV/√n"},
	}
	popCV, err := stats.CV(data)
	if err != nil {
		return nil, err
	}
	ns := []int{}
	cvs := []float64{}
	for n := 64; n <= 1<<15; n *= 2 {
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = data[rng.IntN(len(data))]
		}
		res, err := bootstrap.MonteCarlo(rng, sample, bootstrap.Mean, B)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), f4(res.CV), f4(popCV/math.Sqrt(float64(n))))
		ns = append(ns, n)
		cvs = append(cvs, res.CV)
	}
	curve, err := stats.FitCVCurve(ns, cvs)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fitted cv(n) = %.4g + %.4g/√n (R²=%.3f) — the SSABE phase-2 model", curve.A, curve.B, curve.R2),
		"larger n ⇒ lower error; the fit's inverse picks n for a target σ")
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
