// Package experiments regenerates every figure of the paper's evaluation
// (§6). Each FigN function runs the corresponding experiment on the
// simulated cluster and returns a Table with the same series the paper
// plots; cmd/earlbench prints them and bench_test.go wraps them in
// testing.B benchmarks.
//
// Time columns: "real" is measured in-process wall time at laptop scale;
// "modeled" converts the run's cost counters (bytes scanned, records
// processed, seeks, task/job launches) into wall-clock time on the
// paper's 5-node 2012 testbed via simcost.Hadoop2012. Shape claims —
// who wins, crossovers, speedup factors — are read off the modeled
// column, which is deterministic.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Parallelism is the worker-pool size handed to every experiment's EARL
// runs (core.Options.Parallelism / aes.Config.Parallelism). 0 keeps the
// core default (runtime.GOMAXPROCS); 1 forces the sequential engine.
// cmd/earlbench sets it from its -parallelism flag. Figures are
// deterministic for a fixed seed at any value: the parallel engine's
// per-shard rng streams don't depend on the worker count.
var Parallelism int

// Table is one experiment's output: a titled grid plus free-form notes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fms formats a duration as fractional seconds.
func fms(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// f3 formats a float at 3 decimals; f4/f1 likewise.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
