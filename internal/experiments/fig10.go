package experiments

import (
	"fmt"
	"time"

	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/simcost"
	"repro/internal/workload"
)

// Fig10 reproduces Figure 10: total processing time of the mean with and
// without the incremental update optimization (§4). The sample grows by
// a constant Δs each iteration (the paper's expansion pattern); at each
// of the paper's data sizes,
//
//   - "without" recomputes the function from scratch: it re-reads the
//     whole accumulated data and redraws/recomputes all B bootstrap
//     states, paying the §4.1 HDFS round trips;
//   - "with" processes only the new Δs and updates the saved states in
//     place through the sketch layer.
//
// The paper measures ≈300% speedup at its largest size (4 GB).
func Fig10(seed uint64) (*Table, error) {
	model := simcost.Hadoop2012()
	const B = 30
	job := jobs.Mean()

	// Constant growth increments. Laptop scale: stepRecs per iteration;
	// paper scale: stepGB per iteration, with rows at the paper's sizes.
	const stepRecs = 1 << 15
	const stepGB = 0.5
	rows := map[int]bool{1: true, 2: true, 4: true, 8: true} // steps → 0.5,1,2,4 GB

	var mOpt, mNaive simcost.Metrics
	opt, err := delta.New(delta.Config{Reducer: job.Reducer, B: B, Seed: seed, Metrics: &mOpt, Key: "fig10", Parallelism: Parallelism})
	if err != nil {
		return nil, err
	}
	naive, err := delta.NewNaive(delta.Config{Reducer: job.Reducer, B: B, Seed: seed, Metrics: &mNaive, Key: "fig10", Parallelism: Parallelism})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Figure 10 — update procedure: with vs without delta maintenance (mean, B=30, constant Δs growth, modeled at paper sizes)",
		Columns: []string{"data processed", "without opt", "with opt", "speedup", "state updates (naive/opt)"},
	}
	var prevOptS, prevNaiveS simcost.Snapshot
	var realOpt, realNaive time.Duration
	var tOptCum, tNaiveCum time.Duration
	for step := 1; step <= 8; step++ {
		ds, err := workload.NumericSpec{Dist: workload.Uniform, N: stepRecs, Seed: seed + uint64(step)}.Generate()
		if err != nil {
			return nil, err
		}
		st := time.Now()
		if err := opt.Grow(ds); err != nil {
			return nil, err
		}
		realOpt += time.Since(st)
		st = time.Now()
		if err := naive.Grow(ds); err != nil {
			return nil, err
		}
		realNaive += time.Since(st)

		// Per-iteration cost deltas, scaled from laptop records to the
		// paper's gigabyte increments.
		optS := mOpt.Snapshot()
		naiveS := mNaive.Snapshot()
		dOpt := optS.Sub(prevOptS)
		dNaive := naiveS.Sub(prevNaiveS)
		prevOptS, prevNaiveS = optS, naiveS

		stepBytes := stepGB * (1 << 30)
		stepPaperRecs := stepBytes / recordBytes
		f := stepPaperRecs / stepRecs

		// Scans: "without" re-reads everything accumulated so far;
		// "with" reads only the incoming Δs.
		cumBytes := int64(float64(step) * stepBytes)
		naiveScan := simcost.Snapshot{BytesRead: cumBytes, RecordsRead: int64(float64(step) * stepPaperRecs)}
		optScan := simcost.Snapshot{BytesRead: int64(stepBytes), RecordsRead: int64(stepPaperRecs)}

		tOptCum += model.Duration(dOpt.ScaleBytes(f).Add(optScan))
		tNaiveCum += model.Duration(dNaive.ScaleBytes(f).Add(naiveScan))

		if rows[step] {
			t.AddRow(
				fmt.Sprintf("%gGB", float64(step)*stepGB),
				fms(tNaiveCum), fms(tOptCum),
				f1(float64(tNaiveCum)/float64(tOptCum))+"x",
				fmt.Sprintf("%d / %d", naive.Updates(), opt.Updates()),
			)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("laptop-scale run: %d records accumulated over 8 iterations; real maintenance time with opt %.0f ms, without %.0f ms",
			8*stepRecs, realOpt.Seconds()*1000, realNaive.Seconds()*1000),
		"paper: ≈300% speedup at 4 GB — 'without' reprocesses the entire accumulated data and every resample each iteration",
		"'with' touches only Δs plus O(√n) sketch traffic per resample (§4.1)")
	return t, nil
}
