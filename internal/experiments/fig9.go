package experiments

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/sampling"
	"repro/internal/simcost"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig9 reproduces Figure 9: processing time of pre-map vs post-map
// sampling for the mean. Pre-map samples lines straight off the splits
// and avoids loading anything else; post-map loads and parses the whole
// input first (exact record counts, exact correction) and then draws.
// The paper's reading: pre-map is faster in total processing time;
// post-map is the choice when exact correction matters.
func Fig9(laptopRecs int, seed uint64) (*Table, error) {
	if laptopRecs <= 0 {
		laptopRecs = 1 << 19
	}
	model := simcost.Hadoop2012()
	job := jobs.Mean()

	type variant struct {
		kind core.SamplerKind
		cost simcost.Snapshot
		real time.Duration
		rep  core.Report
	}
	variants := []*variant{
		{kind: core.PreMapSampling},
		{kind: core.PostMapSampling},
	}
	for _, v := range variants {
		env, err := measureEnv(laptopRecs, seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := core.Run(env, job, "/data", core.Options{
			Sigma: 0.05, Seed: seed + 7, Sampler: v.kind,
			ForceB: 30, ForceN: 2048, Parallelism: Parallelism,
		})
		if err != nil {
			return nil, err
		}
		v.real = time.Since(start)
		v.cost = env.Metrics.Snapshot()
		v.rep = rep
	}

	laptopBytes := float64(laptopRecs) * recordBytes
	t := &Table{
		Title:   "Figure 9 — processing time: pre-map vs post-map sampling (mean, modeled, paper testbed)",
		Columns: []string{"data", "pre-map", "post-map", "post/pre"},
	}
	for _, gb := range []float64{0.25, 1, 4, 16, 64} {
		sizeBytes := gb * (1 << 30)
		f := sizeBytes / laptopBytes
		// Pre-map touches only sampled lines: flat in data size.
		tPre := model.PipelinedDuration(variants[0].cost)
		// Post-map loads and parses everything before drawing: its scan
		// and parse terms scale with the data.
		pm := variants[1].cost.ScaleBytes(f)
		pm.MapTasks = variants[1].cost.MapTasks
		tPost := model.PipelinedDuration(pm)
		t.AddRow(
			fmt.Sprintf("%gGB", gb),
			fms(tPre), fms(tPost),
			f1(float64(tPost)/float64(tPre))+"x",
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("laptop measurement %d records: pre-map real %.0f ms (read %.1f MB), post-map real %.0f ms (read %.1f MB)",
			laptopRecs,
			variants[0].real.Seconds()*1000, float64(variants[0].cost.BytesRead)/(1<<20),
			variants[1].real.Seconds()*1000, float64(variants[1].cost.BytesRead)/(1<<20)),
		fmt.Sprintf("estimates agree: pre-map %.3f (cv %.3f), post-map %.3f (cv %.3f)",
			variants[0].rep.Estimate, variants[0].rep.CV, variants[1].rep.Estimate, variants[1].rep.CV),
		fmt.Sprintf("correction input: pre-map p estimated %.5f vs post-map exact %.5f",
			variants[0].rep.FractionP, variants[1].rep.FractionP),
		"paper: pre-map wins on time; post-map when an exact record count (hence exact correction) is required")
	return t, nil
}

// Fig9Ablation extends the sampler comparison with the §7 baselines:
// reservoir sampling (uniform, but scans everything) and block sampling
// (fast, but biased on clustered layouts). It reports the mean-estimate
// error of each sampler on a *clustered* file — the layout that breaks
// block sampling — plus the bytes each needs to touch.
func Fig9Ablation(laptopRecs int, seed uint64) (*Table, error) {
	if laptopRecs <= 0 {
		laptopRecs = 1 << 18
	}
	env, err := core.NewEnv(core.EnvConfig{BlockSize: 1 << 16, Seed: seed})
	if err != nil {
		return nil, err
	}
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: laptopRecs, Seed: seed, Clustered: true}.Generate()
	if err != nil {
		return nil, err
	}
	truth, err := stats.Mean(xs)
	if err != nil {
		return nil, err
	}
	if err := env.FS.WriteFile("/clustered", workload.EncodeLinesFixed(xs)); err != nil {
		return nil, err
	}
	const sampleN = 4096
	t := &Table{
		Title:   "Figure 9 ablation — sampler accuracy on a CLUSTERED layout (all draw ≈4096 records)",
		Columns: []string{"sampler", "estimate", "rel error", "bytes read", "uniform?"},
	}
	size, _ := env.FS.Stat("/clustered")

	meanOf := func(lines []string) (float64, error) {
		var w stats.Welford
		for _, l := range lines {
			v, err := strconv.ParseFloat(trimSpace(l), 64)
			if err != nil {
				return 0, err
			}
			w.Add(v)
		}
		return w.Mean(), nil
	}

	// Pre-map.
	env.Metrics.Reset()
	pre, err := sampling.NewPreMap(env.FS, "/clustered", 0, seed+1)
	if err != nil {
		return nil, err
	}
	recs, err := pre.Sample(sampleN)
	if err != nil {
		return nil, err
	}
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = r.Line
	}
	est, err := meanOf(lines)
	if err != nil {
		return nil, err
	}
	t.AddRow("pre-map", f3(est), f4(math.Abs(est-truth)/truth),
		fmt.Sprintf("%d", env.Metrics.BytesRead.Load()), "yes")

	// Reservoir (scans everything).
	env.Metrics.Reset()
	res, err := sampling.NewReservoir(sampleN, seed+2)
	if err != nil {
		return nil, err
	}
	splits, err := env.FS.Splits("/clustered", 0)
	if err != nil {
		return nil, err
	}
	for _, sp := range splits {
		rd, err := env.FS.NewLineReader(sp, 0)
		if err != nil {
			return nil, err
		}
		for rd.Next() {
			res.Add(rd.Text())
		}
		if rd.Err() != nil {
			return nil, rd.Err()
		}
	}
	est, err = meanOf(res.Sample())
	if err != nil {
		return nil, err
	}
	t.AddRow("reservoir", f3(est), f4(math.Abs(est-truth)/truth),
		fmt.Sprintf("%d", env.Metrics.BytesRead.Load()), "yes (full scan)")

	// Block sampling: enough whole splits to reach ≈sampleN records.
	env.Metrics.Reset()
	recsPerSplit := laptopRecs / len(splits)
	nBlocks := sampleN / recsPerSplit
	if nBlocks < 1 {
		nBlocks = 1
	}
	blines, err := sampling.BlockSample(env.FS, "/clustered", 0, nBlocks, seed+3)
	if err != nil {
		return nil, err
	}
	est, err = meanOf(blines)
	if err != nil {
		return nil, err
	}
	t.AddRow("block", f3(est), f4(math.Abs(est-truth)/truth),
		fmt.Sprintf("%d", env.Metrics.BytesRead.Load()), "NO (layout-dependent)")

	t.Notes = append(t.Notes,
		fmt.Sprintf("true mean %.3f over %d clustered (sorted on disk) records, %.1f MB", truth, laptopRecs, float64(size)/(1<<20)),
		"block sampling is the §3.3 strawman: cheap but badly biased when the layout clusters values",
		"reservoir is the §7 gold standard for uniformity but must scan (and re-scan) the input")
	return t, nil
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}
