package experiments

import (
	"fmt"

	"repro/internal/aes"
	"repro/internal/jobs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig8 reproduces Figure 8: SSABE's empirical sample-size and bootstrap
// estimates against textbook theoretical predictions, across error
// tolerances. The paper's reading: theory over-estimates n at tight
// tolerances and under-estimates it at loose ones, and generally
// under-estimates B — hence the need for the empirical procedure. The
// headline anchor (§6.4): for the mean at σ=5%, ≈1% sample and ≈30
// bootstraps.
func Fig8(seed uint64) (*Table, error) {
	const totalN = 1_000_000
	data, err := workload.NumericSpec{Dist: workload.Uniform, N: 65536, Seed: seed}.Generate()
	if err != nil {
		return nil, err
	}
	popCV, err := stats.CV(data)
	if err != nil {
		return nil, err
	}
	pilot := data[:8192]

	t := &Table{
		Title:   "Figure 8 — empirical (SSABE) vs theoretical sample size and bootstrap estimates (mean)",
		Columns: []string{"σ", "n empirical", "n theory", "n emp/theory", "B empirical", "B theory", "sample % of 1M"},
	}
	job := jobs.Mean()
	for _, sigma := range []float64{0.01, 0.02, 0.05, 0.10} {
		plan, err := aes.SSABE(pilot, totalN, aes.Config{
			Reducer: job.Reducer, Sigma: sigma, Seed: seed + 5, Key: "fig8", Parallelism: Parallelism,
		})
		if err != nil {
			return nil, err
		}
		nTheory, err := stats.TheoreticalSampleSize(popCV, sigma)
		if err != nil {
			return nil, err
		}
		// The classical Monte-Carlo prescription B = 1/(2ε₀²) with the
		// Monte-Carlo tolerance tied to the same relative target.
		bTheory, err := stats.TheoreticalBootstraps(sigma)
		if err != nil {
			return nil, err
		}
		nEmp := plan.N
		mode := ""
		if plan.UseFull {
			mode = " (full run)"
		}
		t.AddRow(
			fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%d%s", nEmp, mode),
			fmt.Sprintf("%d", nTheory),
			f3(float64(nEmp)/float64(nTheory)),
			fmt.Sprintf("%d", plan.B),
			fmt.Sprintf("%d", bTheory),
			f3(100*float64(nEmp)/totalN),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("population cv of the data: %.3f (uniform)", popCV),
		"paper §6.4 anchor: σ=5% ⇒ a ~hundred-record (≈1% of a 10k set) sample and ≈30 bootstraps for the mean",
		"theory rows: n = (popCV/σ)² (normal theory), B = 1/(2ε₀²) (Monte-Carlo bootstrap prescription)",
		"the empirical B sits far below the theoretical prescription — the paper's Fig. 8 point")
	return t, nil
}
