package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/simcost"
	"repro/internal/workload"
)

// Fig6 reproduces Figure 6: computation of the MEDIAN three ways —
// (1) stock Hadoop (exact, full scan), (2) EARL with the original
// (naive) resampling algorithm that redraws and recomputes every
// bootstrap resample on each sample expansion, and (3) EARL with the
// optimized resampling of §4 (delta maintenance + sketches). The paper
// reads ≈3x for naive-EARL over stock and a further ≈4x from the
// optimization.
//
// To exercise the resampling cost (where variants 2 and 3 differ), the
// run forces a small initial sample so the driver performs several
// expansion iterations — the regime §4 optimises.
func Fig6(laptopRecs int, seed uint64) (*Table, error) {
	if laptopRecs <= 0 {
		laptopRecs = 1 << 20
	}
	model := simcost.Hadoop2012()
	job := jobs.Median()
	const sigma = 0.03

	// --- Stock at laptop scale. ----------------------------------------
	env, err := measureEnv(laptopRecs, seed)
	if err != nil {
		return nil, err
	}
	startStock := time.Now()
	if _, _, err := core.RunExactJob(env, job, "/data", 0); err != nil {
		return nil, err
	}
	stockReal := time.Since(startStock)
	stockCost := env.Metrics.Snapshot()

	// --- EARL, naive and optimized resampling. -------------------------
	type variant struct {
		name    string
		disable bool
		cost    simcost.Snapshot
		real    time.Duration
		rep     core.Report
	}
	variants := []*variant{
		{name: "EARL naive resampling", disable: true},
		{name: "EARL optimized (§4)", disable: false},
	}
	for _, v := range variants {
		env, err := measureEnv(laptopRecs, seed+1)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		// ForceN small ⇒ several Δs expansions, the §4 stress case.
		rep, err := core.Run(env, job, "/data", core.Options{
			Sigma: sigma, Seed: seed + 2,
			ForceB: 30, ForceN: 256,
			DisableDeltaMaintenance: v.disable,
			Parallelism:             Parallelism,
		})
		if err != nil {
			return nil, err
		}
		v.real = time.Since(start)
		v.cost = env.Metrics.Snapshot()
		v.rep = rep
	}

	// --- Resampling-phase microbenchmark (where §4 actually bites): ----
	// grow a median sample by constant Δs increments through both
	// maintainers and time the maintenance alone, at laptop scale.
	resOpt, resNaive, updOpt, updNaive, err := medianMaintenancePhase(seed + 5)
	if err != nil {
		return nil, err
	}

	laptopBytes := float64(laptopRecs) * recordBytes
	t := &Table{
		Title:   "Figure 6 — computation of the MEDIAN: stock vs EARL-naive vs EARL-optimized (modeled, paper testbed)",
		Columns: []string{"data", "stock", "EARL naive", "EARL optimized", "naive speedup", "opt vs naive"},
	}
	const hdfsBlock = 64 << 20
	// The resampling-phase gap, applied on top of the measured job costs:
	// the naive job re-does maintenance work in proportion to its update
	// count; express the extra as modeled CPU records.
	for _, gb := range []float64{0.25, 0.5, 1, 2, 4, 16, 64} {
		sizeBytes := gb * (1 << 30)
		f := sizeBytes / laptopBytes
		sc := stockCost.ScaleAll(f)
		sc.MapTasks = int64(sizeBytes/hdfsBlock) + 1
		tStock := model.Duration(sc)
		tNaive := model.PipelinedDuration(variants[0].cost)
		tOpt := model.PipelinedDuration(variants[1].cost)
		t.AddRow(
			fmt.Sprintf("%gGB", gb),
			fms(tStock), fms(tNaive), fms(tOpt),
			f1(float64(tStock)/float64(tNaive))+"x",
			f1(float64(tNaive)/float64(tOpt))+"x",
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("laptop measurement %d records: stock real %.0f ms; naive real %.0f ms (%d iterations, sample %d); optimized real %.0f ms (%d iterations, sample %d)",
			laptopRecs, stockReal.Seconds()*1000,
			variants[0].real.Seconds()*1000, variants[0].rep.Iterations, variants[0].rep.SampleSize,
			variants[1].real.Seconds()*1000, variants[1].rep.Iterations, variants[1].rep.SampleSize),
		fmt.Sprintf("estimates: naive %.3f (cv %.3f), optimized %.3f (cv %.3f)",
			variants[0].rep.Estimate, variants[0].rep.CV, variants[1].rep.Estimate, variants[1].rep.CV),
		fmt.Sprintf("resampling PHASE alone (median, constant Δs growth): naive %.0f ms / %d updates vs optimized %.0f ms / %d updates → %.1fx",
			resNaive.Seconds()*1000, updNaive, resOpt.Seconds()*1000, updOpt,
			float64(resNaive)/float64(resOpt)),
		"paper: naive bootstrap ≈3x over stock at its sizes; the §4 optimization adds ≈4x on the resampling phase",
		"job-level naive≈optimized here because at σ-determined sample sizes the job is startup+pilot dominated; the phase row isolates §4's effect")
	return t, nil
}

// medianMaintenancePhase times just the resample-maintenance work for
// the median under constant-increment growth, naive vs optimized.
func medianMaintenancePhase(seed uint64) (optTime, naiveTime time.Duration, optUpd, naiveUpd int64, err error) {
	const B = 30
	const step = 1 << 13
	red := jobs.Median().Reducer
	opt, err := delta.New(delta.Config{Reducer: red, B: B, Seed: seed, Key: "fig6", Parallelism: Parallelism})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	naive, err := delta.NewNaive(delta.Config{Reducer: red, B: B, Seed: seed, Key: "fig6", Parallelism: Parallelism})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for i := 0; i < 8; i++ {
		ds, err := workload.NumericSpec{Dist: workload.Gaussian, N: step, Seed: seed + uint64(i)}.Generate()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		st := time.Now()
		if err := opt.Grow(ds); err != nil {
			return 0, 0, 0, 0, err
		}
		optTime += time.Since(st)
		st = time.Now()
		if err := naive.Grow(ds); err != nil {
			return 0, 0, 0, 0, err
		}
		naiveTime += time.Since(st)
	}
	return optTime, naiveTime, opt.Updates(), naive.Updates(), nil
}
