package experiments

import (
	"fmt"
	"time"

	"repro/internal/aes"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/sampling"
	"repro/internal/simcost"
	"repro/internal/workload"
)

// recordBytes is the on-disk size of one fixed-width numeric record.
const recordBytes = 19

// measureEnv creates a fresh cluster with n fixed-width records at /data.
func measureEnv(n int, seed uint64) (*core.Env, error) {
	env, err := core.NewEnv(core.EnvConfig{BlockSize: 1 << 16, SlotsPerNode: 4, Seed: seed})
	if err != nil {
		return nil, err
	}
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: n, Seed: seed}.Generate()
	if err != nil {
		return nil, err
	}
	if err := env.FS.WriteFile("/data", workload.EncodeLinesFixed(xs)); err != nil {
		return nil, err
	}
	env.Metrics.Reset() // exclude load-time of the generator itself
	return env, nil
}

// earlPhases measures EARL's two cost phases separately at laptop scale:
// the pilot+SSABE ("local mode") and the pipelined sampled job. These
// scale differently with data size — the pilot grows to its cap, the
// sampled job is σ-determined and constant — so the paper-scale
// extrapolation composes them independently.
type earlPhases struct {
	pilot      simcost.Snapshot
	pilotRecs  int
	main       simcost.Snapshot
	mainReal   time.Duration
	plan       aes.Plan
	rep        core.Report
	laptopRecs int
}

func measureEarlPhases(job jobs.Numeric, n int, sigma float64, seed uint64) (*earlPhases, error) {
	env, err := measureEnv(n, seed)
	if err != nil {
		return nil, err
	}
	// Phase 1: pilot + SSABE in local mode.
	before := env.Metrics.Snapshot()
	sampler, err := sampling.NewPreMap(env.FS, "/data", 0, seed+1)
	if err != nil {
		return nil, err
	}
	pilotN := n / 100
	if pilotN < 512 {
		pilotN = 512
	}
	if pilotN > 65536 {
		pilotN = 65536
	}
	recs, err := sampler.Sample(pilotN)
	if err != nil {
		return nil, err
	}
	pilot := make([]float64, len(recs))
	for i, r := range recs {
		if pilot[i], err = job.Parse(r.Line); err != nil {
			return nil, err
		}
	}
	plan, err := aes.SSABE(pilot, sampler.EstimatedTotalRecords(), aes.Config{
		Reducer: job.Reducer, Sigma: sigma, Seed: seed + 2, Metrics: env.Metrics, Key: job.Name,
		Parallelism: Parallelism,
	})
	if err != nil {
		return nil, err
	}
	pilotCost := env.Metrics.Snapshot().Sub(before)

	// Phase 2: the pipelined sampled job with the plan forced (so the
	// driver's own pilot shrinks to a 256-record probe).
	if plan.UseFull {
		return nil, fmt.Errorf("experiments: laptop size %d too small for a sampling plan", n)
	}
	before = env.Metrics.Snapshot()
	start := time.Now()
	rep, err := core.Run(env, job, "/data", core.Options{
		Sigma: sigma, Seed: seed + 3, ForceB: plan.B, ForceN: plan.N,
		Parallelism: Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &earlPhases{
		pilot:      pilotCost,
		pilotRecs:  len(recs),
		main:       env.Metrics.Snapshot().Sub(before),
		mainReal:   time.Since(start),
		plan:       plan,
		rep:        rep,
		laptopRecs: n,
	}, nil
}

// Fig5 reproduces Figure 5: computation of the mean with EARL vs stock
// Hadoop across data sizes. Laptop-scale runs are measured directly;
// paper-scale rows extrapolate the measured cost components (stock scans
// scale linearly with data and split count; EARL's pilot grows to its
// cap and its σ-determined sample stays constant) onto the Hadoop2012
// cost model. laptopRecs controls the measured run's size.
func Fig5(laptopRecs int, seed uint64) (*Table, error) {
	if laptopRecs <= 0 {
		laptopRecs = 1 << 20
	}
	model := simcost.Hadoop2012()
	job := jobs.Mean()
	const sigma = 0.05

	// --- Measure stock at laptop scale. --------------------------------
	env, err := measureEnv(laptopRecs, seed)
	if err != nil {
		return nil, err
	}
	startStock := time.Now()
	if _, _, err := core.RunExactJob(env, job, "/data", 0); err != nil {
		return nil, err
	}
	stockReal := time.Since(startStock)
	stockCost := env.Metrics.Snapshot()

	// --- Measure EARL phases at laptop scale. --------------------------
	ph, err := measureEarlPhases(job, laptopRecs, sigma, seed+10)
	if err != nil {
		return nil, err
	}

	laptopBytes := float64(laptopRecs) * recordBytes
	t := &Table{
		Title: "Figure 5 — computation of the MEAN: EARL vs stock Hadoop vs data size (modeled on the paper's 5-node testbed)",
		Columns: []string{
			"data", "records", "stock", "EARL", "speedup", "mode",
		},
	}
	t.Columns = []string{
		"data", "records", "stock", "EARL", "speedup", "mode", "load(stock)", "load(pre-map)",
	}
	const hdfsBlock = 64 << 20
	for _, gb := range []float64{0.25, 0.5, 1, 2, 4, 16, 64, 128, 256} {
		sizeBytes := gb * (1 << 30)
		recsS := int64(sizeBytes / recordBytes)
		f := sizeBytes / laptopBytes

		// Stock: all data terms scale; map tasks follow 64 MB splits.
		sc := stockCost.ScaleAll(f)
		sc.MapTasks = int64(sizeBytes/hdfsBlock) + 1
		tStock := model.Duration(sc)

		// EARL's sampling path cost: the pilot scaled to its target plus
		// the σ-determined (size-independent) sampled job.
		pilotTarget := recsS / 100
		if pilotTarget > 65536 {
			pilotTarget = 65536
		}
		pf := float64(pilotTarget) / float64(ph.pilotRecs)
		earlCost := ph.pilot.ScaleBytes(pf).Add(ph.main)
		tEarlSample := model.PipelinedDuration(earlCost)

		// EARL's switchback (§3.1/§6.1): if sampling cannot pay off —
		// B×n ≥ N or the early path costs no less than the exact job —
		// run the standard workflow "without incurring a big overhead".
		mode := "sample"
		tEarl := tEarlSample
		if int64(ph.plan.B)*int64(ph.plan.N) >= recsS || tEarlSample >= tStock {
			mode = "full (switchback)"
			tEarl = tStock
		}

		// The figure's second comparison: data LOAD time, standard Hadoop
		// scan vs pre-map sampling (which touches only sampled lines).
		loadStock := model.Duration(simcost.Snapshot{BytesRead: int64(sizeBytes), RecordsRead: recsS})
		loadPre := model.Duration(simcost.Snapshot{
			BytesRead: earlCost.BytesRead, RecordsRead: earlCost.RecordsRead, DiskSeeks: earlCost.DiskSeeks,
		})
		t.AddRow(
			fmt.Sprintf("%gGB", gb),
			fmt.Sprintf("%d", recsS),
			fms(tStock), fms(tEarl),
			f1(float64(tStock)/float64(tEarl))+"x",
			mode,
			fms(loadStock), fms(loadPre),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("laptop-scale measurement: %d records (%.1f MB); stock real %.0f ms, EARL sampled-job real %.0f ms",
			laptopRecs, laptopBytes/(1<<20), stockReal.Seconds()*1000, ph.mainReal.Seconds()*1000),
		fmt.Sprintf("SSABE plan: B=%d, n=%d; EARL run: sample=%d, cv=%.3f, converged=%v, result within CI [%.3f, %.3f]",
			ph.plan.B, ph.plan.N, ph.rep.SampleSize, ph.rep.CV, ph.rep.Converged, ph.rep.CILo, ph.rep.CIHi),
		"paper's shape: EARL ≈ stock below ~1 GB (falls back to the full job), ≥4x past 100 GB",
		"pre-map sampling is what keeps EARL's cost flat: it reads sampled lines, never the whole input (§3.3)")
	return t, nil
}
