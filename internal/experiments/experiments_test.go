package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// These tests run each figure at reduced scale and assert the paper's
// qualitative claims — who wins, where crossovers fall, how factors
// trend — on the regenerated tables. They are the executable form of
// EXPERIMENTS.md.

const testRecs = 1 << 16

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("no column %q in %v", col, tab.Columns)
	return ""
}

func cellFloat(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tab, row, col), "x")
	s = strings.TrimSuffix(s, "s")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig2aStabilises(t *testing.T) {
	tab, err := Fig2a(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("too few rows: %d", len(tab.Rows))
	}
	// The paper's claim: by B≈30 the cv estimate has settled. Compare the
	// spread of the early prefix (B≤10) against the tail (B≥40).
	var early, late []float64
	for i := range tab.Rows {
		b := int(cellFloat(t, tab, i, "B"))
		cv := cellFloat(t, tab, i, "cv")
		if b <= 10 {
			early = append(early, cv)
		}
		if b >= 40 {
			late = append(late, cv)
		}
	}
	spread := func(xs []float64) float64 {
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return max - min
	}
	if spread(late) > spread(early) {
		t.Fatalf("cv did not stabilise: early spread %v, late spread %v", spread(early), spread(late))
	}
}

func TestFig2bErrorFallsWithN(t *testing.T) {
	tab, err := Fig2b(1)
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, tab, 0, "cv")
	last := cellFloat(t, tab, len(tab.Rows)-1, "cv")
	if last > first/4 {
		t.Fatalf("cv fell only %v → %v over the n sweep", first, last)
	}
}

func TestFig3SavingsShrinkWithN(t *testing.T) {
	tab, err := Fig3(1)
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, tab, 0, "save(y*)")
	last := cellFloat(t, tab, len(tab.Rows)-1, "save(y*)")
	if !(first > last) {
		t.Fatalf("optimal savings should shrink with n: %v vs %v", first, last)
	}
	// Measured savings track the model within a reasonable band.
	for i := range tab.Rows {
		model := cellFloat(t, tab, i, "save(y*)")
		meas := cellFloat(t, tab, i, "measured")
		if meas < model/2 || meas > model*3 {
			t.Fatalf("row %d: measured %v implausible vs model %v", i, meas, model)
		}
	}
}

func TestFig5ShapeCrossoverAndSpeedup(t *testing.T) {
	tab, err := Fig5(testRecs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper claims: (a) below the crossover EARL switches back without
	// overhead (speedup exactly 1); (b) ≥4x well past the crossover;
	// (c) the speedup grows monotonically with data size.
	sawSwitchback := false
	prev := 0.0
	for i := range tab.Rows {
		mode := cell(t, tab, i, "mode")
		sp := cellFloat(t, tab, i, "speedup")
		if strings.Contains(mode, "full") {
			sawSwitchback = true
			if sp != 1.0 {
				t.Fatalf("switchback row %d has speedup %v", i, sp)
			}
		}
		if sp+1e-9 < prev {
			t.Fatalf("speedup not monotone at row %d: %v after %v", i, sp, prev)
		}
		prev = sp
	}
	if !sawSwitchback {
		t.Fatal("no switchback region — the sub-crossover behaviour is missing")
	}
	last := cellFloat(t, tab, len(tab.Rows)-1, "speedup")
	if last < 4 {
		t.Fatalf("speedup at the largest size is %vx, paper claims ≥4x", last)
	}
}

func TestFig6MedianSpeedups(t *testing.T) {
	tab, err := Fig6(testRecs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// EARL (either variant) must beat stock by ≥3x from a few GB on.
	lastNaive := cellFloat(t, tab, len(tab.Rows)-1, "naive speedup")
	if lastNaive < 3 {
		t.Fatalf("naive speedup %v < paper's 3x", lastNaive)
	}
	// The resampling-phase note must show the §4 optimization winning.
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "resampling PHASE") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing resampling-phase measurement")
	}
}

func TestFig7KMeansWinsAndStaysAccurate(t *testing.T) {
	tab, err := Fig7(testRecs/2, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := cellFloat(t, tab, len(tab.Rows)-1, "speedup")
	if last < 4 {
		t.Fatalf("K-Means speedup %v at the largest size", last)
	}
	// Centroid-accuracy claim lives in the notes; both fits ≤ 5%.
	for _, n := range tab.Notes {
		if strings.Contains(n, "centroid error") && strings.Contains(n, "%") {
			// presence is enough; the 5% bound is asserted in core tests
			return
		}
	}
	t.Fatal("missing centroid error notes")
}

func TestFig8EmpiricalBelowTheoreticalB(t *testing.T) {
	tab, err := Fig8(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		bEmp := cellFloat(t, tab, i, "B empirical")
		bTheory := cellFloat(t, tab, i, "B theory")
		if bEmp >= bTheory {
			t.Fatalf("row %d: empirical B %v not below theory %v", i, bEmp, bTheory)
		}
	}
	// n empirical within a factor 3 of normal theory across tolerances.
	for i := range tab.Rows {
		ratio := cellFloat(t, tab, i, "n emp/theory")
		if ratio < 0.33 || ratio > 3 {
			t.Fatalf("row %d: n emp/theory %v out of band", i, ratio)
		}
	}
}

func TestFig9PreMapWins(t *testing.T) {
	tab, err := Fig9(testRecs, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := range tab.Rows {
		r := cellFloat(t, tab, i, "post/pre")
		if r < 1 {
			t.Fatalf("row %d: post-map faster than pre-map (%v)", i, r)
		}
		if r+1e-9 < prev {
			t.Fatalf("post/pre ratio should grow with data: %v after %v", r, prev)
		}
		prev = r
	}
}

func TestFig9AblationBlockBias(t *testing.T) {
	tab, err := Fig9Ablation(testRecs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var preErr, blockErr float64
	for i := range tab.Rows {
		switch cell(t, tab, i, "sampler") {
		case "pre-map":
			preErr = cellFloat(t, tab, i, "rel error")
		case "block":
			blockErr = cellFloat(t, tab, i, "rel error")
		}
	}
	if blockErr < 10*preErr {
		t.Fatalf("block sampling should be far worse on clustered data: block %v vs pre-map %v", blockErr, preErr)
	}
}

func TestFig10OptimizationCompounds(t *testing.T) {
	tab, err := Fig10(1)
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, tab, 0, "speedup")
	last := cellFloat(t, tab, len(tab.Rows)-1, "speedup")
	if last < first {
		t.Fatalf("delta-maintenance advantage should grow with size: %v → %v", first, last)
	}
	// The paper's ≈3x at the 4 GB point: accept a generous band.
	if last < 2 || last > 10 {
		t.Fatalf("speedup at 4GB = %v, want near the paper's ≈3x", last)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "long-column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestAblationSketchCFewerRefreshesWithLargerC(t *testing.T) {
	tab, err := AblationSketchC(1)
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, tab, 0, "disk seeks")              // c=0.25
	last := cellFloat(t, tab, len(tab.Rows)-1, "disk seeks") // c=5
	if last > first/4 {
		t.Fatalf("larger sketches should slash disk refreshes: %v → %v", first, last)
	}
	// The paper's 3-sigma sizing: the c=3 row should touch disk at least
	// an order of magnitude less than the starved c=0.25 configuration.
	for i := range tab.Rows {
		if cell(t, tab, i, "c") == "3.00" {
			if s := cellFloat(t, tab, i, "disk seeks"); s > first/10 {
				t.Fatalf("c=3 should absorb almost all updates, got %v seeks (c=0.25: %v)", s, first)
			}
		}
	}
}

func TestAblationSSABESingleIteration(t *testing.T) {
	tab, err := AblationSSABE(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, 0, "iterations"); got != "1" {
		t.Fatalf("SSABE iterations = %s, want 1", got)
	}
	naiveIters := cellFloat(t, tab, 1, "iterations")
	if naiveIters < 2 {
		t.Fatalf("naive doubling converged in %v iterations — not a contrast", naiveIters)
	}
}

func TestAblationPipelineWins(t *testing.T) {
	tab, err := AblationPipeline(1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch := cellFloat(t, tab, 0, "modeled time")
	pipe := cellFloat(t, tab, 1, "modeled time")
	if pipe > batch {
		t.Fatalf("pipelined %v should not exceed batch %v", pipe, batch)
	}
}

func TestAblationJackknifeErratic(t *testing.T) {
	tab, err := AblationJackknife(1)
	if err != nil {
		t.Fatal(err)
	}
	var meanRatios, medianRatios []float64
	for i := range tab.Rows {
		r := cellFloat(t, tab, i, "jack/boot")
		if cell(t, tab, i, "statistic") == "mean" {
			meanRatios = append(meanRatios, r)
		} else {
			medianRatios = append(medianRatios, r)
		}
	}
	spread := func(xs []float64) float64 {
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return max / min
	}
	if spread(meanRatios) > 1.3 {
		t.Fatalf("mean ratios should be tight: %v", meanRatios)
	}
	if spread(medianRatios) < 1.3 {
		t.Fatalf("median ratios should be erratic: %v", medianRatios)
	}
}

func TestAppendixA(t *testing.T) {
	tab, err := AppendixA(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Block bootstrap must report a larger stderr than iid on AR(1).
	iid := cellFloat(t, tab, 1, "value")
	blk := cellFloat(t, tab, 2, "value")
	if blk < 1.5*iid {
		t.Fatalf("block stderr %v should far exceed iid %v", blk, iid)
	}
	if !strings.Contains(cell(t, tab, 0, "comment"), "yes") {
		t.Fatalf("z-interval failed to cover the true proportion: %s", cell(t, tab, 0, "comment"))
	}
}
