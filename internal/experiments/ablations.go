package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/aes"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/simcost"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationSketchC sweeps the sketch constant c of §4.1. Larger sketches
// cost memory but absorb more delta-maintenance updates before touching
// the disk layer; the paper: "a larger c will cost more memory space but
// will introduce less randomized update latency". The 3-sigma argument
// says c=3 should eliminate almost all refreshes.
func AblationSketchC(seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Ablation — sketch constant c (§4.1): disk refreshes during delta maintenance (mean, B=20, 6 growths)",
		Columns: []string{"c", "sketch size (n=32k)", "disk seeks", "bytes touched", "maintenance ms"},
	}
	for _, c := range []float64{0.25, 0.5, 1, 2, 3, 5} {
		var m simcost.Metrics
		maint, err := delta.New(delta.Config{
			Reducer: jobs.Mean().Reducer, B: 20, C: c, Seed: seed, Metrics: &m, Key: "abl-c",
			Parallelism: Parallelism,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for g := 0; g < 6; g++ {
			ds, err := workload.NumericSpec{Dist: workload.Gaussian, N: 1 << 13, Seed: seed + uint64(g)}.Generate()
			if err != nil {
				return nil, err
			}
			if err := maint.Grow(ds); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		s := m.Snapshot()
		sketchSize := int(c * 181) // c·√32768 ≈ c·181
		t.AddRow(
			fmt.Sprintf("%.2f", c),
			fmt.Sprintf("%d", sketchSize),
			fmt.Sprintf("%d", s.DiskSeeks),
			fmt.Sprintf("%d", s.BytesRead+s.BytesWritten),
			fmt.Sprintf("%.0f", elapsed.Seconds()*1000),
		)
	}
	t.Notes = append(t.Notes,
		"the paper's 3-sigma sizing: c=3 covers ≈99.7% of per-iteration updates — seeks should hit ~0 there",
		"undersized sketches (c<1) force the §4.1 disk path: commit + resample on every exhaustion")
	return t, nil
}

// AblationSSABE compares SSABE against the §3.2 strawman it replaces:
// "pick an initial sample size … if the resulting error is greater than
// σ then the sample size is increased (e.g., doubled)" — and likewise a
// naive doubling of B. The cost is counted in records drawn and
// statistic evaluations until the target σ is actually met.
func AblationSSABE(seed uint64) (*Table, error) {
	const sigma = 0.05
	data, err := workload.NumericSpec{Dist: workload.Uniform, N: 1 << 17, Seed: seed}.Generate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0xab1))
	drawSample := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = data[rng.IntN(len(data))]
		}
		return out
	}

	// SSABE.
	pilot := drawSample(4096)
	plan, err := aes.SSABE(pilot, int64(len(data)), aes.Config{
		Reducer: jobs.Mean().Reducer, Sigma: sigma, Seed: seed + 1, Key: "abl",
		Parallelism: Parallelism,
	})
	if err != nil {
		return nil, err
	}
	ssabeEvals := plan.B + 5*plan.B // phase 1 values + phase 2 (L=5 growths × B finalizes)
	ssabeRecords := 4096

	// Naive doubling: start at n=16, B=10; double n (and B every other
	// round) until the measured cv ≤ σ; every round redraws and
	// recomputes everything.
	n, b := 16, 10
	naiveRecords, naiveEvals, rounds := 0, 0, 0
	var finalCV float64
	for {
		rounds++
		s := drawSample(n)
		naiveRecords += n
		res, err := bootstrap.MonteCarlo(rng, s, bootstrap.Mean, b)
		if err != nil {
			return nil, err
		}
		naiveEvals += b
		finalCV = res.CV
		if res.CV <= sigma || n >= len(data)/2 {
			break
		}
		n *= 2
		if rounds%2 == 0 {
			b *= 2
		}
	}

	t := &Table{
		Title:   "Ablation — SSABE (§3.2) vs naive doubling: cost to reach σ=5% (mean)",
		Columns: []string{"strategy", "iterations", "records drawn", "f evaluations", "final B", "final n", "job submissions"},
	}
	// SSABE runs its pilot in LOCAL mode — no cluster job until the one
	// real run; every naive round is a fresh MR job (6 s submission on
	// the paper's testbed, §3.2's "fast estimation … without launching a
	// separate JVM").
	model := simcost.Hadoop2012()
	t.AddRow("SSABE", "1", fmt.Sprintf("%d", ssabeRecords), fmt.Sprintf("%d", ssabeEvals),
		fmt.Sprintf("%d", plan.B), fmt.Sprintf("%d", plan.N),
		fmt.Sprintf("1 (%.0fs)", model.JobStartup.Seconds()))
	t.AddRow("naive doubling", fmt.Sprintf("%d", rounds), fmt.Sprintf("%d", naiveRecords),
		fmt.Sprintf("%d", naiveEvals), fmt.Sprintf("%d", b), fmt.Sprintf("%d", n),
		fmt.Sprintf("%d (%.0fs)", rounds, float64(rounds)*model.JobStartup.Seconds()))
	t.Notes = append(t.Notes,
		fmt.Sprintf("naive final cv %.4f; SSABE solves the fitted curve once and needs a single iteration (§3.2: \"our algorithm requires only a single iteration\")", finalCV),
		"the naive strategy 'may result in an overestimate of the sample size and the number of resamples' — compare final n and B")
	return t, nil
}

// AblationPipeline measures what the pipelined execution mode buys the
// EARL loop: shuffle time hidden behind the map phase (§2.1's first
// Hadoop modification, inherited from HOP).
func AblationPipeline(laptopRecs int, seed uint64) (*Table, error) {
	if laptopRecs <= 0 {
		laptopRecs = 1 << 18
	}
	model := simcost.Hadoop2012()
	env, err := measureEnv(laptopRecs, seed)
	if err != nil {
		return nil, err
	}
	if _, err := core.Run(env, jobs.Mean(), "/data", core.Options{
		Sigma: 0.05, Seed: seed + 1, ForceB: 30, ForceN: 4096,
		Parallelism: Parallelism,
	}); err != nil {
		return nil, err
	}
	cost := env.Metrics.Snapshot()
	t := &Table{
		Title:   "Ablation — pipelined vs batch shuffle for the EARL sampling job",
		Columns: []string{"execution", "modeled time", "shuffle bytes"},
	}
	t.AddRow("batch (stock shuffle)", fms(model.Duration(cost)), fmt.Sprintf("%d", cost.BytesShuffled))
	t.AddRow("pipelined (EARL/HOP)", fms(model.PipelinedDuration(cost)), fmt.Sprintf("%d", cost.BytesShuffled))
	t.Notes = append(t.Notes,
		"pipelining overlaps the mapper→reducer transfer with mapping; EARL additionally needs it so reducers can estimate errors before mappers finish (§2.1)")
	return t, nil
}

// AblationJackknife is the motivation for the paper's choice of the
// bootstrap (§3): on the mean both resampling methods agree with theory,
// on the median the delete-1 jackknife is inconsistent.
func AblationJackknife(seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Ablation — bootstrap vs jackknife error estimates (§3): why EARL uses the bootstrap",
		Columns: []string{"statistic", "trial", "bootstrap stderr", "jackknife stderr", "jack/boot"},
	}
	for _, stat := range []struct {
		name string
		f    bootstrap.Statistic
	}{{"mean", bootstrap.Mean}, {"median", bootstrap.Median}} {
		for trial := 0; trial < 3; trial++ {
			xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 400, Seed: seed + uint64(trial)}.Generate()
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewPCG(seed+uint64(trial), 0x6a6b))
			boot, err := bootstrap.ParallelMonteCarlo(rng, xs, stat.f, 400, Parallelism)
			if err != nil {
				return nil, err
			}
			jack, err := bootstrap.Jackknife(xs, stat.f)
			if err != nil {
				return nil, err
			}
			t.AddRow(stat.name, fmt.Sprintf("%d", trial+1),
				f4(boot.StdErr), f4(jack.StdErr), f3(jack.StdErr/boot.StdErr))
		}
	}
	t.Notes = append(t.Notes,
		"mean: the ratio sits near 1 on every trial — either method works",
		"median: the jackknife ratio swings wildly across trials (delete-1 collapses onto ~2 order statistics) — \"jackknife does not work for many functions such as the median\" (§3)")
	return t, nil
}

// AppendixA regenerates the appendix's two extensions: categorical data
// via binomial proportions with z-intervals, and dependent data via the
// moving-block bootstrap.
func AppendixA(seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Appendix A — categorical data (z-interval) and dependent data (block bootstrap)",
		Columns: []string{"experiment", "estimate", "error measure", "value", "comment"},
	}
	// Categorical: proportion of successes with a 95% z-interval.
	const trueP = 0.3
	xs, err := workload.CategoricalSpec{P: trueP, N: 200_000, Seed: seed}.Generate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0xaa))
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = xs[rng.IntN(len(xs))]
	}
	p, hw, err := bootstrap.Proportion(sample, 0.95)
	if err != nil {
		return nil, err
	}
	covered := "no"
	if p-hw <= trueP && trueP <= p+hw {
		covered = "yes"
	}
	t.AddRow("proportion (n=2000)", f4(p), "z 95% half-width", f4(hw),
		fmt.Sprintf("true p=%.2f inside interval: %s", trueP, covered))

	// Dependent data: AR(1) mean stderr, iid vs moving-block bootstrap,
	// vs the analytic truth for an AR(1) mean.
	series, err := workload.AR1Spec{Phi: 0.8, Sigma: 1, Mu: 10, N: 8000, Seed: seed + 1}.Generate()
	if err != nil {
		return nil, err
	}
	iid, err := bootstrap.ParallelMonteCarlo(rng, series, bootstrap.Mean, 300, Parallelism)
	if err != nil {
		return nil, err
	}
	blockLen := bootstrap.AutoBlockLength(len(series)) * 4
	blk, err := bootstrap.ParallelMovingBlock(rng, series, blockLen, bootstrap.Mean, 300, Parallelism)
	if err != nil {
		return nil, err
	}
	// Analytic: var(x̄) ≈ (σ²/(1−φ²))·(1+φ)/(1−φ)/n for AR(1).
	phi := 0.8
	se := math.Sqrt((1 / (1 - phi*phi)) * (1 + phi) / (1 - phi) / float64(len(series)))
	m, _ := stats.Mean(series)
	t.AddRow("AR(1) mean, iid bootstrap", f4(m), "stderr", f4(iid.StdErr),
		fmt.Sprintf("analytic stderr ≈ %.4f — iid understates", se))
	t.AddRow(fmt.Sprintf("AR(1) mean, block bootstrap (b=%d)", blockLen), f4(m), "stderr", f4(blk.StdErr),
		"within-block dependence preserved (App. A)")
	t.Notes = append(t.Notes,
		"the binomial proportion is asymptotically normal, so z-tests apply on top of EARL's sample (App. A)",
		"block sampling of consecutive observations is the paper's prescription for b-dependent data")
	return t, nil
}
