package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/simcost"
	"repro/internal/workload"
)

// Fig7 reproduces Figure 7: K-Means with EARL vs stock Hadoop. The stock
// flow runs one MR job per Lloyd iteration over the whole point file;
// EARL clusters a sample with a bootstrap bound on the clustering cost
// (§6.3), winning twice — less data per pass, and faster convergence on
// the smaller set. Both fits are also checked against the generator's
// true centers (the paper: within 5% of optimal).
func Fig7(laptopPts int, seed uint64) (*Table, error) {
	if laptopPts <= 0 {
		laptopPts = 200_000
	}
	model := simcost.Hadoop2012()
	const k = 4
	kcfg := jobs.KMeans{K: k, Seed: seed + 1}

	pts, truth, err := workload.MixtureSpec{
		K: k, Dim: 2, N: laptopPts, Spread: 2.0, Sep: 120, Seed: seed,
	}.Generate()
	if err != nil {
		return nil, err
	}
	ptBytes := len(workload.EncodePoints(pts))

	// Stock iterated-MR K-Means.
	env, err := core.NewEnv(core.EnvConfig{BlockSize: 1 << 16, SlotsPerNode: 4, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := env.FS.WriteFile("/pts", workload.EncodePoints(pts)); err != nil {
		return nil, err
	}
	env.Metrics.Reset()
	startStock := time.Now()
	stockFit, err := kcfg.FitMR(env.Engine, "/pts", 0)
	if err != nil {
		return nil, err
	}
	stockReal := time.Since(startStock)
	stockCost := env.Metrics.Snapshot()
	stockErr, err := jobs.CentroidError(stockFit.Centers, truth)
	if err != nil {
		return nil, err
	}

	// EARL early K-Means.
	env2, err := core.NewEnv(core.EnvConfig{BlockSize: 1 << 16, SlotsPerNode: 4, Seed: seed + 2})
	if err != nil {
		return nil, err
	}
	if err := env2.FS.WriteFile("/pts", workload.EncodePoints(pts)); err != nil {
		return nil, err
	}
	env2.Metrics.Reset()
	startEarl := time.Now()
	rep, err := core.RunKMeans(env2, "/pts", kcfg, core.KMeansOptions{Sigma: 0.05, Seed: seed + 3})
	if err != nil {
		return nil, err
	}
	earlReal := time.Since(startEarl)
	earlCost := env2.Metrics.Snapshot()
	earlErr, err := jobs.CentroidError(rep.Centers, truth)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Figure 7 — K-Means: EARL vs stock Hadoop (modeled, paper testbed)",
		Columns: []string{"points", "data", "stock", "EARL", "speedup"},
	}
	const hdfsBlock = 64 << 20
	perPt := float64(ptBytes) / float64(laptopPts)
	for _, mult := range []float64{1, 4, 16, 64, 256, 1024} {
		nPts := float64(laptopPts) * mult
		sizeBytes := nPts * perPt
		// Stock: every Lloyd iteration scans everything; scale data terms
		// and per-iteration map tasks.
		sc := stockCost.ScaleAll(mult)
		sc.MapTasks = (int64(sizeBytes/hdfsBlock) + 1) * int64(stockFit.Iterations+1)
		sc.JobStartups = stockCost.JobStartups // one per Lloyd iteration, size-independent
		tStock := model.Duration(sc)
		// EARL: sample-driven, flat in data size.
		tEarl := model.PipelinedDuration(earlCost)
		t.AddRow(
			fmt.Sprintf("%.0f", nPts),
			fmt.Sprintf("%.2fGB", sizeBytes/(1<<30)),
			fms(tStock), fms(tEarl),
			f1(float64(tStock)/float64(tEarl))+"x",
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("stock: %d Lloyd iterations as MR jobs, real %.0f ms; centroid error vs truth %.2f%%",
			stockFit.Iterations, stockReal.Seconds()*1000, 100*stockErr),
		fmt.Sprintf("EARL: sample %d of %d pts, %d Lloyd iterations, cost cv %.3f, real %.0f ms; centroid error vs truth %.2f%% (paper bound: 5%%)",
			rep.SampleSize, laptopPts, rep.LloydIters, rep.CV, earlReal.Seconds()*1000, 100*earlErr),
		"EARL's two wins (§6.3): the sample is small, and K-Means converges faster on smaller data")
	return t, nil
}
