// Package aes implements EARL's Accuracy Estimation Stage (§3.1) and the
// Sample Size And Bootstrap Estimation algorithm, SSABE (§3.2).
//
// The AES consumes the result distribution — the B values of the user's
// statistic computed on B bootstrap resamples — and reduces it to an
// error measure. The default measure is the coefficient of variation
// cv = stddev/|mean|, but the stage is measure-agnostic (§3: "Our
// approach is independent of the error measure"), so variance, standard
// error and relative half-width measures are provided too.
//
// SSABE is the two-phase pilot that runs in "local mode" before the
// cluster job starts (§3.2):
//
//	phase 1 — grow the number of bootstraps B over a small pilot sample
//	          until the error estimate stabilises: |cv_i − cv_{i−1}| < τ;
//	phase 2 — split the pilot into l=5 geometrically growing subsamples
//	          n_i = n/2^(l−i), measure cv(n_i) with B resamples (reusing
//	          work via delta maintenance), least-squares fit the curve
//	          cv(n) = a + b/√n, and solve it for the n achieving the
//	          target σ.
//
// If B×n ≥ N, EARL tells the caller that early approximation cannot beat
// the exact job and the full data set should be processed instead.
package aes

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/delta"
	"repro/internal/mr"
	"repro/internal/simcost"
	"repro/internal/stats"
)

// Measure reduces a result distribution to a scalar error.
type Measure func(values []float64) (float64, error)

// CV is the default error measure: stddev/|mean| of the distribution.
func CV(values []float64) (float64, error) { return stats.CV(values) }

// StdErr is the plain standard deviation of the result distribution.
func StdErr(values []float64) (float64, error) { return stats.StdDev(values) }

// Variance is the variance of the result distribution.
func Variance(values []float64) (float64, error) { return stats.Variance(values) }

// Config parameterises the stage.
type Config struct {
	Reducer mr.IncrementalReducer
	Sigma   float64 // user-desired error bound σ
	// Tau is the stability threshold τ: phase 1 stops once the error
	// estimate's *relative* step |cv_i − cv_{i−1}| / cv_i has stayed
	// below τ for Stable consecutive B's. (The paper states τ as an
	// absolute difference; a relative criterion is the scale-free
	// equivalent — the pilot's cv magnitude depends on the pilot size,
	// which the user shouldn't have to know.) Defaults to 0.03, which
	// lands B in the paper's "roughly 30" regime (§3.1).
	Tau     float64
	L       int // subsample count for phase 2 (paper: 5)
	MaxB    int // cap on bootstraps (default 2/τ)
	Stable  int // consecutive stable steps required (robustness; ≥1)
	Seed    uint64
	Metrics *simcost.Metrics
	Measure Measure // CV if nil
	Key     string  // reduce key handed to Initialize
	// Parallelism is the worker-pool size for phase 2's delta-maintained
	// resampling: 0 (or negative) means runtime.GOMAXPROCS, 1 forces the
	// sequential path. Plan output is identical at any value for a fixed
	// Seed. (Phase 1 is inherently sequential: it adds one resample at a
	// time and early-stops on τ-stability.)
	Parallelism int
	// Replicates is how many independent delta-maintained runs phase 2
	// averages each curve point over (default 3). A single run measures
	// each cv from only B values (relative noise ≈ 1/√(2(B−1)), ~17% at
	// the paper's B≈30), and SolveN amplifies intercept noise badly;
	// averaging a few replicates stabilises the fitted curve at pilot
	// scale, where the extra resampling is cheap and rides the parallel
	// engine.
	Replicates int
}

func (c Config) withDefaults() (Config, error) {
	if c.Reducer == nil {
		return c, errors.New("aes: Config.Reducer is required")
	}
	if c.Sigma <= 0 {
		return c, fmt.Errorf("aes: Sigma must be positive, got %v", c.Sigma)
	}
	if c.Tau < 0 {
		return c, fmt.Errorf("aes: Tau must be positive, got %v", c.Tau)
	}
	if c.Tau == 0 {
		c.Tau = 0.03
	}
	if c.L <= 0 {
		c.L = 5
	}
	if c.MaxB <= 0 {
		c.MaxB = int(math.Ceil(2 / c.Tau))
	}
	if c.MaxB < 3 {
		c.MaxB = 3
	}
	if c.Stable <= 0 {
		c.Stable = 3
	}
	if c.Measure == nil {
		c.Measure = CV
	}
	if c.Replicates <= 0 {
		c.Replicates = 3
	}
	return c, nil
}

// statistic computes the reducer's value on one item slice.
func statistic(red mr.IncrementalReducer, key string, items []float64) (float64, error) {
	st, err := red.Initialize(key, items)
	if err != nil {
		return 0, err
	}
	return red.Finalize(st)
}

// EstimateB runs phase 1 on the pilot sample: resamples are added one at
// a time (each new candidate B reuses all previous resamples, the
// incremental-processing observation of §4), and the loop stops once the
// error measure has moved less than τ for cfg.Stable consecutive steps.
// It returns the chosen B and the cv trace indexed by B−2.
func EstimateB(pilot []float64, cfg Config) (int, []float64, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return 0, nil, err
	}
	if len(pilot) < 2 {
		return 0, nil, stats.ErrShortInput
	}
	rng := newRNG(cfg.Seed)
	values := make([]float64, 0, cfg.MaxB)
	buf := make([]float64, len(pilot))
	drawValue := func() error {
		for i := range buf {
			buf[i] = pilot[rng.IntN(len(pilot))]
		}
		v, err := statistic(cfg.Reducer, cfg.Key, buf)
		if err != nil {
			return err
		}
		values = append(values, v)
		return nil
	}
	for i := 0; i < 2; i++ {
		if err := drawValue(); err != nil {
			return 0, nil, err
		}
	}
	trace := []float64{}
	prev, err := cfg.Measure(values)
	if err != nil {
		return 0, nil, err
	}
	trace = append(trace, prev)
	stable := 0
	for b := 3; b <= cfg.MaxB; b++ {
		if err := drawValue(); err != nil {
			return 0, nil, err
		}
		cur, err := cfg.Measure(values)
		if err != nil {
			return 0, nil, err
		}
		trace = append(trace, cur)
		scale := math.Abs(cur)
		if scale == 0 {
			scale = 1e-12
		}
		if math.Abs(cur-prev)/scale < cfg.Tau {
			stable++
			if stable >= cfg.Stable {
				return b, trace, nil
			}
		} else {
			stable = 0
		}
		prev = cur
	}
	return cfg.MaxB, trace, nil
}

// CurvePoint is one (subsample size, error) observation from phase 2.
type CurvePoint struct {
	N  int
	CV float64
}

// EstimateN runs phase 2: the pilot is split into cfg.L geometrically
// growing prefixes n_i = len(pilot)/2^(L−i); the error is measured on
// each with B resamples using a delta.Maintainer (so each step reuses the
// previous step's resamples), the curve cv(n) = a + b/√n is fitted and
// solved for σ. ok=false means the fitted curve never reaches σ — the
// caller should fall back to the full data set. Each curve point is
// averaged over cfg.Replicates independent maintained runs to tame the
// B-value noise of a single cv measurement before the fit.
func EstimateN(pilot []float64, b int, cfg Config) (n int, ok bool, curve stats.CVCurve, points []CurvePoint, err error) {
	cfg, err = cfg.withDefaults()
	if err != nil {
		return 0, false, stats.CVCurve{}, nil, err
	}
	if b < 2 {
		return 0, false, stats.CVCurve{}, nil, fmt.Errorf("aes: need B ≥ 2, got %d", b)
	}
	minSize := 1 << (cfg.L - 1)
	if len(pilot) < minSize*2 {
		return 0, false, stats.CVCurve{}, nil, fmt.Errorf("aes: pilot of %d too small for L=%d subsamples", len(pilot), cfg.L)
	}
	for r := 0; r < cfg.Replicates; r++ {
		rep, err := estimateNReplicate(pilot, b, cfg, r)
		if err != nil {
			return 0, false, stats.CVCurve{}, nil, err
		}
		if points == nil {
			points = rep
		} else {
			for i := range points {
				points[i].CV += rep[i].CV
			}
		}
	}
	for i := range points {
		points[i].CV /= float64(cfg.Replicates)
	}
	ns := make([]int, len(points))
	cvs := make([]float64, len(points))
	for i, pt := range points {
		ns[i] = pt.N
		cvs[i] = pt.CV
	}
	curve, err = stats.FitCVCurve(ns, cvs)
	if err != nil {
		return 0, false, curve, points, err
	}
	n, ok = curve.SolveN(cfg.Sigma)
	return n, ok, curve, points, nil
}

// estimateNReplicate runs one delta-maintained pass over the phase-2
// growth schedule and returns the cv at each prefix size. Replicate r
// owns a fixed seed offset, so the averaged curve is deterministic.
func estimateNReplicate(pilot []float64, b int, cfg Config, r int) ([]CurvePoint, error) {
	maint, err := delta.New(delta.Config{
		Reducer:     cfg.Reducer,
		B:           b,
		Seed:        cfg.Seed + 1 + uint64(r)*0x9e37,
		Metrics:     cfg.Metrics,
		Key:         cfg.Key,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	var points []CurvePoint
	prevEnd := 0
	for i := 1; i <= cfg.L; i++ {
		end := len(pilot) >> (cfg.L - i) // n_i = n / 2^(L-i)
		if end <= prevEnd {
			continue
		}
		if err := maint.Grow(pilot[prevEnd:end]); err != nil {
			return nil, err
		}
		prevEnd = end
		vals, err := maint.Results()
		if err != nil {
			return nil, err
		}
		cv, err := cfg.Measure(vals)
		if err != nil {
			return nil, err
		}
		points = append(points, CurvePoint{N: end, CV: cv})
	}
	return points, nil
}

// Plan is SSABE's output: either run the user job with B bootstraps over
// a sample of size N, or run it exactly over the whole data set.
type Plan struct {
	B       int
	N       int
	UseFull bool // B×N ≥ total: early approximation will not pay off
	Curve   stats.CVCurve
	BTrace  []float64    // cv trace from phase 1 (Fig. 2a's series)
	Points  []CurvePoint // phase-2 observations (Fig. 2b's series)
}

// SSABE runs both phases over the pilot sample and applies the
// B×n ≥ N cutoff (§3.1) against totalN, the full data-set size.
func SSABE(pilot []float64, totalN int64, cfg Config) (Plan, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Plan{}, err
	}
	b, trace, err := EstimateB(pilot, cfg)
	if err != nil {
		return Plan{}, fmt.Errorf("aes: phase 1: %w", err)
	}
	n, ok, curve, points, err := EstimateN(pilot, b, cfg)
	if err != nil {
		return Plan{}, fmt.Errorf("aes: phase 2: %w", err)
	}
	plan := Plan{B: b, N: n, Curve: curve, BTrace: trace, Points: points}
	if !ok || int64(b)*int64(n) >= totalN {
		plan.UseFull = true
	}
	return plan, nil
}

// Stability measures τ-stability of consecutive error estimates: it
// returns |cv_i − cv_{i−1}| given the previous and current estimates —
// the quantity the paper defines as τ's operational meaning.
func Stability(prev, cur float64) float64 { return math.Abs(cur - prev) }
