package aes

import "math/rand/v2"

// newRNG builds the package's deterministic PCG stream for a seed.
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x71374491428a2f98))
}
