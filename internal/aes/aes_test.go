package aes

import (
	"math"
	"testing"

	"repro/internal/mr"
	"repro/internal/stats"
	"repro/internal/workload"
)

// meanReducer is the mean statistic with Remove support.
type meanReducer struct{}

type meanState struct{ w stats.Welford }

func (s *meanState) Remove(v float64) error { s.w.Remove(v); return nil }

func (meanReducer) Initialize(key string, values []float64) (mr.State, error) {
	st := &meanState{}
	for _, v := range values {
		st.w.Add(v)
	}
	return st, nil
}

func (meanReducer) Update(state mr.State, input any) (mr.State, error) {
	st, ok := state.(*meanState)
	if !ok {
		return nil, mr.ErrBadState
	}
	switch x := input.(type) {
	case float64:
		st.w.Add(x)
	case *meanState:
		st.w.Merge(x.w)
	default:
		return nil, mr.ErrBadInput
	}
	return st, nil
}

func (meanReducer) Finalize(state mr.State) (float64, error) {
	st, ok := state.(*meanState)
	if !ok {
		return 0, mr.ErrBadState
	}
	return st.w.Mean(), nil
}

func (meanReducer) Correct(result, p float64) float64 { return result }

func pilotData(n int, seed uint64) []float64 {
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: n, Seed: seed}.Generate()
	if err != nil {
		panic(err)
	}
	return xs
}

func baseConfig() Config {
	return Config{
		Reducer: meanReducer{},
		Sigma:   0.05,
		Seed:    7,
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := EstimateB(pilotData(100, 1), Config{Sigma: 0.05}); err == nil {
		t.Fatal("missing reducer should error")
	}
	bad := baseConfig()
	bad.Sigma = 0
	if _, _, err := EstimateB(pilotData(100, 1), bad); err == nil {
		t.Fatal("sigma=0 should error")
	}
	bad = baseConfig()
	bad.Tau = -1
	if _, _, err := EstimateB(pilotData(100, 1), bad); err == nil {
		t.Fatal("negative tau should error")
	}
	if _, _, err := EstimateB([]float64{1}, baseConfig()); err == nil {
		t.Fatal("tiny pilot should error")
	}
}

func TestEstimateBReasonableRange(t *testing.T) {
	// The paper: "Normally roughly 30 bootstraps are required to provide
	// a confident estimate of the error" (§3.1), far below the
	// theoretical 1/(2ε₀²). Accept a broad band around that.
	b, trace, err := EstimateB(pilotData(500, 3), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b < 5 || b > 80 {
		t.Fatalf("B = %d, want in the tens", b)
	}
	if len(trace) != b-1 {
		t.Fatalf("trace length %d for B=%d", len(trace), b)
	}
	theory, _ := stats.TheoreticalBootstraps(0.03)
	if b >= theory {
		t.Fatalf("empirical B=%d should be far below theoretical %d", b, theory)
	}
}

func TestEstimateBDeterministic(t *testing.T) {
	b1, _, err := EstimateB(pilotData(300, 4), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := EstimateB(pilotData(300, 4), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatalf("same seed gave B=%d and B=%d", b1, b2)
	}
}

func TestEstimateBRespectsMaxB(t *testing.T) {
	cfg := baseConfig()
	cfg.Tau = 1e-9 // unreachable stability
	cfg.MaxB = 20
	b, _, err := EstimateB(pilotData(200, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b != 20 {
		t.Fatalf("B = %d, want MaxB=20", b)
	}
}

func TestEstimateNFindsTarget(t *testing.T) {
	cfg := baseConfig()
	pilot := pilotData(4000, 6)
	n, ok, curve, points, err := EstimateN(pilot, 30, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no n found; curve %+v points %+v", curve, points)
	}
	if len(points) != 5 {
		t.Fatalf("got %d curve points, want L=5", len(points))
	}
	// Gaussian(50,15): popCV = 0.3, so n ≈ (0.3/0.05)² = 36 for σ=0.05.
	if n < 10 || n > 400 {
		t.Fatalf("n = %d, want near the theoretical ≈36", n)
	}
	// Verify empirically: a sample of size n should deliver cv ≤ ~σ.
	val := curve.Eval(n)
	if val > cfg.Sigma+1e-9 {
		t.Fatalf("curve at solved n: %v > σ", val)
	}
}

func TestEstimateNValidation(t *testing.T) {
	cfg := baseConfig()
	if _, _, _, _, err := EstimateN(pilotData(10, 1), 30, cfg); err == nil {
		t.Fatal("pilot too small should error")
	}
	if _, _, _, _, err := EstimateN(pilotData(4000, 1), 1, cfg); err == nil {
		t.Fatal("B=1 should error")
	}
}

func TestSSABEPlanSamplePath(t *testing.T) {
	cfg := baseConfig()
	plan, err := SSABE(pilotData(4000, 8), 10_000_000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseFull {
		t.Fatalf("expected sampling plan, got full run: %+v", plan)
	}
	if plan.B < 5 || plan.N < 1 {
		t.Fatalf("degenerate plan %+v", plan)
	}
	if int64(plan.B)*int64(plan.N) >= 10_000_000 {
		t.Fatalf("plan exceeds cutoff: %+v", plan)
	}
}

func TestSSABEFallsBackToFullRun(t *testing.T) {
	cfg := baseConfig()
	// A tiny "full" data set: sampling cannot possibly pay off.
	plan, err := SSABE(pilotData(4000, 9), 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UseFull {
		t.Fatalf("expected full-run fallback, got %+v", plan)
	}
}

func TestSSABEUnreachableSigma(t *testing.T) {
	cfg := baseConfig()
	cfg.Sigma = 1e-12 // unreachable by any n the curve can model
	plan, err := SSABE(pilotData(4000, 10), 1_000_000_000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UseFull {
		t.Fatalf("unreachable sigma must fall back to full run, got %+v", plan)
	}
}

func TestPaperHeadlineMeanNeedsOnePercentAnd30(t *testing.T) {
	// §6.4: "In the case of the sample mean … for a 5% error threshold, a
	// 1% uniform sample and 30 bootstraps are required." Reproduce the
	// spirit: for a 1M-record uniform data set, SSABE's B lands in the
	// tens and N is ≲1% of the data.
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 20000, Seed: 11}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	plan, err := SSABE(xs[:4000], 1_000_000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UseFull {
		t.Fatalf("expected sampling plan: %+v", plan)
	}
	if plan.B < 5 || plan.B > 80 {
		t.Fatalf("B = %d, want tens", plan.B)
	}
	if plan.N > 10000 { // 1% of 1M
		t.Fatalf("N = %d, want ≤ 1%% of 1M", plan.N)
	}
}

func TestMeasures(t *testing.T) {
	vals := []float64{4, 6}
	cv, err := CV(vals)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := StdErr(vals)
	va, _ := Variance(vals)
	if math.Abs(cv-sd/5) > 1e-12 {
		t.Fatalf("cv %v, stderr %v", cv, sd)
	}
	if math.Abs(va-sd*sd) > 1e-12 {
		t.Fatalf("var %v vs sd² %v", va, sd*sd)
	}
}

func TestStability(t *testing.T) {
	if Stability(0.05, 0.07) != 0.02 && math.Abs(Stability(0.05, 0.07)-0.02) > 1e-15 {
		t.Fatal("stability distance wrong")
	}
}

func TestEstimateBWithCustomMeasure(t *testing.T) {
	cfg := baseConfig()
	cfg.Measure = StdErr
	cfg.Tau = 0.05
	b, _, err := EstimateB(pilotData(300, 12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b < 3 {
		t.Fatalf("B = %d", b)
	}
}
