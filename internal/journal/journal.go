// Package journal is the dfs commit log: an append-only sequence of
// CRC-verified records, one per namespace mutation (WriteFile, Append,
// Delete), that makes ingest crash-safe and replayable. It borrows the
// colseg framing idiom — magic-bracketed little-endian sections, each
// payload covered by a CRC-32C (Castagnoli, hardware-accelerated) — but
// where a sidecar is derived state the journal is the opposite: it IS
// the durable truth, and the in-memory namespace is what replaying it
// reconstructs.
//
// # Layout
//
// A journal is a header followed by zero or more records:
//
//	header  (8 bytes)
//	  magic    8  "EARLJNL1"
//	record* (framed, variable length)
//	  seq      8  int64 LE, 1-based, strictly sequential
//	  op       1  Op (1 write, 2 append, 3 delete)
//	  pathLen  4  uint32 LE
//	  dataLen  8  int64 LE
//	  path     pathLen bytes
//	  data     dataLen bytes
//	  crc      4  uint32 LE CRC-32C over seq..data
//
// # Torn tails vs corruption
//
// A crash can tear exactly one record: the one being written when the
// power went. Replay therefore distinguishes two failure shapes:
//
//   - a *torn tail* — the final record is truncated mid-frame, or its
//     frame reaches exactly end-of-journal but the CRC fails. Replay
//     drops it, reports TornTail with the clean truncation point, and
//     the recovered state is the last fully committed prefix. Never an
//     error: this is the expected shape of a crash.
//   - *interior corruption* — a record fails its CRC (or carries an
//     out-of-sequence seq) with more journal bytes after it. No single
//     torn write produces that, so replay refuses with ErrCorrupt
//     rather than silently dropping committed history.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Op identifies the namespace mutation a record carries.
type Op byte

// The journaled mutation kinds.
const (
	OpWrite  Op = 1 // WriteFile: replace path with data
	OpAppend Op = 2 // Append: extend path with data
	OpDelete Op = 3 // Delete: remove path (no data)
)

// String implements fmt.Stringer for log lines and test failures.
func (op Op) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpAppend:
		return "append"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", byte(op))
	}
}

const (
	magic = "EARLJNL1"
	// headerSize is the fixed prologue: just the magic.
	headerSize = 8
	// frameFixed is the fixed part of a record frame: seq, op, pathLen,
	// dataLen and the trailing CRC.
	frameFixed = 8 + 1 + 4 + 8 + 4
	// maxPathLen bounds the path field so a corrupt length cannot force
	// a huge allocation before the CRC gets a chance to reject it.
	maxPathLen = 1 << 16
)

// ErrCorrupt is the errors.Is-able sentinel for interior corruption —
// a record that fails verification with committed records after it.
// Torn tails are not errors; see Replay.
var ErrCorrupt = errors.New("journal: corrupt record")

// castagnoli is the CRC-32C table shared with colseg's framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one committed mutation.
type Record struct {
	Seq  int64 // 1-based, strictly sequential
	Op   Op
	Path string
	Data []byte // nil for OpDelete
}

// Log is an in-memory journal being written. The zero value is not
// ready; use New.
type Log struct {
	buf []byte
	n   int64 // records appended
}

// New returns an empty journal (header only).
func New() *Log {
	return &Log{buf: append([]byte(nil), magic...)}
}

// Append frames and appends one record, assigning the next sequence
// number, and returns it.
func (l *Log) Append(op Op, path string, data []byte) int64 {
	l.n++
	l.buf = appendRecord(l.buf, Record{Seq: l.n, Op: op, Path: path, Data: data})
	return l.n
}

// Records returns the number of records appended.
func (l *Log) Records() int64 { return l.n }

// Size returns the journal's size in bytes.
func (l *Log) Size() int64 { return int64(len(l.buf)) }

// Bytes returns a copy of the journal's bytes — the crash image a
// durable deployment would have on disk.
func (l *Log) Bytes() []byte { return append([]byte(nil), l.buf...) }

// Tear truncates the journal mid-way through its final record, leaving
// drop bytes missing from the frame — the shape a crash during the last
// commit's write leaves behind. It reports whether a tear happened (a
// journal with no records, or drop outside (0, frameLen), is left
// untouched).
func (l *Log) Tear(drop int64) bool {
	if l.n == 0 {
		return false
	}
	start := lastFrameStart(l.buf)
	frameLen := int64(len(l.buf)) - start
	if drop <= 0 || drop >= frameLen {
		return false
	}
	l.buf = l.buf[:int64(len(l.buf))-drop]
	l.n-- // the torn record was never committed
	return true
}

// lastFrameStart returns the byte offset where the final record's frame
// begins, by walking the frames from the front.
func lastFrameStart(buf []byte) int64 {
	pos := int64(headerSize)
	for {
		next, _, err := parseRecord(buf, pos)
		if err != nil || next >= int64(len(buf)) {
			return pos
		}
		pos = next
	}
}

// appendRecord frames rec onto dst.
func appendRecord(dst []byte, rec Record) []byte {
	base := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Seq))
	dst = append(dst, byte(rec.Op))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Path)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(rec.Data)))
	dst = append(dst, rec.Path...)
	dst = append(dst, rec.Data...)
	crc := crc32.Checksum(dst[base:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// parseRecord decodes the record whose frame starts at pos. It returns
// the offset just past the frame. Errors distinguish nothing — the
// caller (Replay) decides torn-tail vs corruption from the position.
func parseRecord(buf []byte, pos int64) (next int64, rec Record, err error) {
	if pos+frameFixed-4 > int64(len(buf)) {
		return 0, Record{}, errors.New("truncated frame header")
	}
	rec.Seq = int64(binary.LittleEndian.Uint64(buf[pos:]))
	rec.Op = Op(buf[pos+8])
	pathLen := int64(binary.LittleEndian.Uint32(buf[pos+9:]))
	dataLen := int64(binary.LittleEndian.Uint64(buf[pos+13:]))
	if pathLen > maxPathLen || dataLen < 0 || dataLen > int64(len(buf)) {
		return 0, Record{}, errors.New("implausible frame lengths")
	}
	end := pos + frameFixed + pathLen + dataLen
	if end > int64(len(buf)) {
		return 0, Record{}, errors.New("truncated frame body")
	}
	body := pos + frameFixed - 4
	want := binary.LittleEndian.Uint32(buf[end-4:])
	if crc32.Checksum(buf[pos:end-4], castagnoli) != want {
		return 0, Record{}, errors.New("crc mismatch")
	}
	if rec.Op != OpWrite && rec.Op != OpAppend && rec.Op != OpDelete {
		return 0, Record{}, fmt.Errorf("unknown op %d", byte(rec.Op))
	}
	rec.Path = string(buf[body : body+pathLen])
	if dataLen > 0 {
		rec.Data = append([]byte(nil), buf[body+pathLen:body+pathLen+dataLen]...)
	}
	return end, rec, nil
}

// ReplayStats reports what Replay found.
type ReplayStats struct {
	Records     int64 // fully committed records replayed
	Bytes       int64 // clean journal bytes (through the last good record)
	TornTail    bool  // a torn final record was detected and dropped
	DroppedTail int64 // bytes dropped past the clean truncation point
}

// Replay decodes every committed record of a journal image. A torn
// final record is dropped and reported in stats (never an error);
// interior corruption, out-of-sequence records, or a bad header return
// an error wrapping ErrCorrupt.
func Replay(buf []byte) ([]Record, ReplayStats, error) {
	var st ReplayStats
	if len(buf) < headerSize || string(buf[:headerSize]) != magic {
		return nil, st, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	var recs []Record
	pos := int64(headerSize)
	for pos < int64(len(buf)) {
		next, rec, err := parseRecord(buf, pos)
		if err == nil && rec.Seq != int64(len(recs))+1 {
			err = fmt.Errorf("seq %d, want %d", rec.Seq, len(recs)+1)
		}
		if err != nil {
			// A failed record with nothing after it is the torn tail a
			// crash leaves; a failed record with committed bytes after
			// it is interior corruption. "Nothing after it" means the
			// frame (as far as it can be trusted) reaches end-of-buffer
			// — which is every parse failure, since a frame that ends
			// early fails its CRC only from flipped bits, and flipped
			// length fields make the frame end elsewhere than the next
			// record's start, failing that parse too. The practical
			// rule: the tail is torn iff no subsequent position parses
			// as the expected next record.
			if !resyncs(buf, pos, int64(len(recs))+1) {
				st.TornTail = true
				st.DroppedTail = int64(len(buf)) - pos
				break
			}
			return nil, st, fmt.Errorf("%w: record %d at byte %d: %v",
				ErrCorrupt, len(recs)+1, pos, err)
		}
		recs = append(recs, rec)
		pos = next
	}
	st.Records = int64(len(recs))
	st.Bytes = int64(len(buf)) - st.DroppedTail
	return recs, st, nil
}

// resyncs reports whether any later position in buf parses as a valid
// record with sequence seq or seq+1 — evidence that committed records
// follow the failure, making it interior corruption rather than a torn
// tail. A torn tail cannot resync: everything after the tear is the
// single half-written frame.
func resyncs(buf []byte, from, seq int64) bool {
	for pos := from + 1; pos < int64(len(buf)); pos++ {
		if _, rec, err := parseRecord(buf, pos); err == nil &&
			(rec.Seq == seq || rec.Seq == seq+1) {
			return true
		}
	}
	return false
}

// PrefixRecords returns a copy of the journal image truncated to its
// first k committed records — the crash image "power failed right after
// commit k was durable". It does not validate CRCs; a malformed frame
// ends the walk early.
func PrefixRecords(buf []byte, k int64) []byte {
	pos := int64(headerSize)
	if pos > int64(len(buf)) {
		pos = int64(len(buf))
	}
	for i := int64(0); i < k; i++ {
		next, _, err := parseRecord(buf, pos)
		if err != nil {
			break
		}
		pos = next
	}
	return append([]byte(nil), buf[:pos]...)
}

// CountRecords returns the number of well-formed committed records in a
// journal image (torn tails excluded), or 0 on a bad header.
func CountRecords(buf []byte) int64 {
	recs, _, err := Replay(buf)
	if err != nil {
		return 0
	}
	return int64(len(recs))
}
